#include "qmc/nested_driver.h"

#include <algorithm>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "common/threading.h"
#include "common/timer.h"
#include "core/weights.h"
#include "qmc/walker.h"

namespace mqc {

NestedResult run_nested(const MultiBspline<float>& engine, const NestedConfig& cfg)
{
  // Partition resolution goes through the shared thread-team seam: explicit
  // cfg.nth pins the inner team, 0 asks ThreadPartition for the
  // topology-aware split over the walker count (one outer member per
  // walker).  The flat region below then runs partition.total() threads and
  // each thread derives its (walker, member) coordinates — the paper's
  // explicit decomposition, just with the shape decided in one place.
  const int total = cfg.total_threads > 0 ? cfg.total_threads : max_threads();
  const int outer_hint = cfg.num_walkers > 0 ? cfg.num_walkers
                                             : std::max(1, total / std::max(1, cfg.nth));
  const ThreadPartition part = ThreadPartition::resolve(outer_hint, cfg.nth, total);
  const int nth = part.inner;
  const int nw = cfg.num_walkers > 0 ? cfg.num_walkers : std::max(1, total / nth);
  const int nthreads = nw * nth;
  const int ntiles = engine.num_tiles();
  const int pb = std::clamp(cfg.pos_block, 1, cfg.ns);

  // Per-walker buffers and positions, prepared outside the timed region.
  // With pos_block == P, a walker owns P output buffers so a whole block's
  // results are live at once (multi-position path).
  std::vector<std::vector<std::unique_ptr<WalkerSoA<float>>>> outputs(
      static_cast<std::size_t>(nw));
  std::vector<std::vector<float*>> vp(static_cast<std::size_t>(nw)), gp(vp), lp(vp), hp(vp);
  std::vector<std::vector<Vec3<float>>> pos(static_cast<std::size_t>(nw));
  const auto& grid = engine.grid();
  for (int wdx = 0; wdx < nw; ++wdx) {
    const auto u = static_cast<std::size_t>(wdx);
    for (int p = 0; p < pb; ++p) {
      outputs[u].push_back(std::make_unique<WalkerSoA<float>>(engine.out_stride()));
      vp[u].push_back(outputs[u].back()->v.data());
      gp[u].push_back(outputs[u].back()->g.data());
      lp[u].push_back(outputs[u].back()->l.data());
      hp[u].push_back(outputs[u].back()->h.data());
    }
    Xoshiro256 rng = Xoshiro256::for_stream(cfg.seed, static_cast<std::uint64_t>(wdx));
    pos[u].resize(static_cast<std::size_t>(cfg.ns));
    for (int s = 0; s < cfg.ns; ++s)
      pos[u][static_cast<std::size_t>(s)] =
          Vec3<float>{static_cast<float>(rng.uniform(grid.x.start, grid.x.end)),
                      static_cast<float>(rng.uniform(grid.y.start, grid.y.end)),
                      static_cast<float>(rng.uniform(grid.z.start, grid.z.end))};
  }

  Stopwatch watch;
  // Deliberate raw region: the paper's explicit flat Nw x nth decomposition
  // derives each thread's (walker, member) coordinates from its id inside
  // ONE region — the ablation reference the team-scheduled drivers are
  // measured against, so it must keep the paper's literal shape.
  // mqc-lint: allow(omp-parallel)
#pragma omp parallel num_threads(nthreads)
  {
    const TeamCoordinates tc = team_coordinates(thread_id(), nth);
    const auto wu = static_cast<std::size_t>(tc.walker);
    WalkerSoA<float>& out = *outputs[wu].front();
    const auto& x = pos[wu];
    const StridedRange my_tiles(static_cast<std::size_t>(ntiles), static_cast<std::size_t>(nth),
                                static_cast<std::size_t>(tc.member));
    if (pb <= 1) {
      // Single-position path (ablation reference): one tile sweep per
      // position, weights recomputed inside every tile kernel call.  Raw
      // tile calls are deliberate here: this driver IS the explicit
      // decomposition the facade is measured against, and a team member's
      // private tile subset cannot be expressed as a facade request.
      for (int it = 0; it < cfg.niters; ++it)
        for (int s = 0; s < cfg.ns; ++s) {
          const float px = x[static_cast<std::size_t>(s)].x;
          const float py = x[static_cast<std::size_t>(s)].y;
          const float pz = x[static_cast<std::size_t>(s)].z;
          switch (cfg.kernel) {
          case NestedKernel::V:
            my_tiles.for_each([&](std::size_t t) {
              // mqc-lint: allow(raw-spline-call)
              engine.evaluate_v_tile(static_cast<int>(t), px, py, pz, out.v.data());
            });
            break;
          case NestedKernel::VGL:
            my_tiles.for_each([&](std::size_t t) {
              // mqc-lint: allow(raw-spline-call)
              engine.evaluate_vgl_tile(static_cast<int>(t), px, py, pz, out.v.data(),
                                       out.g.data(), out.l.data(), out.stride);
            });
            break;
          case NestedKernel::VGH:
            my_tiles.for_each([&](std::size_t t) {
              // mqc-lint: allow(raw-spline-call)
              engine.evaluate_vgh_tile(static_cast<int>(t), px, py, pz, out.v.data(),
                                       out.g.data(), out.h.data(), out.stride);
            });
            break;
          }
        }
    } else {
      // Multi-position path: per block of P positions, compute the P weight
      // sets once, then sweep each of this member's tiles once for the whole
      // block.  Members of a team share positions but compute their own
      // weights (cheap, amortized over their tile subset).
      std::vector<BsplineWeights3D<float>> wts(static_cast<std::size_t>(pb));
      const std::size_t stride = out.stride;
      float* const* v = vp[wu].data();
      float* const* g = gp[wu].data();
      float* const* l = lp[wu].data();
      float* const* h = hp[wu].data();
      for (int it = 0; it < cfg.niters; ++it)
        for (int s0 = 0; s0 < cfg.ns; s0 += pb) {
          const int count = std::min(pb, cfg.ns - s0);
          const Vec3<float>* block = x.data() + s0;
          switch (cfg.kernel) {
          case NestedKernel::V:
            compute_weights_v_batch(grid, block, count, wts.data());
            my_tiles.for_each([&](std::size_t t) {
              // mqc-lint: allow(raw-spline-call)
              engine.evaluate_v_tile_multi(static_cast<int>(t), wts.data(), count, v);
            });
            break;
          case NestedKernel::VGL:
            compute_weights_vgh_batch(grid, block, count, wts.data());
            my_tiles.for_each([&](std::size_t t) {
              // mqc-lint: allow(raw-spline-call)
              engine.evaluate_vgl_tile_multi(static_cast<int>(t), wts.data(), count, v, g, l,
                                             stride);
            });
            break;
          case NestedKernel::VGH:
            compute_weights_vgh_batch(grid, block, count, wts.data());
            my_tiles.for_each([&](std::size_t t) {
              // mqc-lint: allow(raw-spline-call)
              engine.evaluate_vgh_tile_multi(static_cast<int>(t), wts.data(), count, v, g, h,
                                             stride);
            });
            break;
          }
        }
    }
  }

  NestedResult result;
  result.seconds = watch.elapsed();
  result.num_walkers = nw;
  result.nth = nth;
  result.pos_block = pb;
  const double evals = static_cast<double>(nw) * cfg.niters * cfg.ns * engine.num_splines();
  result.throughput = evals / result.seconds;
  return result;
}

} // namespace mqc
