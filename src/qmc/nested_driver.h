// Nested-threading driver (paper §V-C, Fig. 6/9, Opt C).
//
// One flat OpenMP region runs Nw x nth threads; thread tid serves
// (walker tid/nth, member tid%nth) and evaluates the tile subset
// {member, member+nth, ...} of its walker's AoSoA engine — the explicit
// data-partition scheme the paper uses to avoid nested-runtime overhead.
// Strong scaling: the walker count is reduced by the same nth factor, so
// total work (and the output working set 40*Nw*Nb*nth bytes) stays fixed.
//
// pos_block > 1 switches a member's tile sweep to the multi-position path:
// the member precomputes the weight sets for a block of P positions and
// evaluates each of its tiles once for the whole block, so the tile's
// coefficient slice is streamed from memory once per P positions instead of
// once per position.  Each walker then owns P output buffers (the block's
// outputs stay live), scaling the output working set by P — the trade the
// joint (Nb, P) tuner in core/tuner.h probes.
#ifndef MQC_QMC_NESTED_DRIVER_H
#define MQC_QMC_NESTED_DRIVER_H

#include <cstdint>

#include "core/multi_bspline.h"

namespace mqc {

enum class NestedKernel
{
  V,
  VGL,
  VGH
};

struct NestedConfig
{
  /// Threads per walker (the inner team).  0 => topology-aware auto via
  /// ThreadPartition::resolve (common/threading.h): the machine's threads
  /// split over the walkers, teams kept inside one socket, MQC_PARTITION /
  /// MQC_INNER_THREADS env overrides honoured.
  int nth = 1;
  int num_walkers = 0;   ///< 0 => total_threads / nth (>= 1)
  int total_threads = 0; ///< 0 => omp_get_max_threads()
  int ns = 64;           ///< random positions per walker per iteration
  int niters = 1;
  int pos_block = 1;     ///< positions per tile pass (> 1 => multi-position path)
  NestedKernel kernel = NestedKernel::VGH;
  std::uint64_t seed = 4242;
};

struct NestedResult
{
  double seconds = 0.0;
  double throughput = 0.0; ///< orbital evaluations per second, whole node
  int num_walkers = 0;
  int nth = 1;
  int pos_block = 1;       ///< effective block size used (clamped to ns)
};

/// Run the strong-scaling kernel loop on an existing AoSoA engine.
NestedResult run_nested(const MultiBspline<float>& engine, const NestedConfig& cfg);

} // namespace mqc

#endif // MQC_QMC_NESTED_DRIVER_H
