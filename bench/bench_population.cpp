// WalkerPopulation service bench: shard locality and job-queue throughput.
//
// Two questions with CI-gated answers:
//   * shard locality — does sweeping a resident population through
//     socket-sharded, first-touch-replicated coefficient tables cost
//     anything vs the single-shard layout?  (On a one-socket CI host the
//     shapes coincide and the ratio sits at ~1; on a multi-socket host the
//     sharded layout should win, never lose.)
//   * job-queue throughput — does multiplexing independent jobs onto the
//     resident engines through the async queue (packed crowd sweeps,
//     per-shard workers) beat serving them one at a time?
//
// Trajectories are bit-for-bit identical across every shape here (the test
// suite enforces it); these rows measure only time.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/threading.h"
#include "common/timer.h"
#include "qmc/job_queue.h"
#include "qmc/miniqmc_driver.h"
#include "qmc/walker_population.h"
#include "bench_common.h"

namespace {

using namespace mqc;

/// Best-of-three population sweep: build once, re-run the same step window
/// on a fresh population per attempt (the population owns state, so reuse
/// would sweep different steps).
double best_population_seconds(const MiniQMCConfig& cfg, int shards, int steps)
{
  double best = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    PopulationConfig pcfg;
    pcfg.qmc = cfg;
    pcfg.num_shards = shards;
    WalkerPopulation pop(pcfg);
    Stopwatch watch;
    pop.run_to_step(steps);
    const double s = watch.elapsed();
    if (attempt == 0 || s < best)
      best = s;
  }
  return best;
}

} // namespace

int main(int argc, char** argv)
{
  using namespace mqc;
  auto json = bench::JsonReporter::from_args(argc, argv, "population");
  const char* env = std::getenv("MQC_BENCH_SCALE");
  const bool full = env && std::string(env) == "full";

  MiniQMCConfig cfg;
  cfg.supercell = full ? std::array<int, 3>{4, 4, 1} : std::array<int, 3>{3, 3, 1};
  cfg.grid_size = full ? 48 : 32;
  cfg.tile_size = 64;
  cfg.spo = SpoLayout::AoSoA;
  cfg.optimized_dt_jastrow = true;
  cfg.delay_rank = 4;
  cfg.num_walkers = std::max(8, max_threads());
  cfg.steps = 0; // populations advance by explicit targets
  const int steps = full ? 4 : 2;

  const int auto_shards = resolve_shard_count(0);

  // ---- shard locality: single-shard vs one-shard-per-socket ---------------
  print_banner(std::cout, "WalkerPopulation: shard locality (first-touch replicas)");
  std::cout << "system: graphite " << cfg.supercell[0] << 'x' << cfg.supercell[1] << 'x'
            << cfg.supercell[2] << ", " << cfg.num_walkers << " walkers, " << steps
            << " steps, auto shard count " << auto_shards << "\n\n";

  const double t1 = best_population_seconds(cfg, 1, steps);
  const double tn = best_population_seconds(cfg, auto_shards, steps);
  const double locality = tn > 0 ? t1 / tn : 0.0;
  TablePrinter tp({"shards", "total (s)", "speedup vs 1 shard"});
  tp.add_row({"1", TablePrinter::cell(t1, 4), TablePrinter::cell(1.0, 2)});
  tp.add_row({TablePrinter::cell(auto_shards), TablePrinter::cell(tn, 4),
              TablePrinter::cell(locality, 2)});
  tp.print(std::cout);
  std::cout << "\nReading guide: every shard sweeps its walkers against a socket-local copy\n"
               "of the coefficient table; on a single-socket host both rows share one shard\n"
               "layout in effect and the ratio is noise around 1.\n";
  json.add("population_shard1_seconds", t1, "s");
  json.add("population_shardN_seconds", tn, "s");
  json.add("population_num_shards", auto_shards, "");
  json.add("population_shard_locality_speedup", locality, "x");

  // ---- job-queue throughput: async packed service vs one-at-a-time -------
  // The same 16 jobs (mixed step budgets, distinct seeds) served two ways on
  // one resident population: strictly sequentially (submit -> wait each),
  // and fully async (submit all -> drain) with packing enabled.
  print_banner(std::cout, "JobQueue: async packed service vs sequential submission");
  {
    PopulationConfig pcfg;
    pcfg.qmc = cfg;
    WalkerPopulation pop(pcfg);
    pop.run_to_step(1); // warm the resident engines before timing

    std::vector<JobSpec> jobs;
    const int num_jobs = 16;
    for (int i = 0; i < num_jobs; ++i) {
      JobSpec spec;
      spec.num_walkers = 2;
      spec.steps = 1 + i % 3;
      spec.seed = static_cast<std::uint64_t>(1000 + i);
      jobs.push_back(spec);
    }

    double seq_best = 0.0, async_best = 0.0;
    std::size_t packed = 0, completed = 0;
    for (int attempt = 0; attempt < 3; ++attempt) {
      {
        JobQueue seq_queue(pop, /*max_pack=*/1);
        Stopwatch watch;
        for (const JobSpec& spec : jobs)
          (void)seq_queue.wait(seq_queue.submit(spec));
        const double s = watch.elapsed();
        if (attempt == 0 || s < seq_best)
          seq_best = s;
      }
      {
        JobQueue queue(pop, /*max_pack=*/4);
        Stopwatch watch;
        for (const JobSpec& spec : jobs)
          (void)queue.submit(spec);
        const std::size_t got = queue.drain().size();
        const double s = watch.elapsed();
        if (attempt == 0 || s < async_best)
          async_best = s;
        packed = queue.packed_batches();
        completed = queue.completed();
      }
    }
    const double speedup = async_best > 0 ? seq_best / async_best : 0.0;
    const double throughput = async_best > 0 ? num_jobs / async_best : 0.0;
    const double packing = packed > 0 ? static_cast<double>(completed) / packed : 0.0;
    TablePrinter jp({"mode", "jobs", "total (s)", "jobs/s", "speedup"});
    jp.add_row({"sequential (wait each)", TablePrinter::cell(num_jobs),
                TablePrinter::cell(seq_best, 4),
                TablePrinter::cell(seq_best > 0 ? num_jobs / seq_best : 0.0, 1),
                TablePrinter::cell(1.0, 2)});
    jp.add_row({"async packed (drain)", TablePrinter::cell(num_jobs),
                TablePrinter::cell(async_best, 4), TablePrinter::cell(throughput, 1),
                TablePrinter::cell(speedup, 2)});
    jp.print(std::cout);
    std::cout << "\nReading guide: the async path overlaps jobs across the per-shard workers\n"
               << "and fuses up to 4 queued jobs into one crowd sweep (measured packing\n"
               << "factor " << packing << " jobs/sweep), so the spline tables stream once per\n"
               << "move across packed jobs.  Sequential submission forfeits both effects.\n";
    json.add("jobqueue_jobs_per_second", throughput, "jobs/s");
    json.add("jobqueue_seq_seconds", seq_best, "s");
    json.add("jobqueue_async_seconds", async_best, "s");
    json.add("jobqueue_vs_sequential_speedup", speedup, "x");
    json.add("jobqueue_packing_factor", packing, "");
  }

  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
