// Particle position containers in both layouts (paper §V-A).
//
// ParticleSetAoS is the conventional R[N][3] abstraction — "logical for
// expressing concepts ... but the computations using them are not efficient
// on modern CPUs".  ParticleSetSoA keeps three separate aligned component
// streams and bridges back to the AoS world through operator[] returning a
// Vec3 by value — the paper's trick for converting QMCPACK incrementally
// ("overload their square bracket operators to return the particle positions
// at an index, in the current AoS format").
#ifndef MQC_PARTICLES_PARTICLE_SET_H
#define MQC_PARTICLES_PARTICLE_SET_H

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/aligned_allocator.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/vec3.h"
#include "particles/lattice.h"

namespace mqc {

template <typename T>
class ParticleSetAoS
{
public:
  ParticleSetAoS() = default;
  explicit ParticleSetAoS(int n) : r_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] int size() const noexcept { return static_cast<int>(r_.size()); }
  [[nodiscard]] Vec3<T>& operator[](int i) noexcept { return r_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] const Vec3<T>& operator[](int i) const noexcept
  {
    return r_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const Vec3<T>* data() const noexcept { return r_.data(); }

private:
  std::vector<Vec3<T>> r_;
};

template <typename T>
class ParticleSetSoA
{
public:
  ParticleSetSoA() = default;
  explicit ParticleSetSoA(int n)
      : n_(n), pad_(aligned_size<T>(static_cast<std::size_t>(n))), x_(pad_, T(0)), y_(pad_, T(0)),
        z_(pad_, T(0))
  {
  }

  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] std::size_t padded_size() const noexcept { return pad_; }

  /// AoS-style read access (the bridging operator; returns by value).
  [[nodiscard]] Vec3<T> operator[](int i) const noexcept
  {
    const auto u = static_cast<std::size_t>(i);
    return Vec3<T>{x_[u], y_[u], z_[u]};
  }

  void set(int i, const Vec3<T>& r) noexcept
  {
    const auto u = static_cast<std::size_t>(i);
    x_[u] = r.x;
    y_[u] = r.y;
    z_[u] = r.z;
  }

  [[nodiscard]] const T* x() const noexcept { return x_.data(); }
  [[nodiscard]] const T* y() const noexcept { return y_.data(); }
  [[nodiscard]] const T* z() const noexcept { return z_.data(); }

private:
  int n_ = 0;
  std::size_t pad_ = 0;
  aligned_vector<T> x_, y_, z_;
};

/// Layout conversions (used at module boundaries, never in hot loops).
template <typename T>
ParticleSetSoA<T> to_soa(const ParticleSetAoS<T>& aos)
{
  ParticleSetSoA<T> soa(aos.size());
  for (int i = 0; i < aos.size(); ++i)
    soa.set(i, aos[i]);
  return soa;
}

template <typename T>
ParticleSetAoS<T> to_aos(const ParticleSetSoA<T>& soa)
{
  ParticleSetAoS<T> aos(soa.size());
  for (int i = 0; i < soa.size(); ++i)
    aos[i] = soa[i];
  return aos;
}

/// Scatter @p n particles uniformly inside the lattice cell (deterministic).
template <typename T>
ParticleSetSoA<T> random_particles(int n, const Lattice& lattice, std::uint64_t seed)
{
  ParticleSetSoA<T> set(n);
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    const Vec3<double> f{rng.uniform(), rng.uniform(), rng.uniform()};
    const Vec3<double> r = lattice.to_cartesian(f);
    set.set(i, Vec3<T>{static_cast<T>(r.x), static_cast<T>(r.y), static_cast<T>(r.z)});
  }
  return set;
}

} // namespace mqc

#endif // MQC_PARTICLES_PARTICLE_SET_H
