// Tests for the determinant engine: LU factorization/inverse/determinant,
// the ratio formula (paper Eq. 3), Sherman-Morrison updates over long move
// sequences, and the delayed rank-k update path against both.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "determinant/delayed_update.h"
#include "determinant/det_update.h"
#include "determinant/dirac_determinant.h"
#include "determinant/lu.h"
#include "determinant/matrix.h"

using namespace mqc;

namespace {

Matrix<double> random_matrix(int n, std::uint64_t seed, double diag_boost = 1.0)
{
  Matrix<double> a(n);
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a(i, j) = rng.uniform(-1.0, 1.0) + (i == j ? diag_boost : 0.0);
  return a;
}

/// O(N^3) determinant by LU, fresh copy (oracle).
double det_of(const Matrix<double>& a)
{
  Matrix<double> lu = a;
  std::vector<int> piv;
  if (!lu_factor(lu, piv))
    return 0.0;
  double log_det, sign;
  lu_logdet(lu, piv, log_det, sign);
  return sign * std::exp(log_det);
}

} // namespace

TEST(LU, KnownDeterminant2x2)
{
  Matrix<double> a(2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 4;
  a(1, 1) = 2;
  EXPECT_NEAR(det_of(a), 2.0, 1e-12);
}

TEST(LU, KnownDeterminant3x3WithPivoting)
{
  // Zero on the leading diagonal forces a pivot.
  Matrix<double> a(3);
  const double vals[9] = {0, 2, 1, 1, 0, 3, 2, 1, 0};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      a(i, j) = vals[3 * i + j];
  // det = 0*(0*0-3*1) - 2*(1*0-3*2) + 1*(1*1-0*2) = 12 + 1 = 13.
  EXPECT_NEAR(det_of(a), 13.0, 1e-12);
}

TEST(LU, SingularMatrixDetected)
{
  Matrix<double> a(3);
  for (int j = 0; j < 3; ++j) {
    a(0, j) = j + 1.0;
    a(1, j) = 2.0 * (j + 1.0); // row 1 = 2 x row 0
    a(2, j) = j * j + 1.0;
  }
  std::vector<int> piv;
  Matrix<double> lu = a;
  EXPECT_FALSE(lu_factor(lu, piv));
}

TEST(LU, InverseTimesMatrixIsIdentity)
{
  for (int n : {1, 2, 5, 16, 48}) {
    Matrix<double> a = random_matrix(n, 100 + static_cast<std::uint64_t>(n));
    Matrix<double> inv = a;
    double log_det, sign;
    ASSERT_TRUE(invert_matrix(inv, log_det, sign)) << n;
    const Matrix<double> prod = matmul(a, inv);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9) << n;
  }
}

TEST(LU, LogDetMatchesDirectDet)
{
  Matrix<double> a = random_matrix(6, 7);
  Matrix<double> inv = a;
  double log_det, sign;
  ASSERT_TRUE(invert_matrix(inv, log_det, sign));
  EXPECT_NEAR(sign * std::exp(log_det), det_of(a), 1e-9);
}

TEST(Dirac, RatioMatchesDeterminantQuotient)
{
  const int n = 12;
  Matrix<double> a = random_matrix(n, 3);
  DiracDeterminant det;
  ASSERT_TRUE(det.build(a));

  Xoshiro256 rng(9);
  for (int e = 0; e < n; e += 3) {
    std::vector<double> u(static_cast<std::size_t>(n));
    for (auto& v : u)
      v = rng.uniform(-1.0, 1.0);
    // Oracle: replace column e and recompute.
    Matrix<double> ap = a;
    for (int i = 0; i < n; ++i)
      ap(i, e) = u[static_cast<std::size_t>(i)];
    EXPECT_NEAR(det.ratio(u.data(), e), det_of(ap) / det_of(a), 1e-8) << e;
  }
}

TEST(Dirac, ShermanMorrisonTracksFullInverse)
{
  const int n = 16;
  Matrix<double> a = random_matrix(n, 4, 2.0);
  DiracDeterminant det;
  ASSERT_TRUE(det.build(a));

  Xoshiro256 rng(11);
  for (int move = 0; move < 40; ++move) {
    const int e = static_cast<int>(rng() % n);
    std::vector<double> u(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0) + (i == e ? 2.0 : 0.0);
    const double r = det.ratio(u.data(), e);
    if (std::abs(r) < 0.05)
      continue; // mimic rejection of near-singular proposals
    det.accept_move(u.data(), e);
    for (int i = 0; i < n; ++i)
      a(i, e) = u[static_cast<std::size_t>(i)];
  }
  // Compare against a fresh inversion.
  DiracDeterminant fresh;
  ASSERT_TRUE(fresh.build(a));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_NEAR(det.inverse()(i, j), fresh.inverse()(i, j), 1e-7) << i << ',' << j;
  EXPECT_NEAR(det.log_det(), fresh.log_det(), 1e-8);
  EXPECT_EQ(det.sign(), fresh.sign());
}

TEST(Dirac, LogDetAccumulatesRatios)
{
  const int n = 8;
  Matrix<double> a = random_matrix(n, 5, 2.0);
  DiracDeterminant det;
  ASSERT_TRUE(det.build(a));
  const double log0 = det.log_det();

  std::vector<double> u(static_cast<std::size_t>(n));
  Xoshiro256 rng(6);
  for (int i = 0; i < n; ++i)
    u[static_cast<std::size_t>(i)] = rng.uniform(0.5, 1.5) + (i == 2 ? 1.0 : 0.0);
  const double r = det.ratio(u.data(), 2);
  det.accept_move(u.data(), 2);
  EXPECT_NEAR(det.log_det(), log0 + std::log(std::abs(r)), 1e-12);
}

TEST(Delayed, MatchesShermanMorrisonSequence)
{
  const int n = 14;
  Matrix<double> a = random_matrix(n, 21, 2.0);
  DiracDeterminant sm;
  DelayedDeterminant delayed(4);
  ASSERT_TRUE(sm.build(a));
  ASSERT_TRUE(delayed.build(a));

  Xoshiro256 rng(22);
  for (int move = 0; move < 25; ++move) {
    const int e = static_cast<int>(rng() % n);
    std::vector<double> u(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0) + (i == e ? 2.0 : 0.0);
    const double r_sm = sm.ratio(u.data(), e);
    const double r_delayed = delayed.ratio(u.data(), e);
    ASSERT_NEAR(r_delayed, r_sm, 1e-7 * std::max(1.0, std::abs(r_sm))) << "move " << move;
    if (std::abs(r_sm) < 0.05)
      continue;
    sm.accept_move(u.data(), e);
    delayed.accept_move(u.data(), e);
    ASSERT_NEAR(delayed.log_det(), sm.log_det(), 1e-7);
  }
  delayed.flush();
  const auto& bi = delayed.inverse();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      ASSERT_NEAR(bi(i, j), sm.inverse()(i, j), 1e-6);
}

TEST(Delayed, AutoFlushAtWindowAndRepeatedElectron)
{
  const int n = 10;
  Matrix<double> a = random_matrix(n, 31, 2.0);
  DelayedDeterminant delayed(3);
  ASSERT_TRUE(delayed.build(a));
  Xoshiro256 rng(33);
  std::vector<double> u(static_cast<std::size_t>(n));

  auto make_u = [&](int e) {
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0) + (i == e ? 2.0 : 0.0);
  };

  make_u(0);
  delayed.accept_move(u.data(), 0);
  EXPECT_EQ(delayed.pending(), 1);
  make_u(1);
  delayed.accept_move(u.data(), 1);
  EXPECT_EQ(delayed.pending(), 2);
  // Touching electron 0 again must flush the window first.
  make_u(0);
  delayed.accept_move(u.data(), 0);
  EXPECT_EQ(delayed.pending(), 1);
  make_u(5);
  delayed.accept_move(u.data(), 5);
  make_u(6);
  delayed.accept_move(u.data(), 6); // hits delay=3 -> auto flush
  EXPECT_EQ(delayed.pending(), 0);
}

TEST(Delayed, DelayOneEqualsImmediateUpdates)
{
  const int n = 9;
  Matrix<double> a = random_matrix(n, 41, 2.0);
  DiracDeterminant sm;
  DelayedDeterminant d1(1);
  ASSERT_TRUE(sm.build(a));
  ASSERT_TRUE(d1.build(a));
  Xoshiro256 rng(44);
  for (int move = 0; move < 10; ++move) {
    const int e = static_cast<int>(rng() % n);
    std::vector<double> u(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0) + (i == e ? 2.0 : 0.0);
    if (std::abs(sm.ratio(u.data(), e)) < 0.05)
      continue;
    sm.accept_move(u.data(), e);
    d1.accept_move(u.data(), e);
  }
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      ASSERT_NEAR(d1.inverse()(i, j), sm.inverse()(i, j), 1e-8);
}

TEST(Delayed, ThreadedFlushIsBitIdenticalToSerial)
{
  // The flush's column blocks (256 columns each) are disjoint and within a
  // block the per-element (i, m, j) order is untouched, so distributing
  // blocks over an inner team must reproduce the serial flush BIT for bit —
  // not merely to tolerance.  N = 520 spans 3 blocks (256 + 256 + 8,
  // including a partial one); team 3 does not divide anything evenly.
  const int n = 520;
  const int k = 6;
  const Matrix<double> a = random_matrix(n, 2026, 8.0);
  DelayedDeterminant serial(k), teamed(k);
  ASSERT_TRUE(serial.build(a));
  ASSERT_TRUE(teamed.build(a));
  teamed.set_team(TeamHandle::of(3));

  Xoshiro256 rng(77);
  std::vector<double> u(static_cast<std::size_t>(n));
  for (int m = 0; m < k; ++m) { // fill exactly one window, flush on accept k
    const int col = (m * 97) % n;
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0) + (i == col ? 8.0 : 0.0);
    ASSERT_EQ(serial.ratio(u.data(), col), teamed.ratio(u.data(), col)) << "m=" << m;
    serial.accept_move(u.data(), col);
    teamed.accept_move(u.data(), col);
  }
  ASSERT_EQ(serial.pending(), 0); // the window flushed
  ASSERT_EQ(teamed.pending(), 0);
  EXPECT_EQ(serial.log_det(), teamed.log_det());
  const Matrix<double>& si = serial.inverse();
  const Matrix<double>& ti = teamed.inverse();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      ASSERT_EQ(si(i, j), ti(i, j)) << "inverse differs at (" << i << ", " << j << ")";
}

TEST(DetUpdater, SetTeamRoutesToTheDelayedEngine)
{
  // The wrapper forwards the caller's inner team to the delayed engine and
  // drops it for Sherman-Morrison; both stay correct afterwards.
  const int n = 40;
  const Matrix<double> a = random_matrix(n, 5, 6.0);
  DetUpdater sm(0), delayed(4);
  ASSERT_TRUE(sm.build(a));
  ASSERT_TRUE(delayed.build(a));
  sm.set_team(TeamHandle::of(4)); // no-op, must not crash or change results
  delayed.set_team(TeamHandle::of(4));

  Xoshiro256 rng(9);
  std::vector<double> u(static_cast<std::size_t>(n));
  for (int m = 0; m < 8; ++m) {
    const int col = m % n;
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0) + (i == col ? 6.0 : 0.0);
    const double rs = sm.ratio(u.data(), col);
    const double rd = delayed.ratio(u.data(), col);
    EXPECT_NEAR(rs, rd, 1e-9 * std::max(1.0, std::abs(rs)));
    sm.accept_move(u.data(), col);
    delayed.accept_move(u.data(), col);
  }
  delayed.flush();
  EXPECT_NEAR(sm.log_det(), delayed.log_det(), 1e-8 * std::max(1.0, std::abs(sm.log_det())));
}

TEST(DetUpdater, DelayRankKnobSelectsTheAlgorithm)
{
  EXPECT_EQ(DetUpdater(0).kind(), DetUpdateKind::ShermanMorrison);
  EXPECT_EQ(DetUpdater(1).kind(), DetUpdateKind::ShermanMorrison);
  EXPECT_EQ(DetUpdater(2).kind(), DetUpdateKind::Delayed);
  EXPECT_EQ(DetUpdater(8).kind(), DetUpdateKind::Delayed);
  EXPECT_EQ(DetUpdater(0).delay(), 1);
  EXPECT_EQ(DetUpdater(8).delay(), 8);
}

TEST(DetUpdater, DispatchMatchesUnderlyingEngines)
{
  // The wrapper must be a pure dispatcher: bit-identical to DiracDeterminant
  // for delay_rank <= 1 and to DelayedDeterminant for delay_rank >= 2, over
  // a mixed accept/reject sequence.
  const int n = 12;
  Matrix<double> a = random_matrix(n, 61, 2.0);
  DiracDeterminant sm;
  DelayedDeterminant delayed(3);
  DetUpdater u_sm(0), u_delayed(3);
  ASSERT_TRUE(sm.build(a));
  ASSERT_TRUE(delayed.build(a));
  ASSERT_TRUE(u_sm.build(a));
  ASSERT_TRUE(u_delayed.build(a));

  Xoshiro256 rng(62);
  for (int move = 0; move < 20; ++move) {
    const int e = static_cast<int>(rng() % n);
    std::vector<double> u(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0) + (i == e ? 2.0 : 0.0);
    EXPECT_EQ(u_sm.ratio(u.data(), e), sm.ratio(u.data(), e));
    EXPECT_EQ(u_delayed.ratio(u.data(), e), delayed.ratio(u.data(), e));
    EXPECT_EQ(u_delayed.pending(), delayed.pending());
    if (std::abs(sm.ratio(u.data(), e)) < 0.05)
      continue;
    sm.accept_move(u.data(), e);
    delayed.accept_move(u.data(), e);
    u_sm.accept_move(u.data(), e);
    u_delayed.accept_move(u.data(), e);
    EXPECT_EQ(u_sm.log_det(), sm.log_det());
    EXPECT_EQ(u_delayed.log_det(), delayed.log_det());
  }
  // inverse() flushes the delayed window before exposing the matrix.
  EXPECT_EQ(u_sm.pending(), 0);
  const auto& inv = u_delayed.inverse();
  EXPECT_EQ(u_delayed.pending(), 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_EQ(inv(i, j), delayed.inverse()(i, j));
}

TEST(Matrix, BasicsAndMatmul)
{
  Matrix<double> a(2, 3), b(3, 2);
  int v = 1;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j)
      a(i, j) = v++;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j)
      b(i, j) = v++;
  const auto c = matmul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_DOUBLE_EQ(c(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
  a.fill(0.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 0.0);
}
