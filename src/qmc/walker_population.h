// WalkerPopulation: a long-running, NUMA-aware resident walker service
// (ROADMAP item 1 — the "millions of users" shape on one shared-memory
// host).
//
// Where run_miniqmc() is one synchronous call over a transient population,
// a WalkerPopulation OWNS its walkers across calls: build it once, advance
// it incrementally (run_to_step / run_steps), snapshot and resume it, and
// multiplex external work onto its hot, resident spline engines through the
// async JobQueue (qmc/job_queue.h).
//
// Sharding (paper §IV-V + the mctop placement model): the population is
// split into one shard per socket (MachineTopology / resolve_shard_count;
// MQC_SHARDS or PopulationConfig::num_shards override).  Each shard owns a
// socket-local FIRST-TOUCH copy of the read-only B-spline coefficient
// tables (core/coef_storage.h CoefReplicaSet) and its own engine +
// OrbitalSet facade built over that copy, so a shard's inner teams never
// pull spline traffic across the memory bus.  Walker ids are block-
// partitioned over shards and each shard's range is swept in lock-step
// crowds through the one crowd-sweep kernel (qmc/crowd_sweep.h).
//
//     jobs ──> JobQueue ──┬─> shard 0: replica 0 ─ engine ─ crowds ─ walkers
//                         ├─> shard 1: replica 1 ─ engine ─ crowds ─ walkers
//     run_to_step() ──────┴─> ...        (one shard per socket, first-touch)
//
// Bit-for-bit guarantees (tests/test_population.cpp,
// tests/test_checkpoint.cpp):
//   * replicas are exact copies of one deterministic table, and walker
//     trajectories are a function of (config seed, walker id) alone — so
//     EVERY shard count, partition shape, and crowd packing produces the
//     identical `walker_accepts` / `walker_log_det` fingerprints as
//     run_miniqmc over the same config;
//   * persistence reuses the PR 7 checkpoint format unchanged: one Walker
//     section per resident walker, and shard assignment is NOT part of the
//     config hash (it is derived machine layout, not trajectory state) —
//     a population killed under S shards resumes under any other shard
//     count, and run_miniqmc snapshots interoperate both ways.
#ifndef MQC_QMC_WALKER_POPULATION_H
#define MQC_QMC_WALKER_POPULATION_H

#include <memory>

#include "qmc/miniqmc_driver.h"

namespace mqc {

namespace detail {
struct MiniQMCSystem; // miniqmc_context.h (internal)
}

struct PopulationConfig
{
  /// Population shape, physics, seed, and checkpoint knobs — the same config
  /// run_miniqmc takes.  crowd_size sizes each shard's lock-step crowds
  /// (0 = one crowd per shard, -1 = tuned); steps is ignored (the population
  /// advances by explicit run_to_step targets); driver mode is ignored (the
  /// resident sweep is always the crowd kernel, which is bit-identical to
  /// the per-walker driver by construction).
  MiniQMCConfig qmc;
  /// Resident shards (the NUMA replication unit).  0 = auto: MQC_SHARDS if
  /// set, else one per socket (common/threading.h resolve_shard_count);
  /// clamped to the walker count.  A pure placement knob: every value is
  /// trajectory-neutral and absent from the checkpoint config hash.
  int num_shards = 0;
};

class WalkerPopulation
{
public:
  explicit WalkerPopulation(const PopulationConfig& cfg);
  ~WalkerPopulation();
  WalkerPopulation(const WalkerPopulation&) = delete;
  WalkerPopulation& operator=(const WalkerPopulation&) = delete;

  [[nodiscard]] int num_shards() const noexcept;
  [[nodiscard]] int num_walkers() const noexcept;
  /// The population's Monte Carlo cursor: 0 fresh, the snapshot's step after
  /// a resume, then wherever the last run_to_step/run_steps call landed.
  [[nodiscard]] int current_step() const noexcept;

  /// Advance every resident walker to absolute step @p target_step (no-op
  /// when already there or past).  Epoch-chunked exactly like the drivers:
  /// interval-aligned snapshots between team regions when the config has a
  /// checkpoint path, an end-of-run snapshot on every call — including
  /// calls that sweep nothing — and armed fault injection at boundaries.
  void run_to_step(int target_step);
  /// Advance by @p steps from the current cursor.
  void run_steps(int steps);

  /// Aggregate result over the resident walkers: per-walker trajectory
  /// fingerprints (walker_accepts / walker_log_det), merged profiles and
  /// counters, plus restart provenance (resumed_from_step,
  /// resume_fallback_used, resume_error) and the cumulative
  /// checkpoints_written — the same surfaced-decision fields run_miniqmc
  /// reports.  Callable between runs; fingerprints reflect the current
  /// cursor.
  [[nodiscard]] MiniQMCResult result();

  // ---- internal (qmc/job_queue.cpp) ------------------------------------
  /// The shard's resident system (engines + facade over its socket-local
  /// replica).  Shared read-only state: safe to evaluate from any thread
  /// with per-caller resources.  Not a stable public API.
  [[nodiscard]] detail::MiniQMCSystem& shard_system_internal(int shard) const;
  /// The config the population was built with (jobs inherit its physics).
  [[nodiscard]] const MiniQMCConfig& config_internal() const noexcept;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

} // namespace mqc

#endif // MQC_QMC_WALKER_POPULATION_H
