// Fixture: the inline escape hatch silences a reviewed thread_local.
// Expected: 0 [thread-local] findings.
int next_id()
{
  thread_local int counter = 0; // mqc-lint: allow(thread-local)
  return ++counter;
}
