// Domain scenario: crash-consistent checkpoint/restart with fault injection.
//
// Runs a miniQMC sweep with periodic snapshots (qmc/checkpoint.h) and prints
// machine-parseable restart provenance + per-walker trajectory fingerprints.
// tools/fault_harness.py drives this binary through kill -> resume ->
// fingerprint-compare and corrupt -> detect -> fall-back loops; the CI
// fault-injection job fails when an injected fault goes undetected.
//
//   ./examples/checkpoint_restart --ckpt run.ckpt --interval 2 --steps 6
//   ./examples/checkpoint_restart --ckpt run.ckpt --resume --steps 6
//   ./examples/checkpoint_restart --ckpt run.ckpt --interval 2 --steps 6
//       --fault abort@4,corrupt@walker0
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "qmc/miniqmc_driver.h"
#include "qmc/walker_population.h"

namespace {

void usage(const char* prog)
{
  std::printf(
      "usage: %s [options]\n"
      "  --driver per-walker|crowd|dmc  sweep driver (default per-walker)\n"
      "  --layout aos|soa|aosoa      spline layout (default soa, optimized tables)\n"
      "  --precision native|mixed    coefficient precision path (default native;\n"
      "                              mixed = SP tables, DP accumulation)\n"
      "  --walkers N                 walker count (default 4)\n"
      "  --steps N                   Monte Carlo sweeps (default 6)\n"
      "  --delay K                   determinant delay rank (default 1)\n"
      "  --crowd-size N              crowd driver crowd size (default whole population)\n"
      "  --seed S                    rng seed\n"
      "  --ckpt PATH                 checkpoint file (enables snapshots)\n"
      "  --interval N                steps between snapshots (default 2)\n"
      "  --resume                    restore from --ckpt before sweeping\n"
      "  --fault SPEC                fault-injection spec (see qmc/checkpoint.h)\n"
      "  --shards N                  run as a resident WalkerPopulation with N\n"
      "                              shards (0 = plain run_miniqmc, default)\n"
      "  --dmc N                     DMC driver: N branching generations\n"
      "                              (implies --driver dmc; --steps is ignored)\n"
      "  --dmc-gen-steps N           sweeps per generation (default 1)\n"
      "  --dmc-target N              target population (default = --walkers)\n"
      "  --dmc-tau T                 branching time step (default 0.4 here)\n"
      "  --dmc-replay                fixed-population replay oracle mode\n",
      prog);
}

} // namespace

int main(int argc, char** argv)
{
  using namespace mqc;
  MiniQMCConfig cfg;
  cfg.supercell = {1, 1, 1};
  cfg.grid_size = 16;
  cfg.spo = SpoLayout::SoA;
  cfg.optimized_dt_jastrow = true;
  cfg.num_walkers = 4;
  cfg.steps = 6;
  cfg.checkpoint_interval = 2;
  // An aggressive-enough default branching time step that harness-scale DMC
  // runs (4 walkers, a handful of generations) actually see birth/death.
  cfg.dmc_tau = 0.4;
  int shards = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs an argument\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--driver") {
      const std::string v = next();
      cfg.driver = v == "crowd"
                       ? DriverMode::Crowd
                       : (v == "dmc" ? DriverMode::DMC : DriverMode::PerWalker);
    } else if (arg == "--layout") {
      const std::string v = next();
      if (v == "aos") {
        cfg.spo = SpoLayout::AoS;
        cfg.optimized_dt_jastrow = false;
      } else if (v == "aosoa") {
        cfg.spo = SpoLayout::AoSoA;
        cfg.optimized_dt_jastrow = true;
      } else {
        cfg.spo = SpoLayout::SoA;
        cfg.optimized_dt_jastrow = true;
      }
    } else if (arg == "--precision") {
      const std::string v = next();
      cfg.precision_path = v == "mixed" ? PrecisionPath::Mixed : PrecisionPath::Native;
    } else if (arg == "--walkers") {
      cfg.num_walkers = std::atoi(next());
    } else if (arg == "--steps") {
      cfg.steps = std::atoi(next());
    } else if (arg == "--delay") {
      cfg.delay_rank = std::atoi(next());
    } else if (arg == "--crowd-size") {
      cfg.crowd_size = std::atoi(next());
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--ckpt") {
      cfg.checkpoint_path = next();
    } else if (arg == "--interval") {
      cfg.checkpoint_interval = std::atoi(next());
    } else if (arg == "--resume") {
      cfg.resume = true;
    } else if (arg == "--fault") {
      cfg.fault_inject = next();
    } else if (arg == "--shards") {
      shards = std::atoi(next());
    } else if (arg == "--dmc") {
      cfg.driver = DriverMode::DMC;
      cfg.dmc_generations = std::atoi(next());
    } else if (arg == "--dmc-gen-steps") {
      cfg.dmc_gen_steps = std::atoi(next());
    } else if (arg == "--dmc-target") {
      cfg.dmc_target_walkers = std::atoi(next());
    } else if (arg == "--dmc-tau") {
      cfg.dmc_tau = std::atof(next());
    } else if (arg == "--dmc-replay") {
      cfg.dmc_replay = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  MiniQMCResult res;
  if (shards > 0) {
    // Resident-service path: same config, same snapshot file, same output —
    // the harness compares this against plain run_miniqmc bit-for-bit and
    // kills/resumes it across different shard counts.
    PopulationConfig pcfg;
    pcfg.qmc = cfg;
    pcfg.num_shards = shards;
    WalkerPopulation pop(pcfg);
    pop.run_to_step(cfg.steps);
    res = pop.result();
  } else {
    res = run_miniqmc(cfg);
  }

  // Machine-parseable restart provenance + fingerprints (fault_harness.py).
  std::printf("resumed_from_step=%d\n", res.resumed_from_step);
  std::printf("resume_fallback=%d\n", res.resume_fallback_used ? 1 : 0);
  std::printf("resume_error=%s\n", res.resume_error.c_str());
  std::printf("checkpoints_written=%d\n", res.checkpoints_written);
  if (cfg.driver == DriverMode::DMC) {
    // Branching provenance: population trace + counters + trial energy (raw
    // bits, same discipline as the fingerprints).  The harness asserts a
    // resumed run reproduces ALL of it, not just the walker fingerprints.
    std::string trace;
    for (const int p : res.dmc_population)
      trace += (trace.empty() ? "" : ",") + std::to_string(p);
    std::printf("dmc_population=%s\n", trace.c_str());
    std::printf("dmc_births=%" PRIu64 "\n", res.dmc_births);
    std::printf("dmc_deaths=%" PRIu64 "\n", res.dmc_deaths);
    std::uint64_t et_bits = 0;
    std::memcpy(&et_bits, &res.dmc_trial_energy, sizeof et_bits);
    std::printf("dmc_trial_energy=%016" PRIx64 "\n", et_bits);
  }
  for (std::size_t w = 0; w < res.walker_accepts.size(); ++w) {
    // log-det as raw bits: the harness compares trajectories bit-for-bit,
    // and a decimal round-trip would hide 1-ulp divergence.
    std::uint64_t bits = 0;
    std::memcpy(&bits, &res.walker_log_det[w], sizeof bits);
    std::printf("fingerprint %zu %zu %016" PRIx64 "\n", w, res.walker_accepts[w], bits);
  }
  return 0;
}
