// Fixture: libc randomness and wall-clock seeding are flagged.
// Expected: >= 3 [unseeded-rng] findings (rand, srand, time, random_device,
// default-constructed engine).
#include <cstdlib>
#include <ctime>
#include <random>

int noise()
{
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  std::random_device rd;
  std::mt19937 gen;
  return std::rand() + static_cast<int>(gen());
}
