// Figure 8: normalized speedup of all three kernels (V, VGL, VGH) with the
// AoSoA transformation, using the original AoS implementation as reference,
// across problem sizes.  Paper (KNL, N=4096): 1.85x (V), 6.4x (VGL),
// 2.5x (VGH); VGL gains most because its baseline also lacked the basic
// optimizations (z-unroll, hoisted temporaries).
#include <iostream>

#include "common/table.h"
#include "core/tuner.h"
#include "bench_common.h"

int main()
{
  using namespace mqc;
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();

  const auto tgrid = Grid3D<float>::cube(scale.grid, 1.0f);
  auto tune_coefs = make_random_storage<float>(tgrid, scale.n_sweep.back(), 808);
  const auto tune = tune_tile_size_vgh(*tune_coefs, default_tile_candidates(scale.n_sweep.back(), 16),
                                       scale.ns, scale.min_seconds / 4);
  const int nb = tune.best_tile;
  tune_coefs.reset();

  print_banner(std::cout, "Figure 8: normalized kernel speedups, AoSoA vs AoS baseline (Nb=" +
                              std::to_string(nb) + ")");
  TablePrinter tp({"N", "V speedup", "VGL speedup", "VGH speedup"});
  for (int n : scale.n_sweep) {
    const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
    auto coefs = make_random_storage<float>(grid, n, 8000 + static_cast<std::uint64_t>(n));
    const int tile = std::min(nb, n);
    std::vector<std::string> row{TablePrinter::cell(n)};
    for (Kernel k : {Kernel::V, Kernel::VGL, Kernel::VGH}) {
      const double base =
          measure_throughput(Layout::AoS, k, *coefs, tile, scale.ns, scale.min_seconds);
      const double opt =
          measure_throughput(Layout::AoSoA, k, *coefs, tile, scale.ns, scale.min_seconds);
      row.push_back(TablePrinter::cell(opt / base, 2));
    }
    tp.add_row(std::move(row));
  }
  tp.print(std::cout);
  std::cout << "\nShape check (paper, KNL N=4096): V 1.85x, VGL 6.4x, VGH 2.5x.\n"
               "VGL gains most (baseline VGL also lacked z-unroll and hoisted temps);\n"
               "V gains least (single output stream, benefits only from tiling).\n";
  return 0;
}
