// Scalar reference evaluator.
//
// Straight tensor-product evaluation (Eq. 6) in double precision with no
// layout or vectorization tricks.  This is the oracle every optimized engine
// is tested against; it is deliberately simple enough to audit by eye.
#ifndef MQC_CORE_BSPLINE_REF_H
#define MQC_CORE_BSPLINE_REF_H

#include <vector>

#include "core/bspline_basis.h"
#include "core/coef_storage.h"
#include "core/weights.h"

namespace mqc {

struct RefVGH
{
  std::vector<double> v;
  std::vector<double> gx, gy, gz;
  std::vector<double> hxx, hxy, hxz, hyy, hyz, hzz;
};

template <typename T>
class BsplineRef
{
public:
  explicit BsplineRef(const CoefStorage<T>& coefs) : coefs_(&coefs) {}

  [[nodiscard]] int num_splines() const noexcept { return coefs_->num_splines(); }

  [[nodiscard]] std::vector<double> evaluate_v(T x, T y, T z) const
  {
    BsplineWeights3D<T> w;
    compute_weights_v(coefs_->grid(), x, y, z, w);
    const int n_out = coefs_->num_splines();
    std::vector<double> v(static_cast<std::size_t>(n_out), 0.0);
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        for (int k = 0; k < 4; ++k) {
          const double wv = static_cast<double>(w.a[i]) * w.b[j] * w.c[k];
          const T* p = coefs_->row(w.i0 + i, w.j0 + j, w.k0 + k);
          for (int n = 0; n < n_out; ++n)
            v[static_cast<std::size_t>(n)] += wv * static_cast<double>(p[n]);
        }
    return v;
  }

  [[nodiscard]] RefVGH evaluate_vgh(T x, T y, T z) const
  {
    BsplineWeights3D<T> w;
    compute_weights_vgh(coefs_->grid(), x, y, z, w);
    const int n_out = coefs_->num_splines();
    RefVGH r;
    const auto zero = std::vector<double>(static_cast<std::size_t>(n_out), 0.0);
    r.v = r.gx = r.gy = r.gz = zero;
    r.hxx = r.hxy = r.hxz = r.hyy = r.hyz = r.hzz = zero;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        for (int k = 0; k < 4; ++k) {
          const double A = w.a[i], B = w.b[j], C = w.c[k];
          const double dA = w.da[i], dB = w.db[j], dC = w.dc[k];
          const double d2A = w.d2a[i], d2B = w.d2b[j], d2C = w.d2c[k];
          const T* p = coefs_->row(w.i0 + i, w.j0 + j, w.k0 + k);
          for (int n = 0; n < n_out; ++n) {
            const double pn = static_cast<double>(p[n]);
            const auto un = static_cast<std::size_t>(n);
            r.v[un] += A * B * C * pn;
            r.gx[un] += dA * B * C * pn;
            r.gy[un] += A * dB * C * pn;
            r.gz[un] += A * B * dC * pn;
            r.hxx[un] += d2A * B * C * pn;
            r.hxy[un] += dA * dB * C * pn;
            r.hxz[un] += dA * B * dC * pn;
            r.hyy[un] += A * d2B * C * pn;
            r.hyz[un] += A * dB * dC * pn;
            r.hzz[un] += A * B * d2C * pn;
          }
        }
    return r;
  }

  /// Laplacians derived from the Hessian trace (used to check VGL kernels).
  [[nodiscard]] std::vector<double> laplacian(const RefVGH& r) const
  {
    std::vector<double> l(r.v.size());
    for (std::size_t n = 0; n < l.size(); ++n)
      l[n] = r.hxx[n] + r.hyy[n] + r.hzz[n];
    return l;
  }

private:
  const CoefStorage<T>* coefs_;
};

} // namespace mqc

#endif // MQC_CORE_BSPLINE_REF_H
