// AB-stacked graphite supercell factory — the paper's physical workload
// (CORAL 4x4x1 benchmark: 64-carbon AB graphite, 256 electrons, 128 SPOs;
// paper Fig. 1(b) shows the 4-atom unit cell).
#ifndef MQC_PARTICLES_GRAPHITE_H
#define MQC_PARTICLES_GRAPHITE_H

#include "particles/lattice.h"
#include "particles/particle_set.h"

namespace mqc {

/// A crystal plus the electron counts QMC derives from it.
struct CrystalSystem
{
  Lattice lattice;
  ParticleSetSoA<double> ions;
  int electrons_per_atom = 0;
  [[nodiscard]] int num_ions() const noexcept { return ions.size(); }
  [[nodiscard]] int num_electrons() const noexcept { return num_ions() * electrons_per_atom; }
  /// Spin-restricted orbital count (N_up == N_down == N_el / 2).
  [[nodiscard]] int num_orbitals() const noexcept { return num_electrons() / 2; }
};

/// Build an n1 x n2 x n3 supercell of AB-stacked graphite (hexagonal cell,
/// 4 carbon atoms, 4 valence electrons per atom under a carbon
/// pseudopotential).  Lengths in bohr.  The CORAL benchmark system of the
/// paper is make_graphite_supercell(4, 4, 1).
CrystalSystem make_graphite_supercell(int n1, int n2, int n3);

/// Orthorhombic analogue with the same atom density, for tests/benches that
/// need an exact Fast minimum image.  4*n1*n2*n3 atoms on a cubic-ish grid.
CrystalSystem make_orthorhombic_carbon(int n1, int n2, int n3);

} // namespace mqc

#endif // MQC_PARTICLES_GRAPHITE_H
