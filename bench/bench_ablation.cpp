// Ablation studies for the design choices DESIGN.md calls out:
//   1. z-loop unrolling inside the SoA VGH kernel (paper §V-A "other
//      optimizations"): SoA layout with and without fused z-sums.
//   2. Explicit thread partition vs letting a second OpenMP level schedule
//      tiles dynamically (paper §V-C argues for the explicit scheme).
#include <iostream>

#include "common/table.h"
#include "common/threading.h"
#include "common/timer.h"
#include "core/tuner.h"
#include "qmc/nested_driver.h"
#include "bench_common.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace mqc;
using namespace mqc::bench;

/// Nested evaluation using a dynamic `omp parallel for` over tiles — the
/// alternative the paper rejected in favour of the explicit partition.
double run_omp_nested_vgh(const MultiBspline<float>& engine, int nth, int ns, int niters,
                          std::uint64_t seed)
{
  WalkerSoA<float> out(engine.out_stride());
  const auto pos = random_eval_positions(engine.tile(0).coefs().grid(), ns, seed);
  Stopwatch watch;
  for (int it = 0; it < niters; ++it)
    for (int s = 0; s < ns; ++s) {
      const float x = pos.x[static_cast<std::size_t>(s)];
      const float y = pos.y[static_cast<std::size_t>(s)];
      const float z = pos.z[static_cast<std::size_t>(s)];
#pragma omp parallel for schedule(dynamic) num_threads(nth)
      for (int t = 0; t < engine.num_tiles(); ++t)
        engine.evaluate_vgh_tile(t, x, y, z, out.v.data(), out.g.data(), out.h.data(),
                                 out.stride);
    }
  return watch.elapsed();
}

} // namespace

int main()
{
  const BenchScale scale = bench_scale();
  const int n = scale.n_single;
  const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
  auto coefs = make_random_storage<float>(grid, n, 333);

  print_banner(std::cout, "Ablation 1: SoA VGH with vs without z-loop unrolling, N=" +
                              std::to_string(n));
  {
    const double t_unrolled =
        measure_throughput(Layout::SoA, Kernel::VGH, *coefs, n, scale.ns, scale.min_seconds);
    const double t_plain = measure_throughput(Layout::SoANoZUnroll, Kernel::VGH, *coefs, n,
                                              scale.ns, scale.min_seconds);
    TablePrinter tp({"variant", "T (Meval/s)", "relative"});
    tp.add_row({"SoA, 64-subcube loop", TablePrinter::cell(t_plain / 1e6, 2),
                TablePrinter::cell(1.0, 2)});
    tp.add_row({"SoA, fused z-sums", TablePrinter::cell(t_unrolled / 1e6, 2),
                TablePrinter::cell(t_unrolled / t_plain, 2)});
    tp.print(std::cout);
    std::cout << "Expected: fused z-sums win (4 streams + FMA chains instead of 64 passes\n"
                 "over all 10 output streams).\n";
  }

  print_banner(std::cout, "Ablation 2: explicit partition vs nested 'omp parallel for'");
  {
    const auto tune =
        tune_tile_size_vgh(*coefs, default_tile_candidates(n, 16), scale.ns, scale.min_seconds / 4);
    MultiBspline<float> engine(*coefs, tune.best_tile);
    const int nth = std::min(2, max_threads());
    const int iters = 4;

    NestedConfig cfg;
    cfg.nth = nth;
    cfg.num_walkers = 1;
    cfg.ns = scale.ns;
    cfg.niters = iters;
    cfg.kernel = NestedKernel::VGH;
    const auto explicit_part = run_nested(engine, cfg);
    const double t_omp = run_omp_nested_vgh(engine, nth, scale.ns, iters, 99);

    TablePrinter tp({"scheme", "time (s)", "relative"});
    tp.add_row({"explicit walker x member partition", TablePrinter::cell(explicit_part.seconds, 3),
                TablePrinter::cell(1.0, 2)});
    tp.add_row({"nested omp parallel for (dynamic)", TablePrinter::cell(t_omp, 3),
                TablePrinter::cell(t_omp / explicit_part.seconds, 2)});
    tp.print(std::cout);
    std::cout << "Expected: the explicit partition is at least as fast — it pays no\n"
                 "per-position fork/join or dynamic-scheduling cost (paper §V-C).\n";
  }
  return 0;
}
