// OrbitalSet facade tests: the facade must be a pure re-routing layer —
// bit-for-bit identical to direct engine calls for every wrapped engine
// (AoS / SoA / AoSoA), every derivative level (V / VGL / VGH), every
// position-block choice (P = 1, a non-dividing P, the whole batch), both
// precisions, and with remainder tiles in play.  Plus the capability
// surface drivers base their explicit single-vs-multi decision on.
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/bspline_aos.h"
#include "core/bspline_soa.h"
#include "core/multi_bspline.h"
#include "core/orbital_set.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"
#include "test_utils.h"

using namespace mqc;

namespace {

// N = 44 with tile 16 -> tiles {16, 16, 12}: a remainder tile is always in
// play for the AoSoA engine.  P = 3 does not divide the 8-position batch.
constexpr int kSplines = 44;
constexpr int kTile = 16;
constexpr int kBatch = 8;

template <typename T>
struct FacadeFixture
{
  std::shared_ptr<CoefStorage<T>> coefs;
  BsplineAoS<T> aos;
  BsplineSoA<T> soa;
  MultiBspline<T> aosoa;
  std::vector<Vec3<T>> positions;

  FacadeFixture()
      : coefs(make_random_storage<T>(Grid3D<T>::cube(8, T(1)), kSplines, 404)), aos(coefs),
        soa(coefs), aosoa(*coefs, kTile)
  {
    Xoshiro256 rng(405);
    for (int p = 0; p < kBatch; ++p)
      positions.push_back(Vec3<T>{static_cast<T>(rng.uniform()), static_cast<T>(rng.uniform()),
                                  static_cast<T>(rng.uniform())});
  }
};

/// Per-position output buffers sized for the given stride, with pointer
/// tables the facade request plugs into directly.
template <typename T>
struct Outputs
{
  std::vector<std::unique_ptr<WalkerSoA<T>>> soa_bufs;
  std::vector<std::unique_ptr<WalkerAoS<T>>> aos_bufs;
  std::vector<T*> v, g, lh;

  Outputs(int count, std::size_t stride, bool aos, bool hessian)
  {
    for (int p = 0; p < count; ++p) {
      if (aos) {
        aos_bufs.push_back(std::make_unique<WalkerAoS<T>>(stride));
        v.push_back(aos_bufs.back()->v.data());
        g.push_back(aos_bufs.back()->g.data());
        lh.push_back(hessian ? aos_bufs.back()->h.data() : aos_bufs.back()->l.data());
      } else {
        soa_bufs.push_back(std::make_unique<WalkerSoA<T>>(stride));
        v.push_back(soa_bufs.back()->v.data());
        g.push_back(soa_bufs.back()->g.data());
        lh.push_back(hessian ? soa_bufs.back()->h.data() : soa_bufs.back()->l.data());
      }
    }
  }

};

enum class Fam
{
  AoS,
  SoA,
  AoSoA
};

template <typename T>
OrbitalSet<T> facade_for(FacadeFixture<T>& fx, Fam fam)
{
  switch (fam) {
  case Fam::AoS:
    return OrbitalSet<T>(fx.aos);
  case Fam::SoA:
    return OrbitalSet<T>(fx.soa);
  default:
    return OrbitalSet<T>(fx.aosoa);
  }
}

template <typename T>
std::size_t stride_for(FacadeFixture<T>& fx, Fam fam)
{
  return fam == Fam::AoSoA ? fx.aosoa.out_stride() : fx.soa.out_stride();
}

/// Direct (raw entry point) reference evaluation, one call per position.
template <typename T>
void direct_eval(FacadeFixture<T>& fx, Fam fam, DerivLevel d, Outputs<T>& out)
{
  const std::size_t stride = stride_for(fx, fam);
  for (std::size_t p = 0; p < fx.positions.size(); ++p) {
    const Vec3<T>& r = fx.positions[p];
    switch (fam) {
    case Fam::AoS:
      if (d == DerivLevel::V)
        fx.aos.evaluate_v(r.x, r.y, r.z, out.v[p]);
      else if (d == DerivLevel::VGL)
        fx.aos.evaluate_vgl(r.x, r.y, r.z, out.v[p], out.g[p], out.lh[p]);
      else
        fx.aos.evaluate_vgh(r.x, r.y, r.z, out.v[p], out.g[p], out.lh[p]);
      break;
    case Fam::SoA:
      if (d == DerivLevel::V)
        fx.soa.evaluate_v(r.x, r.y, r.z, out.v[p]);
      else if (d == DerivLevel::VGL)
        fx.soa.evaluate_vgl(r.x, r.y, r.z, out.v[p], out.g[p], out.lh[p], stride);
      else
        fx.soa.evaluate_vgh(r.x, r.y, r.z, out.v[p], out.g[p], out.lh[p], stride);
      break;
    default:
      if (d == DerivLevel::V)
        fx.aosoa.evaluate_v(r.x, r.y, r.z, out.v[p]);
      else if (d == DerivLevel::VGL)
        fx.aosoa.evaluate_vgl(r.x, r.y, r.z, out.v[p], out.g[p], out.lh[p], stride);
      else
        fx.aosoa.evaluate_vgh(r.x, r.y, r.z, out.v[p], out.g[p], out.lh[p], stride);
      break;
    }
  }
}

template <typename T>
void run_equivalence(Fam fam, DerivLevel d, int pos_block, bool parallel,
                     TeamHandle team = TeamHandle::whole_machine())
{
  FacadeFixture<T> fx;
  const bool aos = fam == Fam::AoS;
  const bool hessian = d == DerivLevel::VGH;
  const std::size_t stride = stride_for(fx, fam);

  Outputs<T> ref(kBatch, stride, aos, hessian);
  direct_eval(fx, fam, d, ref);

  Outputs<T> got(kBatch, stride, aos, hessian);
  OrbitalSet<T> spo = facade_for(fx, fam);
  OrbitalResource<T> res;
  OrbitalEvalRequest<T> rq;
  rq.deriv = d;
  rq.positions = fx.positions.data();
  rq.count = kBatch;
  rq.v = got.v.data();
  if (d != DerivLevel::V) {
    rq.g = got.g.data();
    rq.lh = got.lh.data();
  }
  rq.stride = stride;
  rq.pos_block = pos_block;
  rq.parallel = parallel;
  rq.team = team;
  spo.evaluate(rq, res);

  // Bit-for-bit across the full padded extent of every requested stream.
  const std::size_t n = stride;
  for (std::size_t p = 0; p < static_cast<std::size_t>(kBatch); ++p) {
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(ref.v[p][i], got.v[p][i]) << "v @ position " << p << " index " << i;
    if (d == DerivLevel::V)
      continue;
    const std::size_t gn = 3 * n;
    for (std::size_t i = 0; i < gn; ++i)
      ASSERT_EQ(ref.g[p][i], got.g[p][i]) << "g @ position " << p << " index " << i;
    const std::size_t hn = hessian ? (aos ? 9 * n : 6 * n) : n;
    for (std::size_t i = 0; i < hn; ++i)
      ASSERT_EQ(ref.lh[p][i], got.lh[p][i]) << "lh @ position " << p << " index " << i;
  }
}

template <typename T>
class OrbitalSetTypedTest : public ::testing::Test
{
};

using RealTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(OrbitalSetTypedTest, RealTypes);

} // namespace

// ---------------------------------------------------------------------------
// The full equivalence matrix: layouts x derivative levels x position blocks
// (P = 1, non-dividing P = 3, whole batch), float and double, remainder
// tiles included by construction (N = 44, tile 16).
// ---------------------------------------------------------------------------

TYPED_TEST(OrbitalSetTypedTest, FacadeMatchesDirectCallsBitForBit)
{
  for (const auto fam : {Fam::AoS, Fam::SoA, Fam::AoSoA})
    for (const auto d : {DerivLevel::V, DerivLevel::VGL, DerivLevel::VGH})
      for (const int pb : {1, 3, 0}) { // 0 = whole batch
        SCOPED_TRACE(::testing::Message()
                     << "family=" << static_cast<int>(fam) << " deriv=" << static_cast<int>(d)
                     << " pos_block=" << pb);
        run_equivalence<TypeParam>(fam, d, pb, /*parallel=*/false);
      }
}

TYPED_TEST(OrbitalSetTypedTest, ParallelRequestsMatchSerialBitForBit)
{
  for (const auto fam : {Fam::AoS, Fam::SoA, Fam::AoSoA})
    for (const auto d : {DerivLevel::V, DerivLevel::VGH}) {
      SCOPED_TRACE(::testing::Message()
                   << "family=" << static_cast<int>(fam) << " deriv=" << static_cast<int>(d));
      run_equivalence<TypeParam>(fam, d, /*pos_block=*/2, /*parallel=*/true);
    }
}

TYPED_TEST(OrbitalSetTypedTest, TeamScheduledRequestsMatchSerialBitForBit)
{
  // Inner-team sizes a partition could hand down: 2, a non-dividing 3
  // (kBatch = 8 positions, 3 tiles), and more threads than work items.
  // Teams only distribute independent (tile, block) items, so every size
  // must reproduce the serial sweep exactly.
  for (const auto fam : {Fam::AoS, Fam::SoA, Fam::AoSoA})
    for (const int nth : {2, 3, 16}) {
      SCOPED_TRACE(::testing::Message()
                   << "family=" << static_cast<int>(fam) << " team=" << nth);
      run_equivalence<TypeParam>(fam, DerivLevel::VGH, /*pos_block=*/2, /*parallel=*/true,
                                 TeamHandle::of(nth));
    }
}

TYPED_TEST(OrbitalSetTypedTest, SerialTeamRunsTheSerialSweep)
{
  // parallel=true with a one-thread team must not open a region at all —
  // it is the serial-inside-crowd path of a flat partition.
  run_equivalence<TypeParam>(Fam::AoSoA, DerivLevel::VGL, /*pos_block=*/3, /*parallel=*/true,
                             TeamHandle::serial());
}

TEST(OrbitalSet, TeamRequestsInsideAnOuterRegionMatchSerial)
{
  // The nested shape the crowd driver runs: an outer region whose members
  // each issue team-scheduled facade requests.  Whether the inner regions
  // fork or serialize is the runtime's nesting capability; the outputs must
  // be bit-identical either way (each member writes its own buffers).
  FacadeFixture<float> fx;
  const std::size_t stride = fx.aosoa.out_stride();
  Outputs<float> ref(kBatch, stride, false, true);
  direct_eval(fx, Fam::AoSoA, DerivLevel::VGH, ref);

  constexpr int kOuter = 2;
  std::vector<std::unique_ptr<Outputs<float>>> got;
  for (int c = 0; c < kOuter; ++c)
    got.push_back(std::make_unique<Outputs<float>>(kBatch, stride, false, true));

  request_nested_levels(2);
  OrbitalSet<float> spo(fx.aosoa);
#pragma omp parallel num_threads(kOuter)
  {
    const int c = thread_id() % kOuter;
    OrbitalResource<float>& res = OrbitalResource<float>::thread_instance();
    OrbitalEvalRequest<float> rq;
    rq.deriv = DerivLevel::VGH;
    rq.positions = fx.positions.data();
    rq.count = kBatch;
    rq.v = got[static_cast<std::size_t>(c)]->v.data();
    rq.g = got[static_cast<std::size_t>(c)]->g.data();
    rq.lh = got[static_cast<std::size_t>(c)]->lh.data();
    rq.stride = stride;
    rq.pos_block = 2;
    rq.parallel = true;
    rq.team = TeamHandle::of(2);
    spo.evaluate(rq, res);
  }

  for (int c = 0; c < kOuter; ++c)
    for (std::size_t p = 0; p < static_cast<std::size_t>(kBatch); ++p)
      for (std::size_t i = 0; i < stride; ++i)
        ASSERT_EQ(ref.v[p][i], got[static_cast<std::size_t>(c)]->v[p][i])
            << "outer member " << c << " position " << p << " index " << i;
}

TEST(OrbitalSet, ThreadInstanceIsPerNestingLevel)
{
  // Regression (nested-team hazard): the master of an inner team IS the
  // outer thread, so a single thread_local shared instance would hand a
  // nested facade call the object an enclosing call is still using.  The
  // shared instance must therefore differ per nesting level, and an outer
  // call's live weight batch must survive a nested call that uses the
  // shared instance.
  auto& outer = OrbitalResource<float>::thread_instance();
  BsplineWeights3D<float>* outer_w = outer.weights_for(4);
  outer_w[0].i0 = 41;
  outer_w[3].i0 = 44;

  OrbitalResource<float>* inner_seen = nullptr;
  request_nested_levels(2);
#pragma omp parallel num_threads(1)
  {
    // Same OS thread (a one-thread region), one nesting level deeper.
    auto& inner = OrbitalResource<float>::thread_instance();
    inner_seen = &inner;
    // A nested user may freely resize/fill its instance...
    BsplineWeights3D<float>* iw = inner.weights_for(16);
    iw[0].i0 = 1000;
  }
#ifdef _OPENMP
  ASSERT_NE(inner_seen, &outer)
      << "nested thread_instance aliased the outer call's live resource";
#endif
  // ...without clobbering the outer call's batch.
  EXPECT_EQ(outer.weights_for(4), outer_w);
  EXPECT_EQ(outer_w[0].i0, 41);
  EXPECT_EQ(outer_w[3].i0, 44);
}

TEST(OrbitalSet, SinglePositionSugarIsTheBatchOfOne)
{
  FacadeFixture<float> fx;
  const std::size_t stride = fx.aosoa.out_stride();
  WalkerSoA<float> a(stride), b(stride);
  OrbitalSet<float> spo(fx.aosoa);
  OrbitalResource<float> res;

  const Vec3<float> r = fx.positions.front();
  spo.evaluate_one(DerivLevel::VGH, r, a.v.data(), a.g.data(), a.h.data(), stride);

  float* v = b.v.data();
  float* g = b.g.data();
  float* h = b.h.data();
  OrbitalEvalRequest<float> rq;
  rq.deriv = DerivLevel::VGH;
  rq.positions = &r;
  rq.count = 1;
  rq.v = &v;
  rq.g = &g;
  rq.lh = &h;
  rq.stride = stride;
  spo.evaluate(rq, res);

  for (std::size_t i = 0; i < stride; ++i)
    ASSERT_EQ(a.v[i], b.v[i]);
  for (std::size_t i = 0; i < 3 * stride; ++i)
    ASSERT_EQ(a.g[i], b.g[i]);
  for (std::size_t i = 0; i < 6 * stride; ++i)
    ASSERT_EQ(a.h[i], b.h[i]);
}

// ---------------------------------------------------------------------------
// Capability surface: what drivers base their explicit schedule decision on.
// ---------------------------------------------------------------------------

TEST(OrbitalSet, CapabilitiesReportEngineFacts)
{
  FacadeFixture<float> fx;

  const auto aos = OrbitalSet<float>(fx.aos).capabilities();
  EXPECT_EQ(aos.layout, OrbitalLayout::AoS);
  EXPECT_FALSE(aos.native_multi_eval);
  EXPECT_EQ(aos.num_tiles, 1);
  EXPECT_EQ(aos.num_splines, kSplines);

  const auto soa = OrbitalSet<float>(fx.soa).capabilities();
  EXPECT_EQ(soa.layout, OrbitalLayout::SoA);
  EXPECT_TRUE(soa.native_multi_eval);
  EXPECT_EQ(soa.num_tiles, 1);
  EXPECT_EQ(soa.out_stride, fx.soa.out_stride());

  const auto aosoa = OrbitalSet<float>(fx.aosoa).capabilities();
  EXPECT_EQ(aosoa.layout, OrbitalLayout::AoSoA);
  EXPECT_TRUE(aosoa.native_multi_eval);
  EXPECT_EQ(aosoa.num_tiles, 3); // 44 splines in tiles of 16: 16 + 16 + 12
  EXPECT_EQ(aosoa.out_stride, fx.aosoa.out_stride());
}

TEST(OrbitalSet, TunedPosBlockIsAdvertisedAndHarmless)
{
  FacadeFixture<float> fx;
  OrbitalSet<float> spo(fx.aosoa);
  EXPECT_EQ(spo.capabilities().preferred_pos_block, 0);
  spo.set_pos_block(3);
  EXPECT_EQ(spo.capabilities().preferred_pos_block, 3);

  // A tuned block only reorders the sweep; outputs stay bit-identical.
  const std::size_t stride = fx.aosoa.out_stride();
  Outputs<float> ref(kBatch, stride, false, true);
  direct_eval(fx, Fam::AoSoA, DerivLevel::VGH, ref);
  Outputs<float> got(kBatch, stride, false, true);
  OrbitalResource<float> res;
  OrbitalEvalRequest<float> rq;
  rq.deriv = DerivLevel::VGH;
  rq.positions = fx.positions.data();
  rq.count = kBatch;
  rq.v = got.v.data();
  rq.g = got.g.data();
  rq.lh = got.lh.data();
  rq.stride = stride;
  spo.evaluate(rq, res); // rq.pos_block == 0 -> the tuned 3 applies
  for (std::size_t p = 0; p < static_cast<std::size_t>(kBatch); ++p)
    for (std::size_t i = 0; i < stride; ++i)
      ASSERT_EQ(ref.v[p][i], got.v[p][i]);
}

TEST(OrbitalSet, DefaultConstructedIsInvalid)
{
  OrbitalSet<float> spo;
  EXPECT_FALSE(spo.valid());
  FacadeFixture<float> fx;
  spo = OrbitalSet<float>(fx.soa);
  EXPECT_TRUE(spo.valid());
}

TEST(OrbitalSet, ResourceCapacityIsStickyAcrossShrinkingBatches)
{
  OrbitalResource<float> res;
  auto* w8 = res.weights_for(8);
  EXPECT_GE(res.weights.size(), 8u);
  auto* w3 = res.weights_for(3); // no shrink, no reallocation
  EXPECT_EQ(w8, w3);
  EXPECT_GE(res.weights.size(), 8u);
  res.resize_tables(5);
  EXPECT_EQ(res.v.size(), 5u);
  EXPECT_EQ(res.g.size(), 5u);
  EXPECT_EQ(res.lh.size(), 5u);
}

TEST(OrbitalSet, ZeroCountRequestIsANoOp)
{
  FacadeFixture<float> fx;
  OrbitalSet<float> spo(fx.aosoa);
  OrbitalResource<float> res;
  OrbitalEvalRequest<float> rq; // count == 0, null pointers
  spo.evaluate(rq, res);        // must not touch anything
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Mixed precision (SP storage, DP accumulation): BsplineSoA<float, double> /
// MultiBspline<float, double> behind the same facade.
//
// The exact oracle: a mixed engine reads float coefficients, upcasts each
// element, and accumulates in double with the SAME per-element term order as
// the plain kernel — so its float outputs must equal, BIT FOR BIT, the
// narrowed outputs of the plain DP engine run over the upcast
// (convert_storage<double>) copy of the same float table.  That turns every
// accuracy test below into an exact ASSERT_EQ, not a tolerance band.
// ---------------------------------------------------------------------------

namespace {

struct MixedFixture
{
  std::shared_ptr<CoefStorage<float>> coefs;  ///< the table both paths read
  std::shared_ptr<CoefStorage<double>> wide;  ///< its exact upcast (oracle input)
  BsplineSoA<float, double> soa_mx;
  MultiBspline<float, double> aosoa_mx;
  BsplineSoA<double> soa_dp;
  MultiBspline<double> aosoa_dp;
  std::vector<Vec3<float>> positions;
  std::vector<Vec3<double>> positions_dp; ///< identical coordinates, upcast

  // The float table is produced the way the drivers produce it — a wide
  // build narrowed through convert_storage — so its padding tail is zeroed
  // exactly like the upcast oracle table's.
  MixedFixture()
      : coefs(convert_storage<float>(
            *make_random_storage<double>(Grid3D<double>::cube(8, 1.0), kSplines, 404))),
        wide(convert_storage<double>(*coefs)), soa_mx(coefs), aosoa_mx(*coefs, kTile),
        soa_dp(wide), aosoa_dp(*wide, kTile)
  {
    Xoshiro256 rng(405);
    for (int p = 0; p < kBatch; ++p) {
      const auto x = static_cast<float>(rng.uniform());
      const auto y = static_cast<float>(rng.uniform());
      const auto z = static_cast<float>(rng.uniform());
      positions.push_back(Vec3<float>{x, y, z});
      positions_dp.push_back(Vec3<double>{x, y, z});
    }
  }
};

/// Facade request over prepared output pointer tables (both element types).
template <typename T, typename Engine>
void facade_eval(const Engine& engine, DerivLevel d, const std::vector<Vec3<T>>& positions,
                 Outputs<T>& out, std::size_t stride, int pos_block)
{
  OrbitalSet<T> spo(engine);
  OrbitalResource<T> res;
  OrbitalEvalRequest<T> rq;
  rq.deriv = d;
  rq.positions = positions.data();
  rq.count = static_cast<int>(positions.size());
  rq.v = out.v.data();
  if (d != DerivLevel::V) {
    rq.g = out.g.data();
    rq.lh = out.lh.data();
  }
  rq.stride = stride;
  rq.pos_block = pos_block;
  spo.evaluate(rq, res);
}

/// ASSERT the mixed float outputs equal the narrowed DP-oracle outputs, bit
/// for bit, across the full padded extent of every requested stream.
void expect_exact_oracle(const Outputs<float>& mixed, const Outputs<double>& oracle,
                         DerivLevel d, std::size_t stride)
{
  const bool hessian = d == DerivLevel::VGH;
  for (std::size_t p = 0; p < static_cast<std::size_t>(kBatch); ++p) {
    for (std::size_t i = 0; i < stride; ++i)
      ASSERT_EQ(mixed.v[p][i], static_cast<float>(oracle.v[p][i]))
          << "v @ position " << p << " index " << i;
    if (d == DerivLevel::V)
      continue;
    for (std::size_t i = 0; i < 3 * stride; ++i)
      ASSERT_EQ(mixed.g[p][i], static_cast<float>(oracle.g[p][i]))
          << "g @ position " << p << " index " << i;
    const std::size_t hn = hessian ? 6 * stride : stride;
    for (std::size_t i = 0; i < hn; ++i)
      ASSERT_EQ(mixed.lh[p][i], static_cast<float>(oracle.lh[p][i]))
          << "lh @ position " << p << " index " << i;
  }
}

} // namespace

TEST(MixedPrecision, SoASinglePositionMatchesWideOracleBitForBit)
{
  MixedFixture fx;
  const std::size_t stride = fx.soa_mx.out_stride();
  for (const auto d : {DerivLevel::V, DerivLevel::VGL, DerivLevel::VGH}) {
    SCOPED_TRACE(::testing::Message() << "deriv=" << static_cast<int>(d));
    Outputs<float> mixed(kBatch, stride, false, d == DerivLevel::VGH);
    Outputs<double> oracle(kBatch, stride, false, d == DerivLevel::VGH);
    for (std::size_t p = 0; p < static_cast<std::size_t>(kBatch); ++p) {
      const Vec3<float>& r = fx.positions[p];
      const Vec3<double>& rd = fx.positions_dp[p];
      if (d == DerivLevel::V) {
        fx.soa_mx.evaluate_v(r.x, r.y, r.z, mixed.v[p]);
        fx.soa_dp.evaluate_v(rd.x, rd.y, rd.z, oracle.v[p]);
      } else if (d == DerivLevel::VGL) {
        fx.soa_mx.evaluate_vgl(r.x, r.y, r.z, mixed.v[p], mixed.g[p], mixed.lh[p], stride);
        fx.soa_dp.evaluate_vgl(rd.x, rd.y, rd.z, oracle.v[p], oracle.g[p], oracle.lh[p], stride);
      } else {
        fx.soa_mx.evaluate_vgh(r.x, r.y, r.z, mixed.v[p], mixed.g[p], mixed.lh[p], stride);
        fx.soa_dp.evaluate_vgh(rd.x, rd.y, rd.z, oracle.v[p], oracle.g[p], oracle.lh[p], stride);
      }
    }
    expect_exact_oracle(mixed, oracle, d, stride);
  }
}

TEST(MixedPrecision, FacadeMatrixMatchesWideOracleBitForBit)
{
  // The full mixed matrix through the facade: SoA and AoSoA (remainder tile
  // in play by construction), V / VGL / VGH, position blocks P = 1, a
  // non-dividing P = 3, and the whole batch.  The oracle runs the SAME
  // facade path at DP over the upcast table, so multi-position scheduling,
  // tiling and remainder handling are compared like for like.
  MixedFixture fx;
  for (const bool tiled : {false, true})
    for (const auto d : {DerivLevel::V, DerivLevel::VGL, DerivLevel::VGH})
      for (const int pb : {1, 3, 0}) {
        SCOPED_TRACE(::testing::Message() << "tiled=" << tiled << " deriv=" << static_cast<int>(d)
                                          << " pos_block=" << pb);
        const std::size_t stride = tiled ? fx.aosoa_mx.out_stride() : fx.soa_mx.out_stride();
        Outputs<float> mixed(kBatch, stride, false, d == DerivLevel::VGH);
        Outputs<double> oracle(kBatch, stride, false, d == DerivLevel::VGH);
        if (tiled) {
          facade_eval(fx.aosoa_mx, d, fx.positions, mixed, stride, pb);
          facade_eval(fx.aosoa_dp, d, fx.positions_dp, oracle, stride, pb);
        } else {
          facade_eval(fx.soa_mx, d, fx.positions, mixed, stride, pb);
          facade_eval(fx.soa_dp, d, fx.positions_dp, oracle, stride, pb);
        }
        expect_exact_oracle(mixed, oracle, d, stride);
      }
}

TEST(MixedPrecision, UlpBoundedAgainstIndependentDpReference)
{
  // Accuracy against a DP build from the ORIGINAL samples (not the upcast of
  // the float table): the only error left in the mixed path is coefficient
  // storage narrowing, so every output must sit within a small ULP band of
  // the DP reference at each stream's own magnitude.  (The SP-native path
  // adds SP accumulation error on top; the mixed path must not.)
  const int ng = 12, n = 8;
  const auto pw = PlaneWaveOrbitals::make(n, Vec3<double>{1, 1, 1}, 3);
  const auto dp = build_planewave_storage(Grid3D<double>::cube(ng, 1.0), pw);
  const auto sp = convert_storage<float>(*dp);
  const BsplineSoA<double> ref(dp);
  const BsplineSoA<float, double> mx(sp);
  const std::size_t stride = ref.out_stride();
  WalkerSoA<double> r_out(stride);
  WalkerSoA<float> m_out(mx.out_stride());

  // Stream scales first (|v|, |g|, |h| magnitudes differ by ~2*pi factors).
  const auto pos = test::random_positions(Grid3D<double>::cube(ng, 1.0), 50, 9);
  double sv = 0, sg = 0, sh = 0;
  for (const auto& r : pos) {
    ref.evaluate_vgh(r[0], r[1], r[2], r_out.v.data(), r_out.g.data(), r_out.h.data());
    for (int k = 0; k < n; ++k) {
      const auto q = static_cast<std::size_t>(k);
      sv = std::max(sv, std::abs(r_out.v[q]));
      for (int d = 0; d < 3; ++d)
        sg = std::max(sg, std::abs(r_out.g[static_cast<std::size_t>(d) * stride + q]));
      for (int d = 0; d < 6; ++d)
        sh = std::max(sh, std::abs(r_out.h[static_cast<std::size_t>(d) * stride + q]));
    }
  }
  constexpr double kUlp = 1.1920928955078125e-7; // float epsilon
  constexpr double kMaxUlps = 64.0; // narrowing error budget: well under SP-native
  for (const auto& r : pos) {
    mx.evaluate_vgh(static_cast<float>(r[0]), static_cast<float>(r[1]), static_cast<float>(r[2]),
                    m_out.v.data(), m_out.g.data(), m_out.h.data());
    ref.evaluate_vgh(r[0], r[1], r[2], r_out.v.data(), r_out.g.data(), r_out.h.data());
    for (int k = 0; k < n; ++k) {
      const auto q = static_cast<std::size_t>(k);
      const auto mq = static_cast<std::size_t>(k);
      ASSERT_LE(std::abs(m_out.v[mq] - r_out.v[q]), kMaxUlps * kUlp * sv) << "v orbital " << k;
      for (int d = 0; d < 3; ++d)
        ASSERT_LE(std::abs(m_out.g[static_cast<std::size_t>(d) * mx.out_stride() + mq] -
                           r_out.g[static_cast<std::size_t>(d) * stride + q]),
                  kMaxUlps * kUlp * sg)
            << "g[" << d << "] orbital " << k;
      for (int d = 0; d < 6; ++d)
        ASSERT_LE(std::abs(m_out.h[static_cast<std::size_t>(d) * mx.out_stride() + mq] -
                           r_out.h[static_cast<std::size_t>(d) * stride + q]),
                  kMaxUlps * kUlp * sh)
            << "h[" << d << "] orbital " << k;
    }
  }
}

TEST(MixedPrecision, CapabilitiesSurfacePrecisionAndTableBytes)
{
  MixedFixture fx;
  FacadeFixture<float> nfx;

  const auto mx_soa = OrbitalSet<float>(fx.soa_mx).capabilities();
  EXPECT_EQ(mx_soa.precision, PrecisionPath::Mixed);
  EXPECT_EQ(mx_soa.layout, OrbitalLayout::SoA);
  EXPECT_TRUE(mx_soa.native_multi_eval);
  EXPECT_EQ(mx_soa.coef_table_bytes, fx.coefs->size_bytes());

  const auto mx_aosoa = OrbitalSet<float>(fx.aosoa_mx).capabilities();
  EXPECT_EQ(mx_aosoa.precision, PrecisionPath::Mixed);
  EXPECT_EQ(mx_aosoa.layout, OrbitalLayout::AoSoA);
  EXPECT_EQ(mx_aosoa.num_tiles, 3);
  EXPECT_EQ(mx_aosoa.coef_table_bytes, fx.aosoa_mx.coef_bytes());

  // Native engines surface Native + their own footprint.  At N = 44 both
  // element types pad to 48 lanes (16-float vs 8-double alignment), so the
  // DP build of the same logical table reports exactly twice the bytes.
  const auto nat = OrbitalSet<float>(nfx.soa).capabilities();
  EXPECT_EQ(nat.precision, PrecisionPath::Native);
  EXPECT_EQ(nat.coef_table_bytes, nfx.coefs->size_bytes());
  const auto dp = OrbitalSet<double>(fx.soa_dp).capabilities();
  EXPECT_EQ(dp.precision, PrecisionPath::Native);
  EXPECT_EQ(dp.coef_table_bytes, 2 * mx_soa.coef_table_bytes);
}

TEST(MixedPrecision, MixedIsDeterministicAcrossRepeatedCalls)
{
  // Same inputs -> same bits, call after call (no hidden state in the
  // blocked accumulation path).
  MixedFixture fx;
  const std::size_t stride = fx.soa_mx.out_stride();
  WalkerSoA<float> a(stride), b(stride);
  const Vec3<float>& r = fx.positions.front();
  fx.soa_mx.evaluate_vgh(r.x, r.y, r.z, a.v.data(), a.g.data(), a.h.data(), stride);
  fx.soa_mx.evaluate_vgh(r.x, r.y, r.z, b.v.data(), b.g.data(), b.h.data(), stride);
  for (std::size_t i = 0; i < stride; ++i)
    ASSERT_EQ(a.v[i], b.v[i]);
  for (std::size_t i = 0; i < 3 * stride; ++i)
    ASSERT_EQ(a.g[i], b.g[i]);
  for (std::size_t i = 0; i < 6 * stride; ++i)
    ASSERT_EQ(a.h[i], b.h[i]);
}
