// Crash-consistent checkpoint/restore + fault injection (see checkpoint.h
// for the format and the consistency argument).  This translation unit is
// the ONLY place in src/ that touches checkpoint files on disk — enforced
// by the `checkpoint-io` lint rule.
#include "qmc/checkpoint.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "qmc/miniqmc_context.h"

namespace mqc::ckpt {

// --------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven
// --------------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept
{
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

} // namespace

std::uint32_t crc32(const void* data, std::size_t len) noexcept
{
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i)
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

const char* load_error_name(LoadError e) noexcept
{
  switch (e) {
  case LoadError::None: return "none";
  case LoadError::Open: return "open";
  case LoadError::Magic: return "magic";
  case LoadError::Version: return "version";
  case LoadError::Header: return "header";
  case LoadError::ConfigHash: return "config-hash";
  case LoadError::Truncated: return "truncated";
  case LoadError::SectionCrc: return "section-crc";
  case LoadError::Layout: return "layout";
  }
  return "unknown";
}

// --------------------------------------------------------------------------
// File I/O
// --------------------------------------------------------------------------

namespace {

constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4 + 4; // magic..count + crc
constexpr std::size_t kSectionHeadSize = 4 + 4 + 8 + 4; // id, index, len, crc

bool read_file(const std::string& path, std::vector<std::uint8_t>& out)
{
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f)
    return false;
  out.clear();
  std::array<std::uint8_t, 1 << 16> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0)
    out.insert(out.end(), buf.data(), buf.data() + n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::uint8_t* data, std::size_t size)
{
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f)
    return false;
  const bool wrote = size == 0 || std::fwrite(data, 1, size, f) == size;
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  return wrote && flushed && closed;
}

std::vector<std::uint8_t> serialize_snapshot(const Snapshot& snap)
{
  BlobWriter head;
  head.raw(kMagic, sizeof kMagic);
  head.u32(kFormatVersion);
  head.u64(snap.config_hash);
  head.u32(static_cast<std::uint32_t>(snap.sections.size()));
  std::vector<std::uint8_t> bytes = head.take();
  const std::uint32_t hcrc = crc32(bytes.data(), bytes.size());
  BlobWriter body;
  body.u32(hcrc);
  for (const auto& s : snap.sections) {
    body.u32(static_cast<std::uint32_t>(s.id));
    body.u32(s.index);
    body.u64(static_cast<std::uint64_t>(s.payload.size()));
    body.u32(crc32(s.payload.data(), s.payload.size()));
    body.raw(s.payload.data(), s.payload.size());
  }
  const std::vector<std::uint8_t> rest = body.take();
  bytes.insert(bytes.end(), rest.begin(), rest.end());
  return bytes;
}

std::string hex16(std::uint64_t v)
{
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

LoadResult parse_snapshot(const std::string& path, const std::vector<std::uint8_t>& bytes,
                          std::uint64_t expected_config_hash, Snapshot& out)
{
  LoadResult res;
  res.path_used = path;
  auto fail = [&](LoadError e, const std::string& detail) {
    res.error = e;
    res.detail = path + ": " + detail;
    return res;
  };
  if (bytes.size() < kHeaderSize)
    return fail(LoadError::Truncated, "file shorter than the checkpoint header");
  BlobReader r(bytes.data(), bytes.size());
  char magic[8];
  r.raw(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    return fail(LoadError::Magic, "not a checkpoint file (bad magic)");
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion)
    return fail(LoadError::Version,
                "format version " + std::to_string(version) + " (this build reads " +
                    std::to_string(kFormatVersion) + ")");
  const std::uint64_t config_hash = r.u64();
  const std::uint32_t count = r.u32();
  const std::uint32_t stored_hcrc = r.u32();
  if (stored_hcrc != crc32(bytes.data(), kHeaderSize - 4))
    return fail(LoadError::Header, "header CRC mismatch");
  if (config_hash != expected_config_hash)
    return fail(LoadError::ConfigHash,
                "snapshot was written by a different configuration (config hash " +
                    hex16(config_hash) + ", this run expects " + hex16(expected_config_hash) +
                    ")");

  out.config_hash = config_hash;
  out.sections.clear();
  out.sections.reserve(count);
  std::size_t off = kHeaderSize;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (bytes.size() - off < kSectionHeadSize)
      return fail(LoadError::Truncated, "file ends inside section header " + std::to_string(i));
    BlobReader sh(bytes.data() + off, kSectionHeadSize);
    Section s;
    s.id = static_cast<SectionId>(sh.u32());
    s.index = sh.u32();
    const std::uint64_t len = sh.u64();
    const std::uint32_t stored_crc = sh.u32();
    off += kSectionHeadSize;
    if (bytes.size() - off < len)
      return fail(LoadError::Truncated, "file ends inside section payload " + std::to_string(i));
    s.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                     bytes.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    if (stored_crc != crc32(s.payload.data(), s.payload.size()))
      return fail(LoadError::SectionCrc, "CRC mismatch in section " + std::to_string(i) +
                                             " (id " + std::to_string(static_cast<int>(s.id)) +
                                             ", index " + std::to_string(s.index) + ")");
    out.sections.push_back(std::move(s));
  }
  return res;
}

} // namespace

bool write_snapshot(const std::string& path, const Snapshot& snap, std::string* error)
{
  const std::vector<std::uint8_t> bytes = serialize_snapshot(snap);
  const std::string tmp = path + ".tmp";
  if (!write_file(tmp, bytes.data(), bytes.size())) {
    if (error)
      *error = "cannot write " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  // Rotate: the previous snapshot survives as `.prev` until the NEXT write,
  // so the loader always has a last-good fallback one generation back.
  const std::string prev = path + ".prev";
  std::remove(prev.c_str());
  std::rename(path.c_str(), prev.c_str()); // may fail on the first write: fine
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error)
      *error = "cannot rename " + tmp + " -> " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

LoadResult read_snapshot(const std::string& path, std::uint64_t expected_config_hash,
                         Snapshot& out)
{
  std::vector<std::uint8_t> bytes;
  if (!read_file(path, bytes)) {
    LoadResult res;
    res.error = LoadError::Open;
    res.detail = path + ": cannot open";
    res.path_used = path;
    return res;
  }
  return parse_snapshot(path, bytes, expected_config_hash, out);
}

LoadResult read_snapshot_with_fallback(const std::string& path,
                                       std::uint64_t expected_config_hash, Snapshot& out)
{
  LoadResult primary = read_snapshot(path, expected_config_hash, out);
  if (primary.loaded())
    return primary;
  LoadResult prev = read_snapshot(path + ".prev", expected_config_hash, out);
  if (prev.loaded()) {
    prev.fallback_used = true;
    prev.detail = "primary rejected (" + primary.detail + "); resumed from .prev";
    return prev;
  }
  primary.detail += "; fallback " + prev.detail;
  return primary;
}

// --------------------------------------------------------------------------
// Fault injection
// --------------------------------------------------------------------------

FaultPlan parse_fault_plan(const std::string& spec)
{
  FaultPlan plan;
  std::size_t pos = 0;
  auto warn = [](const std::string& tok, const char* why) {
    std::fprintf(stderr, "miniqmc: ignoring malformed MQC_FAULT_INJECT token '%s' (%s)\n",
                 tok.c_str(), why);
  };
  while (pos <= spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos)
      end = spec.size();
    std::string tok = spec.substr(pos, end - pos);
    pos = end + 1;
    // trim
    while (!tok.empty() && (tok.front() == ' ' || tok.front() == '\t'))
      tok.erase(tok.begin());
    while (!tok.empty() && (tok.back() == ' ' || tok.back() == '\t'))
      tok.pop_back();
    if (tok.empty()) {
      if (pos > spec.size())
        break;
      continue;
    }
    const std::size_t at = tok.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= tok.size()) {
      warn(tok, "expected kind@arg");
      continue;
    }
    const std::string kind = tok.substr(0, at);
    const std::string arg = tok.substr(at + 1);
    auto parse_int = [](const std::string& s, int& out_val) {
      // Digits only — strtol would also accept "+3", "-0" and leading
      // whitespace, silently arming a step the harness never asked for
      // (signed forms are operator typos, not valid fault specs).
      if (s.empty() || s.size() > 10)
        return false;
      long v = 0;
      for (const char c : s) {
        if (c < '0' || c > '9')
          return false;
        v = v * 10 + (c - '0');
      }
      if (v > 1000000000L)
        return false;
      out_val = static_cast<int>(v);
      return true;
    };
    if (kind == "abort") {
      if (!parse_int(arg, plan.abort_at_step))
        warn(tok, "abort needs a non-negative step number");
    } else if (kind == "truncate") {
      if (!parse_int(arg, plan.truncate_tail))
        warn(tok, "truncate needs a non-negative byte count");
    } else if (kind == "corrupt") {
      if (arg == "header")
        plan.corrupt_header = true;
      else if (arg == "meta")
        plan.corrupt_meta = true;
      else if (arg.rfind("walker", 0) == 0) {
        if (!parse_int(arg.substr(6), plan.corrupt_walker))
          warn(tok, "corrupt@walker needs a walker id");
      } else
        warn(tok, "corrupt target must be header|meta|walker<i>");
    } else {
      warn(tok, "unknown fault kind");
    }
    if (pos > spec.size())
      break;
  }
  return plan;
}

namespace {

/// Byte offset of the payload of the first (id, index) section, or npos.
std::size_t section_payload_offset(const std::vector<std::uint8_t>& bytes, std::uint32_t want_id,
                                   std::uint32_t want_index, std::size_t* len_out)
{
  std::size_t off = kHeaderSize;
  while (bytes.size() - off >= kSectionHeadSize && off < bytes.size()) {
    BlobReader sh(bytes.data() + off, kSectionHeadSize);
    const std::uint32_t id = sh.u32();
    const std::uint32_t index = sh.u32();
    const std::uint64_t len = sh.u64();
    (void)sh.u32();
    off += kSectionHeadSize;
    if (bytes.size() - off < len)
      return std::string::npos;
    if (id == want_id && index == want_index) {
      if (len_out)
        *len_out = static_cast<std::size_t>(len);
      return off;
    }
    off += static_cast<std::size_t>(len);
  }
  return std::string::npos;
}

} // namespace

bool apply_file_faults(const std::string& path, const FaultPlan& plan)
{
  if (!plan.corrupt_header && !plan.corrupt_meta && plan.corrupt_walker < 0 &&
      plan.truncate_tail <= 0)
    return true;
  // Every requested damage token is individually confirmed or loudly
  // reported as a NO-OP on stderr: a fault that silently fails to fire lets
  // a harness scenario "pass" while injecting nothing (the out-of-range
  // `corrupt@walker<i>` bug) — tools/fault_harness.py treats an unconfirmed
  // injection as a failure.
  bool all_applied = true;
  auto applied = [&](const char* what) {
    std::fprintf(stderr, "miniqmc: fault-injected: %s (%s)\n", what, path.c_str());
  };
  auto noop = [&](const char* what, const char* why) {
    std::fprintf(stderr, "miniqmc: fault-injection NO-OP: %s (%s: %s)\n", what, why,
                 path.c_str());
    all_applied = false;
  };
  std::vector<std::uint8_t> bytes;
  if (!read_file(path, bytes)) {
    noop("corrupt/truncate", "snapshot file unreadable");
    return false;
  }
  auto flip = [&](std::size_t off) {
    if (off < bytes.size())
      bytes[off] ^= 0x5au;
  };
  if (plan.corrupt_header) {
    if (bytes.size() > 12) {
      flip(12); // inside the config-hash field
      applied("corrupt@header");
    } else {
      noop("corrupt@header", "file shorter than the header");
    }
  }
  if (plan.corrupt_meta) {
    std::size_t len = 0;
    const std::size_t off =
        section_payload_offset(bytes, static_cast<std::uint32_t>(SectionId::Meta), 0, &len);
    if (off != std::string::npos && len > 0) {
      flip(off + len / 2);
      applied("corrupt@meta");
    } else {
      noop("corrupt@meta", "snapshot has no meta section");
    }
  }
  if (plan.corrupt_walker >= 0) {
    std::size_t len = 0;
    const std::size_t off =
        section_payload_offset(bytes, static_cast<std::uint32_t>(SectionId::Walker),
                               static_cast<std::uint32_t>(plan.corrupt_walker), &len);
    char what[64];
    std::snprintf(what, sizeof what, "corrupt@walker%d", plan.corrupt_walker);
    if (off != std::string::npos && len > 0) {
      flip(off + len / 2);
      applied(what);
    } else {
      noop(what, "snapshot has no such walker section (id >= population?)");
    }
  }
  if (plan.truncate_tail > 0) {
    const auto cut = static_cast<std::size_t>(plan.truncate_tail);
    bytes.resize(cut >= bytes.size() ? 0 : bytes.size() - cut);
    applied("truncate");
  }
  if (!write_file(path, bytes.data(), bytes.size())) {
    noop("corrupt/truncate", "snapshot rewrite failed");
    return false;
  }
  return all_applied;
}

} // namespace mqc::ckpt

// ==========================================================================
// Driver glue: walker (de)serialization, config hash, epoch protocol
// ==========================================================================

namespace mqc::detail {

namespace {

using ckpt::BlobReader;
using ckpt::BlobWriter;
using ckpt::Section;
using ckpt::SectionId;
using ckpt::Snapshot;

// FNV-1a 64-bit over the trajectory-determining config fields.
struct Fnv1a
{
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t v) noexcept
  {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
};

constexpr std::uint8_t kDetSherman = 0;
constexpr std::uint8_t kDetDelayed = 1;

void serialize_det(BlobWriter& w, const DetUpdater& det)
{
  const int n = det.size();
  w.u32(static_cast<std::uint32_t>(n));
  if (det.kind() == DetUpdateKind::Delayed) {
    const DelayedDeterminant& d = det.delayed();
    w.u8(kDetDelayed);
    w.raw(d.base_inverse().data(), static_cast<std::size_t>(n) * n * sizeof(double));
    w.raw(d.base_matrix().data(), static_cast<std::size_t>(n) * n * sizeof(double));
    w.f64(d.log_det());
    w.f64(d.sign());
    const auto k = static_cast<std::uint32_t>(d.pending_columns().size());
    w.u32(k);
    for (const int c : d.pending_columns())
      w.i32(c);
    auto panel = [&](const std::vector<std::vector<double>>& cols) {
      for (const auto& col : cols) {
        w.u32(static_cast<std::uint32_t>(col.size()));
        w.raw(col.data(), col.size() * sizeof(double));
      }
    };
    panel(d.pending_u());
    panel(d.pending_bu());
    panel(d.pending_vtb());
  } else {
    const DiracDeterminant& d = det.dirac();
    w.u8(kDetSherman);
    w.raw(d.inverse().data(), static_cast<std::size_t>(n) * n * sizeof(double));
    w.f64(d.log_det());
    w.f64(d.sign());
  }
}

bool restore_det(BlobReader& r, DetUpdater& det, int norb)
{
  const auto n = static_cast<int>(r.u32());
  const std::uint8_t kind = r.u8();
  if (!r.ok() || n != norb)
    return false;
  const auto want = det.kind() == DetUpdateKind::Delayed ? kDetDelayed : kDetSherman;
  if (kind != want)
    return false;
  if (kind == kDetDelayed) {
    Matrix<double> binv(n), a_current(n);
    r.raw(binv.data(), static_cast<std::size_t>(n) * n * sizeof(double));
    r.raw(a_current.data(), static_cast<std::size_t>(n) * n * sizeof(double));
    const double log_det = r.f64();
    const double sign = r.f64();
    const std::uint32_t k = r.u32();
    if (!r.ok() || k > static_cast<std::uint32_t>(det.delay()))
      return false;
    std::vector<int> cols(k);
    for (auto& c : cols) {
      c = static_cast<int>(r.i32());
      if (c < 0 || c >= n)
        return false;
    }
    auto panel = [&](std::vector<std::vector<double>>& out) {
      out.resize(k);
      for (auto& col : out) {
        const std::uint32_t len = r.u32();
        if (len != static_cast<std::uint32_t>(n)) {
          out.clear();
          return false;
        }
        col.resize(len);
        r.raw(col.data(), col.size() * sizeof(double));
      }
      return true;
    };
    std::vector<std::vector<double>> u, bu, vtb;
    if (!panel(u) || !panel(bu) || !panel(vtb) || !r.ok())
      return false;
    det.delayed().restore(std::move(binv), std::move(a_current), log_det, sign, std::move(cols),
                          std::move(u), std::move(bu), std::move(vtb));
  } else {
    Matrix<double> ainv(n);
    r.raw(ainv.data(), static_cast<std::size_t>(n) * n * sizeof(double));
    const double log_det = r.f64();
    const double sign = r.f64();
    if (!r.ok())
      return false;
    det.dirac().restore(std::move(ainv), log_det, sign);
  }
  return r.ok();
}

std::vector<std::uint8_t> serialize_walker(WalkerState& w, const MiniQMCSystem& sys,
                                           const MiniQMCConfig& cfg, int wid,
                                           bool include_dets = true)
{
  BlobWriter out;
  out.u32(static_cast<std::uint32_t>(wid));

  const Xoshiro256::State rs = w.rng.state();
  for (const std::uint64_t word : rs.s)
    out.u64(word);
  out.u8(rs.have_gauss ? 1 : 0);
  out.f64(rs.cached_gauss);

  out.u64(static_cast<std::uint64_t>(w.accepted));
  out.u64(static_cast<std::uint64_t>(w.attempted));
  out.u64(static_cast<std::uint64_t>(w.orbital_evals));

  out.u32(static_cast<std::uint32_t>(sys.nel));
  for (int e = 0; e < sys.nel; ++e) {
    const Vec3<qmc_real> r = w.elec_soa[e];
    out.f32(r.x);
    out.f32(r.y);
    out.f32(r.z);
  }

  // Committed distance tables of the configured layout pair, verbatim (the
  // other pair is never evaluated in the sweep; see state_r() rationale).
  out.u8(cfg.optimized_dt_jastrow ? 1 : 0);
  auto dump = [&](const qmc_real* p, std::size_t count) {
    out.u64(static_cast<std::uint64_t>(count));
    out.raw(p, count * sizeof(qmc_real));
  };
  if (cfg.optimized_dt_jastrow) {
    dump(w.ee_soa->state_r(), w.ee_soa->state_count());
    dump(w.ee_soa->state_dx(), w.ee_soa->state_count());
    dump(w.ee_soa->state_dy(), w.ee_soa->state_count());
    dump(w.ee_soa->state_dz(), w.ee_soa->state_count());
    dump(w.ei_soa->state_r(), w.ei_soa->state_count());
    dump(w.ei_soa->state_dx(), w.ei_soa->state_count());
    dump(w.ei_soa->state_dy(), w.ei_soa->state_count());
    dump(w.ei_soa->state_dz(), w.ei_soa->state_count());
  } else {
    dump(w.ee_aos->state_r(), w.ee_aos->state_count());
    dump(reinterpret_cast<const qmc_real*>(w.ee_aos->state_dr()), 3 * w.ee_aos->state_count());
    dump(w.ei_aos->state_r(), w.ei_aos->state_count());
    dump(reinterpret_cast<const qmc_real*>(w.ei_aos->state_dr()), 3 * w.ei_aos->state_count());
  }

  if (include_dets) {
    serialize_det(out, w.det_up);
    serialize_det(out, w.det_dn);
  }
  return out.take();
}

bool restore_walker(const std::vector<std::uint8_t>& payload, WalkerState& w,
                    const MiniQMCSystem& sys, const MiniQMCConfig& cfg, int wid,
                    bool include_dets = true)
{
  BlobReader r(payload);
  if (static_cast<int>(r.u32()) != wid)
    return false;

  Xoshiro256::State rs;
  for (auto& word : rs.s)
    word = r.u64();
  rs.have_gauss = r.u8() != 0;
  rs.cached_gauss = r.f64();

  const std::uint64_t accepted = r.u64();
  const std::uint64_t attempted = r.u64();
  const std::uint64_t orbital_evals = r.u64();

  const auto nel = static_cast<int>(r.u32());
  if (!r.ok() || nel != sys.nel)
    return false;
  std::vector<Vec3<qmc_real>> pos(static_cast<std::size_t>(nel));
  for (auto& p : pos) {
    p.x = r.f32();
    p.y = r.f32();
    p.z = r.f32();
  }

  const bool optimized = r.u8() != 0;
  if (!r.ok() || optimized != cfg.optimized_dt_jastrow)
    return false;
  auto load = [&](qmc_real* p, std::size_t count) {
    if (static_cast<std::size_t>(r.u64()) != count)
      return false;
    r.raw(p, count * sizeof(qmc_real));
    return r.ok();
  };
  bool tables_ok;
  if (optimized) {
    tables_ok = load(w.ee_soa->state_r(), w.ee_soa->state_count()) &&
                load(w.ee_soa->state_dx(), w.ee_soa->state_count()) &&
                load(w.ee_soa->state_dy(), w.ee_soa->state_count()) &&
                load(w.ee_soa->state_dz(), w.ee_soa->state_count()) &&
                load(w.ei_soa->state_r(), w.ei_soa->state_count()) &&
                load(w.ei_soa->state_dx(), w.ei_soa->state_count()) &&
                load(w.ei_soa->state_dy(), w.ei_soa->state_count()) &&
                load(w.ei_soa->state_dz(), w.ei_soa->state_count());
  } else {
    tables_ok = load(w.ee_aos->state_r(), w.ee_aos->state_count()) &&
                load(reinterpret_cast<qmc_real*>(w.ee_aos->state_dr()),
                     3 * w.ee_aos->state_count()) &&
                load(w.ei_aos->state_r(), w.ei_aos->state_count()) &&
                load(reinterpret_cast<qmc_real*>(w.ei_aos->state_dr()),
                     3 * w.ei_aos->state_count());
  }
  if (!tables_ok)
    return false;

  if (include_dets && (!restore_det(r, w.det_up, sys.norb) || !restore_det(r, w.det_dn, sys.norb)))
    return false;
  if (!r.ok() || !r.exhausted())
    return false;

  // All sections validated — apply the non-rewindable pieces last so a
  // malformed payload never half-applies onto a live walker.
  w.rng.set_state(rs);
  w.accepted = static_cast<std::size_t>(accepted);
  w.attempted = static_cast<std::size_t>(attempted);
  w.orbital_evals = static_cast<std::size_t>(orbital_evals);
  for (int e = 0; e < nel; ++e) {
    w.elec_soa.set(e, pos[static_cast<std::size_t>(e)]);
    w.elec_aos[e] = pos[static_cast<std::size_t>(e)];
  }
  return true;
}

/// Meta payload: the common prefix (resume reads exactly these fields), then
/// — for DMC snapshots only — the branching-provenance tail.  @p nw is the
/// LIVE population at the snapshot point (== sys.nw for the fixed-count VMC
/// drivers).  A VMC meta stays byte-identical to the PR 7 format; the DMC
/// tail is purely appended, which the prefix-reading resume tolerates.
std::vector<std::uint8_t> serialize_meta(int step, int nw, const MiniQMCSystem& sys,
                                         const MiniQMCConfig& cfg,
                                         const DmcRunState* dmc = nullptr)
{
  BlobWriter out;
  out.u32(static_cast<std::uint32_t>(step));
  out.u32(static_cast<std::uint32_t>(nw));
  out.u32(static_cast<std::uint32_t>(sys.nel));
  out.u32(static_cast<std::uint32_t>(sys.norb));
  out.u32(static_cast<std::uint32_t>(sizeof(qmc_real)));
  out.u64(cfg.seed);
  out.i32(cfg.delay_rank);
  out.u8(cfg.optimized_dt_jastrow ? 1 : 0);
  out.u8(static_cast<std::uint8_t>(cfg.spo));
  if (dmc != nullptr) {
    out.u8(1); // DMC provenance tail marker
    out.u32(static_cast<std::uint32_t>(dmc->generation));
    out.f64(dmc->trial_energy);
    out.u64(dmc->births);
    out.u64(dmc->deaths);
    out.u32(static_cast<std::uint32_t>(dmc->weights.size()));
    for (const double wgt : dmc->weights)
      out.f64(wgt);
  }
  return out.take();
}

} // namespace

std::uint64_t miniqmc_config_hash(const MiniQMCConfig& cfg, const MiniQMCSystem& sys) noexcept
{
  Fnv1a h;
  h.mix(ckpt::kFormatVersion);
  for (const int s : cfg.supercell)
    h.mix(static_cast<std::uint64_t>(s));
  h.mix(static_cast<std::uint64_t>(cfg.grid_size));
  h.mix(static_cast<std::uint64_t>(sys.norb)); // num_splines resolved
  h.mix(static_cast<std::uint64_t>(sys.nw));   // num_walkers resolved
  h.mix(static_cast<std::uint64_t>(cfg.spo));
  h.mix(cfg.optimized_dt_jastrow ? 1 : 0);
  h.mix(static_cast<std::uint64_t>(cfg.quadrature_points));
  std::uint64_t sigma_bits = 0;
  static_assert(sizeof sigma_bits == sizeof cfg.move_sigma);
  std::memcpy(&sigma_bits, &cfg.move_sigma, sizeof sigma_bits);
  h.mix(sigma_bits);
  h.mix(cfg.seed);
  h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(cfg.delay_rank)));
  // The RESOLVED precision path (after the AoS-has-no-mixed-variant
  // fallback) changes every accepted move, so mixed and native snapshots
  // must refuse to cross-resume.  Tagged-on-mixed-only so every Native hash
  // — including those of snapshots written before the knob existed — is
  // unchanged.
  if (sys.precision == PrecisionPath::Mixed)
    h.mix(0x4d495845ULL); // "MIXE" tag
  // Deliberately excluded: crowd_size, tile_size, inner_threads, pos_block,
  // steps — pure scheduling/budget knobs under the bit-for-bit invariant, so
  // a snapshot written by one schedule resumes under any other.  Driver mode
  // is likewise excluded for the fixed-population VMC drivers (per-walker and
  // crowd trajectories are identical), but DMC branching IS the trajectory:
  // every branching knob below is mixed in, so VMC and DMC snapshots — or two
  // different branching setups — never cross-resume silently.
  if (cfg.driver == DriverMode::DMC) {
    const auto mixf = [&h](double v) {
      std::uint64_t bits = 0;
      static_assert(sizeof bits == sizeof v);
      std::memcpy(&bits, &v, sizeof bits);
      h.mix(bits);
    };
    h.mix(0x444d4331ULL); // "DMC1" tag
    h.mix(static_cast<std::uint64_t>(cfg.dmc_gen_steps));
    mixf(cfg.dmc_tau);
    mixf(cfg.dmc_weight_min);
    mixf(cfg.dmc_weight_max);
    mixf(cfg.dmc_feedback);
    h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(cfg.dmc_max_branch)));
    h.mix(static_cast<std::uint64_t>(
        cfg.dmc_target_walkers > 0 ? cfg.dmc_target_walkers : sys.nw));
    h.mix(cfg.dmc_replay ? 1 : 0);
    // dmc_generations is the step budget, excluded like cfg.steps.
  }
  return h.h;
}

CheckpointRuntime make_checkpoint_runtime(const MiniQMCConfig& cfg, const MiniQMCSystem& sys)
{
  CheckpointRuntime rt;
  rt.path = cfg.checkpoint_path;
  rt.interval = cfg.checkpoint_interval;
  rt.config_hash = miniqmc_config_hash(cfg, sys);
  std::string spec = cfg.fault_inject;
  if (spec.empty()) {
    if (const char* env = std::getenv("MQC_FAULT_INJECT"))
      spec = env;
  }
  if (!spec.empty() && rt.enabled())
    rt.fault = ckpt::parse_fault_plan(spec);
  return rt;
}

int next_epoch_boundary(const CheckpointRuntime& rt, int step, int steps)
{
  // Invariant (requires step < steps): the returned boundary is strictly
  // greater than step — each candidate below (next interval multiple, armed
  // abort step, end of run) exceeds step — so the drivers' epoch loops
  // always terminate and every boundary reaches checkpoint_step_boundary.
  // The `interval > steps` case clamps to `steps` and writes the final
  // snapshot there; runs that never reach this function at all (steps == 0,
  // or a resume at/past the budget) get their end-of-run snapshot from the
  // drivers' post-loop guarantee.
  int boundary = steps;
  if (rt.enabled() && rt.interval > 0) {
    const int next_ckpt = (step / rt.interval + 1) * rt.interval;
    boundary = std::min(boundary, next_ckpt);
  }
  if (rt.fault.armed() && rt.fault.abort_at_step > step)
    boundary = std::min(boundary, rt.fault.abort_at_step);
  return boundary;
}

namespace {

/// Shared step-boundary protocol for the fixed-population drivers and DMC:
/// write an interval-aligned or final snapshot over the LIVE walker vector
/// (with the DMC Meta tail when @p dmc is set), apply armed file faults,
/// and exit the process when the abort fault fires at this boundary.
void boundary_snapshot(const CheckpointRuntime& rt, const MiniQMCConfig& cfg,
                       const MiniQMCSystem& sys, std::vector<WalkerState>& walkers,
                       const DmcRunState* dmc, int step, int steps, MiniQMCResult& result)
{
#ifdef MQC_CONTRACTS
  // Snapshot points sit between team regions: no facade evaluation may own
  // any walker's resource here, or the snapshot would capture scratch
  // mid-flight.
  for (const WalkerState& w : walkers)
    mqc_contract(!w.ores.contract_live,
                 "checkpoint at step %d taken while an OrbitalResource is live", step);
#endif
  const bool interval_hit = rt.interval > 0 && step % rt.interval == 0;
  const bool final_hit = step == steps;
  if (interval_hit || final_hit) {
    Snapshot snap;
    snap.config_hash = rt.config_hash;
    Section meta;
    meta.id = SectionId::Meta;
    meta.payload = serialize_meta(step, static_cast<int>(walkers.size()), sys, cfg, dmc);
    snap.sections.push_back(std::move(meta));
    for (std::size_t wid = 0; wid < walkers.size(); ++wid) {
      Section s;
      s.id = SectionId::Walker;
      s.index = static_cast<std::uint32_t>(wid);
      s.payload = serialize_walker(walkers[wid], sys, cfg, static_cast<int>(wid));
      snap.sections.push_back(std::move(s));
    }
    std::string err;
    if (ckpt::write_snapshot(rt.path, snap, &err))
      ++result.checkpoints_written;
    else
      std::fprintf(stderr, "miniqmc: checkpoint write failed at step %d: %s\n", step,
                   err.c_str());
  }
  if (rt.fault.armed() && step == rt.fault.abort_at_step && step < steps) {
    ckpt::apply_file_faults(rt.path, rt.fault);
    std::fflush(nullptr);
    std::_Exit(ckpt::kFaultExitCode); // simulated node loss (fault harness)
  }
}

} // namespace

void checkpoint_step_boundary(const CheckpointRuntime& rt, const MiniQMCConfig& cfg,
                              const MiniQMCSystem& sys, std::vector<WalkerState>& walkers,
                              int step, int steps, MiniQMCResult& result)
{
  if (!rt.enabled())
    return;
  boundary_snapshot(rt, cfg, sys, walkers, nullptr, step, steps, result);
}

void dmc_checkpoint_boundary(const CheckpointRuntime& rt, const MiniQMCConfig& cfg,
                             const MiniQMCSystem& sys, std::vector<WalkerState>& walkers,
                             DmcRunState& dmc, int step, int steps, MiniQMCResult& result)
{
  if (!rt.enabled())
    return;
  assert(dmc.weights.size() == walkers.size());
  boundary_snapshot(rt, cfg, sys, walkers, &dmc, step, steps, result);
}

int resume_from_checkpoint(const CheckpointRuntime& rt, const MiniQMCConfig& cfg,
                           const MiniQMCSystem& sys, std::vector<WalkerState>& walkers,
                           MiniQMCResult& result)
{
  if (!rt.enabled() || !cfg.resume)
    return 0;
  Snapshot snap;
  const ckpt::LoadResult load = ckpt::read_snapshot_with_fallback(rt.path, rt.config_hash, snap);
  if (!load.loaded()) {
    result.resume_error = load.detail;
    return 0; // fresh start, surfaced — never a crash
  }
  const Section* meta = snap.find(SectionId::Meta);
  if (meta == nullptr) {
    result.resume_error = load.path_used + ": snapshot has no meta section";
    return 0;
  }
  BlobReader mr(meta->payload);
  const auto step = static_cast<int>(mr.u32());
  const auto nw = static_cast<int>(mr.u32());
  const auto nel = static_cast<int>(mr.u32());
  const auto norb = static_cast<int>(mr.u32());
  const auto real_size = static_cast<int>(mr.u32());
  if (!mr.ok() || nw != sys.nw || nel != sys.nel || norb != sys.norb ||
      real_size != static_cast<int>(sizeof(qmc_real)) || step < 0) {
    result.resume_error = load.path_used + ": meta section disagrees with the live run shape";
    return 0;
  }
  // Restore into scratch walkers first: a payload that fails layout checks
  // mid-population must not leave some walkers resumed and others fresh.
  for (int wid = 0; wid < sys.nw; ++wid) {
    const Section* s = snap.find(SectionId::Walker, static_cast<std::uint32_t>(wid));
    if (s == nullptr) {
      result.resume_error =
          load.path_used + ": missing walker section " + std::to_string(wid);
      break;
    }
    WalkerState probe;
    init_walker_shell(probe, sys, cfg); // restore validates shapes; no fresh build needed
    if (!restore_walker(s->payload, probe, sys, cfg, wid)) {
      result.resume_error =
          load.path_used + ": walker section " + std::to_string(wid) + " failed layout checks";
      break;
    }
  }
  if (!result.resume_error.empty()) {
    // Rebuild clean state: the probe pass never touched `walkers`, but make
    // the fresh start explicit anyway.
    return 0;
  }
  for (int wid = 0; wid < sys.nw; ++wid) {
    const Section* s = snap.find(SectionId::Walker, static_cast<std::uint32_t>(wid));
    const bool applied =
        restore_walker(s->payload, walkers[static_cast<std::size_t>(wid)], sys, cfg, wid);
    (void)applied;
    assert(applied); // the probe pass above already validated every payload
  }
  result.resumed_from_step = step;
  result.resume_fallback_used = load.fallback_used;
  if (load.fallback_used)
    result.resume_error = load.detail; // surfaced: recovery path engaged
  return step;
}

// --------------------------------------------------------------------------
// Walker-state blob accessors (shared with the DMC clone path)
// --------------------------------------------------------------------------

std::vector<std::uint8_t> serialize_walker_state(WalkerState& w, const MiniQMCSystem& sys,
                                                 const MiniQMCConfig& cfg, int wid)
{
  return serialize_walker(w, sys, cfg, wid);
}

bool restore_walker_state(const std::vector<std::uint8_t>& payload, WalkerState& w,
                          const MiniQMCSystem& sys, const MiniQMCConfig& cfg, int wid)
{
  return restore_walker(payload, w, sys, cfg, wid);
}

void clone_walker_state(WalkerState& dst, WalkerState& src, const MiniQMCSystem& sys,
                        const MiniQMCConfig& cfg)
{
  // Light state (rng stream incl. the Box–Muller cache, counters, positions,
  // committed distance tables) rides the Walker-section codec, so a clone is
  // exactly a snapshot round-trip of its parent; the O(norb^2) determinant
  // panels skip the byte codec via the direct engine copy.
  const std::vector<std::uint8_t> blob =
      serialize_walker(src, sys, cfg, /*wid=*/0, /*include_dets=*/false);
  const bool applied = restore_walker(blob, dst, sys, cfg, /*wid=*/0, /*include_dets=*/false);
  (void)applied;
  assert(applied); // dst shell-initialized for the same (sys, cfg) => same shapes
  dst.det_up.clone_state_from(src.det_up);
  dst.det_dn.clone_state_from(src.det_dn);
}

// --------------------------------------------------------------------------
// DMC population checkpoint glue
// --------------------------------------------------------------------------

int dmc_resume_from_checkpoint(const CheckpointRuntime& rt, const MiniQMCConfig& cfg,
                               const MiniQMCSystem& sys, std::vector<WalkerState>& walkers,
                               DmcRunState& dmc, MiniQMCResult& result)
{
  if (!rt.enabled() || !cfg.resume)
    return 0;
  Snapshot snap;
  const ckpt::LoadResult load = ckpt::read_snapshot_with_fallback(rt.path, rt.config_hash, snap);
  if (!load.loaded()) {
    result.resume_error = load.detail;
    return 0; // fresh start, surfaced — never a crash
  }
  const Section* meta = snap.find(SectionId::Meta);
  if (meta == nullptr) {
    result.resume_error = load.path_used + ": snapshot has no meta section";
    return 0;
  }
  BlobReader mr(meta->payload);
  const auto step = static_cast<int>(mr.u32());
  const auto nw = static_cast<int>(mr.u32());
  const auto nel = static_cast<int>(mr.u32());
  const auto norb = static_cast<int>(mr.u32());
  const auto real_size = static_cast<int>(mr.u32());
  if (!mr.ok() || nw < 1 || nel != sys.nel || norb != sys.norb ||
      real_size != static_cast<int>(sizeof(qmc_real)) || step < 0) {
    result.resume_error = load.path_used + ": meta section disagrees with the live run shape";
    return 0;
  }
  // Skip the common tail (seed, delay_rank, optimized, spo): the config hash
  // already pinned them; the DMC provenance tail follows.
  (void)mr.u64();
  (void)mr.i32();
  (void)mr.u8();
  (void)mr.u8();
  if (mr.u8() != 1 || !mr.ok()) {
    result.resume_error = load.path_used + ": meta section has no DMC provenance tail";
    return 0;
  }
  DmcRunState staged;
  staged.generation = static_cast<int>(mr.u32());
  staged.trial_energy = mr.f64();
  staged.births = mr.u64();
  staged.deaths = mr.u64();
  const auto nweights = static_cast<int>(mr.u32());
  if (!mr.ok() || staged.generation < 0 || nweights != nw) {
    result.resume_error = load.path_used + ": DMC provenance tail failed layout checks";
    return 0;
  }
  staged.weights.resize(static_cast<std::size_t>(nweights));
  for (double& wgt : staged.weights)
    wgt = mr.f64();
  if (!mr.ok()) {
    result.resume_error = load.path_used + ": DMC provenance tail failed layout checks";
    return 0;
  }
  // Probe pass: validate every walker section against the live shapes before
  // touching the population — a damaged snapshot must never half-apply.
  for (int wid = 0; wid < nw; ++wid) {
    const Section* s = snap.find(SectionId::Walker, static_cast<std::uint32_t>(wid));
    if (s == nullptr) {
      result.resume_error = load.path_used + ": missing walker section " + std::to_string(wid);
      return 0;
    }
    WalkerState probe;
    init_walker_shell(probe, sys, cfg);
    if (!restore_walker(s->payload, probe, sys, cfg, wid)) {
      result.resume_error =
          load.path_used + ": walker section " + std::to_string(wid) + " failed layout checks";
      return 0;
    }
  }
  // Apply: rebuild the population at the snapshot's size (dynamic in DMC).
  walkers.clear();
  walkers.resize(static_cast<std::size_t>(nw));
  for (int wid = 0; wid < nw; ++wid) {
    const Section* s = snap.find(SectionId::Walker, static_cast<std::uint32_t>(wid));
    init_walker_shell(walkers[static_cast<std::size_t>(wid)], sys, cfg);
    const bool applied =
        restore_walker(s->payload, walkers[static_cast<std::size_t>(wid)], sys, cfg, wid);
    (void)applied;
    assert(applied); // the probe pass above already validated every payload
  }
  dmc = std::move(staged);
  result.resumed_from_step = step;
  result.resume_fallback_used = load.fallback_used;
  if (load.fallback_used)
    result.resume_error = load.detail; // surfaced: recovery path engaged
  return step;
}

} // namespace mqc::detail
