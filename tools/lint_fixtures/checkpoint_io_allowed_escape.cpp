// Fixture: the reviewed escape hatch silences one deliberate site.
// Expected: 0 findings.
#include "qmc/checkpoint.h"

void probe_format(const mqc::ckpt::Snapshot& snap)
{
  // harness-only format probe, reviewed // mqc-lint: allow(checkpoint-io)
  mqc::ckpt::write_snapshot("probe.ckpt", snap, nullptr);
}
