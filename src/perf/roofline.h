// Roofline performance substrate (paper §VII, Fig. 10).
//
// The paper uses Intel Advisor to place each optimization step on a
// cache-aware roofline.  We reproduce the analysis from first principles:
//   * measured ceilings — a STREAM-triad sweep for memory bandwidth and an
//     FMA-saturating microkernel for peak GFLOPS;
//   * analytic kernel models — per-evaluation FLOP and main-memory byte
//     counts for each kernel/layout (the paper's "64N reads and 10N writes");
//   * measured points — GFLOPS = model FLOPs / measured seconds at the
//     model's arithmetic intensity.
#ifndef MQC_PERF_ROOFLINE_H
#define MQC_PERF_ROOFLINE_H

#include <cstddef>
#include <string>
#include <vector>

namespace mqc {

/// Best-of-@p reps STREAM triad bandwidth in bytes/second
/// (a[i] = b[i] + s*c[i]; STREAM convention: 3 x n x sizeof(float) per pass).
double measure_triad_bandwidth(std::size_t n = (std::size_t{1} << 25), int reps = 5);

/// Peak single-precision GFLOP/s from an FMA-chain microkernel on all
/// OpenMP threads (counts 2 FLOPs per FMA).
double measure_peak_gflops_sp(int reps = 5);

/// Analytic per-evaluation cost model for one kernel invocation over N
/// orbitals (single position).  flops counts multiply+add as 2;
/// mem_bytes is the cold-cache main-memory traffic.
struct KernelCostModel
{
  double flops = 0.0;
  double mem_bytes = 0.0;
  [[nodiscard]] double arithmetic_intensity() const noexcept
  {
    return mem_bytes > 0.0 ? flops / mem_bytes : 0.0;
  }
};

enum class KernelId
{
  V,
  VGL,
  VGH
};

/// Cost model for the AoS baseline (13 output components for VGH, 64
/// sub-cube inner loops) or the SoA/AoSoA engines (10 components, fused
/// z sums).  element_bytes is sizeof(T) of the storage type.
KernelCostModel kernel_cost_model(KernelId kernel, bool soa, int num_splines, int element_bytes);

/// One point of the Fig. 10 plot.
struct RooflinePoint
{
  std::string label;
  double gflops = 0.0;
  double ai = 0.0; ///< FLOPs per byte
};

/// Attainable GFLOPS at intensity @p ai under the measured ceilings.
double roofline_ceiling(double ai, double peak_gflops, double bandwidth_bytes_per_sec);

} // namespace mqc

#endif // MQC_PERF_ROOFLINE_H
