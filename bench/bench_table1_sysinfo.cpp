// Table I analogue: the host's system configuration row, including measured
// STREAM bandwidth and FMA peak — the two ceilings every other bench and the
// roofline analysis are interpreted against.
#include <iostream>

#include "common/sysinfo.h"
#include "common/table.h"
#include "perf/roofline.h"

int main()
{
  using namespace mqc;
  print_banner(std::cout, "Table I (host column): system configuration");
  const SystemInfo info = query_system_info();
  print_system_info(std::cout, info);

  std::cout << "measuring STREAM triad bandwidth and FMA peak...\n";
  const double bw = measure_triad_bandwidth();
  const double peak = measure_peak_gflops_sp();
  std::cout << "Stream BW (GB/s)  " << TablePrinter::cell(bw / 1e9, 1) << '\n'
            << "SP peak (GFLOPS)  " << TablePrinter::cell(peak, 1) << '\n';
  std::cout << "\nPaper reference (Table I): BDW 64 GB/s, KNC 177 GB/s, KNL 490 GB/s, "
               "BG/Q 28 GB/s\n";
  return 0;
}
