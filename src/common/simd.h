// Vectorization helpers.
//
// The paper's central portability claim is that the kernels reach high SIMD
// efficiency *without* processor-specific intrinsics: `#pragma omp simd`
// plus alignment/stride guarantees are enough.  These macros centralize the
// pragmas so engines stay readable and a scalar build (used to measure
// "vector efficiency" in §VI-A) can switch them off globally.
#ifndef MQC_COMMON_SIMD_H
#define MQC_COMMON_SIMD_H

#include "common/config.h"

// MQC_NO_VECTOR emulates the paper's "-no-vec -no-simd -no-openmp-simd"
// compile line used to quantify vector efficiency: all simd pragmas vanish
// and loops compile as written (the build system also strips -ftree-vectorize
// for those targets).
#if defined(MQC_NO_VECTOR)
#define MQC_SIMD
#define MQC_SIMD_REDUCTION(...)
#define MQC_SIMD_ALIGNED(...)
#else
#define MQC_PRAGMA_IMPL(x) _Pragma(#x)
#define MQC_SIMD MQC_PRAGMA_IMPL(omp simd)
#define MQC_SIMD_REDUCTION(...) MQC_PRAGMA_IMPL(omp simd reduction(__VA_ARGS__))
#define MQC_SIMD_ALIGNED(...) MQC_PRAGMA_IMPL(omp simd aligned(__VA_ARGS__ : 64))
#endif

#endif // MQC_COMMON_SIMD_H
