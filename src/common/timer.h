// Timing and profiling substrate.
//
// The paper reports kernel shares of total run time (Tables II/III) measured
// with VTune / HPCToolkit.  Neither tool is assumed here; instead the drivers
// instrument themselves with scoped timers that accumulate into a
// ProfileRegistry, from which the same percentage rows are printed.
#ifndef MQC_COMMON_TIMER_H
#define MQC_COMMON_TIMER_H

#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace mqc {

/// Monotonic wall-clock stopwatch with double-precision seconds.
class Stopwatch
{
public:
  using clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed() const noexcept
  {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  clock::time_point start_;
};

/// Accumulates (total seconds, call count) under a string key.
/// Single-threaded by design: each walker thread owns its own registry and
/// the driver merges them, mirroring how QMCPACK aggregates per-thread timers.
class ProfileRegistry
{
public:
  void add(const std::string& key, double seconds, std::size_t calls = 1);

  /// Merge another registry into this one (used across walker threads).
  void merge(const ProfileRegistry& other);

  [[nodiscard]] double seconds(const std::string& key) const;
  [[nodiscard]] std::size_t calls(const std::string& key) const;
  [[nodiscard]] double total() const;

  /// Percentage of the registry total spent under @p key.
  [[nodiscard]] double percent(const std::string& key) const;

  [[nodiscard]] std::vector<std::string> keys() const;
  void clear() { entries_.clear(); }

private:
  struct Entry
  {
    double seconds = 0.0;
    std::size_t calls = 0;
  };
  std::map<std::string, Entry> entries_;
};

/// RAII timer: adds the scope duration to a registry entry on destruction.
class ScopedTimer
{
public:
  ScopedTimer(ProfileRegistry& registry, std::string key)
      : registry_(registry), key_(std::move(key))
  {
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { registry_.add(key_, watch_.elapsed()); }

private:
  ProfileRegistry& registry_;
  std::string key_;
  Stopwatch watch_;
};

/// Run @p fn repeatedly until at least @p min_seconds have elapsed (always at
/// least @p min_iters times) and return seconds per iteration.  This is the
/// measurement loop every bench binary uses so short kernels are timed above
/// clock granularity.
template <typename Fn>
double time_per_iteration(Fn&& fn, double min_seconds = 0.2, std::size_t min_iters = 3)
{
  // Warm-up: touch instruction/data caches once outside the timed region.
  fn();
  std::size_t iters = 0;
  Stopwatch watch;
  do {
    fn();
    ++iters;
  } while (watch.elapsed() < min_seconds || iters < min_iters);
  return watch.elapsed() / static_cast<double>(iters);
}

} // namespace mqc

#endif // MQC_COMMON_TIMER_H
