// Fixture: the inline escape hatch silences a deliberate raw region.
// Expected: 0 [omp-parallel] findings.
void sweep(float* a, int n)
{
  // Deliberate raw region for this fixture's purposes.
  // mqc-lint: allow(omp-parallel)
#pragma omp parallel for num_threads(8)
  for (int i = 0; i < n; ++i)
    a[i] *= 2.0f;
}
