// Tile-size auto-tuning with FFTW-style "wisdom" persistence (paper §VI:
// "We plan to provide an auto-tuning capability using miniQMC to guide the
// production runs similar to FFTW's solution using wisdom files").
//
// The optimal Nb depends only on the architecture's cache hierarchy, not on
// the problem size N (paper §VI-B), so one tuning run per (kernel, precision,
// grid) is recorded and reused.
//
// The batched multi-position path adds a second knob: the position block P —
// how many walkers share one pass over a tile's coefficient slice
// (core/batched.h).  Nb and P trade against each other (Nb sets the input
// working set 4*Ng*Nb, P multiplies the output working set 40*P*Nb), so
// tune_tile_block_vgh probes them jointly and Wisdom persists the pair under
// a versioned "v2:" key.
#ifndef MQC_CORE_TUNER_H
#define MQC_CORE_TUNER_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/batched.h"
#include "core/multi_bspline.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"

namespace mqc {

/// Persistent map from tuning keys to the winning configuration.
class Wisdom
{
public:
  struct Entry
  {
    int tile_size = 0;
    double throughput = 0.0; ///< orbital evaluations per second at tuning time
    int pos_block = 1;       ///< walkers per tile pass (1 == single-position path)
    int crowd_size = 0;      ///< tuned crowd size for run_miniqmc (0 = not tuned)
    int inner_threads = 0;   ///< tuned inner team size per crowd (0 = not tuned)
    /// Precision family the knobs were tuned under: 0 = native, 1 = mixed
    /// (PrecisionPath).  Consumers only apply an entry tuned for their own
    /// resolved precision — a pos_block tuned against DP-table bandwidth is
    /// the wrong knob for a half-size mixed table.
    int precision = 0;
  };

  /// Legacy (v1) key: single-position tile tuning.
  static std::string make_key(const std::string& kernel, const std::string& precision,
                              int num_splines, int nx, int ny, int nz);

  /// Versioned (v2) key for the joint (Nb, P) tuning of the batched
  /// multi-position path; @p num_walkers is the population size the block
  /// size was tuned against.
  static std::string make_key_v2(const std::string& kernel, const std::string& precision,
                                 int num_splines, int nx, int ny, int nz, int num_walkers);

  void insert(const std::string& key, Entry entry) { entries_[key] = entry; }
  [[nodiscard]] std::optional<Entry> lookup(const std::string& key) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Outcome of the most recent load() on this object.  Robustness surface:
  /// a truncated or garbage wisdom file must never crash, and must never
  /// silently half-load — load() is all-or-nothing, and this status says
  /// what happened so callers can report the fallback to defaults.
  struct LoadStatus
  {
    bool attempted = false; ///< a load() ran on this object
    bool ok = false;        ///< file opened and every line parsed cleanly
    int entries_loaded = 0; ///< entries merged by the last successful load
    int lines_rejected = 0; ///< malformed lines found in a rejected file
    std::string detail;     ///< first failure diagnosis (empty when ok)
  };

  [[nodiscard]] const LoadStatus& load_status() const noexcept { return load_status_; }

  /// Plain-text persistence, one entry per line:
  ///   v5 format (written): "key tile_size pos_block crowd_size inner_threads precision throughput"
  ///   v4 format (still read): "key tile_size pos_block crowd_size inner_threads throughput" (precision := 0)
  ///   v3 format (still read): "key tile_size pos_block crowd_size throughput" (inner_threads := 0)
  ///   v2 format (still read): "key tile_size pos_block throughput" (crowd_size := 0)
  ///   v1 format (still read): "key tile_size throughput" (pos_block := 1, crowd_size := 0)
  bool save(const std::string& path) const;
  /// All-or-nothing load: a file with ANY malformed line (bad token, wrong
  /// field count, non-integral/negative knob, non-finite throughput) merges
  /// NOTHING and returns false — existing entries and tuned defaults stay
  /// untouched, and load_status() carries the line-level diagnosis.
  bool load(const std::string& path);

private:
  std::map<std::string, Entry> entries_;
  LoadStatus load_status_;
};

/// Result of one tile-size sweep.
struct TuneResult
{
  int best_tile = 0;
  double best_throughput = 0.0;
  std::vector<int> tiles;             ///< candidates probed
  std::vector<double> throughputs;    ///< T = N*ns/t for each candidate
};

/// Result of one joint (tile size Nb, position block P) sweep.  Entry i of
/// the three parallel vectors is the probe at (tiles[i], blocks[i]).
struct TuneResult2D
{
  int best_tile = 0;
  int best_block = 0;
  double best_throughput = 0.0;
  std::vector<int> tiles;
  std::vector<int> blocks;
  std::vector<double> throughputs;
};

/// Default candidate list: powers of two from the SIMD lane count up to N.
std::vector<int> default_tile_candidates(int num_splines, int min_tile);

/// Default position-block candidates: powers of two from 1 up to the
/// population size (inclusive).
std::vector<int> default_block_candidates(int num_walkers);

// The miniQMC driver tuning built on these sweeps (tune_miniqmc,
// tune_crowd_size, miniqmc_wisdom_key) lives in qmc/miniqmc_tuner.h: it
// probes the real driver, so it belongs to the qmc layer, not core.

/// Probe VGH throughput for each candidate tile size over @p ns random
/// positions and return the sweep (the Fig. 7(c) experiment as a library
/// call).  min_seconds bounds the per-candidate measurement time.
template <typename T>
TuneResult tune_tile_size_vgh(const CoefStorage<T>& full, const std::vector<int>& candidates,
                              int ns = 128, double min_seconds = 0.05, std::uint64_t seed = 11)
{
  TuneResult result;
  Xoshiro256 rng(seed);
  const auto& g = full.grid();
  std::vector<T> px(static_cast<std::size_t>(ns)), py(px), pz(px);
  for (int s = 0; s < ns; ++s) {
    px[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(g.x.start, g.x.end));
    py[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(g.y.start, g.y.end));
    pz[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(g.z.start, g.z.end));
  }
  for (int nb : candidates) {
    MultiBspline<T> engine(full, nb);
    WalkerSoA<T> w(engine.out_stride());
    const double sec = time_per_iteration(
        [&] {
          for (int s = 0; s < ns; ++s)
            engine.evaluate_vgh(px[static_cast<std::size_t>(s)], py[static_cast<std::size_t>(s)],
                                pz[static_cast<std::size_t>(s)], w.v.data(), w.g.data(),
                                w.h.data(), w.stride);
        },
        min_seconds, 2);
    const double throughput = static_cast<double>(full.num_splines()) * ns / sec;
    result.tiles.push_back(nb);
    result.throughputs.push_back(throughput);
    if (throughput > result.best_throughput) {
      result.best_throughput = throughput;
      result.best_tile = nb;
    }
  }
  return result;
}

/// Jointly probe (tile size Nb, position block P) for the fused batched VGH
/// path over a population of @p num_walkers random positions (the knob pair
/// the position-blocked driver in core/batched.h exposes).  Block candidates
/// larger than the population are skipped.
template <typename T>
TuneResult2D tune_tile_block_vgh(const CoefStorage<T>& full,
                                 const std::vector<int>& tile_candidates,
                                 const std::vector<int>& block_candidates, int num_walkers = 32,
                                 double min_seconds = 0.05, std::uint64_t seed = 11)
{
  TuneResult2D result;
  Xoshiro256 rng(seed);
  const auto& g = full.grid();
  std::vector<Vec3<T>> positions(static_cast<std::size_t>(num_walkers));
  for (auto& r : positions)
    r = Vec3<T>{static_cast<T>(rng.uniform(g.x.start, g.x.end)),
                static_cast<T>(rng.uniform(g.y.start, g.y.end)),
                static_cast<T>(rng.uniform(g.z.start, g.z.end))};
  for (int nb : tile_candidates) {
    MultiBspline<T> engine(full, nb);
    std::vector<std::unique_ptr<WalkerSoA<T>>> outs;
    std::vector<WalkerSoA<T>*> out_ptrs;
    for (int w = 0; w < num_walkers; ++w) {
      outs.push_back(std::make_unique<WalkerSoA<T>>(engine.out_stride()));
      out_ptrs.push_back(outs.back().get());
    }
    for (int pb : block_candidates) {
      if (pb > num_walkers)
        continue;
      const double sec = time_per_iteration(
          [&] { evaluate_vgh_batched_multi(engine, positions, out_ptrs, pb); }, min_seconds, 2);
      const double throughput =
          static_cast<double>(full.num_splines()) * num_walkers / sec;
      result.tiles.push_back(nb);
      result.blocks.push_back(pb);
      result.throughputs.push_back(throughput);
      if (throughput > result.best_throughput) {
        result.best_throughput = throughput;
        result.best_tile = nb;
        result.best_block = pb;
      }
    }
  }
  return result;
}

} // namespace mqc

#endif // MQC_CORE_TUNER_H
