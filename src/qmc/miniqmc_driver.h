// miniQMC driver — the paper's vehicle (Fig. 3/6 and Tables II/III).
//
// A self-contained pseudo-QMC sweep reproducing the computational and data
// access pattern of a production DMC drift-diffusion step:
//   per electron:  propose a Gaussian move -> distance-table temp rows ->
//                  Jastrow ratios -> B-spline VGH at the trial position ->
//                  determinant ratio -> Metropolis accept/reject with
//                  Sherman-Morrison update and table row commits;
//   per step:      a measurement phase (B-spline VGL for kinetic energy,
//                  V at quadrature points for the pseudopotential analogue).
// The pseudopotential quadrature points of one electron are evaluated as a
// single multi-position V batch (evaluate_v_multi): the SoA/AoSoA engines
// sweep the coefficient table once for the whole quadrature set instead of
// once per point.  Walkers run one per OpenMP thread and share the read-only
// coefficient table; every section is timed into a ProfileRegistry from
// which the Table II/III percentage rows are printed.
#ifndef MQC_QMC_MINIQMC_DRIVER_H
#define MQC_QMC_MINIQMC_DRIVER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/threading.h" // ThreadPartition / TeamPath: the nested-team decision
#include "common/timer.h"
#include "core/orbital_set.h" // EvalPath: the driver's explicit schedule decision

namespace mqc {

class Wisdom; // core/tuner.h

enum class SpoLayout
{
  AoS,   ///< baseline (Fig. 4(a))
  SoA,   ///< Opt A (Fig. 4(b))
  AoSoA  ///< Opt B (tiled, Fig. 6)
};

/// How the walker population is advanced through the Monte Carlo sweep.
enum class DriverMode
{
  PerWalker, ///< one walker per thread, single-position kernels (paper Fig. 3)
  Crowd,     ///< lock-step crowds, multi-position kernels (qmc/crowd_driver.h)
  DMC        ///< branching driver: dynamic population, birth/death (qmc/dmc_driver.h)
};

/// Timed section keys used by the driver's profile.
inline constexpr const char* kSectionBspline = "B-splines";
inline constexpr const char* kSectionDistance = "Distance Tables";
inline constexpr const char* kSectionJastrow = "Jastrow";
inline constexpr const char* kSectionDeterminant = "Determinant";

struct MiniQMCConfig
{
  std::array<int, 3> supercell{2, 2, 1}; ///< graphite supercell (paper: 4x4x1)
  int grid_size = 32;                    ///< spline grid per dimension (paper: 48)
  int num_splines = 0;                   ///< 0 => orbital count of the crystal
  int tile_size = 128;                   ///< AoSoA tile size Nb
  SpoLayout spo = SpoLayout::AoS;
  /// Precision family of the orbital engine (core/coef_storage.h).  Native
  /// (default) keeps storage and compute in qmc_real — bit-for-bit the
  /// historical trajectories.  Mixed stores the coefficient table in float
  /// and carries all weight products and V/VGL/VGH accumulation in double;
  /// it is opt-in, deterministic (same seed -> same trajectory) and
  /// decomposition-neutral, but NOT bit-for-bit with Native.  The AoS
  /// baseline has no mixed variant: requesting Mixed with SpoLayout::AoS
  /// resolves to Native, surfaced via MiniQMCResult::precision_path (the
  /// spline_path/team_path discipline — accuracy decisions are never
  /// silent).  Affects the trajectory, so it is part of the checkpoint
  /// config hash: mixed and native snapshots refuse to cross-resume.
  PrecisionPath precision_path = PrecisionPath::Native;
  bool optimized_dt_jastrow = false;     ///< SoA distance tables + Jastrow paths
  int num_walkers = 0;                   ///< 0 => one per OpenMP thread
  int steps = 1;                         ///< Monte Carlo sweeps
  int quadrature_points = 4;             ///< V evaluations per electron per step
  double move_sigma = 0.4;               ///< Gaussian move width (bohr)
  std::uint64_t seed = 20170512;
  DriverMode driver = DriverMode::PerWalker;
  /// Crowd driver only: walkers advanced in lock-step per crowd (0 => the
  /// whole population forms one crowd; -1 => auto: the tuned crowd size from
  /// `wisdom` when an entry exists, else the whole population).  When the
  /// size does not divide num_walkers, the remainder runs as an extra,
  /// smaller trailing crowd.
  int crowd_size = 0;
  /// Determinant updates: <= 1 => per-move Sherman-Morrison (DiracDeterminant,
  /// default), k >= 2 => delayed rank-k window (DelayedDeterminant).  Applies
  /// to both drivers so their trajectories stay comparable.
  int delay_rank = 0;
  /// Inner team size per outer member (a crowd, or one walker in the
  /// per-walker driver): how many threads that member's multi-position
  /// spline requests and delayed-update flushes may fork UNDER the outer
  /// region (the paper's Opt C nested layer).  0 = auto — the topology-aware
  /// ThreadPartition::resolve split of the machine (threads left over after
  /// the outer split, kept inside one socket; MQC_PARTITION /
  /// MQC_INNER_THREADS env still override).  -1 = tuned size from `wisdom`.
  /// >= 1 = explicit.  A pure scheduling knob: trajectories are bit-for-bit
  /// identical for every value (enforced by tests/test_crowd.cpp); the
  /// schedule actually run is surfaced as MiniQMCResult::team_path.
  int inner_threads = 0;
  /// Checkpoint/restore (qmc/checkpoint.h).  Empty path = no checkpointing.
  /// With a path set, both drivers snapshot the full resumable walker state
  /// at step boundaries: every `checkpoint_interval` steps when the interval
  /// is > 0, plus once at the end of the run.  Snapshot writes are pure
  /// observers — trajectories are bit-for-bit identical with checkpointing
  /// on, off, or at any interval (tests/test_checkpoint.cpp).
  std::string checkpoint_path;
  int checkpoint_interval = 0;
  /// Resume from `checkpoint_path` before sweeping: restore walker state and
  /// continue from the snapshotted step.  A missing/damaged/mismatched
  /// snapshot (after the `.prev` fallback) degrades to a fresh start — never
  /// a crash — surfaced via MiniQMCResult::resume_error.
  bool resume = false;
  /// Fault-injection spec (see qmc/checkpoint.h FaultPlan); overrides the
  /// MQC_FAULT_INJECT env var when non-empty.  Testing machinery only.
  std::string fault_inject;
  // ---- DMC branching driver (driver == DriverMode::DMC; qmc/dmc_driver.h).
  // A run is dmc_generations branch generations of dmc_gen_steps VMC-style
  // sweeps each (cfg.steps is ignored by the DMC driver).  All knobs below
  // except dmc_generations determine the trajectory and are therefore part
  // of the checkpoint config hash in DMC mode.
  int dmc_generations = 0;  ///< branch generations to run (the DMC step budget)
  int dmc_gen_steps = 1;    ///< sweeps between branch steps (generation length)
  double dmc_tau = 0.05;    ///< imaginary time step: drift scale + weight exponent
  /// Weight window [min, max]: per-walker branching weights are clamped here
  /// after every generation's multiplicative update, bounding how fast any
  /// lineage can proliferate or starve between feedback corrections.
  double dmc_weight_min = 0.3;
  double dmc_weight_max = 3.0;
  double dmc_feedback = 1.0; ///< trial-energy gain: E_T -= g*log(N/N_target)
  int dmc_max_branch = 3;    ///< cap on copies of one walker per branch step
  int dmc_target_walkers = 0; ///< population the feedback steers to (0 => initial)
  /// Fixed-population replay oracle: drift, weights and branching are fully
  /// disabled (multiplicity pinned to 1), so the run is bit-for-bit a VMC
  /// crowd run of dmc_generations*dmc_gen_steps steps (tests/test_dmc.cpp).
  bool dmc_replay = false;
  /// Optional tuning wisdom (core/tuner.h, non-owning; see tune_miniqmc):
  /// the entry under miniqmc_wisdom_key(norb, grid_size, num_walkers)
  /// supplies the OrbitalSet facade's position block, and — with
  /// crowd_size == -1 — the crowd driver's tuned crowd size.  Tuning knobs
  /// only: they never change trajectories, which are a function of (seed,
  /// walker id) alone.
  const Wisdom* wisdom = nullptr;
};

struct MiniQMCResult
{
  ProfileRegistry profile;     ///< merged across walkers (section keys above)
  double seconds = 0.0;        ///< wall time of the sweep region
  double acceptance_ratio = 0.0;
  int num_walkers = 0;
  int num_electrons = 0;
  int num_orbitals = 0;
  std::size_t moves_attempted = 0;
  std::size_t spline_orbital_evals = 0; ///< total N * (kernel calls), all walkers
  // Per-walker trajectory fingerprints (indexed by walker id), used by the
  // crowd-vs-per-walker equivalence tests: identical rng streams must give
  // identical accept counts and bit-identical final log dets in both modes.
  std::vector<std::size_t> walker_accepts;
  std::vector<double> walker_log_det; ///< log|det_up| + log|det_dn| at the end
  /// The schedule the driver ran for the drift-diffusion VGH evaluations —
  /// an explicit OrbitalSet-capabilities decision, surfaced so benchmark
  /// comparisons can't silently measure a fallback (the AoS baseline has no
  /// multi-position path, so a crowd sweep over it degrades to lock-step
  /// single-position calls).
  EvalPath spline_path = EvalPath::SinglePosition;
  /// The precision family the engines actually ran — cfg.precision_path
  /// after the AoS-has-no-mixed-variant resolution (explicit, surfaced,
  /// tested; never a silent fallback).
  PrecisionPath precision_path = PrecisionPath::Native;
  /// Resolved crowd size the sweep actually used (1 for the per-walker
  /// driver; for the crowd driver: cfg.crowd_size after the 0 = whole
  /// population / -1 = tuned-from-wisdom resolution and clamping).
  int crowd_size_used = 1;
  /// The nested-team schedule the sweep ran — like spline_path, an explicit
  /// decision (partition resolution + runtime nesting capability), surfaced
  /// so benchmarks can prove the inner teams actually engaged instead of
  /// silently measuring serialized nested regions.
  TeamPath team_path = TeamPath::Flat;
  /// Resolved partition: outer members the sweep region spawned (crowds, or
  /// walkers for the per-walker driver) × inner team size per member.
  int outer_threads_used = 1;
  int inner_threads_used = 1;
  /// Step the sweep restarted from when cfg.resume found a usable snapshot;
  /// -1 = fresh start (no resume requested, or every snapshot was rejected).
  /// Surfaced like spline_path/team_path: restart provenance is an explicit
  /// decision, never silent.
  int resumed_from_step = -1;
  /// True when the `.prev` snapshot served the resume because the primary
  /// was missing or damaged (the crash-recovery path actually engaged).
  bool resume_fallback_used = false;
  /// One-line diagnosis when a requested resume fell back to a fresh start
  /// or to `.prev` (empty = clean resume or no resume requested).
  std::string resume_error;
  /// Snapshots this run wrote (interval-aligned + final).
  int checkpoints_written = 0;
  // ---- DMC provenance (driver == DriverMode::DMC; qmc/dmc_driver.cpp).
  // Population dynamics are part of the trajectory contract: two runs are
  // "the same run" only if these match exactly, so they are surfaced rather
  // than reduced away.  walker_accepts / walker_log_det above fingerprint
  // the FINAL population (children inherit their parent's counters).
  std::vector<int> dmc_population; ///< walker count after each branch step
  std::uint64_t dmc_births = 0;    ///< total walkers spawned by branching
  std::uint64_t dmc_deaths = 0;    ///< total walkers killed by branching
  double dmc_trial_energy = 0.0;   ///< final E_T after feedback
  int dmc_shards_used = 0;         ///< shards the population was re-blocked across
};

MiniQMCResult run_miniqmc(const MiniQMCConfig& cfg);

} // namespace mqc

#endif // MQC_QMC_MINIQMC_DRIVER_H
