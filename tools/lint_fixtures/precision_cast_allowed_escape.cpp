// Fixture: the reviewed escape hatch silences one deliberate site, and
// narrowing anything that is not coefficient data never matches.
// Expected: 0 findings.
#include <vector>

float narrow_position(double x) { return static_cast<float>(x); }

void tool_only_probe(const std::vector<double>& coefs, std::vector<float>& out)
{
  // one-off analysis probe, reviewed // mqc-lint: allow(precision-cast)
  out[0] = static_cast<float>(coefs[0]);
}
