#!/usr/bin/env python3
"""Fault-injection harness for the crash-consistent checkpoint subsystem.

Drives build/examples/checkpoint_restart through the failure modes the
checkpoint format must survive, and FAILS when an injected fault is not
detected or a resumed trajectory diverges from the uninterrupted reference:

  kill -> resume        process killed mid-run at a step boundary
                        (MQC fault `abort@N`, exit code 42); the resumed run
                        must reproduce the reference `walker_accepts` /
                        `walker_log_det` fingerprints bit-for-bit;
  corrupt -> fall back  a section of the snapshot is corrupted before the
                        kill; the resume must detect it (CRC), fall back to
                        the previous good snapshot, and still match;
  truncate -> fall back same, for a truncated file tail;
  version skew          a snapshot whose format-version field is patched
                        (header CRC recomputed, so only the version check
                        can reject it) must be refused;
  config skew           resuming under a different seed must be refused via
                        the config trajectory hash — fresh start, no crash,
                        no silent wrong-state resume;
  precision skew        a snapshot written under --precision mixed must be
                        refused by a native resume (and vice versa): the
                        resolved precision path is part of the config hash
                        because the two trajectories diverge from the first
                        accepted move;
  noop injection        a file fault aimed at a non-existent target
                        (corrupt@walker99 with 4 walkers) must be surfaced as
                        an explicit NO-OP warning, never silently skipped;
  malformed spec        a signed step number (abort@+3) must be rejected at
                        parse time with a warning, and the run completes
                        cleanly with no fault armed;
  population resume     a resident WalkerPopulation (--shards) killed under
                        one shard count must resume under a DIFFERENT shard
                        count bit-for-bit.
  dmc kill -> resume    a DMC branching run (dynamic population, birth/death)
                        killed at a generation boundary must resume
                        bit-for-bit: per-walker fingerprints AND the
                        branching provenance (population trace tail,
                        cumulative birth/death counters, trial-energy bits);
  dmc corrupt -> prev   same, with the newest snapshot's Meta section (which
                        carries the DMC tail) corrupted: detect, fall back to
                        .prev, still land on the reference.

Scenarios run for both drivers under two MQC_PARTITION shapes so the resume
invariant is exercised across schedules, not just one thread layout.  Every
scenario that injects file damage also asserts the binary CONFIRMED the
injection on stderr (`fault-injected:`) — an injection that quietly becomes
a no-op is itself a harness failure.

Stdlib only; exit 0 = all scenarios pass, 1 = failures, 2 = usage error.
"""

from __future__ import annotations

import argparse
import binascii
import os
import shutil
import struct
import subprocess
import sys
import tempfile
from pathlib import Path

FAULT_EXIT_CODE = 42  # ckpt::kFaultExitCode: an injected kill, not a crash
HEADER_CRC_SPAN = 24  # magic(8) + version(4) + config_hash(8) + count(4)
VERSION_OFFSET = 8


class Failure(Exception):
    pass


def run_binary(binary, args, env_extra=None, expect_exit=0):
    """Run the example binary; raise Failure on unexpected exit code.
    Returns the CompletedProcess so scenarios can inspect stderr (injection
    confirmations / NO-OP warnings) as well as stdout."""
    env = dict(os.environ)
    env.update(env_extra or {})
    proc = subprocess.run([str(binary)] + args, capture_output=True, text=True, env=env)
    if proc.returncode != expect_exit:
        raise Failure(
            f"{' '.join(args)}: exit {proc.returncode}, expected {expect_exit}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
    return proc


def expect_injection_confirmed(proc, tag):
    """A run that was supposed to damage the snapshot must say so: require a
    `fault-injected:` confirmation and reject any `NO-OP` — a fault plan that
    silently failed to fire would make every downstream PASS meaningless."""
    expect("fault-injected:" in proc.stderr,
           f"{tag}: no fault-injected confirmation on stderr — the injection "
           f"was a silent no-op\nstderr:\n{proc.stderr}")
    expect("NO-OP" not in proc.stderr,
           f"{tag}: injection partially no-op'd\nstderr:\n{proc.stderr}")


def parse_run(stdout):
    """Parse the machine-readable output of checkpoint_restart."""
    out = {"fingerprints": []}
    for line in stdout.splitlines():
        if line.startswith("fingerprint "):
            _, wid, accepts, bits = line.split()
            out["fingerprints"].append((int(wid), int(accepts), bits))
        elif "=" in line:
            key, _, value = line.partition("=")
            out[key] = value
    return out


def expect(cond, what):
    if not cond:
        raise Failure(what)


def expect_fingerprints_equal(ref, got, what):
    expect(got["fingerprints"] == ref["fingerprints"],
           f"{what}: trajectory diverged from uninterrupted reference\n"
           f"  reference: {ref['fingerprints']}\n"
           f"  resumed:   {got['fingerprints']}")


def patch_version(path):
    """Flip the format-version field and RE-COMPUTE the header CRC, so only
    the version check itself can reject the file (not the CRC)."""
    data = bytearray(Path(path).read_bytes())
    version = struct.unpack_from("<I", data, VERSION_OFFSET)[0]
    struct.pack_into("<I", data, VERSION_OFFSET, version + 1)
    crc = binascii.crc32(bytes(data[:HEADER_CRC_SPAN])) & 0xFFFFFFFF
    struct.pack_into("<I", data, HEADER_CRC_SPAN, crc)
    Path(path).write_bytes(bytes(data))


def scenario_kill_resume(binary, workdir, base_args, env, tag):
    """abort@3 with interval 2: the resume restarts from the step-2 snapshot
    and must land on the reference fingerprints."""
    ckpt = str(workdir / f"{tag}.ckpt")
    ref = parse_run(run_binary(binary, base_args + ["--steps", "6"], env).stdout)
    run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt, "--interval", "2",
                                    "--fault", "abort@3"], env, expect_exit=FAULT_EXIT_CODE)
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt,
                                                    "--resume"], env).stdout)
    expect(got["resumed_from_step"] == "2", f"{tag}: resumed_from_step="
           f"{got['resumed_from_step']}, expected 2 (last interval-aligned snapshot)")
    expect_fingerprints_equal(ref, got, tag)
    return ref


def scenario_corrupt_fallback(binary, workdir, base_args, env, tag, ref):
    """Corrupt a walker section in the newest snapshot right before the kill:
    the resume must DETECT it (CRC) and fall back to the .prev snapshot."""
    ckpt = str(workdir / f"{tag}.ckpt")
    kill = run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt, "--interval", "1",
                                           "--fault", "abort@3,corrupt@walker0"], env,
                      expect_exit=FAULT_EXIT_CODE)
    expect_injection_confirmed(kill, tag)
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt,
                                                    "--resume"], env).stdout)
    expect(got["resume_fallback"] == "1",
           f"{tag}: injected corruption NOT detected (no fallback to .prev; "
           f"resume_error='{got['resume_error']}')")
    expect(got["resume_error"] != "", f"{tag}: detected fault left no diagnostic")
    expect(got["resumed_from_step"] == "2",
           f"{tag}: fell back to step {got['resumed_from_step']}, expected 2")
    expect_fingerprints_equal(ref, got, tag)


def scenario_truncate_fallback(binary, workdir, base_args, env, tag, ref):
    ckpt = str(workdir / f"{tag}.ckpt")
    kill = run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt, "--interval", "1",
                                           "--fault", "abort@3,truncate@40"], env,
                      expect_exit=FAULT_EXIT_CODE)
    expect_injection_confirmed(kill, tag)
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt,
                                                    "--resume"], env).stdout)
    expect(got["resume_fallback"] == "1",
           f"{tag}: truncation NOT detected (resume_error='{got['resume_error']}')")
    expect(got["resumed_from_step"] == "2",
           f"{tag}: fell back to step {got['resumed_from_step']}, expected 2")
    expect_fingerprints_equal(ref, got, tag)


def scenario_version_skew(binary, workdir, base_args, env, tag, ref):
    """A future-format snapshot (valid CRCs!) must be refused on version, and
    the refused run falls back to a fresh full-length run, still matching the
    reference because the trajectory is deterministic from the seed."""
    ckpt = workdir / f"{tag}.ckpt"
    run_binary(binary, base_args + ["--steps", "4", "--ckpt", str(ckpt), "--interval", "2"], env)
    patch_version(ckpt)
    prev = Path(str(ckpt) + ".prev")
    if prev.exists():
        patch_version(prev)
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--ckpt", str(ckpt),
                                                    "--resume"], env).stdout)
    expect(got["resumed_from_step"] == "-1",
           f"{tag}: version-skewed snapshot was ACCEPTED (resumed from "
           f"{got['resumed_from_step']})")
    expect("version" in got["resume_error"],
           f"{tag}: rejection not attributed to version (resume_error="
           f"'{got['resume_error']}')")
    expect_fingerprints_equal(ref, got, tag)


def scenario_config_skew(binary, workdir, base_args, env, tag, ref):
    """A snapshot from a different seed hashes to a different trajectory:
    resuming from it must be refused — fresh start, never a silent
    wrong-state resume."""
    ckpt = str(workdir / f"{tag}.ckpt")
    run_binary(binary, base_args + ["--steps", "4", "--ckpt", ckpt, "--interval", "2",
                                    "--seed", "99"], env)
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt,
                                                    "--resume"], env).stdout)
    expect(got["resumed_from_step"] == "-1",
           f"{tag}: foreign-config snapshot was ACCEPTED (resumed from "
           f"{got['resumed_from_step']})")
    expect(got["resume_error"] != "", f"{tag}: refusal left no diagnostic")
    expect_fingerprints_equal(ref, got, tag)


def scenario_precision_skew(binary, workdir, base_args, env, tag, ref):
    """A snapshot written under the mixed precision path (SP tables, DP
    accumulation) is a different trajectory from the first accepted move on:
    the resolved path is folded into the config hash, so a native resume must
    refuse it and fresh-start — and a mixed resume must refuse a native
    snapshot the same way."""
    ckpt = str(workdir / f"{tag}.ckpt")
    run_binary(binary, base_args + ["--steps", "4", "--ckpt", ckpt, "--interval", "2",
                                    "--precision", "mixed"], env)
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt,
                                                    "--resume"], env).stdout)
    expect(got["resumed_from_step"] == "-1",
           f"{tag}: mixed-path snapshot was ACCEPTED by a native resume "
           f"(resumed from {got['resumed_from_step']})")
    expect(got["resume_error"] != "", f"{tag}: refusal left no diagnostic")
    expect_fingerprints_equal(ref, got, tag)

    rev = str(workdir / f"{tag}_rev.ckpt")
    run_binary(binary, base_args + ["--steps", "4", "--ckpt", rev, "--interval", "2"], env)
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--ckpt", rev, "--resume",
                                                    "--precision", "mixed"], env).stdout)
    expect(got["resumed_from_step"] == "-1",
           f"{tag}: native snapshot was ACCEPTED by a mixed resume "
           f"(resumed from {got['resumed_from_step']})")


def scenario_noop_injection(binary, workdir, base_args, env, tag, ref):
    """A corrupt@walker target past the population (walker 99 of 4) finds no
    section to damage: the binary must WARN (fault-injection NO-OP) instead
    of silently skipping, and the undamaged snapshot must resume cleanly."""
    ckpt = str(workdir / f"{tag}.ckpt")
    kill = run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt, "--interval", "1",
                                           "--fault", "abort@3,corrupt@walker99"], env,
                      expect_exit=FAULT_EXIT_CODE)
    expect("fault-injection NO-OP" in kill.stderr,
           f"{tag}: out-of-range corrupt@walker99 fired silently (no NO-OP "
           f"warning)\nstderr:\n{kill.stderr}")
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt,
                                                    "--resume"], env).stdout)
    expect(got["resume_fallback"] == "0",
           f"{tag}: no-op injection DID damage the snapshot "
           f"(resume_error='{got['resume_error']}')")
    expect(got["resumed_from_step"] == "3",
           f"{tag}: resumed from {got['resumed_from_step']}, expected 3 "
           f"(newest snapshot, undamaged)")
    expect_fingerprints_equal(ref, got, tag)


def scenario_malformed_spec(binary, workdir, base_args, env, tag, ref):
    """A signed step number is not a fault plan: `abort@+3` must be rejected
    at parse time (strtol would have accepted it and armed step 3), the run
    must complete cleanly with NO fault armed, and the trajectory must match
    the reference."""
    ckpt = str(workdir / f"{tag}.ckpt")
    proc = run_binary(binary, base_args + ["--steps", "6", "--ckpt", ckpt, "--interval", "2",
                                           "--fault", "abort@+3"], env)
    expect("ignoring malformed" in proc.stderr,
           f"{tag}: malformed token 'abort@+3' accepted without a warning\n"
           f"stderr:\n{proc.stderr}")
    got = parse_run(proc.stdout)
    expect_fingerprints_equal(ref, got, tag)


def expect_dmc_provenance_equal(ref, got, tag):
    """The branching provenance must survive resume exactly: counters and
    trial energy are cumulative (restored from the Meta tail), and the
    resumed population trace is the tail of the uninterrupted one."""
    for key in ("dmc_births", "dmc_deaths", "dmc_trial_energy"):
        expect(got[key] == ref[key],
               f"{tag}: {key} diverged (reference {ref[key]}, resumed {got[key]})")
    ref_trace = ref["dmc_population"].split(",")
    got_trace = got["dmc_population"].split(",")
    expect(got_trace == ref_trace[-len(got_trace):],
           f"{tag}: population trace diverged\n"
           f"  reference: {ref['dmc_population']}\n"
           f"  resumed:   {got['dmc_population']}")


def scenario_dmc_kill_resume(binary, workdir, base_args, env, tag):
    """Kill a branching DMC run at generation 3 of 6 (gen_steps=1, so steps
    ARE generations): the resume must restore the dynamic population from the
    newest snapshot and land bit-for-bit on the uninterrupted reference —
    fingerprints of the FINAL (fluctuated) population plus all provenance."""
    ckpt = str(workdir / f"{tag}.ckpt")
    ref = parse_run(run_binary(binary, base_args, env).stdout)
    expect(int(ref["dmc_births"]) + int(ref["dmc_deaths"]) > 0,
           f"{tag}: reference run never branched — the scenario would prove "
           f"nothing (population trace {ref['dmc_population']})")
    run_binary(binary, base_args + ["--ckpt", ckpt, "--interval", "1",
                                    "--fault", "abort@3"], env, expect_exit=FAULT_EXIT_CODE)
    got = parse_run(run_binary(binary, base_args + ["--ckpt", ckpt, "--resume"], env).stdout)
    expect(got["resumed_from_step"] == "3", f"{tag}: resumed_from_step="
           f"{got['resumed_from_step']}, expected 3 (newest generation boundary)")
    expect_fingerprints_equal(ref, got, tag)
    expect_dmc_provenance_equal(ref, got, tag)
    return ref


def scenario_dmc_corrupt_meta(binary, workdir, base_args, env, tag, ref):
    """Corrupt the newest snapshot's Meta section — the one carrying the DMC
    provenance tail — before the kill: the resume must detect it (CRC), fall
    back to the generation-2 .prev snapshot, and still match the reference."""
    ckpt = str(workdir / f"{tag}.ckpt")
    kill = run_binary(binary, base_args + ["--ckpt", ckpt, "--interval", "1",
                                           "--fault", "abort@3,corrupt@meta"], env,
                      expect_exit=FAULT_EXIT_CODE)
    expect_injection_confirmed(kill, tag)
    got = parse_run(run_binary(binary, base_args + ["--ckpt", ckpt, "--resume"], env).stdout)
    expect(got["resume_fallback"] == "1",
           f"{tag}: Meta corruption NOT detected (no fallback to .prev; "
           f"resume_error='{got['resume_error']}')")
    expect(got["resumed_from_step"] == "2",
           f"{tag}: fell back to step {got['resumed_from_step']}, expected 2")
    expect_fingerprints_equal(ref, got, tag)
    expect_dmc_provenance_equal(ref, got, tag)


def scenario_population_resume(binary, workdir, base_args, env, tag, ref):
    """Kill a resident WalkerPopulation under 2 shards, resume it under 3:
    shard assignment is derived machine layout, not trajectory state, so the
    resumed fingerprints must match the plain-driver reference bit-for-bit."""
    ckpt = str(workdir / f"{tag}.ckpt")
    run_binary(binary, base_args + ["--steps", "6", "--shards", "2", "--ckpt", ckpt,
                                    "--interval", "2", "--fault", "abort@3"], env,
               expect_exit=FAULT_EXIT_CODE)
    got = parse_run(run_binary(binary, base_args + ["--steps", "6", "--shards", "3",
                                                    "--ckpt", ckpt, "--resume"], env).stdout)
    expect(got["resumed_from_step"] == "2",
           f"{tag}: resumed_from_step={got['resumed_from_step']}, expected 2")
    expect_fingerprints_equal(ref, got, tag)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "build" / "examples" / "checkpoint_restart",
                        help="checkpoint_restart binary (default: build/examples/...)")
    parser.add_argument("--workdir", type=Path, default=None,
                        help="scratch directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)

    if not args.binary.exists():
        print(f"error: {args.binary} not found (build the examples first)", file=sys.stderr)
        return 2
    workdir = args.workdir or Path(tempfile.mkdtemp(prefix="mqc_fault_"))
    workdir.mkdir(parents=True, exist_ok=True)
    cleanup = args.workdir is None

    failures = 0
    ran = 0
    scenarios = [
        ("kill-resume", None),  # placeholder: runs first to produce the reference
        ("corrupt-fallback", scenario_corrupt_fallback),
        ("truncate-fallback", scenario_truncate_fallback),
        ("version-skew", scenario_version_skew),
        ("config-skew", scenario_config_skew),
        ("precision-skew", scenario_precision_skew),
        ("noop-injection", scenario_noop_injection),
        ("malformed-spec", scenario_malformed_spec),
        ("population-resume", scenario_population_resume),
    ]
    for driver in ("per-walker", "crowd"):
        for partition in ("1x2", "2x1"):
            env = {"MQC_PARTITION": partition}
            base_args = ["--driver", driver, "--walkers", "4", "--delay", "4"]
            label = f"driver={driver} partition={partition}"
            ref = None
            for name, fn in scenarios:
                tag = f"{driver}-{partition.replace('x', '_')}-{name}"
                ran += 1
                try:
                    if name == "kill-resume":
                        ref = scenario_kill_resume(args.binary, workdir, base_args, env, tag)
                    else:
                        if ref is None:
                            raise Failure("no reference trajectory (kill-resume failed)")
                        fn(args.binary, workdir, base_args, env, tag, ref)
                    print(f"PASS {name} [{label}]")
                except Failure as e:
                    print(f"FAIL {name} [{label}]: {e}")
                    failures += 1

    # DMC branching scenarios: dynamic populations have their own driver and
    # their own provenance to protect, so they get their own loop (the shared
    # scenarios above assume a fixed walker count).  --dmc-tau 1.2 makes the
    # 6-generation run actually branch (asserted inside the scenario).
    dmc_scenarios = [
        ("dmc-kill-resume", None),
        ("dmc-corrupt-meta", scenario_dmc_corrupt_meta),
    ]
    for partition in ("1x2", "2x1"):
        env = {"MQC_PARTITION": partition}
        base_args = ["--driver", "dmc", "--walkers", "4", "--delay", "4",
                     "--dmc", "6", "--dmc-tau", "1.2"]
        label = f"driver=dmc partition={partition}"
        ref = None
        for name, fn in dmc_scenarios:
            tag = f"dmc-{partition.replace('x', '_')}-{name}"
            ran += 1
            try:
                if name == "dmc-kill-resume":
                    ref = scenario_dmc_kill_resume(args.binary, workdir, base_args, env, tag)
                else:
                    if ref is None:
                        raise Failure("no reference trajectory (dmc-kill-resume failed)")
                    fn(args.binary, workdir, base_args, env, tag, ref)
                print(f"PASS {name} [{label}]")
            except Failure as e:
                print(f"FAIL {name} [{label}]: {e}")
                failures += 1

    if cleanup and failures == 0:
        shutil.rmtree(workdir, ignore_errors=True)
    print(f"fault_harness: {ran} scenario(s), {failures} failure(s)"
          + ("" if cleanup and failures == 0 else f" (artifacts in {workdir})"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
