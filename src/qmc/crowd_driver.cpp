// The miniQMC crowd sweep: walkers advance in lock-step crowds so that every
// spline evaluation becomes a multi-position OrbitalSet request (see
// crowd_driver.h for the design contract and miniqmc_context.h for the
// shared per-walker arithmetic; the sweep body itself lives in crowd_sweep.h
// so the WalkerPopulation shards and the JobQueue workers run the identical
// kernel).  Threading is hierarchical (Opt C): the outer team runs one crowd
// per member, and each member owns an inner team from the driver's
// ThreadPartition — the crowd's multi-position facade requests and its
// walkers' delayed-update flushes fork that inner team under the outer
// region (or run serial when the partition says inner = 1, the classic flat
// schedule).  crowd_size still trades per-member batch depth against outer
// width; inner_threads re-occupies the cores a wide crowd would otherwise
// leave idle.
//
// The single-vs-multi schedule is an explicit OrbitalSet capabilities
// decision made once per run and surfaced in MiniQMCResult::spline_path:
// on the AoS baseline (no native multi-position path) the facade degrades
// each crowd batch to lock-step single-position calls — still the identical
// trajectory, just without the table-traffic amortization — and the result
// says so instead of silently benchmarking the fallback.
#include <algorithm>
#include <memory>
#include <vector>

#include "qmc/crowd_driver.h"
#include "qmc/crowd_sweep.h"

namespace mqc::detail {

MiniQMCResult run_miniqmc_crowd(const MiniQMCConfig& cfg)
{
  const MiniQMCSystem sys(cfg);
  // Crowd-size resolution: explicit size > 0, 0 = whole population, -1 =
  // tuned size from cfg.wisdom (whole population when no entry was tuned).
  int requested = cfg.crowd_size;
  if (requested < 0)
    requested = sys.tuned_crowd_size;
  const int crowd_size = requested > 0 ? std::min(requested, sys.nw) : sys.nw;
  const int num_crowds = (sys.nw + crowd_size - 1) / crowd_size;

  // Nested-team partition: num_crowds outer members, each owning an inner
  // team for its facade sweeps and delayed-update flushes (Opt C).  Resolved
  // once here — no layer below re-derives the machine size.
  const ThreadPartition part = detail::resolve_team_partition(cfg, sys, num_crowds);
  const TeamHandle inner = TeamHandle::inner_of(part);

  std::vector<WalkerState> walkers(static_cast<std::size_t>(sys.nw));
  std::vector<ProfileRegistry> crowd_profiles(static_cast<std::size_t>(num_crowds));
  std::vector<std::unique_ptr<CrowdScratch>> scratch(static_cast<std::size_t>(num_crowds));

  MiniQMCResult result;
  result.num_walkers = sys.nw;
  result.num_electrons = sys.nel;
  result.num_orbitals = sys.norb;
  result.crowd_size_used = crowd_size;
  // The explicit schedule decisions, surfaced instead of silently run: the
  // single-vs-multi spline path (engine capabilities) and the nested-team
  // path (partition + the runtime's nesting capability).
  result.spline_path = sys.spo.capabilities().native_multi_eval ? EvalPath::MultiPosition
                                                                : EvalPath::SinglePosition;
  result.precision_path = sys.precision;
  result.team_path = classify_team_path(part.outer, part.inner);
  result.outer_threads_used = part.outer;
  result.inner_threads_used = part.inner;

  Stopwatch total_watch;

  // ---- setup (not profiled): each crowd initializes its own walkers ------
  // The outer region is a team_for over crowd ids (one crowd per thread, and
  // walker state a function of walker id only) — both through the
  // threading.h seam.  Stored walker teams are region-bound so a stale
  // resolve after the outer region closes aborts under MQC_CONTRACTS.
  // CrowdScratch is built here too, ONCE per crowd on the thread that will
  // sweep it (static schedule keeps the crowd→thread map stable, so the
  // scratch pages are first-touched where they are consumed): its gathered
  // pointer tables are walker-invariant, and rebuilding them every epoch
  // made a checkpoint_interval=1 run re-gather every step.
  team_for(TeamHandle::of(num_crowds), num_crowds, [&](int cid) {
    const int first = cid * crowd_size;
    const int last = std::min(sys.nw, first + crowd_size);
    for (int wid = first; wid < last; ++wid) {
      init_walker(walkers[static_cast<std::size_t>(wid)], sys, cfg, wid);
      walkers[static_cast<std::size_t>(wid)].set_team(inner.bound_to_current_region());
    }
    scratch[static_cast<std::size_t>(cid)] =
        std::make_unique<CrowdScratch>(walkers, first, last - first, sys);
  });

  // ---- resume (outside any team region): overwrite the freshly built
  // walker state from the snapshot, if one is usable -----------------------
  const CheckpointRuntime ckrt = make_checkpoint_runtime(cfg, sys);
  int step = resume_from_checkpoint(ckrt, cfg, sys, walkers, result);

  // ---- the profiled lock-step sweep, one crowd per thread ----------------
  // Epoch-chunked exactly like the per-walker driver: each team region
  // advances every crowd to the next step boundary, snapshots happen
  // between regions.
  const int entry_step = step;
  while (step < cfg.steps) {
    const int boundary = next_epoch_boundary(ckrt, step, cfg.steps);
    team_for(TeamHandle::of(num_crowds), num_crowds, [&](int cid) {
      const int first = cid * crowd_size;
      const int count = std::min(sys.nw, first + crowd_size) - first;
      crowd_sweep_steps(sys, cfg, walkers, first, count, *scratch[static_cast<std::size_t>(cid)],
                        crowd_profiles[static_cast<std::size_t>(cid)], inner, step, boundary);
    });
    step = boundary;
    checkpoint_step_boundary(ckrt, cfg, sys, walkers, step, cfg.steps, result);
  }
  // End-of-run snapshot guarantee for runs that never entered the loop
  // (steps == 0, or a resume at/past the budget) — same contract as the
  // per-walker driver: a set checkpoint path always leaves a snapshot.
  if (entry_step >= cfg.steps)
    checkpoint_step_boundary(ckrt, cfg, sys, walkers, step, step, result);
  result.seconds = total_watch.elapsed();
  reduce_result(result, walkers);
  for (const auto& p : crowd_profiles)
    result.profile.merge(p);
  return result;
}

} // namespace mqc::detail
