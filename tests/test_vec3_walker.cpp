// Unit tests for the small shared value types: Vec3 algebra and the
// per-walker output buffers (sizing, alignment, stream accessors).
#include <cstdint>

#include <gtest/gtest.h>

#include "common/vec3.h"
#include "qmc/walker.h"

using namespace mqc;

TEST(Vec3, IndexingAndMutation)
{
  Vec3<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  v[1] = 5.0;
  EXPECT_DOUBLE_EQ(v.y, 5.0);
}

TEST(Vec3, Arithmetic)
{
  const Vec3<double> a{1, 2, 3}, b{4, 5, 6};
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5.0);
  const auto d = b - a;
  EXPECT_DOUBLE_EQ(d.z, 3.0);
  const auto m = 2.0 * a;
  EXPECT_DOUBLE_EQ(m.y, 4.0);
  const auto m2 = a * 3.0;
  EXPECT_DOUBLE_EQ(m2.x, 3.0);
}

TEST(Vec3, DotAndNorm)
{
  const Vec3<double> a{3, 4, 0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
  const Vec3<double> b{0, 0, 2};
  EXPECT_DOUBLE_EQ(dot(a, b), 0.0);
}

TEST(Vec3, CompoundAssignment)
{
  Vec3<float> a{1, 1, 1};
  a += Vec3<float>{1, 2, 3};
  a -= Vec3<float>{0, 1, 0};
  a *= 2.0f;
  EXPECT_FLOAT_EQ(a.x, 4.0f);
  EXPECT_FLOAT_EQ(a.y, 4.0f);
  EXPECT_FLOAT_EQ(a.z, 8.0f);
}

TEST(WalkerAoS, BufferSizes)
{
  WalkerAoS<float> w(64);
  EXPECT_EQ(w.v.size(), 64u);
  EXPECT_EQ(w.g.size(), 192u);
  EXPECT_EQ(w.l.size(), 64u);
  EXPECT_EQ(w.h.size(), 576u);
}

TEST(WalkerSoA, BufferSizesAndStreams)
{
  WalkerSoA<float> w(48);
  EXPECT_EQ(w.stride, 48u);
  EXPECT_EQ(w.v.size(), 48u);
  EXPECT_EQ(w.g.size(), 144u);
  EXPECT_EQ(w.h.size(), 288u);
  EXPECT_EQ(w.gy(), w.g.data() + 48);
  EXPECT_EQ(w.gz(), w.g.data() + 96);
  EXPECT_EQ(w.hcomp(5), w.h.data() + 5 * 48);
}

TEST(WalkerSoA, BuffersAreAligned)
{
  WalkerSoA<double> w(40);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.v.data()) % kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.g.data()) % kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.h.data()) % kAlignment, 0u);
  // Component streams stay aligned because the stride is a lane multiple.
  EXPECT_EQ((40 * sizeof(double)) % kAlignment, 0u);
}

TEST(WalkerAoS, BuffersAreAligned)
{
  WalkerAoS<float> w(32);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.v.data()) % kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.g.data()) % kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.l.data()) % kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.h.data()) % kAlignment, 0u);
}
