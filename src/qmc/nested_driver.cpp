#include "qmc/nested_driver.h"

#include <algorithm>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "common/threading.h"
#include "common/timer.h"
#include "qmc/walker.h"

namespace mqc {

NestedResult run_nested(const MultiBspline<float>& engine, const NestedConfig& cfg)
{
  const int total = cfg.total_threads > 0 ? cfg.total_threads : max_threads();
  const int nth = std::max(1, cfg.nth);
  const int nw = cfg.num_walkers > 0 ? cfg.num_walkers : std::max(1, total / nth);
  const int nthreads = nw * nth;
  const int ntiles = engine.num_tiles();

  // Per-walker buffers and positions, prepared outside the timed region.
  std::vector<std::unique_ptr<WalkerSoA<float>>> outputs;
  outputs.reserve(static_cast<std::size_t>(nw));
  std::vector<std::vector<float>> xs(static_cast<std::size_t>(nw)), ys(xs), zs(xs);
  const auto& grid = engine.tile(0).coefs().grid();
  for (int wdx = 0; wdx < nw; ++wdx) {
    outputs.push_back(std::make_unique<WalkerSoA<float>>(engine.out_stride()));
    Xoshiro256 rng = Xoshiro256::for_stream(cfg.seed, static_cast<std::uint64_t>(wdx));
    auto& x = xs[static_cast<std::size_t>(wdx)];
    auto& y = ys[static_cast<std::size_t>(wdx)];
    auto& z = zs[static_cast<std::size_t>(wdx)];
    x.resize(static_cast<std::size_t>(cfg.ns));
    y.resize(static_cast<std::size_t>(cfg.ns));
    z.resize(static_cast<std::size_t>(cfg.ns));
    for (int s = 0; s < cfg.ns; ++s) {
      x[static_cast<std::size_t>(s)] = static_cast<float>(rng.uniform(grid.x.start, grid.x.end));
      y[static_cast<std::size_t>(s)] = static_cast<float>(rng.uniform(grid.y.start, grid.y.end));
      z[static_cast<std::size_t>(s)] = static_cast<float>(rng.uniform(grid.z.start, grid.z.end));
    }
  }

  Stopwatch watch;
#pragma omp parallel num_threads(nthreads)
  {
    const TeamCoordinates tc = team_coordinates(thread_id(), nth);
    WalkerSoA<float>& out = *outputs[static_cast<std::size_t>(tc.walker)];
    const auto& x = xs[static_cast<std::size_t>(tc.walker)];
    const auto& y = ys[static_cast<std::size_t>(tc.walker)];
    const auto& z = zs[static_cast<std::size_t>(tc.walker)];
    const StridedRange my_tiles(static_cast<std::size_t>(ntiles), static_cast<std::size_t>(nth),
                                static_cast<std::size_t>(tc.member));
    for (int it = 0; it < cfg.niters; ++it)
      for (int s = 0; s < cfg.ns; ++s) {
        const float px = x[static_cast<std::size_t>(s)];
        const float py = y[static_cast<std::size_t>(s)];
        const float pz = z[static_cast<std::size_t>(s)];
        switch (cfg.kernel) {
        case NestedKernel::V:
          my_tiles.for_each([&](std::size_t t) {
            engine.evaluate_v_tile(static_cast<int>(t), px, py, pz, out.v.data());
          });
          break;
        case NestedKernel::VGL:
          my_tiles.for_each([&](std::size_t t) {
            engine.evaluate_vgl_tile(static_cast<int>(t), px, py, pz, out.v.data(), out.g.data(),
                                     out.l.data(), out.stride);
          });
          break;
        case NestedKernel::VGH:
          my_tiles.for_each([&](std::size_t t) {
            engine.evaluate_vgh_tile(static_cast<int>(t), px, py, pz, out.v.data(), out.g.data(),
                                     out.h.data(), out.stride);
          });
          break;
        }
      }
  }

  NestedResult result;
  result.seconds = watch.elapsed();
  result.num_walkers = nw;
  result.nth = nth;
  const double evals = static_cast<double>(nw) * cfg.niters * cfg.ns * engine.num_splines();
  result.throughput = evals / result.seconds;
  return result;
}

} // namespace mqc
