#include "perf/roofline.h"

#include <algorithm>
#include <utility>

#include "common/aligned_allocator.h"
#include "common/simd.h"
#include "common/threading.h"
#include "common/timer.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mqc {

double measure_triad_bandwidth(std::size_t n, int reps)
{
  aligned_vector<float> a(n, 0.0f), b(n, 1.0f), c(n, 2.0f);
  const float s = 3.0f;
  double best = 0.0;
  // Machine-wide team through the threading.h seam: the bandwidth ceiling
  // wants every core streaming.  Contiguous static chunks, like STREAM.
  const int nchunks = max_threads();
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    team_for(TeamHandle::whole_machine(), nchunks, [&](int chunk) {
      const Range range = block_range(n, static_cast<std::size_t>(nchunks),
                                      static_cast<std::size_t>(chunk));
      for (std::size_t i = range.first; i < range.last; ++i)
        a[i] = b[i] + s * c[i];
    });
    const double sec = watch.elapsed();
    // STREAM convention: two reads + one write per element.
    best = std::max(best, 3.0 * static_cast<double>(n) * sizeof(float) / sec);
    // Keep the compiler honest between repetitions.
    b[r % n] = a[(r + 1) % n];
  }
  return best;
}

double measure_peak_gflops_sp(int reps)
{
  // Per-thread FMA chains on register-resident lanes; 8 independent
  // accumulators per lane hide the FMA latency.  The inputs are read through
  // volatile so the compiler cannot constant-fold or final-value-replace the
  // recurrence (GCC will otherwise reduce the whole kernel to an empty
  // countdown loop), and the iteration count is grown adaptively until the
  // measurement window is comfortably above timer noise.
  constexpr int lanes = 16; // one AVX-512 SP vector
  constexpr int chains = 8;
  volatile float mul_seed = 1.0f + 1e-7f;
  volatile float add_seed = 1e-6f;
  volatile float acc_seed = 0.5f;

  auto run_once = [&](std::size_t iters) {
    double flops_total = 0.0;
    Stopwatch watch;
    // Deliberate raw region: the peak-FLOPS ceiling needs one register-
    // resident FMA kernel per hardware thread with no loop to distribute —
    // a thread *team*, not team-scheduled work items, so the team_for seam
    // does not apply.  Measurement code, never driver-partitioned.
    // mqc-lint: allow(omp-parallel)
#pragma omp parallel reduction(+ : flops_total)
    {
      alignas(kAlignment) float acc[chains][lanes];
      alignas(kAlignment) float mul[lanes];
      alignas(kAlignment) float add[lanes];
      const float m0 = mul_seed, a0 = add_seed, c0 = acc_seed;
      for (int l = 0; l < lanes; ++l) {
        mul[l] = m0 + 1e-8f * static_cast<float>(l);
        add[l] = a0 * static_cast<float>(l + 1);
        for (int ch = 0; ch < chains; ++ch)
          acc[ch][l] = c0 + 0.01f * static_cast<float>(ch);
      }
      for (std::size_t it = 0; it < iters; ++it)
        for (int ch = 0; ch < chains; ++ch) {
          MQC_SIMD
          for (int l = 0; l < lanes; ++l)
            acc[ch][l] = acc[ch][l] * mul[l] + add[l];
        }
      // Fold the accumulators into an observable store so the chains are not
      // dead code.
      float sink = 0.0f;
      for (int ch = 0; ch < chains; ++ch)
        for (int l = 0; l < lanes; ++l)
          sink += acc[ch][l];
      acc_seed = sink * 1e-30f + 0.5f; // opaque, value-neutral feedback
      flops_total += 2.0 * static_cast<double>(iters) * chains * lanes;
    }
    const double sec = watch.elapsed();
    return std::pair<double, double>{flops_total, sec};
  };

  // Grow the window until one run takes >= 0.2 s.
  std::size_t iters = std::size_t{1} << 20;
  double sec = 0.0;
  while (true) {
    sec = run_once(iters).second;
    if (sec >= 0.2 || iters >= (std::size_t{1} << 30))
      break;
    iters *= 2;
  }
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto [flops, seconds] = run_once(iters);
    best = std::max(best, flops / seconds / 1e9);
  }
  return best;
}

KernelCostModel kernel_cost_model(KernelId kernel, bool soa, int num_splines, int element_bytes)
{
  const double n = num_splines;
  const double eb = element_bytes;
  KernelCostModel m;
  // Main-memory traffic (paper §VII): 64N coefficient reads for every
  // variant; writes are one stream per output component (write-allocate
  // doubles the write traffic on cached x86).
  const double read_bytes = 64.0 * n * eb;
  double out_components = 0.0;
  switch (kernel) {
  case KernelId::V:
    out_components = 1.0;
    // 64 sub-cubes x 1 FMA each (AoS) or 16 x (4-FMA z-sum + 1 FMA) (SoA).
    m.flops = (soa ? 16.0 * 5.0 : 64.0) * 2.0 * n;
    break;
  case KernelId::VGL:
    out_components = 5.0;
    // AoS baseline: 64 x 7 FMA accumulations (v,3g,3 Hessian-trace temps)
    // plus the final N-pass trace reduction.  SoA: 16 x (3 z-sums x 4 FMA +
    // 5 output FMA + 1 extra Laplacian FMA).
    m.flops = soa ? 16.0 * (12.0 + 6.0) * 2.0 * n : (64.0 * 7.0 + 2.0) * 2.0 * n;
    break;
  case KernelId::VGH:
    out_components = soa ? 10.0 : 13.0;
    // AoS: 64 x 13 FMA.  SoA: 16 x (3 z-sums x 4 FMA + 10 output FMA).
    m.flops = (soa ? 16.0 * 22.0 : 64.0 * 13.0) * 2.0 * n;
    break;
  }
  m.mem_bytes = read_bytes + 2.0 * out_components * n * eb;
  return m;
}

double roofline_ceiling(double ai, double peak_gflops, double bandwidth_bytes_per_sec)
{
  return std::min(peak_gflops, ai * bandwidth_bytes_per_sec / 1e9);
}

} // namespace mqc
