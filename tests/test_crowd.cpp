// Crowd lock-step driver tests.
//
// The contract under test (crowd_driver.h): with the same per-walker rng
// streams, a crowd trajectory IS the per-walker trajectory — same Metropolis
// decisions, same per-walker accept counts, bit-identical final log dets —
// for every crowd size, including sizes that do not divide the walker count,
// because the multi-position spline kernels are bit-identical to their
// single-position counterparts and everything else is per-walker arithmetic.
// The WavefunctionCrowd tests check the same equivalence on the templated
// Slater-Jastrow wave function in float and double, with and without
// delayed determinant updates.
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "common/threading.h"
#include "core/synthetic_orbitals.h"
#include "core/tuner.h"
#include "particles/graphite.h"
#include "qmc/crowd_driver.h"
#include "qmc/miniqmc_driver.h"
#include "qmc/miniqmc_tuner.h"
#include "qmc/wavefunction.h"

using namespace mqc;

namespace {

MiniQMCConfig crowd_test_config()
{
  MiniQMCConfig cfg;
  cfg.supercell = {1, 1, 1};
  cfg.grid_size = 12;
  cfg.num_splines = 16; // 32 electrons
  cfg.steps = 2;
  cfg.num_walkers = 4;
  cfg.quadrature_points = 2;
  return cfg;
}

/// Bit-for-bit trajectory comparison: the Monte Carlo process must be THE
/// SAME process, not a statistically similar one.
void expect_identical_trajectories(const MiniQMCResult& a, const MiniQMCResult& b,
                                   const char* what)
{
  EXPECT_EQ(a.moves_attempted, b.moves_attempted) << what;
  EXPECT_EQ(a.spline_orbital_evals, b.spline_orbital_evals) << what;
  EXPECT_EQ(a.acceptance_ratio, b.acceptance_ratio) << what;
  ASSERT_EQ(a.walker_accepts.size(), b.walker_accepts.size()) << what;
  ASSERT_EQ(a.walker_log_det.size(), b.walker_log_det.size()) << what;
  for (std::size_t i = 0; i < a.walker_accepts.size(); ++i) {
    EXPECT_EQ(a.walker_accepts[i], b.walker_accepts[i]) << what << " walker " << i;
    // Exact double equality: same rng stream + bit-identical kernels must
    // give the bit-identical accumulated log det.
    EXPECT_EQ(a.walker_log_det[i], b.walker_log_det[i]) << what << " walker " << i;
  }
}

} // namespace

TEST(CrowdDriver, BitForBitMatchesPerWalkerAcrossCrowdSizes)
{
  struct LayoutCase
  {
    SpoLayout spo;
    bool optimized;
    const char* name;
  };
  const LayoutCase cases[] = {{SpoLayout::AoS, false, "AoS"},
                              {SpoLayout::SoA, true, "SoA"},
                              {SpoLayout::AoSoA, true, "AoSoA"}};
  for (const auto& lc : cases) {
    auto cfg = crowd_test_config();
    cfg.spo = lc.spo;
    cfg.tile_size = 16;
    cfg.optimized_dt_jastrow = lc.optimized;
    const auto per_walker = run_miniqmc(cfg);
    ASSERT_EQ(per_walker.walker_accepts.size(), 4u);
    // Crowd sizes: single-walker crowds, a divisor, a NON-divisor (4 = 3+1),
    // and the whole population as one crowd (crowd_size = 0).
    for (int cs : {1, 2, 3, 0}) {
      auto ccfg = cfg;
      ccfg.driver = DriverMode::Crowd;
      ccfg.crowd_size = cs;
      const auto crowd = run_miniqmc(ccfg);
      expect_identical_trajectories(per_walker, crowd, lc.name);
    }
  }
}

TEST(CrowdDriver, SplinePathIsAnExplicitCapabilitiesDecision)
{
  // The crowd driver's single-vs-multi schedule is a surfaced decision, not
  // a silent fallback: multi-position sweeps whenever the engine has them
  // (SoA, AoSoA), single-position lock-step calls on the AoS baseline.
  // Bench comparisons read spline_path so they can't accidentally measure
  // the fallback believing it was the batched path.
  struct PathCase
  {
    SpoLayout spo;
    EvalPath expected;
  };
  const PathCase cases[] = {{SpoLayout::AoS, EvalPath::SinglePosition},
                            {SpoLayout::SoA, EvalPath::MultiPosition},
                            {SpoLayout::AoSoA, EvalPath::MultiPosition}};
  for (const auto& pc : cases) {
    auto cfg = crowd_test_config();
    cfg.steps = 1;
    cfg.spo = pc.spo;
    cfg.tile_size = 16;
    cfg.driver = DriverMode::Crowd;
    cfg.crowd_size = 2;
    const auto r = run_miniqmc(cfg);
    EXPECT_EQ(r.spline_path, pc.expected) << "layout " << static_cast<int>(pc.spo);
    EXPECT_EQ(r.crowd_size_used, 2);
  }
  // The per-walker driver always runs single-position moves.
  auto cfg = crowd_test_config();
  cfg.steps = 1;
  cfg.spo = SpoLayout::AoSoA;
  const auto r = run_miniqmc(cfg);
  EXPECT_EQ(r.spline_path, EvalPath::SinglePosition);
  EXPECT_EQ(r.crowd_size_used, 1);
}

TEST(CrowdDriver, CrowdSizeResolutionClampsAndDefaults)
{
  auto cfg = crowd_test_config();
  cfg.steps = 1;
  cfg.spo = SpoLayout::AoSoA;
  cfg.tile_size = 16;
  cfg.driver = DriverMode::Crowd;

  cfg.crowd_size = 0; // whole population
  EXPECT_EQ(run_miniqmc(cfg).crowd_size_used, cfg.num_walkers);

  cfg.crowd_size = 100; // clamped to the population
  EXPECT_EQ(run_miniqmc(cfg).crowd_size_used, cfg.num_walkers);

  cfg.crowd_size = -1; // auto without wisdom: whole population
  EXPECT_EQ(run_miniqmc(cfg).crowd_size_used, cfg.num_walkers);
}

TEST(CrowdDriver, NestedPartitionsAreBitForBitAcrossShapes)
{
  // The hierarchical thread-team acceptance: every partition shape —
  // 1 crowd × wide inner team, N crowds × 1 (flat), inner sizes that divide
  // neither the tile count nor the batch, teams wider than the work — must
  // reproduce the per-walker trajectory bit-for-bit on every layout,
  // because inner teams only distribute independent (tile, position-block)
  // work items and disjoint flush column blocks.
  struct LayoutCase
  {
    SpoLayout spo;
    bool optimized;
    const char* name;
  };
  const LayoutCase cases[] = {{SpoLayout::AoS, false, "AoS"},
                              {SpoLayout::SoA, true, "SoA"},
                              {SpoLayout::AoSoA, true, "AoSoA"}};
  struct Shape
  {
    int crowd_size;
    int inner;
  };
  // (crowd, inner): 1×N (whole population, wide team), N×1 (flat), a
  // non-dividing crowd with a non-dividing team, single-walker crowds with
  // teams, and a team wider than the tile count (16 splines / tile 16).
  const Shape shapes[] = {{0, 4}, {0, 1}, {2, 3}, {3, 2}, {1, 2}, {2, 8}};
  for (const auto& lc : cases) {
    auto cfg = crowd_test_config();
    cfg.spo = lc.spo;
    cfg.tile_size = 16;
    cfg.optimized_dt_jastrow = lc.optimized;
    const auto per_walker = run_miniqmc(cfg);
    for (const auto& sh : shapes) {
      auto ccfg = cfg;
      ccfg.driver = DriverMode::Crowd;
      ccfg.crowd_size = sh.crowd_size;
      ccfg.inner_threads = sh.inner;
      const auto crowd = run_miniqmc(ccfg);
      SCOPED_TRACE(::testing::Message() << lc.name << " crowd=" << sh.crowd_size
                                        << " inner=" << sh.inner);
      expect_identical_trajectories(per_walker, crowd, lc.name);
      EXPECT_EQ(crowd.inner_threads_used, sh.inner);
      EXPECT_EQ(crowd.outer_threads_used,
                sh.crowd_size == 0 ? 1 : (4 + sh.crowd_size - 1) / sh.crowd_size);
    }
  }
}

TEST(CrowdDriver, PerWalkerDriverHonorsInnerTeamsBitForBit)
{
  // The per-walker driver owns the same seam: walkers with inner teams
  // (parallel quadrature batches, threaded delayed flushes) must walk the
  // identical trajectory as the flat per-walker sweep.
  for (int delay : {0, 4}) {
    auto cfg = crowd_test_config();
    cfg.spo = SpoLayout::AoSoA;
    cfg.tile_size = 16;
    cfg.optimized_dt_jastrow = true;
    cfg.delay_rank = delay;
    cfg.inner_threads = 1;
    const auto flat = run_miniqmc(cfg);
    EXPECT_EQ(flat.team_path, TeamPath::Flat);
    cfg.inner_threads = 3;
    const auto nested = run_miniqmc(cfg);
    expect_identical_trajectories(flat, nested, delay ? "per-walker delay4" : "per-walker");
    EXPECT_EQ(nested.inner_threads_used, 3);
  }
}

TEST(CrowdDriver, TeamPathIsAnExplicitRuntimeCapabilityDecision)
{
#ifdef _OPENMP
  // Like spline_path, team_path must report what actually ran: with the
  // runtime pinned to one active level (the operator's OMP_MAX_ACTIVE_LEVELS
  // contract, which request_nested_levels respects), inner teams under a
  // multi-crowd outer region serialize — and the result must say so, with
  // the trajectory still bit-identical.
  auto cfg = crowd_test_config();
  cfg.spo = SpoLayout::AoSoA;
  cfg.tile_size = 16;
  cfg.driver = DriverMode::Crowd;
  cfg.crowd_size = 2; // 2 crowds -> an active outer region
  cfg.inner_threads = 2;

  const auto baseline = run_miniqmc([&] {
    auto c = cfg;
    c.inner_threads = 1;
    return c;
  }());
  EXPECT_EQ(baseline.team_path, TeamPath::Flat);

  const int saved_levels = omp_get_max_active_levels();
  const char* saved_env = std::getenv("OMP_MAX_ACTIVE_LEVELS");
  const std::string saved_env_value = saved_env ? saved_env : "";

  ::setenv("OMP_MAX_ACTIVE_LEVELS", "1", 1);
  omp_set_max_active_levels(1);
  const auto serialized = run_miniqmc(cfg);
  EXPECT_EQ(serialized.team_path, TeamPath::SerialInner);
  expect_identical_trajectories(baseline, serialized, "serialized inner");

  ::unsetenv("OMP_MAX_ACTIVE_LEVELS");
  omp_set_max_active_levels(saved_levels);
  const auto nested = run_miniqmc(cfg); // request_nested_levels may raise to 2
  EXPECT_EQ(nested.team_path, TeamPath::NestedInner);
  expect_identical_trajectories(baseline, nested, "forked inner");

  if (!saved_env_value.empty())
    ::setenv("OMP_MAX_ACTIVE_LEVELS", saved_env_value.c_str(), 1);
#else
  GTEST_SKIP() << "no OpenMP runtime";
#endif
}

TEST(CrowdDriver, InnerThreadsResolutionExplicitAutoAndTuned)
{
  auto cfg = crowd_test_config();
  cfg.steps = 1;
  cfg.spo = SpoLayout::AoSoA;
  cfg.tile_size = 16;
  cfg.driver = DriverMode::Crowd;
  cfg.crowd_size = 2;

  cfg.inner_threads = 3; // explicit
  EXPECT_EQ(run_miniqmc(cfg).inner_threads_used, 3);

  cfg.inner_threads = 0; // auto: topology split, at least one thread
  EXPECT_GE(run_miniqmc(cfg).inner_threads_used, 1);

  // -1 = tuned from wisdom: the v4 inner_threads field feeds the partition
  // (proving the tuner knob is consumed end-to-end and stays
  // trajectory-neutral — same trajectory as the explicit run above).
  Wisdom wisdom;
  Wisdom::Entry entry;
  entry.tile_size = 16;
  entry.pos_block = 2;
  entry.crowd_size = 2;
  entry.inner_threads = 2;
  wisdom.insert(miniqmc_wisdom_key(cfg.num_splines, cfg.grid_size, cfg.num_walkers), entry);
  cfg.wisdom = &wisdom;
  cfg.inner_threads = -1;
  const auto tuned = run_miniqmc(cfg);
  EXPECT_EQ(tuned.inner_threads_used, 2);

  cfg.wisdom = nullptr;
  cfg.inner_threads = -1; // tuned without wisdom: falls back to auto
  EXPECT_GE(run_miniqmc(cfg).inner_threads_used, 1);
}

TEST(CrowdDriver, BitForBitMatchesPerWalkerWithDelayedUpdates)
{
  auto cfg = crowd_test_config();
  cfg.spo = SpoLayout::AoSoA;
  cfg.tile_size = 16;
  cfg.optimized_dt_jastrow = true;
  cfg.delay_rank = 4; // both drivers on the delayed rank-k engine
  const auto per_walker = run_miniqmc(cfg);
  for (int cs : {2, 3, 0}) {
    auto ccfg = cfg;
    ccfg.driver = DriverMode::Crowd;
    ccfg.crowd_size = cs;
    const auto crowd = run_miniqmc(ccfg);
    expect_identical_trajectories(per_walker, crowd, "AoSoA+delay4");
  }
}

TEST(CrowdDriver, DelayRankDoesNotChangeTheTrajectory)
{
  // Delayed updates change WHEN the inverse is materialized, not the wave
  // function: ratios (and therefore accept decisions) must agree with the
  // Sherman-Morrison path to numerical accuracy.  With this small,
  // well-conditioned system the Metropolis decisions are identical; the
  // accumulated log dets agree to tight tolerance rather than bit-for-bit
  // (different but algebraically equivalent update order).
  auto cfg = crowd_test_config();
  cfg.spo = SpoLayout::AoSoA;
  cfg.tile_size = 16;
  cfg.optimized_dt_jastrow = true;
  cfg.driver = DriverMode::Crowd;
  cfg.crowd_size = 2;
  const auto sm = run_miniqmc(cfg);
  for (int k : {2, 8}) {
    auto dcfg = cfg;
    dcfg.delay_rank = k;
    const auto delayed = run_miniqmc(dcfg);
    EXPECT_EQ(sm.moves_attempted, delayed.moves_attempted) << k;
    EXPECT_EQ(sm.acceptance_ratio, delayed.acceptance_ratio) << k;
    ASSERT_EQ(sm.walker_log_det.size(), delayed.walker_log_det.size());
    for (std::size_t i = 0; i < sm.walker_log_det.size(); ++i)
      EXPECT_NEAR(sm.walker_log_det[i], delayed.walker_log_det[i],
                  1e-7 * std::max(1.0, std::abs(sm.walker_log_det[i])))
          << "k=" << k << " walker " << i;
  }
}

TEST(CrowdDriver, SeedDeterminismAcrossRepeatedRuns)
{
  // Fixed seed + fixed walker count => identical acceptance_ratio and
  // moves_attempted on every run, in both driver modes and with delayed
  // updates engaged.
  for (int delay : {0, 4}) {
    for (DriverMode mode : {DriverMode::PerWalker, DriverMode::Crowd}) {
      auto cfg = crowd_test_config();
      cfg.spo = SpoLayout::AoSoA;
      cfg.tile_size = 16;
      cfg.driver = mode;
      cfg.crowd_size = 3;
      cfg.delay_rank = delay;
      const auto r1 = run_miniqmc(cfg);
      const auto r2 = run_miniqmc(cfg);
      EXPECT_EQ(r1.moves_attempted, r2.moves_attempted);
      EXPECT_EQ(r1.acceptance_ratio, r2.acceptance_ratio);
      EXPECT_EQ(r1.spline_orbital_evals, r2.spline_orbital_evals);
      ASSERT_EQ(r1.walker_log_det.size(), r2.walker_log_det.size());
      for (std::size_t i = 0; i < r1.walker_log_det.size(); ++i)
        EXPECT_EQ(r1.walker_log_det[i], r2.walker_log_det[i]);
    }
  }
}

// ---------------------------------------------------------------------------
// Mixed precision through the drivers: cfg.precision_path = Mixed swaps the
// SoA / AoSoA engines for their <float, double> variants — a different (more
// accurate) trajectory, but still a deterministic function of (config, seed)
// and still decomposition-neutral.  AoS has no mixed variant: the request
// resolves to Native and says so in the result.
// ---------------------------------------------------------------------------

TEST(CrowdDriver, MixedPathIsSurfacedAndSeedDeterministic)
{
  for (SpoLayout spo : {SpoLayout::SoA, SpoLayout::AoSoA}) {
    for (DriverMode mode : {DriverMode::PerWalker, DriverMode::Crowd}) {
      auto cfg = crowd_test_config();
      cfg.spo = spo;
      cfg.tile_size = 16;
      cfg.optimized_dt_jastrow = true;
      cfg.driver = mode;
      cfg.crowd_size = 3;
      cfg.precision_path = PrecisionPath::Mixed;
      const auto r1 = run_miniqmc(cfg);
      const auto r2 = run_miniqmc(cfg);
      EXPECT_EQ(r1.precision_path, PrecisionPath::Mixed)
          << "layout " << static_cast<int>(spo) << " mode " << static_cast<int>(mode);
      expect_identical_trajectories(r1, r2, "mixed rerun");
    }
  }
}

TEST(CrowdDriver, MixedPathIsDecompositionNeutral)
{
  // The same crowd-size sweep the Native bit-for-bit test runs, under
  // Mixed: every decomposition must reproduce the per-walker trajectory.
  for (SpoLayout spo : {SpoLayout::SoA, SpoLayout::AoSoA}) {
    auto cfg = crowd_test_config();
    cfg.spo = spo;
    cfg.tile_size = 16;
    cfg.optimized_dt_jastrow = true;
    cfg.precision_path = PrecisionPath::Mixed;
    const auto per_walker = run_miniqmc(cfg);
    for (int cs : {1, 2, 3, 0}) {
      auto ccfg = cfg;
      ccfg.driver = DriverMode::Crowd;
      ccfg.crowd_size = cs;
      const auto crowd = run_miniqmc(ccfg);
      EXPECT_EQ(crowd.precision_path, PrecisionPath::Mixed);
      expect_identical_trajectories(per_walker, crowd,
                                    spo == SpoLayout::SoA ? "mixed SoA" : "mixed AoSoA");
    }
  }
}

TEST(CrowdDriver, MixedActuallyChangesTheKernelsAndAoSFallsBack)
{
  // (a) Mixed is not a no-op: on the SoA layout the narrowed tables +
  // DP accumulation produce a different trajectory than the SP-native
  // engines (if these matched bit-for-bit the knob would be dead wiring).
  auto cfg = crowd_test_config();
  cfg.spo = SpoLayout::SoA;
  cfg.optimized_dt_jastrow = true;
  const auto native = run_miniqmc(cfg);
  EXPECT_EQ(native.precision_path, PrecisionPath::Native);
  auto mcfg = cfg;
  mcfg.precision_path = PrecisionPath::Mixed;
  const auto mixed = run_miniqmc(mcfg);
  bool any_differ = false;
  ASSERT_EQ(native.walker_log_det.size(), mixed.walker_log_det.size());
  for (std::size_t i = 0; i < native.walker_log_det.size(); ++i)
    any_differ = any_differ || native.walker_log_det[i] != mixed.walker_log_det[i];
  EXPECT_TRUE(any_differ) << "mixed trajectory is bit-identical to native: knob not wired";

  // (b) AoS has no mixed variant: the request resolves to Native, runs the
  // EXACT native trajectory, and the result says Native — never a silent
  // half-engaged state.
  auto acfg = crowd_test_config();
  acfg.spo = SpoLayout::AoS;
  acfg.optimized_dt_jastrow = false;
  const auto aos_native = run_miniqmc(acfg);
  auto amcfg = acfg;
  amcfg.precision_path = PrecisionPath::Mixed;
  const auto aos_mixed = run_miniqmc(amcfg);
  EXPECT_EQ(aos_mixed.precision_path, PrecisionPath::Native);
  expect_identical_trajectories(aos_native, aos_mixed, "AoS fallback");
}

TEST(CrowdDriver, DefaultConfigIsBitForBitTheExplicitNativePath)
{
  // Regression guard for every pre-knob trajectory: a config that never
  // mentions precision_path must be the same run as one that asks for
  // Native explicitly, on every layout.
  for (SpoLayout spo : {SpoLayout::AoS, SpoLayout::SoA, SpoLayout::AoSoA}) {
    auto cfg = crowd_test_config();
    cfg.spo = spo;
    cfg.tile_size = 16;
    cfg.optimized_dt_jastrow = spo != SpoLayout::AoS;
    cfg.driver = DriverMode::Crowd;
    cfg.crowd_size = 2;
    const auto implicit = run_miniqmc(cfg);
    auto ecfg = cfg;
    ecfg.precision_path = PrecisionPath::Native;
    const auto explicit_native = run_miniqmc(ecfg);
    EXPECT_EQ(implicit.precision_path, PrecisionPath::Native);
    expect_identical_trajectories(implicit, explicit_native, "default vs explicit Native");
  }
}

TEST(CrowdDriver, MoveCountScalesExactlyWithSteps)
{
  // The `steps` split changes only how long the chain runs: the attempted
  // move count is walkers * steps * electrons exactly, for both drivers.
  for (DriverMode mode : {DriverMode::PerWalker, DriverMode::Crowd}) {
    auto cfg = crowd_test_config();
    cfg.driver = mode;
    cfg.crowd_size = 3;
    cfg.steps = 1;
    const auto r1 = run_miniqmc(cfg);
    cfg.steps = 3;
    const auto r3 = run_miniqmc(cfg);
    EXPECT_EQ(r1.moves_attempted,
              static_cast<std::size_t>(4) * 1 * static_cast<std::size_t>(r1.num_electrons));
    EXPECT_EQ(r3.moves_attempted, 3 * r1.moves_attempted);
  }
}

TEST(CrowdDriver, ProfileCoversAllSections)
{
  auto cfg = crowd_test_config();
  cfg.spo = SpoLayout::AoSoA;
  cfg.tile_size = 16;
  cfg.driver = DriverMode::Crowd;
  cfg.crowd_size = 2;
  const auto res = run_miniqmc(cfg);
  EXPECT_GT(res.profile.seconds(kSectionBspline), 0.0);
  EXPECT_GT(res.profile.seconds(kSectionDistance), 0.0);
  EXPECT_GT(res.profile.seconds(kSectionJastrow), 0.0);
  EXPECT_GT(res.profile.seconds(kSectionDeterminant), 0.0);
  EXPECT_GT(res.acceptance_ratio, 0.0);
  EXPECT_LT(res.acceptance_ratio, 1.0);
}

// ---------------------------------------------------------------------------
// WavefunctionCrowd: lock-step Slater-Jastrow pricing, float and double.
// ---------------------------------------------------------------------------

namespace {

template <typename T>
struct CrowdWfHarness
{
  static constexpr int kWalkers = 3;

  CrystalSystem sys = make_orthorhombic_carbon(1, 1, 1);
  std::shared_ptr<CoefStorage<T>> coefs;
  ParticleSetSoA<T> ions;
  int norb = 5;
  T rcut;

  explicit CrowdWfHarness(std::uint64_t seed = 17)
  {
    const double l = sys.lattice.rows()[0].x;
    const auto pw = PlaneWaveOrbitals::make(norb, Vec3<double>{l, l, l}, seed);
    coefs = build_planewave_storage(Grid3D<T>::cube(12, static_cast<T>(l)), pw);
    ions = ParticleSetSoA<T>(sys.num_ions());
    for (int i = 0; i < sys.num_ions(); ++i)
      ions.set(i, Vec3<T>{static_cast<T>(sys.ions[i].x), static_cast<T>(sys.ions[i].y),
                          static_cast<T>(sys.ions[i].z)});
    rcut = static_cast<T>(0.9 * sys.lattice.wigner_seitz_radius());
  }

  std::unique_ptr<SlaterJastrow<T>> make_wf(int delay_rank) const
  {
    auto j1 = BsplineJastrowFunctor<T>::make_exponential(T(-1.0), T(0.8), rcut);
    auto j2 = BsplineJastrowFunctor<T>::make_exponential(T(-0.5), T(1.0), rcut);
    return std::make_unique<SlaterJastrow<T>>(coefs, sys.lattice, ions, j1, j2,
                                              MinImageMode::Fast, delay_rank);
  }

  ParticleSetSoA<T> electrons_for(int walker) const
  {
    return random_particles<T>(2 * norb, sys.lattice, 100 + static_cast<std::uint64_t>(walker));
  }

  /// Run the same Markov chain through a sequential per-walker loop and a
  /// lock-step crowd and require bit-identical ratios and final log psi.
  /// @p team hands the crowd an inner thread team (batched facade requests
  /// and delayed flushes schedule onto it) — equivalence must hold for
  /// every team size.
  void run_equivalence(int delay_rank, TeamHandle team = TeamHandle::serial())
  {
    std::vector<std::unique_ptr<SlaterJastrow<T>>> seq, batched;
    for (int i = 0; i < kWalkers; ++i) {
      seq.push_back(make_wf(delay_rank));
      batched.push_back(make_wf(delay_rank));
      const auto elec = electrons_for(i);
      ASSERT_TRUE(seq.back()->initialize(elec));
      ASSERT_TRUE(batched.back()->initialize(elec));
    }
    std::vector<SlaterJastrow<T>*> ptrs;
    for (auto& w : batched)
      ptrs.push_back(w.get());
    WavefunctionCrowd<T> crowd(ptrs);
    crowd.set_team(team);
    ASSERT_EQ(crowd.size(), kWalkers);

    const int nel = 2 * norb;
    // Per-walker proposal and decision streams, shared by both paths.
    std::vector<Xoshiro256> prop_rng, dec_rng;
    for (int i = 0; i < kWalkers; ++i) {
      prop_rng.push_back(Xoshiro256::for_stream(7, static_cast<std::uint64_t>(i)));
      dec_rng.push_back(Xoshiro256::for_stream(8, static_cast<std::uint64_t>(i)));
    }

    std::vector<Vec3<T>> rnew(kWalkers);
    std::vector<double> lr_crowd(kWalkers);
    int accepted = 0;
    for (int move = 0; move < 3 * nel; ++move) {
      const int iel = move % nel;
      for (int i = 0; i < kWalkers; ++i) {
        const Vec3<T> r = seq[static_cast<std::size_t>(i)]->electrons()[iel];
        auto& rng = prop_rng[static_cast<std::size_t>(i)];
        rnew[static_cast<std::size_t>(i)] =
            Vec3<T>{r.x + static_cast<T>(0.3 * rng.gaussian()),
                    r.y + static_cast<T>(0.3 * rng.gaussian()),
                    r.z + static_cast<T>(0.3 * rng.gaussian())};
      }
      crowd.ratio_log(iel, rnew.data(), lr_crowd.data());
      for (int i = 0; i < kWalkers; ++i) {
        const double lr_seq =
            seq[static_cast<std::size_t>(i)]->ratio_log(iel, rnew[static_cast<std::size_t>(i)]);
        // Bit-for-bit: the crowd's batched engine sweep is the same
        // arithmetic as the sequential per-walker evaluation.
        ASSERT_EQ(lr_crowd[static_cast<std::size_t>(i)], lr_seq)
            << "move " << move << " walker " << i;
        const bool accept =
            dec_rng[static_cast<std::size_t>(i)].uniform() < std::exp(2.0 * lr_seq);
        if (accept) {
          ++accepted;
          seq[static_cast<std::size_t>(i)]->accept(iel);
          crowd.accept(i, iel);
        } else {
          seq[static_cast<std::size_t>(i)]->reject(iel);
          crowd.reject(i, iel);
        }
      }
    }
    EXPECT_GT(accepted, 0);
    for (int i = 0; i < kWalkers; ++i)
      EXPECT_EQ(seq[static_cast<std::size_t>(i)]->log_psi(),
                crowd.walker(i).log_psi())
          << "walker " << i;
  }
};

template <typename T>
class WavefunctionCrowdTest : public ::testing::Test
{
};

using CrowdRealTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(WavefunctionCrowdTest, CrowdRealTypes);

} // namespace

TYPED_TEST(WavefunctionCrowdTest, LockStepMatchesSequentialBitForBit)
{
  CrowdWfHarness<TypeParam> h;
  h.run_equivalence(/*delay_rank=*/0);
}

TYPED_TEST(WavefunctionCrowdTest, LockStepMatchesSequentialWithDelayedUpdates)
{
  CrowdWfHarness<TypeParam> h;
  h.run_equivalence(/*delay_rank=*/3);
}

TYPED_TEST(WavefunctionCrowdTest, InnerTeamKeepsLockStepBitForBit)
{
  // The crowd's inner team parallelizes its batched value requests and the
  // walkers' delayed flushes; both are work-distribution only, so the chain
  // stays bit-identical to the sequential per-walker loop in both
  // precisions.
  CrowdWfHarness<TypeParam> h;
  h.run_equivalence(/*delay_rank=*/3, TeamHandle::of(2));
}
