// Per-walker output buffers (paper Fig. 3 `WalkerAoS` / Fig. 6 `WalkerSoA`).
//
// Each Monte Carlo walker owns private copies of the kernel outputs; the
// coefficient table is the only shared (read-only) state.  Buffer sizes use
// the padded spline count so every engine can run its inner loop over full
// SIMD vectors.
#ifndef MQC_QMC_WALKER_H
#define MQC_QMC_WALKER_H

#include <cstddef>

#include "common/aligned_allocator.h"
#include "common/config.h"

namespace mqc {

/// Outputs in the baseline AoS layout: G[N][3], H[N][3][3].
template <typename T>
struct WalkerAoS
{
  explicit WalkerAoS(std::size_t padded_splines)
      : v(padded_splines), g(3 * padded_splines), l(padded_splines), h(9 * padded_splines)
  {
  }

  aligned_vector<T> v; ///< values [Np]
  aligned_vector<T> g; ///< gradients, AoS [3*Np] as xyz|xyz|...
  aligned_vector<T> l; ///< Laplacians [Np]
  aligned_vector<T> h; ///< Hessians, AoS [9*Np] row-major 3x3 per orbital
};

/// Outputs in the SoA layout: 10 component streams with a common stride.
/// Works unchanged for the tiled (AoSoA) engine: tile t occupies the slice
/// [offset(t), offset(t)+padded_tile) of every stream.
template <typename T>
struct WalkerSoA
{
  explicit WalkerSoA(std::size_t component_stride)
      : stride(component_stride), v(component_stride), g(3 * component_stride),
        l(component_stride), h(6 * component_stride)
  {
  }

  std::size_t stride; ///< component stride (padded spline count)
  aligned_vector<T> v; ///< values [stride]
  aligned_vector<T> g; ///< gx|gy|gz, each [stride]
  aligned_vector<T> l; ///< Laplacians [stride]
  aligned_vector<T> h; ///< hxx|hxy|hxz|hyy|hyz|hzz, each [stride]

  [[nodiscard]] T* gx() noexcept { return g.data(); }
  [[nodiscard]] T* gy() noexcept { return g.data() + stride; }
  [[nodiscard]] T* gz() noexcept { return g.data() + 2 * stride; }
  [[nodiscard]] const T* gx() const noexcept { return g.data(); }
  [[nodiscard]] const T* gy() const noexcept { return g.data() + stride; }
  [[nodiscard]] const T* gz() const noexcept { return g.data() + 2 * stride; }
  [[nodiscard]] T* hcomp(int q) noexcept { return h.data() + static_cast<std::size_t>(q) * stride; }
  [[nodiscard]] const T* hcomp(int q) const noexcept
  {
    return h.data() + static_cast<std::size_t>(q) * stride;
  }
};

} // namespace mqc

#endif // MQC_QMC_WALKER_H
