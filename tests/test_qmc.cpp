// Integration tests: the miniQMC driver (profile sections, acceptance,
// layout equivalence of the Monte Carlo process) and the nested-threading
// driver (partition correctness, output equivalence across nth).
#include <cmath>

#include <gtest/gtest.h>

#include "common/threading.h"
#include "common/timer.h"
#include "distance/distance_table.h"
#include "jastrow/two_body.h"
#include "particles/graphite.h"
#include "core/synthetic_orbitals.h"
#include "qmc/miniqmc_driver.h"
#include "qmc/nested_driver.h"
#include "qmc/walker.h"

using namespace mqc;

// Timing-margin tests are meaningless under the 10-50x overhead of sanitizer
// instrumentation (the CI sanitize job still runs this suite's correctness
// tests): skip them there.
#if defined(__SANITIZE_ADDRESS__)
#define MQC_SKIP_UNDER_SANITIZER() \
  GTEST_SKIP() << "sanitizer build: shadow-memory checks distort timing margins"
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MQC_SKIP_UNDER_SANITIZER() \
  GTEST_SKIP() << "sanitizer build: shadow-memory checks distort timing margins"
#endif
#endif
#ifndef MQC_SKIP_UNDER_SANITIZER
#define MQC_SKIP_UNDER_SANITIZER() static_cast<void>(0)
#endif

namespace {

MiniQMCConfig small_config()
{
  MiniQMCConfig cfg;
  cfg.supercell = {1, 1, 1};
  cfg.grid_size = 12;
  cfg.num_splines = 16; // 32 electrons
  cfg.steps = 2;
  cfg.num_walkers = 2;
  cfg.quadrature_points = 2;
  return cfg;
}

} // namespace

TEST(MiniQMC, RunsAndProducesSaneProfile)
{
  const auto res = run_miniqmc(small_config());
  EXPECT_EQ(res.num_walkers, 2);
  EXPECT_EQ(res.num_orbitals, 16);
  EXPECT_EQ(res.num_electrons, 32);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GT(res.moves_attempted, 0u);
  EXPECT_GT(res.acceptance_ratio, 0.0);
  EXPECT_LT(res.acceptance_ratio, 1.0);
  // All four sections must have been timed.
  EXPECT_GT(res.profile.seconds(kSectionBspline), 0.0);
  EXPECT_GT(res.profile.seconds(kSectionDistance), 0.0);
  EXPECT_GT(res.profile.seconds(kSectionJastrow), 0.0);
  EXPECT_GT(res.profile.seconds(kSectionDeterminant), 0.0);
  // Percentages sum to 100.
  double total = 0.0;
  for (const auto& key : res.profile.keys())
    total += res.profile.percent(key);
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(MiniQMC, AllLayoutsRun)
{
  for (SpoLayout layout : {SpoLayout::AoS, SpoLayout::SoA, SpoLayout::AoSoA}) {
    auto cfg = small_config();
    cfg.spo = layout;
    cfg.tile_size = 16;
    const auto res = run_miniqmc(cfg);
    EXPECT_GT(res.spline_orbital_evals, 0u) << static_cast<int>(layout);
    EXPECT_GT(res.acceptance_ratio, 0.0);
  }
}

TEST(MiniQMC, MoveCountMatchesConfiguration)
{
  auto cfg = small_config();
  cfg.steps = 3;
  const auto res = run_miniqmc(cfg);
  // walkers * steps * electrons proposed moves.
  EXPECT_EQ(res.moves_attempted,
            static_cast<std::size_t>(2) * 3 * static_cast<std::size_t>(res.num_electrons));
}

TEST(MiniQMC, AcceptanceIsLayoutIndependent)
{
  // The Monte Carlo process itself must not depend on the memory layout:
  // same seed => same trajectory => identical acceptance counts (kernels
  // agree to float precision; acceptance is robust to that).
  auto cfg_a = small_config();
  cfg_a.spo = SpoLayout::AoS;
  cfg_a.optimized_dt_jastrow = false;
  auto cfg_b = small_config();
  cfg_b.spo = SpoLayout::SoA;
  cfg_b.optimized_dt_jastrow = true;
  const auto ra = run_miniqmc(cfg_a);
  const auto rb = run_miniqmc(cfg_b);
  EXPECT_NEAR(ra.acceptance_ratio, rb.acceptance_ratio, 0.02);
}

TEST(MiniQMC, DeterministicAcrossRuns)
{
  const auto r1 = run_miniqmc(small_config());
  const auto r2 = run_miniqmc(small_config());
  EXPECT_DOUBLE_EQ(r1.acceptance_ratio, r2.acceptance_ratio);
  EXPECT_EQ(r1.spline_orbital_evals, r2.spline_orbital_evals);
}

TEST(MiniQMC, SoAJastrowEvaluationBeatsAoSAtPaperScale)
{
#if defined(MQC_NO_VECTOR)
  // The SoA win comes from SIMD over branch-free masked rows; in the scalar
  // reference build the masked full-spline work loses to AoS's early-out
  // branch by design (that asymmetry IS the paper's vector-efficiency story).
  GTEST_SKIP() << "scalar MQC_NO_VECTOR build: SoA wins only via vectorization";
#endif
  MQC_SKIP_UNDER_SANITIZER();
  // Table III's point: the SoA treatment shrinks the distance-table and
  // Jastrow cost, shifting the profile toward B-splines.  Measure the full
  // two-body Jastrow evaluation directly at the CORAL system size (256
  // electrons), where the vectorized row kernels have real work per row.
  const auto sys = make_graphite_supercell(4, 4, 1);
  const int nel = 256;
  auto elec_soa = random_particles<float>(nel, sys.lattice, 3);
  auto elec_aos = to_aos(elec_soa);
  const auto fj2 = BsplineJastrowFunctor<float>::make_exponential(-0.5f, 1.0f, 6.0f);
  DistanceTableAA_AoS<float> ee_a(sys.lattice, nel, MinImageMode::Fast);
  DistanceTableAA_SoA<float> ee_s(sys.lattice, nel, MinImageMode::Fast);
  ee_a.evaluate(elec_aos);
  ee_s.evaluate(elec_soa);
  const TwoBodyJastrowAoS<float> j2a(fj2);
  const TwoBodyJastrowSoA<float> j2s(fj2);
  std::vector<Vec3<float>> g(static_cast<std::size_t>(nel));
  std::vector<float> l(static_cast<std::size_t>(nel));
  volatile float sink = 0.0f;
  const double t_aos = time_per_iteration(
      [&] { sink = sink + j2a.evaluate_log(ee_a, g.data(), l.data()); }, 0.15);
  const double t_soa = time_per_iteration(
      [&] { sink = sink + j2s.evaluate_log(ee_s, g.data(), l.data()); }, 0.15);
  // Measured ~2.4x on the reference host; require a conservative margin.
  EXPECT_LT(t_soa, t_aos / 1.3);
}

TEST(Nested, PartitionedEvaluationMatchesSerial)
{
  // The nested driver's correctness hinges on the strided tile partition
  // writing disjoint slices.  Emulate a 3-member team by hand and compare
  // against the serial whole-set evaluation.
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 96, 77);
  MultiBspline<float> mb(*coefs, 16); // 6 tiles
  WalkerSoA<float> serial(mb.out_stride()), team(mb.out_stride());
  const float x = 0.21f, y = 0.55f, z = 0.83f;
  mb.evaluate_vgh(x, y, z, serial.v.data(), serial.g.data(), serial.h.data(), serial.stride);
  const int nth = 3;
  for (int member = 0; member < nth; ++member) {
    StridedRange r(static_cast<std::size_t>(mb.num_tiles()), nth, static_cast<std::size_t>(member));
    r.for_each([&](std::size_t t) {
      mb.evaluate_vgh_tile(static_cast<int>(t), x, y, z, team.v.data(), team.g.data(),
                           team.h.data(), team.stride);
    });
  }
  for (std::size_t i = 0; i < mb.padded_splines(); ++i) {
    ASSERT_EQ(serial.v[i], team.v[i]);
    ASSERT_EQ(serial.g[i], team.g[i]);
    ASSERT_EQ(serial.h[i], team.h[i]);
  }
}

TEST(Nested, DriverRunsAllKernels)
{
  const auto grid = Grid3D<float>::cube(10, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 3);
  MultiBspline<float> mb(*coefs, 16);
  for (NestedKernel k : {NestedKernel::V, NestedKernel::VGL, NestedKernel::VGH}) {
    NestedConfig cfg;
    cfg.nth = 2;
    cfg.num_walkers = 1;
    cfg.ns = 8;
    cfg.niters = 2;
    cfg.kernel = k;
    const auto res = run_nested(mb, cfg);
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_GT(res.throughput, 0.0);
    EXPECT_EQ(res.num_walkers, 1);
    EXPECT_EQ(res.nth, 2);
  }
}

TEST(Nested, PartitionedMultiEvaluationMatchesSerial)
{
  // The multi-position path of the nested partition: a 2-member team sweeps
  // its tile subsets over a block of positions with evaluate_vgh_tile_multi;
  // outputs must equal the per-position serial whole-set evaluation exactly.
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 96, 78);
  MultiBspline<float> mb(*coefs, 16); // 6 tiles
  const int pb = 3;
  std::vector<Vec3<float>> pos = {{0.21f, 0.55f, 0.83f}, {0.72f, 0.11f, 0.34f},
                                  {0.48f, 0.91f, 0.05f}};
  std::vector<WalkerSoA<float>> serial, team;
  std::vector<float*> v, g, h;
  for (int p = 0; p < pb; ++p) {
    serial.emplace_back(mb.out_stride());
    team.emplace_back(mb.out_stride());
  }
  for (int p = 0; p < pb; ++p) {
    v.push_back(team[static_cast<std::size_t>(p)].v.data());
    g.push_back(team[static_cast<std::size_t>(p)].g.data());
    h.push_back(team[static_cast<std::size_t>(p)].h.data());
  }
  for (int p = 0; p < pb; ++p)
    mb.evaluate_vgh(pos[static_cast<std::size_t>(p)].x, pos[static_cast<std::size_t>(p)].y,
                    pos[static_cast<std::size_t>(p)].z, serial[static_cast<std::size_t>(p)].v.data(),
                    serial[static_cast<std::size_t>(p)].g.data(),
                    serial[static_cast<std::size_t>(p)].h.data(), mb.out_stride());
  std::vector<BsplineWeights3D<float>> w(static_cast<std::size_t>(pb));
  compute_weights_vgh_batch(mb.grid(), pos.data(), pb, w.data());
  const int nth = 2;
  for (int member = 0; member < nth; ++member) {
    StridedRange r(static_cast<std::size_t>(mb.num_tiles()), nth, static_cast<std::size_t>(member));
    r.for_each([&](std::size_t t) {
      mb.evaluate_vgh_tile_multi(static_cast<int>(t), w.data(), pb, v.data(), g.data(), h.data(),
                                 mb.out_stride());
    });
  }
  for (int p = 0; p < pb; ++p)
    for (std::size_t i = 0; i < mb.padded_splines(); ++i) {
      ASSERT_EQ(serial[static_cast<std::size_t>(p)].v[i], team[static_cast<std::size_t>(p)].v[i]);
      ASSERT_EQ(serial[static_cast<std::size_t>(p)].g[i], team[static_cast<std::size_t>(p)].g[i]);
      ASSERT_EQ(serial[static_cast<std::size_t>(p)].h[i], team[static_cast<std::size_t>(p)].h[i]);
    }
}

TEST(Nested, DriverRunsAllKernelsWithPositionBlocks)
{
  const auto grid = Grid3D<float>::cube(10, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 3);
  MultiBspline<float> mb(*coefs, 16);
  for (NestedKernel k : {NestedKernel::V, NestedKernel::VGL, NestedKernel::VGH}) {
    NestedConfig cfg;
    cfg.nth = 2;
    cfg.num_walkers = 1;
    cfg.ns = 10; // not a multiple of pos_block: exercises the remainder block
    cfg.niters = 2;
    cfg.pos_block = 4;
    cfg.kernel = k;
    const auto res = run_nested(mb, cfg);
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_GT(res.throughput, 0.0);
    EXPECT_EQ(res.pos_block, 4);
  }
}

TEST(Nested, PositionBlockClampedToPositionCount)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 32, 5);
  MultiBspline<float> mb(*coefs, 16);
  NestedConfig cfg;
  cfg.num_walkers = 1;
  cfg.ns = 4;
  cfg.pos_block = 64; // larger than ns
  const auto res = run_nested(mb, cfg);
  EXPECT_EQ(res.pos_block, 4);
  EXPECT_GT(res.throughput, 0.0);
}

TEST(Nested, WalkerCountDerivedFromThreadBudget)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 32, 5);
  MultiBspline<float> mb(*coefs, 16);
  NestedConfig cfg;
  cfg.total_threads = 4;
  cfg.nth = 2;
  cfg.ns = 4;
  const auto res = run_nested(mb, cfg);
  EXPECT_EQ(res.num_walkers, 2);
}

TEST(Nested, ThroughputScalesWithWork)
{
  MQC_SKIP_UNDER_SANITIZER();
  // Quadrupling iterations must increase time and keep throughput in the
  // same ballpark.  Timing smoke test: best-of-3 per configuration and a
  // loose bound, because the CI host is a shared VM with heavy steal-time
  // noise on millisecond windows.
  const auto grid = Grid3D<float>::cube(12, 1.0f);
  auto coefs = make_random_storage<float>(grid, 128, 5);
  MultiBspline<float> mb(*coefs, 32);
  NestedConfig cfg;
  cfg.nth = 1;
  cfg.num_walkers = 1;
  cfg.ns = 64;
  auto best = [&](int niters) {
    cfg.niters = niters;
    NestedResult r = run_nested(mb, cfg);
    for (int i = 1; i < 3; ++i) {
      const auto s = run_nested(mb, cfg);
      if (s.seconds < r.seconds)
        r = s;
    }
    return r;
  };
  const auto r1 = best(4);
  const auto r2 = best(16);
  EXPECT_GT(r2.seconds, r1.seconds);
  EXPECT_LT(std::abs(r2.throughput - r1.throughput) / r1.throughput, 1.0);
}
