// The crowd lock-step sweep kernel, factored out of crowd_driver.cpp so
// every consumer of the crowd schedule — run_miniqmc_crowd, the resident
// WalkerPopulation shards (walker_population.cpp) and the JobQueue's
// per-shard workers (job_queue.cpp) — advances walkers through the one
// implementation.  A crowd is a contiguous walker range [first, first+count)
// advanced in lock-step: each electron move gathers the crowd's trial
// positions into ONE multi-position OrbitalSet request.  All per-walker
// arithmetic (distance tables, Jastrow/determinant ratios, Metropolis
// decisions, rng draws) is miniqmc_context.h's, untouched — a crowd
// trajectory stays bit-for-bit the per-walker trajectory for any crowd
// decomposition, which is what makes shard counts and job packing
// trajectory-neutral by construction.
//
// Like miniqmc_context.h, this header is an implementation detail of the
// qmc/ translation units, not public API.
#ifndef MQC_QMC_CROWD_SWEEP_H
#define MQC_QMC_CROWD_SWEEP_H

#include <algorithm>
#include <vector>

#include "qmc/miniqmc_context.h"

namespace mqc::detail {

/// Per-crowd scratch: gathered trial positions, per-walker output-slot
/// pointer tables for the multi-position requests, and the OrbitalResource
/// owning the batch's weight sets.  Everything here is walker-INVARIANT
/// (slot pointers into per-walker buffers that live as long as the walker):
/// build it once per crowd, outside the epoch loop, so the timed sweep —
/// and a checkpoint_interval=1 run's every-step epochs — allocate nothing.
struct CrowdScratch
{
  CrowdScratch(std::vector<WalkerState>& walkers, int first, int count, const MiniQMCSystem& sys)
  {
    rnew.resize(static_cast<std::size_t>(count));
    v.resize(static_cast<std::size_t>(count));
    g.resize(static_cast<std::size_t>(count));
    h.resize(static_cast<std::size_t>(count));
    l.resize(static_cast<std::size_t>(count));
    quad_v.resize(static_cast<std::size_t>(count) * static_cast<std::size_t>(sys.nq));
    quad_pos.resize(static_cast<std::size_t>(count) * static_cast<std::size_t>(sys.nq));
    (void)ores.weights_for(count * sys.nq);
    for (int i = 0; i < count; ++i) {
      WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
      const auto ui = static_cast<std::size_t>(i);
      // The facade writes into the layout-appropriate walker buffer: AoS
      // component groups for the baseline engine, SoA streams otherwise.
      if (sys.aos_outputs) {
        v[ui] = w.out_aos->v.data();
        g[ui] = w.out_aos->g.data();
        h[ui] = w.out_aos->h.data();
        l[ui] = w.out_aos->l.data();
      } else {
        v[ui] = w.out_soa->v.data();
        g[ui] = w.out_soa->g.data();
        h[ui] = w.out_soa->h.data();
        l[ui] = w.out_soa->l.data();
      }
      for (int q = 0; q < sys.nq; ++q)
        quad_v[ui * static_cast<std::size_t>(sys.nq) + static_cast<std::size_t>(q)] =
            w.quad_v_ptrs[static_cast<std::size_t>(q)];
    }
  }

  std::vector<Vec3<qmc_real>> rnew;
  std::vector<qmc_real*> v, g, h, l;   ///< per-walker component slots
  std::vector<qmc_real*> quad_v;       ///< count*nq quadrature value slots
  std::vector<Vec3<qmc_real>> quad_pos; ///< gathered count*nq quadrature positions
  OrbitalResource<qmc_real> ores;      ///< weight sets for the crowd's batches
};

/// One VGH request for the crowd's trial positions (scr.rnew[0..count)),
/// landing in each walker's own output buffers.  @p team is the crowd's
/// inner team: with more than one thread the facade forks the (tile,
/// position-block) sweep under this crowd's outer thread (Opt C).
inline void crowd_eval_vgh(const MiniQMCSystem& sys, std::vector<WalkerState>& walkers, int first,
                           int count, CrowdScratch& scr, TeamHandle team)
{
  OrbitalEvalRequest<qmc_real> rq;
  rq.deriv = DerivLevel::VGH;
  rq.positions = scr.rnew.data();
  rq.count = count;
  rq.v = scr.v.data();
  rq.g = scr.g.data();
  rq.lh = scr.h.data();
  rq.stride = sys.out_pad;
  rq.parallel = team.parallel();
  rq.team = team;
  sys.spo.evaluate(rq, scr.ores);
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(sys.norb);
}

/// One VGL request at the crowd's current positions of electron e (kinetic
/// energy measurement).
inline void crowd_eval_vgl(const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                           std::vector<WalkerState>& walkers, int first, int count, int e,
                           CrowdScratch& scr, TeamHandle team)
{
  for (int i = 0; i < count; ++i) {
    const WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
    scr.rnew[static_cast<std::size_t>(i)] = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
  }
  OrbitalEvalRequest<qmc_real> rq;
  rq.deriv = DerivLevel::VGL;
  rq.positions = scr.rnew.data();
  rq.count = count;
  rq.v = scr.v.data();
  rq.g = scr.g.data();
  rq.lh = scr.l.data();
  rq.stride = sys.out_pad;
  rq.parallel = team.parallel();
  rq.team = team;
  sys.spo.evaluate(rq, scr.ores);
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(sys.norb);
}

/// One V request over the whole crowd's quadrature points (count*nq
/// positions, each walker's nq points already proposed into its quad_r).
inline void crowd_eval_quad_v(const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                              std::vector<WalkerState>& walkers, int first, int count,
                              CrowdScratch& scr, TeamHandle team)
{
  const int nq = cfg.quadrature_points;
  // Gather the crowd's quadrature positions into one contiguous batch.
  for (int i = 0; i < count; ++i) {
    const WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
    std::copy(w.quad_r.begin(), w.quad_r.begin() + nq,
              scr.quad_pos.begin() + static_cast<std::size_t>(i) * static_cast<std::size_t>(nq));
  }
  OrbitalEvalRequest<qmc_real> rq;
  rq.deriv = DerivLevel::V;
  rq.positions = scr.quad_pos.data();
  rq.count = count * nq;
  rq.v = scr.quad_v.data();
  rq.parallel = team.parallel();
  rq.team = team;
  sys.spo.evaluate(rq, scr.ores);
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(nq) * static_cast<std::size_t>(sys.norb);
}

/// Advance the crowd [first, first+count) from step @p step_begin to
/// @p step_end (exclusive): the lock-step drift-diffusion + measurement body
/// shared by every crowd consumer.  Call inside the consumer's outer region
/// (or from a plain thread with a serial @p team); snapshots and fault
/// points stay OUTSIDE, at the epoch boundaries between calls.
inline void crowd_sweep_steps(const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                              std::vector<WalkerState>& walkers, int first, int count,
                              CrowdScratch& scr, ProfileRegistry& cprof, TeamHandle inner,
                              int step_begin, int step_end)
{
  for (int s = step_begin; s < step_end; ++s) {
    // Drift-diffusion phase: the whole crowd moves electron e together.
    for (int e = 0; e < sys.nel; ++e) {
      for (int i = 0; i < count; ++i) {
        WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
        ++w.attempted;
        const Vec3<qmc_real> r_old = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
        scr.rnew[static_cast<std::size_t>(i)] = propose(w.rng, r_old, cfg.move_sigma);
      }
      {
        ScopedTimer t(cprof, kSectionBspline);
        crowd_eval_vgh(sys, walkers, first, count, scr, inner);
      }
      for (int i = 0; i < count; ++i) {
        WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
        const qmc_real* v = sys.aos_outputs ? w.out_aos->v.data() : w.out_soa->v.data();
        metropolis_move(w, sys, cfg, e, scr.rnew[static_cast<std::size_t>(i)], v);
      }
    }

    // Measurement phase, electron by electron across the crowd: one VGL
    // request (kinetic energy), per-walker quadrature proposals and
    // distance/Jastrow ratios, then one V request over all count*nq
    // quadrature points.  Each walker's rng stream sees exactly the
    // per-walker driver's draw sequence.
    for (int e = 0; e < sys.nel; ++e) {
      {
        ScopedTimer t(cprof, kSectionBspline);
        crowd_eval_vgl(sys, cfg, walkers, first, count, e, scr, inner);
      }
      for (int i = 0; i < count; ++i) {
        WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
        const Vec3<qmc_real> re = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
        for (int q = 0; q < cfg.quadrature_points; ++q)
          w.quad_r[static_cast<std::size_t>(q)] = propose(w.rng, re, 0.5);
        quadrature_dist_jastrow(w, sys, cfg, e);
      }
      if (cfg.quadrature_points > 0) {
        ScopedTimer t(cprof, kSectionBspline);
        crowd_eval_quad_v(sys, cfg, walkers, first, count, scr, inner);
      }
    }
    for (int i = 0; i < count; ++i)
      full_jastrow(walkers[static_cast<std::size_t>(first + i)], sys, cfg);
  }
}

} // namespace mqc::detail

#endif // MQC_QMC_CROWD_SWEEP_H
