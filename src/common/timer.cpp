#include "common/timer.h"

namespace mqc {

void ProfileRegistry::add(const std::string& key, double seconds, std::size_t calls)
{
  Entry& e = entries_[key];
  e.seconds += seconds;
  e.calls += calls;
}

void ProfileRegistry::merge(const ProfileRegistry& other)
{
  for (const auto& [key, entry] : other.entries_) {
    Entry& e = entries_[key];
    e.seconds += entry.seconds;
    e.calls += entry.calls;
  }
}

double ProfileRegistry::seconds(const std::string& key) const
{
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0.0 : it->second.seconds;
}

std::size_t ProfileRegistry::calls(const std::string& key) const
{
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.calls;
}

double ProfileRegistry::total() const
{
  double sum = 0.0;
  for (const auto& [key, entry] : entries_)
    sum += entry.seconds;
  return sum;
}

double ProfileRegistry::percent(const std::string& key) const
{
  const double t = total();
  return t > 0.0 ? 100.0 * seconds(key) / t : 0.0;
}

std::vector<std::string> ProfileRegistry::keys() const
{
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_)
    out.push_back(key);
  return out;
}

} // namespace mqc
