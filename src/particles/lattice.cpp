#include "particles/lattice.h"

#include <cmath>
#include <limits>

namespace mqc {
namespace {

Vec3<double> cross(const Vec3<double>& a, const Vec3<double>& b) noexcept
{
  return Vec3<double>{a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

} // namespace

Lattice::Lattice()
    : Lattice(std::array<Vec3<double>, 3>{Vec3<double>{1, 0, 0}, Vec3<double>{0, 1, 0},
                                          Vec3<double>{0, 0, 1}})
{
}

Lattice::Lattice(const std::array<Vec3<double>, 3>& rows) : a_(rows) { finalize(); }

Lattice Lattice::orthorhombic(double lx, double ly, double lz)
{
  return Lattice(std::array<Vec3<double>, 3>{Vec3<double>{lx, 0, 0}, Vec3<double>{0, ly, 0},
                                             Vec3<double>{0, 0, lz}});
}

void Lattice::finalize()
{
  const Vec3<double> bc = cross(a_[1], a_[2]);
  volume_ = dot(a_[0], bc);
  // b rows satisfy b_i . a_j = delta_ij (reciprocal vectors without 2*pi).
  const double inv = 1.0 / volume_;
  b_[0] = inv * cross(a_[1], a_[2]);
  b_[1] = inv * cross(a_[2], a_[0]);
  b_[2] = inv * cross(a_[0], a_[1]);
  volume_ = std::abs(volume_);
  constexpr double eps = 1e-12;
  orthorhombic_ = std::abs(a_[0].y) < eps && std::abs(a_[0].z) < eps && std::abs(a_[1].x) < eps &&
                  std::abs(a_[1].z) < eps && std::abs(a_[2].x) < eps && std::abs(a_[2].y) < eps;
}

Vec3<double> Lattice::to_cartesian(const Vec3<double>& f) const noexcept
{
  return f.x * a_[0] + f.y * a_[1] + f.z * a_[2];
}

Vec3<double> Lattice::to_fractional(const Vec3<double>& r) const noexcept
{
  return Vec3<double>{dot(b_[0], r), dot(b_[1], r), dot(b_[2], r)};
}

Vec3<double> Lattice::wrap(const Vec3<double>& r) const noexcept
{
  Vec3<double> f = to_fractional(r);
  f.x -= std::floor(f.x);
  f.y -= std::floor(f.y);
  f.z -= std::floor(f.z);
  return to_cartesian(f);
}

Vec3<double> Lattice::min_image(const Vec3<double>& dr, MinImageMode mode) const noexcept
{
  Vec3<double> f = to_fractional(dr);
  f.x -= std::nearbyint(f.x);
  f.y -= std::nearbyint(f.y);
  f.z -= std::nearbyint(f.z);
  Vec3<double> best = to_cartesian(f);
  if (mode == MinImageMode::Fast || orthorhombic_)
    return best;
  double best2 = norm2(best);
  for (int i = -1; i <= 1; ++i)
    for (int j = -1; j <= 1; ++j)
      for (int k = -1; k <= 1; ++k) {
        if (i == 0 && j == 0 && k == 0)
          continue;
        const Vec3<double> cand =
            best + static_cast<double>(i) * a_[0] + static_cast<double>(j) * a_[1] +
            static_cast<double>(k) * a_[2];
        const double c2 = norm2(cand);
        if (c2 < best2) {
          best2 = c2;
          best = cand;
        }
      }
  return best;
}

double Lattice::wigner_seitz_radius() const noexcept
{
  // Half the minimum distance between the origin and any non-zero lattice
  // point in the immediate neighbour shell.
  double r2 = std::numeric_limits<double>::infinity();
  for (int i = -1; i <= 1; ++i)
    for (int j = -1; j <= 1; ++j)
      for (int k = -1; k <= 1; ++k) {
        if (i == 0 && j == 0 && k == 0)
          continue;
        const Vec3<double> g = static_cast<double>(i) * a_[0] + static_cast<double>(j) * a_[1] +
                               static_cast<double>(k) * a_[2];
        r2 = std::min(r2, norm2(g));
      }
  return 0.5 * std::sqrt(r2);
}

} // namespace mqc
