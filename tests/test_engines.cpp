// The core correctness matrix: every optimized engine (AoS baseline, SoA,
// AoSoA) against the scalar reference evaluator across parameterized
// (grid, N, tile) sweeps in both precisions, plus physics-level checks
// against analytic plane-wave orbitals (gradient, Hessian, Laplacian),
// periodic wrapping, and thread-safety of the shared coefficient table.
#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/bspline_aos.h"
#include "core/bspline_ref.h"
#include "core/bspline_soa.h"
#include "core/multi_bspline.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"
#include "test_utils.h"

using namespace mqc;
using mqc::test::engine_tol;
using mqc::test::random_positions;

namespace {

/// Evaluate all three engines at one position and compare every output
/// component against the double-precision reference.
template <typename T>
void check_all_engines_at(const std::shared_ptr<CoefStorage<T>>& coefs, int tile, T x, T y, T z)
{
  const int n = coefs->num_splines();
  const double tol = engine_tol<T>();

  BsplineRef<T> ref(*coefs);
  const RefVGH r = ref.evaluate_vgh(x, y, z);
  const auto lap = ref.laplacian(r);

  BsplineAoS<T> aos(coefs);
  BsplineSoA<T> soa(coefs);
  MultiBspline<T> mb(*coefs, tile);

  WalkerAoS<T> wa(aos.padded_splines());
  WalkerSoA<T> ws(soa.out_stride());
  WalkerSoA<T> wm(mb.out_stride());
  WalkerAoS<T> wa_l(aos.padded_splines());
  WalkerSoA<T> ws_l(soa.out_stride());
  WalkerSoA<T> wm_l(mb.out_stride());

  aos.evaluate_vgh(x, y, z, wa.v.data(), wa.g.data(), wa.h.data());
  soa.evaluate_vgh(x, y, z, ws.v.data(), ws.g.data(), ws.h.data());
  mb.evaluate_vgh(x, y, z, wm.v.data(), wm.g.data(), wm.h.data(), wm.stride);
  aos.evaluate_vgl(x, y, z, wa_l.v.data(), wa_l.g.data(), wa_l.l.data());
  soa.evaluate_vgl(x, y, z, ws_l.v.data(), ws_l.g.data(), ws_l.l.data(), ws_l.stride);
  mb.evaluate_vgl(x, y, z, wm_l.v.data(), wm_l.g.data(), wm_l.l.data(), wm_l.stride);

  // AoSoA slices: orbital n of tile t lives at offset(t) + (n - t*tile).
  auto mb_idx = [&](int orb) {
    const int t = orb / tile;
    return mb.tile_offset(t) + static_cast<std::size_t>(orb - t * tile);
  };

  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const std::size_t m = mb_idx(i);
    const double scale = std::max(1.0, std::abs(r.v[u]));
    // Values, all engines and both kernels.
    ASSERT_NEAR(wa.v[u], r.v[u], tol * scale);
    ASSERT_NEAR(ws.v[u], r.v[u], tol * scale);
    ASSERT_NEAR(wm.v[m], r.v[u], tol * scale);
    ASSERT_NEAR(wa_l.v[u], r.v[u], tol * scale);
    ASSERT_NEAR(ws_l.v[u], r.v[u], tol * scale);
    ASSERT_NEAR(wm_l.v[m], r.v[u], tol * scale);
    // Gradients: AoS strided vs SoA streams vs tiled slices.  Derivatives
    // carry a delta_inv factor, so scale the tolerance with their magnitude.
    const double gscale =
        std::max({1.0, std::abs(r.gx[u]), std::abs(r.gy[u]), std::abs(r.gz[u])});
    ASSERT_NEAR(wa.g[3 * u + 0], r.gx[u], tol * gscale);
    ASSERT_NEAR(wa.g[3 * u + 1], r.gy[u], tol * gscale);
    ASSERT_NEAR(wa.g[3 * u + 2], r.gz[u], tol * gscale);
    ASSERT_NEAR(ws.gx()[u], r.gx[u], tol * gscale);
    ASSERT_NEAR(ws.gy()[u], r.gy[u], tol * gscale);
    ASSERT_NEAR(ws.gz()[u], r.gz[u], tol * gscale);
    ASSERT_NEAR(wm.gx()[m], r.gx[u], tol * gscale);
    ASSERT_NEAR(wm.gy()[m], r.gy[u], tol * gscale);
    ASSERT_NEAR(wm.gz()[m], r.gz[u], tol * gscale);
    // Hessians: AoS full 3x3 (with symmetry) vs SoA 6 unique components.
    const double href[6] = {r.hxx[u], r.hxy[u], r.hxz[u], r.hyy[u], r.hyz[u], r.hzz[u]};
    double hmax = 1.0;
    for (double hv : href)
      hmax = std::max(hmax, std::abs(hv));
    const int aos_of_soa[6] = {0, 1, 2, 4, 5, 8}; // xx xy xz yy yz zz in 3x3
    for (int q = 0; q < 6; ++q) {
      ASSERT_NEAR(wa.h[9 * u + static_cast<std::size_t>(aos_of_soa[q])], href[q], tol * hmax);
      ASSERT_NEAR(ws.hcomp(q)[u], href[q], tol * hmax);
      ASSERT_NEAR(wm.hcomp(q)[m], href[q], tol * hmax);
    }
    // AoS Hessian symmetry mirror entries.
    ASSERT_EQ(wa.h[9 * u + 3], wa.h[9 * u + 1]);
    ASSERT_EQ(wa.h[9 * u + 6], wa.h[9 * u + 2]);
    ASSERT_EQ(wa.h[9 * u + 7], wa.h[9 * u + 5]);
    // Laplacians against the Hessian trace.
    ASSERT_NEAR(wa_l.l[u], lap[u], tol * hmax * 3);
    ASSERT_NEAR(ws_l.l[u], lap[u], tol * hmax * 3);
    ASSERT_NEAR(wm_l.l[m], lap[u], tol * hmax * 3);
    // VGL gradients match VGH gradients.
    ASSERT_NEAR(ws_l.gx()[u], r.gx[u], tol * gscale);
    ASSERT_NEAR(wa_l.g[3 * u + 0], r.gx[u], tol * gscale);
  }

  // V kernel on its own.
  const auto vr = ref.evaluate_v(x, y, z);
  aos.evaluate_v(x, y, z, wa.v.data());
  soa.evaluate_v(x, y, z, ws.v.data());
  mb.evaluate_v(x, y, z, wm.v.data());
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const double scale = std::max(1.0, std::abs(vr[u]));
    ASSERT_NEAR(wa.v[u], vr[u], tol * scale);
    ASSERT_NEAR(ws.v[u], vr[u], tol * scale);
    ASSERT_NEAR(wm.v[mb_idx(i)], vr[u], tol * scale);
  }
}

} // namespace

// ---------------------------------------------------------------------------
// Parameterized sweep: (grid points, N, tile size)
// ---------------------------------------------------------------------------

class EngineSweepF : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(EngineSweepF, AllEnginesMatchReference_Float)
{
  const auto [ng, n, tile] = GetParam();
  const auto grid = Grid3D<float>::cube(ng, 3.7f);
  auto coefs = make_random_storage<float>(grid, n, 1234 + static_cast<std::uint64_t>(n));
  for (const auto& p : random_positions(grid, 6, 99, /*beyond_domain=*/true))
    check_all_engines_at(coefs, tile, p[0], p[1], p[2]);
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndSizes, EngineSweepF,
    ::testing::Values(std::make_tuple(8, 16, 16), std::make_tuple(8, 32, 16),
                      std::make_tuple(12, 48, 16), std::make_tuple(12, 64, 32),
                      std::make_tuple(16, 128, 32), std::make_tuple(16, 128, 64),
                      std::make_tuple(8, 128, 128), std::make_tuple(9, 80, 16),
                      std::make_tuple(11, 96, 48), std::make_tuple(16, 100, 32)));

class EngineSweepD : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(EngineSweepD, AllEnginesMatchReference_Double)
{
  const auto [ng, n, tile] = GetParam();
  const auto grid = Grid3D<double>::cube(ng, 2.1);
  auto coefs = make_random_storage<double>(grid, n, 4321 + static_cast<std::uint64_t>(n));
  for (const auto& p : random_positions(grid, 6, 55, /*beyond_domain=*/true))
    check_all_engines_at(coefs, tile, p[0], p[1], p[2]);
}

INSTANTIATE_TEST_SUITE_P(GridsAndSizes, EngineSweepD,
                         ::testing::Values(std::make_tuple(8, 16, 8), std::make_tuple(12, 40, 8),
                                           std::make_tuple(16, 64, 16),
                                           std::make_tuple(10, 56, 24),
                                           std::make_tuple(16, 96, 96)));

// ---------------------------------------------------------------------------
// Anisotropic grid: different spacing per axis must scale derivatives right.
// ---------------------------------------------------------------------------

TEST(Engines, AnisotropicGridDerivativeScaling)
{
  Grid3D<double> grid(Grid1D<double>(0.0, 1.0, 8), Grid1D<double>(0.0, 2.0, 10),
                      Grid1D<double>(0.0, 4.0, 12));
  auto coefs = make_random_storage<double>(grid, 16, 7);
  for (const auto& p : random_positions(grid, 8, 3))
    check_all_engines_at(coefs, 8, p[0], p[1], p[2]);
}

// ---------------------------------------------------------------------------
// Periodicity: x and x + L give identical outputs.
// ---------------------------------------------------------------------------

TEST(Engines, PeriodicImagesAreIdentical)
{
  const auto grid = Grid3D<double>::cube(12, 1.5);
  auto coefs = make_random_storage<double>(grid, 32, 21);
  BsplineSoA<double> soa(coefs);
  WalkerSoA<double> w0(soa.out_stride()), w1(soa.out_stride());
  Xoshiro256 rng(5);
  for (int s = 0; s < 10; ++s) {
    const double x = rng.uniform(0.0, 1.5), y = rng.uniform(0.0, 1.5), z = rng.uniform(0.0, 1.5);
    soa.evaluate_vgh(x, y, z, w0.v.data(), w0.g.data(), w0.h.data());
    soa.evaluate_vgh(x + 1.5, y - 3.0, z + 4.5, w1.v.data(), w1.g.data(), w1.h.data());
    for (int n = 0; n < 32; ++n) {
      ASSERT_NEAR(w0.v[static_cast<std::size_t>(n)], w1.v[static_cast<std::size_t>(n)], 1e-9);
      ASSERT_NEAR(w0.gx()[static_cast<std::size_t>(n)], w1.gx()[static_cast<std::size_t>(n)], 1e-9);
      ASSERT_NEAR(w0.hcomp(5)[static_cast<std::size_t>(n)], w1.hcomp(5)[static_cast<std::size_t>(n)],
                  1e-8);
    }
  }
}

// ---------------------------------------------------------------------------
// Constant spline: value == constant, all derivatives vanish (partition of
// unity propagated through every engine).
// ---------------------------------------------------------------------------

TEST(Engines, ConstantSplineHasZeroDerivatives)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = std::make_shared<CoefStorage<float>>(grid, 16);
  for (int i = 0; i < 11; ++i)
    for (int j = 0; j < 11; ++j)
      for (int k = 0; k < 11; ++k)
        for (int n = 0; n < 16; ++n)
          coefs->set_coef(i, j, k, n, 3.25f);
  MultiBspline<float> mb(*coefs, 16);
  WalkerSoA<float> w(mb.out_stride());
  mb.evaluate_vgh(0.123f, 0.456f, 0.789f, w.v.data(), w.g.data(), w.h.data(), w.stride);
  for (int n = 0; n < 16; ++n) {
    EXPECT_NEAR(w.v[static_cast<std::size_t>(n)], 3.25f, 1e-5);
    EXPECT_NEAR(w.gx()[static_cast<std::size_t>(n)], 0.0f, 2e-4);
    EXPECT_NEAR(w.gy()[static_cast<std::size_t>(n)], 0.0f, 2e-4);
    EXPECT_NEAR(w.gz()[static_cast<std::size_t>(n)], 0.0f, 2e-4);
    for (int q = 0; q < 6; ++q)
      EXPECT_NEAR(w.hcomp(q)[static_cast<std::size_t>(n)], 0.0f, 2e-3);
  }
}

// ---------------------------------------------------------------------------
// End-to-end physics: plane-wave orbitals through builder + engines must
// reproduce analytic values, gradients, Hessians and Laplacians.
// ---------------------------------------------------------------------------

TEST(Engines, PlaneWaveOrbitalsAnalyticDerivatives)
{
  const int ng = 32;
  const double L = 1.0;
  const auto grid = Grid3D<double>::cube(ng, L);
  const auto pw = PlaneWaveOrbitals::make(8, Vec3<double>{L, L, L}, 77);
  const auto coefs = build_planewave_storage(grid, pw);
  BsplineSoA<double> soa(coefs);
  WalkerSoA<double> w(soa.out_stride());
  WalkerSoA<double> wl(soa.out_stride());
  Xoshiro256 rng(31);
  for (int s = 0; s < 25; ++s) {
    const Vec3<double> r{rng.uniform(0, L), rng.uniform(0, L), rng.uniform(0, L)};
    soa.evaluate_vgh(r.x, r.y, r.z, w.v.data(), w.g.data(), w.h.data());
    soa.evaluate_vgl(r.x, r.y, r.z, wl.v.data(), wl.g.data(), wl.l.data());
    for (int n = 0; n < 8; ++n) {
      const auto u = static_cast<std::size_t>(n);
      // Interpolation error bounds: O(h^4) value, O(h^3) gradient, O(h^2)
      // Hessian; kh ~ 2*pi/32 here.
      EXPECT_NEAR(w.v[u], pw.value(n, r), 5e-4);
      const auto g = pw.gradient(n, r);
      const double gs = std::max(1.0, norm(g));
      EXPECT_NEAR(w.gx()[u], g.x, 5e-3 * gs);
      EXPECT_NEAR(w.gy()[u], g.y, 5e-3 * gs);
      EXPECT_NEAR(w.gz()[u], g.z, 5e-3 * gs);
      double h[6];
      pw.hessian(n, r, h);
      double hs = 1.0;
      for (double hv : h)
        hs = std::max(hs, std::abs(hv));
      for (int q = 0; q < 6; ++q)
        EXPECT_NEAR(w.hcomp(q)[u], h[q], 3e-2 * hs) << "orb " << n << " comp " << q;
      EXPECT_NEAR(wl.l[u], pw.laplacian(n, r), 5e-2 * hs);
    }
  }
}

// ---------------------------------------------------------------------------
// Engine derivatives equal finite differences of the engine itself (catches
// any internal scaling mistake independent of the builder).
// ---------------------------------------------------------------------------

TEST(Engines, GradientMatchesFiniteDifferenceOfSpline)
{
  const auto grid = Grid3D<double>::cube(10, 2.0);
  auto coefs = make_random_storage<double>(grid, 8, 3);
  BsplineRef<double> ref(*coefs);
  const double h = 1e-6;
  Xoshiro256 rng(4);
  for (int s = 0; s < 10; ++s) {
    const double x = rng.uniform(0, 2), y = rng.uniform(0, 2), z = rng.uniform(0, 2);
    const auto r = ref.evaluate_vgh(x, y, z);
    const auto vxp = ref.evaluate_v(x + h, y, z);
    const auto vxm = ref.evaluate_v(x - h, y, z);
    const auto vyp = ref.evaluate_v(x, y + h, z);
    const auto vym = ref.evaluate_v(x, y - h, z);
    const auto vzp = ref.evaluate_v(x, y, z + h);
    const auto vzm = ref.evaluate_v(x, y, z - h);
    for (int n = 0; n < 8; ++n) {
      const auto u = static_cast<std::size_t>(n);
      EXPECT_NEAR(r.gx[u], (vxp[u] - vxm[u]) / (2 * h), 1e-5);
      EXPECT_NEAR(r.gy[u], (vyp[u] - vym[u]) / (2 * h), 1e-5);
      EXPECT_NEAR(r.gz[u], (vzp[u] - vzm[u]) / (2 * h), 1e-5);
    }
  }
}

// ---------------------------------------------------------------------------
// AoSoA tiling details.
// ---------------------------------------------------------------------------

TEST(MultiBspline, TileGeometry)
{
  const auto grid = Grid3D<float>::cube(6, 1.0f);
  auto coefs = make_random_storage<float>(grid, 100, 8);
  MultiBspline<float> mb(*coefs, 32);
  EXPECT_EQ(mb.num_tiles(), 4); // 32+32+32+4
  EXPECT_EQ(mb.tile(0).num_splines(), 32);
  EXPECT_EQ(mb.tile(3).num_splines(), 4);
  EXPECT_EQ(mb.tile_offset(1), 32u);
  EXPECT_EQ(mb.tile_offset(3), 96u);
  EXPECT_EQ(mb.padded_splines(), 96u + aligned_size<float>(4));
  EXPECT_GT(mb.tile_bytes(0), 0u);
}

TEST(MultiBspline, PerTileEvaluationEqualsWholeSet)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 8);
  MultiBspline<float> mb(*coefs, 16);
  WalkerSoA<float> whole(mb.out_stride()), tiled(mb.out_stride());
  mb.evaluate_vgh(0.3f, 0.6f, 0.9f, whole.v.data(), whole.g.data(), whole.h.data(), whole.stride);
  // Evaluate tiles in scrambled order — they must be independent.
  for (int t : {3, 0, 2, 1})
    mb.evaluate_vgh_tile(t, 0.3f, 0.6f, 0.9f, tiled.v.data(), tiled.g.data(), tiled.h.data(),
                         tiled.stride);
  for (std::size_t i = 0; i < mb.padded_splines(); ++i) {
    ASSERT_FLOAT_EQ(whole.v[i], tiled.v[i]);
    ASSERT_FLOAT_EQ(whole.g[i], tiled.g[i]);
    ASSERT_FLOAT_EQ(whole.h[i], tiled.h[i]);
  }
}

// ---------------------------------------------------------------------------
// Multi-position evaluation layer: a block of P positions through
// evaluate_*_multi must match P single-position calls bit for bit (ULP
// tight) — both run the identical per-(i,j) kernels, only the weight
// precomputation and sweep order differ.
// ---------------------------------------------------------------------------

namespace {

template <typename T>
void check_multi_matches_single(int ng, int n, int tile, int np_pos, std::uint64_t seed)
{
  const auto grid = Grid3D<T>::cube(ng, T(1.4));
  auto coefs = make_random_storage<T>(grid, n, seed);
  BsplineSoA<T> soa(coefs);
  MultiBspline<T> mb(*coefs, tile);

  Xoshiro256 rng(seed + 5);
  std::vector<Vec3<T>> pos(static_cast<std::size_t>(np_pos));
  for (auto& r : pos)
    r = Vec3<T>{static_cast<T>(rng.uniform(0.0, 1.4)), static_cast<T>(rng.uniform(0.0, 1.4)),
                static_cast<T>(rng.uniform(0.0, 1.4))};

  for (const bool tiled : {false, true}) {
    const std::size_t stride = tiled ? mb.out_stride() : soa.out_stride();
    std::vector<WalkerSoA<T>> single, multi;
    std::vector<T*> v, g, l, h;
    for (int p = 0; p < np_pos; ++p) {
      single.emplace_back(stride);
      multi.emplace_back(stride);
    }
    // Buffer pointers must be gathered after all emplace_backs (no realloc).
    for (int p = 0; p < np_pos; ++p) {
      auto& m = multi[static_cast<std::size_t>(p)];
      v.push_back(m.v.data());
      g.push_back(m.g.data());
      l.push_back(m.l.data());
      h.push_back(m.h.data());
    }

    // VGH.
    for (int p = 0; p < np_pos; ++p) {
      auto& s = single[static_cast<std::size_t>(p)];
      const auto& r = pos[static_cast<std::size_t>(p)];
      if (tiled)
        mb.evaluate_vgh(r.x, r.y, r.z, s.v.data(), s.g.data(), s.h.data(), stride);
      else
        soa.evaluate_vgh(r.x, r.y, r.z, s.v.data(), s.g.data(), s.h.data(), stride);
    }
    if (tiled)
      mb.evaluate_vgh_multi(pos.data(), np_pos, v.data(), g.data(), h.data(), stride);
    else
      soa.evaluate_vgh_multi(pos.data(), np_pos, v.data(), g.data(), h.data(), stride);
    for (int p = 0; p < np_pos; ++p) {
      const auto& s = single[static_cast<std::size_t>(p)];
      const auto& m = multi[static_cast<std::size_t>(p)];
      for (std::size_t i = 0; i < s.v.size(); ++i)
        ASSERT_EQ(s.v[i], m.v[i]) << (tiled ? "AoSoA" : "SoA") << " pos " << p;
      for (std::size_t i = 0; i < s.g.size(); ++i)
        ASSERT_EQ(s.g[i], m.g[i]);
      for (std::size_t i = 0; i < s.h.size(); ++i)
        ASSERT_EQ(s.h[i], m.h[i]);
    }

    // VGL.
    for (int p = 0; p < np_pos; ++p) {
      auto& s = single[static_cast<std::size_t>(p)];
      const auto& r = pos[static_cast<std::size_t>(p)];
      if (tiled)
        mb.evaluate_vgl(r.x, r.y, r.z, s.v.data(), s.g.data(), s.l.data(), stride);
      else
        soa.evaluate_vgl(r.x, r.y, r.z, s.v.data(), s.g.data(), s.l.data(), stride);
    }
    if (tiled)
      mb.evaluate_vgl_multi(pos.data(), np_pos, v.data(), g.data(), l.data(), stride);
    else
      soa.evaluate_vgl_multi(pos.data(), np_pos, v.data(), g.data(), l.data(), stride);
    for (int p = 0; p < np_pos; ++p) {
      const auto& s = single[static_cast<std::size_t>(p)];
      const auto& m = multi[static_cast<std::size_t>(p)];
      for (std::size_t i = 0; i < s.v.size(); ++i)
        ASSERT_EQ(s.v[i], m.v[i]);
      for (std::size_t i = 0; i < s.g.size(); ++i)
        ASSERT_EQ(s.g[i], m.g[i]);
      for (std::size_t i = 0; i < s.l.size(); ++i)
        ASSERT_EQ(s.l[i], m.l[i]);
    }

    // V.
    for (int p = 0; p < np_pos; ++p) {
      auto& s = single[static_cast<std::size_t>(p)];
      const auto& r = pos[static_cast<std::size_t>(p)];
      if (tiled)
        mb.evaluate_v(r.x, r.y, r.z, s.v.data());
      else
        soa.evaluate_v(r.x, r.y, r.z, s.v.data());
    }
    if (tiled)
      mb.evaluate_v_multi(pos.data(), np_pos, v.data());
    else
      soa.evaluate_v_multi(pos.data(), np_pos, v.data());
    for (int p = 0; p < np_pos; ++p)
      for (std::size_t i = 0; i < stride; ++i)
        ASSERT_EQ(single[static_cast<std::size_t>(p)].v[i],
                  multi[static_cast<std::size_t>(p)].v[i]);
  }
}

} // namespace

class MultiEvalSweepF : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(MultiEvalSweepF, MultiMatchesSingle_Float)
{
  const auto [ng, n, tile, np_pos] = GetParam();
  check_multi_matches_single<float>(ng, n, tile, np_pos, 808 + static_cast<std::uint64_t>(n));
}

// (grid, N, tile, P): exact tiling, remainder tiles (40 = 16+16+8,
// 100 = 32*3+4), single tile, and block sizes from 1 to 9.
INSTANTIATE_TEST_SUITE_P(GridsSizesBlocks, MultiEvalSweepF,
                         ::testing::Values(std::make_tuple(8, 64, 16, 4),
                                           std::make_tuple(12, 40, 16, 7),
                                           std::make_tuple(8, 100, 32, 9),
                                           std::make_tuple(10, 48, 48, 1),
                                           std::make_tuple(9, 80, 16, 3)));

class MultiEvalSweepD : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(MultiEvalSweepD, MultiMatchesSingle_Double)
{
  const auto [ng, n, tile, np_pos] = GetParam();
  check_multi_matches_single<double>(ng, n, tile, np_pos, 909 + static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(GridsSizesBlocks, MultiEvalSweepD,
                         ::testing::Values(std::make_tuple(8, 32, 8, 5),
                                           std::make_tuple(12, 40, 16, 6),
                                           std::make_tuple(10, 56, 24, 2)));

TEST(MultiEval, WeightTakingKernelMatchesPositionKernel)
{
  // evaluate_*_w with externally computed weights is the exact single-
  // position kernel (the multi layer's building block).
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 32, 3);
  BsplineSoA<float> soa(coefs);
  WalkerSoA<float> a(soa.out_stride()), b(soa.out_stride());
  const float x = 0.37f, y = 0.51f, z = 0.93f;
  soa.evaluate_vgh(x, y, z, a.v.data(), a.g.data(), a.h.data(), a.stride);
  BsplineWeights3D<float> w;
  compute_weights_vgh(coefs->grid(), x, y, z, w);
  soa.evaluate_vgh_w(w, b.v.data(), b.g.data(), b.h.data(), b.stride);
  for (std::size_t i = 0; i < soa.padded_splines(); ++i) {
    ASSERT_EQ(a.v[i], b.v[i]);
    ASSERT_EQ(a.g[i], b.g[i]);
    ASSERT_EQ(a.h[i], b.h[i]);
  }
}

// ---------------------------------------------------------------------------
// Thread safety: the coefficient table is shared read-only state; concurrent
// walkers must reproduce the serial result bit-for-bit.
// ---------------------------------------------------------------------------

TEST(Engines, ConcurrentWalkersMatchSerial)
{
  const auto grid = Grid3D<float>::cube(10, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 15);
  BsplineSoA<float> soa(coefs);
  const auto pos = random_positions(grid, 8, 2);

  // Serial references.
  std::vector<WalkerSoA<float>> serial;
  for (const auto& p : pos) {
    serial.emplace_back(soa.out_stride());
    soa.evaluate_vgh(p[0], p[1], p[2], serial.back().v.data(), serial.back().g.data(),
                     serial.back().h.data());
  }

  std::vector<WalkerSoA<float>> parallel;
  for (std::size_t i = 0; i < pos.size(); ++i)
    parallel.emplace_back(soa.out_stride());
#pragma omp parallel for
  for (int i = 0; i < static_cast<int>(pos.size()); ++i)
    soa.evaluate_vgh(pos[static_cast<std::size_t>(i)][0], pos[static_cast<std::size_t>(i)][1],
                     pos[static_cast<std::size_t>(i)][2],
                     parallel[static_cast<std::size_t>(i)].v.data(),
                     parallel[static_cast<std::size_t>(i)].g.data(),
                     parallel[static_cast<std::size_t>(i)].h.data());

  for (std::size_t i = 0; i < pos.size(); ++i)
    for (std::size_t n = 0; n < 64; ++n) {
      ASSERT_EQ(serial[i].v[n], parallel[i].v[n]);
      ASSERT_EQ(serial[i].g[n], parallel[i].g[n]);
      ASSERT_EQ(serial[i].h[n], parallel[i].h[n]);
    }
}
