// Fixture: hand-rolling the blob codec outside checkpoint.* forks the
// on-disk format and must be flagged.
// Expected: >= 1 [checkpoint-io] finding.
#include "qmc/checkpoint.h"

void serialize_somewhere_else()
{
  mqc::ckpt::BlobWriter w;
  w.u32(42);
}
