// Determinant-update policy: one front-end over the two update algorithms.
//
// The particle-by-particle protocol (ratio -> accept_move -> inverse) is the
// same whether the inverse is maintained by per-move Sherman-Morrison
// (DiracDeterminant) or by accumulating a rank-k window and applying it with
// the Woodbury identity (DelayedDeterminant, McDaniel et al.).  This wrapper
// lets the wave function and the miniQMC drivers switch algorithms from a
// single `delay_rank` knob without templating every consumer:
//
//   delay_rank <= 1  ->  Sherman-Morrison after every accepted move
//   delay_rank >= 2  ->  delayed rank-k updates with window k = delay_rank
//
// (A delay window of one is algebraically identical to Sherman-Morrison, so
// the classic engine serves both of the first two cases and the delayed
// engine is only engaged where it can actually amortize anything.)
#ifndef MQC_DETERMINANT_DET_UPDATE_H
#define MQC_DETERMINANT_DET_UPDATE_H

#include <cassert>

#include "common/threading.h"
#include "determinant/delayed_update.h"
#include "determinant/dirac_determinant.h"
#include "determinant/matrix.h"

namespace mqc {

enum class DetUpdateKind
{
  ShermanMorrison, ///< rank-1 update applied on every accept (DiracDeterminant)
  Delayed          ///< rank-k window flushed via Woodbury (DelayedDeterminant)
};

/// Map the drivers' single integer knob onto an algorithm.
inline constexpr DetUpdateKind det_update_kind(int delay_rank) noexcept
{
  return delay_rank >= 2 ? DetUpdateKind::Delayed : DetUpdateKind::ShermanMorrison;
}

class DetUpdater
{
public:
  DetUpdater() : DetUpdater(0) {}
  explicit DetUpdater(int delay_rank)
      : kind_(det_update_kind(delay_rank)), delayed_(delay_rank >= 2 ? delay_rank : 1)
  {
  }

  [[nodiscard]] DetUpdateKind kind() const noexcept { return kind_; }
  /// Window size of the delayed engine; 1 for Sherman-Morrison.
  [[nodiscard]] int delay() const noexcept
  {
    return kind_ == DetUpdateKind::Delayed ? delayed_.delay() : 1;
  }

  /// Hand the caller's inner team (common/threading.h) to the delayed
  /// engine's flush; no-op for Sherman-Morrison (its rank-1 update has no
  /// blocked sweep to distribute).  Bit-identical for every team size.
  void set_team(TeamHandle team) noexcept
  {
    if (kind_ == DetUpdateKind::Delayed)
      delayed_.set_team(team);
  }

  bool build(const Matrix<double>& a)
  {
    return kind_ == DetUpdateKind::Delayed ? delayed_.build(a) : dirac_.build(a);
  }

  [[nodiscard]] int size() const noexcept
  {
    return kind_ == DetUpdateKind::Delayed ? delayed_.size() : dirac_.size();
  }
  [[nodiscard]] double log_det() const noexcept
  {
    return kind_ == DetUpdateKind::Delayed ? delayed_.log_det() : dirac_.log_det();
  }
  [[nodiscard]] double sign() const noexcept
  {
    return kind_ == DetUpdateKind::Delayed ? delayed_.sign() : dirac_.sign();
  }
  [[nodiscard]] int pending() const noexcept
  {
    return kind_ == DetUpdateKind::Delayed ? delayed_.pending() : 0;
  }

  /// det ratio for replacing column @p e with @p u (honours any pending
  /// delayed columns).
  [[nodiscard]] double ratio(const double* u, int e) const
  {
    return kind_ == DetUpdateKind::Delayed ? delayed_.ratio(u, e) : dirac_.ratio(u, e);
  }

  /// Commit a move previously priced with ratio().
  void accept_move(const double* u, int e)
  {
    if (kind_ == DetUpdateKind::Delayed)
      delayed_.accept_move(u, e);
    else
      dirac_.accept_move(u, e);
  }

  /// Apply any pending delayed window; no-op for Sherman-Morrison.
  void flush()
  {
    if (kind_ == DetUpdateKind::Delayed)
      delayed_.flush();
  }

  /// Inverse of the current orbital matrix.  Non-const because the delayed
  /// engine folds its pending window in first.
  const Matrix<double>& inverse()
  {
    return kind_ == DetUpdateKind::Delayed ? delayed_.inverse() : dirac_.inverse();
  }

  /// Deep-copy the active engine's state from @p other — the DMC
  /// walker-birth path (qmc/dmc_driver.cpp): a spawned child inherits its
  /// parent's inverse, log-det and any pending delayed-update window
  /// byte-for-byte, instead of rebuilding O(N^3) from scratch.  Both sides
  /// must be configured with the same delay_rank.  The inner-team binding is
  /// scheduling state, not walker state: the clone keeps its own team.
  void clone_state_from(const DetUpdater& other)
  {
    assert(kind_ == other.kind_ && delay() == other.delay());
    if (kind_ == DetUpdateKind::Delayed) {
      const TeamHandle keep = delayed_.team();
      delayed_ = other.delayed_;
      delayed_.set_team(keep);
    } else {
      dirac_ = other.dirac_;
    }
  }

  // checkpoint/restore access (qmc/checkpoint.cpp): the active engine as
  // selected by kind().  Only the active engine holds live state; the idle
  // one is default-constructed and excluded from snapshots.
  [[nodiscard]] DiracDeterminant& dirac() noexcept { return dirac_; }
  [[nodiscard]] const DiracDeterminant& dirac() const noexcept { return dirac_; }
  [[nodiscard]] DelayedDeterminant& delayed() noexcept { return delayed_; }
  [[nodiscard]] const DelayedDeterminant& delayed() const noexcept { return delayed_; }

private:
  DetUpdateKind kind_;
  DiracDeterminant dirac_;
  DelayedDeterminant delayed_;
};

} // namespace mqc

#endif // MQC_DETERMINANT_DET_UPDATE_H
