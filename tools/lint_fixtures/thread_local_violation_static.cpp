// Fixture: new thread_local state outside the audited owners is flagged.
// Expected: >= 1 [thread-local] finding.
int next_id()
{
  thread_local int counter = 0;
  return ++counter;
}
