// WalkerPopulation service layer (qmc/walker_population.h) and the async
// JobQueue multiplexer (qmc/job_queue.h).
//
// The contracts under test:
//   * a resident population reproduces run_miniqmc's per-walker
//     `walker_accepts` / `walker_log_det` fingerprints bit-for-bit, for
//     EVERY shard count and partition shape (sharding is placement, never
//     trajectory state);
//   * incremental advancement (run_steps / run_to_step in pieces) lands on
//     the same fingerprints as one shot;
//   * coefficient replicas are exact element-wise copies of the master;
//   * a job served through the queue matches a standalone run over the same
//     seed/walkers/steps regardless of packing, submission order, or which
//     shard picked it up; and
//   * mismatched jobs (wrong precision, wrong system) are REJECTED with a
//     surfaced error, never silently run on the resident tables.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/threading.h"
#include "core/coef_storage.h"
#include "qmc/job_queue.h"
#include "qmc/miniqmc_driver.h"
#include "qmc/walker_population.h"

using namespace mqc;

namespace {

/// RAII env var override (shard/partition knob tests).
struct ScopedEnv
{
  ScopedEnv(const char* name, const char* value) : name_(name)
  {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_)
      saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv()
  {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

MiniQMCConfig make_cfg(int walkers = 6, int steps = 6)
{
  MiniQMCConfig cfg;
  cfg.supercell = {1, 1, 1};
  cfg.grid_size = 16;
  cfg.spo = SpoLayout::SoA;
  cfg.optimized_dt_jastrow = true;
  cfg.num_walkers = walkers;
  cfg.steps = steps;
  cfg.delay_rank = 4; // in-flight Woodbury panels cross epoch boundaries
  return cfg;
}

/// Bitwise trajectory comparison (same discipline as test_checkpoint.cpp).
void expect_same_trajectory(const MiniQMCResult& ref, const MiniQMCResult& got,
                            const std::string& what)
{
  EXPECT_EQ(ref.walker_accepts, got.walker_accepts) << what;
  ASSERT_EQ(ref.walker_log_det.size(), got.walker_log_det.size()) << what;
  for (std::size_t w = 0; w < ref.walker_log_det.size(); ++w) {
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &ref.walker_log_det[w], sizeof a);
    std::memcpy(&b, &got.walker_log_det[w], sizeof b);
    EXPECT_EQ(a, b) << what << ": walker " << w << " log-det bits differ";
  }
}

MiniQMCResult run_population(const MiniQMCConfig& cfg, int shards)
{
  PopulationConfig pcfg;
  pcfg.qmc = cfg;
  pcfg.num_shards = shards;
  WalkerPopulation pop(pcfg);
  pop.run_to_step(cfg.steps);
  return pop.result();
}

} // namespace

// ---------------------------------------------------------------------------
// Resident population: bit-for-bit equivalence with run_miniqmc
// ---------------------------------------------------------------------------

TEST(WalkerPopulationSuite, MatchesRunMiniqmcBitForBit)
{
  const MiniQMCConfig cfg = make_cfg();
  const MiniQMCResult ref = run_miniqmc(cfg);
  const MiniQMCResult got = run_population(cfg, 2);
  EXPECT_EQ(got.num_walkers, ref.num_walkers);
  expect_same_trajectory(ref, got, "population vs run_miniqmc");
}

TEST(WalkerPopulationSuite, ShardCountIsTrajectoryNeutral)
{
  const MiniQMCConfig cfg = make_cfg();
  const MiniQMCResult ref = run_population(cfg, 1);
  for (const int shards : {2, 3, 6}) {
    const MiniQMCResult got = run_population(cfg, shards);
    expect_same_trajectory(ref, got, "shards=" + std::to_string(shards));
  }
  // More shards than walkers: clamped, never an empty shard.
  PopulationConfig pcfg;
  pcfg.qmc = cfg;
  pcfg.num_shards = 99;
  WalkerPopulation pop(pcfg);
  EXPECT_LE(pop.num_shards(), pop.num_walkers());
  pop.run_to_step(cfg.steps);
  MiniQMCResult got = pop.result();
  expect_same_trajectory(ref, got, "shards=99 (clamped)");
}

TEST(WalkerPopulationSuite, PartitionShapeAndCrowdSizeAreNeutral)
{
  MiniQMCConfig cfg = make_cfg();
  const MiniQMCResult ref = run_miniqmc(cfg);
  for (const char* shape : {"1x2", "2x1"}) {
    ScopedEnv env("MQC_PARTITION", shape);
    for (const int crowd : {0, 2}) {
      MiniQMCConfig c = cfg;
      c.crowd_size = crowd;
      const MiniQMCResult got = run_population(c, 2);
      expect_same_trajectory(ref, got,
                             std::string("partition=") + shape + " crowd=" +
                                 std::to_string(crowd));
    }
  }
}

TEST(WalkerPopulationSuite, IncrementalAdvancementMatchesOneShot)
{
  const MiniQMCConfig cfg = make_cfg();
  const MiniQMCResult ref = run_miniqmc(cfg);

  PopulationConfig pcfg;
  pcfg.qmc = cfg;
  pcfg.num_shards = 2;
  WalkerPopulation pop(pcfg);
  EXPECT_EQ(pop.current_step(), 0);
  pop.run_steps(2);
  EXPECT_EQ(pop.current_step(), 2);
  pop.run_to_step(5);
  pop.run_to_step(3); // backwards target: no-op, never a rewind
  EXPECT_EQ(pop.current_step(), 5);
  pop.run_steps(1);
  EXPECT_EQ(pop.current_step(), cfg.steps);
  expect_same_trajectory(ref, pop.result(), "incremental");
  // result() is idempotent between (and after) runs.
  expect_same_trajectory(ref, pop.result(), "incremental (second call)");
}

// ---------------------------------------------------------------------------
// Shard resolution and coefficient replication
// ---------------------------------------------------------------------------

TEST(WalkerPopulationSuite, ResolveShardCountFollowsTopologyAndEnv)
{
  MachineTopology topo;
  topo.sockets = 2;
  topo.cores_per_socket = 8;
  topo.smt = 1;
  EXPECT_EQ(resolve_shard_count_for(0, topo), 2); // auto: one per socket
  EXPECT_EQ(resolve_shard_count_for(5, topo), 5); // explicit wins
  {
    ScopedEnv env("MQC_SHARDS", "3");
    EXPECT_EQ(resolve_shard_count(0), 3);
    EXPECT_EQ(resolve_shard_count(7), 7); // explicit still beats the env
  }
  {
    ScopedEnv env("MQC_SHARDS", "banana"); // malformed: warn + topology
    EXPECT_GE(resolve_shard_count(0), 1);
  }
}

TEST(WalkerPopulationSuite, ReplicasAreExactCopiesOfTheMaster)
{
  const auto grid = Grid3D<float>::cube(4);
  auto master = std::make_shared<CoefStorage<float>>(grid, 8);
  master->fill_random(1234);

  CoefReplicaSet<float> set(master, 3);
  EXPECT_EQ(set.num_shards(), 3);
  EXPECT_EQ(set.replicate(0).get(), master.get()); // shard 0 IS the master
  EXPECT_EQ(set.local(1).get(), master.get());     // not yet materialized

  const auto rep = set.replicate(1);
  ASSERT_NE(rep.get(), master.get());
  EXPECT_EQ(set.replicate(1).get(), rep.get()); // idempotent
  EXPECT_EQ(set.local(1).get(), rep.get());
  for (int i = 0; i < grid.x.num + 3; ++i)
    for (int j = 0; j < grid.y.num + 3; ++j)
      for (int k = 0; k < grid.z.num + 3; ++k) {
        const float* a = master->row(i, j, k);
        const float* b = rep->row(i, j, k);
        ASSERT_EQ(0, std::memcmp(a, b, master->padded_splines() * sizeof(float)))
            << "replica row (" << i << "," << j << "," << k << ") differs";
      }
}

// ---------------------------------------------------------------------------
// JobQueue: async multiplexing onto the resident engines
// ---------------------------------------------------------------------------

TEST(JobQueueSuite, JobMatchesStandaloneRunBitForBit)
{
  // The job's seed must match the population's here: config seed drives BOTH
  // the coefficient table and the walker rng streams, and a job runs on the
  // RESIDENT table (that is the point of the service).  With matching seeds
  // the job is exactly a standalone run over the same physics.
  MiniQMCConfig base = make_cfg(4, 0);
  base.seed = 777;

  MiniQMCConfig standalone = base;
  standalone.num_walkers = 3;
  standalone.steps = 5;
  const MiniQMCResult ref = run_miniqmc(standalone);

  PopulationConfig pcfg;
  pcfg.qmc = base;
  pcfg.num_shards = 2;
  WalkerPopulation pop(pcfg);
  JobQueue queue(pop);
  EXPECT_EQ(queue.num_workers(), pop.num_shards());

  JobSpec spec;
  spec.num_walkers = 3;
  spec.steps = 5;
  spec.seed = 777;
  const JobResult r = queue.wait(queue.submit(spec));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.shard, 0);
  EXPECT_EQ(r.walker_accepts, ref.walker_accepts);
  ASSERT_EQ(r.walker_log_det.size(), ref.walker_log_det.size());
  for (std::size_t w = 0; w < r.walker_log_det.size(); ++w) {
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &ref.walker_log_det[w], sizeof a);
    std::memcpy(&b, &r.walker_log_det[w], sizeof b);
    EXPECT_EQ(a, b) << "job walker " << w << " log-det bits differ";
  }
}

TEST(JobQueueSuite, PackingAndSubmissionOrderAreTrajectoryNeutral)
{
  const MiniQMCConfig base = make_cfg(4, 0);
  PopulationConfig pcfg;
  pcfg.qmc = base;
  pcfg.num_shards = 2;
  WalkerPopulation pop(pcfg);

  // Jobs with UNEQUAL step budgets (exercises longest-first prefix
  // retirement) under two different pack caps and submission orders.
  const int specs[][3] = {{2, 5, 11}, {1, 2, 22}, {3, 4, 33}, {2, 1, 44}};
  std::vector<std::vector<std::size_t>> accepts_by_seed[2];
  for (const int max_pack : {1, 4}) {
    JobQueue queue(pop, max_pack);
    std::vector<std::uint64_t> ids;
    if (max_pack == 1) {
      for (const auto& s : specs)
        ids.push_back(queue.submit(JobSpec{s[0], s[1], static_cast<std::uint64_t>(s[2])}));
    } else { // reversed submission order
      for (int i = 3; i >= 0; --i)
        ids.push_back(queue.submit(
            JobSpec{specs[i][0], specs[i][1], static_cast<std::uint64_t>(specs[i][2])}));
    }
    auto& acc = accepts_by_seed[max_pack == 1 ? 0 : 1];
    acc.resize(4);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const JobResult r = queue.wait(ids[i]);
      ASSERT_TRUE(r.ok) << r.error;
      const std::size_t spec_idx = max_pack == 1 ? i : 3 - i;
      acc[spec_idx] = r.walker_accepts;
    }
    EXPECT_EQ(queue.completed(), 4u);
    EXPECT_GE(queue.packed_batches(), 1u);
    EXPECT_LE(queue.packed_batches(), 4u);
  }
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(accepts_by_seed[0][static_cast<std::size_t>(i)],
              accepts_by_seed[1][static_cast<std::size_t>(i)])
        << "job " << i << " diverged across pack/order";
}

TEST(JobQueueSuite, DrainReturnsEverySubmittedJob)
{
  PopulationConfig pcfg;
  pcfg.qmc = make_cfg(4, 0);
  WalkerPopulation pop(pcfg);
  JobQueue queue(pop, 2);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    JobSpec spec;
    spec.num_walkers = 1;
    spec.steps = 1 + i % 3;
    spec.seed = static_cast<std::uint64_t>(100 + i);
    ids.push_back(queue.submit(spec));
  }
  const std::vector<JobResult> all = queue.drain();
  ASSERT_EQ(all.size(), ids.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].id, ids[i]) << "drain() must return submission order";
    EXPECT_TRUE(all[i].ok) << all[i].error;
  }
  EXPECT_TRUE(queue.drain().empty()); // one-shot handover
}

TEST(JobQueueSuite, MismatchedJobsAreRejectedWithSurfacedErrors)
{
  PopulationConfig pcfg;
  pcfg.qmc = make_cfg(4, 0);
  WalkerPopulation pop(pcfg);
  JobQueue queue(pop);

  JobSpec wrong_precision;
  wrong_precision.precision_bytes = 8; // resident engine is float
  const JobResult rp = queue.wait(queue.submit(wrong_precision));
  EXPECT_FALSE(rp.ok);
  EXPECT_NE(rp.error.find("precision"), std::string::npos) << rp.error;

  JobSpec wrong_grid;
  wrong_grid.grid_size = 32; // resident system is 16
  const JobResult rg = queue.wait(queue.submit(wrong_grid));
  EXPECT_FALSE(rg.ok);
  EXPECT_NE(rg.error.find("mismatch"), std::string::npos) << rg.error;

  JobSpec wrong_cell;
  wrong_cell.supercell = {2, 1, 1}; // resident system is {1,1,1}
  const JobResult rc = queue.wait(queue.submit(wrong_cell));
  EXPECT_FALSE(rc.ok);
  EXPECT_NE(rc.error.find("supercell"), std::string::npos) << rc.error;

  JobSpec bad_walkers;
  bad_walkers.num_walkers = 0;
  EXPECT_FALSE(queue.wait(queue.submit(bad_walkers)).ok);

  // Inheriting specs (zeros) still run fine after the rejections.
  JobSpec good;
  good.num_walkers = 1;
  good.steps = 2;
  EXPECT_TRUE(queue.wait(queue.submit(good)).ok);

  // Unknown / already-collected ids fail fast instead of hanging.
  EXPECT_FALSE(queue.wait(0).ok);
  EXPECT_FALSE(queue.wait(999).ok);
}

TEST(JobQueueSuite, SubmitAfterDrainIsRejected)
{
  PopulationConfig pcfg;
  pcfg.qmc = make_cfg(4, 0);
  WalkerPopulation pop(pcfg);
  JobQueue queue(pop, 2);

  JobSpec spec;
  spec.num_walkers = 1;
  spec.steps = 1;
  EXPECT_TRUE(queue.wait(queue.submit(spec)).ok);
  (void)queue.drain();

  // The queue is closed: a late submit must get a defined, surfaced
  // rejection — not an unspecified enqueue racing worker shutdown, and
  // never a silent drop.
  const std::uint64_t late = queue.submit(spec);
  const JobResult r = queue.wait(late);
  EXPECT_EQ(r.id, late);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("closed"), std::string::npos) << r.error;

  // The rejection is also retrievable via a later drain() when nobody
  // wait()ed for it.
  const std::uint64_t late2 = queue.submit(spec);
  const std::vector<JobResult> rest = queue.drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].id, late2);
  EXPECT_FALSE(rest[0].ok);
}

// Many threads hammering one queue with submit/wait while drain() races
// them: every job must land exactly one defined outcome (served, or the
// surfaced "queue closed" rejection) — no hang, no lost result.  The TSan
// CI lane runs this suite, so the locking discipline is checked for data
// races, not just for liveness.
TEST(JobQueueSuite, ConcurrentSubmittersHammerOneQueue)
{
  PopulationConfig pcfg;
  pcfg.qmc = make_cfg(4, 0);
  WalkerPopulation pop(pcfg);
  JobQueue queue(pop, 3);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 12;
  std::atomic<int> served{0};
  std::atomic<int> rejected{0};
  std::atomic<int> collected{0}; ///< drain() got there first: defined fallback
  std::atomic<int> bad{0};

  auto tally = [&](const JobResult& r) {
    if (r.ok)
      served.fetch_add(1);
    else if (r.error.find("closed") != std::string::npos)
      rejected.fetch_add(1);
    else if (r.error.find("collected") != std::string::npos)
      collected.fetch_add(1);
    else
      bad.fetch_add(1); // unexpected failure mode
  };

  // A pre-storm wave served to completion: drain() below may win the race
  // against every threaded submit (all of them rejected is a legal outcome),
  // so the "something actually ran" check must not depend on that race.
  for (int j = 0; j < 3; ++j) {
    JobSpec spec;
    spec.num_walkers = 1;
    spec.steps = 1;
    spec.seed = static_cast<std::uint64_t>(1000 + j);
    tally(queue.wait(queue.submit(spec)));
  }

  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        JobSpec spec;
        spec.num_walkers = 1;
        spec.steps = 1;
        spec.seed = static_cast<std::uint64_t>(1 + t * kJobsPerThread + j);
        tally(queue.wait(queue.submit(spec)));
      }
    });
  }
  // Race a drain() into the middle of the submit storm: jobs before the
  // close get served, jobs after get the rejection — both defined.  A job
  // drain() collected before its submitter's wait() is the third defined
  // outcome ("already collected"); only a genuinely unexpected error counts
  // as bad.
  std::vector<JobResult> drained = queue.drain();
  for (std::thread& t : submitters)
    t.join();
  for (const JobResult& r : drained)
    tally(r);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(served.load(), 0) << "drain closed before anything ran";
  const std::vector<JobResult> rest = queue.drain();
  for (const JobResult& r : rest)
    EXPECT_FALSE(r.error.empty());
}
