#!/usr/bin/env python3
"""Invariant lint pass for the miniQMC-style B-spline codebase.

Static checks for the concurrency and determinism invariants that the test
suite cannot see (ROADMAP.md, "Invariants"):

  * omp-parallel      all thread forking routes through the threading.h seam
                      (team_for / team_for_collapse2 / ThreadPartition) or the
                      orbital_set.h facade sweeps.  A raw `#pragma omp
                      parallel` or `num_threads(...)` anywhere else bypasses
                      the partition arithmetic and breaks topology shaping.
  * thread-local      `thread_local` state is a determinism and reuse hazard;
                      per-thread scratch belongs to the two audited owners
                      (OrbitalResource, the Jastrow functor pool).
  * raw-spline-call   spline engine entry points (`evaluate_v/vgl/vgh*`) are
                      only called inside src/core/ — everything above the
                      facade goes through OrbitalSet so batching, zero-fill
                      elimination and tuner decisions apply uniformly.
  * precision-cast    narrowing `static_cast<float>` of coefficient data is
                      the mixed-precision storage decision and is confined to
                      the convert_storage seam (core/coef_storage.h); engines
                      narrow only through their TStore/TCompute parameters.
  * unseeded-rng      `rand()`, `srand()`, `time()`, `std::random_device` and
                      default-constructed standard engines are banned in src/:
                      trajectories must be bit-for-bit reproducible from the
                      config seed (common/rng.h).

Escape hatch: a comment `// mqc-lint: allow(<rule>)` on the offending line or
the line directly above it silences that one finding — use it with a
justification comment, it is a reviewed decision, not an off switch.

Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Rule table
# ---------------------------------------------------------------------------

SOURCE_EXTS = {".h", ".hpp", ".c", ".cc", ".cpp"}

ALLOW_RE = re.compile(r"mqc-lint:\s*allow\(\s*([a-z0-9-]+)\s*\)")


class Rule:
    def __init__(self, name, summary, pattern, message, allowed_paths=(), allowed_dirs=()):
        self.name = name
        self.summary = summary
        self.pattern = re.compile(pattern)
        self.message = message
        # Paths (relative to the scan root, posix separators) where the
        # construct is legitimate by design.  Directories end with '/'.
        self.allowed_paths = frozenset(allowed_paths)
        self.allowed_dirs = tuple(allowed_dirs)

    def path_allowed(self, relpath: str) -> bool:
        if relpath in self.allowed_paths:
            return True
        return any(relpath.startswith(d) for d in self.allowed_dirs)


RULES = [
    Rule(
        "omp-parallel",
        "raw `#pragma omp parallel` / `num_threads()` outside the threading seam",
        r"(^\s*#\s*pragma\s+omp\b.*\bparallel\b)|(\bnum_threads\s*\()",
        "thread forking must route through common/threading.h (team_for, "
        "team_for_collapse2, ThreadPartition) or the orbital_set.h facade sweeps",
        allowed_paths=(
            "src/common/threading.h",
            "src/common/threading.cpp",
            "src/core/orbital_set.h",
        ),
    ),
    Rule(
        "thread-local",
        "new `thread_local` state outside the audited per-thread owners",
        r"\bthread_local\b",
        "per-thread scratch belongs to OrbitalResource (core/orbital_set.h) or "
        "the Jastrow functor pool (jastrow/bspline_functor.h); new thread_local "
        "state breaks resource accounting and nested-team reuse",
        allowed_paths=(
            "src/core/orbital_set.h",
            "src/jastrow/bspline_functor.h",
        ),
    ),
    Rule(
        "raw-spline-call",
        "spline engine `evaluate_*` entry point called outside src/core/",
        r"\bevaluate_(v|vgl|vgh)(_[a-zA-Z0-9_]+)?\s*\(",
        "code above the facade must evaluate orbitals through OrbitalSet "
        "(core/orbital_set.h) or the batched.h wrappers so scheduling, "
        "zero-fill elimination and tuner decisions apply uniformly",
        allowed_dirs=("src/core/",),
    ),
    Rule(
        "checkpoint-io",
        "checkpoint file I/O or blob codec used outside src/qmc/checkpoint.*",
        r"(\bckpt\s*::\s*)?\b(write_snapshot|read_snapshot(_with_fallback)?|"
        r"apply_file_faults|BlobWriter|BlobReader)\b",
        "checkpoint serialization and file I/O live in src/qmc/checkpoint.{h,cpp} "
        "only; drivers snapshot through the detail:: epoch hooks "
        "(checkpoint_step_boundary, resume_from_checkpoint) so the on-disk "
        "format, CRC framing and atomic-rename protocol have a single owner",
        allowed_paths=(
            "src/qmc/checkpoint.h",
            "src/qmc/checkpoint.cpp",
        ),
    ),
    Rule(
        "precision-cast",
        "coefficient data narrowed with `static_cast<float>` outside the storage seam",
        r"static_cast\s*<\s*float\s*>\s*\([^)]*coef",
        "narrowing coefficient tables to float is the mixed-precision storage "
        "decision and lives in convert_storage (core/coef_storage.h) only; an "
        "ad-hoc narrowing cast silently re-makes that accuracy decision outside "
        "the audited seam (engines narrow via their TStore/TCompute parameters)",
        allowed_paths=("src/core/coef_storage.h",),
    ),
    Rule(
        "unseeded-rng",
        "non-reproducible randomness (`rand`, `srand`, `time`, `random_device`, unseeded engines)",
        r"(\bs?rand\s*\()|(\btime\s*\()|(\brandom_device\b)|"
        r"(\b(mt19937(_64)?|default_random_engine|minstd_rand0?)\b\s*\w*\s*(\(\s*\)|\{\s*\})?\s*;)",
        "trajectories must be bit-for-bit reproducible from the config seed: "
        "use common/rng.h (Xoshiro256) seeded from the run configuration",
    ),
]

RULES_BY_NAME = {r.name: r for r in RULES}


# ---------------------------------------------------------------------------
# Comment / string stripping (line-count preserving)
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving newlines so
    line numbers in diagnostics stay exact.  Handles //, /* */, "...", '...'
    with escapes.  (Raw strings are not used in this codebase.)"""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                out.append(c)
                state = "code"
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("string", "char"):
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                out.append(c)
                state = "code"
            elif c == "\n":  # unterminated literal; keep line structure
                out.append(c)
                state = "code"
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Scanning
# ---------------------------------------------------------------------------

class Finding:
    __slots__ = ("relpath", "line", "rule", "snippet")

    def __init__(self, relpath, line, rule, snippet):
        self.relpath = relpath
        self.line = line
        self.rule = rule
        self.snippet = snippet

    def format(self) -> str:
        return (f"{self.relpath}:{self.line}: [{self.rule.name}] {self.snippet}\n"
                f"    {self.rule.message}\n"
                f"    (deliberate? annotate with  // mqc-lint: allow({self.rule.name}))")


def collect_allows(raw_lines):
    """Map rule name -> set of line numbers silenced by inline allow comments.
    An allow on line L covers L and L+1 (comment-above-the-call style)."""
    allows = {}
    for lineno, line in enumerate(raw_lines, start=1):
        for m in ALLOW_RE.finditer(line):
            allows.setdefault(m.group(1), set()).update((lineno, lineno + 1))
    return allows


def scan_file(path: Path, relpath: str, rules, respect_path_allowlists=True):
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    raw_lines = text.splitlines()
    allows = collect_allows(raw_lines)
    stripped_lines = strip_comments_and_strings(text).splitlines()
    findings = []
    for rule in rules:
        if respect_path_allowlists and rule.path_allowed(relpath):
            continue
        allowed_lines = allows.get(rule.name, ())
        for lineno, line in enumerate(stripped_lines, start=1):
            if rule.pattern.search(line) and lineno not in allowed_lines:
                snippet = raw_lines[lineno - 1].strip()
                if len(snippet) > 80:
                    snippet = snippet[:77] + "..."
                findings.append(Finding(relpath, lineno, rule, snippet))
    return findings


def scan_tree(root: Path, rules):
    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory (wrong --root?)", file=sys.stderr)
        sys.exit(2)
    findings = []
    for path in sorted(src.rglob("*")):
        if path.is_file() and path.suffix in SOURCE_EXTS:
            relpath = path.relative_to(root).as_posix()
            findings.extend(scan_file(path, relpath, rules))
    return findings


# ---------------------------------------------------------------------------
# --list-rules
# ---------------------------------------------------------------------------

def list_rules(markdown: bool):
    if markdown:
        print("# Lint rules (`tools/lint_invariants.py`)")
        print()
        print("Generated by `python3 tools/lint_invariants.py --list-rules --markdown`;")
        print("regenerate after editing the rule table.  Silence one deliberate site")
        print("with `// mqc-lint: allow(<rule>)` on the offending line or the line above.")
        print()
        print("| Rule | Flags | Allowed in | Why |")
        print("|------|-------|------------|-----|")
        for r in RULES:
            where = ", ".join(sorted(r.allowed_paths) + [d + "**" for d in r.allowed_dirs])
            print(f"| `{r.name}` | {r.summary} | {where or '—'} | {r.message} |")
    else:
        for r in RULES:
            print(f"{r.name}: {r.summary}")
            where = ", ".join(sorted(r.allowed_paths) + [d + "**" for d in r.allowed_dirs])
            if where:
                print(f"    allowed in: {where}")
            print(f"    {r.message}")


# ---------------------------------------------------------------------------
# --self-test: fixtures under tools/lint_fixtures/
# ---------------------------------------------------------------------------

def self_test(root: Path) -> int:
    fixture_dir = Path(__file__).resolve().parent / "lint_fixtures"
    if not fixture_dir.is_dir():
        print(f"error: fixture directory {fixture_dir} missing", file=sys.stderr)
        return 2
    failures = 0
    ran = 0
    for path in sorted(fixture_dir.glob("*.cpp")):
        stem = path.stem  # e.g. omp_parallel_violation_basic
        rule = next((r for r in RULES if stem.startswith(r.name.replace("-", "_") + "_")), None)
        if rule is None:
            print(f"FAIL {path.name}: fixture name matches no rule")
            failures += 1
            continue
        rest = stem[len(rule.name) + 1:]
        expect_findings = rest.startswith("violation")
        if not expect_findings and not rest.startswith("allowed"):
            print(f"FAIL {path.name}: expected '<rule>_violation_*' or '<rule>_allowed_*'")
            failures += 1
            continue
        # Fixtures sit outside src/, so path allowlists must not apply.
        found = scan_file(path, path.name, [rule], respect_path_allowlists=False)
        ran += 1
        if expect_findings and not found:
            print(f"FAIL {path.name}: expected >=1 [{rule.name}] finding, got 0")
            failures += 1
        elif not expect_findings and found:
            print(f"FAIL {path.name}: expected 0 findings, got {len(found)}:")
            for f in found:
                print("    " + f.format().splitlines()[0])
            failures += 1
        else:
            print(f"PASS {path.name}")
    covered = {r.name for r in RULES
               for p in fixture_dir.glob(r.name.replace('-', '_') + "_violation_*.cpp")}
    for r in RULES:
        if r.name not in covered:
            print(f"FAIL rule {r.name}: no violation fixture exercises it")
            failures += 1
    print(f"self-test: {ran} fixtures, {failures} failure(s)")
    return 1 if failures else 0


# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_invariants.py",
        description="static invariant checks for src/ (see --list-rules)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root containing src/ (default: repo root)")
    parser.add_argument("--rule", action="append", metavar="NAME",
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--markdown", action="store_true",
                        help="with --list-rules: emit the docs/lint_rules.md table")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule engine against tools/lint_fixtures/")
    args = parser.parse_args(argv)

    if args.list_rules:
        list_rules(args.markdown)
        return 0
    if args.self_test:
        return self_test(args.root)

    rules = RULES
    if args.rule:
        unknown = [n for n in args.rule if n not in RULES_BY_NAME]
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [RULES_BY_NAME[n] for n in args.rule]

    findings = scan_tree(args.root.resolve(), rules)
    for f in findings:
        print(f.format())
    if findings:
        print(f"\nlint_invariants: {len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
