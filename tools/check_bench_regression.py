#!/usr/bin/env python3
"""Bench regression gate over the --json artifacts of the bench binaries.

Compares one or more freshly produced BENCH_*.json files (the JsonReporter
format: {"bench": ..., "rows": [{"name", "value", "unit"}, ...]}) against
committed baselines and fails (exit 1) when a gated metric regressed by more
than the threshold (default 25%).

Gating policy — what is safe to compare across the heterogeneous CI fleet:

* unit == "x" (ratios: speedups, overhead factors) are host-normalized by
  construction — both sides of the ratio ran on the same machine in the same
  job — so they gate by default.  But their *magnitude* still varies with
  the runner's SIMD width / core count, so the default gate only fails a
  ratio row when it BOTH drops by more than the threshold relative to the
  committed baseline AND falls below 1.0 — i.e. the optimized path actually
  lost to its in-run reference, which is host-independent evidence of a real
  regression.  --strict-ratio restores pure threshold gating (pinned,
  self-hosted runners).
* absolute rows ("s", "us", throughputs) vary with the runner's hardware and
  are reported in the delta summary but only gate under --gate-absolute
  (useful on a pinned, self-hosted runner).  Absolute rows are
  lower-is-better when their unit is a time unit ("s", "us", "ms"), else
  higher-is-better.
* unitless rows (counters like nested_inner_threads, det_*_best_delay_rank)
  are informational: reported, never gated.

Rows present on only one side are reported as added/removed, never fatal —
benches grow rows across PRs and a stale baseline should fail loudly only
for metrics it can actually judge.

Usage:
  check_bench_regression.py --baseline-dir bench/baselines \
      --summary delta_summary.md BENCH_crowd.json BENCH_miniqmc_speedup.json
  check_bench_regression.py --update-baseline --baseline-dir bench/baselines \
      BENCH_crowd.json   # refresh the committed baseline in place
"""

import argparse
import json
import os
import sys

TIME_UNITS = {"s", "us", "ms", "ns"}


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[row["name"]] = (float(row["value"]), row.get("unit", ""))
    return doc.get("bench", os.path.basename(path)), rows


def classify(name, unit, current, baseline, threshold, gate_absolute, strict_ratio):
    """Return (status, rel_change) for one row present on both sides.

    rel_change > 0 means improvement, < 0 regression, in the metric's own
    better-direction.
    """
    if unit == "":
        return "info", 0.0
    lower_is_better = unit in TIME_UNITS
    if baseline == 0:
        return "info", 0.0
    if lower_is_better:
        rel = (baseline - current) / baseline
    else:
        rel = (current - baseline) / baseline
    if rel >= -threshold:
        return "ok", rel
    if unit == "x":
        # Past the threshold: on heterogeneous runners only an actual
        # inversion (the paired in-run baseline won) is fatal by default.
        if strict_ratio or current < 1.0:
            return "FAIL", rel
        return "warn", rel
    return ("FAIL" if gate_absolute else "warn"), rel


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("current", nargs="+", help="freshly produced BENCH_*.json files")
    ap.add_argument("--baseline-dir", default="bench/baselines",
                    help="directory holding the committed baseline files (matched by basename)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative regression that fails the gate (default 0.25 = 25%%)")
    ap.add_argument("--gate-absolute", action="store_true",
                    help="also gate absolute (time/throughput) rows — pinned runners only")
    ap.add_argument("--strict-ratio", action="store_true",
                    help="fail ratio rows on the threshold alone, even if still >= 1.0 "
                         "(pinned runners; default additionally requires an inversion)")
    ap.add_argument("--summary", default="",
                    help="write a markdown delta summary to this path (CI artifact)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="copy the current files over the baselines instead of comparing")
    args = ap.parse_args()

    if args.update_baseline:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.current:
            dst = os.path.join(args.baseline_dir, os.path.basename(path))
            with open(path) as src, open(dst, "w") as out:
                out.write(src.read())
            print(f"baseline updated: {dst}")
        return 0

    failures = []
    ratio_rule = "strict" if args.strict_ratio else "threshold + inversion below 1.0"
    lines = ["# Bench regression summary",
             "",
             f"threshold: {args.threshold:.0%} | ratio (x) gate: {ratio_rule} | "
             + ("absolute rows gated" if args.gate_absolute else "absolute rows report-only"),
             ""]
    for path in args.current:
        base_path = os.path.join(args.baseline_dir, os.path.basename(path))
        bench, cur = load_rows(path)
        lines.append(f"## {bench} ({os.path.basename(path)})")
        lines.append("")
        if not os.path.exists(base_path):
            lines.append(f"*no committed baseline at `{base_path}` — nothing gated*")
            lines.append("")
            print(f"note: no baseline for {path}, skipping")
            continue
        _, base = load_rows(base_path)
        lines.append("| metric | baseline | current | change | status |")
        lines.append("|--------|----------|---------|--------|--------|")
        for name in sorted(set(cur) | set(base)):
            if name not in base:
                value, unit = cur[name]
                lines.append(f"| {name} | — | {value:g} {unit} | new row | info |")
                continue
            if name not in cur:
                value, unit = base[name]
                lines.append(f"| {name} | {value:g} {unit} | — | removed | info |")
                continue
            value, unit = cur[name]
            bvalue, _ = base[name]
            status, rel = classify(name, unit, value, bvalue, args.threshold,
                                   args.gate_absolute, args.strict_ratio)
            change = "" if status == "info" else f"{rel:+.1%}"
            lines.append(f"| {name} | {bvalue:g} {unit} | {value:g} {unit} | {change} | {status} |")
            if status == "FAIL":
                failures.append(f"{bench}:{name} regressed {rel:+.1%} "
                                f"({bvalue:g} -> {value:g} {unit})")
        lines.append("")

    summary = "\n".join(lines)
    if args.summary:
        with open(args.summary, "w") as f:
            f.write(summary + "\n")
    print(summary)

    if failures:
        print("\nFAIL: bench regression gate tripped:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
