// Unit tests for the common substrate: alignment math, aligned allocator,
// RNG determinism and statistics, thread-team partitions, timers, tables.
#include <cstdint>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/aligned_allocator.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/sysinfo.h"
#include "common/table.h"
#include "common/threading.h"
#include "common/timer.h"

using namespace mqc;

TEST(Config, AlignedSizeRoundsUpToLaneMultiple)
{
  EXPECT_EQ(aligned_size<float>(1), 16u);
  EXPECT_EQ(aligned_size<float>(16), 16u);
  EXPECT_EQ(aligned_size<float>(17), 32u);
  EXPECT_EQ(aligned_size<double>(1), 8u);
  EXPECT_EQ(aligned_size<double>(8), 8u);
  EXPECT_EQ(aligned_size<double>(9), 16u);
  EXPECT_EQ(aligned_size<float>(0), 0u);
}

TEST(Config, AlignedBytes)
{
  EXPECT_EQ(aligned_bytes(1), kAlignment);
  EXPECT_EQ(aligned_bytes(64), 64u);
  EXPECT_EQ(aligned_bytes(65), 128u);
  EXPECT_EQ(aligned_bytes(0), 0u);
}

TEST(AlignedAllocator, VectorDataIsAligned)
{
  for (std::size_t n : {1u, 7u, 63u, 64u, 1000u}) {
    aligned_vector<float> v(n, 1.0f);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u) << n;
  }
  aligned_vector<double> d(123, 2.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % kAlignment, 0u);
}

TEST(AlignedAllocator, EqualityAndRebind)
{
  aligned_allocator<float> a;
  aligned_allocator<double> b;
  EXPECT_TRUE(a == aligned_allocator<float>());
  EXPECT_FALSE(a != aligned_allocator<float>());
  using rebound = aligned_allocator<float>::rebind<double>::other;
  static_assert(std::is_same_v<rebound, aligned_allocator<double>>);
  (void)b;
}

TEST(Rng, DeterministicForSameSeed)
{
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i)
    ASSERT_EQ(a(), b());
}

TEST(Rng, DistinctSeedsDiverge)
{
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreDecorrelated)
{
  auto s0 = Xoshiro256::for_stream(42, 0);
  auto s1 = Xoshiro256::for_stream(42, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    same += (s0() == s1());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
  Xoshiro256 rng(7);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 5e-3);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 5e-3);
}

TEST(Rng, UniformRangeRespectsBounds)
{
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, GaussianMoments)
{
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i)
    stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 1e-2);
  EXPECT_NEAR(stats.stddev(), 1.0, 1e-2);
}

TEST(Stats, RunningStatsBasics)
{
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0})
    s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, RelativeErrorNearZeroUsesScale)
{
  EXPECT_NEAR(relative_error(1e-12, 0.0), 1e-12, 1e-15);
  EXPECT_NEAR(relative_error(2.0, 1.0), 0.5, 1e-15);
}

TEST(Threading, BlockRangeCoversEverythingOnce)
{
  for (std::size_t total : {0u, 1u, 7u, 64u, 101u})
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u, 128u}) {
      std::size_t covered = 0;
      std::size_t last_end = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        const Range r = block_range(total, parts, p);
        EXPECT_EQ(r.first, last_end);
        last_end = r.last;
        covered += r.size();
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(last_end, total);
    }
}

TEST(Threading, BlockRangeBalanced)
{
  for (std::size_t p = 0; p < 7; ++p) {
    const Range r = block_range(100, 7, p);
    EXPECT_GE(r.size(), 14u);
    EXPECT_LE(r.size(), 15u);
  }
}

TEST(Threading, StridedRangePartitionIsDisjointAndComplete)
{
  const std::size_t total = 37;
  for (std::size_t parts : {1u, 2u, 4u, 5u, 40u}) {
    std::set<std::size_t> seen;
    std::size_t count = 0;
    for (std::size_t which = 0; which < parts; ++which) {
      const StridedRange r(total, parts, which);
      EXPECT_EQ(r.count(), [&] {
        std::size_t c = 0;
        r.for_each([&](std::size_t) { ++c; });
        return c;
      }());
      r.for_each([&](std::size_t i) {
        EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
        ++count;
      });
    }
    EXPECT_EQ(count, total);
    EXPECT_EQ(seen.size(), total);
  }
}

TEST(Threading, TeamCoordinatesLayout)
{
  // 8 threads, teams of 4: walkers 0..1, members 0..3, consecutive threads
  // in the same team.
  const auto c0 = team_coordinates(0, 4);
  const auto c3 = team_coordinates(3, 4);
  const auto c4 = team_coordinates(4, 4);
  EXPECT_EQ(c0.walker, 0);
  EXPECT_EQ(c0.member, 0);
  EXPECT_EQ(c3.walker, 0);
  EXPECT_EQ(c3.member, 3);
  EXPECT_EQ(c4.walker, 1);
  EXPECT_EQ(c4.member, 0);
}

namespace {

/// RAII env var override for topology/partition tests.
struct ScopedEnv
{
  ScopedEnv(const char* name, const char* value) : name_(name)
  {
    const char* old = std::getenv(name);
    if (old != nullptr)
      saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv()
  {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

} // namespace

TEST(Topology, EnvOverrideForcesShape)
{
  ScopedEnv env("MQC_TOPOLOGY", "2x8x2");
  const MachineTopology topo = query_machine_topology();
  EXPECT_TRUE(topo.detected);
  EXPECT_EQ(topo.sockets, 2);
  EXPECT_EQ(topo.cores_per_socket, 8);
  EXPECT_EQ(topo.smt, 2);
  EXPECT_EQ(topo.logical_cpus, 32);
  EXPECT_EQ(topo.threads_per_socket(), 16);
}

TEST(Topology, DetectionAlwaysProducesAUsableShape)
{
  // Whatever the host exposes (full sysfs, restricted container, non-Linux
  // fallback), the result must be internally consistent and non-degenerate —
  // partition resolution divides by these numbers.
  const MachineTopology topo = query_machine_topology();
  EXPECT_GE(topo.logical_cpus, 1);
  EXPECT_GE(topo.sockets, 1);
  EXPECT_GE(topo.cores_per_socket, 1);
  EXPECT_GE(topo.smt, 1);
}

TEST(ThreadPartition, ExplicitInnerPinsTheTeamSize)
{
  MachineTopology topo;
  topo.logical_cpus = 16;
  topo.sockets = 2;
  topo.cores_per_socket = 8;
  topo.smt = 1;
  const auto part = ThreadPartition::resolve_for(/*outer_work=*/4, /*requested_inner=*/3,
                                                 /*total_threads=*/16, topo);
  EXPECT_EQ(part.outer, 4);
  EXPECT_EQ(part.inner, 3);
  EXPECT_EQ(part.total(), 12);
}

TEST(ThreadPartition, AutoSplitsLeftoverThreadsAcrossOuterMembers)
{
  MachineTopology topo;
  topo.logical_cpus = 16;
  topo.sockets = 2;
  topo.cores_per_socket = 8;
  topo.smt = 1;
  // 2 crowds on 16 threads: 8 threads per crowd, and 8 divides a socket.
  EXPECT_EQ(ThreadPartition::resolve_for(2, 0, 16, topo).inner, 8);
  // 16 crowds on 16 threads: nothing left over — the flat schedule.
  EXPECT_EQ(ThreadPartition::resolve_for(16, 0, 16, topo).inner, 1);
  // More outer work than threads: still inner = 1, never 0.
  EXPECT_EQ(ThreadPartition::resolve_for(64, 0, 16, topo).inner, 1);
}

TEST(ThreadPartition, AutoInnerNeverStraddlesASocket)
{
  MachineTopology topo;
  topo.logical_cpus = 12;
  topo.sockets = 2;
  topo.cores_per_socket = 6;
  topo.smt = 1;
  // 12 threads / 1 crowd = 12, but a team of 12 would span both sockets:
  // shrink to the largest divisor of threads-per-socket (6).
  EXPECT_EQ(ThreadPartition::resolve_for(1, 0, 12, topo).inner, 6);
  // 12 / 5 crowds = 2 — divides the socket, kept.
  EXPECT_EQ(ThreadPartition::resolve_for(5, 0, 12, topo).inner, 2);
  // 12 / 3 crowds = 4 — 4 does not divide 6; largest divisor <= 4 is 3.
  EXPECT_EQ(ThreadPartition::resolve_for(3, 0, 12, topo).inner, 3);
}

TEST(ThreadPartition, EnvOverridesApplyOnlyInAutoMode)
{
  {
    ScopedEnv env("MQC_PARTITION", "3x5");
    const auto part = ThreadPartition::resolve(8, 0, 16);
    EXPECT_EQ(part.outer, 3);
    EXPECT_EQ(part.inner, 5);
    // An explicit caller knob beats the environment.
    EXPECT_EQ(ThreadPartition::resolve(8, 2, 16).inner, 2);
  }
  {
    ScopedEnv env("MQC_INNER_THREADS", "4");
    EXPECT_EQ(ThreadPartition::resolve(2, 0, 16).inner, 4);
    EXPECT_EQ(ThreadPartition::resolve(2, 1, 16).inner, 1);
  }
}

// ---------------------------------------------------------------------------
// Env-knob parse hardening: a malformed MQC_TOPOLOGY / MQC_PARTITION /
// MQC_INNER_THREADS must be rejected whole (present && !valid) so the caller
// warns once and runs the auto fallback — never a half-parsed bogus shape.
// ---------------------------------------------------------------------------

TEST(EnvKnob, StrictParseAcceptsExpectedShapes)
{
  const EnvKnob topo = parse_env_knob("2x8x2", 2, 3);
  EXPECT_TRUE(topo.present);
  EXPECT_TRUE(topo.valid);
  EXPECT_EQ(topo.count, 3);
  EXPECT_EQ(topo.values[0], 2);
  EXPECT_EQ(topo.values[1], 8);
  EXPECT_EQ(topo.values[2], 2);
  // Alternate separators and optional smt field.
  EXPECT_TRUE(parse_env_knob("2:8", 2, 3).valid);
  EXPECT_TRUE(parse_env_knob("2,8,2", 2, 3).valid);
  EXPECT_TRUE(parse_env_knob(" 4 ", 1, 1).valid);
  // Absent is neither present nor valid — distinct from garbage.
  const EnvKnob absent = parse_env_knob(nullptr, 1, 1);
  EXPECT_FALSE(absent.present);
  EXPECT_FALSE(absent.valid);
}

TEST(EnvKnob, StrictParseRejectsMalformedValues)
{
  const char* bad[] = {
      "",          // empty value
      "abc",       // non-numeric
      "3x",        // trailing separator, missing field
      "x5",        // leading separator, missing field
      "3xx5",      // empty middle field
      "0x5",       // zero field
      "-3x5",      // negative field
      "3x5junk",   // trailing garbage glued to a field
      "3x5 junk",  // trailing garbage after whitespace
      "3.5x2",     // fractional field
      "3x5x7x9",   // too many fields even for the widest knob
      "9999999x2", // absurd magnitude (a typo, not a request)
  };
  for (const char* text : bad) {
    const EnvKnob k = parse_env_knob(text, 2, 3);
    EXPECT_TRUE(k.present) << '"' << text << '"';
    EXPECT_FALSE(k.valid) << '"' << text << '"';
  }
  // Wrong field count for the specific knob: valid shape, wrong arity.
  EXPECT_FALSE(parse_env_knob("3x5x7", 2, 2).valid); // MQC_PARTITION wants OxI
  EXPECT_FALSE(parse_env_knob("3x5", 1, 1).valid);   // MQC_INNER_THREADS wants I
  EXPECT_FALSE(parse_env_knob("3", 2, 3).valid);     // MQC_TOPOLOGY wants SxC[xT]
}

TEST(EnvKnob, MalformedTopologyFallsBackToDetection)
{
  ScopedEnv env("MQC_TOPOLOGY", "2x8junk");
  const MachineTopology topo = query_machine_topology();
  // The override is ignored whole: whatever detection produced, it is a
  // usable shape and NOT the half-parsed 2x8 the garbage value suggested.
  EXPECT_GE(topo.logical_cpus, 1);
  EXPECT_GE(topo.sockets, 1);
  EXPECT_FALSE(topo.sockets == 2 && topo.cores_per_socket == 8 && !topo.detected);
}

TEST(EnvKnob, MalformedPartitionFallsBackToAuto)
{
  ScopedEnv env("MQC_PARTITION", "3x5x7");
  // Three fields is not OxI: the override is rejected and auto resolution
  // runs, which clamps outer to the work count — the forced path would not.
  const auto part = ThreadPartition::resolve(8, 0, 16);
  EXPECT_EQ(part.outer, 8);
  EXPECT_GE(part.inner, 1);
}

TEST(EnvKnob, MalformedInnerThreadsFallsBackToAuto)
{
  ScopedEnv env("MQC_INNER_THREADS", "lots");
  const auto part = ThreadPartition::resolve(16, 0, 16);
  EXPECT_EQ(part.outer, 16);
  EXPECT_EQ(part.inner, 1); // 16 threads / 16 outer = auto inner of 1
}

TEST(TeamHandle, ResolveAndParallelSemantics)
{
  EXPECT_EQ(TeamHandle::serial().resolve(), 1);
  EXPECT_FALSE(TeamHandle::serial().parallel());
  EXPECT_EQ(TeamHandle::of(5).resolve(), 5);
  EXPECT_TRUE(TeamHandle::of(5).parallel());
  // whole_machine defers to the runtime.
  EXPECT_EQ(TeamHandle::whole_machine().resolve(), max_threads());
  const ThreadPartition part{4, 3};
  EXPECT_EQ(TeamHandle::inner_of(part).resolve(), 3);
}

TEST(TeamFor, CoversEveryIndexExactlyOnce)
{
  for (const TeamHandle team :
       {TeamHandle::serial(), TeamHandle::of(3), TeamHandle::whole_machine()}) {
    for (const int n : {0, 1, 7, 64}) {
      std::vector<int> hits(static_cast<std::size_t>(n), 0);
      team_for(team, n, [&](int i) {
#pragma omp atomic
        ++hits[static_cast<std::size_t>(i)];
      });
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << "i=" << i;
    }
  }
}

TEST(TeamFor, CollapseCoversEveryPairExactlyOnce)
{
  for (const TeamHandle team : {TeamHandle::serial(), TeamHandle::of(4)}) {
    const int n1 = 5, n2 = 7;
    std::vector<int> hits(static_cast<std::size_t>(n1) * n2, 0);
    team_for_collapse2(team, n1, n2, [&](int i, int j) {
#pragma omp atomic
      ++hits[static_cast<std::size_t>(i) * n2 + j];
    });
    for (std::size_t k = 0; k < hits.size(); ++k)
      EXPECT_EQ(hits[k], 1) << "pair " << k;
  }
}

TEST(TeamFor, OversizedTeamStillCoversSmallLoop)
{
  // More threads requested than work items: the seam caps the team at the
  // trip count, and every index still runs exactly once.
  std::vector<int> hits(3, 0);
  team_for(TeamHandle::of(64), 3, [&](int i) {
#pragma omp atomic
    ++hits[static_cast<std::size_t>(i)];
  });
  EXPECT_EQ(hits[0] + hits[1] + hits[2], 3);
}

// Race canary for the thread-sanitizer CI lane: a deliberately unsynchronized
// read-modify-write on shared state, scheduled through the team_for seam.
// DISABLED_ so plain tier-1 runs never execute it; the TSan job (and local
// validation of an MQC_SANITIZE=thread build) opts in with
// --gtest_also_run_disabled_tests --gtest_filter='*InjectedRaceCanary*' and
// expects the sanitizer to report a data race here.  If the race goes
// undetected, the sanitizer lane is not actually watching.
TEST(TsanCanary, DISABLED_InjectedRaceCanary)
{
  int unsynchronized = 0;
  team_for(TeamHandle::of(4), 4096, [&](int) { ++unsynchronized; });
  // The value is unspecified under the race; the assertion is deliberately
  // loose — the sanitizer report is the observable.
  EXPECT_GT(unsynchronized, 0);
}

TEST(TeamPath, ClassificationMatchesNestingCapability)
{
  EXPECT_EQ(classify_team_path(8, 1), TeamPath::Flat);
  // A one-member outer region is inactive: inner teams always fork.
  EXPECT_EQ(classify_team_path(1, 4), TeamPath::NestedInner);
#ifdef _OPENMP
  const int saved = omp_get_max_active_levels();
  omp_set_max_active_levels(1);
  EXPECT_EQ(classify_team_path(8, 4), TeamPath::SerialInner);
  omp_set_max_active_levels(2);
  EXPECT_EQ(classify_team_path(8, 4), TeamPath::NestedInner);
  omp_set_max_active_levels(saved);
#endif
}

TEST(Timer, StopwatchMonotone)
{
  Stopwatch w;
  const double t0 = w.elapsed();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t1 = w.elapsed();
  EXPECT_GE(t1, t0);
  EXPECT_GT(t1, 0.0);
}

TEST(Timer, ProfileRegistryAccumulatesAndMerges)
{
  ProfileRegistry a, b;
  a.add("x", 1.0, 2);
  a.add("x", 0.5);
  b.add("x", 0.5);
  b.add("y", 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds("x"), 2.0);
  EXPECT_EQ(a.calls("x"), 4u);
  EXPECT_DOUBLE_EQ(a.seconds("y"), 2.0);
  EXPECT_DOUBLE_EQ(a.total(), 4.0);
  EXPECT_DOUBLE_EQ(a.percent("x"), 50.0);
  EXPECT_EQ(a.keys().size(), 2u);
}

TEST(Timer, ScopedTimerAddsTime)
{
  ProfileRegistry reg;
  {
    ScopedTimer t(reg, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(reg.seconds("scope"), 0.0);
  EXPECT_EQ(reg.calls("scope"), 1u);
}

TEST(Timer, TimePerIterationPositiveAndBounded)
{
  volatile double sink = 0.0;
  const double t = time_per_iteration([&] { sink = sink + 1.0; }, 0.001, 3);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 0.1);
}

TEST(Table, PrintsAlignedColumns)
{
  TablePrinter tp({"name", "value"});
  tp.add_row({"alpha", TablePrinter::cell(1.5, 2)});
  tp.add_row({"b", TablePrinter::cell(std::size_t{42})});
  std::ostringstream os;
  tp.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(SysInfo, QueryReturnsSaneValues)
{
  const SystemInfo info = query_system_info();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_GE(info.omp_max_threads, 1);
  EXPECT_GE(info.simd_width_bits, 64u);
  std::ostringstream os;
  print_system_info(os, info);
  EXPECT_NE(os.str().find("SIMD"), std::string::npos);
}
