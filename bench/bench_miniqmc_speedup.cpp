// Abstract / §VII claim: the combined optimizations (SoA + AoSoA B-splines,
// SoA distance tables and Jastrow) speed up the whole miniQMC mini-app by
// more than 4.5x on KNL/BDW.  This bench runs the full driver end-to-end in
// both configurations on an identical trajectory and reports the overall
// and per-section speedups on this host.
#include <cstdlib>
#include <utility>
#include <iostream>
#include <string>

#include "common/table.h"
#include "qmc/miniqmc_driver.h"
#include "bench_common.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  auto json = bench::JsonReporter::from_args(argc, argv, "miniqmc_speedup");
  const char* env = std::getenv("MQC_BENCH_SCALE");
  const bool full = env && std::string(env) == "full";

  MiniQMCConfig cfg;
  cfg.supercell = full ? std::array<int, 3>{4, 4, 1} : std::array<int, 3>{3, 3, 1};
  cfg.grid_size = full ? 48 : 32;
  cfg.steps = full ? 4 : 3;

  // Best of three full runs per configuration: section times are
  // milliseconds and shared-VM steal time can inflate any single run.
  auto best_run = [](MiniQMCConfig c) {
    MiniQMCResult best = run_miniqmc(c);
    for (int attempt = 1; attempt < 3; ++attempt) {
      auto r = run_miniqmc(c);
      if (r.seconds < best.seconds)
        best = std::move(r);
    }
    return best;
  };

  cfg.spo = SpoLayout::AoS;
  cfg.optimized_dt_jastrow = false;
  const auto base = best_run(cfg);

  cfg.spo = SpoLayout::AoSoA;
  cfg.tile_size = 64;
  cfg.optimized_dt_jastrow = true;
  const auto opt = best_run(cfg);

  print_banner(std::cout, "miniQMC end-to-end speedup (baseline vs fully optimized)");
  std::cout << "system: graphite " << cfg.supercell[0] << 'x' << cfg.supercell[1] << 'x'
            << cfg.supercell[2] << ", " << base.num_electrons << " electrons, "
            << base.num_orbitals << " SPOs\n\n";

  TablePrinter tp({"section", "baseline (s)", "optimized (s)", "speedup"});
  for (const char* key :
       {kSectionBspline, kSectionDistance, kSectionJastrow, kSectionDeterminant}) {
    const double b = base.profile.seconds(key);
    const double o = opt.profile.seconds(key);
    const double s = o > 0 ? b / o : 0.0;
    tp.add_row({key, TablePrinter::cell(b, 4), TablePrinter::cell(o, 4),
                TablePrinter::cell(s, 2)});
    json.add(std::string(key) + "_speedup", s, "x");
  }
  tp.add_row({"TOTAL (sweep wall)", TablePrinter::cell(base.seconds, 4),
              TablePrinter::cell(opt.seconds, 4), TablePrinter::cell(base.seconds / opt.seconds, 2)});
  json.add("baseline_seconds", base.seconds, "s");
  json.add("optimized_seconds", opt.seconds, "s");
  json.add("total_speedup", base.seconds / opt.seconds, "x");
  tp.print(std::cout);
  std::cout << "\nPaper claim: > 4.5x full-miniQMC speedup on KNL/BDW at production sizes\n"
               "(their baseline had far more headroom: in-order KNC / 512-bit SIMD with\n"
               "13-wide strided stores; expect a smaller but >1 factor on this host).\n";
  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
