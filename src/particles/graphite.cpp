#include "particles/graphite.h"

#include <array>
#include <cmath>

namespace mqc {
namespace {

// Experimental graphite lattice parameters in bohr:
// a = 2.462 A = 4.6526 bohr (in-plane), c = 6.708 A = 12.6763 bohr.
constexpr double kA = 4.6526;
constexpr double kC = 12.6763;

} // namespace

CrystalSystem make_graphite_supercell(int n1, int n2, int n3)
{
  // Hexagonal primitive vectors: a1 = a(1,0,0), a2 = a(-1/2, sqrt(3)/2, 0),
  // a3 = c(0,0,1).  AB stacking: layer A atoms at (0,0,0) and (1/3,2/3,0);
  // layer B at (0,0,1/2) and (2/3,1/3,1/2) (fractional coordinates).
  const double s3 = std::sqrt(3.0) / 2.0;
  const std::array<Vec3<double>, 3> prim{Vec3<double>{kA, 0, 0},
                                         Vec3<double>{-0.5 * kA, s3 * kA, 0},
                                         Vec3<double>{0, 0, kC}};
  const std::array<Vec3<double>, 3> super{static_cast<double>(n1) * prim[0],
                                          static_cast<double>(n2) * prim[1],
                                          static_cast<double>(n3) * prim[2]};
  CrystalSystem sys{Lattice(super), ParticleSetSoA<double>(4 * n1 * n2 * n3), 4};

  const std::array<Vec3<double>, 4> basis{
      Vec3<double>{0.0, 0.0, 0.0}, Vec3<double>{1.0 / 3.0, 2.0 / 3.0, 0.0},
      Vec3<double>{0.0, 0.0, 0.5}, Vec3<double>{2.0 / 3.0, 1.0 / 3.0, 0.5}};

  const Lattice prim_lattice(prim);
  int idx = 0;
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j)
      for (int k = 0; k < n3; ++k)
        for (const auto& b : basis) {
          const Vec3<double> f{(b.x + i), (b.y + j), (b.z + k)};
          sys.ions.set(idx++, prim_lattice.to_cartesian(f));
        }
  return sys;
}

CrystalSystem make_orthorhombic_carbon(int n1, int n2, int n3)
{
  // Same volume per atom as graphite, laid out on a rectangular lattice with
  // 4 atoms per cell (two offset pairs) so the density matches.
  const double vol_per_cell = std::sqrt(3.0) / 2.0 * kA * kA * kC; // hexagonal cell volume
  const double l = std::cbrt(vol_per_cell);
  const std::array<Vec3<double>, 3> super{Vec3<double>{n1 * l, 0, 0}, Vec3<double>{0, n2 * l, 0},
                                          Vec3<double>{0, 0, n3 * l}};
  CrystalSystem sys{Lattice(super), ParticleSetSoA<double>(4 * n1 * n2 * n3), 4};

  const std::array<Vec3<double>, 4> basis{
      Vec3<double>{0.0, 0.0, 0.0}, Vec3<double>{0.5, 0.5, 0.0}, Vec3<double>{0.5, 0.0, 0.5},
      Vec3<double>{0.0, 0.5, 0.5}};
  int idx = 0;
  for (int i = 0; i < n1; ++i)
    for (int j = 0; j < n2; ++j)
      for (int k = 0; k < n3; ++k)
        for (const auto& b : basis)
          sys.ions.set(idx++, Vec3<double>{(b.x + i) * l, (b.y + j) * l, (b.z + k) * l});
  return sys;
}

} // namespace mqc
