#include "core/tuner.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/config.h"

namespace mqc {

std::string Wisdom::make_key(const std::string& kernel, const std::string& precision,
                             int num_splines, int nx, int ny, int nz)
{
  std::ostringstream os;
  os << kernel << ':' << precision << ":N=" << num_splines << ":grid=" << nx << 'x' << ny << 'x'
     << nz;
  return os.str();
}

std::string Wisdom::make_key_v2(const std::string& kernel, const std::string& precision,
                                int num_splines, int nx, int ny, int nz, int num_walkers)
{
  std::ostringstream os;
  os << "v2:" << make_key(kernel, precision, num_splines, nx, ny, nz) << ":nw=" << num_walkers;
  return os.str();
}

std::optional<Wisdom::Entry> Wisdom::lookup(const std::string& key) const
{
  const auto it = entries_.find(key);
  if (it == entries_.end())
    return std::nullopt;
  return it->second;
}

bool Wisdom::save(const std::string& path) const
{
  std::ofstream out(path);
  if (!out)
    return false;
  out << "# miniqmcpp wisdom v5: key tile_size pos_block crowd_size inner_threads precision "
         "throughput\n";
  for (const auto& [key, entry] : entries_)
    out << key << ' ' << entry.tile_size << ' ' << entry.pos_block << ' ' << entry.crowd_size
        << ' ' << entry.inner_threads << ' ' << entry.precision << ' ' << entry.throughput
        << '\n';
  return static_cast<bool>(out);
}

namespace {

/// A persisted integer knob: non-negative, integral, and sane in magnitude.
bool integral_knob(double v) noexcept
{
  return std::isfinite(v) && v >= 0.0 && v == std::floor(v) && v <= 1e9;
}

} // namespace

bool Wisdom::load(const std::string& path)
{
  load_status_ = LoadStatus{};
  load_status_.attempted = true;
  std::ifstream in(path);
  if (!in) {
    load_status_.detail = path + ": cannot open";
    return false;
  }
  // All-or-nothing: parse into a staging map first.  A file with ANY
  // malformed line is rejected whole — merging the "good" lines of a
  // corrupt file would silently serve half the tuned knobs.
  std::map<std::string, Entry> staged;
  std::string line;
  int lineno = 0;
  auto reject = [&](const std::string& why) {
    ++load_status_.lines_rejected;
    if (load_status_.detail.empty())
      load_status_.detail = path + ":" + std::to_string(lineno) + ": " + why;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#')
      continue;
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) {
      reject("unparseable line");
      continue;
    }
    // The numeric field count disambiguates the format version:
    //   2 -> v1: tile throughput                            (pos_block := 1)
    //   3 -> v2: tile pos_block throughput                  (crowd_size := 0)
    //   4 -> v3: tile pos_block crowd_size throughput       (inner_threads := 0)
    //   5 -> v4: tile pos_block crowd_size inner_threads throughput (precision := 0)
    //   6 -> v5: tile pos_block crowd_size inner_threads precision throughput
    double num[6] = {};
    int n = 0;
    while (n < 6 && (ls >> num[n]))
      ++n;
    ls.clear(); // a failed extraction above must not mask trailing garbage
    std::string trailing;
    if (ls >> trailing) {
      reject("unexpected field '" + trailing + "'");
      continue;
    }
    if (n < 2) {
      reject("too few fields (need at least tile_size and throughput)");
      continue;
    }
    Entry entry;
    const double throughput = num[n - 1];
    bool knobs_ok = integral_knob(num[0]);
    entry.tile_size = static_cast<int>(num[0]);
    entry.pos_block = 1;
    if (n >= 3) {
      knobs_ok = knobs_ok && integral_knob(num[1]);
      entry.pos_block = static_cast<int>(num[1]);
    }
    if (n >= 4) {
      knobs_ok = knobs_ok && integral_knob(num[2]);
      entry.crowd_size = static_cast<int>(num[2]);
    }
    if (n >= 5) {
      knobs_ok = knobs_ok && integral_knob(num[3]);
      entry.inner_threads = static_cast<int>(num[3]);
    }
    if (n >= 6) {
      // precision is an enum ordinal, not a free knob: only 0 (native) and
      // 1 (mixed) exist.
      knobs_ok = knobs_ok && integral_knob(num[4]) && num[4] <= 1.0;
      entry.precision = static_cast<int>(num[4]);
    }
    if (!knobs_ok) {
      reject("knob fields must be non-negative integers");
      continue;
    }
    if (!std::isfinite(throughput) || throughput < 0.0) {
      reject("throughput must be finite and non-negative");
      continue;
    }
    entry.throughput = throughput;
    staged[key] = entry;
  }
  if (load_status_.lines_rejected > 0)
    return false;
  for (auto& [key, entry] : staged)
    entries_[key] = entry;
  load_status_.ok = true;
  load_status_.entries_loaded = static_cast<int>(staged.size());
  return true;
}

std::vector<int> default_tile_candidates(int num_splines, int min_tile)
{
  std::vector<int> out;
  for (int nb = min_tile; nb < num_splines; nb *= 2)
    out.push_back(nb);
  out.push_back(num_splines); // untiled upper end of the sweep
  return out;
}

std::vector<int> default_block_candidates(int num_walkers)
{
  std::vector<int> out;
  for (int pb = 1; pb < num_walkers; pb *= 2)
    out.push_back(pb);
  if (num_walkers >= 1)
    out.push_back(num_walkers); // whole-population block
  return out;
}

} // namespace mqc
