// Host introspection — the reproduction's analogue of the paper's Table I
// ("System configurations": cores, SIMD width, cache sizes, stream BW).
#ifndef MQC_COMMON_SYSINFO_H
#define MQC_COMMON_SYSINFO_H

#include <cstddef>
#include <iosfwd>
#include <string>

namespace mqc {

struct SystemInfo
{
  std::string cpu_model;
  int logical_cpus = 0;
  int omp_max_threads = 0;
  std::size_t simd_width_bits = 0; ///< widest vector unit the build targets
  std::size_t l1d_bytes = 0;
  std::size_t l2_bytes = 0;
  std::size_t l3_bytes = 0;
  std::size_t total_ram_bytes = 0;
};

/// Collect what the host exposes (Linux sysconf/cpuinfo; zeros when unknown).
SystemInfo query_system_info();

/// Print a Table-I-style configuration column for this host.
void print_system_info(std::ostream& os, const SystemInfo& info);

} // namespace mqc

#endif // MQC_COMMON_SYSINFO_H
