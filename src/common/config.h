// Project-wide configuration: alignment contract, restrict qualifier and
// small index helpers shared by every module.
//
// The whole library is built around one memory contract: every hot array is
// allocated on a 64-byte boundary and padded so that each logical row starts
// on a 64-byte boundary as well.  This is what lets the engines promise
// `omp simd aligned(...)` to the compiler without per-call checks.
#ifndef MQC_COMMON_CONFIG_H
#define MQC_COMMON_CONFIG_H

#include <cstddef>
#include <cstdint>

namespace mqc {

/// Cache-line / SIMD alignment in bytes.  512-bit vectors (AVX-512, the widest
/// unit discussed in the paper) need 64 bytes; smaller ISAs are satisfied too.
inline constexpr std::size_t kAlignment = 64;

/// Number of elements of type T per cache line / full-width vector.
template <typename T>
inline constexpr std::size_t simd_lanes = kAlignment / sizeof(T);

/// Round @p n up to a multiple of the per-type SIMD lane count so that
/// consecutive rows of a 2D view stay aligned.
template <typename T>
constexpr std::size_t aligned_size(std::size_t n) noexcept
{
  constexpr std::size_t lanes = simd_lanes<T>;
  return ((n + lanes - 1) / lanes) * lanes;
}

/// Round a byte count up to the allocation granularity.
constexpr std::size_t aligned_bytes(std::size_t bytes) noexcept
{
  return ((bytes + kAlignment - 1) / kAlignment) * kAlignment;
}

} // namespace mqc

#if defined(__GNUC__) || defined(__clang__)
#define MQC_RESTRICT __restrict__
#define MQC_FORCE_INLINE inline __attribute__((always_inline))
#define MQC_ASSUME_ALIGNED(p) __builtin_assume_aligned((p), ::mqc::kAlignment)
#else
#define MQC_RESTRICT
#define MQC_FORCE_INLINE inline
#define MQC_ASSUME_ALIGNED(p) (p)
#endif

#endif // MQC_COMMON_CONFIG_H
