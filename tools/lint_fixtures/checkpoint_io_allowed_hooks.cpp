// Fixture: the sanctioned driver-facing epoch hooks do not trip the rule —
// their implementations (and all file I/O) live in src/qmc/checkpoint.cpp.
// Expected: 0 findings.
#include "qmc/miniqmc_context.h"

int drive(const mqc::detail::CheckpointRuntime& ckrt, const mqc::MiniQMCConfig& cfg,
          mqc::detail::MiniQMCSystem& sys, std::vector<mqc::detail::WalkerState>& walkers,
          mqc::MiniQMCResult& result)
{
  int step = mqc::detail::resume_from_checkpoint(ckrt, cfg, sys, walkers, result);
  mqc::detail::checkpoint_step_boundary(ckrt, cfg, sys, walkers, step, cfg.steps, result);
  return step;
}
