// Synthetic single-particle orbitals with closed-form derivatives.
//
// The paper's evaluation keeps the grid at 48^3 while scaling N — orbitals of
// periodic images of a small unit cell.  As a stand-in for DFT-generated
// orbitals (which require a plane-wave DFT code and HDF5 inputs we do not
// have) we use plane-wave orbitals
//     phi_n(r) = cos(G_n . r + theta_n)
// with G_n = 2*pi*(k_n / L) running over integer k-vectors ordered by |k|^2 —
// the orbitals of a homogeneous electron gas in the same periodic cell.
// They exercise the identical code path (a dense 4D coefficient table with
// random access) and, unlike random coefficients, have analytic
// value/gradient/Hessian so accuracy tests can verify the whole pipeline
// (builder + engine) end to end.  See DESIGN.md, substitution table.
#ifndef MQC_CORE_SYNTHETIC_ORBITALS_H
#define MQC_CORE_SYNTHETIC_ORBITALS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/threading.h"
#include "common/vec3.h"
#include "core/bspline_builder.h"
#include "core/coef_storage.h"

namespace mqc {

/// A set of plane-wave orbitals over an orthorhombic cell [0,Lx)x[0,Ly)x[0,Lz).
class PlaneWaveOrbitals
{
public:
  /// Build @p num orbitals with deterministic phases derived from @p seed.
  static PlaneWaveOrbitals make(int num, Vec3<double> box, std::uint64_t seed = 7)
  {
    PlaneWaveOrbitals set;
    set.box_ = box;
    // Enumerate integer k-vectors by increasing |k|^2 (then lexicographic) —
    // the aufbau order of a free-electron gas.
    int kmax = 1;
    while ((2 * kmax + 1) * (2 * kmax + 1) * (2 * kmax + 1) < 2 * num + 1)
      ++kmax;
    struct K
    {
      int k2;
      int kx, ky, kz;
    };
    std::vector<K> ks;
    for (int kx = -kmax; kx <= kmax; ++kx)
      for (int ky = -kmax; ky <= kmax; ++ky)
        for (int kz = -kmax; kz <= kmax; ++kz)
          ks.push_back({kx * kx + ky * ky + kz * kz, kx, ky, kz});
    std::sort(ks.begin(), ks.end(), [](const K& a, const K& b) {
      if (a.k2 != b.k2)
        return a.k2 < b.k2;
      if (a.kx != b.kx)
        return a.kx < b.kx;
      if (a.ky != b.ky)
        return a.ky < b.ky;
      return a.kz < b.kz;
    });
    Xoshiro256 rng(seed);
    constexpr double two_pi = 6.283185307179586476925286766559;
    for (int n = 0; n < num; ++n) {
      const K& k = ks[static_cast<std::size_t>(n)];
      set.g_.push_back(Vec3<double>{two_pi * k.kx / box.x, two_pi * k.ky / box.y,
                                    two_pi * k.kz / box.z});
      set.theta_.push_back(rng.uniform(0.0, two_pi));
    }
    return set;
  }

  [[nodiscard]] int num_orbitals() const noexcept { return static_cast<int>(g_.size()); }
  [[nodiscard]] Vec3<double> box() const noexcept { return box_; }

  [[nodiscard]] double value(int n, Vec3<double> r) const noexcept
  {
    return std::cos(phase(n, r));
  }

  [[nodiscard]] Vec3<double> gradient(int n, Vec3<double> r) const noexcept
  {
    const double s = -std::sin(phase(n, r));
    const auto& G = g_[static_cast<std::size_t>(n)];
    return Vec3<double>{G.x * s, G.y * s, G.z * s};
  }

  /// Hessian is -G (x) G * cos(phase); returns the six unique components in
  /// the engine order xx, xy, xz, yy, yz, zz.
  void hessian(int n, Vec3<double> r, double h[6]) const noexcept
  {
    const double c = -std::cos(phase(n, r));
    const auto& G = g_[static_cast<std::size_t>(n)];
    h[0] = G.x * G.x * c;
    h[1] = G.x * G.y * c;
    h[2] = G.x * G.z * c;
    h[3] = G.y * G.y * c;
    h[4] = G.y * G.z * c;
    h[5] = G.z * G.z * c;
  }

  [[nodiscard]] double laplacian(int n, Vec3<double> r) const noexcept
  {
    const auto& G = g_[static_cast<std::size_t>(n)];
    return -norm2(G) * std::cos(phase(n, r));
  }

private:
  [[nodiscard]] double phase(int n, Vec3<double> r) const noexcept
  {
    return dot(g_[static_cast<std::size_t>(n)], r) + theta_[static_cast<std::size_t>(n)];
  }

  Vec3<double> box_{1, 1, 1};
  std::vector<Vec3<double>> g_;
  std::vector<double> theta_;
};

/// Sample @p orbitals on @p grid and solve for the spline coefficient table.
/// Parallel over orbitals on the caller's team (threading.h seam; the
/// default lets the runtime size the sweep — table construction is setup
/// code with no enclosing partition).  Each orbital's solve is independent,
/// so every team size builds the identical table.
template <typename T>
std::shared_ptr<CoefStorage<T>> build_planewave_storage(const Grid3D<T>& grid,
                                                        const PlaneWaveOrbitals& orbitals,
                                                        TeamHandle team = TeamHandle::whole_machine())
{
  auto storage = std::make_shared<CoefStorage<T>>(grid, orbitals.num_orbitals());
  const int nx = grid.x.num, ny = grid.y.num, nz = grid.z.num;
  team_for(team, orbitals.num_orbitals(), [&](int n) {
    std::vector<double> samples(static_cast<std::size_t>(nx) * ny * nz);
    for (int i = 0; i < nx; ++i)
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) {
          const Vec3<double> r{grid.x.start + i * static_cast<double>(grid.x.delta),
                               grid.y.start + j * static_cast<double>(grid.y.delta),
                               grid.z.start + k * static_cast<double>(grid.z.delta)};
          samples[(static_cast<std::size_t>(i) * ny + j) * nz + k] = orbitals.value(n, r);
        }
    set_spline_from_samples(*storage, n, samples.data());
  });
  return storage;
}

/// Convenience: random-coefficient table (bench path; values are irrelevant
/// to kernel timing, see CoefStorage::fill_random).
template <typename T>
std::shared_ptr<CoefStorage<T>> make_random_storage(const Grid3D<T>& grid, int num_splines,
                                                    std::uint64_t seed)
{
  auto storage = std::make_shared<CoefStorage<T>>(grid, num_splines);
  storage->fill_random(seed);
  return storage;
}

} // namespace mqc

#endif // MQC_CORE_SYNTHETIC_ORBITALS_H
