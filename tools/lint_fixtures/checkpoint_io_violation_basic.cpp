// Fixture: a driver writing checkpoint files directly (bypassing the
// src/qmc/checkpoint.* owner of the format) must be flagged.
// Expected: >= 1 [checkpoint-io] finding.
#include "qmc/checkpoint.h"

void snapshot_inline(const mqc::ckpt::Snapshot& snap)
{
  mqc::ckpt::write_snapshot("run.ckpt", snap, nullptr);
}
