// Dense row-major matrix with aligned storage (determinant substrate).
#ifndef MQC_DETERMINANT_MATRIX_H
#define MQC_DETERMINANT_MATRIX_H

#include <cassert>
#include <cstddef>

#include "common/aligned_allocator.h"

namespace mqc {

template <typename T>
class Matrix
{
public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, T(0))
  {
  }
  explicit Matrix(int n) : Matrix(n, n) {}

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  [[nodiscard]] T& operator()(int i, int j) noexcept
  {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  [[nodiscard]] const T& operator()(int i, int j) const noexcept
  {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  [[nodiscard]] T* row(int i) noexcept { return data_.data() + static_cast<std::size_t>(i) * cols_; }
  [[nodiscard]] const T* row(int i) const noexcept
  {
    return data_.data() + static_cast<std::size_t>(i) * cols_;
  }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  void fill(T value)
  {
    for (auto& v : data_)
      v = value;
  }

private:
  int rows_ = 0, cols_ = 0;
  aligned_vector<T> data_;
};

} // namespace mqc

#endif // MQC_DETERMINANT_MATRIX_H
