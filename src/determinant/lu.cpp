#include "determinant/lu.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace mqc {

bool lu_factor(Matrix<double>& a, std::vector<int>& piv)
{
  const int n = a.rows();
  assert(a.cols() == n);
  piv.assign(static_cast<std::size_t>(n), 0);
  for (int k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    int p = k;
    double pmax = std::abs(a(k, k));
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    piv[static_cast<std::size_t>(k)] = p;
    if (pmax == 0.0)
      return false;
    if (p != k)
      for (int j = 0; j < n; ++j)
        std::swap(a(k, j), a(p, j));
    const double dinv = 1.0 / a(k, k);
    for (int i = k + 1; i < n; ++i) {
      const double m = a(i, k) * dinv;
      a(i, k) = m;
      if (m != 0.0)
        for (int j = k + 1; j < n; ++j)
          a(i, j) -= m * a(k, j);
    }
  }
  return true;
}

void lu_logdet(const Matrix<double>& lu, const std::vector<int>& piv, double& log_det,
               double& sign)
{
  const int n = lu.rows();
  log_det = 0.0;
  sign = 1.0;
  for (int k = 0; k < n; ++k) {
    const double d = lu(k, k);
    log_det += std::log(std::abs(d));
    if (d < 0.0)
      sign = -sign;
    if (piv[static_cast<std::size_t>(k)] != k)
      sign = -sign;
  }
}

void lu_invert(Matrix<double>& a, const std::vector<int>& piv)
{
  const int n = a.rows();
  // Solve A X = I column by column using the LU factors in place; gather the
  // result in a scratch matrix, then copy back.
  Matrix<double> inv(n);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int col = 0; col < n; ++col) {
    // Apply the row permutation to the unit vector e_col.
    for (int i = 0; i < n; ++i)
      x[static_cast<std::size_t>(i)] = (i == col) ? 1.0 : 0.0;
    for (int k = 0; k < n; ++k) {
      const int p = piv[static_cast<std::size_t>(k)];
      if (p != k)
        std::swap(x[static_cast<std::size_t>(k)], x[static_cast<std::size_t>(p)]);
    }
    // Forward substitution (L has unit diagonal).
    for (int i = 1; i < n; ++i) {
      double s = x[static_cast<std::size_t>(i)];
      for (int j = 0; j < i; ++j)
        s -= a(i, j) * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] = s;
    }
    // Back substitution.
    for (int i = n - 1; i >= 0; --i) {
      double s = x[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < n; ++j)
        s -= a(i, j) * x[static_cast<std::size_t>(j)];
      x[static_cast<std::size_t>(i)] = s / a(i, i);
    }
    for (int i = 0; i < n; ++i)
      inv(i, col) = x[static_cast<std::size_t>(i)];
  }
  a = std::move(inv);
}

bool invert_matrix(Matrix<double>& a, double& log_det, double& sign)
{
  std::vector<int> piv;
  if (!lu_factor(a, piv))
    return false;
  lu_logdet(a, piv, log_det, sign);
  lu_invert(a, piv);
  return true;
}

Matrix<double> matmul(const Matrix<double>& a, const Matrix<double>& b)
{
  assert(a.cols() == b.rows());
  Matrix<double> c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0)
        continue;
      for (int j = 0; j < b.cols(); ++j)
        c(i, j) += aik * b(k, j);
    }
  return c;
}

} // namespace mqc
