// Deterministic random-number substrate.
//
// QMC is a Monte Carlo method: every walker consumes an independent random
// stream.  The engines are benchmarked on *random* positions ("to imitate the
// random access nature of QMC, each walker generates ns random positions").
// We use xoshiro256** seeded through splitmix64 — fast, tiny state, and every
// walker stream is reproducible from (global seed, walker id), which the test
// suite relies on for cross-layout equivalence checks.
#ifndef MQC_COMMON_RNG_H
#define MQC_COMMON_RNG_H

#include <array>
#include <cmath>
#include <cstdint>

namespace mqc {

/// splitmix64: used only to expand a small seed into xoshiro state.
class SplitMix64
{
public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept
  {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256
{
public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  /// Reseed from a single 64-bit value; distinct seeds give uncorrelated
  /// streams for practical purposes (state expanded through splitmix64).
  void reseed(std::uint64_t seed) noexcept
  {
    SplitMix64 sm(seed);
    for (auto& s : state_)
      s = sm.next();
    have_gauss_ = false;
  }

  /// Derive the canonical per-walker stream: seed mixed with the walker id.
  static Xoshiro256 for_stream(std::uint64_t seed, std::uint64_t stream) noexcept
  {
    SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    return Xoshiro256(sm.next());
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~static_cast<result_type>(0); }

  result_type operator()() noexcept
  {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// The complete resumable stream state: the xoshiro words plus the cached
  /// Box–Muller deviate.  gaussian() draws deviates in pairs and caches the
  /// second, so a stream interrupted between the two MUST carry the cache
  /// across a save/restore — dropping it would desynchronize every draw
  /// after the restore point (qmc/checkpoint.cpp round-trips this struct).
  struct State
  {
    std::array<std::uint64_t, 4> s{};
    bool have_gauss = false;
    double cached_gauss = 0.0;
  };

  [[nodiscard]] State state() const noexcept { return State{state_, have_gauss_, cached_gauss_}; }

  void set_state(const State& st) noexcept
  {
    state_ = st.s;
    have_gauss_ = st.have_gauss;
    cached_gauss_ = st.cached_gauss;
  }

  /// Derive an independent stream for a spawned walker (DMC birth path).
  /// The child is seeded from the next two raw draws of THIS stream, so it
  /// is a pure function of the parent's state at the split point, and the
  /// parent advances past those draws — parent and child never replay each
  /// other's sequence.  The parent's Box–Muller cache is not inherited: the
  /// child starts on a fresh gaussian phase.
  [[nodiscard]] Xoshiro256 split() noexcept
  {
    const std::uint64_t hi = (*this)();
    const std::uint64_t lo = (*this)();
    SplitMix64 sm(hi ^ (0x94d049bb133111ebULL * (lo | 1)));
    return Xoshiro256(sm.next());
  }

  /// Uniform double in [0,1) with 53 random bits.
  double uniform() noexcept { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (second deviate cached).
  double gaussian() noexcept
  {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u1 = uniform();
    // Guard log(0); uniform() can return exactly 0.
    while (u1 <= 0.0)
      u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    constexpr double two_pi = 6.283185307179586476925286766559;
    cached_gauss_ = r * std::sin(two_pi * u2);
    have_gauss_ = true;
    return r * std::cos(two_pi * u2);
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

  std::array<std::uint64_t, 4> state_{};
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

} // namespace mqc

#endif // MQC_COMMON_RNG_H
