// Small statistics helpers used by tests and the bench harness.
#ifndef MQC_COMMON_STATS_H
#define MQC_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace mqc {

/// Streaming accumulator (Welford) for mean / variance / extrema.
class RunningStats
{
public:
  void add(double x) noexcept
  {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept
  {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// |a-b| relative to max(|a|,|b|,scale); tolerant of values near zero.
inline double relative_error(double a, double b, double scale = 1.0) noexcept
{
  const double denom = std::max({std::abs(a), std::abs(b), scale});
  return std::abs(a - b) / denom;
}

} // namespace mqc

#endif // MQC_COMMON_STATS_H
