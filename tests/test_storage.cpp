// Tests for the 4D coefficient storage: padding/alignment guarantees, the
// periodic control-point scatter, tile splitting, and deterministic fills.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "core/bspline_ref.h"
#include "core/coef_storage.h"
#include "core/synthetic_orbitals.h"
#include "test_utils.h"

using namespace mqc;

TEST(Storage, PaddedStridesAndAlignment)
{
  const auto grid = Grid3D<float>::cube(5, 1.0f);
  CoefStorage<float> s(grid, 10); // pads to 16 for float
  EXPECT_EQ(s.num_splines(), 10);
  EXPECT_EQ(s.padded_splines(), 16u);
  EXPECT_EQ(s.stride_z(), 16u);
  EXPECT_EQ(s.stride_y(), 8u * 16u);
  EXPECT_EQ(s.stride_x(), 8u * 8u * 16u);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      for (int k = 0; k < 8; ++k)
        ASSERT_EQ(reinterpret_cast<std::uintptr_t>(s.row(i, j, k)) % kAlignment, 0u);
}

TEST(Storage, SizeBytesAccountsForPadding)
{
  const auto grid = Grid3D<double>::cube(4, 1.0);
  CoefStorage<double> s(grid, 3); // pads to 8 doubles
  EXPECT_EQ(s.size_bytes(), 7u * 7u * 7u * 8u * sizeof(double));
}

TEST(Storage, SetAndGetCoef)
{
  const auto grid = Grid3D<float>::cube(4, 1.0f);
  CoefStorage<float> s(grid, 4);
  s.set_coef(1, 2, 3, 2, 7.5f);
  EXPECT_FLOAT_EQ(s.coef(1, 2, 3, 2), 7.5f);
  EXPECT_FLOAT_EQ(s.coef(1, 2, 3, 1), 0.0f); // zero-initialized
}

// The periodic scatter must write a control point to *every* storage slot
// that aliases it: storage index m holds control index (m-1) mod n.
TEST(Storage, PeriodicControlPointAliasing)
{
  for (int n : {1, 2, 3, 5}) {
    const auto grid = Grid3D<double>::cube(n, 1.0);
    CoefStorage<double> s(grid, 1);
    // Write each control point a distinct value; verify all aliases.
    for (int ci = 0; ci < n; ++ci)
      for (int cj = 0; cj < n; ++cj)
        for (int ck = 0; ck < n; ++ck)
          s.set_control_point_periodic(ci, cj, ck, 0,
                                       100.0 * ci + 10.0 * cj + ck + 1.0);
    for (int i = 0; i < n + 3; ++i)
      for (int j = 0; j < n + 3; ++j)
        for (int k = 0; k < n + 3; ++k) {
          const int ci = ((i - 1) % n + n) % n;
          const int cj = ((j - 1) % n + n) % n;
          const int ck = ((k - 1) % n + n) % n;
          EXPECT_DOUBLE_EQ(s.coef(i, j, k, 0), 100.0 * ci + 10.0 * cj + ck + 1.0)
              << "n=" << n << " (" << i << ',' << j << ',' << k << ')';
        }
  }
}

TEST(Storage, FillRandomDeterministicAndBounded)
{
  const auto grid = Grid3D<float>::cube(6, 1.0f);
  CoefStorage<float> a(grid, 8), b(grid, 8);
  a.fill_random(99);
  b.fill_random(99);
  for (int i = 0; i < 9; ++i)
    for (int j = 0; j < 9; ++j)
      for (int k = 0; k < 9; ++k)
        for (int n = 0; n < 8; ++n) {
          ASSERT_FLOAT_EQ(a.coef(i, j, k, n), b.coef(i, j, k, n));
          ASSERT_GE(a.coef(i, j, k, n), -0.5f);
          ASSERT_LE(a.coef(i, j, k, n), 0.5f);
        }
  CoefStorage<float> c(grid, 8);
  c.fill_random(100);
  int diffs = 0;
  for (int n = 0; n < 8; ++n)
    diffs += (a.coef(2, 2, 2, n) != c.coef(2, 2, 2, n));
  EXPECT_GT(diffs, 0);
}

TEST(Storage, AssignSplineRangeExtractsTile)
{
  const auto grid = Grid3D<float>::cube(4, 1.0f);
  CoefStorage<float> full(grid, 48);
  full.fill_random(1);
  CoefStorage<float> tile(grid, 16);
  tile.assign_spline_range(full, 16, 16);
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 7; ++j)
      for (int k = 0; k < 7; ++k)
        for (int n = 0; n < 16; ++n)
          ASSERT_FLOAT_EQ(tile.coef(i, j, k, n), full.coef(i, j, k, 16 + n));
}

TEST(Storage, PaddingLanesStayZeroAfterBuild)
{
  const int ng = 5;
  const auto grid = Grid3D<float>::cube(ng, 1.0f);
  CoefStorage<float> s(grid, 3); // padded to 16
  std::vector<double> samples(static_cast<std::size_t>(ng) * ng * ng, 1.0);
  set_spline_from_samples(s, 0, samples.data());
  for (int i = 0; i < ng + 3; ++i)
    for (int j = 0; j < ng + 3; ++j)
      for (int k = 0; k < ng + 3; ++k)
        for (std::size_t n = 3; n < s.padded_splines(); ++n)
          ASSERT_FLOAT_EQ(s.row(i, j, k)[n], 0.0f);
}

// ---------------------------------------------------------------------------
// convert_storage / convert_grid: the one sanctioned precision-cast seam
// (mixed-precision storage narrowing, PR: SP tables with DP accumulation).
// ---------------------------------------------------------------------------

TEST(ConvertStorage, NarrowingCopiesEveryLogicalEntry)
{
  const auto grid = Grid3D<double>::cube(5, 1.0);
  CoefStorage<double> src(grid, 20); // pads to 24 doubles, 32 floats
  src.fill_random(42);
  const auto dst = convert_storage<float>(src);
  EXPECT_EQ(dst->num_splines(), src.num_splines());
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      for (int k = 0; k < 8; ++k)
        for (int n = 0; n < 20; ++n)
          ASSERT_EQ(dst->coef(i, j, k, n), static_cast<float>(src.coef(i, j, k, n)))
              << '(' << i << ',' << j << ',' << k << ',' << n << ')';
}

// float pads to 16 lanes, double to 8: at N=20 the padded tails differ in
// length (32 vs 24) and must stay at the constructor's zeros on both sides.
TEST(ConvertStorage, PaddingTailStaysZeroAcrossLaneMismatch)
{
  const auto grid = Grid3D<double>::cube(4, 1.0);
  CoefStorage<double> src(grid, 20);
  src.fill_random(7);
  const auto dst = convert_storage<float>(src);
  EXPECT_EQ(dst->padded_splines(), 32u);
  EXPECT_EQ(src.padded_splines(), 24u);
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 7; ++j)
      for (int k = 0; k < 7; ++k)
        for (std::size_t n = 20; n < dst->padded_splines(); ++n)
          ASSERT_EQ(dst->row(i, j, k)[n], 0.0f);
}

// Same-type conversion reconstructs the grid bit-for-bit (Grid1D recomputes
// delta from start/end/num exactly as the original constructor did) and
// round-tripping float->double->float is the identity (every float is
// exactly representable in double).
TEST(ConvertStorage, FloatRoundTripThroughDoubleIsIdentity)
{
  const auto grid = Grid3D<float>::cube(6, 1.0f);
  CoefStorage<float> src(grid, 12);
  src.fill_random(3);
  const auto wide = convert_storage<double>(src);
  const auto back = convert_storage<float>(*wide);
  EXPECT_EQ(back->grid().x.delta, src.grid().x.delta);
  EXPECT_EQ(back->grid().x.delta_inv, src.grid().x.delta_inv);
  for (int i = 0; i < 9; ++i)
    for (int j = 0; j < 9; ++j)
      for (int k = 0; k < 9; ++k)
        for (int n = 0; n < 12; ++n)
          ASSERT_EQ(back->coef(i, j, k, n), src.coef(i, j, k, n));
}

// A float table built directly from DP sources equals the convert_storage
// narrowing of the equivalent DP build: the driver's mixed engines may read
// the SAME float table the native-SP engines use.
TEST(ConvertStorage, DirectFloatBuildTracksNarrowedDoubleBuild)
{
  // A float-native build runs the whole spline solve in SP arithmetic, so it
  // is NOT bit-identical to the narrowed DP build — but both must land
  // within a few float ULPs of each other at the table's own scale.  (The
  // drivers share ONE narrowed-from-DP table between the SP-native and
  // mixed engines precisely because this gap is down in the noise.)
  const int ng = 12, n = 6;
  const auto pw = PlaneWaveOrbitals::make(n, Vec3<double>{1, 1, 1}, 3);
  const auto built_sp = build_planewave_storage(Grid3D<float>::cube(ng, 1.0f), pw);
  const auto built_dp = build_planewave_storage(Grid3D<double>::cube(ng, 1.0), pw);
  const auto narrowed = convert_storage<float>(*built_dp);
  double scale = 0.0;
  for (int i = 0; i < ng + 3; ++i)
    for (int j = 0; j < ng + 3; ++j)
      for (int k = 0; k < ng + 3; ++k)
        for (int s = 0; s < n; ++s)
          scale = std::max(scale, std::abs(static_cast<double>(narrowed->coef(i, j, k, s))));
  constexpr double kUlp = 1.1920928955078125e-7; // float epsilon
  for (int i = 0; i < ng + 3; ++i)
    for (int j = 0; j < ng + 3; ++j)
      for (int k = 0; k < ng + 3; ++k)
        for (int s = 0; s < n; ++s)
          ASSERT_LE(std::abs(static_cast<double>(built_sp->coef(i, j, k, s)) -
                             static_cast<double>(narrowed->coef(i, j, k, s))),
                    64.0 * kUlp * scale)
              << '(' << i << ',' << j << ',' << k << ',' << s << ')';
}

// ---------------------------------------------------------------------------
// CoefReplicaSet wide-master mode: every shard (including 0) narrows the DP
// master at replicate() time, on the calling thread.
// ---------------------------------------------------------------------------

TEST(CoefReplicaSetWide, EveryShardNarrowsIdentically)
{
  const auto grid = Grid3D<double>::cube(5, 1.0);
  auto wide = std::make_shared<CoefStorage<double>>(grid, 10);
  wide->fill_random(11);
  CoefReplicaSet<float> set(std::shared_ptr<const CoefStorage<double>>(wide), 3);
  EXPECT_TRUE(set.narrows());
  EXPECT_EQ(set.num_shards(), 3);
  const auto expected = convert_storage<float>(*wide);
  for (int s = 0; s < 3; ++s) {
    const auto rep = set.replicate(s);
    ASSERT_NE(rep, nullptr);
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        for (int k = 0; k < 8; ++k)
          for (int n = 0; n < 10; ++n)
            ASSERT_EQ(rep->coef(i, j, k, n), expected->coef(i, j, k, n)) << "shard " << s;
  }
}

TEST(CoefReplicaSetWide, ReplicateIsIdempotentAndBytesAccounted)
{
  const auto grid = Grid3D<double>::cube(4, 1.0);
  auto wide = std::make_shared<CoefStorage<double>>(grid, 16); // pads to 16 both ways
  wide->fill_random(5);
  CoefReplicaSet<float> set(std::shared_ptr<const CoefStorage<double>>(wide), 2);
  EXPECT_EQ(set.replica_bytes(0), 0u); // nothing materialized yet
  EXPECT_EQ(set.total_replica_bytes(), 0u);
  const auto first = set.replicate(0);
  EXPECT_EQ(set.replicate(0), first); // idempotent: same object back
  EXPECT_EQ(set.replica_bytes(0), first->size_bytes());
  EXPECT_EQ(set.replica_bytes(1), 0u);
  set.replicate(1);
  EXPECT_EQ(set.total_replica_bytes(), set.replica_bytes(0) + set.replica_bytes(1));
  // N=16 pads to 16 lanes in BOTH element types, so the narrowed replica is
  // exactly half the wide master's bytes — the mixed path's memory saving.
  EXPECT_EQ(set.replica_bytes(0), wide->size_bytes() / 2);
}

TEST(SyntheticOrbitals, KVectorsOrderedByShell)
{
  const auto set = PlaneWaveOrbitals::make(27, Vec3<double>{1, 1, 1});
  // Orbital 0 is the Gamma point (constant): zero gradient everywhere.
  const auto g = set.gradient(0, Vec3<double>{0.3, 0.4, 0.5});
  EXPECT_DOUBLE_EQ(norm2(g), 0.0);
  EXPECT_EQ(set.num_orbitals(), 27);
}

TEST(SyntheticOrbitals, LaplacianIsHessianTrace)
{
  const auto set = PlaneWaveOrbitals::make(10, Vec3<double>{2, 3, 4}, 5);
  for (int n = 0; n < 10; ++n) {
    const Vec3<double> r{0.7, 1.1, 2.9};
    double h[6];
    set.hessian(n, r, h);
    EXPECT_NEAR(set.laplacian(n, r), h[0] + h[3] + h[5], 1e-12);
  }
}

TEST(SyntheticOrbitals, GradientMatchesFiniteDifference)
{
  const auto set = PlaneWaveOrbitals::make(6, Vec3<double>{1.5, 1.5, 1.5}, 2);
  const double h = 1e-6;
  const Vec3<double> r{0.4, 0.9, 1.2};
  for (int n = 0; n < 6; ++n) {
    const auto g = set.gradient(n, r);
    const double fdx =
        (set.value(n, Vec3<double>{r.x + h, r.y, r.z}) - set.value(n, Vec3<double>{r.x - h, r.y, r.z})) /
        (2 * h);
    EXPECT_NEAR(g.x, fdx, 1e-6);
  }
}

TEST(SyntheticOrbitals, StorageBuilderMatchesAnalyticValues)
{
  const int ng = 20;
  const double L = 1.0;
  const auto grid = Grid3D<double>::cube(ng, L);
  const auto set = PlaneWaveOrbitals::make(4, Vec3<double>{L, L, L}, 3);
  const auto storage = build_planewave_storage(grid, set);
  BsplineRef<double> ref(*storage);
  Xoshiro256 rng(17);
  for (int s = 0; s < 40; ++s) {
    const double x = rng.uniform(0, L), y = rng.uniform(0, L), z = rng.uniform(0, L);
    const auto v = ref.evaluate_v(x, y, z);
    for (int n = 0; n < 4; ++n)
      EXPECT_NEAR(v[static_cast<std::size_t>(n)], set.value(n, Vec3<double>{x, y, z}), 5e-4);
  }
}
