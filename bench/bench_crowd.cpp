// Crowd driver sweep: crowd size x determinant delay rank, against the
// per-walker driver on the identical trajectory (same seeds, same walker
// population — the equivalence the test suite enforces bit-for-bit).
//
// The crowd is both the batching unit (one multi-position spline sweep per
// tile per electron move) and the threading unit (one crowd per thread), so
// on a fixed walker population crowd_size trades thread count against batch
// depth: crowd_size = 1 reproduces the per-walker schedule, crowd_size = Nw
// runs one thread with the deepest tile-resident batches.  delay_rank
// additionally swaps the per-move Sherman-Morrison determinant update for
// the delayed rank-k window (McDaniel et al.).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "common/threading.h"
#include "qmc/miniqmc_driver.h"
#include "bench_common.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  auto json = bench::JsonReporter::from_args(argc, argv, "crowd");
  const char* env = std::getenv("MQC_BENCH_SCALE");
  const bool full = env && std::string(env) == "full";

  MiniQMCConfig cfg;
  cfg.supercell = full ? std::array<int, 3>{4, 4, 1} : std::array<int, 3>{3, 3, 1};
  cfg.grid_size = full ? 48 : 32;
  cfg.steps = full ? 4 : 2;
  cfg.tile_size = 64;
  cfg.spo = SpoLayout::AoSoA;
  cfg.optimized_dt_jastrow = true;
  cfg.num_walkers = std::max(8, max_threads());

  // Best of three runs per configuration: section times are milliseconds and
  // shared-VM steal time can inflate any single run.
  auto best_run = [](MiniQMCConfig c) {
    MiniQMCResult best = run_miniqmc(c);
    for (int attempt = 1; attempt < 3; ++attempt) {
      auto r = run_miniqmc(c);
      if (r.seconds < best.seconds)
        best = std::move(r);
    }
    return best;
  };

  std::vector<int> crowd_sizes{1, 2, 4, cfg.num_walkers};
  crowd_sizes.erase(std::remove_if(crowd_sizes.begin(), crowd_sizes.end(),
                                   [&](int cs) { return cs > cfg.num_walkers; }),
                    crowd_sizes.end());
  crowd_sizes.erase(std::unique(crowd_sizes.begin(), crowd_sizes.end()), crowd_sizes.end());
  const std::vector<int> delay_ranks{0, 4, 8};

  print_banner(std::cout, "Crowd driver: crowd size x determinant delay rank");
  std::cout << "system: graphite " << cfg.supercell[0] << 'x' << cfg.supercell[1] << 'x'
            << cfg.supercell[2] << ", AoSoA tiles of " << cfg.tile_size << ", "
            << cfg.num_walkers << " walkers, " << cfg.steps << " steps\n"
            << "baseline per delay rank: the per-walker driver (one walker per thread)\n\n";

  TablePrinter tp({"delay k", "crowd size", "total (s)", "B-splines (s)", "speedup vs per-walker"});
  for (int k : delay_ranks) {
    MiniQMCConfig base_cfg = cfg;
    base_cfg.driver = DriverMode::PerWalker;
    base_cfg.delay_rank = k;
    const auto base = best_run(base_cfg);
    tp.add_row({TablePrinter::cell(k), "per-walker", TablePrinter::cell(base.seconds, 4),
                TablePrinter::cell(base.profile.seconds(kSectionBspline), 4),
                TablePrinter::cell(1.0, 2)});
    json.add("perwalker_delay" + std::to_string(k) + "_seconds", base.seconds, "s");
    for (int cs : crowd_sizes) {
      MiniQMCConfig ccfg = cfg;
      ccfg.driver = DriverMode::Crowd;
      ccfg.crowd_size = cs;
      ccfg.delay_rank = k;
      const auto crowd = best_run(ccfg);
      const double speedup = crowd.seconds > 0 ? base.seconds / crowd.seconds : 0.0;
      tp.add_row({TablePrinter::cell(k), TablePrinter::cell(cs),
                  TablePrinter::cell(crowd.seconds, 4),
                  TablePrinter::cell(crowd.profile.seconds(kSectionBspline), 4),
                  TablePrinter::cell(speedup, 2)});
      json.add("crowd" + std::to_string(cs) + "_delay" + std::to_string(k) + "_seconds",
               crowd.seconds, "s");
      json.add("crowd" + std::to_string(cs) + "_delay" + std::to_string(k) + "_speedup", speedup,
               "x");
    }
  }
  tp.print(std::cout);
  std::cout << "\nReading guide: larger crowds deepen the per-tile position batch (coefficient\n"
               "slices stay cache-resident across the crowd) at the cost of thread-level\n"
               "parallelism; on many-core hosts mid-size crowds win, on few-core hosts the\n"
               "deepest crowds do.  delay_rank amortizes inverse updates over k accepts —\n"
               "the clarity-first flush here is O(k N^2), so its win appears at larger N.\n";
  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
