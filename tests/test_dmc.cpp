// DMC branching driver (qmc/dmc_driver.h).
//
// Two contracts under test.  (1) The replay oracle: with cfg.dmc_replay set
// the driver pins every branching multiplicity to 1 and runs the unmodified
// crowd-sweep body, so a DMC run of G generations x S steps is bit-for-bit
// a VMC crowd run of G*S steps — same per-walker accept counts, bit-
// identical log dets — across spline layouts, delay ranks, crowd sizes,
// partition shapes and shard counts.  (2) Full DMC (drift + weights +
// birth/death) is a deterministic function of (config, seed): reruns and
// every crowd/shard/partition decomposition reproduce the identical
// population trace, birth/death counters, trial energy bits and per-walker
// fingerprints, and a run killed at a generation boundary resumes from its
// snapshot bit-for-bit — including the cumulative branching provenance.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qmc/dmc_driver.h"
#include "qmc/miniqmc_driver.h"

using namespace mqc;

namespace {

/// RAII env var override (partition/shard-shape tests).
struct ScopedEnv
{
  ScopedEnv(const char* name, const char* value) : name_(name)
  {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_)
      saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv()
  {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

/// Temp checkpoint path that scrubs the whole rotation set on destruction.
struct ScopedCkpt
{
  explicit ScopedCkpt(const std::string& tag)
      : path((std::filesystem::temp_directory_path() / ("mqc_dmc_test_" + tag + ".ckpt"))
                 .string())
  {
    cleanup();
  }
  ~ScopedCkpt() { cleanup(); }
  void cleanup() const
  {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

MiniQMCConfig base_cfg(SpoLayout spo, bool optimized, int delay)
{
  MiniQMCConfig cfg;
  cfg.supercell = {1, 1, 1};
  cfg.grid_size = 12;
  cfg.num_splines = 16; // 32 electrons
  cfg.num_walkers = 4;
  cfg.quadrature_points = 2;
  cfg.spo = spo;
  cfg.optimized_dt_jastrow = optimized;
  cfg.delay_rank = delay;
  return cfg;
}

MiniQMCConfig dmc_cfg(SpoLayout spo, bool optimized, int delay)
{
  MiniQMCConfig cfg = base_cfg(spo, optimized, delay);
  cfg.driver = DriverMode::DMC;
  cfg.dmc_generations = 4;
  cfg.dmc_gen_steps = 1;
  // A tau large enough that the weight exponent actually moves weights
  // through the window on this synthetic system (the local-energy proxy
  // varies by O(0.1) per electron between configurations).
  cfg.dmc_tau = 0.4;
  return cfg;
}

/// Bitwise trajectory comparison: accepts exactly, log-dets as raw bits so a
/// 1-ulp divergence cannot hide behind EXPECT_DOUBLE_EQ.
void expect_same_trajectory(const MiniQMCResult& ref, const MiniQMCResult& got,
                            const std::string& what)
{
  EXPECT_EQ(ref.walker_accepts, got.walker_accepts) << what;
  ASSERT_EQ(ref.walker_log_det.size(), got.walker_log_det.size()) << what;
  for (std::size_t w = 0; w < ref.walker_log_det.size(); ++w) {
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &ref.walker_log_det[w], sizeof a);
    std::memcpy(&b, &got.walker_log_det[w], sizeof b);
    EXPECT_EQ(a, b) << what << ": walker " << w << " log-det bits differ";
  }
}

/// Full-DMC run comparison: trajectory fingerprints plus the branching
/// provenance (population trace, counters, trial energy as raw bits).
void expect_same_dmc_run(const MiniQMCResult& ref, const MiniQMCResult& got,
                         const std::string& what)
{
  expect_same_trajectory(ref, got, what);
  EXPECT_EQ(ref.num_walkers, got.num_walkers) << what;
  EXPECT_EQ(ref.dmc_population, got.dmc_population) << what;
  EXPECT_EQ(ref.dmc_births, got.dmc_births) << what;
  EXPECT_EQ(ref.dmc_deaths, got.dmc_deaths) << what;
  std::uint64_t a = 0, b = 0;
  std::memcpy(&a, &ref.dmc_trial_energy, sizeof a);
  std::memcpy(&b, &got.dmc_trial_energy, sizeof b);
  EXPECT_EQ(a, b) << what << ": trial energy bits differ";
}

} // namespace

// The oracle: fixed-population replay IS a VMC crowd run.  G generations of
// S steps against a crowd run of G*S steps, bit for bit, for every layout,
// delay rank, crowd size, partition shape and shard count — generation
// chunking and the DMC scaffolding must be trajectory-neutral.
TEST(DmcDriver, ReplayModeMatchesVmcCrowdBitForBit)
{
  struct LayoutCase
  {
    SpoLayout spo;
    bool optimized;
    const char* name;
  };
  const LayoutCase layouts[] = {{SpoLayout::AoS, false, "AoS"},
                                {SpoLayout::SoA, true, "SoA"},
                                {SpoLayout::AoSoA, true, "AoSoA"}};
  const char* partitions[] = {"1x2", "2x1"};

  for (const LayoutCase& lc : layouts) {
    for (int delay : {1, 4}) {
      for (const char* part : partitions) {
        ScopedEnv penv("MQC_PARTITION", part);
        ScopedEnv senv("MQC_SHARDS", "2");

        MiniQMCConfig vmc = base_cfg(lc.spo, lc.optimized, delay);
        vmc.driver = DriverMode::Crowd;
        vmc.steps = 6;
        vmc.crowd_size = 3; // does not divide nw = 4
        const MiniQMCResult ref = run_miniqmc(vmc);

        for (int gen_steps : {1, 2, 3}) {
          MiniQMCConfig dmc = base_cfg(lc.spo, lc.optimized, delay);
          dmc.driver = DriverMode::DMC;
          dmc.dmc_replay = true;
          dmc.dmc_generations = 6 / gen_steps;
          dmc.dmc_gen_steps = gen_steps;
          dmc.crowd_size = 3;
          const MiniQMCResult got = run_miniqmc(dmc);
          const std::string what = std::string(lc.name) + " delay=" + std::to_string(delay) +
                                   " part=" + part + " gen_steps=" + std::to_string(gen_steps);
          expect_same_trajectory(ref, got, what);
          EXPECT_EQ(got.num_walkers, ref.num_walkers) << what;
          EXPECT_EQ(got.dmc_births, 0u) << what;
          EXPECT_EQ(got.dmc_deaths, 0u) << what;
          for (int pop : got.dmc_population)
            EXPECT_EQ(pop, vmc.num_walkers) << what;
        }
      }
    }
  }
}

// Full DMC is a deterministic function of (config, seed): a rerun reproduces
// the identical population trace, counters, trial energy and fingerprints.
TEST(DmcDriver, FullDmcIsSeedDeterministic)
{
  for (SpoLayout spo : {SpoLayout::AoS, SpoLayout::SoA}) {
    MiniQMCConfig cfg = dmc_cfg(spo, spo != SpoLayout::AoS, 4);
    const MiniQMCResult a = run_miniqmc(cfg);
    const MiniQMCResult b = run_miniqmc(cfg);
    expect_same_dmc_run(a, b, spo == SpoLayout::AoS ? "AoS rerun" : "SoA rerun");
    ASSERT_EQ(static_cast<int>(a.dmc_population.size()), cfg.dmc_generations);
  }
}

// The branching dynamics must actually branch on this synthetic system —
// otherwise every "dynamic population" assertion above is vacuous.
TEST(DmcDriver, PopulationActuallyFluctuates)
{
  MiniQMCConfig cfg = dmc_cfg(SpoLayout::SoA, true, 4);
  cfg.dmc_generations = 8;
  cfg.dmc_tau = 0.8; // aggressive: push weights through the window fast
  cfg.dmc_weight_min = 0.05;
  cfg.dmc_weight_max = 8.0;
  const MiniQMCResult r = run_miniqmc(cfg);
  EXPECT_GT(r.dmc_births + r.dmc_deaths, 0u)
      << "no birth/death events: branching is not exercised";
  // The population ceiling must hold even under aggressive branching.
  const int target = cfg.num_walkers;
  for (int pop : r.dmc_population) {
    EXPECT_GE(pop, 1);
    EXPECT_LE(pop, 4 * target);
  }
  // Fingerprints track the FINAL population, not the initial one.
  EXPECT_EQ(r.walker_accepts.size(), static_cast<std::size_t>(r.dmc_population.back()));
}

// The branch step runs serially in walker-id order on the walkers' own
// streams, so the whole run — trace, counters, fingerprints — must be
// invariant under every crowd/shard/partition decomposition.
TEST(DmcDriver, FullDmcIsDecompositionNeutral)
{
  MiniQMCConfig cfg = dmc_cfg(SpoLayout::AoSoA, true, 4);
  MiniQMCResult ref;
  {
    ScopedEnv senv("MQC_SHARDS", "1");
    ScopedEnv penv("MQC_PARTITION", "1x2");
    ref = run_miniqmc(cfg);
  }
  {
    ScopedEnv senv("MQC_SHARDS", "2");
    ScopedEnv penv("MQC_PARTITION", "2x1");
    MiniQMCConfig c2 = cfg;
    c2.crowd_size = 2;
    const MiniQMCResult got = run_miniqmc(c2);
    EXPECT_EQ(got.dmc_shards_used, 2);
    expect_same_dmc_run(ref, got, "2 shards / 2x1 / crowd_size 2");
  }
  {
    ScopedEnv senv("MQC_SHARDS", "3");
    ScopedEnv penv("MQC_PARTITION", "1x1");
    MiniQMCConfig c3 = cfg;
    c3.crowd_size = 1;
    expect_same_dmc_run(ref, run_miniqmc(c3), "3 shards / serial / crowd_size 1");
  }
}

// Mixed precision under branching: a Mixed full-DMC run is still a
// deterministic function of (config, seed) — population trace, counters,
// trial energy bits, fingerprints — and still invariant under every
// crowd/shard/partition decomposition, because the mixed engines are
// deterministic per evaluation and everything downstream is unchanged.
TEST(DmcDriver, MixedFullDmcIsSeedDeterministicAndSurfaced)
{
  for (SpoLayout spo : {SpoLayout::SoA, SpoLayout::AoSoA}) {
    MiniQMCConfig cfg = dmc_cfg(spo, true, 4);
    cfg.precision_path = PrecisionPath::Mixed;
    const MiniQMCResult a = run_miniqmc(cfg);
    const MiniQMCResult b = run_miniqmc(cfg);
    EXPECT_EQ(a.precision_path, PrecisionPath::Mixed);
    expect_same_dmc_run(a, b, spo == SpoLayout::SoA ? "mixed SoA rerun" : "mixed AoSoA rerun");
    ASSERT_EQ(static_cast<int>(a.dmc_population.size()), cfg.dmc_generations);
  }
  // AoS has no mixed variant: the branching driver surfaces the resolution.
  MiniQMCConfig acfg = dmc_cfg(SpoLayout::AoS, false, 4);
  acfg.precision_path = PrecisionPath::Mixed;
  EXPECT_EQ(run_miniqmc(acfg).precision_path, PrecisionPath::Native);
}

TEST(DmcDriver, MixedFullDmcIsDecompositionNeutral)
{
  MiniQMCConfig cfg = dmc_cfg(SpoLayout::AoSoA, true, 4);
  cfg.precision_path = PrecisionPath::Mixed;
  MiniQMCResult ref;
  {
    ScopedEnv senv("MQC_SHARDS", "1");
    ScopedEnv penv("MQC_PARTITION", "1x2");
    ref = run_miniqmc(cfg);
  }
  EXPECT_EQ(ref.precision_path, PrecisionPath::Mixed);
  {
    ScopedEnv senv("MQC_SHARDS", "2");
    ScopedEnv penv("MQC_PARTITION", "2x1");
    MiniQMCConfig c2 = cfg;
    c2.crowd_size = 2;
    const MiniQMCResult got = run_miniqmc(c2);
    EXPECT_EQ(got.dmc_shards_used, 2);
    expect_same_dmc_run(ref, got, "mixed: 2 shards / 2x1 / crowd_size 2");
  }
  {
    ScopedEnv senv("MQC_SHARDS", "3");
    ScopedEnv penv("MQC_PARTITION", "1x1");
    MiniQMCConfig c3 = cfg;
    c3.crowd_size = 1;
    expect_same_dmc_run(ref, run_miniqmc(c3), "mixed: 3 shards / serial / crowd_size 1");
  }
}

// Crash consistency for dynamic populations: snapshot at a generation
// boundary mid-run, resume, and land bit-for-bit on the uninterrupted run —
// population trace tail, cumulative birth/death counters, trial energy and
// all per-walker fingerprints.
TEST(DmcDriver, CheckpointResumeIsBitForBit)
{
  for (int delay : {1, 4}) {
    MiniQMCConfig cfg = dmc_cfg(SpoLayout::SoA, true, delay);
    cfg.dmc_generations = 6;
    const std::string tag = "resume_d" + std::to_string(delay);
    ScopedCkpt ck(tag);

    const MiniQMCResult ref = run_miniqmc(cfg);

    MiniQMCConfig part = cfg;
    part.dmc_generations = 3;
    part.checkpoint_path = ck.path;
    part.checkpoint_interval = 1; // gen_steps = 1: every generation boundary
    const MiniQMCResult first = run_miniqmc(part);
    EXPECT_GE(first.checkpoints_written, 1) << tag;

    MiniQMCConfig rest = cfg;
    rest.checkpoint_path = ck.path;
    rest.resume = true;
    const MiniQMCResult got = run_miniqmc(rest);
    EXPECT_EQ(got.resumed_from_step, 3) << tag << ": " << got.resume_error;
    EXPECT_FALSE(got.resume_fallback_used) << tag;

    expect_same_trajectory(ref, got, tag);
    EXPECT_EQ(ref.num_walkers, got.num_walkers) << tag;
    EXPECT_EQ(ref.dmc_births, got.dmc_births) << tag;
    EXPECT_EQ(ref.dmc_deaths, got.dmc_deaths) << tag;
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &ref.dmc_trial_energy, sizeof a);
    std::memcpy(&b, &got.dmc_trial_energy, sizeof b);
    EXPECT_EQ(a, b) << tag << ": trial energy bits differ";
    // The resumed trace covers generations 3..6; it must equal the tail of
    // the uninterrupted trace.
    ASSERT_EQ(got.dmc_population.size(), 3u) << tag;
    ASSERT_EQ(ref.dmc_population.size(), 6u) << tag;
    for (std::size_t g = 0; g < 3; ++g)
      EXPECT_EQ(got.dmc_population[g], ref.dmc_population[g + 3]) << tag << " gen " << g + 3;
  }
}

// The DMC branching knobs join the config hash: a VMC snapshot must never
// resume into a DMC run (or vice versa), and the rejection surfaces the
// config-hash detail instead of silently restarting on the wrong provenance.
TEST(DmcDriver, VmcSnapshotCannotResumeIntoDmc)
{
  ScopedCkpt ck("vmc_cross");
  MiniQMCConfig vmc = base_cfg(SpoLayout::SoA, true, 4);
  vmc.driver = DriverMode::Crowd;
  vmc.steps = 4;
  vmc.checkpoint_path = ck.path;
  vmc.checkpoint_interval = 2;
  const MiniQMCResult wrote = run_miniqmc(vmc);
  ASSERT_GE(wrote.checkpoints_written, 1);

  MiniQMCConfig dmc = dmc_cfg(SpoLayout::SoA, true, 4);
  dmc.checkpoint_path = ck.path;
  dmc.resume = true;
  const MiniQMCResult got = run_miniqmc(dmc);
  EXPECT_EQ(got.resumed_from_step, -1) << "VMC snapshot must not resume a DMC run";
  EXPECT_FALSE(got.resume_error.empty());
  EXPECT_NE(got.resume_error.find("config"), std::string::npos) << got.resume_error;
}

// Replay mode and full DMC also hash differently: branching knobs ARE the
// trajectory, so a replay snapshot must not seed a branching run.
TEST(DmcDriver, ReplaySnapshotCannotResumeFullDmc)
{
  ScopedCkpt ck("replay_cross");
  MiniQMCConfig rep = dmc_cfg(SpoLayout::SoA, true, 4);
  rep.dmc_replay = true;
  rep.checkpoint_path = ck.path;
  rep.checkpoint_interval = 1;
  const MiniQMCResult wrote = run_miniqmc(rep);
  ASSERT_GE(wrote.checkpoints_written, 1);

  MiniQMCConfig full = dmc_cfg(SpoLayout::SoA, true, 4);
  full.checkpoint_path = ck.path;
  full.resume = true;
  const MiniQMCResult got = run_miniqmc(full);
  EXPECT_EQ(got.resumed_from_step, -1);
  EXPECT_FALSE(got.resume_error.empty());
}
