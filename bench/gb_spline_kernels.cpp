// google-benchmark microbenchmarks for the B-spline kernels: per-call
// latency of each engine/kernel pair at a few representative sizes.
// Complements the figure benches with statistically managed timings.
#include <benchmark/benchmark.h>

#include "core/bspline_aos.h"
#include "core/bspline_soa.h"
#include "core/multi_bspline.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"

namespace {

using namespace mqc;

constexpr int kGrid = 24;

std::shared_ptr<CoefStorage<float>> storage_for(int n)
{
  static std::map<int, std::shared_ptr<CoefStorage<float>>> cache;
  auto& slot = cache[n];
  if (!slot)
    slot = make_random_storage<float>(Grid3D<float>::cube(kGrid, 1.0f), n,
                                      55 + static_cast<std::uint64_t>(n));
  return slot;
}

void positions(benchmark::State& state, float& x, float& y, float& z, Xoshiro256& rng)
{
  (void)state;
  x = static_cast<float>(rng.uniform());
  y = static_cast<float>(rng.uniform());
  z = static_cast<float>(rng.uniform());
}

void BM_VGH_AoS(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  auto coefs = storage_for(n);
  BsplineAoS<float> engine(coefs);
  WalkerAoS<float> w(engine.padded_splines());
  Xoshiro256 rng(1);
  float x, y, z;
  for (auto _ : state) {
    positions(state, x, y, z, rng);
    engine.evaluate_vgh(x, y, z, w.v.data(), w.g.data(), w.h.data());
    benchmark::DoNotOptimize(w.v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_VGH_SoA(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  auto coefs = storage_for(n);
  BsplineSoA<float> engine(coefs);
  WalkerSoA<float> w(engine.out_stride());
  Xoshiro256 rng(1);
  float x, y, z;
  for (auto _ : state) {
    positions(state, x, y, z, rng);
    engine.evaluate_vgh(x, y, z, w.v.data(), w.g.data(), w.h.data());
    benchmark::DoNotOptimize(w.v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_VGH_AoSoA(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  auto coefs = storage_for(n);
  MultiBspline<float> engine(*coefs, nb);
  WalkerSoA<float> w(engine.out_stride());
  Xoshiro256 rng(1);
  float x, y, z;
  for (auto _ : state) {
    positions(state, x, y, z, rng);
    engine.evaluate_vgh(x, y, z, w.v.data(), w.g.data(), w.h.data(), w.stride);
    benchmark::DoNotOptimize(w.v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_VGL_SoA(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  auto coefs = storage_for(n);
  BsplineSoA<float> engine(coefs);
  WalkerSoA<float> w(engine.out_stride());
  Xoshiro256 rng(1);
  float x, y, z;
  for (auto _ : state) {
    positions(state, x, y, z, rng);
    engine.evaluate_vgl(x, y, z, w.v.data(), w.g.data(), w.l.data());
    benchmark::DoNotOptimize(w.v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_V_SoA(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  auto coefs = storage_for(n);
  BsplineSoA<float> engine(coefs);
  WalkerSoA<float> w(engine.out_stride());
  Xoshiro256 rng(1);
  float x, y, z;
  for (auto _ : state) {
    positions(state, x, y, z, rng);
    engine.evaluate_v(x, y, z, w.v.data());
    benchmark::DoNotOptimize(w.v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

} // namespace

BENCHMARK(BM_VGH_AoS)->Arg(128)->Arg(512);
BENCHMARK(BM_VGH_SoA)->Arg(128)->Arg(512);
BENCHMARK(BM_VGH_AoSoA)->Args({512, 64})->Args({512, 128});
BENCHMARK(BM_VGL_SoA)->Arg(128)->Arg(512);
BENCHMARK(BM_V_SoA)->Arg(128)->Arg(512);

BENCHMARK_MAIN();
