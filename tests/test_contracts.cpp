// Death tests for the MQC_CONTRACTS debug-contract layer (common/contracts.h
// and the seam checks in common/threading.h / core/orbital_set.h).  Each
// abort path is exercised once: the diagnostic must fire, name the violated
// contract, and kill the process.  In a build without MQC_CONTRACTS the
// whole layer compiles to nothing, so every test skips — the suite then only
// documents what the Debug+contracts CI configuration enforces.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/threading.h"
#include "core/multi_bspline.h"
#include "core/orbital_set.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"

using namespace mqc;

#ifndef MQC_CONTRACTS

TEST(Contracts, LayerDisabledInThisBuild)
{
  EXPECT_FALSE(contracts_enabled);
  GTEST_SKIP() << "configure with -DMQC_CONTRACTS=ON to exercise the abort paths";
}

#else

namespace {

// OpenMP threads exist in this process (team_for tests, facade sweeps), so
// the fork-based "fast" death-test style is unsafe; re-execute instead.
struct ThreadsafeDeathStyle
{
  ThreadsafeDeathStyle() { ::testing::FLAGS_gtest_death_test_style = "threadsafe"; }
} const threadsafe_style;

/// Small AoSoA engine + one-walker request, the minimum to reach the facade's
/// request validation.  N = 32 floats -> padded = 32, tiles {16, 16}.
struct ContractFixture
{
  static constexpr int kSplines = 32;
  std::shared_ptr<CoefStorage<float>> coefs;
  MultiBspline<float> engine;
  std::size_t stride;
  std::vector<Vec3<float>> positions;
  std::vector<std::unique_ptr<WalkerSoA<float>>> walkers;
  std::vector<float*> v, g, lh;

  explicit ContractFixture(int count = 1)
      : coefs(make_random_storage<float>(Grid3D<float>::cube(8, 1.0f), kSplines, 99)),
        engine(*coefs, 16), stride(engine.padded_splines())
  {
    Xoshiro256 rng(17);
    for (int p = 0; p < count; ++p) {
      positions.push_back(Vec3<float>{static_cast<float>(rng.uniform()),
                                      static_cast<float>(rng.uniform()),
                                      static_cast<float>(rng.uniform())});
      walkers.push_back(std::make_unique<WalkerSoA<float>>(stride));
      v.push_back(walkers.back()->v.data());
      g.push_back(walkers.back()->g.data());
      lh.push_back(walkers.back()->l.data());
    }
  }

  [[nodiscard]] OrbitalEvalRequest<float> request(DerivLevel deriv)
  {
    OrbitalEvalRequest<float> rq;
    rq.deriv = deriv;
    rq.positions = positions.data();
    rq.count = static_cast<int>(positions.size());
    rq.v = v.data();
    rq.g = g.data();
    rq.lh = lh.data();
    rq.stride = stride;
    return rq;
  }
};

} // namespace

TEST(ContractsDeathTest, FailureAbortsWithDiagnostic)
{
  EXPECT_TRUE(contracts_enabled);
  EXPECT_DEATH(mqc_contract(false, "probe value %d", 41), "mqc contract violation");
  EXPECT_DEATH(mqc_contract(false, "probe value %d", 41), "probe value 41");
}

TEST(ContractsDeathTest, TeamHandleResolvedOutsideOwningRegionAborts)
{
  // The real misuse: a driver binds a walker's inner team inside its outer
  // region, the region closes, and stale state resolves the handle later.
  TeamHandle stale = TeamHandle::serial();
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    stale = TeamHandle::of(2).bound_to_current_region();
  }
  EXPECT_DEATH(static_cast<void>(stale.resolve()), "resolved outside its owning region");
}

TEST(ContractsDeathTest, BoundTeamHandleResolvesFineInItsOwnRegion)
{
  int resolved = -1;
#pragma omp parallel num_threads(2)
  {
#pragma omp single
    resolved = TeamHandle::of(2).bound_to_current_region().resolve();
  }
  EXPECT_EQ(resolved, 2);
  // Unbound handles carry no region ownership and never trip the check.
  EXPECT_EQ(TeamHandle::of(3).resolve(), 3);
}

TEST(ContractsDeathTest, OrbitalResourceReentryAborts)
{
  ContractFixture fx;
  OrbitalResource<float> res;
  auto rq = fx.request(DerivLevel::V);
  OrbitalSet<float> set(fx.engine);
  set.evaluate(rq, res); // sane call: the guard releases the resource
  EXPECT_FALSE(res.contract_live);
  res.contract_live = true; // simulate an enclosing evaluation still running
  EXPECT_DEATH(set.evaluate(rq, res), "OrbitalResource re-entered");
}

TEST(ContractsDeathTest, NullOutputSlotAborts)
{
  ContractFixture fx;
  OrbitalResource<float> res;
  auto rq = fx.request(DerivLevel::V);
  fx.v[0] = nullptr;
  EXPECT_DEATH(OrbitalSet<float>(fx.engine).evaluate(rq, res), "value slot v\\[0\\] is null");
}

TEST(ContractsDeathTest, UnderPaddedOrMisalignedStrideAborts)
{
  ContractFixture fx;
  OrbitalResource<float> res;
  auto rq = fx.request(DerivLevel::VGL);
  rq.stride = fx.stride - 1; // below padded_splines and not lane-aligned
  EXPECT_DEATH(OrbitalSet<float>(fx.engine).evaluate(rq, res), "violates the engine contract");
}

TEST(ContractsDeathTest, OverlappingValueSlotsAbort)
{
  ContractFixture fx(2);
  OrbitalResource<float> res;
  auto rq = fx.request(DerivLevel::V);
  fx.v[1] = fx.v[0] + 1; // second walker writes into the first one's slot
  EXPECT_DEATH(OrbitalSet<float>(fx.engine).evaluate(rq, res), "overlap");
}

TEST(ContractsDeathTest, DisjointSlotsPassTheOverlapCheck)
{
  ContractFixture fx(2);
  OrbitalResource<float> res;
  auto rq = fx.request(DerivLevel::VGL);
  OrbitalSet<float>(fx.engine).evaluate(rq, res); // must not abort
  SUCCEED();
}

#endif // MQC_CONTRACTS
