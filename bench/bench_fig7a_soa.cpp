// Figure 7(a): VGH throughput (orbital evaluations/second, higher is better)
// before and after the AoS->SoA output-layout transformation, across problem
// sizes N.  The paper's signature: 2-4x speedups for small/medium N that
// fade as N grows and the output working set falls out of cache (the gap
// tiling closes in Fig. 7(b)).
#include <iostream>

#include "common/table.h"
#include "bench_common.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();
  auto json = JsonReporter::from_args(argc, argv, "fig7a_soa");

  print_banner(std::cout, "Figure 7(a): VGH throughput, AoS vs SoA (grid " +
                              std::to_string(scale.grid) + "^3)");
  TablePrinter tp({"N", "T_AoS (Meval/s)", "T_SoA (Meval/s)", "speedup"});
  for (int n : scale.n_sweep) {
    const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
    auto coefs = make_random_storage<float>(grid, n, 7000 + static_cast<std::uint64_t>(n));
    const double t_aos =
        measure_throughput(Layout::AoS, Kernel::VGH, *coefs, n, scale.ns, scale.min_seconds);
    const double t_soa =
        measure_throughput(Layout::SoA, Kernel::VGH, *coefs, n, scale.ns, scale.min_seconds);
    tp.add_row({TablePrinter::cell(n), TablePrinter::cell(t_aos / 1e6, 2),
                TablePrinter::cell(t_soa / 1e6, 2), TablePrinter::cell(t_soa / t_aos, 2)});
    json.add("vgh_aos_n" + std::to_string(n), t_aos, "eval/s");
    json.add("vgh_soa_n" + std::to_string(n), t_soa, "eval/s");
  }
  tp.print(std::cout);
  std::cout << "\nShape check (paper): SoA > AoS with the largest gains at small/medium N;\n"
               "the advantage shrinks as N grows beyond cache capacity.\n";
  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
