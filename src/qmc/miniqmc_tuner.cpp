#include "qmc/miniqmc_tuner.h"

#include <algorithm>

#include "common/threading.h"
#include "common/timer.h"
#include "qmc/miniqmc_context.h"

namespace mqc {

std::string miniqmc_wisdom_key(int num_orbitals, int grid_size, int num_walkers)
{
  return Wisdom::make_key_v2("miniqmc", "float", num_orbitals, grid_size, grid_size, grid_size,
                             num_walkers);
}

namespace {

/// Shared measurement policy of the driver sweeps: re-run one candidate
/// until at least @p min_seconds of measurement accumulate (capped), score
/// the fastest run — a single probe is milliseconds at tuning scale, and
/// one shared-host scheduling hiccup must not crown the wrong candidate in
/// a persisted wisdom file.
double best_probe_seconds(const MiniQMCConfig& probe, double min_seconds)
{
  double best = 0.0, spent = 0.0;
  int reps = 0;
  do {
    const double sec = run_miniqmc(probe).seconds;
    spent += sec;
    if (reps == 0 || sec < best)
      best = sec;
    ++reps;
  } while (spent < min_seconds && reps < 16);
  return best;
}

} // namespace

CrowdTuneResult tune_crowd_size(const MiniQMCConfig& cfg, std::vector<int> candidates,
                                double min_seconds)
{
  // Resolve the walker population exactly as the driver does so candidate
  // clamping matches what the sweep will actually run.
  MiniQMCConfig probe = cfg;
  probe.driver = DriverMode::Crowd;
  probe.wisdom = nullptr; // tuning must measure the candidates, not reuse old wisdom
  const int nw = probe.num_walkers > 0 ? probe.num_walkers : max_threads();
  probe.num_walkers = nw;
  if (candidates.empty())
    candidates = default_block_candidates(nw);

  CrowdTuneResult result;
  for (int cs : candidates) {
    if (cs > nw)
      continue;
    probe.crowd_size = cs;
    const double best = best_probe_seconds(probe, min_seconds);
    result.crowd_sizes.push_back(cs);
    result.seconds.push_back(best);
    if (result.best_crowd_size == 0 || best < result.best_seconds) {
      result.best_crowd_size = cs;
      result.best_seconds = best;
    }
  }
  return result;
}

InnerTuneResult tune_inner_threads(const MiniQMCConfig& cfg, std::vector<int> candidates,
                                   double min_seconds)
{
  MiniQMCConfig probe = cfg;
  probe.driver = DriverMode::Crowd;
  probe.wisdom = nullptr; // measure the candidates, not stale wisdom
  const int nw = probe.num_walkers > 0 ? probe.num_walkers : max_threads();
  probe.num_walkers = nw;
  if (candidates.empty()) {
    // Threads the machine has left per crowd once the outer split is fixed:
    // sweep 1 (flat), then powers of two up to that budget.
    const int crowd_size =
        probe.crowd_size > 0 ? std::min(probe.crowd_size, nw) : nw;
    const int num_crowds = (nw + crowd_size - 1) / crowd_size;
    const int budget = std::max(1, max_threads() / num_crowds);
    for (int i = 1; i <= budget; i *= 2)
      candidates.push_back(i);
    if (candidates.back() != budget)
      candidates.push_back(budget);
  }

  InnerTuneResult result;
  for (int it : candidates) {
    probe.inner_threads = it;
    const double best = best_probe_seconds(probe, min_seconds);
    result.inner_sizes.push_back(it);
    result.seconds.push_back(best);
    if (result.inner_sizes.size() == 1 || best < result.best_seconds) {
      result.best_inner = it;
      result.best_seconds = best;
    }
  }
  return result;
}

Wisdom::Entry tune_miniqmc(Wisdom& wisdom, const MiniQMCConfig& cfg, double min_seconds)
{
  // The driver's own coefficient problem: same orbital count, grid, walker
  // population, and precision the sweep will use (detail::MiniQMCSystem is
  // the single source of truth for that mapping).
  const detail::MiniQMCSystem sys(cfg);

  Wisdom::Entry entry;
  // Stamp the precision family the knobs are measured under (the system's
  // RESOLVED path, after the AoS-has-no-mixed-variant fallback) — consumers
  // refuse to apply an entry tuned for the other family.
  entry.precision = sys.precision == PrecisionPath::Mixed ? 1 : 0;
  const auto tiles = default_tile_candidates(sys.norb, static_cast<int>(simd_lanes<float>));
  const auto blocks = default_block_candidates(sys.nw);
  const auto joint = tune_tile_block_vgh(*sys.coefs, tiles, blocks, sys.nw, min_seconds);
  entry.tile_size = joint.best_tile;
  entry.pos_block = joint.best_block;
  entry.throughput = joint.best_throughput;

  // Crowd sweep at the tuned tile size, then the nested inner-team sweep at
  // the tuned crowd size — the driver consumes all four knobs together, so
  // they are measured together (each sweep holding the previous winners).
  MiniQMCConfig probe = cfg;
  probe.tile_size = joint.best_tile;
  const auto crowd = tune_crowd_size(probe, blocks, min_seconds);
  entry.crowd_size = crowd.best_crowd_size;

  probe.crowd_size = crowd.best_crowd_size;
  const auto nested = tune_inner_threads(probe, {}, min_seconds);
  entry.inner_threads = nested.best_inner;

  wisdom.insert(miniqmc_wisdom_key(sys.norb, cfg.grid_size, sys.nw), entry);
  return entry;
}

} // namespace mqc
