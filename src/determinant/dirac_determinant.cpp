#include "determinant/dirac_determinant.h"

#include <cassert>
#include <cmath>

#include "determinant/lu.h"

namespace mqc {

bool DiracDeterminant::build(const Matrix<double>& a)
{
  ainv_ = a;
  work_.assign(static_cast<std::size_t>(a.rows()), 0.0);
  return invert_matrix(ainv_, log_det_, sign_);
}

double DiracDeterminant::ratio(const double* u, int e) const
{
  const int n = ainv_.rows();
  const double* row = ainv_.row(e);
  double r = 0.0;
  for (int i = 0; i < n; ++i)
    r += row[i] * u[i];
  return r;
}

void DiracDeterminant::accept_move(const double* u, int e)
{
  // Column-e replacement:  A' = A + (u - a_e) e_e^T.
  // Sherman-Morrison:  Ainv' = Ainv - (Ainv (u - a_e) e_e^T Ainv) / R
  // which, using e_e^T Ainv = row e of Ainv and Ainv a_e = e_e, simplifies to
  //   t       = Ainv u                  (length N)
  //   Ainv'(i,:) = Ainv(i,:) - ((t_i - delta_ie) / R) * Ainv(e,:)
  const int n = ainv_.rows();
  const double r = ratio(u, e);
  assert(r != 0.0 && "rejected (singular) move must not be accepted");

  double* t = work_.data();
  for (int i = 0; i < n; ++i) {
    const double* row = ainv_.row(i);
    double s = 0.0;
    for (int j = 0; j < n; ++j)
      s += row[j] * u[j];
    t[i] = s;
  }
  t[e] -= 1.0;

  const double rinv = 1.0 / r;
  // Snapshot row e: it is itself updated (to Ainv(e,:)/R) and must not feed
  // the other rows after that.
  row_e_copy_.assign(ainv_.row(e), ainv_.row(e) + n);
  const double* row_e = row_e_copy_.data();
  for (int i = 0; i < n; ++i) {
    const double f = t[i] * rinv;
    if (f == 0.0)
      continue;
    double* row_i = ainv_.row(i);
    for (int j = 0; j < n; ++j)
      row_i[j] -= f * row_e[j];
  }

  log_det_ += std::log(std::abs(r));
  if (r < 0.0)
    sign_ = -sign_;
}

} // namespace mqc
