// Domain scenario 2: tile-size auto-tuning with persistent wisdom — the
// FFTW-style workflow the paper proposes for production runs (§VI).
//
// First run probes candidate tile sizes for the requested problem and writes
// the winner to a wisdom file; later runs (same problem, same machine) read
// it back and skip the probe.
//
//   ./examples/tile_tuning [N] [grid] [wisdom-file]
#include <cstdio>
#include <cstdlib>

#include "core/synthetic_orbitals.h"
#include "core/tuner.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const int ng = argc > 2 ? std::atoi(argv[2]) : 32;
  const std::string path = argc > 3 ? argv[3] : "miniqmcpp_wisdom.txt";

  const auto key = Wisdom::make_key("vgh", "float", n, ng, ng, ng);
  Wisdom wisdom;
  if (wisdom.load(path)) {
    if (const auto entry = wisdom.lookup(key)) {
      std::printf("wisdom hit: %s -> Nb=%d (%.1f Meval/s when tuned)\n", key.c_str(),
                  entry->tile_size, entry->throughput / 1e6);
      std::printf("delete %s to re-tune.\n", path.c_str());
      return 0;
    }
  }

  std::printf("no wisdom for %s — probing tile sizes...\n", key.c_str());
  const auto grid = Grid3D<float>::cube(ng, 1.0f);
  auto coefs = make_random_storage<float>(grid, n, 5150);
  const auto result = tune_tile_size_vgh(*coefs, default_tile_candidates(n, 16), /*ns=*/32,
                                         /*min_seconds=*/0.1);
  for (std::size_t i = 0; i < result.tiles.size(); ++i)
    std::printf("  Nb=%4d  %8.1f Meval/s%s\n", result.tiles[i], result.throughputs[i] / 1e6,
                result.tiles[i] == result.best_tile ? "   <-- best" : "");

  wisdom.insert(key, {result.best_tile, result.best_throughput});
  if (wisdom.save(path))
    std::printf("saved wisdom to %s\n", path.c_str());
  else
    std::printf("warning: could not write %s\n", path.c_str());
  return 0;
}
