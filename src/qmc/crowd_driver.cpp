// The miniQMC crowd sweep: walkers advance in lock-step crowds so that every
// spline evaluation becomes a multi-position OrbitalSet request (see
// crowd_driver.h for the design contract and miniqmc_context.h for the
// shared per-walker arithmetic).  Threading is hierarchical (Opt C): the
// outer team runs one crowd per member, and each member owns an inner team
// from the driver's ThreadPartition — the crowd's multi-position facade
// requests and its walkers' delayed-update flushes fork that inner team
// under the outer region (or run serial when the partition says inner = 1,
// the classic flat schedule).  crowd_size still trades per-member batch
// depth against outer width; inner_threads re-occupies the cores a wide
// crowd would otherwise leave idle.
//
// The single-vs-multi schedule is an explicit OrbitalSet capabilities
// decision made once per run and surfaced in MiniQMCResult::spline_path:
// on the AoS baseline (no native multi-position path) the facade degrades
// each crowd batch to lock-step single-position calls — still the identical
// trajectory, just without the table-traffic amortization — and the result
// says so instead of silently benchmarking the fallback.
#include <algorithm>
#include <vector>

#include "qmc/crowd_driver.h"
#include "qmc/miniqmc_context.h"

namespace mqc::detail {

namespace {

/// Per-crowd scratch: gathered trial positions, per-walker output-slot
/// pointer tables for the multi-position requests, and the OrbitalResource
/// owning the batch's weight sets.  Allocated once per crowd so the timed
/// sweep allocates nothing.
struct CrowdScratch
{
  CrowdScratch(std::vector<WalkerState>& walkers, int first, int count, const MiniQMCSystem& sys)
  {
    rnew.resize(static_cast<std::size_t>(count));
    v.resize(static_cast<std::size_t>(count));
    g.resize(static_cast<std::size_t>(count));
    h.resize(static_cast<std::size_t>(count));
    l.resize(static_cast<std::size_t>(count));
    quad_v.resize(static_cast<std::size_t>(count) * static_cast<std::size_t>(sys.nq));
    quad_pos.resize(static_cast<std::size_t>(count) * static_cast<std::size_t>(sys.nq));
    (void)ores.weights_for(count * sys.nq);
    for (int i = 0; i < count; ++i) {
      WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
      const auto ui = static_cast<std::size_t>(i);
      // The facade writes into the layout-appropriate walker buffer: AoS
      // component groups for the baseline engine, SoA streams otherwise.
      if (sys.aos_outputs) {
        v[ui] = w.out_aos->v.data();
        g[ui] = w.out_aos->g.data();
        h[ui] = w.out_aos->h.data();
        l[ui] = w.out_aos->l.data();
      } else {
        v[ui] = w.out_soa->v.data();
        g[ui] = w.out_soa->g.data();
        h[ui] = w.out_soa->h.data();
        l[ui] = w.out_soa->l.data();
      }
      for (int q = 0; q < sys.nq; ++q)
        quad_v[ui * static_cast<std::size_t>(sys.nq) + static_cast<std::size_t>(q)] =
            w.quad_v_ptrs[static_cast<std::size_t>(q)];
    }
  }

  std::vector<Vec3<qmc_real>> rnew;
  std::vector<qmc_real*> v, g, h, l;   ///< per-walker component slots
  std::vector<qmc_real*> quad_v;       ///< count*nq quadrature value slots
  std::vector<Vec3<qmc_real>> quad_pos; ///< gathered count*nq quadrature positions
  OrbitalResource<qmc_real> ores;      ///< weight sets for the crowd's batches
};

/// One VGH request for the crowd's trial positions (scr.rnew[0..count)),
/// landing in each walker's own output buffers.  @p team is the crowd's
/// inner team: with more than one thread the facade forks the (tile,
/// position-block) sweep under this crowd's outer thread (Opt C).
void crowd_eval_vgh(const MiniQMCSystem& sys, std::vector<WalkerState>& walkers, int first,
                    int count, CrowdScratch& scr, TeamHandle team)
{
  OrbitalEvalRequest<qmc_real> rq;
  rq.deriv = DerivLevel::VGH;
  rq.positions = scr.rnew.data();
  rq.count = count;
  rq.v = scr.v.data();
  rq.g = scr.g.data();
  rq.lh = scr.h.data();
  rq.stride = sys.out_pad;
  rq.parallel = team.parallel();
  rq.team = team;
  sys.spo.evaluate(rq, scr.ores);
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(sys.norb);
}

/// One VGL request at the crowd's current positions of electron e (kinetic
/// energy measurement).
void crowd_eval_vgl(const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                    std::vector<WalkerState>& walkers, int first, int count, int e,
                    CrowdScratch& scr, TeamHandle team)
{
  for (int i = 0; i < count; ++i) {
    const WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
    scr.rnew[static_cast<std::size_t>(i)] = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
  }
  OrbitalEvalRequest<qmc_real> rq;
  rq.deriv = DerivLevel::VGL;
  rq.positions = scr.rnew.data();
  rq.count = count;
  rq.v = scr.v.data();
  rq.g = scr.g.data();
  rq.lh = scr.l.data();
  rq.stride = sys.out_pad;
  rq.parallel = team.parallel();
  rq.team = team;
  sys.spo.evaluate(rq, scr.ores);
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(sys.norb);
}

/// One V request over the whole crowd's quadrature points (count*nq
/// positions, each walker's nq points already proposed into its quad_r).
void crowd_eval_quad_v(const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                       std::vector<WalkerState>& walkers, int first, int count, CrowdScratch& scr,
                       TeamHandle team)
{
  const int nq = cfg.quadrature_points;
  // Gather the crowd's quadrature positions into one contiguous batch.
  for (int i = 0; i < count; ++i) {
    const WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
    std::copy(w.quad_r.begin(), w.quad_r.begin() + nq,
              scr.quad_pos.begin() + static_cast<std::size_t>(i) * static_cast<std::size_t>(nq));
  }
  OrbitalEvalRequest<qmc_real> rq;
  rq.deriv = DerivLevel::V;
  rq.positions = scr.quad_pos.data();
  rq.count = count * nq;
  rq.v = scr.quad_v.data();
  rq.parallel = team.parallel();
  rq.team = team;
  sys.spo.evaluate(rq, scr.ores);
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(nq) * static_cast<std::size_t>(sys.norb);
}

} // namespace

MiniQMCResult run_miniqmc_crowd(const MiniQMCConfig& cfg)
{
  const MiniQMCSystem sys(cfg);
  // Crowd-size resolution: explicit size > 0, 0 = whole population, -1 =
  // tuned size from cfg.wisdom (whole population when no entry was tuned).
  int requested = cfg.crowd_size;
  if (requested < 0)
    requested = sys.tuned_crowd_size;
  const int crowd_size = requested > 0 ? std::min(requested, sys.nw) : sys.nw;
  const int num_crowds = (sys.nw + crowd_size - 1) / crowd_size;

  // Nested-team partition: num_crowds outer members, each owning an inner
  // team for its facade sweeps and delayed-update flushes (Opt C).  Resolved
  // once here — no layer below re-derives the machine size.
  const ThreadPartition part = detail::resolve_team_partition(cfg, sys, num_crowds);
  const TeamHandle inner = TeamHandle::inner_of(part);

  std::vector<WalkerState> walkers(static_cast<std::size_t>(sys.nw));
  std::vector<ProfileRegistry> crowd_profiles(static_cast<std::size_t>(num_crowds));

  MiniQMCResult result;
  result.num_walkers = sys.nw;
  result.num_electrons = sys.nel;
  result.num_orbitals = sys.norb;
  result.crowd_size_used = crowd_size;
  // The explicit schedule decisions, surfaced instead of silently run: the
  // single-vs-multi spline path (engine capabilities) and the nested-team
  // path (partition + the runtime's nesting capability).
  result.spline_path = sys.spo.capabilities().native_multi_eval ? EvalPath::MultiPosition
                                                                : EvalPath::SinglePosition;
  result.team_path = classify_team_path(part.outer, part.inner);
  result.outer_threads_used = part.outer;
  result.inner_threads_used = part.inner;

  Stopwatch total_watch;

  // ---- setup (not profiled): each crowd initializes its own walkers ------
  // The outer region is a team_for over crowd ids (one crowd per thread, and
  // walker state a function of walker id only) — both through the
  // threading.h seam.  Stored walker teams are region-bound so a stale
  // resolve after the outer region closes aborts under MQC_CONTRACTS.
  team_for(TeamHandle::of(num_crowds), num_crowds, [&](int cid) {
    const int first = cid * crowd_size;
    const int last = std::min(sys.nw, first + crowd_size);
    for (int wid = first; wid < last; ++wid) {
      init_walker(walkers[static_cast<std::size_t>(wid)], sys, cfg, wid);
      walkers[static_cast<std::size_t>(wid)].set_team(inner.bound_to_current_region());
    }
  });

  // ---- resume (outside any team region): overwrite the freshly built
  // walker state from the snapshot, if one is usable -----------------------
  const CheckpointRuntime ckrt = make_checkpoint_runtime(cfg, sys);
  int step = resume_from_checkpoint(ckrt, cfg, sys, walkers, result);

  // ---- the profiled lock-step sweep, one crowd per thread ----------------
  // Epoch-chunked exactly like the per-walker driver: each team region
  // advances every crowd to the next step boundary, snapshots happen
  // between regions.  CrowdScratch is rebuilt per epoch — gathered pointer
  // tables and weight scratch, never trajectory state.
  while (step < cfg.steps) {
    const int boundary = next_epoch_boundary(ckrt, step, cfg.steps);
    team_for(TeamHandle::of(num_crowds), num_crowds, [&](int cid) {
      const int first = cid * crowd_size;
      const int count = std::min(sys.nw, first + crowd_size) - first;
      ProfileRegistry& cprof = crowd_profiles[static_cast<std::size_t>(cid)];
      CrowdScratch scr(walkers, first, count, sys);

      for (int s = step; s < boundary; ++s) {
      // Drift-diffusion phase: the whole crowd moves electron e together.
      for (int e = 0; e < sys.nel; ++e) {
        for (int i = 0; i < count; ++i) {
          WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
          ++w.attempted;
          const Vec3<qmc_real> r_old = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
          scr.rnew[static_cast<std::size_t>(i)] = propose(w.rng, r_old, cfg.move_sigma);
        }
        {
          ScopedTimer t(cprof, kSectionBspline);
          crowd_eval_vgh(sys, walkers, first, count, scr, inner);
        }
        for (int i = 0; i < count; ++i) {
          WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
          const qmc_real* v = sys.aos_outputs ? w.out_aos->v.data() : w.out_soa->v.data();
          metropolis_move(w, sys, cfg, e, scr.rnew[static_cast<std::size_t>(i)], v);
        }
      }

      // Measurement phase, electron by electron across the crowd: one VGL
      // request (kinetic energy), per-walker quadrature proposals and
      // distance/Jastrow ratios, then one V request over all count*nq
      // quadrature points.  Each walker's rng stream sees exactly the
      // per-walker driver's draw sequence.
      for (int e = 0; e < sys.nel; ++e) {
        {
          ScopedTimer t(cprof, kSectionBspline);
          crowd_eval_vgl(sys, cfg, walkers, first, count, e, scr, inner);
        }
        for (int i = 0; i < count; ++i) {
          WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
          const Vec3<qmc_real> re = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
          for (int q = 0; q < cfg.quadrature_points; ++q)
            w.quad_r[static_cast<std::size_t>(q)] = propose(w.rng, re, 0.5);
          quadrature_dist_jastrow(w, sys, cfg, e);
        }
        if (cfg.quadrature_points > 0) {
          ScopedTimer t(cprof, kSectionBspline);
          crowd_eval_quad_v(sys, cfg, walkers, first, count, scr, inner);
        }
      }
      for (int i = 0; i < count; ++i)
        full_jastrow(walkers[static_cast<std::size_t>(first + i)], sys, cfg);
      }
    });
    step = boundary;
    checkpoint_step_boundary(ckrt, cfg, sys, walkers, step, cfg.steps, result);
  }
  result.seconds = total_watch.elapsed();
  reduce_result(result, walkers);
  for (const auto& p : crowd_profiles)
    result.profile.merge(p);
  return result;
}

} // namespace mqc::detail
