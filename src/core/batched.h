// Batched multi-walker evaluation — population-wide convenience wrappers
// over the OrbitalSet facade (core/orbital_set.h), which owns the actual
// dispatch: weights once per position, tile-outer / position-block-inner
// sweeps, OpenMP over (tile, block) work items.
//
// Two schedules over the same (walker, tile) work:
//
//  * Per-pair (ablation reference, evaluate_*_batched): one flat parallel
//    loop over (tile, walker) pairs, each pair an independent single-position
//    tile kernel call.  NOTE: with `collapse(2) schedule(static)` the pairs
//    of one tile are CONTIGUOUS in the collapsed index, so a thread revisits
//    a tile's table slice across consecutive walkers only when its static
//    chunk happens to span several pairs of that tile — coefficient reuse is
//    incidental, not guaranteed.  Every call also recomputes the position's
//    weight set and (pre zero-fill-elimination) re-zeroed its output slice.
//
//  * Position-blocked (evaluate_*_batched_multi): a parallel multi-position
//    facade request.  The guarantee: within one work item the tile's
//    4*Ng*Nb-byte coefficient slice is streamed from memory once and reused
//    from cache by all P positions of the block, and with static scheduling
//    consecutive blocks of the same tile extend that residency across the
//    whole population.  P trades input reuse against the output working set
//    (40*P*Nb bytes for VGH) and is tuned jointly with Nb (core/tuner.h).
//
// Scratch (weight sets, output pointer tables) is the facade's
// OrbitalResource; these population-wide wrappers use the shared per-thread
// instance so steady-state driver iterations allocate nothing.
//
// Threading routes through the TeamHandle seam (common/threading.h): the
// fused wrappers take the caller's team and hand it to the facade request,
// defaulting to whole_machine() — the right size for their usual top-level,
// ownerless call sites.  Callers already inside a partitioned region (a
// crowd's outer member) pass their inner team instead, so these wrappers
// never blindly re-derive the machine size inside someone else's region.
#ifndef MQC_CORE_BATCHED_H
#define MQC_CORE_BATCHED_H

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/vec3.h"
#include "core/multi_bspline.h"
#include "core/orbital_set.h"
#include "qmc/walker.h"

namespace mqc {

namespace detail {

/// Gather each walker's component slot pointers into the resource's tables:
/// values always, gradients when @p want_g, and Hessians (@p want_h) or
/// Laplacians as the third stream family.  Returns the shared stride.
template <typename T>
std::size_t gather_walker_slots(const std::vector<WalkerSoA<T>*>& outs, OrbitalResource<T>& res,
                                bool want_g, bool want_h)
{
  const int nw = static_cast<int>(outs.size());
  res.resize_tables(nw);
  const std::size_t stride = outs.empty() ? 0 : outs[0]->stride;
  for (int i = 0; i < nw; ++i) {
    WalkerSoA<T>& out = *outs[static_cast<std::size_t>(i)];
    assert(out.stride == stride && "batched outputs must share one component stride");
    const auto ui = static_cast<std::size_t>(i);
    res.v[ui] = out.v.data();
    if (want_g)
      res.g[ui] = out.g.data();
    res.lh[ui] = want_h ? out.h.data() : out.l.data();
  }
  return stride;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Position-blocked fused path (facade-dispatched)
// ---------------------------------------------------------------------------

/// Fused multi-position VGH over a population: one parallel facade request.
/// All output buffers must share one component stride.
template <typename T>
void evaluate_vgh_batched_multi(const MultiBspline<T>& engine,
                                const std::vector<Vec3<T>>& positions,
                                std::vector<WalkerSoA<T>*>& outs, int pos_block = 0,
                                TeamHandle team = TeamHandle::whole_machine())
{
  assert(positions.size() == outs.size());
  if (positions.empty())
    return;
  auto& res = OrbitalResource<T>::thread_instance();
  OrbitalEvalRequest<T> rq;
  rq.deriv = DerivLevel::VGH;
  rq.positions = positions.data();
  rq.count = static_cast<int>(positions.size());
  rq.stride = detail::gather_walker_slots(outs, res, true, true);
  rq.v = res.v.data();
  rq.g = res.g.data();
  rq.lh = res.lh.data();
  rq.pos_block = pos_block;
  rq.parallel = team.parallel();
  rq.team = team;
  OrbitalSet<T>(engine).evaluate(rq, res);
}

/// Fused multi-position values-only path (pseudopotential quadrature batches).
template <typename T>
void evaluate_v_batched_multi(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                              std::vector<WalkerSoA<T>*>& outs, int pos_block = 0,
                              TeamHandle team = TeamHandle::whole_machine())
{
  assert(positions.size() == outs.size());
  if (positions.empty())
    return;
  auto& res = OrbitalResource<T>::thread_instance();
  OrbitalEvalRequest<T> rq;
  rq.deriv = DerivLevel::V;
  rq.positions = positions.data();
  rq.count = static_cast<int>(positions.size());
  rq.stride = detail::gather_walker_slots(outs, res, false, false);
  rq.v = res.v.data();
  rq.pos_block = pos_block;
  rq.parallel = team.parallel();
  rq.team = team;
  OrbitalSet<T>(engine).evaluate(rq, res);
}

/// Fused multi-position VGL (local-energy measurement over a population).
template <typename T>
void evaluate_vgl_batched_multi(const MultiBspline<T>& engine,
                                const std::vector<Vec3<T>>& positions,
                                std::vector<WalkerSoA<T>*>& outs, int pos_block = 0,
                                TeamHandle team = TeamHandle::whole_machine())
{
  assert(positions.size() == outs.size());
  if (positions.empty())
    return;
  auto& res = OrbitalResource<T>::thread_instance();
  OrbitalEvalRequest<T> rq;
  rq.deriv = DerivLevel::VGL;
  rq.positions = positions.data();
  rq.count = static_cast<int>(positions.size());
  rq.stride = detail::gather_walker_slots(outs, res, true, false);
  rq.v = res.v.data();
  rq.g = res.g.data();
  rq.lh = res.lh.data();
  rq.pos_block = pos_block;
  rq.parallel = team.parallel();
  rq.team = team;
  OrbitalSet<T>(engine).evaluate(rq, res);
}

// ---------------------------------------------------------------------------
// Per-(tile, walker) path — kept as the ablation reference the position-
// blocked schedule is benchmarked against (bench/gb_batched_multi.cpp).
// ---------------------------------------------------------------------------

/// Evaluate VGH at positions[w] into outs[w] for every walker w, one
/// single-position tile kernel call per (tile, walker) pair.
template <typename T>
void evaluate_vgh_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                          std::vector<WalkerSoA<T>*>& outs,
                          TeamHandle team = TeamHandle::whole_machine())
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
  team_for_collapse2(team, nt, nw, [&](int t, int w) {
    const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
    WalkerSoA<T>& out = *outs[static_cast<std::size_t>(w)];
    engine.evaluate_vgh_tile(t, r.x, r.y, r.z, out.v.data(), out.g.data(), out.h.data(),
                             out.stride);
  });
}

/// Batched values-only evaluation, per-pair schedule.
template <typename T>
void evaluate_v_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                        std::vector<WalkerSoA<T>*>& outs,
                        TeamHandle team = TeamHandle::whole_machine())
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
  team_for_collapse2(team, nt, nw, [&](int t, int w) {
    const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
    engine.evaluate_v_tile(t, r.x, r.y, r.z, outs[static_cast<std::size_t>(w)]->v.data());
  });
}

/// Batched VGL, per-pair schedule.
template <typename T>
void evaluate_vgl_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                          std::vector<WalkerSoA<T>*>& outs,
                          TeamHandle team = TeamHandle::whole_machine())
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
  team_for_collapse2(team, nt, nw, [&](int t, int w) {
    const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
    WalkerSoA<T>& out = *outs[static_cast<std::size_t>(w)];
    engine.evaluate_vgl_tile(t, r.x, r.y, r.z, out.v.data(), out.g.data(), out.l.data(),
                             out.stride);
  });
}

} // namespace mqc

#endif // MQC_CORE_BATCHED_H
