// Figure 10: cache-aware roofline placement of VGH at each optimization step.
// Ceilings are measured on this host (STREAM triad, FMA peak); each point's
// GFLOPS comes from the analytic FLOP model divided by the measured kernel
// time, at the model's arithmetic intensity (the paper used Intel Advisor
// for the same quantities).
#include <iostream>

#include "common/table.h"
#include "core/tuner.h"
#include "perf/roofline.h"
#include "bench_common.h"

int main()
{
  using namespace mqc;
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();
  const int n = scale.n_single;

  print_banner(std::cout, "Figure 10: VGH roofline at N=" + std::to_string(n));
  std::cout << "measuring ceilings...\n";
  const double bw = measure_triad_bandwidth();
  const double peak = measure_peak_gflops_sp();
  std::cout << "  DRAM bandwidth : " << TablePrinter::cell(bw / 1e9, 1) << " GB/s\n"
            << "  SP FMA peak    : " << TablePrinter::cell(peak, 1) << " GFLOPS\n"
            << "  ridge point    : " << TablePrinter::cell(peak / (bw / 1e9), 2)
            << " FLOP/byte\n\n";

  const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
  auto coefs = make_random_storage<float>(grid, n, 1010);
  const auto tune =
      tune_tile_size_vgh(*coefs, default_tile_candidates(n, 16), scale.ns, scale.min_seconds / 4);

  struct Point
  {
    const char* label;
    Layout layout;
    bool soa_model;
  };
  const Point points[3] = {{"AoS (baseline)", Layout::AoS, false},
                           {"SoA (Opt A)", Layout::SoA, true},
                           {"AoSoA (Opt B)", Layout::AoSoA, true}};

  TablePrinter tp({"variant", "AI (FLOP/B)", "GFLOPS", "roof @ AI", "% of roof"});
  for (const auto& p : points) {
    const double sec = measure_seconds_per_eval(p.layout, Kernel::VGH, *coefs, tune.best_tile,
                                                scale.ns, scale.min_seconds);
    const auto model = kernel_cost_model(KernelId::VGH, p.soa_model, n, sizeof(float));
    const double gflops = model.flops / sec / 1e9;
    const double ai = model.arithmetic_intensity();
    const double roof = roofline_ceiling(ai, peak, bw);
    tp.add_row({p.label, TablePrinter::cell(ai, 2), TablePrinter::cell(gflops, 1),
                TablePrinter::cell(roof, 1), TablePrinter::cell(100.0 * gflops / roof, 1)});
  }
  tp.print(std::cout);
  std::cout
      << "\nShape check: the load-bearing signal is '% of roof' — the baseline sits far\n"
         "below its ceiling (scalar/gather-scatter execution) while SoA/AoSoA run close\n"
         "to the bandwidth roof, exactly the paper's Fig. 10 story.  Note on AI: the\n"
         "paper's Advisor-measured AI *rises* with SoA because gather/scatter traffic\n"
         "disappears; our analytic AI instead counts algorithmic FLOPs, so the AoS\n"
         "variant shows a higher nominal AI (it does 64x13 redundant FMAs vs 16x22).\n"
         "AoSoA keeps the SoA AI and lifts GFLOPS through cache locality.\n";
  return 0;
}
