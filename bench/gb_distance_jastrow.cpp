// google-benchmark microbenchmarks for the non-spline kernel groups of
// Tables II/III: distance-table row updates and Jastrow evaluations in both
// layouts, plus determinant ratio/update costs.
#include <benchmark/benchmark.h>

#include "determinant/dirac_determinant.h"
#include "distance/distance_table.h"
#include "jastrow/one_body.h"
#include "jastrow/two_body.h"
#include "particles/graphite.h"

namespace {

using namespace mqc;

struct Setup
{
  CrystalSystem sys = make_graphite_supercell(4, 4, 1);
  int nel;
  ParticleSetSoA<float> elec_soa;
  ParticleSetAoS<float> elec_aos;
  ParticleSetSoA<float> ions_soa;
  ParticleSetAoS<float> ions_aos;
  BsplineJastrowFunctor<float> fj2 =
      BsplineJastrowFunctor<float>::make_exponential(-0.5f, 1.0f, 6.0f);

  Setup()
  {
    nel = sys.num_electrons();
    elec_soa = random_particles<float>(nel, sys.lattice, 2);
    elec_aos = to_aos(elec_soa);
    ions_soa = ParticleSetSoA<float>(sys.num_ions());
    for (int i = 0; i < sys.num_ions(); ++i) {
      const auto r = sys.ions[i];
      ions_soa.set(i, Vec3<float>{static_cast<float>(r.x), static_cast<float>(r.y),
                                  static_cast<float>(r.z)});
    }
    ions_aos = to_aos(ions_soa);
  }

  static Setup& instance()
  {
    static Setup s;
    return s;
  }
};

void BM_DistanceRow_AoS(benchmark::State& state)
{
  auto& s = Setup::instance();
  DistanceTableAA_AoS<float> t(s.sys.lattice, s.nel, MinImageMode::Fast);
  t.evaluate(s.elec_aos);
  int e = 0;
  for (auto _ : state) {
    t.compute_temp(s.elec_aos, Vec3<float>{1.0f, 2.0f, 3.0f}, e);
    benchmark::DoNotOptimize(t.temp_r());
    e = (e + 1) % s.nel;
  }
  state.SetItemsProcessed(state.iterations() * s.nel);
}

void BM_DistanceRow_SoA(benchmark::State& state)
{
  auto& s = Setup::instance();
  DistanceTableAA_SoA<float> t(s.sys.lattice, s.nel, MinImageMode::Fast);
  t.evaluate(s.elec_soa);
  int e = 0;
  for (auto _ : state) {
    t.compute_temp(s.elec_soa, Vec3<float>{1.0f, 2.0f, 3.0f}, e);
    benchmark::DoNotOptimize(t.temp_r());
    e = (e + 1) % s.nel;
  }
  state.SetItemsProcessed(state.iterations() * s.nel);
}

void BM_J2Full_AoS(benchmark::State& state)
{
  auto& s = Setup::instance();
  DistanceTableAA_AoS<float> t(s.sys.lattice, s.nel, MinImageMode::Fast);
  t.evaluate(s.elec_aos);
  const TwoBodyJastrowAoS<float> j2(s.fj2);
  std::vector<Vec3<float>> g(static_cast<std::size_t>(s.nel));
  std::vector<float> l(static_cast<std::size_t>(s.nel));
  for (auto _ : state) {
    const float v = j2.evaluate_log(t, g.data(), l.data());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * s.nel * s.nel);
}

void BM_J2Full_SoA(benchmark::State& state)
{
  auto& s = Setup::instance();
  DistanceTableAA_SoA<float> t(s.sys.lattice, s.nel, MinImageMode::Fast);
  t.evaluate(s.elec_soa);
  const TwoBodyJastrowSoA<float> j2(s.fj2);
  std::vector<Vec3<float>> g(static_cast<std::size_t>(s.nel));
  std::vector<float> l(static_cast<std::size_t>(s.nel));
  for (auto _ : state) {
    const float v = j2.evaluate_log(t, g.data(), l.data());
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * s.nel * s.nel);
}

void BM_J2Ratio_SoA(benchmark::State& state)
{
  auto& s = Setup::instance();
  DistanceTableAA_SoA<float> t(s.sys.lattice, s.nel, MinImageMode::Fast);
  t.evaluate(s.elec_soa);
  const TwoBodyJastrowSoA<float> j2(s.fj2);
  t.compute_temp(s.elec_soa, Vec3<float>{1.0f, 2.0f, 3.0f}, 0);
  for (auto _ : state) {
    const float v = j2.ratio_log(t, 0);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() * s.nel);
}

void BM_DeterminantRatioUpdate(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  Matrix<double> a(n);
  Xoshiro256 rng(5);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a(i, j) = rng.uniform(-1.0, 1.0) + (i == j ? 2.0 : 0.0);
  DiracDeterminant det;
  det.build(a);
  std::vector<double> u(static_cast<std::size_t>(n));
  int e = 0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-1.0, 1.0) + (i == e ? 2.0 : 0.0);
    const double r = det.ratio(u.data(), e);
    if (std::abs(r) > 0.05)
      det.accept_move(u.data(), e);
    benchmark::DoNotOptimize(r);
    e = (e + 1) % n;
  }
}

} // namespace

BENCHMARK(BM_DistanceRow_AoS);
BENCHMARK(BM_DistanceRow_SoA);
BENCHMARK(BM_J2Full_AoS);
BENCHMARK(BM_J2Full_SoA);
BENCHMARK(BM_J2Ratio_SoA);
BENCHMARK(BM_DeterminantRatioUpdate)->Arg(64)->Arg(128);

BENCHMARK_MAIN();
