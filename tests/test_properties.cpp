// Property-based tests on algebraic invariants of the spline system that
// must hold for *any* coefficients and positions:
//   * linearity of every kernel in the coefficient table,
//   * translation covariance on the periodic grid,
//   * evenness/oddness inheritance from symmetric coefficient tables,
//   * tiling invariance (any tile size gives the same orbital values),
//   * output determinism (same inputs, bit-identical outputs).
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/bspline_soa.h"
#include "core/multi_bspline.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"
#include "test_utils.h"

using namespace mqc;

namespace {

std::shared_ptr<CoefStorage<double>> scaled_sum(const CoefStorage<double>& a,
                                                const CoefStorage<double>& b, double alpha,
                                                double beta)
{
  auto out = std::make_shared<CoefStorage<double>>(a.grid(), a.num_splines());
  const int nx = a.grid().x.num + 3, ny = a.grid().y.num + 3, nz = a.grid().z.num + 3;
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int k = 0; k < nz; ++k)
        for (int n = 0; n < a.num_splines(); ++n)
          out->set_coef(i, j, k, n, alpha * a.coef(i, j, k, n) + beta * b.coef(i, j, k, n));
  return out;
}

} // namespace

// phi[alpha*P1 + beta*P2] == alpha*phi[P1] + beta*phi[P2] for every output
// component: the engines are linear maps of the coefficient table.
TEST(Properties, KernelsAreLinearInCoefficients)
{
  const auto grid = Grid3D<double>::cube(9, 1.3);
  auto p1 = make_random_storage<double>(grid, 24, 1);
  auto p2 = make_random_storage<double>(grid, 24, 2);
  const double alpha = 0.7, beta = -1.9;
  auto mix = scaled_sum(*p1, *p2, alpha, beta);

  BsplineSoA<double> e1(p1), e2(p2), em(mix);
  WalkerSoA<double> w1(e1.out_stride()), w2(e1.out_stride()), wm(e1.out_stride());
  for (const auto& pos : mqc::test::random_positions(grid, 6, 77)) {
    e1.evaluate_vgh(pos[0], pos[1], pos[2], w1.v.data(), w1.g.data(), w1.h.data());
    e2.evaluate_vgh(pos[0], pos[1], pos[2], w2.v.data(), w2.g.data(), w2.h.data());
    em.evaluate_vgh(pos[0], pos[1], pos[2], wm.v.data(), wm.g.data(), wm.h.data());
    for (int n = 0; n < 24; ++n) {
      const auto u = static_cast<std::size_t>(n);
      EXPECT_NEAR(wm.v[u], alpha * w1.v[u] + beta * w2.v[u], 1e-10);
      EXPECT_NEAR(wm.gx()[u], alpha * w1.gx()[u] + beta * w2.gx()[u], 1e-9);
      EXPECT_NEAR(wm.hcomp(3)[u], alpha * w1.hcomp(3)[u] + beta * w2.hcomp(3)[u], 1e-8);
    }
  }
}

// Shifting the evaluation point by exactly one grid cell equals shifting the
// coefficient table by one slot: translation covariance on the lattice.
TEST(Properties, GridTranslationCovariance)
{
  const int ng = 8;
  const auto grid = Grid3D<double>::cube(ng, 1.0);
  // Periodically consistent random control points (fill_random fills raw
  // storage slots and would leave the wrap layers inconsistent).
  auto p = std::make_shared<CoefStorage<double>>(grid, 8);
  Xoshiro256 rng(5);
  for (int ci = 0; ci < ng; ++ci)
    for (int cj = 0; cj < ng; ++cj)
      for (int ck = 0; ck < ng; ++ck)
        for (int n = 0; n < 8; ++n)
          p->set_control_point_periodic(ci, cj, ck, n, rng.uniform(-1.0, 1.0));

  // Build q with control points rolled by one cell in x:
  // q_c[i] = p_c[(i+1) mod ng]  =>  spline_q(x) == spline_p(x + delta).
  auto q = std::make_shared<CoefStorage<double>>(grid, 8);
  for (int ci = 0; ci < ng; ++ci)
    for (int cj = 0; cj < ng; ++cj)
      for (int ck = 0; ck < ng; ++ck)
        for (int n = 0; n < 8; ++n)
          q->set_control_point_periodic(
              ci, cj, ck, n, p->coef((ci + 1) % ng + 1, cj + 1, ck + 1, n));

  BsplineSoA<double> ep(p), eq(q);
  WalkerSoA<double> wp(ep.out_stride()), wq(eq.out_stride());
  const double delta = 1.0 / ng;
  for (const auto& pos : mqc::test::random_positions(grid, 8, 3)) {
    ep.evaluate_vgh(pos[0] + delta, pos[1], pos[2], wp.v.data(), wp.g.data(), wp.h.data());
    eq.evaluate_vgh(pos[0], pos[1], pos[2], wq.v.data(), wq.g.data(), wq.h.data());
    for (int n = 0; n < 8; ++n) {
      EXPECT_NEAR(wp.v[static_cast<std::size_t>(n)], wq.v[static_cast<std::size_t>(n)], 1e-10);
      EXPECT_NEAR(wp.gz()[static_cast<std::size_t>(n)], wq.gz()[static_cast<std::size_t>(n)],
                  1e-9);
    }
  }
}

// Any tile size must reproduce the untiled values exactly (same arithmetic
// on the same inputs — float equality, not tolerance).
class TileInvariance : public ::testing::TestWithParam<int>
{
};

TEST_P(TileInvariance, AoSoAValuesIndependentOfTileSize)
{
  const int tile = GetParam();
  const auto grid = Grid3D<float>::cube(10, 1.0f);
  auto coefs = make_random_storage<float>(grid, 96, 9);
  BsplineSoA<float> ref(coefs);
  MultiBspline<float> mb(*coefs, tile);
  WalkerSoA<float> wr(ref.out_stride()), wm(mb.out_stride());
  for (const auto& pos : mqc::test::random_positions(grid, 4, 4)) {
    ref.evaluate_vgh(pos[0], pos[1], pos[2], wr.v.data(), wr.g.data(), wr.h.data());
    mb.evaluate_vgh(pos[0], pos[1], pos[2], wm.v.data(), wm.g.data(), wm.h.data(), wm.stride);
    for (int n = 0; n < 96; ++n) {
      const int t = n / tile;
      const std::size_t m = mb.tile_offset(t) + static_cast<std::size_t>(n - t * tile);
      ASSERT_EQ(wr.v[static_cast<std::size_t>(n)], wm.v[m]) << "tile=" << tile << " n=" << n;
      ASSERT_EQ(wr.gx()[static_cast<std::size_t>(n)], wm.gx()[m]);
      ASSERT_EQ(wr.hcomp(5)[static_cast<std::size_t>(n)], wm.hcomp(5)[m]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileInvariance, ::testing::Values(16, 32, 48, 96));

// Repeated evaluation is bit-identical (no hidden state in the engines).
TEST(Properties, EvaluationIsDeterministic)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 32, 11);
  BsplineSoA<float> e(coefs);
  WalkerSoA<float> w1(e.out_stride()), w2(e.out_stride());
  e.evaluate_vgh(0.911f, 0.132f, 0.557f, w1.v.data(), w1.g.data(), w1.h.data());
  e.evaluate_vgh(0.911f, 0.132f, 0.557f, w2.v.data(), w2.g.data(), w2.h.data());
  for (std::size_t n = 0; n < e.padded_splines(); ++n) {
    ASSERT_EQ(w1.v[n], w2.v[n]);
    ASSERT_EQ(w1.g[n], w2.g[n]);
    ASSERT_EQ(w1.h[n], w2.h[n]);
  }
}

// A coefficient table even under x -> -x (about the grid origin) yields
// even values and odd x-gradients at mirrored positions.
TEST(Properties, MirrorSymmetryInheritance)
{
  const int ng = 8;
  const auto grid = Grid3D<double>::cube(ng, 2.0);
  auto p = std::make_shared<CoefStorage<double>>(grid, 4);
  Xoshiro256 rng(13);
  // Build control points symmetric under ci -> (ng - ci) mod ng.
  for (int ci = 0; ci < ng; ++ci)
    for (int cj = 0; cj < ng; ++cj)
      for (int ck = 0; ck < ng; ++ck)
        for (int n = 0; n < 4; ++n) {
          const int mi = (ng - ci) % ng;
          if (ci <= mi) {
            const double val = rng.uniform(-1, 1);
            p->set_control_point_periodic(ci, cj, ck, n, val);
            p->set_control_point_periodic(mi, cj, ck, n, val);
          }
        }
  BsplineSoA<double> e(p);
  WalkerSoA<double> wp(e.out_stride()), wm(e.out_stride());
  Xoshiro256 prng(15);
  for (int s = 0; s < 6; ++s) {
    const double x = prng.uniform(0.0, 2.0), y = prng.uniform(0.0, 2.0),
                 z = prng.uniform(0.0, 2.0);
    e.evaluate_vgh(x, y, z, wp.v.data(), wp.g.data(), wp.h.data());
    e.evaluate_vgh(-x, y, z, wm.v.data(), wm.g.data(), wm.h.data());
    for (int n = 0; n < 4; ++n) {
      const auto u = static_cast<std::size_t>(n);
      EXPECT_NEAR(wp.v[u], wm.v[u], 1e-10);            // even
      EXPECT_NEAR(wp.gx()[u], -wm.gx()[u], 1e-9);      // odd
      EXPECT_NEAR(wp.gy()[u], wm.gy()[u], 1e-9);       // even
      EXPECT_NEAR(wp.hcomp(0)[u], wm.hcomp(0)[u], 1e-8); // hxx even
      EXPECT_NEAR(wp.hcomp(1)[u], -wm.hcomp(1)[u], 1e-8); // hxy odd
    }
  }
}
