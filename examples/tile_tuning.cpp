// Domain scenario 2: auto-tuning with persistent wisdom — the FFTW-style
// workflow the paper proposes for production runs (§VI).
//
// Three tuning modes share one wisdom file:
//   * single-position tile sweep (v1 key): the Fig. 7(c) Nb probe;
//   * joint (Nb, P) sweep (v2 key): tile size and position block of the
//     fused batched multi-evaluation path (core/batched.h), probed over a
//     walker population;
//   * miniQMC driver tuning (tune_miniqmc): the joint sweep on the driver's
//     own problem PLUS a crowd-size sweep with the real crowd driver, all
//     recorded as one entry that run_miniqmc consumes through
//     MiniQMCConfig::wisdom (facade pos_block + crowd_size = -1 auto mode).
// First run probes candidates for the requested problem and writes the
// winners; later runs (same problem, same machine) read them back and skip
// the probes.
//
//   ./examples/tile_tuning [N] [grid] [wisdom-file] [num-walkers]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/synthetic_orbitals.h"
#include "core/tuner.h"
#include "qmc/miniqmc_driver.h"
#include "qmc/miniqmc_tuner.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const int ng = argc > 2 ? std::atoi(argv[2]) : 32;
  const std::string path = argc > 3 ? argv[3] : "miniqmcpp_wisdom.txt";
  const int nw = std::max(1, argc > 4 ? std::atoi(argv[4]) : 8);

  // miniQMC driver tuning problem: a small graphite sweep sized to finish
  // in seconds; production would pass its real configuration.
  MiniQMCConfig mcfg;
  mcfg.supercell = {1, 1, 1};
  mcfg.grid_size = 12;
  mcfg.num_splines = 16;
  mcfg.num_walkers = nw;
  mcfg.spo = SpoLayout::AoSoA;
  mcfg.tile_size = 16;
  mcfg.optimized_dt_jastrow = true;

  const auto key = Wisdom::make_key("vgh", "float", n, ng, ng, ng);
  const auto key2 = Wisdom::make_key_v2("vgh", "float", n, ng, ng, ng, nw);
  const auto key3 = miniqmc_wisdom_key(mcfg.num_splines, mcfg.grid_size, nw);
  Wisdom wisdom;
  wisdom.load(path);
  const auto hit1 = wisdom.lookup(key);
  const auto hit2 = wisdom.lookup(key2);
  const auto hit3 = wisdom.lookup(key3);
  if (hit1 && hit2 && hit3) {
    std::printf("wisdom hit: %s -> Nb=%d (%.1f Meval/s when tuned)\n", key.c_str(),
                hit1->tile_size, hit1->throughput / 1e6);
    std::printf("wisdom hit: %s -> Nb=%d P=%d (%.1f Meval/s when tuned)\n", key2.c_str(),
                hit2->tile_size, hit2->pos_block, hit2->throughput / 1e6);
    std::printf("wisdom hit: %s -> Nb=%d P=%d crowd=%d\n", key3.c_str(), hit3->tile_size,
                hit3->pos_block, hit3->crowd_size);
    // The driver consumes the entry directly: the OrbitalSet facade takes
    // the tuned position block, crowd_size = -1 resolves to the tuned crowd.
    mcfg.driver = DriverMode::Crowd;
    mcfg.crowd_size = -1;
    mcfg.wisdom = &wisdom;
    const auto r = run_miniqmc(mcfg);
    std::printf("tuned crowd run: crowd_size_used=%d, %s path, %.3f s\n", r.crowd_size_used,
                r.spline_path == EvalPath::MultiPosition ? "multi-position" : "single-position",
                r.seconds);
    std::printf("delete %s to re-tune.\n", path.c_str());
    return 0;
  }

  const auto grid = Grid3D<float>::cube(ng, 1.0f);
  auto coefs = make_random_storage<float>(grid, n, 5150);

  if (!hit1) {
    std::printf("no wisdom for %s — probing tile sizes...\n", key.c_str());
    const auto result = tune_tile_size_vgh(*coefs, default_tile_candidates(n, 16), /*ns=*/32,
                                           /*min_seconds=*/0.1);
    for (std::size_t i = 0; i < result.tiles.size(); ++i)
      std::printf("  Nb=%4d  %8.1f Meval/s%s\n", result.tiles[i], result.throughputs[i] / 1e6,
                  result.tiles[i] == result.best_tile ? "   <-- best" : "");
    wisdom.insert(key, {result.best_tile, result.best_throughput});
  }

  if (!hit2) {
    std::printf("no wisdom for %s — probing (Nb, P) jointly over %d walkers...\n", key2.c_str(),
                nw);
    const auto joint =
        tune_tile_block_vgh(*coefs, default_tile_candidates(n, 16), default_block_candidates(nw),
                            nw, /*min_seconds=*/0.05);
    for (std::size_t i = 0; i < joint.tiles.size(); ++i)
      std::printf("  Nb=%4d P=%3d  %8.1f Meval/s%s\n", joint.tiles[i], joint.blocks[i],
                  joint.throughputs[i] / 1e6,
                  joint.tiles[i] == joint.best_tile && joint.blocks[i] == joint.best_block
                      ? "   <-- best"
                      : "");
    wisdom.insert(key2, {joint.best_tile, joint.best_throughput, joint.best_block});
  }

  if (!hit3) {
    std::printf("no wisdom for %s — tuning the miniQMC driver "
                "(joint sweep + crowd sizes + inner teams)...\n",
                key3.c_str());
    const auto entry = tune_miniqmc(wisdom, mcfg, /*min_seconds=*/0.02);
    std::printf("  recorded Nb=%d P=%d crowd_size=%d inner_threads=%d\n", entry.tile_size,
                entry.pos_block, entry.crowd_size, entry.inner_threads);
  }

  if (wisdom.save(path))
    std::printf("saved wisdom to %s\n", path.c_str());
  else
    std::printf("warning: could not write %s\n", path.c_str());
  return 0;
}
