// Fixed-width table printer for the bench harness.
//
// Every bench binary reproduces a table or figure from the paper as printed
// rows; this tiny formatter keeps their output uniform and diff-friendly.
#ifndef MQC_COMMON_TABLE_H
#define MQC_COMMON_TABLE_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mqc {

class TablePrinter
{
public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; cells are pre-formatted strings.
  void add_row(std::vector<std::string> cells);

  /// Helpers for common cell types.
  static std::string cell(double value, int precision = 3);
  static std::string cell(std::size_t value);
  static std::string cell(int value);

  /// Render with column-aligned padding and a header rule.
  void print(std::ostream& os) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("== Figure 7(a): ... ==") used by all benches.
void print_banner(std::ostream& os, const std::string& title);

} // namespace mqc

#endif // MQC_COMMON_TABLE_H
