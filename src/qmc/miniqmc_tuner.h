// miniQMC driver tuning (the paper's §VI wisdom-guided production runs):
// one measurement pass records everything the driver's dispatch consumes —
// the joint (Nb, P) spline sweep AND the crowd-size sweep — as a single
// wisdom entry under miniqmc_wisdom_key().  run_miniqmc looks the entry up
// through MiniQMCConfig::wisdom: the AoSoA engine takes tile_size, the
// OrbitalSet facade takes pos_block, and the crowd driver takes crowd_size
// (when cfg.crowd_size == -1, "auto").  All three are dispatch knobs only:
// they reorder sweeps and regroup tiles but never change trajectories.
//
// Lives in qmc/ (not core/) because it probes the real driver: core knows
// nothing about the qmc layer, while this header sits next to run_miniqmc.
#ifndef MQC_QMC_MINIQMC_TUNER_H
#define MQC_QMC_MINIQMC_TUNER_H

#include <string>
#include <vector>

#include "core/tuner.h"
#include "qmc/miniqmc_driver.h"

namespace mqc {

/// The wisdom key run_miniqmc and tune_miniqmc agree on: the driver's
/// problem is identified by its orbital count, cubic grid size, and walker
/// population (kernels are float in the miniQMC sweep).
std::string miniqmc_wisdom_key(int num_orbitals, int grid_size, int num_walkers);

/// Result of a crowd-size sweep with the real crowd driver.
struct CrowdTuneResult
{
  int best_crowd_size = 0;
  double best_seconds = 0.0;
  std::vector<int> crowd_sizes;
  std::vector<double> seconds;
};

/// Probe run_miniqmc (driver := Crowd) at each candidate crowd size and
/// return the sweep.  Each candidate is re-run until at least @p min_seconds
/// of measurement accumulate (scoring the fastest run), so one scheduling
/// hiccup can't crown the wrong candidate.  Candidates larger than the
/// walker population are skipped; an empty candidate list uses
/// default_block_candidates(nw) — the crowd is the position block of the
/// lock-step driver, so the two knobs share one candidate ladder.
CrowdTuneResult tune_crowd_size(const MiniQMCConfig& cfg, std::vector<int> candidates = {},
                                double min_seconds = 0.05);

/// Result of an inner-team sweep with the real crowd driver.
struct InnerTuneResult
{
  int best_inner = 1;
  double best_seconds = 0.0;
  std::vector<int> inner_sizes;
  std::vector<double> seconds;
};

/// Probe run_miniqmc (driver := Crowd, cfg's crowd size) across inner team
/// sizes — the nested Opt C layer's knob — and return the sweep.  An empty
/// candidate list probes powers of two from 1 up to the machine threads
/// left per crowd (always including 1, the flat schedule), so on a
/// fully-occupied machine the sweep is just {1} and costs one probe.  The
/// winner is what tune_miniqmc records as the wisdom entry's inner_threads.
InnerTuneResult tune_inner_threads(const MiniQMCConfig& cfg, std::vector<int> candidates = {},
                                   double min_seconds = 0.05);

/// One-stop miniQMC tuning: run the joint (Nb, P) sweep on the driver's own
/// coefficient problem, then the crowd-size sweep AT the tuned tile size,
/// then the inner-team sweep AT the tuned crowd size, and record the
/// winners as ONE wisdom entry (v4 fields) under miniqmc_wisdom_key().
/// Returns the recorded entry.
Wisdom::Entry tune_miniqmc(Wisdom& wisdom, const MiniQMCConfig& cfg, double min_seconds = 0.05);

} // namespace mqc

#endif // MQC_QMC_MINIQMC_TUNER_H
