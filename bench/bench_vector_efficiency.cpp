// §VI-A "vector efficiency": throughput with vectorization enabled divided
// by throughput of the same algorithm compiled scalar (the paper's
// "-no-vec -no-simd -no-openmp-simd" measurement).  Paper, KNL @ N=256:
// AoS baseline ~1.2x (the strided stores defeat SIMD), SoA > 4x.
//
// The scalar twins below replicate the engine inner loops inside functions
// marked __attribute__((optimize("no-tree-vectorize"))) — per-function
// scalarization without a second build of the library (and without ODR
// hazards from re-including the headers under different flags).
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "common/timer.h"
#include "core/weights.h"
#include "bench_common.h"

namespace {

using namespace mqc;

#if defined(__GNUC__) && !defined(__clang__)
#define MQC_NOVEC_FN __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define MQC_NOVEC_FN
#endif

/// Scalar twin of BsplineSoA<float>::evaluate_vgh (fused z-sums, 10 streams).
MQC_NOVEC_FN void vgh_soa_scalar(const CoefStorage<float>& coefs, float x, float y, float z,
                                 float* MQC_RESTRICT v, float* MQC_RESTRICT g,
                                 float* MQC_RESTRICT h, std::size_t stride)
{
  BsplineWeights3D<float> w;
  compute_weights_vgh(coefs.grid(), x, y, z, w);
  const int np = static_cast<int>(coefs.padded_splines());
  const std::size_t zs = coefs.stride_z();
  float* gx = g;
  float* gy = g + stride;
  float* gz = g + 2 * stride;
  float* hxx = h;
  float* hxy = h + stride;
  float* hxz = h + 2 * stride;
  float* hyy = h + 3 * stride;
  float* hyz = h + 4 * stride;
  float* hzz = h + 5 * stride;
  std::fill_n(v, static_cast<std::size_t>(np), 0.0f);
  for (int q = 0; q < 3; ++q)
    std::fill_n(g + static_cast<std::size_t>(q) * stride, static_cast<std::size_t>(np), 0.0f);
  for (int q = 0; q < 6; ++q)
    std::fill_n(h + static_cast<std::size_t>(q) * stride, static_cast<std::size_t>(np), 0.0f);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      const float* p0 = coefs.row(w.i0 + i, w.j0 + j, w.k0);
      const float* p1 = p0 + zs;
      const float* p2 = p0 + 2 * zs;
      const float* p3 = p0 + 3 * zs;
      const float pre00 = w.a[i] * w.b[j];
      const float pre01 = w.a[i] * w.db[j];
      const float pre02 = w.a[i] * w.d2b[j];
      const float pre10 = w.da[i] * w.b[j];
      const float pre11 = w.da[i] * w.db[j];
      const float pre20 = w.d2a[i] * w.b[j];
      for (int n = 0; n < np; ++n) {
        const float P0 = p0[n], P1 = p1[n], P2 = p2[n], P3 = p3[n];
        const float s = w.c[0] * P0 + w.c[1] * P1 + w.c[2] * P2 + w.c[3] * P3;
        const float ds = w.dc[0] * P0 + w.dc[1] * P1 + w.dc[2] * P2 + w.dc[3] * P3;
        const float d2s = w.d2c[0] * P0 + w.d2c[1] * P1 + w.d2c[2] * P2 + w.d2c[3] * P3;
        v[n] += pre00 * s;
        gx[n] += pre10 * s;
        gy[n] += pre01 * s;
        gz[n] += pre00 * ds;
        hxx[n] += pre20 * s;
        hxy[n] += pre11 * s;
        hxz[n] += pre10 * ds;
        hyy[n] += pre02 * s;
        hyz[n] += pre01 * ds;
        hzz[n] += pre00 * d2s;
      }
    }
}

/// Scalar twin of BsplineAoS<float>::evaluate_vgh (13 strided components).
MQC_NOVEC_FN void vgh_aos_scalar(const CoefStorage<float>& coefs, float x, float y, float z,
                                 float* MQC_RESTRICT v, float* MQC_RESTRICT g,
                                 float* MQC_RESTRICT h)
{
  BsplineWeights3D<float> w;
  compute_weights_vgh(coefs.grid(), x, y, z, w);
  const int np = static_cast<int>(coefs.padded_splines());
  std::fill_n(v, static_cast<std::size_t>(np), 0.0f);
  std::fill_n(g, 3 * static_cast<std::size_t>(np), 0.0f);
  std::fill_n(h, 9 * static_cast<std::size_t>(np), 0.0f);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      for (int k = 0; k < 4; ++k) {
        const float wv = w.a[i] * w.b[j] * w.c[k];
        const float wx = w.da[i] * w.b[j] * w.c[k];
        const float wy = w.a[i] * w.db[j] * w.c[k];
        const float wz = w.a[i] * w.b[j] * w.dc[k];
        const float wxx = w.d2a[i] * w.b[j] * w.c[k];
        const float wxy = w.da[i] * w.db[j] * w.c[k];
        const float wxz = w.da[i] * w.b[j] * w.dc[k];
        const float wyy = w.a[i] * w.d2b[j] * w.c[k];
        const float wyz = w.a[i] * w.db[j] * w.dc[k];
        const float wzz = w.a[i] * w.b[j] * w.d2c[k];
        const float* p = coefs.row(w.i0 + i, w.j0 + j, w.k0 + k);
        for (int n = 0; n < np; ++n) {
          const float pn = p[n];
          v[n] += wv * pn;
          g[3 * n + 0] += wx * pn;
          g[3 * n + 1] += wy * pn;
          g[3 * n + 2] += wz * pn;
          h[9 * n + 0] += wxx * pn;
          h[9 * n + 1] += wxy * pn;
          h[9 * n + 2] += wxz * pn;
          h[9 * n + 3] += wxy * pn;
          h[9 * n + 4] += wyy * pn;
          h[9 * n + 5] += wyz * pn;
          h[9 * n + 6] += wxz * pn;
          h[9 * n + 7] += wyz * pn;
          h[9 * n + 8] += wzz * pn;
        }
      }
}

template <typename Fn>
double throughput_single_thread(Fn&& fn, int num_splines, int ns, double min_seconds)
{
  const double t = time_per_iteration(fn, min_seconds, 2);
  return static_cast<double>(num_splines) * ns / t;
}

} // namespace

int main()
{
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();
  const int n = 256; // the paper quotes vector efficiency at N=256
  const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
  auto coefs = mqc::make_random_storage<float>(grid, n, 606);
  const auto pos = random_eval_positions(grid, scale.ns, 7);

  mqc::print_banner(std::cout, "Vector efficiency (vectorized / scalar build), VGH at N=" +
                                   std::to_string(n));

  // Vectorized paths (single thread for an apples-to-apples ratio).
  const double t_soa_vec =
      measure_seconds_per_eval(Layout::SoA, Kernel::VGH, *coefs, n, scale.ns, scale.min_seconds);
  const double t_aos_vec =
      measure_seconds_per_eval(Layout::AoS, Kernel::VGH, *coefs, n, scale.ns, scale.min_seconds);

  // Scalar twins.
  std::shared_ptr<const mqc::CoefStorage<float>> alias(&*coefs,
                                                       [](const mqc::CoefStorage<float>*) {});
  mqc::WalkerSoA<float> ws(coefs->padded_splines());
  mqc::WalkerAoS<float> wa(coefs->padded_splines());
  const int ns = scale.ns;
  const double T_soa_scalar = throughput_single_thread(
      [&] {
        for (int s = 0; s < ns; ++s)
          vgh_soa_scalar(*coefs, pos.x[static_cast<std::size_t>(s)],
                         pos.y[static_cast<std::size_t>(s)], pos.z[static_cast<std::size_t>(s)],
                         ws.v.data(), ws.g.data(), ws.h.data(), ws.stride);
      },
      n, ns, scale.min_seconds);
  const double T_aos_scalar = throughput_single_thread(
      [&] {
        for (int s = 0; s < ns; ++s)
          vgh_aos_scalar(*coefs, pos.x[static_cast<std::size_t>(s)],
                         pos.y[static_cast<std::size_t>(s)], pos.z[static_cast<std::size_t>(s)],
                         wa.v.data(), wa.g.data(), wa.h.data());
      },
      n, ns, scale.min_seconds);

  const double T_soa_vec = static_cast<double>(n) / t_soa_vec;
  const double T_aos_vec = static_cast<double>(n) / t_aos_vec;

  mqc::TablePrinter tp({"layout", "scalar (Meval/s)", "vectorized (Meval/s)", "vector efficiency",
                        "paper KNL"});
  tp.add_row({"AoS", mqc::TablePrinter::cell(T_aos_scalar / 1e6, 2),
              mqc::TablePrinter::cell(T_aos_vec / 1e6, 2),
              mqc::TablePrinter::cell(T_aos_vec / T_aos_scalar, 2), "1.2"});
  tp.add_row({"SoA", mqc::TablePrinter::cell(T_soa_scalar / 1e6, 2),
              mqc::TablePrinter::cell(T_soa_vec / 1e6, 2),
              mqc::TablePrinter::cell(T_soa_vec / T_soa_scalar, 2), "> 4"});
  tp.print(std::cout);
  std::cout << "\nShape check: SoA converts vector width into real speedup; the AoS layout\n"
               "cannot (strided stores), which is the whole premise of Opt A.\n";
  return 0;
}
