// Piecewise-cubic B-spline basis weights and derivatives (paper Eq. 5, Fig 2).
//
// For t in [0,1) the four basis functions contributing inside one cell are
//   a0(t) = (1-t)^3 / 6
//   a1(t) = (3t^3 - 6t^2 + 4) / 6
//   a2(t) = (-3t^3 + 3t^2 + 3t + 1) / 6
//   a3(t) = t^3 / 6
// written below as dot products with the einspline 4x4 coefficient matrices.
// Invariants the test suite checks: partition of unity (sum a == 1),
// sum da == 0, sum d2a == 0, and C2 continuity across cell boundaries.
#ifndef MQC_CORE_BSPLINE_BASIS_H
#define MQC_CORE_BSPLINE_BASIS_H

namespace mqc {

/// Value weights a[0..3] at fractional coordinate t.
template <typename T>
inline void bspline_weights(T t, T a[4]) noexcept
{
  const T t2 = t * t;
  const T t3 = t2 * t;
  constexpr T c6 = T(1) / T(6);
  a[0] = c6 * (-t3 + T(3) * t2 - T(3) * t + T(1));
  a[1] = c6 * (T(3) * t3 - T(6) * t2 + T(4));
  a[2] = c6 * (T(-3) * t3 + T(3) * t2 + T(3) * t + T(1));
  a[3] = c6 * t3;
}

/// Value + first-derivative weights.  da is d/dt; the caller scales by the
/// grid's delta_inv to get d/dx.
template <typename T>
inline void bspline_weights_d1(T t, T a[4], T da[4]) noexcept
{
  bspline_weights(t, a);
  const T t2 = t * t;
  da[0] = T(-0.5) * t2 + t - T(0.5);
  da[1] = T(1.5) * t2 - T(2) * t;
  da[2] = T(-1.5) * t2 + t + T(0.5);
  da[3] = T(0.5) * t2;
}

/// Value + first + second derivative weights (d2a is d^2/dt^2; scale by
/// delta_inv^2 for d^2/dx^2).
template <typename T>
inline void bspline_weights_d2(T t, T a[4], T da[4], T d2a[4]) noexcept
{
  bspline_weights_d1(t, a, da);
  d2a[0] = T(1) - t;
  d2a[1] = T(3) * t - T(2);
  d2a[2] = T(-3) * t + T(1);
  d2a[3] = t;
}

/// All per-axis weights for one 3D evaluation point, with derivative weights
/// already scaled into physical units.  Computing this once per position is
/// the amortized "prefactor" cost the paper refers to.
template <typename T>
struct BsplineWeights3D
{
  int i0 = 0, j0 = 0, k0 = 0;           ///< lower-bound cell indices
  T a[4], b[4], c[4];                   ///< value weights (x, y, z axes)
  T da[4], db[4], dc[4];                ///< d/dx, d/dy, d/dz weights
  T d2a[4], d2b[4], d2c[4];             ///< second-derivative weights
};

} // namespace mqc

#endif // MQC_CORE_BSPLINE_BASIS_H
