// Fixture: explicitly seeded engines and non-RNG identifiers are fine.
// Expected: 0 [unseeded-rng] findings.
#include <cstdint>
#include <random>

double sample(std::uint64_t seed)
{
  std::mt19937_64 gen(seed);            // seeded from the run configuration
  const double wtime = 0.0;             // `omp_get_wtime()`-style name, not time()
  double downtime(wtime);               // identifier merely containing "time"
  return static_cast<double>(gen()) + downtime;
}
