// Optimized engine with SoA output layout (paper Fig. 4(b), Opt A).
//
// Differences from the AoS baseline, exactly the paper's §V-A list:
//   * each output component is its own unit-stride, 64-byte-aligned stream:
//     v | gx gy gz | hxx hxy hxz hyy hyz hzz — 10 streams instead of 13
//     AoS components (the symmetric Hessian is stored once),
//   * the z loop is unrolled into fused partial sums, so the innermost loop
//     reads four coefficient streams and performs pure FMA accumulation,
//   * no temporaries are allocated per call,
//   * the first (i,j) weight iteration *stores* (`=`) into the output streams
//     and only the remaining 15 accumulate (`+=`), so there is no separate
//     zero-fill pass over the outputs (one fewer full write sweep per call).
//
// Output layout: component q of a family lives at base + q*stride where
// stride is the caller's component stride (>= padded_splines(), multiple of
// the SIMD lane count).  This lets one engine serve both a standalone SoA
// walker buffer and a tile slice of an AoSoA walker buffer.
//
// Two entry-point families:
//   * evaluate_v/vgl/vgh(x, y, z, ...) — single position, weights computed
//     internally;
//   * evaluate_v/vgl/vgh_w(weights, ...) and the *_multi block variants —
//     the multi-position evaluation layer: the caller precomputes a block of
//     weight sets (core/weights.h batch helpers) and the engine sweeps its
//     coefficient table once per block, amortizing the table traffic over
//     all P positions (the cache-residency extension of the paper's AoSoA
//     analysis; see core/batched.h).
//
// Precision split (PrecisionPath, ROADMAP item 3): the element type is two
// parameters, `BsplineSoA<TStore, TCompute>`.  TStore is the interface type
// — coefficient storage, positions in, output streams out; TCompute is the
// internal type for weights, prefactors and accumulation.  The historical
// single-parameter form `BsplineSoA<T>` is the TCompute = TStore default and
// compiles (and computes) bit-for-bit unchanged.  `BsplineSoA<float, double>`
// is the mixed path: float tables (half a DP table's streamed bytes), every
// weight product and partial sum carried in double inside a cache-resident
// accumulation tile, one narrowing store per output element at the end.
// Weights are always computed on a TCompute copy of the grid (exact: grid
// bounds are converted, derived members recomputed in TCompute).
#ifndef MQC_CORE_BSPLINE_SOA_H
#define MQC_CORE_BSPLINE_SOA_H

#include <algorithm>
#include <cassert>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/config.h"
#include "common/simd.h"
#include "common/vec3.h"
#include "core/coef_storage.h"
#include "core/weights.h"

namespace mqc {

template <typename TStore, typename TCompute = TStore>
class BsplineSoA
{
public:
  using store_type = TStore;
  using compute_type = TCompute;
  using weights_type = BsplineWeights3D<TCompute>;

  static constexpr bool is_mixed = !std::is_same_v<TStore, TCompute>;

  explicit BsplineSoA(std::shared_ptr<const CoefStorage<TStore>> coefs)
      : coefs_(std::move(coefs)), cgrid_(convert_grid<TCompute>(coefs_->grid()))
  {
  }

  [[nodiscard]] int num_splines() const noexcept { return coefs_->num_splines(); }
  [[nodiscard]] std::size_t padded_splines() const noexcept { return coefs_->padded_splines(); }
  [[nodiscard]] const CoefStorage<TStore>& coefs() const noexcept { return *coefs_; }
  /// Bytes of coefficient table this engine streams per full sweep.
  [[nodiscard]] std::size_t coef_bytes() const noexcept { return coefs_->size_bytes(); }
  /// The grid weights must be computed on: a TCompute copy of the table's
  /// grid (identical to coefs().grid() when TCompute == TStore).
  [[nodiscard]] const Grid3D<TCompute>& eval_grid() const noexcept { return cgrid_; }
  /// Natural component stride when this engine owns the whole orbital set.
  [[nodiscard]] std::size_t out_stride() const noexcept { return coefs_->padded_splines(); }

  // -- single-position kernels (weights computed internally) ---------------

  /// Values only (z-unrolled; layout is already unit-stride for V).
  void evaluate_v(TStore x, TStore y, TStore z, TStore* MQC_RESTRICT v) const
  {
    weights_type w;
    compute_weights_v(cgrid_, static_cast<TCompute>(x), static_cast<TCompute>(y),
                      static_cast<TCompute>(z), w);
    evaluate_v_w(w, v);
  }

  /// Value + gradient + Laplacian; 5 SoA streams (v | gx gy gz via g,stride | l).
  void evaluate_vgl(TStore x, TStore y, TStore z, TStore* MQC_RESTRICT v, TStore* MQC_RESTRICT g,
                    TStore* MQC_RESTRICT l, std::size_t stride) const
  {
    weights_type w;
    compute_weights_vgh(cgrid_, static_cast<TCompute>(x), static_cast<TCompute>(y),
                        static_cast<TCompute>(z), w);
    evaluate_vgl_w(w, v, g, l, stride);
  }

  /// Value + gradient + symmetric Hessian; 10 SoA streams
  /// (v | gx gy gz via g,stride | hxx hxy hxz hyy hyz hzz via h,stride).
  void evaluate_vgh(TStore x, TStore y, TStore z, TStore* MQC_RESTRICT v, TStore* MQC_RESTRICT g,
                    TStore* MQC_RESTRICT h, std::size_t stride) const
  {
    weights_type w;
    compute_weights_vgh(cgrid_, static_cast<TCompute>(x), static_cast<TCompute>(y),
                        static_cast<TCompute>(z), w);
    evaluate_vgh_w(w, v, g, h, stride);
  }

  // -- precomputed-weights kernels (unit of multi-position work) -----------
  //
  // The weights must have been computed on this engine's eval_grid() (for an
  // AoSoA tile: the shared full-set grid) with compute_weights_v / _vgh or
  // their batch variants.

  void evaluate_v_w(const weights_type& w, TStore* MQC_RESTRICT v) const
  {
    if constexpr (!is_mixed) {
      v_term<true>(w, 0, 0, v);
      for (int i = 0; i < 4; ++i)
        for (int j = (i == 0 ? 1 : 0); j < 4; ++j)
          v_term<false>(w, i, j, v);
    } else {
      // Mixed: accumulate every (i,j) term of a kBlock-wide slice into a
      // TCompute tile, then narrow once.  Per element the chain of adds is
      // order-identical to the same-type kernel's, so a DP reference run
      // over an upcast copy of this table reproduces these outputs exactly
      // (up to the final narrowing store).
      const int np = static_cast<int>(coefs_->padded_splines());
      alignas(kAlignment) TCompute acc[kBlock];
      for (int n0 = 0; n0 < np; n0 += kBlock) {
        const int nb = std::min(kBlock, np - n0);
        v_term_blk<true>(w, 0, 0, n0, nb, acc);
        for (int i = 0; i < 4; ++i)
          for (int j = (i == 0 ? 1 : 0); j < 4; ++j)
            v_term_blk<false>(w, i, j, n0, nb, acc);
        narrow_store(acc, nb, v + n0);
      }
    }
  }

  void evaluate_vgl_w(const weights_type& w, TStore* MQC_RESTRICT v, TStore* MQC_RESTRICT g,
                      TStore* MQC_RESTRICT l, std::size_t stride) const
  {
    assert(stride >= coefs_->padded_splines() && stride % simd_lanes<TStore> == 0);
    TStore* MQC_RESTRICT gx = g;
    TStore* MQC_RESTRICT gy = g + stride;
    TStore* MQC_RESTRICT gz = g + 2 * stride;
    if constexpr (!is_mixed) {
      vgl_term<true>(w, 0, 0, v, gx, gy, gz, l);
      for (int i = 0; i < 4; ++i)
        for (int j = (i == 0 ? 1 : 0); j < 4; ++j)
          vgl_term<false>(w, i, j, v, gx, gy, gz, l);
    } else {
      const int np = static_cast<int>(coefs_->padded_splines());
      alignas(kAlignment) TCompute acc[5][kBlock];
      for (int n0 = 0; n0 < np; n0 += kBlock) {
        const int nb = std::min(kBlock, np - n0);
        vgl_term_blk<true>(w, 0, 0, n0, nb, acc);
        for (int i = 0; i < 4; ++i)
          for (int j = (i == 0 ? 1 : 0); j < 4; ++j)
            vgl_term_blk<false>(w, i, j, n0, nb, acc);
        narrow_store(acc[0], nb, v + n0);
        narrow_store(acc[1], nb, gx + n0);
        narrow_store(acc[2], nb, gy + n0);
        narrow_store(acc[3], nb, gz + n0);
        narrow_store(acc[4], nb, l + n0);
      }
    }
  }

  void evaluate_vgh_w(const weights_type& w, TStore* MQC_RESTRICT v, TStore* MQC_RESTRICT g,
                      TStore* MQC_RESTRICT h, std::size_t stride) const
  {
    assert(stride >= coefs_->padded_splines() && stride % simd_lanes<TStore> == 0);
    TStore* MQC_RESTRICT gx = g;
    TStore* MQC_RESTRICT gy = g + stride;
    TStore* MQC_RESTRICT gz = g + 2 * stride;
    TStore* MQC_RESTRICT hxx = h;
    TStore* MQC_RESTRICT hxy = h + stride;
    TStore* MQC_RESTRICT hxz = h + 2 * stride;
    TStore* MQC_RESTRICT hyy = h + 3 * stride;
    TStore* MQC_RESTRICT hyz = h + 4 * stride;
    TStore* MQC_RESTRICT hzz = h + 5 * stride;
    if constexpr (!is_mixed) {
      vgh_term<true>(w, 0, 0, v, gx, gy, gz, hxx, hxy, hxz, hyy, hyz, hzz);
      for (int i = 0; i < 4; ++i)
        for (int j = (i == 0 ? 1 : 0); j < 4; ++j)
          vgh_term<false>(w, i, j, v, gx, gy, gz, hxx, hxy, hxz, hyy, hyz, hzz);
    } else {
      const int np = static_cast<int>(coefs_->padded_splines());
      // 10 components x 64 doubles = 5120 B of stack tile — L1-resident.
      alignas(kAlignment) TCompute acc[10][kBlock];
      for (int n0 = 0; n0 < np; n0 += kBlock) {
        const int nb = std::min(kBlock, np - n0);
        vgh_term_blk<true>(w, 0, 0, n0, nb, acc);
        for (int i = 0; i < 4; ++i)
          for (int j = (i == 0 ? 1 : 0); j < 4; ++j)
            vgh_term_blk<false>(w, i, j, n0, nb, acc);
        narrow_store(acc[0], nb, v + n0);
        narrow_store(acc[1], nb, gx + n0);
        narrow_store(acc[2], nb, gy + n0);
        narrow_store(acc[3], nb, gz + n0);
        narrow_store(acc[4], nb, hxx + n0);
        narrow_store(acc[5], nb, hxy + n0);
        narrow_store(acc[6], nb, hxz + n0);
        narrow_store(acc[7], nb, hyy + n0);
        narrow_store(acc[8], nb, hyz + n0);
        narrow_store(acc[9], nb, hzz + n0);
      }
    }
  }

  // -- multi-position block kernels ----------------------------------------
  //
  // Evaluate `count` precomputed weight sets back to back against this
  // engine's coefficient table; position p writes into v[p] (g[p], ...), all
  // sharing one component stride.  While the block runs, the table (for an
  // AoSoA tile: the 4*Ng*Nb-byte slice) stays cache-resident and is streamed
  // from memory once instead of `count` times.

  void evaluate_v_multi(const weights_type* w, int count, TStore* const* v) const
  {
    for (int p = 0; p < count; ++p)
      evaluate_v_w(w[p], v[p]);
  }

  void evaluate_vgl_multi(const weights_type* w, int count, TStore* const* v, TStore* const* g,
                          TStore* const* l, std::size_t stride) const
  {
    for (int p = 0; p < count; ++p)
      evaluate_vgl_w(w[p], v[p], g[p], l[p], stride);
  }

  void evaluate_vgh_multi(const weights_type* w, int count, TStore* const* v, TStore* const* g,
                          TStore* const* h, std::size_t stride) const
  {
    for (int p = 0; p < count; ++p)
      evaluate_vgh_w(w[p], v[p], g[p], h[p], stride);
  }

  /// Position-based convenience: computes the block's weight sets up front
  /// via the core/weights.h batch helper, then runs the block kernel.
  void evaluate_v_multi(const Vec3<TStore>* pos, int count, TStore* const* v) const
  {
    std::vector<weights_type> w(static_cast<std::size_t>(count));
    compute_weights_v_batch(cgrid_, pos, count, w.data());
    evaluate_v_multi(w.data(), count, v);
  }

  void evaluate_vgl_multi(const Vec3<TStore>* pos, int count, TStore* const* v, TStore* const* g,
                          TStore* const* l, std::size_t stride) const
  {
    std::vector<weights_type> w(static_cast<std::size_t>(count));
    compute_weights_vgh_batch(cgrid_, pos, count, w.data());
    evaluate_vgl_multi(w.data(), count, v, g, l, stride);
  }

  void evaluate_vgh_multi(const Vec3<TStore>* pos, int count, TStore* const* v, TStore* const* g,
                          TStore* const* h, std::size_t stride) const
  {
    std::vector<weights_type> w(static_cast<std::size_t>(count));
    compute_weights_vgh_batch(cgrid_, pos, count, w.data());
    evaluate_vgh_multi(w.data(), count, v, g, h, stride);
  }

  /// Convenience overloads using the engine's natural stride.
  void evaluate_vgl(TStore x, TStore y, TStore z, TStore* v, TStore* g, TStore* l) const
  {
    evaluate_vgl(x, y, z, v, g, l, out_stride());
  }
  void evaluate_vgh(TStore x, TStore y, TStore z, TStore* v, TStore* g, TStore* h) const
  {
    evaluate_vgh(x, y, z, v, g, h, out_stride());
  }

  /// Ablation variant (DESIGN.md #1): SoA output layout but WITHOUT the
  /// fused z-sums — the inner loop still walks all 64 (i,j,k) sub-cubes as
  /// the baseline does.  Isolates the layout transformation from the z-loop
  /// unrolling so the bench harness can attribute the Opt-A gain.  Also kept
  /// on the old fill_n-then-accumulate scheme, so it doubles as the ablation
  /// reference for the zero-fill elimination.  Same-type engines only — the
  /// mixed path has no legacy scheme to ablate against.
  void evaluate_vgh_no_zunroll(TStore x, TStore y, TStore z, TStore* MQC_RESTRICT v,
                               TStore* MQC_RESTRICT g, TStore* MQC_RESTRICT h,
                               std::size_t stride) const
    requires(!is_mixed)
  {
    using T = TStore;
    assert(stride >= coefs_->padded_splines() && stride % simd_lanes<T> == 0);
    BsplineWeights3D<T> w;
    compute_weights_vgh(coefs_->grid(), x, y, z, w);
    const int np = static_cast<int>(coefs_->padded_splines());
    T* MQC_RESTRICT gx = g;
    T* MQC_RESTRICT gy = g + stride;
    T* MQC_RESTRICT gz = g + 2 * stride;
    T* MQC_RESTRICT hxx = h;
    T* MQC_RESTRICT hxy = h + stride;
    T* MQC_RESTRICT hxz = h + 2 * stride;
    T* MQC_RESTRICT hyy = h + 3 * stride;
    T* MQC_RESTRICT hyz = h + 4 * stride;
    T* MQC_RESTRICT hzz = h + 5 * stride;
    std::fill_n(v, static_cast<std::size_t>(np), T(0));
    for (int q = 0; q < 3; ++q)
      std::fill_n(g + static_cast<std::size_t>(q) * stride, static_cast<std::size_t>(np), T(0));
    for (int q = 0; q < 6; ++q)
      std::fill_n(h + static_cast<std::size_t>(q) * stride, static_cast<std::size_t>(np), T(0));
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        for (int k = 0; k < 4; ++k) {
          const T* MQC_RESTRICT p = coefs_->row(w.i0 + i, w.j0 + j, w.k0 + k);
          const T wv = w.a[i] * w.b[j] * w.c[k];
          const T wx = w.da[i] * w.b[j] * w.c[k];
          const T wy = w.a[i] * w.db[j] * w.c[k];
          const T wz = w.a[i] * w.b[j] * w.dc[k];
          const T wxx = w.d2a[i] * w.b[j] * w.c[k];
          const T wxy = w.da[i] * w.db[j] * w.c[k];
          const T wxz = w.da[i] * w.b[j] * w.dc[k];
          const T wyy = w.a[i] * w.d2b[j] * w.c[k];
          const T wyz = w.a[i] * w.db[j] * w.dc[k];
          const T wzz = w.a[i] * w.b[j] * w.d2c[k];
          MQC_SIMD_ALIGNED(v, gx, gy, gz, hxx, hxy, hxz, hyy, hyz, hzz, p)
          for (int n = 0; n < np; ++n) {
            const T pn = p[n];
            v[n] += wv * pn;
            gx[n] += wx * pn;
            gy[n] += wy * pn;
            gz[n] += wz * pn;
            hxx[n] += wxx * pn;
            hxy[n] += wxy * pn;
            hxz[n] += wxz * pn;
            hyy[n] += wyy * pn;
            hyz[n] += wyz * pn;
            hzz[n] += wzz * pn;
          }
        }
  }

private:
  // One (i,j) term of the tensor-product sum, z loop fused.  First=true
  // stores (`=`) into the output streams, First=false accumulates (`+=`);
  // running the (0,0) term with stores is what eliminates the zero-fill
  // pass.  The three kernels share this structure; each reads exactly the
  // four coefficient rows (i, j, k0..k0+3).
  //
  // Same-type engines accumulate straight into the caller's output streams
  // (`*_term`).  Mixed engines must NOT round-trip partial sums through the
  // narrow output type, so they run the identical term sequence over a
  // TCompute accumulation tile of kBlock elements (`*_term_blk`) and narrow
  // once per element at the end of the block.

  /// Accumulation-tile width for the mixed path: a multiple of both types'
  /// SIMD lane counts; 10 components x kBlock doubles = 5 KiB on the stack.
  static constexpr int kBlock = 64;

  void narrow_store(const TCompute* MQC_RESTRICT acc, int nb, TStore* MQC_RESTRICT out) const
  {
    for (int n = 0; n < nb; ++n)
      out[n] = static_cast<TStore>(acc[n]);
  }

  template <bool First>
  void v_term(const weights_type& w, int i, int j, TStore* MQC_RESTRICT v) const
  {
    using T = TStore;
    const int np = static_cast<int>(coefs_->padded_splines());
    const std::size_t zs = coefs_->stride_z();
    const T* MQC_RESTRICT p0 = coefs_->row(w.i0 + i, w.j0 + j, w.k0);
    const T* MQC_RESTRICT p1 = p0 + zs;
    const T* MQC_RESTRICT p2 = p0 + 2 * zs;
    const T* MQC_RESTRICT p3 = p0 + 3 * zs;
    const T pre00 = w.a[i] * w.b[j];
    const T c0 = w.c[0], c1 = w.c[1], c2 = w.c[2], c3 = w.c[3];
    MQC_SIMD_ALIGNED(v, p0, p1, p2, p3)
    for (int n = 0; n < np; ++n) {
      const T s = pre00 * (c0 * p0[n] + c1 * p1[n] + c2 * p2[n] + c3 * p3[n]);
      if constexpr (First)
        v[n] = s;
      else
        v[n] += s;
    }
  }

  template <bool First>
  void vgl_term(const weights_type& w, int i, int j, TStore* MQC_RESTRICT v,
                TStore* MQC_RESTRICT gx, TStore* MQC_RESTRICT gy, TStore* MQC_RESTRICT gz,
                TStore* MQC_RESTRICT l) const
  {
    using T = TStore;
    const int np = static_cast<int>(coefs_->padded_splines());
    const std::size_t zs = coefs_->stride_z();
    const T* MQC_RESTRICT p0 = coefs_->row(w.i0 + i, w.j0 + j, w.k0);
    const T* MQC_RESTRICT p1 = p0 + zs;
    const T* MQC_RESTRICT p2 = p0 + 2 * zs;
    const T* MQC_RESTRICT p3 = p0 + 3 * zs;
    const T pre00 = w.a[i] * w.b[j];
    const T pre01 = w.a[i] * w.db[j];
    const T pre10 = w.da[i] * w.b[j];
    const T pre2t = w.d2a[i] * w.b[j] + w.a[i] * w.d2b[j]; // (d2x + d2y) factor
    const T c0 = w.c[0], c1 = w.c[1], c2 = w.c[2], c3 = w.c[3];
    const T dc0 = w.dc[0], dc1 = w.dc[1], dc2 = w.dc[2], dc3 = w.dc[3];
    const T e0 = w.d2c[0], e1 = w.d2c[1], e2 = w.d2c[2], e3 = w.d2c[3];
    MQC_SIMD_ALIGNED(v, gx, gy, gz, l, p0, p1, p2, p3)
    for (int n = 0; n < np; ++n) {
      const T P0 = p0[n], P1 = p1[n], P2 = p2[n], P3 = p3[n];
      const T s = c0 * P0 + c1 * P1 + c2 * P2 + c3 * P3;
      const T ds = dc0 * P0 + dc1 * P1 + dc2 * P2 + dc3 * P3;
      const T d2s = e0 * P0 + e1 * P1 + e2 * P2 + e3 * P3;
      if constexpr (First) {
        v[n] = pre00 * s;
        gx[n] = pre10 * s;
        gy[n] = pre01 * s;
        gz[n] = pre00 * ds;
        l[n] = pre2t * s + pre00 * d2s;
      } else {
        v[n] += pre00 * s;
        gx[n] += pre10 * s;
        gy[n] += pre01 * s;
        gz[n] += pre00 * ds;
        l[n] += pre2t * s + pre00 * d2s;
      }
    }
  }

  template <bool First>
  void vgh_term(const weights_type& w, int i, int j, TStore* MQC_RESTRICT v,
                TStore* MQC_RESTRICT gx, TStore* MQC_RESTRICT gy, TStore* MQC_RESTRICT gz,
                TStore* MQC_RESTRICT hxx, TStore* MQC_RESTRICT hxy, TStore* MQC_RESTRICT hxz,
                TStore* MQC_RESTRICT hyy, TStore* MQC_RESTRICT hyz, TStore* MQC_RESTRICT hzz) const
  {
    using T = TStore;
    const int np = static_cast<int>(coefs_->padded_splines());
    const std::size_t zs = coefs_->stride_z();
    const T* MQC_RESTRICT p0 = coefs_->row(w.i0 + i, w.j0 + j, w.k0);
    const T* MQC_RESTRICT p1 = p0 + zs;
    const T* MQC_RESTRICT p2 = p0 + 2 * zs;
    const T* MQC_RESTRICT p3 = p0 + 3 * zs;
    const T pre00 = w.a[i] * w.b[j];
    const T pre01 = w.a[i] * w.db[j];
    const T pre02 = w.a[i] * w.d2b[j];
    const T pre10 = w.da[i] * w.b[j];
    const T pre11 = w.da[i] * w.db[j];
    const T pre20 = w.d2a[i] * w.b[j];
    const T c0 = w.c[0], c1 = w.c[1], c2 = w.c[2], c3 = w.c[3];
    const T dc0 = w.dc[0], dc1 = w.dc[1], dc2 = w.dc[2], dc3 = w.dc[3];
    const T e0 = w.d2c[0], e1 = w.d2c[1], e2 = w.d2c[2], e3 = w.d2c[3];
    MQC_SIMD_ALIGNED(v, gx, gy, gz, hxx, hxy, hxz, hyy, hyz, hzz, p0, p1, p2, p3)
    for (int n = 0; n < np; ++n) {
      const T P0 = p0[n], P1 = p1[n], P2 = p2[n], P3 = p3[n];
      const T s = c0 * P0 + c1 * P1 + c2 * P2 + c3 * P3;
      const T ds = dc0 * P0 + dc1 * P1 + dc2 * P2 + dc3 * P3;
      const T d2s = e0 * P0 + e1 * P1 + e2 * P2 + e3 * P3;
      if constexpr (First) {
        v[n] = pre00 * s;
        gx[n] = pre10 * s;
        gy[n] = pre01 * s;
        gz[n] = pre00 * ds;
        hxx[n] = pre20 * s;
        hxy[n] = pre11 * s;
        hxz[n] = pre10 * ds;
        hyy[n] = pre02 * s;
        hyz[n] = pre01 * ds;
        hzz[n] = pre00 * d2s;
      } else {
        v[n] += pre00 * s;
        gx[n] += pre10 * s;
        gy[n] += pre01 * s;
        gz[n] += pre00 * ds;
        hxx[n] += pre20 * s;
        hxy[n] += pre11 * s;
        hxz[n] += pre10 * ds;
        hyy[n] += pre02 * s;
        hyz[n] += pre01 * ds;
        hzz[n] += pre00 * d2s;
      }
    }
  }

  // -- mixed-path block terms: identical term expressions and (i,j) order,
  // -- but over a TCompute tile covering splines [n0, n0+nb).

  template <bool First>
  void v_term_blk(const weights_type& w, int i, int j, int n0, int nb,
                  TCompute* MQC_RESTRICT acc) const
  {
    using T = TCompute;
    const std::size_t zs = coefs_->stride_z();
    const TStore* MQC_RESTRICT p0 = coefs_->row(w.i0 + i, w.j0 + j, w.k0) + n0;
    const TStore* MQC_RESTRICT p1 = p0 + zs;
    const TStore* MQC_RESTRICT p2 = p0 + 2 * zs;
    const TStore* MQC_RESTRICT p3 = p0 + 3 * zs;
    const T pre00 = w.a[i] * w.b[j];
    const T c0 = w.c[0], c1 = w.c[1], c2 = w.c[2], c3 = w.c[3];
    for (int n = 0; n < nb; ++n) {
      const T s = pre00 * (c0 * static_cast<T>(p0[n]) + c1 * static_cast<T>(p1[n]) +
                           c2 * static_cast<T>(p2[n]) + c3 * static_cast<T>(p3[n]));
      if constexpr (First)
        acc[n] = s;
      else
        acc[n] += s;
    }
  }

  template <bool First>
  void vgl_term_blk(const weights_type& w, int i, int j, int n0, int nb,
                    TCompute (&acc)[5][kBlock]) const
  {
    using T = TCompute;
    const std::size_t zs = coefs_->stride_z();
    const TStore* MQC_RESTRICT p0 = coefs_->row(w.i0 + i, w.j0 + j, w.k0) + n0;
    const TStore* MQC_RESTRICT p1 = p0 + zs;
    const TStore* MQC_RESTRICT p2 = p0 + 2 * zs;
    const TStore* MQC_RESTRICT p3 = p0 + 3 * zs;
    const T pre00 = w.a[i] * w.b[j];
    const T pre01 = w.a[i] * w.db[j];
    const T pre10 = w.da[i] * w.b[j];
    const T pre2t = w.d2a[i] * w.b[j] + w.a[i] * w.d2b[j];
    const T c0 = w.c[0], c1 = w.c[1], c2 = w.c[2], c3 = w.c[3];
    const T dc0 = w.dc[0], dc1 = w.dc[1], dc2 = w.dc[2], dc3 = w.dc[3];
    const T e0 = w.d2c[0], e1 = w.d2c[1], e2 = w.d2c[2], e3 = w.d2c[3];
    for (int n = 0; n < nb; ++n) {
      const T P0 = static_cast<T>(p0[n]), P1 = static_cast<T>(p1[n]);
      const T P2 = static_cast<T>(p2[n]), P3 = static_cast<T>(p3[n]);
      const T s = c0 * P0 + c1 * P1 + c2 * P2 + c3 * P3;
      const T ds = dc0 * P0 + dc1 * P1 + dc2 * P2 + dc3 * P3;
      const T d2s = e0 * P0 + e1 * P1 + e2 * P2 + e3 * P3;
      if constexpr (First) {
        acc[0][n] = pre00 * s;
        acc[1][n] = pre10 * s;
        acc[2][n] = pre01 * s;
        acc[3][n] = pre00 * ds;
        acc[4][n] = pre2t * s + pre00 * d2s;
      } else {
        acc[0][n] += pre00 * s;
        acc[1][n] += pre10 * s;
        acc[2][n] += pre01 * s;
        acc[3][n] += pre00 * ds;
        acc[4][n] += pre2t * s + pre00 * d2s;
      }
    }
  }

  template <bool First>
  void vgh_term_blk(const weights_type& w, int i, int j, int n0, int nb,
                    TCompute (&acc)[10][kBlock]) const
  {
    using T = TCompute;
    const std::size_t zs = coefs_->stride_z();
    const TStore* MQC_RESTRICT p0 = coefs_->row(w.i0 + i, w.j0 + j, w.k0) + n0;
    const TStore* MQC_RESTRICT p1 = p0 + zs;
    const TStore* MQC_RESTRICT p2 = p0 + 2 * zs;
    const TStore* MQC_RESTRICT p3 = p0 + 3 * zs;
    const T pre00 = w.a[i] * w.b[j];
    const T pre01 = w.a[i] * w.db[j];
    const T pre02 = w.a[i] * w.d2b[j];
    const T pre10 = w.da[i] * w.b[j];
    const T pre11 = w.da[i] * w.db[j];
    const T pre20 = w.d2a[i] * w.b[j];
    const T c0 = w.c[0], c1 = w.c[1], c2 = w.c[2], c3 = w.c[3];
    const T dc0 = w.dc[0], dc1 = w.dc[1], dc2 = w.dc[2], dc3 = w.dc[3];
    const T e0 = w.d2c[0], e1 = w.d2c[1], e2 = w.d2c[2], e3 = w.d2c[3];
    for (int n = 0; n < nb; ++n) {
      const T P0 = static_cast<T>(p0[n]), P1 = static_cast<T>(p1[n]);
      const T P2 = static_cast<T>(p2[n]), P3 = static_cast<T>(p3[n]);
      const T s = c0 * P0 + c1 * P1 + c2 * P2 + c3 * P3;
      const T ds = dc0 * P0 + dc1 * P1 + dc2 * P2 + dc3 * P3;
      const T d2s = e0 * P0 + e1 * P1 + e2 * P2 + e3 * P3;
      if constexpr (First) {
        acc[0][n] = pre00 * s;
        acc[1][n] = pre10 * s;
        acc[2][n] = pre01 * s;
        acc[3][n] = pre00 * ds;
        acc[4][n] = pre20 * s;
        acc[5][n] = pre11 * s;
        acc[6][n] = pre10 * ds;
        acc[7][n] = pre02 * s;
        acc[8][n] = pre01 * ds;
        acc[9][n] = pre00 * d2s;
      } else {
        acc[0][n] += pre00 * s;
        acc[1][n] += pre10 * s;
        acc[2][n] += pre01 * s;
        acc[3][n] += pre00 * ds;
        acc[4][n] += pre20 * s;
        acc[5][n] += pre11 * s;
        acc[6][n] += pre10 * ds;
        acc[7][n] += pre02 * s;
        acc[8][n] += pre01 * ds;
        acc[9][n] += pre00 * d2s;
      }
    }
  }

  std::shared_ptr<const CoefStorage<TStore>> coefs_;
  Grid3D<TCompute> cgrid_;
};

} // namespace mqc

#endif // MQC_CORE_BSPLINE_SOA_H
