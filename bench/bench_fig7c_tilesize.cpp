// Figure 7(c): AoSoA VGH throughput as a function of tile size Nb at fixed N
// — the cache-geometry fingerprint of the host.  The paper sees a sharp L3
// peak at Nb=64 on BDW/BGQ and a broad Nb=512 optimum on KNL/KNC.
#include <iostream>

#include "common/table.h"
#include "core/tuner.h"
#include "bench_common.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();
  auto json = JsonReporter::from_args(argc, argv, "fig7c_tilesize");
  const int n = scale.n_single;

  const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
  auto coefs = make_random_storage<float>(grid, n, 2042);

  print_banner(std::cout,
               "Figure 7(c): AoSoA VGH throughput vs tile size Nb at N=" + std::to_string(n));
  const auto sweep =
      tune_tile_size_vgh(*coefs, default_tile_candidates(n, 16), scale.ns, scale.min_seconds);

  TablePrinter tp({"Nb", "tiles", "input set (MB)", "T (Meval/s)", "relative"});
  for (std::size_t i = 0; i < sweep.tiles.size(); ++i) {
    const int nb = sweep.tiles[i];
    const double set_mb = 4.0 * scale.grid * scale.grid * scale.grid * nb / 1e6;
    tp.add_row({TablePrinter::cell(nb), TablePrinter::cell((n + nb - 1) / nb),
                TablePrinter::cell(set_mb, 1), TablePrinter::cell(sweep.throughputs[i] / 1e6, 2),
                TablePrinter::cell(sweep.throughputs[i] / sweep.best_throughput, 2)});
    json.add("vgh_aosoa_nb" + std::to_string(nb), sweep.throughputs[i], "eval/s");
  }
  tp.print(std::cout);
  json.add("best_nb", sweep.best_tile, "splines");
  std::cout << "\nbest Nb on this host: " << sweep.best_tile
            << "  (paper: 64 on BDW/BGQ [L3-resident working set], 512 on KNC/KNL)\n"
            << "Shape check: throughput peaks at an intermediate Nb tied to cache size,\n"
               "not at the untiled extreme.\n";
  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
