// LU factorization with partial pivoting, determinant and inverse.
//
// The Slater-determinant machinery (paper Eq. 2-4) needs an O(N^3) reference
// inverse against which the O(N^2) Sherman-Morrison path is both seeded and
// verified.  No external BLAS/LAPACK is assumed; this is a self-contained
// double-precision implementation adequate for the N <= O(10^3) matrices QMC
// walkers carry.
#ifndef MQC_DETERMINANT_LU_H
#define MQC_DETERMINANT_LU_H

#include <vector>

#include "determinant/matrix.h"

namespace mqc {

/// In-place LU factorization (Doolittle, partial pivoting).
/// Returns false if the matrix is numerically singular.
/// piv[k] records the row swapped into position k at step k.
bool lu_factor(Matrix<double>& a, std::vector<int>& piv);

/// log|det| and sign from a factorization produced by lu_factor.
void lu_logdet(const Matrix<double>& lu, const std::vector<int>& piv, double& log_det,
               double& sign);

/// Invert in place given the factorization data (a holds LU on entry, the
/// inverse on exit).
void lu_invert(Matrix<double>& a, const std::vector<int>& piv);

/// Convenience: inverse + log|det| + sign of @p a (overwritten).
/// Returns false on singularity.
bool invert_matrix(Matrix<double>& a, double& log_det, double& sign);

/// C = A * B (naive triple loop, used in tests and the delayed-update flush).
Matrix<double> matmul(const Matrix<double>& a, const Matrix<double>& b);

} // namespace mqc

#endif // MQC_DETERMINANT_LU_H
