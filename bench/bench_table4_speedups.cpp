// Table IV: speedups of the three optimization steps at fixed N for all
// three kernels.  A = AoS->SoA, B = AoSoA (tuned tile), C = nested threading
// (the paper's C numbers include the strong-scaling factor nth, i.e. the
// reduction in time-to-solution per walker, so C ~ B * nth * efficiency).
#include <iostream>

#include "common/table.h"
#include "core/tuner.h"
#include "qmc/nested_driver.h"
#include "bench_common.h"

int main()
{
  using namespace mqc;
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();
  const int n = scale.n_single;

  const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
  auto coefs = make_random_storage<float>(grid, n, 2017);

  // Tune the tile size once (the paper reports Nb=64 on BDW/BGQ, 512 on
  // KNL/KNC; the tuner finds this host's value).
  const auto tune = tune_tile_size_vgh(*coefs, default_tile_candidates(n, 16), scale.ns,
                                       scale.min_seconds / 4);
  const int nb = tune.best_tile;

  print_banner(std::cout, "Table IV: speedups at N=" + std::to_string(n) +
                              " (A=AoS->SoA, B=AoSoA, C=nested threading)");
  std::cout << "tuned tile size Nb = " << nb << ", grid " << scale.grid << "^3\n\n";

  const int nth = std::min(2, max_threads()); // threads per walker for Opt C
  TablePrinter tp({"kernel", "opt", "speedup (this host)", "paper BDW", "paper KNC", "paper KNL",
                   "paper BG/Q"});

  const char* paper_a[3] = {"-", "4.2", "1.7"};
  const char* paper_b[3] = {"2.0 (A/B)", "10.2", "3.7"};
  const char* paper_c[3] = {"3.4", "17.2", "6.4"};
  const char* paper_a_knc[3] = {"-", "4.0", "2.6"};
  const char* paper_b_knc[3] = {"1.2 (A/B)", "5.7", "5.2"};
  const char* paper_c_knc[3] = {"5.9", "42.1", "35.2"};
  const char* paper_a_knl[3] = {"-", "5.1", "1.7"};
  const char* paper_b_knl[3] = {"1.3 (A/B)", "5.6", "2.3"};
  const char* paper_c_knl[3] = {"18.7", "80.6", "33.1"};
  const char* paper_a_bgq[3] = {"-", "7.4", "1.9"};
  const char* paper_b_bgq[3] = {"1.3 (A/B)", "9.5", "2.7"};
  const char* paper_c_bgq[3] = {"2.0", "15.8", "5.2"};

  const Kernel kernels[3] = {Kernel::V, Kernel::VGL, Kernel::VGH};
  for (int k = 0; k < 3; ++k) {
    const Kernel kernel = kernels[k];
    const double t_base =
        measure_throughput(Layout::AoS, kernel, *coefs, nb, scale.ns, scale.min_seconds);
    const double t_soa =
        measure_throughput(Layout::SoA, kernel, *coefs, nb, scale.ns, scale.min_seconds);
    const double t_aosoa =
        measure_throughput(Layout::AoSoA, kernel, *coefs, nb, scale.ns, scale.min_seconds);

    // Opt C: strong scaling with nth threads per walker.  Throughput stays
    // roughly constant while per-walker time-to-solution drops ~nth x; the
    // Table IV convention multiplies the AoSoA speedup by nth * efficiency.
    MultiBspline<float> engine(*coefs, nb);
    NestedConfig ncfg;
    ncfg.ns = scale.ns;
    ncfg.niters = 2;
    ncfg.kernel = kernel == Kernel::V    ? NestedKernel::V
                  : kernel == Kernel::VGL ? NestedKernel::VGL
                                          : NestedKernel::VGH;
    ncfg.nth = 1;
    ncfg.num_walkers = 1;
    const auto serial = run_nested(engine, ncfg);
    ncfg.nth = nth;
    const auto nested = run_nested(engine, ncfg);
    const double efficiency = nested.throughput / (serial.throughput * nth);
    const double c_speedup = (t_aosoa / t_base) * nth * efficiency;

    const char** pa = paper_a;
    const char** pb = paper_b;
    const char** pc = paper_c;
    tp.add_row({kernel_name(kernel), "A", TablePrinter::cell(t_soa / t_base, 2), pa[k],
                paper_a_knc[k], paper_a_knl[k], paper_a_bgq[k]});
    tp.add_row({kernel_name(kernel), "B", TablePrinter::cell(t_aosoa / t_base, 2), pb[k],
                paper_b_knc[k], paper_b_knl[k], paper_b_bgq[k]});
    tp.add_row({kernel_name(kernel), "C", TablePrinter::cell(c_speedup, 2), pc[k],
                paper_c_knc[k], paper_c_knl[k], paper_c_bgq[k]});
  }
  tp.print(std::cout);
  std::cout << "\nnth(Nb) for C on this host: " << nth << "(" << nb
            << "); paper row: BDW 2(32), KNC 8(256), KNL 16(128), BG/Q 2(32).\n"
            << "Shape check: A>1 for VGL/VGH, B>=A, C ~ B*nth*efficiency; V gains come\n"
            << "only from B and C (single output stream needs no SoA).\n";
  return 0;
}
