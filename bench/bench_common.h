// Shared measurement harness for the bench binaries.
//
// Every figure/table bench follows the same recipe (paper §VI): Nw walkers
// (one per OpenMP thread by default) share a read-only coefficient table and
// each evaluates a kernel over ns random positions; the reported metric is
// the node throughput T_X = Nw * N * ns_total / t_X in orbital evaluations
// per second.
//
// Scale control: MQC_BENCH_SCALE=quick (default) keeps the N sweep and
// measurement times small enough for CI; MQC_BENCH_SCALE=full reproduces the
// paper's 128..4096 sweep on the 48^3 grid (needs ~4 GB and tens of minutes).
#ifndef MQC_BENCH_BENCH_COMMON_H
#define MQC_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/threading.h"
#include "common/timer.h"
#include "core/bspline_aos.h"
#include "core/bspline_soa.h"
#include "core/multi_bspline.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"

namespace mqc::bench {

enum class Layout
{
  AoS,
  SoA,
  SoANoZUnroll, ///< ablation: SoA outputs, baseline 64-subcube loop
  AoSoA
};

inline const char* layout_name(Layout l)
{
  switch (l) {
  case Layout::AoS:
    return "AoS";
  case Layout::SoA:
    return "SoA";
  case Layout::SoANoZUnroll:
    return "SoA(no z-unroll)";
  case Layout::AoSoA:
    return "AoSoA";
  }
  return "?";
}

enum class Kernel
{
  V,
  VGL,
  VGH
};

inline const char* kernel_name(Kernel k)
{
  switch (k) {
  case Kernel::V:
    return "V";
  case Kernel::VGL:
    return "VGL";
  case Kernel::VGH:
    return "VGH";
  }
  return "?";
}

struct BenchScale
{
  std::vector<int> n_sweep;  ///< spline counts for N sweeps
  int grid = 48;             ///< grid points per dimension (paper: 48)
  int ns = 64;               ///< random positions per walker per repetition
  double min_seconds = 0.25; ///< minimum measurement window per point
  int n_single = 512;        ///< N for single-size experiments (paper: 2048)
};

/// Read MQC_BENCH_SCALE from the environment.
///
/// Both modes keep the paper's 48^3 grid: the cache-blocking phenomenon
/// (Fig. 7(b)/(c)) only appears once the coefficient table exceeds the LLC,
/// which on hosts with large L3 requires N >= ~2048 at this grid.  Quick
/// mode trims the sweep and the measurement windows, not the physics.
inline BenchScale bench_scale()
{
  const char* env = std::getenv("MQC_BENCH_SCALE");
  const std::string mode = env ? env : "quick";
  BenchScale s;
  if (mode == "full") {
    s.n_sweep = {128, 256, 512, 1024, 2048, 4096};
    s.grid = 48;
    s.ns = 128;
    s.min_seconds = 1.0;
    s.n_single = 2048;
  } else {
    s.n_sweep = {128, 512, 2048};
    s.grid = 48;
    s.ns = 24;
    s.min_seconds = 0.2;
    s.n_single = 2048;
  }
  return s;
}

/// Random evaluation positions covering the grid domain.
template <typename T>
struct Positions
{
  std::vector<T> x, y, z;
};

template <typename T>
Positions<T> random_eval_positions(const Grid3D<T>& grid, int ns, std::uint64_t seed)
{
  Positions<T> p;
  Xoshiro256 rng(seed);
  p.x.resize(static_cast<std::size_t>(ns));
  p.y.resize(static_cast<std::size_t>(ns));
  p.z.resize(static_cast<std::size_t>(ns));
  for (int s = 0; s < ns; ++s) {
    p.x[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(grid.x.start, grid.x.end));
    p.y[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(grid.y.start, grid.y.end));
    p.z[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(grid.z.start, grid.z.end));
  }
  return p;
}

/// Throughput (orbital evaluations / second, whole node) for one
/// (layout, kernel) combination.  One walker per OpenMP thread; each walker
/// evaluates `ns` random positions per repetition, and the repetition count
/// is calibrated so the measurement window is at least `min_seconds`.
double measure_throughput(Layout layout, Kernel kernel, const CoefStorage<float>& full, int tile,
                          int ns, double min_seconds, std::uint64_t seed = 7);

/// Free-function used by the roofline bench: seconds per single evaluation
/// (one walker, serial).
double measure_seconds_per_eval(Layout layout, Kernel kernel, const CoefStorage<float>& full,
                                int tile, int ns, double min_seconds, std::uint64_t seed = 7);

/// Machine-readable result emission for the tier-1-adjacent benches: pass
/// `--json <path>` (or `--json=<path>`) to a bench binary and it writes its
/// headline numbers as
///   {"bench": "<name>", "rows": [{"name": ..., "value": ..., "unit": ...}]}
/// alongside the human-readable table — e.g. `BENCH_fig7b.json` for the perf
/// trajectory.  Without the flag the reporter is inert.
class JsonReporter
{
public:
  /// Parse `--json <path>` / `--json=<path>` out of argv (first match wins).
  static JsonReporter from_args(int argc, char** argv, const std::string& bench_name);

  void add(const std::string& name, double value, const std::string& unit);
  /// Write the collected rows; no-op (returns true) when no path was given.
  bool write() const;
  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
  struct Row
  {
    std::string name;
    double value = 0.0;
    std::string unit;
  };
  std::string bench_;
  std::string path_;
  std::vector<Row> rows_;
};

} // namespace mqc::bench

#endif // MQC_BENCH_BENCH_COMMON_H
