// The DMC branching sweep: dynamic walker populations with drift-diffusion
// proposals, weight-window population control, full-state walker cloning,
// and contiguous crowd/shard re-blocking after every branch step.  See
// dmc_driver.h for the design contract; the per-walker arithmetic and the
// replay-mode sweep body are the shared crowd-sweep core (crowd_sweep.h),
// which is what makes the fixed-population replay oracle bit-for-bit a VMC
// crowd run.
#include "qmc/dmc_driver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "core/coef_storage.h"
#include "qmc/crowd_sweep.h"

namespace mqc::detail {

namespace {

/// One lock-step crowd: a contiguous walker range inside one shard (the
/// WalkerPopulation decomposition, rebuilt after every branch step).
struct DmcCrowdRef
{
  int shard = 0;
  int first = 0;
  int count = 0;
};

/// Contiguous walker -> shard -> crowd re-blocking for the CURRENT
/// population size.  Empty shards (population below the shard count after
/// deaths) simply contribute no crowds; the shard systems and their
/// first-touch replicas are never touched.
std::vector<DmcCrowdRef> decompose_population(int nw, int num_shards, int crowd_cap)
{
  std::vector<DmcCrowdRef> crowds;
  for (int s = 0; s < num_shards; ++s) {
    const Range r = block_range(static_cast<std::size_t>(nw),
                                static_cast<std::size_t>(num_shards),
                                static_cast<std::size_t>(s));
    const int shard_nw = static_cast<int>(r.size());
    if (shard_nw == 0)
      continue;
    const int csize = crowd_cap > 0 ? std::min(crowd_cap, shard_nw) : shard_nw;
    for (int first = static_cast<int>(r.first); first < static_cast<int>(r.last); first += csize)
      crowds.push_back({s, first, std::min(static_cast<int>(r.last) - first, csize)});
  }
  return crowds;
}

/// Deterministic local-energy proxy: the (negated, per-electron) log
/// magnitude of the Slater part, read from the const incremental log-det
/// accessors — cheap, configuration-dependent, and identical across every
/// crowd/shard decomposition, which is all the branching dynamics need from
/// it in a kernel driver (no Hamiltonian is evaluated here).
double dmc_local_energy(const WalkerState& w, int nel)
{
  return -(w.det_up.log_det() + w.det_dn.log_det()) / static_cast<double>(nel);
}

/// The full-DMC generation sweep: crowd_sweep_steps plus Langevin drift.
/// Before each electron's proposal batch, one extra VGL request at the
/// CURRENT positions supplies the gradient of that electron's own orbital
/// column, which biases the proposal center by tau * v (magnitude-clamped
/// at 1/sqrt(tau), the standard near-node guard).  The diffusion part still
/// draws exactly three gaussians per electron via propose(), so the rng
/// draw structure matches the VMC sweep move for move.  Everything else —
/// measurement phase included — is the crowd-sweep body verbatim.
void dmc_sweep_steps(const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                     std::vector<WalkerState>& walkers, int first, int count, CrowdScratch& scr,
                     ProfileRegistry& cprof, TeamHandle inner, int step_begin, int step_end)
{
  const double tau = cfg.dmc_tau;
  const double vmax = 1.0 / std::sqrt(tau);
  for (int s = step_begin; s < step_end; ++s) {
    for (int e = 0; e < sys.nel; ++e) {
      // Drift source: VGL at the crowd's current positions of electron e.
      {
        ScopedTimer t(cprof, kSectionBspline);
        crowd_eval_vgl(sys, cfg, walkers, first, count, e, scr, inner);
      }
      const int col = e < sys.norb ? e : e - sys.norb;
      for (int i = 0; i < count; ++i) {
        WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
        ++w.attempted;
        double gx, gy, gz;
        if (sys.aos_outputs) {
          const qmc_real* g = w.out_aos->g.data();
          gx = static_cast<double>(g[3 * col + 0]);
          gy = static_cast<double>(g[3 * col + 1]);
          gz = static_cast<double>(g[3 * col + 2]);
        } else {
          gx = static_cast<double>(w.out_soa->gx()[col]);
          gy = static_cast<double>(w.out_soa->gy()[col]);
          gz = static_cast<double>(w.out_soa->gz()[col]);
        }
        const double vnorm = std::sqrt(gx * gx + gy * gy + gz * gz);
        const double scale = vnorm > vmax ? tau * vmax / vnorm : tau;
        const Vec3<qmc_real> r_old = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
        const Vec3<qmc_real> r_drift{static_cast<qmc_real>(r_old.x + scale * gx),
                                     static_cast<qmc_real>(r_old.y + scale * gy),
                                     static_cast<qmc_real>(r_old.z + scale * gz)};
        scr.rnew[static_cast<std::size_t>(i)] = propose(w.rng, r_drift, cfg.move_sigma);
      }
      {
        ScopedTimer t(cprof, kSectionBspline);
        crowd_eval_vgh(sys, walkers, first, count, scr, inner);
      }
      for (int i = 0; i < count; ++i) {
        WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
        const qmc_real* v = sys.aos_outputs ? w.out_aos->v.data() : w.out_soa->v.data();
        metropolis_move(w, sys, cfg, e, scr.rnew[static_cast<std::size_t>(i)], v);
      }
    }

    // Measurement phase: identical to the VMC crowd sweep.
    for (int e = 0; e < sys.nel; ++e) {
      {
        ScopedTimer t(cprof, kSectionBspline);
        crowd_eval_vgl(sys, cfg, walkers, first, count, e, scr, inner);
      }
      for (int i = 0; i < count; ++i) {
        WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
        const Vec3<qmc_real> re = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
        for (int q = 0; q < cfg.quadrature_points; ++q)
          w.quad_r[static_cast<std::size_t>(q)] = propose(w.rng, re, 0.5);
        quadrature_dist_jastrow(w, sys, cfg, e);
      }
      if (cfg.quadrature_points > 0) {
        ScopedTimer t(cprof, kSectionBspline);
        crowd_eval_quad_v(sys, cfg, walkers, first, count, scr, inner);
      }
    }
    for (int i = 0; i < count; ++i)
      full_jastrow(walkers[static_cast<std::size_t>(first + i)], sys, cfg);
  }
}

} // namespace

MiniQMCResult run_miniqmc_dmc(const MiniQMCConfig& cfg)
{
  // ---- shard 0: the master system (generates the coefficient table) ------
  std::vector<std::unique_ptr<MiniQMCSystem>> shard_sys;
  shard_sys.push_back(std::make_unique<MiniQMCSystem>(cfg));
  const MiniQMCSystem& sys0 = *shard_sys.front();
  const int nw0 = sys0.nw;

  // Effective branching knobs (clamped here, hashed raw in the config hash).
  const int generations = std::max(0, cfg.dmc_generations);
  const int gen_steps = std::max(1, cfg.dmc_gen_steps);
  const int total_steps = generations * gen_steps;
  const int target = cfg.dmc_target_walkers > 0 ? cfg.dmc_target_walkers : nw0;
  const int pop_cap = 4 * target;
  const int max_branch = std::max(1, cfg.dmc_max_branch);
  const double wmin = std::min(cfg.dmc_weight_min, cfg.dmc_weight_max);
  const double wmax = std::max(cfg.dmc_weight_min, cfg.dmc_weight_max);
  const double gen_tau = cfg.dmc_tau * gen_steps;
  const bool replay = cfg.dmc_replay;

  // ---- shards 1..n-1: first-touch replicas + shard-local systems ---------
  // Exactly the WalkerPopulation placement: one team member per shard copies
  // the coefficient table ON ITS OWN THREAD and builds the shard's engines
  // over the replica.  Identical table values make this bit-for-bit neutral;
  // the replicas are built once and never move — only the walker->shard map
  // is rebuilt after branch steps.
  const int num_shards = std::min(resolve_shard_count(0), nw0);
  shard_sys.resize(static_cast<std::size_t>(num_shards));
  CoefReplicaSet<qmc_real> replicas(sys0.coefs, num_shards);
  team_for(TeamHandle::of(num_shards), num_shards, [&](int s) {
    if (s > 0)
      shard_sys[static_cast<std::size_t>(s)] =
          std::make_unique<MiniQMCSystem>(cfg, replicas.replicate(s));
  });

  // Crowd-size cap per shard, resolved like the crowd driver (explicit > 0,
  // 0 = whole shard, -1 = tuned size from cfg.wisdom).
  int crowd_cap = cfg.crowd_size;
  if (crowd_cap < 0)
    crowd_cap = sys0.tuned_crowd_size;

  std::vector<WalkerState> walkers(static_cast<std::size_t>(nw0));
  std::vector<DmcCrowdRef> crowds = decompose_population(nw0, num_shards, crowd_cap);
  const int init_crowds = static_cast<int>(crowds.size());

  const ThreadPartition part = resolve_team_partition(cfg, sys0, init_crowds);
  const TeamHandle inner = TeamHandle::inner_of(part);

  MiniQMCResult result;
  result.num_walkers = nw0;
  result.num_electrons = sys0.nel;
  result.num_orbitals = sys0.norb;
  result.crowd_size_used = crowd_cap > 0 ? std::min(crowd_cap, nw0) : nw0;
  result.spline_path = sys0.spo.capabilities().native_multi_eval ? EvalPath::MultiPosition
                                                                 : EvalPath::SinglePosition;
  result.precision_path = sys0.precision;
  result.team_path = classify_team_path(part.outer, part.inner);
  result.outer_threads_used = part.outer;
  result.inner_threads_used = part.inner;
  result.dmc_shards_used = num_shards;
  result.dmc_population.reserve(static_cast<std::size_t>(generations));

  Stopwatch total_watch;

  // ---- setup (not profiled): each crowd initializes its own walkers on
  // its shard's system — same flat walker ids as every other driver, so the
  // replay oracle starts from the identical population ----------------------
  team_for(TeamHandle::of(init_crowds), init_crowds, [&](int cid) {
    const DmcCrowdRef c = crowds[static_cast<std::size_t>(cid)];
    const MiniQMCSystem& ssys = *shard_sys[static_cast<std::size_t>(c.shard)];
    for (int wid = c.first; wid < c.first + c.count; ++wid)
      init_walker(walkers[static_cast<std::size_t>(wid)], ssys, cfg, wid);
  });

  DmcRunState st;
  st.weights.assign(static_cast<std::size_t>(nw0), 1.0);

  // ---- resume (outside any team region): rebuild the population at the
  // snapshot's size and restore the branching provenance --------------------
  const CheckpointRuntime ckrt = make_checkpoint_runtime(cfg, sys0);
  const int resumed_step = dmc_resume_from_checkpoint(ckrt, cfg, sys0, walkers, st, result);
  int gen = 0;
  if (resumed_step > 0) {
    gen = st.generation;
    assert(resumed_step == gen * gen_steps);
    crowds = decompose_population(static_cast<int>(walkers.size()), num_shards, crowd_cap);
  }

  // Trial-energy seed for a fresh full-DMC start: the mean local-energy
  // proxy of the initial population (deterministic — no rng draws).  A
  // resumed run restored E_T from the snapshot instead.
  if (!replay && resumed_step == 0 && !walkers.empty()) {
    double sum = 0.0;
    for (const WalkerState& w : walkers)
      sum += dmc_local_energy(w, sys0.nel);
    st.trial_energy = sum / static_cast<double>(walkers.size());
  }

  // ---- the generation loop ------------------------------------------------
  // Each generation: one team region sweeps every crowd gen_steps steps
  // (replay: the unmodified VMC crowd body; full DMC: the drift variant),
  // then — serial, outside any region — the branch step, re-blocking, and
  // the checkpoint boundary.  CrowdScratch is rebuilt per generation on the
  // sweeping thread (first-touch): branching reorders the walker vector, so
  // the gathered pointer tables are only generation-invariant.
  const int entry_gen = gen;
  std::vector<ProfileRegistry> crowd_profiles;
  for (; gen < generations; ++gen) {
    const int step_begin = gen * gen_steps;
    const int step_end = step_begin + gen_steps;
    const int num_crowds = static_cast<int>(crowds.size());
    crowd_profiles.assign(static_cast<std::size_t>(num_crowds), ProfileRegistry{});
    team_for(TeamHandle::of(num_crowds), num_crowds, [&](int cid) {
      const DmcCrowdRef c = crowds[static_cast<std::size_t>(cid)];
      const MiniQMCSystem& ssys = *shard_sys[static_cast<std::size_t>(c.shard)];
      for (int wid = c.first; wid < c.first + c.count; ++wid)
        walkers[static_cast<std::size_t>(wid)].set_team(inner.bound_to_current_region());
      CrowdScratch scr(walkers, c.first, c.count, ssys);
      auto& cprof = crowd_profiles[static_cast<std::size_t>(cid)];
      if (replay)
        crowd_sweep_steps(ssys, cfg, walkers, c.first, c.count, scr, cprof, inner, step_begin,
                          step_end);
      else
        dmc_sweep_steps(ssys, cfg, walkers, c.first, c.count, scr, cprof, inner, step_begin,
                        step_end);
    });
    for (const auto& p : crowd_profiles)
      result.profile.merge(p);

    // ---- branch step (full DMC only): weights -> multiplicities ----------
    // Serial, in walker-id order, on the walkers' own streams — identical
    // under every crowd/shard decomposition.
    if (!replay) {
      const int n = static_cast<int>(walkers.size());
      for (int i = 0; i < n; ++i) {
        const double e_l = dmc_local_energy(walkers[static_cast<std::size_t>(i)], sys0.nel);
        double& wgt = st.weights[static_cast<std::size_t>(i)];
        wgt *= std::exp(-gen_tau * (e_l - st.trial_energy));
        wgt = std::min(wmax, std::max(wmin, wgt));
      }
      std::vector<WalkerState> next;
      std::vector<double> next_w;
      next.reserve(walkers.size());
      next_w.reserve(walkers.size());
      for (int i = 0; i < n; ++i) {
        WalkerState& parent = walkers[static_cast<std::size_t>(i)];
        const double wgt = st.weights[static_cast<std::size_t>(i)];
        int m = static_cast<int>(wgt + parent.rng.uniform()); // stochastic rounding
        m = std::min(m, max_branch);
        m = std::min(m, pop_cap - static_cast<int>(next.size())); // deterministic ceiling
        if (m <= 0) {
          ++st.deaths;
          continue;
        }
        const double wchild = wgt / m;
        // Children are cloned (and their streams split off) BEFORE the
        // parent moves: each clone is a pure function of the parent's state
        // at this boundary, and the continuation keeps the advanced stream.
        std::vector<WalkerState> kids;
        for (int k = 1; k < m; ++k) {
          WalkerState child;
          init_walker_shell(child, sys0, cfg);
          clone_walker_state(child, parent, sys0, cfg);
          child.rng = parent.rng.split();
          kids.push_back(std::move(child));
          ++st.births;
        }
        next.push_back(std::move(parent));
        next_w.push_back(wchild);
        for (auto& kid : kids) {
          next.push_back(std::move(kid));
          next_w.push_back(wchild);
        }
      }
      if (next.empty()) {
        // Total extinction would deadlock the feedback loop; keep the
        // highest-weight walker (lowest id on ties) as the sole survivor.
        int best = 0;
        for (int i = 1; i < n; ++i)
          if (st.weights[static_cast<std::size_t>(i)] > st.weights[static_cast<std::size_t>(best)])
            best = i;
        next.push_back(std::move(walkers[static_cast<std::size_t>(best)]));
        next_w.push_back(st.weights[static_cast<std::size_t>(best)]);
        st.deaths -= 1; // the survivor was counted dead above
      }
      walkers = std::move(next);
      st.weights = std::move(next_w);
      st.trial_energy -=
          cfg.dmc_feedback *
          std::log(static_cast<double>(walkers.size()) / static_cast<double>(target));
      // Re-block the survivors contiguously across the resident shards.
      crowds = decompose_population(static_cast<int>(walkers.size()), num_shards, crowd_cap);
    }
    st.generation = gen + 1;
    result.dmc_population.push_back(static_cast<int>(walkers.size()));

    dmc_checkpoint_boundary(ckrt, cfg, sys0, walkers, st, step_end, total_steps, result);
  }
  // End-of-run snapshot guarantee for runs that never entered the loop
  // (zero generations, or a resume at/past the budget) — same contract as
  // the VMC drivers: a set checkpoint path always leaves a snapshot.
  if (entry_gen >= generations)
    dmc_checkpoint_boundary(ckrt, cfg, sys0, walkers, st, entry_gen * gen_steps,
                            entry_gen * gen_steps, result);

  result.seconds = total_watch.elapsed();
  result.num_walkers = static_cast<int>(walkers.size());
  result.dmc_births = st.births;   // cumulative across resume (restored from Meta)
  result.dmc_deaths = st.deaths;
  result.dmc_trial_energy = st.trial_energy;
  reduce_result(result, walkers);
  return result;
}

} // namespace mqc::detail
