// Tests for the perf/roofline substrate: measured ceilings are positive and
// ordered sensibly, the kernel cost models encode the paper's counts, and
// the roofline ceiling function has the right shape.
#include <gtest/gtest.h>

#include "perf/roofline.h"

using namespace mqc;

TEST(Perf, TriadBandwidthPositive)
{
  // Small array: this is a functional test, not a measurement.
  const double bw = measure_triad_bandwidth(1u << 20, 2);
  EXPECT_GT(bw, 1e8); // any machine manages > 0.1 GB/s
}

TEST(Perf, PeakGflopsPositive)
{
  const double gf = measure_peak_gflops_sp(1);
  EXPECT_GT(gf, 0.1);
}

TEST(Perf, CostModelReadsAreSixtyFourStreams)
{
  // 64N reads of sizeof(float) regardless of layout (paper §VII).
  const auto aos = kernel_cost_model(KernelId::VGH, /*soa=*/false, 1024, 4);
  const auto soa = kernel_cost_model(KernelId::VGH, /*soa=*/true, 1024, 4);
  const double reads = 64.0 * 1024 * 4;
  EXPECT_GE(aos.mem_bytes, reads);
  EXPECT_GE(soa.mem_bytes, reads);
  // AoS writes 13 components, SoA 10 -> AoS moves more bytes.
  EXPECT_GT(aos.mem_bytes, soa.mem_bytes);
}

TEST(Perf, CostModelFlopsOrdering)
{
  // The AoS VGH does 64x13 FMAs vs SoA's 16x22: AoS does redundant work.
  const auto aos = kernel_cost_model(KernelId::VGH, false, 256, 4);
  const auto soa = kernel_cost_model(KernelId::VGH, true, 256, 4);
  EXPECT_GT(aos.flops, soa.flops);
  // And the SoA transformation *raises* arithmetic intensity per byte
  // is not required — but both must be positive and finite.
  EXPECT_GT(aos.arithmetic_intensity(), 0.0);
  EXPECT_GT(soa.arithmetic_intensity(), 0.0);
}

TEST(Perf, CostModelScalesLinearlyWithN)
{
  const auto a = kernel_cost_model(KernelId::V, true, 100, 4);
  const auto b = kernel_cost_model(KernelId::V, true, 200, 4);
  EXPECT_NEAR(b.flops / a.flops, 2.0, 1e-12);
  EXPECT_NEAR(b.mem_bytes / a.mem_bytes, 2.0, 1e-12);
}

TEST(Perf, CostModelKernelOrdering)
{
  // VGH computes more than VGL computes more than V.
  const auto v = kernel_cost_model(KernelId::V, true, 512, 4);
  const auto vgl = kernel_cost_model(KernelId::VGL, true, 512, 4);
  const auto vgh = kernel_cost_model(KernelId::VGH, true, 512, 4);
  EXPECT_LT(v.flops, vgl.flops);
  EXPECT_LT(vgl.flops, vgh.flops);
  EXPECT_LT(v.mem_bytes, vgl.mem_bytes);
  EXPECT_LT(vgl.mem_bytes, vgh.mem_bytes);
}

TEST(Perf, ElementBytesScaleTraffic)
{
  const auto sp = kernel_cost_model(KernelId::VGH, true, 128, 4);
  const auto dp = kernel_cost_model(KernelId::VGH, true, 128, 8);
  EXPECT_NEAR(dp.mem_bytes / sp.mem_bytes, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(dp.flops, sp.flops);
}

TEST(Perf, RooflineCeilingShape)
{
  const double peak = 1000.0;      // GFLOPS
  const double bw = 100e9;         // bytes/s
  // Memory-bound region: ceiling = AI * BW.
  EXPECT_NEAR(roofline_ceiling(1.0, peak, bw), 100.0, 1e-9);
  EXPECT_NEAR(roofline_ceiling(5.0, peak, bw), 500.0, 1e-9);
  // Compute-bound region: ceiling = peak.
  EXPECT_NEAR(roofline_ceiling(50.0, peak, bw), peak, 1e-9);
  // The ridge point.
  EXPECT_NEAR(roofline_ceiling(10.0, peak, bw), peak, 1e-9);
}

TEST(Perf, ArithmeticIntensityZeroBytesSafe)
{
  KernelCostModel m;
  m.flops = 10.0;
  m.mem_bytes = 0.0;
  EXPECT_DOUBLE_EQ(m.arithmetic_intensity(), 0.0);
}
