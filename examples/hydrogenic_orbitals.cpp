// Domain scenario 4: a physics-flavoured end-to-end check — spline a set of
// periodized hydrogen-like orbitals centred on the atoms of a small crystal,
// then measure the interpolation quality and the kinetic-energy integrand
// (-(1/2) lap(phi)/phi) along a line through a bond.
//
// This exercises the builder with localized (non-plane-wave) orbitals, the
// kind of shape real DFT orbitals have near nuclei.
//
//   ./examples/hydrogenic_orbitals
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/bspline_soa.h"
#include "core/bspline_builder.h"
#include "core/synthetic_orbitals.h"
#include "particles/graphite.h"
#include "qmc/walker.h"

namespace {

using namespace mqc;

/// Periodized 1s-like orbital: sum of exp(-alpha |r - R - L*n|) over the
/// nearest images (smooth and periodic on the cell).
double orbital_1s(const Lattice& lat, Vec3<double> center, double alpha, Vec3<double> r)
{
  double v = 0.0;
  const auto& a = lat.rows();
  for (int i = -1; i <= 1; ++i)
    for (int j = -1; j <= 1; ++j)
      for (int k = -1; k <= 1; ++k) {
        const Vec3<double> image =
            r - center - (double(i) * a[0] + double(j) * a[1] + double(k) * a[2]);
        v += std::exp(-alpha * norm(image));
      }
  return v;
}

} // namespace

int main()
{
  using namespace mqc;
  // A 2x2x1 orthorhombic carbon analogue (exact fast minimum image).
  const auto sys = make_orthorhombic_carbon(2, 2, 1);
  const auto& lat = sys.lattice;
  const double lx = lat.rows()[0].x, ly = lat.rows()[1].y, lz = lat.rows()[2].z;

  const int ng = 40;
  Grid3D<double> grid(Grid1D<double>(0, lx, ng), Grid1D<double>(0, ly, ng),
                      Grid1D<double>(0, lz, ng));

  const int norb = std::min(8, sys.num_ions());
  auto coefs = std::make_shared<CoefStorage<double>>(grid, norb);
  const double alpha = 1.1;
  std::printf("splining %d periodized 1s orbitals on a %d^3 grid (%.0f MB table)...\n", norb, ng,
              coefs->size_bytes() / 1e6);

  std::vector<double> samples(static_cast<std::size_t>(ng) * ng * ng);
  for (int n = 0; n < norb; ++n) {
    const Vec3<double> center = sys.ions[n];
    for (int i = 0; i < ng; ++i)
      for (int j = 0; j < ng; ++j)
        for (int k = 0; k < ng; ++k)
          samples[(static_cast<std::size_t>(i) * ng + j) * ng + k] =
              orbital_1s(lat, center, alpha, Vec3<double>{i * lx / ng, j * ly / ng, k * lz / ng});
    set_spline_from_samples(*coefs, n, samples.data());
  }

  BsplineSoA<double> spo(coefs);
  WalkerSoA<double> out(spo.out_stride());
  WalkerSoA<double> outl(spo.out_stride());

  // Interpolation quality off-grid.
  double max_rel = 0.0;
  Xoshiro256 rng(2);
  for (int s = 0; s < 200; ++s) {
    const Vec3<double> r{rng.uniform(0, lx), rng.uniform(0, ly), rng.uniform(0, lz)};
    spo.evaluate_v(r.x, r.y, r.z, out.v.data());
    for (int n = 0; n < norb; ++n) {
      const double exact = orbital_1s(lat, sys.ions[n], alpha, r);
      max_rel = std::max(max_rel, std::abs(out.v[n] - exact) / std::max(1e-3, exact));
    }
  }
  std::printf("max relative interpolation error over 200 random points: %.2e\n\n", max_rel);

  // Local kinetic energy of orbital 0 along the line through its atom.
  std::puts("x (bohr)   phi_0      -lap/2phi   (along x through atom 0)");
  const Vec3<double> c0 = sys.ions[0];
  for (int s = 0; s <= 10; ++s) {
    const double x = c0.x + (s - 5) * 0.35;
    spo.evaluate_vgl(x, c0.y + 0.1, c0.z + 0.1, outl.v.data(), outl.g.data(), outl.l.data());
    std::printf("%8.3f  %9.5f  %10.5f\n", x, outl.v[0], -0.5 * outl.l[0] / outl.v[0]);
  }
  std::puts("\nExpect the kinetic integrand ~ -alpha^2/2 far from the nucleus and a\n"
            "positive spike at it (the cusp a smooth spline rounds off).");
  return 0;
}
