// Fixture: a deliberately annotated raw engine call is silenced.
// Expected: 0 [raw-spline-call] findings.
struct Engine
{
  // mqc-lint: allow(raw-spline-call)
  void evaluate_v_tile(int, float, float, float, float*) const {}
};

void ablation_reference(const Engine& engine, float* out)
{
  // mqc-lint: allow(raw-spline-call)
  engine.evaluate_v_tile(0, 0.1f, 0.2f, 0.3f, out);
}
