// Domain scenario 1: the paper's CORAL-style graphite workload, end to end.
//
// Runs the miniQMC driver (drift-diffusion sweep + measurement phase) on an
// AB-stacked graphite supercell in a chosen configuration and prints the
// kernel-group profile — the experiment behind Tables II/III.
//
//   ./examples/graphite_miniqmc [baseline|optimized] [n1 n2 n3] [steps]
//   e.g. ./examples/graphite_miniqmc optimized 4 4 1 2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "qmc/miniqmc_driver.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  MiniQMCConfig cfg;
  cfg.supercell = {2, 2, 1};
  cfg.grid_size = 32;
  cfg.steps = 2;

  bool optimized = false;
  if (argc > 1 && std::strcmp(argv[1], "optimized") == 0)
    optimized = true;
  if (argc > 4) {
    cfg.supercell = {std::atoi(argv[2]), std::atoi(argv[3]), std::atoi(argv[4])};
  }
  if (argc > 5)
    cfg.steps = std::atoi(argv[5]);

  if (optimized) {
    cfg.spo = SpoLayout::AoSoA;
    cfg.tile_size = 64;
    cfg.optimized_dt_jastrow = true;
  } else {
    cfg.spo = SpoLayout::AoS;
    cfg.optimized_dt_jastrow = false;
  }

  const auto res = run_miniqmc(cfg);

  print_banner(std::cout, std::string("graphite miniQMC (") +
                              (optimized ? "optimized" : "baseline") + " kernels)");
  std::printf("supercell %dx%dx%d: %d carbons, %d electrons, %d orbitals\n", cfg.supercell[0],
              cfg.supercell[1], cfg.supercell[2], res.num_electrons / 4, res.num_electrons,
              res.num_orbitals);
  std::printf("walkers %d, %d sweeps, %zu proposed moves, acceptance %.2f\n", res.num_walkers,
              cfg.steps, res.moves_attempted, res.acceptance_ratio);
  std::printf("wall time %.3f s, B-spline orbital evaluations %.2e (%.1f Meval/s)\n\n",
              res.seconds, static_cast<double>(res.spline_orbital_evals),
              static_cast<double>(res.spline_orbital_evals) /
                  std::max(res.profile.seconds(kSectionBspline), 1e-9) / 1e6);

  TablePrinter tp({"kernel group", "seconds", "share (%)", "calls"});
  for (const char* key :
       {kSectionBspline, kSectionDistance, kSectionJastrow, kSectionDeterminant})
    tp.add_row({key, TablePrinter::cell(res.profile.seconds(key), 4),
                TablePrinter::cell(res.profile.percent(key), 1),
                TablePrinter::cell(res.profile.calls(key))});
  tp.print(std::cout);
  return 0;
}
