// Tests for the particle substrate: lattice algebra, minimum image (fast vs
// exact vs brute force), particle-set layouts and the graphite factory.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "particles/graphite.h"
#include "particles/lattice.h"
#include "particles/particle_set.h"

using namespace mqc;

namespace {

/// Brute-force minimum image over a generous image range (test oracle).
/// Displacements may be several cells long, so wrap into the home cell first
/// and then scan the neighbour shell.
Vec3<double> brute_min_image(const Lattice& lat, const Vec3<double>& dr_in, int range = 2)
{
  Vec3<double> f = lat.to_fractional(dr_in);
  f.x -= std::floor(f.x + 0.5);
  f.y -= std::floor(f.y + 0.5);
  f.z -= std::floor(f.z + 0.5);
  const Vec3<double> dr = lat.to_cartesian(f);
  Vec3<double> best = dr;
  double best2 = norm2(dr);
  const auto& a = lat.rows();
  for (int i = -range; i <= range; ++i)
    for (int j = -range; j <= range; ++j)
      for (int k = -range; k <= range; ++k) {
        const Vec3<double> cand = dr + double(i) * a[0] + double(j) * a[1] + double(k) * a[2];
        if (norm2(cand) < best2) {
          best2 = norm2(cand);
          best = cand;
        }
      }
  return best;
}

Lattice hexagonal(double a, double c)
{
  const double s3 = std::sqrt(3.0) / 2.0;
  return Lattice({Vec3<double>{a, 0, 0}, Vec3<double>{-0.5 * a, s3 * a, 0}, Vec3<double>{0, 0, c}});
}

} // namespace

TEST(Lattice, OrthorhombicBasics)
{
  const auto lat = Lattice::orthorhombic(2.0, 3.0, 4.0);
  EXPECT_TRUE(lat.is_orthorhombic());
  EXPECT_DOUBLE_EQ(lat.volume(), 24.0);
  const Vec3<double> f{0.5, 0.25, 0.75};
  const auto r = lat.to_cartesian(f);
  EXPECT_DOUBLE_EQ(r.x, 1.0);
  EXPECT_DOUBLE_EQ(r.y, 0.75);
  EXPECT_DOUBLE_EQ(r.z, 3.0);
  const auto fb = lat.to_fractional(r);
  EXPECT_NEAR(fb.x, f.x, 1e-14);
  EXPECT_NEAR(fb.y, f.y, 1e-14);
  EXPECT_NEAR(fb.z, f.z, 1e-14);
}

TEST(Lattice, TriclinicRoundTrip)
{
  const Lattice lat({Vec3<double>{3.0, 0.1, 0.0}, Vec3<double>{-1.2, 2.8, 0.2},
                     Vec3<double>{0.3, -0.4, 5.0}});
  EXPECT_FALSE(lat.is_orthorhombic());
  Xoshiro256 rng(1);
  for (int s = 0; s < 20; ++s) {
    const Vec3<double> f{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
    const auto fb = lat.to_fractional(lat.to_cartesian(f));
    EXPECT_NEAR(fb.x, f.x, 1e-12);
    EXPECT_NEAR(fb.y, f.y, 1e-12);
    EXPECT_NEAR(fb.z, f.z, 1e-12);
  }
}

TEST(Lattice, WrapPutsFractionalInUnitCell)
{
  const auto lat = hexagonal(2.0, 3.0);
  Xoshiro256 rng(2);
  for (int s = 0; s < 30; ++s) {
    const Vec3<double> r{rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)};
    const auto f = lat.to_fractional(lat.wrap(r));
    EXPECT_GE(f.x, -1e-12);
    EXPECT_LT(f.x, 1.0 + 1e-12);
    EXPECT_GE(f.y, -1e-12);
    EXPECT_LT(f.y, 1.0 + 1e-12);
  }
}

TEST(Lattice, MinImageExactMatchesBruteForceOrthorhombic)
{
  const auto lat = Lattice::orthorhombic(1.5, 2.5, 3.5);
  Xoshiro256 rng(3);
  for (int s = 0; s < 50; ++s) {
    const Vec3<double> dr{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const auto got = lat.min_image(dr, MinImageMode::Exact);
    const auto want = brute_min_image(lat, dr);
    EXPECT_NEAR(norm(got), norm(want), 1e-12);
  }
}

TEST(Lattice, MinImageExactMatchesBruteForceHexagonal)
{
  const auto lat = hexagonal(2.0, 3.0);
  Xoshiro256 rng(4);
  for (int s = 0; s < 100; ++s) {
    const Vec3<double> dr{rng.uniform(-6, 6), rng.uniform(-6, 6), rng.uniform(-6, 6)};
    const auto got = lat.min_image(dr, MinImageMode::Exact);
    const auto want = brute_min_image(lat, dr);
    EXPECT_NEAR(norm(got), norm(want), 1e-12) << "sample " << s;
  }
}

TEST(Lattice, FastMinImageEqualsExactForOrthorhombic)
{
  const auto lat = Lattice::orthorhombic(2.0, 2.0, 2.0);
  Xoshiro256 rng(5);
  for (int s = 0; s < 50; ++s) {
    const Vec3<double> dr{rng.uniform(-7, 7), rng.uniform(-7, 7), rng.uniform(-7, 7)};
    EXPECT_NEAR(norm(lat.min_image(dr, MinImageMode::Fast)),
                norm(lat.min_image(dr, MinImageMode::Exact)), 1e-12);
  }
}

TEST(Lattice, FastMinImageNeverBeatsExact)
{
  const auto lat = hexagonal(2.0, 1.0);
  Xoshiro256 rng(6);
  for (int s = 0; s < 100; ++s) {
    const Vec3<double> dr{rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-4, 4)};
    EXPECT_GE(norm(lat.min_image(dr, MinImageMode::Fast)) + 1e-12,
              norm(lat.min_image(dr, MinImageMode::Exact)));
  }
}

TEST(Lattice, WignerSeitzRadiusCube)
{
  const auto lat = Lattice::orthorhombic(2.0, 2.0, 2.0);
  EXPECT_NEAR(lat.wigner_seitz_radius(), 1.0, 1e-12);
}

TEST(ParticleSet, SoAOperatorBracketBridging)
{
  ParticleSetSoA<float> p(5);
  p.set(2, Vec3<float>{1.0f, 2.0f, 3.0f});
  const Vec3<float> r = p[2];
  EXPECT_FLOAT_EQ(r.x, 1.0f);
  EXPECT_FLOAT_EQ(r.y, 2.0f);
  EXPECT_FLOAT_EQ(r.z, 3.0f);
  EXPECT_FLOAT_EQ(p.x()[2], 1.0f);
}

TEST(ParticleSet, LayoutRoundTrip)
{
  const auto lat = Lattice::orthorhombic(2, 2, 2);
  const auto soa = random_particles<double>(17, lat, 9);
  const auto aos = to_aos(soa);
  const auto back = to_soa(aos);
  for (int i = 0; i < 17; ++i) {
    EXPECT_DOUBLE_EQ(soa[i].x, back[i].x);
    EXPECT_DOUBLE_EQ(soa[i].y, back[i].y);
    EXPECT_DOUBLE_EQ(soa[i].z, back[i].z);
  }
}

TEST(ParticleSet, RandomParticlesInsideCell)
{
  const auto lat = hexagonal(3.0, 5.0);
  const auto p = random_particles<double>(100, lat, 11);
  for (int i = 0; i < 100; ++i) {
    const auto f = lat.to_fractional(Vec3<double>{p[i].x, p[i].y, p[i].z});
    EXPECT_GE(f.x, -1e-9);
    EXPECT_LT(f.x, 1.0 + 1e-9);
    EXPECT_GE(f.y, -1e-9);
    EXPECT_LT(f.y, 1.0 + 1e-9);
    EXPECT_GE(f.z, -1e-9);
    EXPECT_LT(f.z, 1.0 + 1e-9);
  }
}

TEST(Graphite, CoralBenchmarkCounts)
{
  // The paper's CORAL 4x4x1 problem: 64 carbons, 256 electrons, 128 SPOs.
  const auto sys = make_graphite_supercell(4, 4, 1);
  EXPECT_EQ(sys.num_ions(), 64);
  EXPECT_EQ(sys.num_electrons(), 256);
  EXPECT_EQ(sys.num_orbitals(), 128);
}

TEST(Graphite, NearestNeighbourDistanceIsPhysical)
{
  const auto sys = make_graphite_supercell(2, 2, 1);
  // Graphite C-C bond: 1.421 A = 2.686 bohr.
  double min_d = std::numeric_limits<double>::infinity();
  for (int i = 0; i < sys.num_ions(); ++i)
    for (int j = 0; j < sys.num_ions(); ++j) {
      if (i == j)
        continue;
      const auto d = sys.lattice.min_image(
          Vec3<double>{sys.ions[i].x - sys.ions[j].x, sys.ions[i].y - sys.ions[j].y,
                       sys.ions[i].z - sys.ions[j].z},
          MinImageMode::Exact);
      min_d = std::min(min_d, norm(d));
    }
  EXPECT_NEAR(min_d, 2.686, 0.02);
}

TEST(Graphite, SupercellVolumeScales)
{
  const auto s1 = make_graphite_supercell(1, 1, 1);
  const auto s4 = make_graphite_supercell(2, 2, 1);
  EXPECT_NEAR(s4.lattice.volume(), 4.0 * s1.lattice.volume(), 1e-9);
}

TEST(Graphite, OrthorhombicAnalogueMatchesDensity)
{
  const auto hex = make_graphite_supercell(2, 2, 2);
  const auto ortho = make_orthorhombic_carbon(2, 2, 2);
  EXPECT_TRUE(ortho.lattice.is_orthorhombic());
  EXPECT_EQ(ortho.num_ions(), hex.num_ions());
  EXPECT_NEAR(ortho.lattice.volume() / ortho.num_ions(), hex.lattice.volume() / hex.num_ions(),
              1e-6);
}
