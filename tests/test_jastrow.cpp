// Tests for the Jastrow factors: functor accuracy (cusp, cutoff, smooth
// truncation), gradient/Laplacian against finite differences of the log, and
// AoS == SoA cross-layout equivalence including move ratios.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance_table.h"
#include "jastrow/bspline_functor.h"
#include "jastrow/one_body.h"
#include "jastrow/two_body.h"
#include "particles/particle_set.h"

using namespace mqc;

namespace {

struct JFixture
{
  Lattice lattice = Lattice::orthorhombic(6.0, 6.0, 6.0);
  ParticleSetSoA<double> elec_soa;
  ParticleSetAoS<double> elec_aos;
  ParticleSetSoA<double> ions_soa;
  ParticleSetAoS<double> ions_aos;
  BsplineJastrowFunctor<double> fj2 =
      BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, 2.5);
  BsplineJastrowFunctor<double> fj1 =
      BsplineJastrowFunctor<double>::make_exponential(-1.0, 0.75, 2.5);

  explicit JFixture(int nel = 16, int nion = 6, std::uint64_t seed = 5)
  {
    elec_soa = random_particles<double>(nel, lattice, seed);
    elec_aos = to_aos(elec_soa);
    ions_soa = random_particles<double>(nion, lattice, seed + 10);
    ions_aos = to_aos(ions_soa);
  }
};

/// Brute-force log J2 straight from positions.
double brute_log_j2(const JFixture& f)
{
  double u = 0.0;
  const int n = f.elec_soa.size();
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const auto d = f.lattice.min_image(
          Vec3<double>{f.elec_soa[i].x - f.elec_soa[j].x, f.elec_soa[i].y - f.elec_soa[j].y,
                       f.elec_soa[i].z - f.elec_soa[j].z});
      u += f.fj2.evaluate(norm(d));
    }
  return -u;
}

double brute_log_j1(const JFixture& f)
{
  double u = 0.0;
  for (int i = 0; i < f.elec_soa.size(); ++i)
    for (int j = 0; j < f.ions_soa.size(); ++j) {
      const auto d = f.lattice.min_image(
          Vec3<double>{f.elec_soa[i].x - f.ions_soa[j].x, f.elec_soa[i].y - f.ions_soa[j].y,
                       f.elec_soa[i].z - f.ions_soa[j].z});
      u += f.fj1.evaluate(norm(d));
    }
  return -u;
}

} // namespace

TEST(Functor, CuspConditionAtOrigin)
{
  const auto f = BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, 3.0);
  double du, d2u;
  f.evaluate(0.0, du, d2u);
  EXPECT_NEAR(du, -0.5, 1e-9);
}

TEST(Functor, VanishesSmoothlyAtCutoff)
{
  const auto f = BsplineJastrowFunctor<double>::make_exponential(-1.0, 0.8, 2.0);
  double du, d2u;
  const double v = f.evaluate(2.0 - 1e-9, du, d2u);
  EXPECT_NEAR(v, 0.0, 1e-6);
  EXPECT_NEAR(du, 0.0, 1e-5);
  EXPECT_DOUBLE_EQ(f.evaluate(2.0), 0.0);
  EXPECT_DOUBLE_EQ(f.evaluate(5.0), 0.0);
  double du2, d2u2;
  EXPECT_DOUBLE_EQ(f.evaluate(2.5, du2, d2u2), 0.0);
  EXPECT_DOUBLE_EQ(du2, 0.0);
}

TEST(Functor, MatchesTargetProfile)
{
  const double cusp = -0.5, b = 1.0, rc = 3.0;
  const auto f = BsplineJastrowFunctor<double>::make_exponential(cusp, b, rc, 64);
  const double A = cusp / (-1.0 / b - 2.0 / rc);
  for (double r : {0.1, 0.5, 1.0, 1.7, 2.4}) {
    const double damp = 1.0 - r / rc;
    EXPECT_NEAR(f.evaluate(r), A * std::exp(-r / b) * damp * damp, 2e-4) << r;
  }
}

TEST(Functor, DerivativesMatchFiniteDifferences)
{
  const auto f = BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, 3.0, 64);
  const double h = 1e-6;
  for (double r : {0.2, 0.8, 1.5, 2.2}) {
    double du, d2u;
    f.evaluate(r, du, d2u);
    EXPECT_NEAR(du, (f.evaluate(r + h) - f.evaluate(r - h)) / (2 * h), 1e-6) << r;
    EXPECT_NEAR(d2u, (f.evaluate(r + h) - 2 * f.evaluate(r) + f.evaluate(r - h)) / (h * h), 1e-3)
        << r;
  }
}

TEST(Functor, SumRowHandlesSentinels)
{
  const auto f = BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, 2.0);
  const double row[4] = {0.5, kSelfDistance<double>, 1.0, 3.5};
  EXPECT_NEAR(f.sum_row(row, 4), f.evaluate(0.5) + f.evaluate(1.0), 1e-12);
}

namespace {

/// The row kernels mask instead of branching; at the cutoff boundary and at
/// the self-distance sentinel that mask must reproduce the scalar early-out
/// path bit-for-bit (exact zeros, not merely small values).
template <typename T>
void check_row_kernels_at_cutoff()
{
  const T rc = T(2);
  const auto f = BsplineJastrowFunctor<T>::make_exponential(T(-0.5), T(1), rc);
  alignas(kAlignment) const T row[8] = {T(0.25),          rc,     T(1.3), kSelfDistance<T>,
                                        std::nextafter(rc, T(3)), T(0.8), T(3.7), T(1.9)};
  alignas(kAlignment) T u[8], du[8], d2u[8];
  f.evaluate_row(row, 8, u, du, d2u);
  T scalar_sum = T(0);
  for (int j = 0; j < 8; ++j) {
    T sdu, sd2u;
    const T su = f.evaluate(row[j], sdu, sd2u);
    scalar_sum += su;
    if (row[j] >= rc) {
      // Exact zero contribution, matching the scalar r >= rcut early-out.
      EXPECT_EQ(u[j], T(0)) << row[j];
      EXPECT_EQ(du[j], T(0)) << row[j];
      EXPECT_EQ(d2u[j], T(0)) << row[j];
    } else {
      const T tol = std::is_same_v<T, double> ? T(1e-12) : T(1e-6);
      EXPECT_NEAR(u[j], su, tol) << row[j];
      EXPECT_NEAR(du[j], sdu, tol * 10) << row[j];
      EXPECT_NEAR(d2u[j], sd2u, tol * 100) << row[j];
    }
  }
  const T tol = std::is_same_v<T, double> ? T(1e-12) : T(1e-5);
  EXPECT_NEAR(f.sum_row(row, 8), scalar_sum, tol);

  // A row made entirely of at/beyond-cutoff entries sums to exactly zero.
  alignas(kAlignment) const T dead_row[4] = {rc, kSelfDistance<T>, T(100), rc + T(1)};
  EXPECT_EQ(f.sum_row(dead_row, 4), T(0));
  f.evaluate_row(dead_row, 4, u, du, d2u);
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(u[j], T(0)) << j;
    EXPECT_EQ(du[j], T(0)) << j;
    EXPECT_EQ(d2u[j], T(0)) << j;
  }
}

} // namespace

TEST(Functor, RowKernelsMaskCutoffBoundaryExactlyDouble)
{
  check_row_kernels_at_cutoff<double>();
}

TEST(Functor, RowKernelsMaskCutoffBoundaryExactlyFloat)
{
  check_row_kernels_at_cutoff<float>();
}

TEST(J2, ValueMatchesBruteForce)
{
  JFixture f;
  DistanceTableAA_SoA<double> soa(f.lattice, f.elec_soa.size());
  soa.evaluate(f.elec_soa);
  const TwoBodyJastrowSoA<double> j2(f.fj2);
  std::vector<Vec3<double>> g(static_cast<std::size_t>(f.elec_soa.size()));
  std::vector<double> l(static_cast<std::size_t>(f.elec_soa.size()));
  EXPECT_NEAR(j2.evaluate_log(soa, g.data(), l.data()), brute_log_j2(f), 1e-9);
}

TEST(J2, AoSAndSoAAgree)
{
  JFixture f;
  DistanceTableAA_AoS<double> ta(f.lattice, f.elec_aos.size());
  DistanceTableAA_SoA<double> ts(f.lattice, f.elec_soa.size());
  ta.evaluate(f.elec_aos);
  ts.evaluate(f.elec_soa);
  const TwoBodyJastrowAoS<double> ja(f.fj2);
  const TwoBodyJastrowSoA<double> js(f.fj2);
  const int n = f.elec_soa.size();
  std::vector<Vec3<double>> ga(static_cast<std::size_t>(n)), gs(static_cast<std::size_t>(n));
  std::vector<double> la(static_cast<std::size_t>(n)), ls(static_cast<std::size_t>(n));
  const double va = ja.evaluate_log(ta, ga.data(), la.data());
  const double vs = js.evaluate_log(ts, gs.data(), ls.data());
  EXPECT_NEAR(va, vs, 1e-9);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(ga[static_cast<std::size_t>(i)].x, gs[static_cast<std::size_t>(i)].x, 1e-9);
    EXPECT_NEAR(ga[static_cast<std::size_t>(i)].y, gs[static_cast<std::size_t>(i)].y, 1e-9);
    EXPECT_NEAR(la[static_cast<std::size_t>(i)], ls[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(J2, GradientMatchesFiniteDifferenceOfLog)
{
  JFixture f(10);
  const TwoBodyJastrowSoA<double> j2(f.fj2);
  const int n = f.elec_soa.size();
  std::vector<Vec3<double>> g(static_cast<std::size_t>(n));
  std::vector<double> l(static_cast<std::size_t>(n));

  auto log_j2_at = [&](int iel, Vec3<double> r) {
    auto elec = f.elec_soa;
    elec.set(iel, r);
    DistanceTableAA_SoA<double> t(f.lattice, n);
    t.evaluate(elec);
    std::vector<Vec3<double>> gg(static_cast<std::size_t>(n));
    std::vector<double> ll(static_cast<std::size_t>(n));
    return j2.evaluate_log(t, gg.data(), ll.data());
  };

  DistanceTableAA_SoA<double> t(f.lattice, n);
  t.evaluate(f.elec_soa);
  j2.evaluate_log(t, g.data(), l.data());

  const double h = 1e-6;
  for (int iel : {0, 4, 9}) {
    const Vec3<double> r = f.elec_soa[iel];
    const double fdx = (log_j2_at(iel, Vec3<double>{r.x + h, r.y, r.z}) -
                        log_j2_at(iel, Vec3<double>{r.x - h, r.y, r.z})) /
                       (2 * h);
    const double fdy = (log_j2_at(iel, Vec3<double>{r.x, r.y + h, r.z}) -
                        log_j2_at(iel, Vec3<double>{r.x, r.y - h, r.z})) /
                       (2 * h);
    EXPECT_NEAR(g[static_cast<std::size_t>(iel)].x, fdx, 1e-5) << iel;
    EXPECT_NEAR(g[static_cast<std::size_t>(iel)].y, fdy, 1e-5) << iel;
  }
}

TEST(J2, LaplacianMatchesFiniteDifferenceOfLog)
{
  JFixture f(8);
  const TwoBodyJastrowSoA<double> j2(f.fj2);
  const int n = f.elec_soa.size();

  auto log_j2_at = [&](int iel, Vec3<double> r) {
    auto elec = f.elec_soa;
    elec.set(iel, r);
    DistanceTableAA_SoA<double> t(f.lattice, n);
    t.evaluate(elec);
    std::vector<Vec3<double>> gg(static_cast<std::size_t>(n));
    std::vector<double> ll(static_cast<std::size_t>(n));
    return j2.evaluate_log(t, gg.data(), ll.data());
  };

  DistanceTableAA_SoA<double> t(f.lattice, n);
  t.evaluate(f.elec_soa);
  std::vector<Vec3<double>> g(static_cast<std::size_t>(n));
  std::vector<double> l(static_cast<std::size_t>(n));
  j2.evaluate_log(t, g.data(), l.data());

  const double h = 1e-4;
  const int iel = 3;
  const Vec3<double> r = f.elec_soa[iel];
  const double f0 = log_j2_at(iel, r);
  double lap_fd = 0.0;
  lap_fd += (log_j2_at(iel, Vec3<double>{r.x + h, r.y, r.z}) -
             2 * f0 + log_j2_at(iel, Vec3<double>{r.x - h, r.y, r.z})) /
            (h * h);
  lap_fd += (log_j2_at(iel, Vec3<double>{r.x, r.y + h, r.z}) -
             2 * f0 + log_j2_at(iel, Vec3<double>{r.x, r.y - h, r.z})) /
            (h * h);
  lap_fd += (log_j2_at(iel, Vec3<double>{r.x, r.y, r.z + h}) -
             2 * f0 + log_j2_at(iel, Vec3<double>{r.x, r.y, r.z - h})) /
            (h * h);
  EXPECT_NEAR(l[static_cast<std::size_t>(iel)], lap_fd, 1e-3);
}

TEST(J2, RatioMatchesRecompute)
{
  JFixture f;
  const int n = f.elec_soa.size();
  const TwoBodyJastrowSoA<double> j2(f.fj2);
  DistanceTableAA_SoA<double> t(f.lattice, n);
  t.evaluate(f.elec_soa);

  std::vector<Vec3<double>> g(static_cast<std::size_t>(n));
  std::vector<double> l(static_cast<std::size_t>(n));
  const double log_before = j2.evaluate_log(t, g.data(), l.data());

  const int iel = 7;
  const Vec3<double> rnew{2.1, 0.4, 5.0};
  t.compute_temp(f.elec_soa, rnew, iel);
  const double ratio = j2.ratio_log(t, iel);

  auto elec = f.elec_soa;
  elec.set(iel, rnew);
  DistanceTableAA_SoA<double> t2(f.lattice, n);
  t2.evaluate(elec);
  const double log_after = j2.evaluate_log(t2, g.data(), l.data());
  EXPECT_NEAR(ratio, log_after - log_before, 1e-9);
}

TEST(J1, ValueMatchesBruteForce)
{
  JFixture f;
  DistanceTableAB_SoA<double> t(f.lattice, f.ions_soa, f.elec_soa.size());
  t.evaluate(f.elec_soa);
  const OneBodyJastrowSoA<double> j1(f.fj1);
  std::vector<Vec3<double>> g(static_cast<std::size_t>(f.elec_soa.size()));
  std::vector<double> l(static_cast<std::size_t>(f.elec_soa.size()));
  EXPECT_NEAR(j1.evaluate_log(t, g.data(), l.data()), brute_log_j1(f), 1e-9);
}

TEST(J1, AoSAndSoAAgree)
{
  JFixture f;
  DistanceTableAB_AoS<double> ta(f.lattice, f.ions_aos, f.elec_aos.size());
  DistanceTableAB_SoA<double> ts(f.lattice, f.ions_soa, f.elec_soa.size());
  ta.evaluate(f.elec_aos);
  ts.evaluate(f.elec_soa);
  const OneBodyJastrowAoS<double> ja(f.fj1);
  const OneBodyJastrowSoA<double> js(f.fj1);
  const int n = f.elec_soa.size();
  std::vector<Vec3<double>> ga(static_cast<std::size_t>(n)), gs(static_cast<std::size_t>(n));
  std::vector<double> la(static_cast<std::size_t>(n)), ls(static_cast<std::size_t>(n));
  EXPECT_NEAR(ja.evaluate_log(ta, ga.data(), la.data()), js.evaluate_log(ts, gs.data(), ls.data()),
              1e-9);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(ga[static_cast<std::size_t>(i)].z, gs[static_cast<std::size_t>(i)].z, 1e-9);
    EXPECT_NEAR(la[static_cast<std::size_t>(i)], ls[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(J1, RatioMatchesRecompute)
{
  JFixture f;
  const int n = f.elec_soa.size();
  DistanceTableAB_SoA<double> t(f.lattice, f.ions_soa, n);
  t.evaluate(f.elec_soa);
  const OneBodyJastrowSoA<double> j1(f.fj1);
  std::vector<Vec3<double>> g(static_cast<std::size_t>(n));
  std::vector<double> l(static_cast<std::size_t>(n));
  const double before = j1.evaluate_log(t, g.data(), l.data());

  const int iel = 2;
  const Vec3<double> rnew{0.5, 0.5, 0.5};
  t.compute_temp(rnew);
  const double ratio = j1.ratio_log(t, iel);

  auto elec = f.elec_soa;
  elec.set(iel, rnew);
  DistanceTableAB_SoA<double> t2(f.lattice, f.ions_soa, n);
  t2.evaluate(elec);
  const double after = j1.evaluate_log(t2, g.data(), l.data());
  EXPECT_NEAR(ratio, after - before, 1e-9);
}
