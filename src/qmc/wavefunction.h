// Slater-Jastrow trial wave function (paper Eq. 1-4):
//
//   psi_T = exp(J1 + J2) * det[A_up] * det[A_dn],   A(n, e) = phi_n(r_e)
//
// assembled from the library's components: the SoA B-spline engine supplies
// phi / grad phi / lap phi, the SoA distance tables and Jastrow factors the
// correlation part, and a configurable determinant-update engine the
// incrementally maintained inverses (per-move Sherman-Morrison or delayed
// rank-k, selected by `delay_rank` — see determinant/det_update.h).
// Implements the particle-by-particle protocol the paper's walkers run
// (ratio -> accept/reject) plus the local kinetic-energy estimator, with
// spin-restricted N_up == N_dn == N_orbitals.
//
// Crowd hook: ratio_log_v() prices a move from an externally evaluated
// orbital-value vector, so a lock-step crowd driver can batch the B-spline
// evaluations of W walkers (one evaluate_v_multi sweep of the coefficient
// table) and feed each wave function its slice.  ratio_log() is exactly
// ratio_log_v() fed from this wave function's own engine, so the two paths
// are bit-for-bit identical given bit-identical value vectors.
//
// Numerics follow QMCPACK: kernels in T (float in production), determinant
// algebra and accumulated logs in double.
#ifndef MQC_QMC_WAVEFUNCTION_H
#define MQC_QMC_WAVEFUNCTION_H

#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "common/vec3.h"
#include "core/bspline_soa.h"
#include "core/orbital_set.h"
#include "determinant/det_update.h"
#include "distance/distance_table.h"
#include "jastrow/one_body.h"
#include "jastrow/two_body.h"
#include "particles/lattice.h"
#include "particles/particle_set.h"
#include "qmc/walker.h"

namespace mqc {

template <typename T>
class SlaterJastrow
{
public:
  /// @p delay_rank selects the determinant-update algorithm for both spin
  /// sectors: <= 1 keeps the per-move Sherman-Morrison path, k >= 2 delays
  /// accepted columns into a rank-k window (determinant/det_update.h).
  SlaterJastrow(std::shared_ptr<const CoefStorage<T>> orbitals, const Lattice& lattice,
                ParticleSetSoA<T> ions, BsplineJastrowFunctor<T> j1_functor,
                BsplineJastrowFunctor<T> j2_functor, MinImageMode mode = MinImageMode::Fast,
                int delay_rank = 0)
      : engine_(std::move(orbitals)), lattice_(&lattice), ions_(std::move(ions)),
        j1f_(std::move(j1_functor)), j2f_(std::move(j2_functor)), j1_(j1f_), j2_(j2f_),
        mode_(mode), out_(engine_.out_stride()), norb_(engine_.num_splines()),
        det_up_(delay_rank), det_dn_(delay_rank)
  {
  }

  [[nodiscard]] int num_orbitals() const noexcept { return norb_; }
  [[nodiscard]] int num_electrons() const noexcept { return 2 * norb_; }
  [[nodiscard]] DetUpdateKind det_update_kind() const noexcept { return det_up_.kind(); }
  [[nodiscard]] int delay_rank() const noexcept { return det_up_.delay(); }
  /// The orbital engine (read-only): crowd drivers use its grid and
  /// multi-position kernels to batch evaluations across walkers.
  [[nodiscard]] const BsplineSoA<T>& engine() const noexcept { return engine_; }

  /// Build all state from an electron configuration (O(N^3)).
  /// Returns false if either determinant is singular.
  bool initialize(const ParticleSetSoA<T>& elec)
  {
    assert(elec.size() == num_electrons());
    elec_ = elec;
    const int nel = num_electrons();
    ee_ = std::make_unique<DistanceTableAA_SoA<T>>(*lattice_, nel, mode_);
    ei_ = std::make_unique<DistanceTableAB_SoA<T>>(*lattice_, ions_, nel, mode_);
    ee_->evaluate(elec_);
    ei_->evaluate(elec_);

    std::vector<Vec3<T>> jg(static_cast<std::size_t>(nel));
    std::vector<T> jl(static_cast<std::size_t>(nel));
    log_jastrow_ = static_cast<double>(j2_.evaluate_log(*ee_, jg.data(), jl.data())) +
                   static_cast<double>(j1_.evaluate_log(*ei_, jg.data(), jl.data()));

    Matrix<double> a_up(norb_), a_dn(norb_);
    for (int e = 0; e < norb_; ++e) {
      fill_phi(elec_[e]);
      for (int n = 0; n < norb_; ++n)
        a_up(n, e) = phi_[static_cast<std::size_t>(n)] + (n == e ? 1.0 : 0.0);
    }
    for (int e = 0; e < norb_; ++e) {
      fill_phi(elec_[norb_ + e]);
      for (int n = 0; n < norb_; ++n)
        a_dn(n, e) = phi_[static_cast<std::size_t>(n)] + (n == e ? 1.0 : 0.0);
    }
    // The unit diagonal boost keeps synthetic orbital matrices well
    // conditioned (production orbitals are near-orthogonal); it is applied
    // consistently in ratio() below so the wave function stays exact.
    return det_up_.build(a_up) && det_dn_.build(a_dn);
  }

  /// log |psi| and the overall sign.
  [[nodiscard]] double log_psi() const noexcept
  {
    return log_jastrow_ + det_up_.log_det() + det_dn_.log_det();
  }
  [[nodiscard]] double sign() const noexcept { return det_up_.sign() * det_dn_.sign(); }

  /// Hand the caller's inner team (common/threading.h) to both spin
  /// determinants: delayed-update flushes distribute their column blocks
  /// over it (bit-identical for every team size; no-op under
  /// Sherman-Morrison).
  void set_det_team(TeamHandle team) noexcept
  {
    det_up_.set_team(team);
    det_dn_.set_team(team);
  }

  /// log(|psi(r')| / |psi(r)|) for moving electron @p iel to @p rnew.
  /// Caches everything accept(iel) needs; reject() discards implicitly.
  double ratio_log(int iel, const Vec3<T>& rnew)
  {
    spo().evaluate_one(DerivLevel::V, rnew, out_.v.data(), nullptr, nullptr, out_.stride);
    return ratio_log_v(iel, rnew, out_.v.data());
  }

  /// Crowd entry point: identical to ratio_log(), but the orbital values at
  /// @p rnew (length num_orbitals, any layout-compatible buffer) were
  /// evaluated externally — typically one multi-position engine sweep shared
  /// by a whole crowd of walkers.
  double ratio_log_v(int iel, const Vec3<T>& rnew, const T* values)
  {
    ee_->compute_temp(elec_, rnew, iel);
    ei_->compute_temp(rnew);
    pending_jr_ = static_cast<double>(j2_.ratio_log(*ee_, iel)) +
                  static_cast<double>(j1_.ratio_log(*ei_, iel));
    phi_.resize(static_cast<std::size_t>(norb_));
    for (int n = 0; n < norb_; ++n)
      phi_[static_cast<std::size_t>(n)] = static_cast<double>(values[n]);
    const int col = iel < norb_ ? iel : iel - norb_;
    phi_[static_cast<std::size_t>(col)] += 1.0; // diagonal boost, see initialize()
    DetUpdater& det = iel < norb_ ? det_up_ : det_dn_;
    pending_det_ratio_ = det.ratio(phi_.data(), col);
    pending_iel_ = iel;
    pending_rnew_ = rnew;
    return pending_jr_ + std::log(std::abs(pending_det_ratio_));
  }

  /// Commit the last priced move.
  void accept(int iel)
  {
    assert(iel == pending_iel_ && "accept must follow ratio_log for the same electron");
    ee_->accept_move(iel);
    ei_->accept_move(iel);
    const int col = iel < norb_ ? iel : iel - norb_;
    DetUpdater& det = iel < norb_ ? det_up_ : det_dn_;
    det.accept_move(phi_.data(), col);
    elec_.set(iel, pending_rnew_);
    log_jastrow_ += pending_jr_;
    pending_iel_ = -1;
  }

  /// Discard the last priced move (tables keep temp rows; nothing committed).
  void reject(int) noexcept { pending_iel_ = -1; }

  /// Gradient and Laplacian of log psi per electron (both spin sectors).
  void grad_lap_log_psi(std::vector<Vec3<double>>& grad, std::vector<double>& lap)
  {
    const int nel = num_electrons();
    grad.assign(static_cast<std::size_t>(nel), Vec3<double>{});
    lap.assign(static_cast<std::size_t>(nel), 0.0);

    // Jastrow part.
    std::vector<Vec3<T>> jg(static_cast<std::size_t>(nel));
    std::vector<T> jl(static_cast<std::size_t>(nel), T(0));
    std::vector<Vec3<T>> jg1(static_cast<std::size_t>(nel));
    std::vector<T> jl1(static_cast<std::size_t>(nel), T(0));
    (void)j2_.evaluate_log(*ee_, jg.data(), jl.data());
    (void)j1_.evaluate_log(*ei_, jg1.data(), jl1.data());
    for (int i = 0; i < nel; ++i) {
      const auto u = static_cast<std::size_t>(i);
      grad[u] += Vec3<double>{static_cast<double>(jg[u].x + jg1[u].x),
                              static_cast<double>(jg[u].y + jg1[u].y),
                              static_cast<double>(jg[u].z + jg1[u].z)};
      lap[u] += static_cast<double>(jl[u]) + static_cast<double>(jl1[u]);
    }

    // Determinant part: grad log D = sum_n Ainv(e,n) grad phi_n(r_e),
    // lap log D = sum_n Ainv(e,n) lap phi_n - |grad log D|^2.
    for (int i = 0; i < nel; ++i) {
      const int col = i < norb_ ? i : i - norb_;
      // Non-const: the delayed engine folds its pending window into the
      // stored inverse before exposing it.
      DetUpdater& det = i < norb_ ? det_up_ : det_dn_;
      const Vec3<T> r = elec_[i];
      spo().evaluate_one(DerivLevel::VGL, r, out_.v.data(), out_.g.data(), out_.l.data(),
                         out_.stride);
      const double* arow = det.inverse().row(col);
      Vec3<double> gd{};
      double ld = 0.0;
      for (int n = 0; n < norb_; ++n) {
        const auto un = static_cast<std::size_t>(n);
        const double w = arow[n];
        gd += w * Vec3<double>{static_cast<double>(out_.gx()[un]),
                               static_cast<double>(out_.gy()[un]),
                               static_cast<double>(out_.gz()[un])};
        ld += w * static_cast<double>(out_.l[un]);
      }
      // (The diagonal boost is position-independent, so it contributes no
      // gradient or Laplacian.)
      const auto u = static_cast<std::size_t>(i);
      grad[u] += gd;
      lap[u] += ld - norm2(gd);
    }
  }

  /// Local kinetic energy  -(1/2) sum_i (lap_i log psi + |grad_i log psi|^2).
  double kinetic_energy()
  {
    std::vector<Vec3<double>> grad;
    std::vector<double> lap;
    grad_lap_log_psi(grad, lap);
    double k = 0.0;
    for (std::size_t i = 0; i < grad.size(); ++i)
      k += lap[i] + norm2(grad[i]);
    return -0.5 * k;
  }

  [[nodiscard]] const ParticleSetSoA<T>& electrons() const noexcept { return elec_; }

private:
  /// The facade over this wave function's own engine.  Built per call (an
  /// OrbitalSet is two words and non-owning): a stored facade would dangle
  /// whenever the object — and the by-value engine_ inside it — is moved.
  [[nodiscard]] OrbitalSet<T> spo() const noexcept { return OrbitalSet<T>(engine_); }

  void fill_phi(const Vec3<T>& r)
  {
    spo().evaluate_one(DerivLevel::V, r, out_.v.data(), nullptr, nullptr, out_.stride);
    phi_.resize(static_cast<std::size_t>(norb_));
    for (int n = 0; n < norb_; ++n)
      phi_[static_cast<std::size_t>(n)] = static_cast<double>(out_.v[static_cast<std::size_t>(n)]);
  }

  BsplineSoA<T> engine_;
  const Lattice* lattice_;
  ParticleSetSoA<T> ions_;
  BsplineJastrowFunctor<T> j1f_, j2f_;
  OneBodyJastrowSoA<T> j1_;
  TwoBodyJastrowSoA<T> j2_;
  MinImageMode mode_;
  WalkerSoA<T> out_;
  int norb_;

  ParticleSetSoA<T> elec_;
  std::unique_ptr<DistanceTableAA_SoA<T>> ee_;
  std::unique_ptr<DistanceTableAB_SoA<T>> ei_;
  DetUpdater det_up_, det_dn_;
  double log_jastrow_ = 0.0;

  // Pending move cache (ratio_log -> accept protocol).
  std::vector<double> phi_;
  double pending_jr_ = 0.0;
  double pending_det_ratio_ = 0.0;
  int pending_iel_ = -1;
  Vec3<T> pending_rnew_{};
};

} // namespace mqc

#endif // MQC_QMC_WAVEFUNCTION_H
