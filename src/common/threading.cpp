// Topology detection and partition resolution for the thread-team subsystem
// (common/threading.h).  Detection follows the mctop approach in spirit —
// derive the socket/core/SMT shape of the machine and keep teams inside one
// socket — but reads the kernel's own description (sysfs) instead of
// measuring cache latencies.
#include "common/threading.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <utility>

#if defined(__unix__)
#include <unistd.h>
#endif

namespace mqc {
namespace {

/// One-line warning for a malformed env knob; the caller then falls back to
/// the automatic behaviour, never to a half-parsed shape.
void warn_env_knob(const char* name, const char* text, const char* expected)
{
  std::fprintf(stderr, "mqc: warning: ignoring malformed %s=\"%s\" (expected %s); using auto\n",
               name, text, expected);
}

bool read_int_file(const std::string& path, int& out)
{
  std::ifstream in(path);
  int v = 0;
  if (!(in >> v))
    return false;
  out = v;
  return true;
}

/// Read the socket/core shape from Linux sysfs.  Counts distinct
/// physical_package_id values and distinct (package, core) pairs over the
/// online cpus; smt is logical / physical cores (rounded down, >= 1).
/// Offline cpus have no topology/ directory, so the scan runs over the
/// full configured cpu index range and skips holes instead of stopping at
/// the first one (a break would truncate the shape on any machine with an
/// offlined core and silently disable the nested layer).
bool query_sysfs_topology(MachineTopology& topo)
{
  long configured = 0;
#if defined(_SC_NPROCESSORS_CONF)
  configured = ::sysconf(_SC_NPROCESSORS_CONF);
#endif
  const int scan = configured > 0 ? static_cast<int>(configured) : 4096;
  std::set<int> packages;
  std::set<std::pair<int, int>> cores;
  int logical = 0;
  for (int cpu = 0; cpu < scan; ++cpu) {
    const std::string base = "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
    int pkg = 0, core = 0;
    if (!read_int_file(base + "physical_package_id", pkg) ||
        !read_int_file(base + "core_id", core))
      continue;
    packages.insert(pkg);
    cores.insert({pkg, core});
    ++logical;
  }
  if (logical == 0 || packages.empty() || cores.empty())
    return false;
  topo.logical_cpus = logical;
  topo.sockets = static_cast<int>(packages.size());
  const int physical = static_cast<int>(cores.size());
  topo.cores_per_socket = std::max(1, physical / topo.sockets);
  topo.smt = std::max(1, logical / physical);
  topo.detected = true;
  return true;
}

} // namespace

EnvKnob parse_env_knob(const char* text, int min_count, int max_count)
{
  EnvKnob k;
  if (text == nullptr)
    return k;
  k.present = true;
  const char* p = text;
  while (*p == ' ' || *p == '\t')
    ++p;
  int count = 0;
  for (;;) {
    if (!std::isdigit(static_cast<unsigned char>(*p)))
      return k; // empty field, separator run, or non-numeric garbage
    long v = 0;
    while (std::isdigit(static_cast<unsigned char>(*p))) {
      v = v * 10 + (*p - '0');
      if (v > 1'000'000)
        return k; // absurd thread/socket counts are typos, not requests
      ++p;
    }
    if (v <= 0 || count >= 3)
      return k;
    k.values[count++] = static_cast<int>(v);
    if (*p == 'x' || *p == 'X' || *p == ':' || *p == ',') {
      ++p;
      continue;
    }
    while (*p == ' ' || *p == '\t')
      ++p;
    if (*p != '\0')
      return k; // trailing garbage after the last field
    break;
  }
  if (count < min_count || count > max_count)
    return k;
  k.count = count;
  k.valid = true;
  return k;
}

void request_nested_levels(int levels)
{
#ifdef _OPENMP
  // The operator's explicit limit wins: if either nesting env var is set the
  // runtime already reflects the requested policy and we leave it alone.
  if (std::getenv("OMP_MAX_ACTIVE_LEVELS") != nullptr || std::getenv("OMP_NESTED") != nullptr)
    return;
  if (omp_get_max_active_levels() < levels)
    omp_set_max_active_levels(levels);
#else
  (void)levels;
#endif
}

MachineTopology query_machine_topology()
{
  MachineTopology topo;
  // 1. forced shape: MQC_TOPOLOGY=SxCxT (smt optional).
  const char* topo_env = std::getenv("MQC_TOPOLOGY");
  const EnvKnob forced = parse_env_knob(topo_env, 2, 3);
  if (forced.valid) {
    topo.sockets = forced.values[0];
    topo.cores_per_socket = forced.values[1];
    topo.smt = forced.count >= 3 ? forced.values[2] : 1;
    topo.logical_cpus = topo.sockets * topo.cores_per_socket * topo.smt;
    topo.detected = true;
    return topo;
  }
  if (forced.present)
    warn_env_knob("MQC_TOPOLOGY", topo_env, "SxC or SxCxT, positive integers");
  // 2. the kernel's description.
  if (query_sysfs_topology(topo))
    return topo;
  // 3. flat fallback: everything the OpenMP runtime grants, one socket.
  topo.logical_cpus = std::max(1, max_threads());
  topo.sockets = 1;
  topo.cores_per_socket = topo.logical_cpus;
  topo.smt = 1;
  topo.detected = false;
  return topo;
}

const MachineTopology& machine_topology()
{
  static const MachineTopology topo = query_machine_topology();
  return topo;
}

ThreadPartition ThreadPartition::resolve_for(int outer_work, int requested_inner,
                                             int total_threads, const MachineTopology& topo)
{
  ThreadPartition part;
  part.outer = std::max(1, outer_work);
  if (requested_inner > 0) {
    part.inner = requested_inner;
    return part;
  }
  const int total = total_threads > 0 ? total_threads : std::max(1, topo.logical_cpus);
  int inner = std::max(1, total / part.outer);
  // Topology-aware shrink: the largest divisor of one socket's hardware
  // threads that fits — an inner team then never straddles a socket (and,
  // when it lands below cores_per_socket, shares at most one core's SMT
  // siblings plus same-socket cache).
  const int per_socket = std::max(1, topo.threads_per_socket());
  if (inner > 1 && per_socket > 1) {
    int best = 1;
    for (int d = 1; d <= per_socket; ++d)
      if (per_socket % d == 0 && d <= inner)
        best = std::max(best, d);
    inner = best;
  }
  part.inner = std::max(1, inner);
  return part;
}

int resolve_shard_count_for(int requested, const MachineTopology& topo) noexcept
{
  if (requested > 0)
    return requested;
  return std::max(1, topo.sockets);
}

int resolve_shard_count(int requested)
{
  if (requested <= 0) {
    // Env override, only consulted in auto mode (same precedence contract as
    // the partition knobs): explicit API request > MQC_SHARDS > topology.
    const char* env = std::getenv("MQC_SHARDS");
    const EnvKnob knob = parse_env_knob(env, 1, 1);
    if (knob.valid)
      return knob.values[0];
    if (knob.present)
      warn_env_knob("MQC_SHARDS", env, "one positive integer");
  }
  return resolve_shard_count_for(requested, machine_topology());
}

ThreadPartition ThreadPartition::resolve(int outer_work, int requested_inner, int total_threads)
{
  if (requested_inner <= 0) {
    // Env overrides, only consulted in auto mode: an explicit knob from the
    // caller (config, API) always wins over the environment.  A malformed
    // value warns once here and falls through to the auto partition — it
    // never produces a bogus shape.
    const char* part_env = std::getenv("MQC_PARTITION");
    const EnvKnob part = parse_env_knob(part_env, 2, 2);
    if (part.valid)
      return ThreadPartition{part.values[0], part.values[1]};
    if (part.present)
      warn_env_knob("MQC_PARTITION", part_env, "OxI, two positive integers");
    const char* inner_env = std::getenv("MQC_INNER_THREADS");
    const EnvKnob inner = parse_env_knob(inner_env, 1, 1);
    if (inner.valid)
      return resolve_for(outer_work, inner.values[0], total_threads, machine_topology());
    if (inner.present)
      warn_env_knob("MQC_INNER_THREADS", inner_env, "one positive integer");
  }
  return resolve_for(outer_work, requested_inner, total_threads, machine_topology());
}

} // namespace mqc
