// DMC branching driver (tentpole of the dynamic-population line of work).
//
// Diffusion Monte Carlo is the workload the fixed-count VMC drivers only
// emulate: walkers drift along the local wave-function gradient, diffuse
// with Gaussian noise, and carry a branching weight that periodically
// converts into birth/death — the population grows, shrinks, and must be
// re-blocked across crowds and shards at runtime.  This driver builds that
// on the shared crowd-sweep core (crowd_sweep.h):
//
//   * A run is cfg.dmc_generations *generations* of cfg.dmc_gen_steps
//     lock-step sweeps each.  Within a generation the population is fixed
//     and every crowd advances through the identical per-walker arithmetic
//     the VMC drivers use; drift is the only addition — one extra VGL batch
//     at the current positions of each electron, whose gradient column
//     biases that electron's proposal by tau * v (clamped).  The proposal
//     still draws exactly three gaussians per electron from the walker's
//     own stream, so the draw-sequence structure matches VMC move for move.
//   * At each generation boundary (serial, outside any team region, in
//     walker-id order) weights update by exp(-tau*gen_steps*(E_L - E_T)),
//     clamp into the weight window [dmc_weight_min, dmc_weight_max], and
//     convert to an integer multiplicity by stochastic rounding
//     m = floor(w + u) (capped by dmc_max_branch and a 4x-target population
//     ceiling).  m = 0 kills the walker; m > 1 spawns m-1 children, each a
//     FULL state clone of its parent (positions, rng stream incl. the
//     Box–Muller cache, committed distance tables, determinant panels —
//     the checkpoint Walker codec is the clone path, see
//     detail::clone_walker_state) on its own split rng stream
//     (Xoshiro256::split), so a child's trajectory is a pure function of
//     parent state + child stream.  The trial energy then moves by the
//     feedback rule E_T -= dmc_feedback * log(N / N_target).
//   * After every branch step the surviving walkers are re-blocked
//     contiguously across the same socket-sharded systems the
//     WalkerPopulation service uses (first-touch coefficient replicas are
//     built once and never move; only the walker->shard/crowd map changes).
//
// The oracle: with cfg.dmc_replay set, drift, weighting and branching are
// disabled entirely (multiplicity pinned to 1) and each generation runs the
// unmodified crowd_sweep_steps body — the run is then bit-for-bit a VMC
// crowd run of dmc_generations*dmc_gen_steps steps, for every layout, crowd
// size, delay rank, partition shape, and shard count (tests/test_dmc.cpp).
// Full DMC runs are seed-deterministic: identical population trace, birth/
// death counters, trial energy and per-walker fingerprints on every rerun
// and under every decomposition.
//
// Checkpoint/restore: snapshots are written at generation boundaries
// through the PR 7 format (variable walker-section count was already
// supported); the Meta section gains an appended DMC tail — generation,
// trial energy, birth/death counters, per-walker weights — and the DMC
// branching knobs join the config hash, so VMC and DMC snapshots never
// cross-resume silently and a killed DMC run resumes bit-for-bit
// (detail::dmc_checkpoint_boundary / dmc_resume_from_checkpoint).
//
// Entry point: run_miniqmc() with cfg.driver == DriverMode::DMC
// (implementation in dmc_driver.cpp; internal plumbing declared in
// miniqmc_context.h).
#ifndef MQC_QMC_DMC_DRIVER_H
#define MQC_QMC_DMC_DRIVER_H

#include "qmc/miniqmc_driver.h"

#endif // MQC_QMC_DMC_DRIVER_H
