#include "core/bspline_builder.h"

#include <cassert>
#include <vector>

namespace mqc {

void solve_tridiagonal(const double* sub, double* diag, const double* sup, double* rhs, int n)
{
  assert(n >= 1);
  // Forward elimination.
  for (int i = 1; i < n; ++i) {
    const double m = sub[i] / diag[i - 1];
    diag[i] -= m * sup[i - 1];
    rhs[i] -= m * rhs[i - 1];
  }
  // Back substitution.
  rhs[n - 1] /= diag[n - 1];
  for (int i = n - 2; i >= 0; --i)
    rhs[i] = (rhs[i] - sup[i] * rhs[i + 1]) / diag[i];
}

void solve_cyclic_tridiagonal_const(double sub, double diag, double sup, double corner_lo,
                                    double corner_hi, const double* rhs, double* x, int n)
{
  assert(n >= 3);
  // Sherman–Morrison: A = B + u v^T with
  //   u = (gamma, 0, ..., 0, corner_lo)^T,  v = (1, 0, ..., 0, corner_hi/gamma)^T
  // and B tridiagonal with modified diag[0] and diag[n-1].
  const double gamma = -diag;
  std::vector<double> dia(static_cast<std::size_t>(n), diag);
  std::vector<double> subv(static_cast<std::size_t>(n), sub);
  std::vector<double> supv(static_cast<std::size_t>(n), sup);
  dia[0] = diag - gamma;
  dia[static_cast<std::size_t>(n) - 1] = diag - corner_lo * corner_hi / gamma;

  // Solve B y = rhs.
  std::vector<double> y(rhs, rhs + n);
  std::vector<double> dwork = dia;
  solve_tridiagonal(subv.data(), dwork.data(), supv.data(), y.data(), n);

  // Solve B z = u.
  std::vector<double> z(static_cast<std::size_t>(n), 0.0);
  z[0] = gamma;
  z[static_cast<std::size_t>(n) - 1] = corner_lo;
  dwork = dia;
  solve_tridiagonal(subv.data(), dwork.data(), supv.data(), z.data(), n);

  // x = y - z (v.y) / (1 + v.z).
  const double vy = y[0] + corner_hi / gamma * y[static_cast<std::size_t>(n) - 1];
  const double vz = z[0] + corner_hi / gamma * z[static_cast<std::size_t>(n) - 1];
  const double factor = vy / (1.0 + vz);
  for (int i = 0; i < n; ++i)
    x[i] = y[static_cast<std::size_t>(i)] - factor * z[static_cast<std::size_t>(i)];
}

void solve_periodic_spline_line(const double* data, double* c, int n)
{
  constexpr double w = 1.0 / 6.0;
  constexpr double d = 4.0 / 6.0;
  switch (n) {
  case 1:
    // (c + 4c + c)/6 = data  =>  c = data.
    c[0] = data[0];
    return;
  case 2: {
    // Both off-diagonal neighbours alias the other point: (4c_m + 2c_{1-m})/6.
    const double d0 = data[0], d1 = data[1];
    c[0] = 2.0 * d0 - d1;
    c[1] = 2.0 * d1 - d0;
    return;
  }
  default:
    solve_cyclic_tridiagonal_const(w, d, w, w, w, data, c, n);
    return;
  }
}

void solve_periodic_spline_line_strided(const double* data, std::size_t data_stride, double* c,
                                        std::size_t c_stride, int n)
{
  std::vector<double> line(static_cast<std::size_t>(n));
  std::vector<double> sol(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    line[static_cast<std::size_t>(i)] = data[static_cast<std::size_t>(i) * data_stride];
  solve_periodic_spline_line(line.data(), sol.data(), n);
  for (int i = 0; i < n; ++i)
    c[static_cast<std::size_t>(i) * c_stride] = sol[static_cast<std::size_t>(i)];
}

void solve_periodic_spline_3d(double* values, int nx, int ny, int nz)
{
  const std::size_t sy = static_cast<std::size_t>(nz);
  const std::size_t sx = static_cast<std::size_t>(ny) * nz;
  // z pass: contiguous lines.
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j) {
      double* line = values + static_cast<std::size_t>(i) * sx + static_cast<std::size_t>(j) * sy;
      solve_periodic_spline_line_strided(line, 1, line, 1, nz);
    }
  // y pass.
  for (int i = 0; i < nx; ++i)
    for (int k = 0; k < nz; ++k) {
      double* line = values + static_cast<std::size_t>(i) * sx + static_cast<std::size_t>(k);
      solve_periodic_spline_line_strided(line, sy, line, sy, ny);
    }
  // x pass.
  for (int j = 0; j < ny; ++j)
    for (int k = 0; k < nz; ++k) {
      double* line = values + static_cast<std::size_t>(j) * sy + static_cast<std::size_t>(k);
      solve_periodic_spline_line_strided(line, sx, line, sx, nx);
    }
}

} // namespace mqc
