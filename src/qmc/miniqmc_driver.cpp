#include "qmc/miniqmc_driver.h"

#include <vector>

#include "qmc/miniqmc_context.h"

namespace mqc {

using detail::MiniQMCSystem;
using detail::WalkerState;
using detail::qmc_real;

MiniQMCResult run_miniqmc(const MiniQMCConfig& cfg)
{
  if (cfg.driver == DriverMode::Crowd)
    return detail::run_miniqmc_crowd(cfg);
  if (cfg.driver == DriverMode::DMC)
    return detail::run_miniqmc_dmc(cfg);

  const MiniQMCSystem sys(cfg);
  std::vector<WalkerState> walkers(static_cast<std::size_t>(sys.nw));

  // Nested-team partition: one outer member per walker; each walker's
  // multi-position quadrature batches and delayed-update flushes may fork
  // its inner team under the outer region.  With the default one-walker-
  // per-hardware-thread population the partition resolves to inner = 1 (the
  // classic flat schedule); smaller populations get the leftover threads.
  const ThreadPartition part = detail::resolve_team_partition(cfg, sys, sys.nw);
  const TeamHandle inner = TeamHandle::inner_of(part);

  MiniQMCResult result;
  result.num_walkers = sys.nw;
  result.num_electrons = sys.nel;
  result.num_orbitals = sys.norb;
  result.precision_path = sys.precision;
  result.team_path = classify_team_path(part.outer, part.inner);
  result.outer_threads_used = part.outer;
  result.inner_threads_used = part.inner;

  Stopwatch total_watch;

  // ---- setup (not profiled): positions, tables, determinants ------------
  // team_for over walker ids (not thread_id indexing) so every walker is
  // initialized and swept even when the runtime grants fewer threads than
  // requested (OMP_THREAD_LIMIT, dynamic teams).  Stored walker teams are
  // region-bound: a stale resolve after the outer region closes aborts
  // under MQC_CONTRACTS.
  team_for(TeamHandle::of(sys.nw), sys.nw, [&](int wid) {
    detail::init_walker(walkers[static_cast<std::size_t>(wid)], sys, cfg, wid);
    walkers[static_cast<std::size_t>(wid)].set_team(inner.bound_to_current_region());
  });

  // ---- resume (outside any team region): overwrite the freshly built
  // walker state from the snapshot, if one is usable ----------------------
  const detail::CheckpointRuntime ckrt = detail::make_checkpoint_runtime(cfg, sys);
  int step = detail::resume_from_checkpoint(ckrt, cfg, sys, walkers, result);

  // ---- the profiled Monte Carlo sweep, one walker per iteration ---------
  // Epoch-chunked: advance every walker to the next step boundary inside
  // one team region, snapshot between regions (checkpoint_step_boundary is
  // the crash-consistency point — and a no-op without a checkpoint path,
  // in which case the whole run is a single region as before).  Chunking is
  // trajectory-neutral: walker state and rng streams persist across
  // regions, and the stored teams bind by nesting level (threading.h).
  const int entry_step = step;
  while (step < cfg.steps) {
    const int boundary = detail::next_epoch_boundary(ckrt, step, cfg.steps);
    team_for(TeamHandle::of(sys.nw), sys.nw, [&](int wid) {
      WalkerState& w = walkers[static_cast<std::size_t>(wid)];
      for (int s = step; s < boundary; ++s) {
        // Drift-diffusion phase: particle-by-particle moves.
        for (int e = 0; e < sys.nel; ++e) {
          ++w.attempted;
          const Vec3<qmc_real> r_old = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
          const Vec3<qmc_real> r_new = detail::propose(w.rng, r_old, cfg.move_sigma);

          const qmc_real* v;
          {
            ScopedTimer t(w.profile, kSectionBspline);
            v = w.eval_vgh(sys, r_new); // VGH drives drift-diffusion (paper §IV)
          }
          detail::metropolis_move(w, sys, cfg, e, r_new, v);
        }

        // Measurement phase: kinetic energy (VGL) and a pseudopotential-like
        // quadrature (V at displaced points + one-body Jastrow ratio each).
        // The quadrature V evaluations of one electron form a position batch:
        // propose all points first (same rng stream as per-point evaluation,
        // since neither distance tables nor kernels consume randomness), run
        // the per-point distance/Jastrow ratios, then one multi-position V.
        for (int e = 0; e < sys.nel; ++e) {
          const Vec3<qmc_real> re = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
          {
            ScopedTimer t(w.profile, kSectionBspline);
            w.eval_vgl(sys, re);
          }
          for (int q = 0; q < cfg.quadrature_points; ++q)
            w.quad_r[static_cast<std::size_t>(q)] = detail::propose(w.rng, re, 0.5);
          detail::quadrature_dist_jastrow(w, sys, cfg, e);
          if (cfg.quadrature_points > 0) {
            ScopedTimer t(w.profile, kSectionBspline);
            w.eval_v_batch(sys, w.quad_r.data(), cfg.quadrature_points);
          }
        }
        detail::full_jastrow(w, sys, cfg);
      }
    });
    step = boundary;
    detail::checkpoint_step_boundary(ckrt, cfg, sys, walkers, step, cfg.steps, result);
  }
  // A run that never entered the loop (steps == 0, or a resume landing at or
  // past the step budget) still owes its end-of-run snapshot: a set
  // checkpoint path must always leave a resumable snapshot behind, counted
  // in checkpoints_written.  Passing the walkers' actual step as the budget
  // makes this a pure final write (the abort fault requires step < steps).
  if (entry_step >= cfg.steps)
    detail::checkpoint_step_boundary(ckrt, cfg, sys, walkers, step, step, result);
  result.seconds = total_watch.elapsed();
  detail::reduce_result(result, walkers);
  return result;
}

} // namespace mqc
