// Tests for the distance tables: both kinds (AA, AB) and both layouts
// (AoS, SoA) against brute force, cross-layout equivalence, and the
// particle-by-particle temp/accept protocol.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "distance/distance_table.h"
#include "particles/graphite.h"

using namespace mqc;

namespace {

struct Fixture
{
  Lattice lattice = Lattice::orthorhombic(3.0, 3.5, 4.0);
  ParticleSetSoA<float> elec_soa;
  ParticleSetAoS<float> elec_aos;
  ParticleSetSoA<float> ions_soa;
  ParticleSetAoS<float> ions_aos;

  explicit Fixture(int nel = 24, int nion = 8, std::uint64_t seed = 42)
  {
    elec_soa = random_particles<float>(nel, lattice, seed);
    elec_aos = to_aos(elec_soa);
    ions_soa = random_particles<float>(nion, lattice, seed + 1);
    ions_aos = to_aos(ions_soa);
  }
};

double brute_distance(const Lattice& lat, Vec3<float> a, Vec3<float> b)
{
  const auto d = lat.min_image(Vec3<double>{double(a.x) - b.x, double(a.y) - b.y,
                                            double(a.z) - b.z},
                               MinImageMode::Exact);
  return norm(d);
}

} // namespace

TEST(DistanceAA, AoSMatchesBruteForce)
{
  Fixture f;
  DistanceTableAA_AoS<float> tab(f.lattice, f.elec_aos.size());
  tab.evaluate(f.elec_aos);
  for (int i = 0; i < f.elec_aos.size(); ++i)
    for (int j = 0; j < f.elec_aos.size(); ++j) {
      if (i == j) {
        EXPECT_GE(tab.dist(i, j), 1e9f);
        continue;
      }
      EXPECT_NEAR(tab.dist(i, j), brute_distance(f.lattice, f.elec_aos[i], f.elec_aos[j]), 1e-4);
    }
}

TEST(DistanceAA, SoAMatchesAoS)
{
  Fixture f;
  DistanceTableAA_AoS<float> aos(f.lattice, f.elec_aos.size());
  DistanceTableAA_SoA<float> soa(f.lattice, f.elec_soa.size());
  aos.evaluate(f.elec_aos);
  soa.evaluate(f.elec_soa);
  for (int i = 0; i < f.elec_aos.size(); ++i) {
    const float* r = soa.dist_row(i);
    const float* dx = soa.dx_row(i);
    for (int j = 0; j < f.elec_aos.size(); ++j) {
      EXPECT_NEAR(r[j], aos.dist(i, j), 1e-4) << i << ',' << j;
      if (i != j) {
        EXPECT_NEAR(dx[j], aos.displ(i, j).x, 1e-4);
      }
    }
  }
}

TEST(DistanceAA, DisplacementAntisymmetry)
{
  Fixture f;
  DistanceTableAA_SoA<float> soa(f.lattice, f.elec_soa.size());
  soa.evaluate(f.elec_soa);
  for (int i = 0; i < f.elec_soa.size(); ++i)
    for (int j = 0; j < i; ++j) {
      EXPECT_NEAR(soa.dx_row(i)[j], -soa.dx_row(j)[i], 2e-4);
      EXPECT_NEAR(soa.dy_row(i)[j], -soa.dy_row(j)[i], 2e-4);
      EXPECT_NEAR(soa.dz_row(i)[j], -soa.dz_row(j)[i], 2e-4);
    }
}

TEST(DistanceAA, DistanceConsistentWithDisplacement)
{
  Fixture f;
  DistanceTableAA_SoA<float> soa(f.lattice, f.elec_soa.size());
  soa.evaluate(f.elec_soa);
  for (int i = 0; i < f.elec_soa.size(); ++i)
    for (int j = 0; j < f.elec_soa.size(); ++j) {
      if (i == j)
        continue;
      const double d = std::sqrt(double(soa.dx_row(i)[j]) * soa.dx_row(i)[j] +
                                 double(soa.dy_row(i)[j]) * soa.dy_row(i)[j] +
                                 double(soa.dz_row(i)[j]) * soa.dz_row(i)[j]);
      EXPECT_NEAR(soa.dist_row(i)[j], d, 1e-4);
    }
}

TEST(DistanceAA, TempAcceptEqualsRebuild)
{
  Fixture f;
  DistanceTableAA_SoA<float> soa(f.lattice, f.elec_soa.size());
  DistanceTableAA_AoS<float> aos(f.lattice, f.elec_aos.size());
  soa.evaluate(f.elec_soa);
  aos.evaluate(f.elec_aos);

  // Move electron 5 and commit.
  const int iel = 5;
  const Vec3<float> rnew{0.4f, 2.9f, 1.7f};
  soa.compute_temp(f.elec_soa, rnew, iel);
  aos.compute_temp(f.elec_aos, rnew, iel);
  soa.accept_move(iel);
  aos.accept_move(iel);
  f.elec_soa.set(iel, rnew);
  f.elec_aos[iel] = rnew;

  DistanceTableAA_SoA<float> fresh(f.lattice, f.elec_soa.size());
  fresh.evaluate(f.elec_soa);
  for (int i = 0; i < f.elec_soa.size(); ++i)
    for (int j = 0; j < f.elec_soa.size(); ++j) {
      EXPECT_NEAR(soa.dist_row(i)[j], fresh.dist_row(i)[j], 1e-4) << i << ',' << j;
      EXPECT_NEAR(aos.dist(i, j), fresh.dist_row(i)[j], 1e-4);
      EXPECT_NEAR(soa.dx_row(i)[j], fresh.dx_row(i)[j], 2e-4);
    }
}

TEST(DistanceAB, AoSMatchesBruteForce)
{
  Fixture f;
  DistanceTableAB_AoS<float> tab(f.lattice, f.ions_aos, f.elec_aos.size());
  tab.evaluate(f.elec_aos);
  for (int i = 0; i < f.elec_aos.size(); ++i)
    for (int j = 0; j < f.ions_aos.size(); ++j)
      EXPECT_NEAR(tab.dist(i, j), brute_distance(f.lattice, f.elec_aos[i], f.ions_aos[j]), 1e-4);
}

TEST(DistanceAB, SoAMatchesAoS)
{
  Fixture f;
  DistanceTableAB_AoS<float> aos(f.lattice, f.ions_aos, f.elec_aos.size());
  DistanceTableAB_SoA<float> soa(f.lattice, f.ions_soa, f.elec_soa.size());
  aos.evaluate(f.elec_aos);
  soa.evaluate(f.elec_soa);
  for (int i = 0; i < f.elec_aos.size(); ++i)
    for (int j = 0; j < f.ions_aos.size(); ++j) {
      EXPECT_NEAR(soa.dist_row(i)[j], aos.dist(i, j), 1e-4);
      EXPECT_NEAR(soa.dy_row(i)[j], aos.displ(i, j).y, 1e-4);
    }
}

TEST(DistanceAB, TempAcceptEqualsRowUpdate)
{
  Fixture f;
  DistanceTableAB_SoA<float> soa(f.lattice, f.ions_soa, f.elec_soa.size());
  soa.evaluate(f.elec_soa);
  const Vec3<float> rnew{1.0f, 1.0f, 1.0f};
  soa.compute_temp(rnew);
  soa.accept_move(3);
  DistanceTableAB_SoA<float> fresh(f.lattice, f.ions_soa, f.elec_soa.size());
  fresh.update_row(rnew, 3);
  for (int j = 0; j < f.ions_soa.size(); ++j)
    EXPECT_NEAR(soa.dist_row(3)[j], fresh.dist_row(3)[j], 1e-6);
}

TEST(DistanceSoA, HexagonalFastModeConsistentAcrossLayouts)
{
  // For the skewed graphite cell, Fast mode is an approximation — but it must
  // be the *same* approximation in both layouts so layout benchmarks compare
  // identical work.
  const auto sys = make_graphite_supercell(2, 2, 1);
  auto elec_soa = random_particles<float>(32, sys.lattice, 7);
  auto elec_aos = to_aos(elec_soa);
  DistanceTableAA_AoS<float> aos(sys.lattice, 32, MinImageMode::Fast);
  DistanceTableAA_SoA<float> soa(sys.lattice, 32, MinImageMode::Fast);
  aos.evaluate(elec_aos);
  soa.evaluate(elec_soa);
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 32; ++j)
      EXPECT_NEAR(soa.dist_row(i)[j], aos.dist(i, j), 2e-4) << i << ',' << j;
}

TEST(DistanceSoA, ExactModeMatchesBruteForceOnHexagonal)
{
  const auto sys = make_graphite_supercell(1, 1, 1);
  auto elec_soa = random_particles<float>(16, sys.lattice, 8);
  DistanceTableAA_SoA<float> soa(sys.lattice, 16, MinImageMode::Exact);
  soa.evaluate(elec_soa);
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) {
      if (i == j)
        continue;
      EXPECT_NEAR(soa.dist_row(i)[j], brute_distance(sys.lattice, elec_soa[i], elec_soa[j]), 1e-4);
    }
}

TEST(DistanceSoA, RowsAreAligned)
{
  Fixture f;
  DistanceTableAA_SoA<float> soa(f.lattice, f.elec_soa.size());
  soa.evaluate(f.elec_soa);
  EXPECT_EQ(soa.row_stride() % simd_lanes<float>, 0u);
  for (int i = 0; i < f.elec_soa.size(); ++i)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(soa.dist_row(i)) % kAlignment, 0u);
}
