// Table II: single-node run-time profile (%) of the CORAL 4x4x1 benchmark
// with everything in the baseline AoS layout — B-splines, distance tables
// and Jastrow as the three dominant kernel groups.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "qmc/miniqmc_driver.h"

int main()
{
  using namespace mqc;
  const char* env = std::getenv("MQC_BENCH_SCALE");
  const bool full = env && std::string(env) == "full";

  MiniQMCConfig cfg;
  // Quick mode shrinks the supercell/grid but keeps the kernel mix; full mode
  // is the paper's 4x4x1 graphite problem (256 electrons, 128 SPOs, 48 grid).
  cfg.supercell = full ? std::array<int, 3>{4, 4, 1} : std::array<int, 3>{3, 3, 1};
  cfg.grid_size = full ? 48 : 32;
  cfg.steps = full ? 4 : 3;
  cfg.spo = SpoLayout::AoS;
  cfg.optimized_dt_jastrow = false;

  const auto res = run_miniqmc(cfg);

  print_banner(std::cout, "Table II: baseline miniQMC profile (publicly released QMCPACK analogue)");
  std::cout << "system: graphite " << cfg.supercell[0] << 'x' << cfg.supercell[1] << 'x'
            << cfg.supercell[2] << ", " << res.num_electrons << " electrons, "
            << res.num_orbitals << " SPOs, grid " << cfg.grid_size << "^3, walkers "
            << res.num_walkers << ", acceptance " << TablePrinter::cell(res.acceptance_ratio, 2)
            << "\n\n";

  TablePrinter tp({"kernel group", "this host (%)", "paper BDW", "paper KNC", "paper KNL",
                   "paper BG/Q"});
  tp.add_row({"B-splines", TablePrinter::cell(res.profile.percent(kSectionBspline), 1), "18", "28",
              "21", "22"});
  tp.add_row({"Distance Tables", TablePrinter::cell(res.profile.percent(kSectionDistance), 1),
              "30", "23", "34", "39"});
  tp.add_row({"Jastrow", TablePrinter::cell(res.profile.percent(kSectionJastrow), 1), "13", "19",
              "19", "21"});
  tp.add_row({"Determinant (rest)", TablePrinter::cell(res.profile.percent(kSectionDeterminant), 1),
              "-", "-", "-", "-"});
  tp.print(std::cout);
  std::cout << "\nShape check: B-splines + Distance Tables + Jastrow should dominate "
               "(paper: 60-80% combined).\n";
  return 0;
}
