#include "qmc/miniqmc_driver.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/rng.h"
#include "common/threading.h"
#include "common/vec3.h"
#include "core/bspline_aos.h"
#include "core/bspline_soa.h"
#include "core/multi_bspline.h"
#include "core/synthetic_orbitals.h"
#include "core/weights.h"
#include "determinant/dirac_determinant.h"
#include "distance/distance_table.h"
#include "jastrow/one_body.h"
#include "jastrow/two_body.h"
#include "particles/graphite.h"
#include "qmc/walker.h"

namespace mqc {
namespace {

using real = float; ///< kernel precision (the paper's miniQMC is all SP)

/// Everything one walker owns.  The coefficient table and functors are
/// shared; all buffers below are thread-private (paper Fig. 3).
struct WalkerState
{
  ParticleSetAoS<real> elec_aos;
  ParticleSetSoA<real> elec_soa;
  // Distance tables in both layouts; only the configured one is used in the
  // sweep, but both exist so tests can cross-check paths cheaply.
  std::unique_ptr<DistanceTableAA_AoS<real>> ee_aos;
  std::unique_ptr<DistanceTableAB_AoS<real>> ei_aos;
  std::unique_ptr<DistanceTableAA_SoA<real>> ee_soa;
  std::unique_ptr<DistanceTableAB_SoA<real>> ei_soa;
  std::unique_ptr<WalkerAoS<real>> out_aos;
  std::unique_ptr<WalkerSoA<real>> out_soa;
  // Pseudopotential quadrature batch: one V output slice per quadrature
  // point, evaluated with a single multi-position pass over the table.  The
  // weight scratch is per-walker so the timed hot loop allocates nothing.
  aligned_vector<real> quad_v;
  std::vector<real*> quad_v_ptrs;
  std::vector<BsplineWeights3D<real>> quad_w;
  DiracDeterminant det_up, det_dn;
  Xoshiro256 rng;
  ProfileRegistry profile;
  std::size_t accepted = 0;
  std::size_t attempted = 0;
  std::size_t orbital_evals = 0;
};

/// Gaussian trial move.
Vec3<real> propose(Xoshiro256& rng, const Vec3<real>& r, double sigma)
{
  return Vec3<real>{r.x + static_cast<real>(sigma * rng.gaussian()),
                    r.y + static_cast<real>(sigma * rng.gaussian()),
                    r.z + static_cast<real>(sigma * rng.gaussian())};
}

} // namespace

MiniQMCResult run_miniqmc(const MiniQMCConfig& cfg)
{
  const CrystalSystem crystal =
      make_graphite_supercell(cfg.supercell[0], cfg.supercell[1], cfg.supercell[2]);
  const int norb = cfg.num_splines > 0 ? cfg.num_splines : crystal.num_orbitals();
  const int nel = 2 * norb;

  // Spline domain: a cube enclosing the cell.  The driver's orbitals are
  // synthetic (random coefficients), so only the access pattern matters; the
  // engines wrap positions periodically in grid coordinates.
  double lmax = 0.0;
  for (const auto& row : crystal.lattice.rows())
    lmax = std::max(lmax, std::abs(row.x) + std::abs(row.y) + std::abs(row.z));
  const auto grid = Grid3D<real>::cube(cfg.grid_size, static_cast<real>(lmax));
  auto coefs = make_random_storage<real>(grid, norb, cfg.seed);

  // Engines: only the configured layout is exercised in the sweep.
  std::unique_ptr<BsplineAoS<real>> spo_aos;
  std::unique_ptr<BsplineSoA<real>> spo_soa;
  std::unique_ptr<MultiBspline<real>> spo_aosoa;
  std::size_t out_pad = coefs->padded_splines();
  switch (cfg.spo) {
  case SpoLayout::AoS:
    spo_aos = std::make_unique<BsplineAoS<real>>(coefs);
    break;
  case SpoLayout::SoA:
    spo_soa = std::make_unique<BsplineSoA<real>>(coefs);
    break;
  case SpoLayout::AoSoA:
    spo_aosoa = std::make_unique<MultiBspline<real>>(*coefs, cfg.tile_size);
    out_pad = spo_aosoa->padded_splines();
    break;
  }

  // Shared Jastrow functors: e-e with the antiparallel cusp, e-ion smooth.
  const double rcut = std::min(crystal.lattice.wigner_seitz_radius(), 6.0);
  const auto j2_functor =
      BsplineJastrowFunctor<real>::make_exponential(real(-0.5), real(1.0), static_cast<real>(rcut));
  const auto j1_functor =
      BsplineJastrowFunctor<real>::make_exponential(real(-1.0), real(0.75), static_cast<real>(rcut));
  const TwoBodyJastrowAoS<real> j2_aos(j2_functor);
  const TwoBodyJastrowSoA<real> j2_soa(j2_functor);
  const OneBodyJastrowAoS<real> j1_aos(j1_functor);
  const OneBodyJastrowSoA<real> j1_soa(j1_functor);

  // Ion sets in both precisions/layouts.
  ParticleSetSoA<real> ions_soa(crystal.num_ions());
  for (int i = 0; i < crystal.num_ions(); ++i) {
    const auto r = crystal.ions[i];
    ions_soa.set(i, Vec3<real>{static_cast<real>(r.x), static_cast<real>(r.y),
                               static_cast<real>(r.z)});
  }
  const ParticleSetAoS<real> ions_aos = to_aos(ions_soa);

  const int nw = cfg.num_walkers > 0 ? cfg.num_walkers : max_threads();
  std::vector<WalkerState> walkers(static_cast<std::size_t>(nw));

  MiniQMCResult result;
  result.num_walkers = nw;
  result.num_electrons = nel;
  result.num_orbitals = norb;

  Stopwatch total_watch;
#pragma omp parallel num_threads(nw)
  {
    const int wid = thread_id();
    WalkerState& w = walkers[static_cast<std::size_t>(wid)];
    w.rng = Xoshiro256::for_stream(cfg.seed, static_cast<std::uint64_t>(wid));

    // ---- setup (not profiled): positions, tables, determinants ----------
    w.elec_soa = random_particles<real>(nel, crystal.lattice, cfg.seed + 1000 + wid);
    w.elec_aos = to_aos(w.elec_soa);
    // Fast minimum image for both layouts: identical approximation, so the
    // AoS/SoA comparison isolates the layout (see DESIGN.md).
    w.ee_aos = std::make_unique<DistanceTableAA_AoS<real>>(crystal.lattice, nel,
                                                           MinImageMode::Fast);
    w.ei_aos = std::make_unique<DistanceTableAB_AoS<real>>(crystal.lattice, ions_aos, nel,
                                                           MinImageMode::Fast);
    w.ee_soa = std::make_unique<DistanceTableAA_SoA<real>>(crystal.lattice, nel,
                                                           MinImageMode::Fast);
    w.ei_soa = std::make_unique<DistanceTableAB_SoA<real>>(crystal.lattice, ions_soa, nel,
                                                           MinImageMode::Fast);
    if (cfg.optimized_dt_jastrow) {
      w.ee_soa->evaluate(w.elec_soa);
      w.ei_soa->evaluate(w.elec_soa);
    } else {
      w.ee_aos->evaluate(w.elec_aos);
      w.ei_aos->evaluate(w.elec_aos);
    }
    w.out_aos = std::make_unique<WalkerAoS<real>>(out_pad);
    w.out_soa = std::make_unique<WalkerSoA<real>>(out_pad);
    const int nq = std::max(1, cfg.quadrature_points);
    w.quad_v.resize(static_cast<std::size_t>(nq) * out_pad);
    w.quad_v_ptrs.resize(static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q)
      w.quad_v_ptrs[static_cast<std::size_t>(q)] = w.quad_v.data() + static_cast<std::size_t>(q) * out_pad;
    w.quad_w.resize(static_cast<std::size_t>(nq));

    auto eval_v = [&](const Vec3<real>& r) -> const real* {
      w.orbital_evals += static_cast<std::size_t>(norb);
      switch (cfg.spo) {
      case SpoLayout::AoS:
        spo_aos->evaluate_v(r.x, r.y, r.z, w.out_aos->v.data());
        return w.out_aos->v.data();
      case SpoLayout::SoA:
        spo_soa->evaluate_v(r.x, r.y, r.z, w.out_soa->v.data());
        return w.out_soa->v.data();
      default:
        spo_aosoa->evaluate_v(r.x, r.y, r.z, w.out_soa->v.data());
        return w.out_soa->v.data();
      }
    };
    auto eval_vgh = [&](const Vec3<real>& r) -> const real* {
      w.orbital_evals += static_cast<std::size_t>(norb);
      switch (cfg.spo) {
      case SpoLayout::AoS:
        spo_aos->evaluate_vgh(r.x, r.y, r.z, w.out_aos->v.data(), w.out_aos->g.data(),
                              w.out_aos->h.data());
        return w.out_aos->v.data();
      case SpoLayout::SoA:
        spo_soa->evaluate_vgh(r.x, r.y, r.z, w.out_soa->v.data(), w.out_soa->g.data(),
                              w.out_soa->h.data(), w.out_soa->stride);
        return w.out_soa->v.data();
      default:
        spo_aosoa->evaluate_vgh(r.x, r.y, r.z, w.out_soa->v.data(), w.out_soa->g.data(),
                                w.out_soa->h.data(), w.out_soa->stride);
        return w.out_soa->v.data();
      }
    };
    // Multi-position V batch over the quadrature points of one electron: the
    // SoA/AoSoA engines precompute all weight sets (into the walker's
    // preallocated scratch) and sweep each tile's coefficient slice once for
    // the whole batch; the AoS baseline has no batched path and falls back
    // to per-point calls.
    auto eval_v_batch = [&](const Vec3<real>* r, int count) {
      w.orbital_evals += static_cast<std::size_t>(count) * static_cast<std::size_t>(norb);
      switch (cfg.spo) {
      case SpoLayout::AoS:
        for (int q = 0; q < count; ++q)
          spo_aos->evaluate_v(r[q].x, r[q].y, r[q].z, w.quad_v_ptrs[static_cast<std::size_t>(q)]);
        break;
      case SpoLayout::SoA:
        compute_weights_v_batch(coefs->grid(), r, count, w.quad_w.data());
        spo_soa->evaluate_v_multi(w.quad_w.data(), count, w.quad_v_ptrs.data());
        break;
      default:
        compute_weights_v_batch(coefs->grid(), r, count, w.quad_w.data());
        for (int t = 0; t < spo_aosoa->num_tiles(); ++t)
          spo_aosoa->evaluate_v_tile_multi(t, w.quad_w.data(), count, w.quad_v_ptrs.data());
        break;
      }
    };
    auto eval_vgl = [&](const Vec3<real>& r) {
      w.orbital_evals += static_cast<std::size_t>(norb);
      switch (cfg.spo) {
      case SpoLayout::AoS:
        spo_aos->evaluate_vgl(r.x, r.y, r.z, w.out_aos->v.data(), w.out_aos->g.data(),
                              w.out_aos->l.data());
        break;
      case SpoLayout::SoA:
        spo_soa->evaluate_vgl(r.x, r.y, r.z, w.out_soa->v.data(), w.out_soa->g.data(),
                              w.out_soa->l.data(), w.out_soa->stride);
        break;
      default:
        spo_aosoa->evaluate_vgl(r.x, r.y, r.z, w.out_soa->v.data(), w.out_soa->g.data(),
                                w.out_soa->l.data(), w.out_soa->stride);
        break;
      }
    };

    // Determinants from the initial configuration (double precision).
    {
      Matrix<double> a_up(norb), a_dn(norb);
      std::vector<double> u(static_cast<std::size_t>(norb));
      for (int e = 0; e < norb; ++e) {
        const real* v = eval_v(w.elec_soa[e]);
        for (int n = 0; n < norb; ++n)
          a_up(n, e) = static_cast<double>(v[n]) + (n == e ? 1.0 : 0.0); // diagonal boost
      }
      for (int e = 0; e < norb; ++e) {
        const real* v = eval_v(w.elec_soa[norb + e]);
        for (int n = 0; n < norb; ++n)
          a_dn(n, e) = static_cast<double>(v[n]) + (n == e ? 1.0 : 0.0);
      }
      // The diagonal boost keeps the synthetic (random-coefficient) orbital
      // matrices well conditioned; production orbitals are near-orthogonal
      // at distinct electron positions, which this emulates.
      w.det_up.build(a_up);
      w.det_dn.build(a_dn);
    }
    w.orbital_evals = 0; // setup evaluations excluded from throughput

    std::vector<double> phi(static_cast<std::size_t>(norb));

#pragma omp barrier
    // ---- the profiled Monte Carlo sweep ---------------------------------
    for (int step = 0; step < cfg.steps; ++step) {
      // Drift-diffusion phase: particle-by-particle moves.
      for (int e = 0; e < nel; ++e) {
        ++w.attempted;
        const Vec3<real> r_old = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
        const Vec3<real> r_new = propose(w.rng, r_old, cfg.move_sigma);

        double log_jr = 0.0;
        {
          ScopedTimer t(w.profile, kSectionDistance);
          if (cfg.optimized_dt_jastrow) {
            w.ee_soa->compute_temp(w.elec_soa, r_new, e);
            w.ei_soa->compute_temp(r_new);
          } else {
            w.ee_aos->compute_temp(w.elec_aos, r_new, e);
            w.ei_aos->compute_temp(r_new);
          }
        }
        {
          ScopedTimer t(w.profile, kSectionJastrow);
          if (cfg.optimized_dt_jastrow)
            log_jr = j2_soa.ratio_log(*w.ee_soa, e) + j1_soa.ratio_log(*w.ei_soa, e);
          else
            log_jr = j2_aos.ratio_log(*w.ee_aos, e) + j1_aos.ratio_log(*w.ei_aos, e);
        }

        const real* v;
        {
          ScopedTimer t(w.profile, kSectionBspline);
          v = eval_vgh(r_new); // VGH drives the drift-diffusion phase (paper §IV)
        }

        double det_ratio;
        DiracDeterminant& det = e < norb ? w.det_up : w.det_dn;
        const int col = e < norb ? e : e - norb;
        {
          ScopedTimer t(w.profile, kSectionDeterminant);
          for (int n = 0; n < norb; ++n)
            phi[static_cast<std::size_t>(n)] = static_cast<double>(v[n]) + (n == col ? 1.0 : 0.0);
          det_ratio = det.ratio(phi.data(), col);
        }

        const double p = std::exp(2.0 * log_jr) * det_ratio * det_ratio;
        if (w.rng.uniform() < p) {
          ++w.accepted;
          {
            ScopedTimer t(w.profile, kSectionDistance);
            if (cfg.optimized_dt_jastrow) {
              w.ee_soa->accept_move(e);
              w.ei_soa->accept_move(e);
            } else {
              w.ee_aos->accept_move(e);
              w.ei_aos->accept_move(e);
            }
          }
          {
            ScopedTimer t(w.profile, kSectionDeterminant);
            det.accept_move(phi.data(), col);
          }
          w.elec_soa.set(e, r_new);
          w.elec_aos[e] = r_new;
        }
      }

      // Measurement phase: kinetic energy (VGL) and a pseudopotential-like
      // quadrature (V at displaced points + one-body Jastrow ratio each).
      // The quadrature V evaluations of one electron form a position batch:
      // propose all points first (same rng stream as per-point evaluation,
      // since neither distance tables nor kernels consume randomness), run
      // the per-point distance/Jastrow ratios, then one multi-position V.
      std::vector<Vec3<real>> grad(static_cast<std::size_t>(nel));
      std::vector<real> lap(static_cast<std::size_t>(nel));
      std::vector<Vec3<real>> rq(static_cast<std::size_t>(std::max(1, cfg.quadrature_points)));
      for (int e = 0; e < nel; ++e) {
        const Vec3<real> re = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
        {
          ScopedTimer t(w.profile, kSectionBspline);
          eval_vgl(re);
        }
        for (int q = 0; q < cfg.quadrature_points; ++q)
          rq[static_cast<std::size_t>(q)] = propose(w.rng, re, 0.5);
        for (int q = 0; q < cfg.quadrature_points; ++q) {
          {
            ScopedTimer t(w.profile, kSectionDistance);
            if (cfg.optimized_dt_jastrow)
              w.ei_soa->compute_temp(rq[static_cast<std::size_t>(q)]);
            else
              w.ei_aos->compute_temp(rq[static_cast<std::size_t>(q)]);
          }
          {
            ScopedTimer t(w.profile, kSectionJastrow);
            if (cfg.optimized_dt_jastrow)
              (void)j1_soa.ratio_log(*w.ei_soa, e);
            else
              (void)j1_aos.ratio_log(*w.ei_aos, e);
          }
        }
        if (cfg.quadrature_points > 0) {
          ScopedTimer t(w.profile, kSectionBspline);
          eval_v_batch(rq.data(), cfg.quadrature_points);
        }
      }
      {
        // Full Jastrow gradients/Laplacians once per step (local energy).
        ScopedTimer t(w.profile, kSectionJastrow);
        if (cfg.optimized_dt_jastrow) {
          (void)j2_soa.evaluate_log(*w.ee_soa, grad.data(), lap.data());
          (void)j1_soa.evaluate_log(*w.ei_soa, grad.data(), lap.data());
        } else {
          (void)j2_aos.evaluate_log(*w.ee_aos, grad.data(), lap.data());
          (void)j1_aos.evaluate_log(*w.ei_aos, grad.data(), lap.data());
        }
      }
    }
  }
  result.seconds = total_watch.elapsed();

  std::size_t attempted = 0, accepted = 0;
  for (auto& w : walkers) {
    result.profile.merge(w.profile);
    attempted += w.attempted;
    accepted += w.accepted;
    result.spline_orbital_evals += w.orbital_evals;
  }
  result.moves_attempted = attempted;
  result.acceptance_ratio =
      attempted > 0 ? static_cast<double>(accepted) / static_cast<double>(attempted) : 0.0;
  return result;
}

} // namespace mqc
