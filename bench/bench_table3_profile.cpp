// Table III: the same profile after the distance tables and Jastrow kernels
// are optimized (SoA) while B-splines stay in the baseline layout — the
// motivation for this paper: B-splines become the dominant cost (>55%).
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "qmc/miniqmc_driver.h"

int main()
{
  using namespace mqc;
  const char* env = std::getenv("MQC_BENCH_SCALE");
  const bool full = env && std::string(env) == "full";

  MiniQMCConfig cfg;
  cfg.supercell = full ? std::array<int, 3>{4, 4, 1} : std::array<int, 3>{3, 3, 1};
  cfg.grid_size = full ? 48 : 32;
  cfg.steps = full ? 4 : 3;
  cfg.spo = SpoLayout::AoS; // B-splines deliberately NOT optimized here
  cfg.optimized_dt_jastrow = true;

  const auto res = run_miniqmc(cfg);

  print_banner(std::cout,
               "Table III: miniQMC profile with optimized Distance-Tables and Jastrow");
  std::cout << "system: graphite " << cfg.supercell[0] << 'x' << cfg.supercell[1] << 'x'
            << cfg.supercell[2] << ", " << res.num_electrons << " electrons, "
            << res.num_orbitals << " SPOs, grid " << cfg.grid_size << "^3\n\n";

  TablePrinter tp({"kernel group", "this host (%)", "paper KNL", "paper Xeon E5-2698v4"});
  tp.add_row({"B-splines", TablePrinter::cell(res.profile.percent(kSectionBspline), 1), "68.5",
              "55.3"});
  tp.add_row({"Distance Tables", TablePrinter::cell(res.profile.percent(kSectionDistance), 1),
              "20.3", "22.6"});
  tp.add_row({"Jastrow", TablePrinter::cell(res.profile.percent(kSectionJastrow), 1), "11.2",
              "22.1"});
  tp.add_row({"Determinant (rest)",
              TablePrinter::cell(res.profile.percent(kSectionDeterminant), 1), "-", "-"});
  tp.print(std::cout);
  std::cout << "\nShape check: the B-spline share must GROW versus Table II, becoming the "
               "top kernel group.\n";
  return 0;
}
