#include "bench_common.h"

#include <cstring>
#include <fstream>
#include <functional>

namespace mqc::bench {
namespace {

/// Per-walker kernel closure: evaluates all `ns` positions once.
using EvalBatch = std::function<void()>;

/// Build the per-walker batch evaluator for a layout/kernel pair.  Buffers
/// and positions are owned by the returned closure (thread-private).
EvalBatch make_batch(Layout layout, Kernel kernel, const CoefStorage<float>& full,
                     const std::shared_ptr<const CoefStorage<float>>& shared,
                     const std::shared_ptr<MultiBspline<float>>& aosoa, int ns,
                     std::uint64_t seed)
{
  const auto pos = std::make_shared<Positions<float>>(
      random_eval_positions(full.grid(), ns, seed));
  switch (layout) {
  case Layout::AoS: {
    auto engine = std::make_shared<BsplineAoS<float>>(shared);
    auto w = std::make_shared<WalkerAoS<float>>(engine->padded_splines());
    return [engine, w, pos, ns, kernel] {
      for (int s = 0; s < ns; ++s) {
        const auto u = static_cast<std::size_t>(s);
        switch (kernel) {
        case Kernel::V:
          engine->evaluate_v(pos->x[u], pos->y[u], pos->z[u], w->v.data());
          break;
        case Kernel::VGL:
          engine->evaluate_vgl(pos->x[u], pos->y[u], pos->z[u], w->v.data(), w->g.data(),
                               w->l.data());
          break;
        case Kernel::VGH:
          engine->evaluate_vgh(pos->x[u], pos->y[u], pos->z[u], w->v.data(), w->g.data(),
                               w->h.data());
          break;
        }
      }
    };
  }
  case Layout::SoA:
  case Layout::SoANoZUnroll: {
    auto engine = std::make_shared<BsplineSoA<float>>(shared);
    auto w = std::make_shared<WalkerSoA<float>>(engine->out_stride());
    const bool no_unroll = layout == Layout::SoANoZUnroll;
    return [engine, w, pos, ns, kernel, no_unroll] {
      for (int s = 0; s < ns; ++s) {
        const auto u = static_cast<std::size_t>(s);
        switch (kernel) {
        case Kernel::V:
          engine->evaluate_v(pos->x[u], pos->y[u], pos->z[u], w->v.data());
          break;
        case Kernel::VGL:
          engine->evaluate_vgl(pos->x[u], pos->y[u], pos->z[u], w->v.data(), w->g.data(),
                               w->l.data(), w->stride);
          break;
        case Kernel::VGH:
          if (no_unroll)
            engine->evaluate_vgh_no_zunroll(pos->x[u], pos->y[u], pos->z[u], w->v.data(),
                                            w->g.data(), w->h.data(), w->stride);
          else
            engine->evaluate_vgh(pos->x[u], pos->y[u], pos->z[u], w->v.data(), w->g.data(),
                                 w->h.data(), w->stride);
          break;
        }
      }
    };
  }
  case Layout::AoSoA: {
    auto w = std::make_shared<WalkerSoA<float>>(aosoa->out_stride());
    return [aosoa, w, pos, ns, kernel] {
      for (int s = 0; s < ns; ++s) {
        const auto u = static_cast<std::size_t>(s);
        switch (kernel) {
        case Kernel::V:
          aosoa->evaluate_v(pos->x[u], pos->y[u], pos->z[u], w->v.data());
          break;
        case Kernel::VGL:
          aosoa->evaluate_vgl(pos->x[u], pos->y[u], pos->z[u], w->v.data(), w->g.data(),
                              w->l.data(), w->stride);
          break;
        case Kernel::VGH:
          aosoa->evaluate_vgh(pos->x[u], pos->y[u], pos->z[u], w->v.data(), w->g.data(),
                              w->h.data(), w->stride);
          break;
        }
      }
    };
  }
  }
  return [] {};
}

} // namespace

double measure_throughput(Layout layout, Kernel kernel, const CoefStorage<float>& full, int tile,
                          int ns, double min_seconds, std::uint64_t seed)
{
  const int nw = max_threads();
  // Reconstructing a shared_ptr copy of `full` would double memory; instead
  // alias it with a no-op deleter (the caller keeps `full` alive).
  std::shared_ptr<const CoefStorage<float>> alias(&full, [](const CoefStorage<float>*) {});
  std::shared_ptr<MultiBspline<float>> aosoa;
  if (layout == Layout::AoSoA)
    aosoa = std::make_shared<MultiBspline<float>>(full, tile);

  // Calibrate the repetition count on one walker.
  auto calib = make_batch(layout, kernel, full, alias, aosoa, ns, seed);
  calib(); // warm up
  Stopwatch cw;
  calib();
  const double t_batch = std::max(cw.elapsed(), 1e-6);
  const int reps = std::max(1, static_cast<int>(min_seconds / t_batch) + 1);

  // Best of three attempts: shared/virtualized hosts show large run-to-run
  // noise (CPU steal, frequency drift); the maximum is the machine's honest
  // capability, as in STREAM methodology.
  double best = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    Stopwatch watch;
#pragma omp parallel num_threads(nw)
    {
      auto batch = make_batch(layout, kernel, full, alias, aosoa, ns,
                              seed + static_cast<std::uint64_t>(thread_id()));
      for (int r = 0; r < reps; ++r)
        batch();
    }
    const double seconds = watch.elapsed();
    const double evals = static_cast<double>(nw) * reps * ns * full.num_splines();
    best = std::max(best, evals / seconds);
  }
  return best;
}

double measure_seconds_per_eval(Layout layout, Kernel kernel, const CoefStorage<float>& full,
                                int tile, int ns, double min_seconds, std::uint64_t seed)
{
  std::shared_ptr<const CoefStorage<float>> alias(&full, [](const CoefStorage<float>*) {});
  std::shared_ptr<MultiBspline<float>> aosoa;
  if (layout == Layout::AoSoA)
    aosoa = std::make_shared<MultiBspline<float>>(full, tile);
  auto batch = make_batch(layout, kernel, full, alias, aosoa, ns, seed);
  const double t = time_per_iteration(batch, min_seconds, 2);
  return t / ns;
}

// ---------------------------------------------------------------------------
// JsonReporter
// ---------------------------------------------------------------------------

namespace {

/// Minimal JSON string escape (names/units are plain ASCII identifiers).
std::string json_escape(const std::string& s)
{
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\')
      out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

} // namespace

JsonReporter JsonReporter::from_args(int argc, char** argv, const std::string& bench_name)
{
  JsonReporter r;
  r.bench_ = bench_name;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      r.path_ = argv[i + 1];
      break;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      r.path_ = arg + 7;
      break;
    }
  }
  return r;
}

void JsonReporter::add(const std::string& name, double value, const std::string& unit)
{
  rows_.push_back({name, value, unit});
}

bool JsonReporter::write() const
{
  if (path_.empty())
    return true;
  std::ofstream out(path_);
  if (!out)
    return false;
  out << "{\"bench\": \"" << json_escape(bench_) << "\", \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0)
      out << ", ";
    out << "{\"name\": \"" << json_escape(rows_[i].name) << "\", \"value\": " << rows_[i].value
        << ", \"unit\": \"" << json_escape(rows_[i].unit) << "\"}";
  }
  out << "]}\n";
  return static_cast<bool>(out);
}

} // namespace mqc::bench
