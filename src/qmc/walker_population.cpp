// WalkerPopulation implementation: shard construction with first-touch
// replica placement, the resident epoch-chunked crowd sweep, and population
// persistence over the PR 7 checkpoint format.  See walker_population.h for
// the design contract and crowd_sweep.h for the sweep kernel.
#include "qmc/walker_population.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "qmc/crowd_sweep.h"

namespace mqc {

using detail::CheckpointRuntime;
using detail::CrowdScratch;
using detail::MiniQMCSystem;
using detail::WalkerState;
using detail::qmc_real;

struct WalkerPopulation::Impl
{
  /// One lock-step crowd: a contiguous walker range inside one shard.
  struct CrowdRef
  {
    int shard = 0;
    int first = 0;
    int count = 0;
  };

  MiniQMCConfig cfg;  ///< population config (qmc knobs; steps/driver unused)
  int num_shards = 1;
  int crowd_size = 0; ///< resolved per-shard crowd size cap
  int step = 0;       ///< the population's Monte Carlo cursor

  CoefReplicaSet<qmc_real> replicas;
  std::vector<std::unique_ptr<MiniQMCSystem>> shard_sys; ///< [num_shards]
  std::vector<Range> shard_walkers;                      ///< walker ids per shard

  /// ONE flat walker vector indexed by global walker id: checkpoint
  /// serialization stays exactly the drivers' (one Walker section per id),
  /// so population snapshots and run_miniqmc snapshots interoperate and the
  /// shard decomposition never leaks into the on-disk format.
  std::vector<WalkerState> walkers;

  std::vector<CrowdRef> crowds;
  std::vector<std::unique_ptr<CrowdScratch>> scratch;  ///< per crowd
  std::vector<ProfileRegistry> crowd_profiles;         ///< per crowd
  TeamHandle inner = TeamHandle::serial();
  ThreadPartition part;

  CheckpointRuntime ckrt;
  /// Provenance + cumulative counters surfaced through result(): resume
  /// fields are written once at construction, checkpoints_written
  /// accumulates across run_to_step calls.
  MiniQMCResult status;
};

WalkerPopulation::WalkerPopulation(const PopulationConfig& pcfg) : impl_(std::make_unique<Impl>())
{
  Impl& im = *impl_;
  im.cfg = pcfg.qmc;

  // ---- shard 0: the master system (generates the coefficient table) ------
  im.shard_sys.push_back(std::make_unique<MiniQMCSystem>(im.cfg));
  MiniQMCSystem& sys0 = *im.shard_sys.front();
  const int nw = sys0.nw;
  im.num_shards = std::min(resolve_shard_count(pcfg.num_shards), nw);
  im.shard_sys.resize(static_cast<std::size_t>(im.num_shards));
  im.replicas = CoefReplicaSet<qmc_real>(sys0.coefs, im.num_shards);

  // ---- shards 1..n-1: first-touch replicas + shard-local systems ---------
  // One team member per shard copies the table and builds the shard's
  // engines ON ITS OWN THREAD — under first-touch placement the replica's
  // pages land on that thread's socket, and the shard's OrbitalSet facade
  // (built over the replica inside MiniQMCSystem) resolves every evaluation
  // through it.  Identical table values make this bit-for-bit neutral.
  team_for(TeamHandle::of(im.num_shards), im.num_shards, [&](int s) {
    if (s > 0)
      im.shard_sys[static_cast<std::size_t>(s)] =
          std::make_unique<MiniQMCSystem>(im.cfg, im.replicas.replicate(s));
  });
  // Memory-footprint provenance (opt-in, stderr like the checkpoint
  // diagnostics): the coefficient table is the dominant resident allocation,
  // and the replica bytes are what the precision path halves — surface them
  // per shard so a mixed-vs-native footprint claim is checkable from a run
  // log instead of a heap profiler.
  if (std::getenv("MQC_VERBOSE") != nullptr) {
    for (int s = 0; s < im.num_shards; ++s)
      std::fprintf(stderr, "miniqmc: shard %d coef replica: %zu bytes\n", s,
                   im.replicas.replica_bytes(s));
    std::fprintf(stderr, "miniqmc: coef replicas total: %zu bytes across %d shard(s)\n",
                 im.replicas.total_replica_bytes(), im.num_shards);
  }

  // ---- walker -> shard -> crowd decomposition ----------------------------
  im.shard_walkers.resize(static_cast<std::size_t>(im.num_shards));
  int requested = im.cfg.crowd_size;
  if (requested < 0)
    requested = sys0.tuned_crowd_size;
  im.crowd_size = requested;
  for (int s = 0; s < im.num_shards; ++s) {
    const Range r = block_range(static_cast<std::size_t>(nw),
                                static_cast<std::size_t>(im.num_shards),
                                static_cast<std::size_t>(s));
    im.shard_walkers[static_cast<std::size_t>(s)] = r;
    const int shard_nw = static_cast<int>(r.size());
    const int csize = requested > 0 ? std::min(requested, shard_nw) : shard_nw;
    for (int first = static_cast<int>(r.first); first < static_cast<int>(r.last); first += csize)
      im.crowds.push_back(
          {s, first, std::min(static_cast<int>(r.last) - first, csize)});
  }
  const int num_crowds = static_cast<int>(im.crowds.size());

  im.part = detail::resolve_team_partition(im.cfg, sys0, num_crowds);
  im.inner = TeamHandle::inner_of(im.part);

  im.walkers.resize(static_cast<std::size_t>(nw));
  im.scratch.resize(static_cast<std::size_t>(num_crowds));
  im.crowd_profiles.resize(static_cast<std::size_t>(num_crowds));

  im.status.num_walkers = nw;
  im.status.num_electrons = sys0.nel;
  im.status.num_orbitals = sys0.norb;
  im.status.crowd_size_used = requested > 0 ? std::min(requested, nw) : nw;
  im.status.spline_path = sys0.spo.capabilities().native_multi_eval ? EvalPath::MultiPosition
                                                                    : EvalPath::SinglePosition;
  im.status.precision_path = sys0.precision;
  im.status.team_path = classify_team_path(im.part.outer, im.part.inner);
  im.status.outer_threads_used = im.part.outer;
  im.status.inner_threads_used = im.part.inner;

  // ---- walker init: one crowd per team member, on its shard's system -----
  // Same region shape as every later epoch (a team_for over crowd ids), so
  // the region-bound walker teams stay contract-valid, and the static
  // schedule keeps the crowd->thread map stable for scratch first-touch.
  // Walker state is a function of (config, walker id) only — the shard
  // system passed here only changes WHERE the orbital table is read from.
  team_for(TeamHandle::of(num_crowds), num_crowds, [&](int ci) {
    const Impl::CrowdRef& c = im.crowds[static_cast<std::size_t>(ci)];
    MiniQMCSystem& ssys = *im.shard_sys[static_cast<std::size_t>(c.shard)];
    for (int wid = c.first; wid < c.first + c.count; ++wid) {
      detail::init_walker(im.walkers[static_cast<std::size_t>(wid)], ssys, im.cfg, wid);
      im.walkers[static_cast<std::size_t>(wid)].set_team(im.inner.bound_to_current_region());
    }
    im.scratch[static_cast<std::size_t>(ci)] =
        std::make_unique<CrowdScratch>(im.walkers, c.first, c.count, ssys);
  });

  // ---- resume (outside any team region) ----------------------------------
  // The config hash and the Walker sections are shard-free, so a snapshot
  // written under any shard count (or by run_miniqmc itself) restores here.
  im.ckrt = detail::make_checkpoint_runtime(im.cfg, sys0);
  im.step = detail::resume_from_checkpoint(im.ckrt, im.cfg, sys0, im.walkers, im.status);
}

WalkerPopulation::~WalkerPopulation() = default;

int WalkerPopulation::num_shards() const noexcept { return impl_->num_shards; }

int WalkerPopulation::num_walkers() const noexcept
{
  return static_cast<int>(impl_->walkers.size());
}

int WalkerPopulation::current_step() const noexcept { return impl_->step; }

void WalkerPopulation::run_to_step(int target_step)
{
  Impl& im = *impl_;
  MiniQMCSystem& sys0 = *im.shard_sys.front();
  const int num_crowds = static_cast<int>(im.crowds.size());

  Stopwatch watch;
  const int entry_step = im.step;
  while (im.step < target_step) {
    const int boundary = detail::next_epoch_boundary(im.ckrt, im.step, target_step);
    team_for(TeamHandle::of(num_crowds), num_crowds, [&](int ci) {
      const Impl::CrowdRef& c = im.crowds[static_cast<std::size_t>(ci)];
      detail::crowd_sweep_steps(*im.shard_sys[static_cast<std::size_t>(c.shard)], im.cfg,
                                im.walkers, c.first, c.count,
                                *im.scratch[static_cast<std::size_t>(ci)],
                                im.crowd_profiles[static_cast<std::size_t>(ci)], im.inner,
                                im.step, boundary);
    });
    im.step = boundary;
    detail::checkpoint_step_boundary(im.ckrt, im.cfg, sys0, im.walkers, im.step, target_step,
                                     im.status);
  }
  // Same end-of-run guarantee as the drivers: a call that swept nothing
  // (already at/past the target) still leaves a snapshot when a checkpoint
  // path is set, so the resident state on disk always matches the cursor.
  if (entry_step >= target_step)
    detail::checkpoint_step_boundary(im.ckrt, im.cfg, sys0, im.walkers, im.step, im.step,
                                     im.status);
  im.status.seconds += watch.elapsed();
}

void WalkerPopulation::run_steps(int steps) { run_to_step(impl_->step + steps); }

MiniQMCResult WalkerPopulation::result()
{
  Impl& im = *impl_;
  // Rebuild the aggregate from scratch on every call (walker profiles and
  // counters are cumulative, so reducing into a fresh copy of the
  // provenance-carrying status is idempotent).
  MiniQMCResult r = im.status;
  detail::reduce_result(r, im.walkers);
  for (const auto& p : im.crowd_profiles)
    r.profile.merge(p);
  return r;
}

detail::MiniQMCSystem& WalkerPopulation::shard_system_internal(int shard) const
{
  assert(shard >= 0 && shard < impl_->num_shards);
  return *impl_->shard_sys[static_cast<std::size_t>(shard)];
}

const MiniQMCConfig& WalkerPopulation::config_internal() const noexcept { return impl_->cfg; }

} // namespace mqc
