// Thread-team subsystem: topology-aware nested parallelism (paper §V-C).
//
// The paper's biggest many-core win ("Opt C") is *nested* parallelism — an
// outer team over walkers/crowds with inner teams sweeping spline tiles ×
// position blocks.  This header is the one place that decides how the
// machine is split:
//
//   MachineTopology   what the host looks like (sockets × cores × SMT),
//                     detected from sysfs, overridable via MQC_TOPOLOGY;
//   ThreadPartition   the outer × inner split of the machine for a given
//                     number of outer work items (crowds/walkers),
//                     topology-aware so an inner team never straddles a
//                     socket, overridable via MQC_PARTITION /
//                     MQC_INNER_THREADS or config knobs;
//   TeamHandle        the capability passed DOWN call chains ("you may use
//                     this many threads") so no layer blindly calls
//                     omp_get_max_threads() again inside someone else's
//                     parallel region;
//   TeamPath          the schedule a driver actually ran (flat / inner team
//                     serialized / inner team forked), surfaced in results
//                     the way EvalPath is — an explicit decision, never a
//                     silent fallback.
//
// The original flat-region arithmetic (team_coordinates, block/strided
// partitions) is kept below: the nested driver still uses the paper's
// explicit flat Nw×nth decomposition, now derived from a ThreadPartition.
//
// Every split is trajectory-neutral by construction: teams only distribute
// independent (tile, position-block) work items or disjoint column blocks,
// so results are bit-for-bit identical for every partition shape — the
// invariant tests/test_crowd.cpp enforces.
#ifndef MQC_COMMON_THREADING_H
#define MQC_COMMON_THREADING_H

#include <algorithm>
#include <cstddef>

#include "common/contracts.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mqc {

inline int max_threads() noexcept
{
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline int thread_id() noexcept
{
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

inline int num_threads_in_region() noexcept
{
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

/// Nesting depth of enclosing parallel regions (active or not); 0 outside
/// any region.  Used to key per-level scratch (OrbitalResource) so an outer
/// call's live resource can never alias a nested call's.
inline int nest_level() noexcept
{
#ifdef _OPENMP
  return omp_get_level();
#else
  return 0;
#endif
}

/// Would a parallel region opened *inside an active region* actually fork?
/// The OpenMP runtime serializes nested regions unless max-active-levels
/// allows a second active level.  (A region opened at the top level, or
/// under an inactive one-thread region, always forks.)
inline bool nesting_enabled() noexcept
{
#ifdef _OPENMP
  return omp_get_max_active_levels() > 1;
#else
  return false;
#endif
}

/// Ask the runtime to allow @p levels active nesting levels — unless the
/// user pinned the limit via OMP_MAX_ACTIVE_LEVELS / OMP_NESTED, which this
/// respects (the env var is the operator's override of our default, so we
/// never fight it).  Call before opening an outer region whose members will
/// fork inner teams.
void request_nested_levels(int levels);

// ---------------------------------------------------------------------------
// Env-knob parsing
// ---------------------------------------------------------------------------

/// Strict parse of one env knob's value (MQC_TOPOLOGY / MQC_PARTITION /
/// MQC_INNER_THREADS).  Robustness surface: a malformed value must never
/// yield a bogus partition or half-parsed shape — it is rejected whole, the
/// caller emits a one-line warning, and the auto fallback runs instead.
struct EnvKnob
{
  bool present = false; ///< the env var was set (even to garbage)
  bool valid = false;   ///< the value had exactly the expected shape
  int count = 0;        ///< fields parsed (only when valid)
  int values[3] = {0, 0, 0};
};

/// Parse @p text (null = absent) as @p min_count..@p max_count positive
/// integers separated by 'x', ':' or ',' (e.g. "2x8x2").  Strict: empty
/// values, zero/negative/oversized fields, wrong field counts, and ANY
/// trailing garbage all yield present-but-invalid.  Pure function of the
/// string — unit-testable without touching the environment.
EnvKnob parse_env_knob(const char* text, int min_count, int max_count);

// ---------------------------------------------------------------------------
// Machine topology
// ---------------------------------------------------------------------------

/// Socket/core/SMT shape of the host.  `logical_cpus` is always >= 1; the
/// finer fields fall back to a flat 1 × logical_cpus × 1 shape when the
/// platform exposes nothing (non-Linux, restricted /sys).
struct MachineTopology
{
  int logical_cpus = 1;
  int sockets = 1;
  int cores_per_socket = 1;
  int smt = 1;          ///< hardware threads per core
  bool detected = false; ///< true when read from the platform (not a fallback)

  [[nodiscard]] constexpr int threads_per_socket() const noexcept
  {
    return cores_per_socket * smt;
  }
};

/// Detect the host topology.  Sources, in priority order:
///   1. MQC_TOPOLOGY=SxCxT (sockets x cores-per-socket x smt) — forced shape
///      for tests and for cluster launchers that know better;
///   2. Linux sysfs (/sys/devices/system/cpu/cpu*/topology);
///   3. fallback: 1 socket x omp_get_max_threads() cores x 1.
/// The result is computed once per process and cached.
const MachineTopology& machine_topology();

/// Uncached detection (exposed for tests; honours the same env override).
MachineTopology query_machine_topology();

// ---------------------------------------------------------------------------
// Thread partition and team handles
// ---------------------------------------------------------------------------

/// The outer × inner split of the machine: `outer` team members (one per
/// crowd / walker / work shard), each owning an inner team of `inner`
/// threads for tile × position-block sweeps.
struct ThreadPartition
{
  int outer = 1; ///< outer team size (crowds / walkers advanced concurrently)
  int inner = 1; ///< threads per outer member (tiles × position blocks)

  [[nodiscard]] constexpr int total() const noexcept { return outer * inner; }

  /// Split the machine for @p outer_work outer work items.
  ///
  /// `requested_inner` > 0 pins the inner team size; 0 means auto:
  ///   inner0 = max(1, total_threads / outer_work), then shrunk to the
  ///   largest divisor of the topology's threads-per-socket not exceeding
  ///   inner0, so an inner team always fits inside one socket (the mctop
  ///   lesson: cross-socket teams share nothing but the memory bus).
  /// Env overrides (checked only in auto mode, priority order):
  ///   MQC_PARTITION=OxI   forces the whole partition (outer clamped to
  ///                       outer_work is NOT applied — you asked for it);
  ///   MQC_INNER_THREADS=I forces the inner size only.
  /// `total_threads` <= 0 means omp_get_max_threads().
  static ThreadPartition resolve(int outer_work, int requested_inner = 0,
                                 int total_threads = 0);

  /// resolve() against an explicit topology (unit-testable, no env, no omp).
  static ThreadPartition resolve_for(int outer_work, int requested_inner, int total_threads,
                                     const MachineTopology& topo);
};

/// Number of resident-population shards to run on this host.  A shard is the
/// NUMA replication unit (qmc/walker_population.h): each shard owns a
/// socket-local first-touch copy of the read-only coefficient tables, so the
/// natural count is one per socket.  `requested` > 0 pins the count; 0 means
/// auto: MQC_SHARDS if set and valid (one positive integer; malformed values
/// warn and fall through), else machine_topology().sockets.
int resolve_shard_count(int requested = 0);

/// resolve_shard_count() against an explicit topology (unit-testable: no
/// env lookup, no cached machine state).
[[nodiscard]] int resolve_shard_count_for(int requested, const MachineTopology& topo) noexcept;

/// A capability handle passed down a call chain: "this call may use up to
/// `nthreads` threads".  `0` delegates to the runtime (whatever
/// omp_get_max_threads() grants at the parallel site) — the documented
/// behaviour for ownerless population-wide call sites; every layer that has
/// a partition passes an explicit size instead.
struct TeamHandle
{
  int nthreads = 1;
#ifdef MQC_CONTRACTS
  /// Contract state: the OpenMP nesting level this handle belongs to, or -1
  /// for an unbound handle (no region ownership asserted).  Set by
  /// bound_to_current_region(); checked by resolve().
  int owner_level = -1;
#endif

  [[nodiscard]] static constexpr TeamHandle serial() noexcept { return TeamHandle{1}; }
  /// Let the runtime size the team at the parallel site.
  [[nodiscard]] static constexpr TeamHandle whole_machine() noexcept { return TeamHandle{0}; }
  [[nodiscard]] static constexpr TeamHandle of(int n) noexcept { return TeamHandle{n}; }
  /// The inner team of a partition.
  [[nodiscard]] static constexpr TeamHandle inner_of(const ThreadPartition& p) noexcept
  {
    return TeamHandle{p.inner};
  }

  /// A copy of this handle bound to the enclosing parallel region: under
  /// MQC_CONTRACTS, resolve() then aborts when called from a different
  /// nesting level — the "team outlived its owning region" misuse (e.g. a
  /// walker's inner team stashed and resolved after the driver's outer
  /// region closed, where its thread budget is meaningless).  Drivers bind
  /// the teams they store into long-lived state; transient handles stay
  /// unbound and carry no check.  A no-op without MQC_CONTRACTS.
  [[nodiscard]] TeamHandle bound_to_current_region() const noexcept
  {
    TeamHandle t = *this;
#ifdef MQC_CONTRACTS
    t.owner_level = nest_level();
#endif
    return t;
  }

  /// Concrete thread count to hand to num_threads(...).
  [[nodiscard]] int resolve() const noexcept
  {
#ifdef MQC_CONTRACTS
    mqc_contract(owner_level < 0 || owner_level == nest_level(),
                 "TeamHandle resolved outside its owning region: bound at nesting level %d, "
                 "resolved at level %d (team of %d threads)",
                 owner_level, nest_level(), nthreads);
#endif
    return nthreads > 0 ? nthreads : max_threads();
  }
  /// Should a parallel schedule be attempted at all?
  [[nodiscard]] constexpr bool parallel() const noexcept { return nthreads != 1; }
};

/// Which team schedule a driver actually ran — the nested analogue of
/// EvalPath, surfaced in MiniQMCResult (never a silent fallback).
enum class TeamPath
{
  Flat,        ///< inner teams of 1: the classic one-crowd/walker-per-thread region
  SerialInner, ///< inner teams requested, but the runtime serializes nested regions
  NestedInner  ///< inner teams > 1 actually fork under the outer region
};

[[nodiscard]] constexpr const char* team_path_name(TeamPath p) noexcept
{
  switch (p) {
  case TeamPath::Flat:
    return "flat";
  case TeamPath::SerialInner:
    return "serial-inner";
  case TeamPath::NestedInner:
    return "nested-inner";
  }
  return "?";
}

/// The schedule decision for an outer region of @p outer members whose
/// members hold inner teams of @p inner threads.  Inner regions under a
/// one-member outer region always fork (the outer region is inactive);
/// under a wider outer region they fork only if nesting is enabled.
inline TeamPath classify_team_path(int outer, int inner) noexcept
{
  if (inner <= 1)
    return TeamPath::Flat;
  return (outer <= 1 || nesting_enabled()) ? TeamPath::NestedInner : TeamPath::SerialInner;
}

// ---------------------------------------------------------------------------
// Team-scheduled loops: THE routing seam for parallel sweeps
// ---------------------------------------------------------------------------
//
// Every parallel loop in src/ goes through these helpers (or through the
// facade sweeps in core/orbital_set.h, which keep their pragmas for exact
// hot-path codegen): the TeamHandle decides the width, the helper owns the
// raw `#pragma omp parallel` — so no other layer opens regions, re-derives
// the machine size, or hides a `num_threads` the partition didn't grant.
// tools/lint_invariants.py enforces exactly that (rule `omp-parallel`).
//
// Both helpers only distribute independent iterations, so any team size is
// trajectory-neutral by construction; a team resolving to 1 thread runs the
// plain serial loop without opening a region at all.

/// Run fn(i) for i in [0, n) on the team's threads (static schedule; the
/// width is capped at n so no member is left without an iteration).
template <typename Fn>
void team_for(TeamHandle team, int n, Fn&& fn)
{
  const int nth = n > 1 ? std::min(team.resolve(), n) : 1;
  if (nth > 1) {
#pragma omp parallel for schedule(static) num_threads(nth)
    for (int i = 0; i < n; ++i)
      fn(i);
  } else {
    for (int i = 0; i < n; ++i)
      fn(i);
  }
}

/// Run fn(i, j) over the collapsed [0, n1) x [0, n2) space on the team's
/// threads — the (tile, walker) / (tile, position-block) sweep shape.
template <typename Fn>
void team_for_collapse2(TeamHandle team, int n1, int n2, Fn&& fn)
{
  const long long total = static_cast<long long>(n1) * n2;
  const int cap = total > static_cast<long long>(max_threads()) ? max_threads()
                                                                : static_cast<int>(total);
  const int nth = total > 1 ? std::min(team.resolve(), cap) : 1;
  if (nth > 1) {
#pragma omp parallel for collapse(2) schedule(static) num_threads(nth)
    for (int i = 0; i < n1; ++i)
      for (int j = 0; j < n2; ++j)
        fn(i, j);
  } else {
    for (int i = 0; i < n1; ++i)
      for (int j = 0; j < n2; ++j)
        fn(i, j);
  }
}

// ---------------------------------------------------------------------------
// Flat-region arithmetic (the paper's explicit Nw × nth decomposition)
// ---------------------------------------------------------------------------

/// Coordinates of one thread inside the flat walker×member decomposition.
struct TeamCoordinates
{
  int walker = 0; ///< which Monte Carlo walker this thread serves
  int member = 0; ///< rank within the walker's team, in [0, nth)
};

/// Map a flat thread id onto (walker, member) for teams of size @p nth.
/// Threads of one team are consecutive so that on real machines they land on
/// neighbouring cores sharing cache — the locality the paper's explicit
/// partition is designed for.
constexpr TeamCoordinates team_coordinates(int tid, int nth) noexcept
{
  return TeamCoordinates{tid / nth, tid % nth};
}

/// Half-open index range.
struct Range
{
  std::size_t first = 0;
  std::size_t last = 0;
  [[nodiscard]] constexpr std::size_t size() const noexcept { return last - first; }
  [[nodiscard]] constexpr bool empty() const noexcept { return first == last; }
};

/// Contiguous block partition of [0, total) into @p parts pieces; the first
/// (total % parts) pieces are one element longer.  Every element is covered
/// exactly once for any parts >= 1, including parts > total.
constexpr Range block_range(std::size_t total, std::size_t parts, std::size_t which) noexcept
{
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  const std::size_t first = which * base + (which < extra ? which : extra);
  const std::size_t size = base + (which < extra ? 1 : 0);
  return Range{first, first + size};
}

/// Round-robin partition: member @p which of @p parts owns indices
/// which, which+parts, ... (the distribution the paper uses for tiles so
/// that the tile→thread map is independent of M % nth).
class StridedRange
{
public:
  constexpr StridedRange(std::size_t total, std::size_t parts, std::size_t which) noexcept
      : total_(total), stride_(parts), next_(which)
  {
  }

  template <typename Fn>
  void for_each(Fn&& fn) const
  {
    for (std::size_t i = next_; i < total_; i += stride_)
      fn(i);
  }

  [[nodiscard]] constexpr std::size_t count() const noexcept
  {
    return next_ >= total_ ? 0 : (total_ - next_ - 1) / stride_ + 1;
  }

private:
  std::size_t total_;
  std::size_t stride_;
  std::size_t next_;
};

} // namespace mqc

#endif // MQC_COMMON_THREADING_H
