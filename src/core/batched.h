// Batched multi-walker evaluation — the extension direction the paper closes
// with ("we plan to extend this AoSoA design to parallelize other parts of
// QMCPACK"), which production QMCPACK later realized as batched drivers.
//
// Two schedules over the same (walker, tile) work:
//
//  * Per-pair (ablation reference, evaluate_*_batched): one flat parallel
//    loop over (tile, walker) pairs, each pair an independent single-position
//    tile kernel call.  NOTE: with `collapse(2) schedule(static)` the pairs
//    of one tile are CONTIGUOUS in the collapsed index, so a thread revisits
//    a tile's table slice across consecutive walkers only when its static
//    chunk happens to span several pairs of that tile — coefficient reuse is
//    incidental, not guaranteed.  Every call also recomputes the position's
//    weight set and (pre zero-fill-elimination) re-zeroed its output slice.
//
//  * Position-blocked (evaluate_*_batched_multi): all weight sets are
//    precomputed once for the population, then work is parallelized over
//    (tile, position-block) with the tile outer and a block of P positions
//    inner.  The guarantee: within one work item the tile's 4*Ng*Nb-byte
//    coefficient slice is streamed from memory once and reused from cache by
//    all P positions of the block, and with the serial tile loop (or static
//    scheduling) consecutive blocks of the same tile extend that residency
//    across the whole population.  P trades input reuse against the output
//    working set (40*P*Nb bytes for VGH) and is tuned jointly with Nb
//    (core/tuner.h).
#ifndef MQC_CORE_BATCHED_H
#define MQC_CORE_BATCHED_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

#include "common/vec3.h"
#include "core/multi_bspline.h"
#include "core/weights.h"
#include "qmc/walker.h"

namespace mqc {

/// Resolve a position-block request against the population size: pos_block
/// <= 0 means "one block spanning the whole population" (maximum input
/// reuse), anything else is clamped to [1, nw].
inline int resolve_pos_block(int pos_block, int nw)
{
  if (pos_block <= 0)
    return nw;
  return std::min(pos_block, nw);
}

namespace detail {

/// Per-thread scratch for the fused batched drivers: the population's weight
/// sets and output-stream pointer tables.  Reused across calls (capacity is
/// sticky) so steady-state driver iterations allocate nothing.
template <typename T>
struct BatchedScratch
{
  std::vector<BsplineWeights3D<T>> w;
  std::vector<T*> v, g, lh;

  void resize(int nw)
  {
    const auto n = static_cast<std::size_t>(nw);
    w.resize(n);
    v.resize(n);
    g.resize(n);
    lh.resize(n);
  }

  static BatchedScratch& get()
  {
    static thread_local BatchedScratch scratch;
    return scratch;
  }
};

} // namespace detail

// ---------------------------------------------------------------------------
// Position-blocked fused path
// ---------------------------------------------------------------------------

/// Fused multi-position VGH over a population: weights once per position,
/// tile-outer / position-block-inner sweep, first-iteration stores (no
/// zero-fill pass).  All output buffers must share one component stride.
template <typename T>
void evaluate_vgh_batched_multi(const MultiBspline<T>& engine,
                                const std::vector<Vec3<T>>& positions,
                                std::vector<WalkerSoA<T>*>& outs, int pos_block = 0)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  if (nw == 0)
    return;
  const int pb = resolve_pos_block(pos_block, nw);
  const int nblocks = (nw + pb - 1) / pb;
  const int nt = engine.num_tiles();

  auto& scratch = detail::BatchedScratch<T>::get();
  scratch.resize(nw);
  compute_weights_vgh_batch(engine.grid(), positions.data(), nw, scratch.w.data());

  const std::size_t stride = outs[0]->stride;
  for (int i = 0; i < nw; ++i) {
    assert(outs[static_cast<std::size_t>(i)]->stride == stride);
    scratch.v[static_cast<std::size_t>(i)] = outs[static_cast<std::size_t>(i)]->v.data();
    scratch.g[static_cast<std::size_t>(i)] = outs[static_cast<std::size_t>(i)]->g.data();
    scratch.lh[static_cast<std::size_t>(i)] = outs[static_cast<std::size_t>(i)]->h.data();
  }
  const BsplineWeights3D<T>* w = scratch.w.data();
  T* const* v = scratch.v.data();
  T* const* g = scratch.g.data();
  T* const* h = scratch.lh.data();

#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int b = 0; b < nblocks; ++b) {
      const int first = b * pb;
      const int count = std::min(pb, nw - first);
      engine.evaluate_vgh_tile_multi(t, w + first, count, v + first, g + first, h + first,
                                     stride);
    }
}

/// Fused multi-position values-only path (pseudopotential quadrature batches).
template <typename T>
void evaluate_v_batched_multi(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                              std::vector<WalkerSoA<T>*>& outs, int pos_block = 0)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  if (nw == 0)
    return;
  const int pb = resolve_pos_block(pos_block, nw);
  const int nblocks = (nw + pb - 1) / pb;
  const int nt = engine.num_tiles();

  auto& scratch = detail::BatchedScratch<T>::get();
  scratch.resize(nw);
  compute_weights_v_batch(engine.grid(), positions.data(), nw, scratch.w.data());

  for (int i = 0; i < nw; ++i)
    scratch.v[static_cast<std::size_t>(i)] = outs[static_cast<std::size_t>(i)]->v.data();
  const BsplineWeights3D<T>* w = scratch.w.data();
  T* const* v = scratch.v.data();

#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int b = 0; b < nblocks; ++b) {
      const int first = b * pb;
      const int count = std::min(pb, nw - first);
      engine.evaluate_v_tile_multi(t, w + first, count, v + first);
    }
}

/// Fused multi-position VGL (local-energy measurement over a population).
template <typename T>
void evaluate_vgl_batched_multi(const MultiBspline<T>& engine,
                                const std::vector<Vec3<T>>& positions,
                                std::vector<WalkerSoA<T>*>& outs, int pos_block = 0)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  if (nw == 0)
    return;
  const int pb = resolve_pos_block(pos_block, nw);
  const int nblocks = (nw + pb - 1) / pb;
  const int nt = engine.num_tiles();

  auto& scratch = detail::BatchedScratch<T>::get();
  scratch.resize(nw);
  compute_weights_vgh_batch(engine.grid(), positions.data(), nw, scratch.w.data());

  const std::size_t stride = outs[0]->stride;
  for (int i = 0; i < nw; ++i) {
    assert(outs[static_cast<std::size_t>(i)]->stride == stride);
    scratch.v[static_cast<std::size_t>(i)] = outs[static_cast<std::size_t>(i)]->v.data();
    scratch.g[static_cast<std::size_t>(i)] = outs[static_cast<std::size_t>(i)]->g.data();
    scratch.lh[static_cast<std::size_t>(i)] = outs[static_cast<std::size_t>(i)]->l.data();
  }
  const BsplineWeights3D<T>* w = scratch.w.data();
  T* const* v = scratch.v.data();
  T* const* g = scratch.g.data();
  T* const* l = scratch.lh.data();

#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int b = 0; b < nblocks; ++b) {
      const int first = b * pb;
      const int count = std::min(pb, nw - first);
      engine.evaluate_vgl_tile_multi(t, w + first, count, v + first, g + first, l + first,
                                     stride);
    }
}

// ---------------------------------------------------------------------------
// Per-(tile, walker) path — kept as the ablation reference the position-
// blocked schedule is benchmarked against (bench/gb_batched_multi.cpp).
// ---------------------------------------------------------------------------

/// Evaluate VGH at positions[w] into outs[w] for every walker w, one
/// single-position tile kernel call per (tile, walker) pair.
template <typename T>
void evaluate_vgh_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                          std::vector<WalkerSoA<T>*>& outs)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int w = 0; w < nw; ++w) {
      const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
      WalkerSoA<T>& out = *outs[static_cast<std::size_t>(w)];
      engine.evaluate_vgh_tile(t, r.x, r.y, r.z, out.v.data(), out.g.data(), out.h.data(),
                               out.stride);
    }
}

/// Batched values-only evaluation, per-pair schedule.
template <typename T>
void evaluate_v_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                        std::vector<WalkerSoA<T>*>& outs)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int w = 0; w < nw; ++w) {
      const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
      engine.evaluate_v_tile(t, r.x, r.y, r.z, outs[static_cast<std::size_t>(w)]->v.data());
    }
}

/// Batched VGL, per-pair schedule.
template <typename T>
void evaluate_vgl_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                          std::vector<WalkerSoA<T>*>& outs)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int w = 0; w < nw; ++w) {
      const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
      WalkerSoA<T>& out = *outs[static_cast<std::size_t>(w)];
      engine.evaluate_vgl_tile(t, r.x, r.y, r.z, out.v.data(), out.g.data(), out.l.data(),
                               out.stride);
    }
}

} // namespace mqc

#endif // MQC_CORE_BATCHED_H
