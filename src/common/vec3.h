// Minimal fixed-size 3-vector used throughout the particle/QMC layers.
//
// Deliberately a plain aggregate: the paper's point is that *collections* of
// these (R[N][3]) are an AoS anti-pattern in hot loops; Vec3 itself is only
// used at the scalar "one particle at a time" level (moves, lattice algebra).
#ifndef MQC_COMMON_VEC3_H
#define MQC_COMMON_VEC3_H

#include <cmath>
#include <cstddef>

namespace mqc {

template <typename T>
struct Vec3
{
  T x{}, y{}, z{};

  constexpr T& operator[](std::size_t i) noexcept { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](std::size_t i) const noexcept
  {
    return i == 0 ? x : (i == 1 ? y : z);
  }

  constexpr Vec3& operator+=(const Vec3& o) noexcept
  {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) noexcept
  {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(T s) noexcept
  {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
};

template <typename T>
constexpr Vec3<T> operator+(Vec3<T> a, const Vec3<T>& b) noexcept
{
  return a += b;
}
template <typename T>
constexpr Vec3<T> operator-(Vec3<T> a, const Vec3<T>& b) noexcept
{
  return a -= b;
}
template <typename T>
constexpr Vec3<T> operator*(Vec3<T> a, T s) noexcept
{
  return a *= s;
}
template <typename T>
constexpr Vec3<T> operator*(T s, Vec3<T> a) noexcept
{
  return a *= s;
}

template <typename T>
constexpr T dot(const Vec3<T>& a, const Vec3<T>& b) noexcept
{
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

template <typename T>
constexpr T norm2(const Vec3<T>& a) noexcept
{
  return dot(a, a);
}

template <typename T>
T norm(const Vec3<T>& a) noexcept
{
  return std::sqrt(norm2(a));
}

} // namespace mqc

#endif // MQC_COMMON_VEC3_H
