// Unit tests for the common substrate: alignment math, aligned allocator,
// RNG determinism and statistics, thread-team partitions, timers, tables.
#include <cstdint>
#include <set>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/aligned_allocator.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/sysinfo.h"
#include "common/table.h"
#include "common/threading.h"
#include "common/timer.h"

using namespace mqc;

TEST(Config, AlignedSizeRoundsUpToLaneMultiple)
{
  EXPECT_EQ(aligned_size<float>(1), 16u);
  EXPECT_EQ(aligned_size<float>(16), 16u);
  EXPECT_EQ(aligned_size<float>(17), 32u);
  EXPECT_EQ(aligned_size<double>(1), 8u);
  EXPECT_EQ(aligned_size<double>(8), 8u);
  EXPECT_EQ(aligned_size<double>(9), 16u);
  EXPECT_EQ(aligned_size<float>(0), 0u);
}

TEST(Config, AlignedBytes)
{
  EXPECT_EQ(aligned_bytes(1), kAlignment);
  EXPECT_EQ(aligned_bytes(64), 64u);
  EXPECT_EQ(aligned_bytes(65), 128u);
  EXPECT_EQ(aligned_bytes(0), 0u);
}

TEST(AlignedAllocator, VectorDataIsAligned)
{
  for (std::size_t n : {1u, 7u, 63u, 64u, 1000u}) {
    aligned_vector<float> v(n, 1.0f);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kAlignment, 0u) << n;
  }
  aligned_vector<double> d(123, 2.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % kAlignment, 0u);
}

TEST(AlignedAllocator, EqualityAndRebind)
{
  aligned_allocator<float> a;
  aligned_allocator<double> b;
  EXPECT_TRUE(a == aligned_allocator<float>());
  EXPECT_FALSE(a != aligned_allocator<float>());
  using rebound = aligned_allocator<float>::rebind<double>::other;
  static_assert(std::is_same_v<rebound, aligned_allocator<double>>);
  (void)b;
}

TEST(Rng, DeterministicForSameSeed)
{
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i)
    ASSERT_EQ(a(), b());
}

TEST(Rng, DistinctSeedsDiverge)
{
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreDecorrelated)
{
  auto s0 = Xoshiro256::for_stream(42, 0);
  auto s1 = Xoshiro256::for_stream(42, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    same += (s0() == s1());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
  Xoshiro256 rng(7);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 5e-3);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 5e-3);
}

TEST(Rng, UniformRangeRespectsBounds)
{
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, GaussianMoments)
{
  Xoshiro256 rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i)
    stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 1e-2);
  EXPECT_NEAR(stats.stddev(), 1.0, 1e-2);
}

TEST(Stats, RunningStatsBasics)
{
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0})
    s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, RelativeErrorNearZeroUsesScale)
{
  EXPECT_NEAR(relative_error(1e-12, 0.0), 1e-12, 1e-15);
  EXPECT_NEAR(relative_error(2.0, 1.0), 0.5, 1e-15);
}

TEST(Threading, BlockRangeCoversEverythingOnce)
{
  for (std::size_t total : {0u, 1u, 7u, 64u, 101u})
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u, 128u}) {
      std::size_t covered = 0;
      std::size_t last_end = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        const Range r = block_range(total, parts, p);
        EXPECT_EQ(r.first, last_end);
        last_end = r.last;
        covered += r.size();
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(last_end, total);
    }
}

TEST(Threading, BlockRangeBalanced)
{
  for (std::size_t p = 0; p < 7; ++p) {
    const Range r = block_range(100, 7, p);
    EXPECT_GE(r.size(), 14u);
    EXPECT_LE(r.size(), 15u);
  }
}

TEST(Threading, StridedRangePartitionIsDisjointAndComplete)
{
  const std::size_t total = 37;
  for (std::size_t parts : {1u, 2u, 4u, 5u, 40u}) {
    std::set<std::size_t> seen;
    std::size_t count = 0;
    for (std::size_t which = 0; which < parts; ++which) {
      const StridedRange r(total, parts, which);
      EXPECT_EQ(r.count(), [&] {
        std::size_t c = 0;
        r.for_each([&](std::size_t) { ++c; });
        return c;
      }());
      r.for_each([&](std::size_t i) {
        EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
        ++count;
      });
    }
    EXPECT_EQ(count, total);
    EXPECT_EQ(seen.size(), total);
  }
}

TEST(Threading, TeamCoordinatesLayout)
{
  // 8 threads, teams of 4: walkers 0..1, members 0..3, consecutive threads
  // in the same team.
  const auto c0 = team_coordinates(0, 4);
  const auto c3 = team_coordinates(3, 4);
  const auto c4 = team_coordinates(4, 4);
  EXPECT_EQ(c0.walker, 0);
  EXPECT_EQ(c0.member, 0);
  EXPECT_EQ(c3.walker, 0);
  EXPECT_EQ(c3.member, 3);
  EXPECT_EQ(c4.walker, 1);
  EXPECT_EQ(c4.member, 0);
}

TEST(Timer, StopwatchMonotone)
{
  Stopwatch w;
  const double t0 = w.elapsed();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t1 = w.elapsed();
  EXPECT_GE(t1, t0);
  EXPECT_GT(t1, 0.0);
}

TEST(Timer, ProfileRegistryAccumulatesAndMerges)
{
  ProfileRegistry a, b;
  a.add("x", 1.0, 2);
  a.add("x", 0.5);
  b.add("x", 0.5);
  b.add("y", 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.seconds("x"), 2.0);
  EXPECT_EQ(a.calls("x"), 4u);
  EXPECT_DOUBLE_EQ(a.seconds("y"), 2.0);
  EXPECT_DOUBLE_EQ(a.total(), 4.0);
  EXPECT_DOUBLE_EQ(a.percent("x"), 50.0);
  EXPECT_EQ(a.keys().size(), 2u);
}

TEST(Timer, ScopedTimerAddsTime)
{
  ProfileRegistry reg;
  {
    ScopedTimer t(reg, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(reg.seconds("scope"), 0.0);
  EXPECT_EQ(reg.calls("scope"), 1u);
}

TEST(Timer, TimePerIterationPositiveAndBounded)
{
  volatile double sink = 0.0;
  const double t = time_per_iteration([&] { sink = sink + 1.0; }, 0.001, 3);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 0.1);
}

TEST(Table, PrintsAlignedColumns)
{
  TablePrinter tp({"name", "value"});
  tp.add_row({"alpha", TablePrinter::cell(1.5, 2)});
  tp.add_row({"b", TablePrinter::cell(std::size_t{42})});
  std::ostringstream os;
  tp.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(SysInfo, QueryReturnsSaneValues)
{
  const SystemInfo info = query_system_info();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_GE(info.omp_max_threads, 1);
  EXPECT_GE(info.simd_width_bits, 64u);
  std::ostringstream os;
  print_system_info(os, info);
  EXPECT_NE(os.str().find("SIMD"), std::string::npos);
}
