// Tests for the tile-size tuner and its FFTW-style wisdom persistence.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/synthetic_orbitals.h"
#include "core/tuner.h"
#include "qmc/miniqmc_driver.h"
#include "qmc/miniqmc_tuner.h"

using namespace mqc;

TEST(Wisdom, KeyFormat)
{
  const auto key = Wisdom::make_key("vgh", "float", 2048, 48, 48, 48);
  EXPECT_EQ(key, "vgh:float:N=2048:grid=48x48x48");
}

TEST(Wisdom, KeyFormatV2)
{
  const auto key = Wisdom::make_key_v2("vgh", "float", 2048, 48, 48, 48, 16);
  EXPECT_EQ(key, "v2:vgh:float:N=2048:grid=48x48x48:nw=16");
}

TEST(Wisdom, InsertLookup)
{
  Wisdom w;
  EXPECT_FALSE(w.lookup("missing").has_value());
  w.insert("k1", {64, 1.5e9});
  const auto e = w.lookup("k1");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 64);
  EXPECT_DOUBLE_EQ(e->throughput, 1.5e9);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Wisdom, SaveLoadRoundTrip)
{
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_test.txt";
  Wisdom w;
  w.insert(Wisdom::make_key("vgh", "float", 512, 48, 48, 48), {128, 2.5e9});
  w.insert(Wisdom::make_key("v", "double", 256, 32, 32, 32), {64, 1.0e9});
  ASSERT_TRUE(w.save(path));

  Wisdom r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.size(), 2u);
  const auto e = r.lookup(Wisdom::make_key("vgh", "float", 512, 48, 48, 48));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_NEAR(e->throughput, 2.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, LoadMissingFileFails)
{
  Wisdom w;
  EXPECT_FALSE(w.load("/nonexistent/path/wisdom.txt"));
}

TEST(Wisdom, JointKeyRoundTripWithPosBlock)
{
  // The v2 schema persists the jointly tuned (Nb, P) pair.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v2_test.txt";
  Wisdom w;
  w.insert(Wisdom::make_key_v2("vgh", "float", 1024, 48, 48, 48, 8), {128, 3.5e9, 8});
  w.insert(Wisdom::make_key_v2("vgh", "double", 512, 32, 32, 32, 16), {64, 9.0e8, 4});
  ASSERT_TRUE(w.save(path));

  Wisdom r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.size(), 2u);
  const auto e = r.lookup(Wisdom::make_key_v2("vgh", "float", 1024, 48, 48, 48, 8));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 8);
  EXPECT_NEAR(e->throughput, 3.5e9, 1.0);
  const auto d = r.lookup(Wisdom::make_key_v2("vgh", "double", 512, 32, 32, 32, 16));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->pos_block, 4);
  std::remove(path.c_str());
}

TEST(Wisdom, LoadsLegacyV1Lines)
{
  // A pre-v2 wisdom file has three-field lines; pos_block defaults to 1.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v1_test.txt";
  {
    std::ofstream out(path);
    out << "# miniqmcpp wisdom v1: key tile_size throughput\n";
    out << "vgh:float:N=512:grid=48x48x48 128 2.5e+09\n";
  }
  Wisdom r;
  ASSERT_TRUE(r.load(path));
  const auto e = r.lookup("vgh:float:N=512:grid=48x48x48");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 1);
  EXPECT_NEAR(e->throughput, 2.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, V3RoundTripWithCrowdSize)
{
  // The v3 schema adds the tuned crowd size to the (Nb, P) pair.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v3_test.txt";
  Wisdom w;
  w.insert(miniqmc_wisdom_key(512, 32, 16), {128, 3.5e9, 8, 4});
  ASSERT_TRUE(w.save(path));

  Wisdom r;
  ASSERT_TRUE(r.load(path));
  const auto e = r.lookup(miniqmc_wisdom_key(512, 32, 16));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 8);
  EXPECT_EQ(e->crowd_size, 4);
  EXPECT_NEAR(e->throughput, 3.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, V4RoundTripWithInnerThreads)
{
  // The v4 schema adds the tuned nested inner-team size.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v4_test.txt";
  Wisdom w;
  w.insert(miniqmc_wisdom_key(512, 32, 16), {128, 3.5e9, 8, 4, 2});
  ASSERT_TRUE(w.save(path));

  Wisdom r;
  ASSERT_TRUE(r.load(path));
  const auto e = r.lookup(miniqmc_wisdom_key(512, 32, 16));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 8);
  EXPECT_EQ(e->crowd_size, 4);
  EXPECT_EQ(e->inner_threads, 2);
  EXPECT_NEAR(e->throughput, 3.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, V5RoundTripWithPrecision)
{
  // The v5 schema stamps the precision family the knobs were tuned under
  // (0 = native, 1 = mixed): a pos_block tuned against DP-table bandwidth is
  // the wrong knob for a half-size mixed table.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v5_test.txt";
  Wisdom w;
  w.insert(miniqmc_wisdom_key(512, 32, 16), {128, 3.5e9, 8, 4, 2, 1});
  ASSERT_TRUE(w.save(path));

  Wisdom r;
  ASSERT_TRUE(r.load(path));
  const auto e = r.lookup(miniqmc_wisdom_key(512, 32, 16));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 8);
  EXPECT_EQ(e->crowd_size, 4);
  EXPECT_EQ(e->inner_threads, 2);
  EXPECT_EQ(e->precision, 1);
  EXPECT_NEAR(e->throughput, 3.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, LoadsLegacyV4Lines)
{
  // A pre-v5 wisdom file has six-field lines (key + 5 numbers); precision
  // defaults to 0 (= native) so old files keep feeding the default path.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v4line_test.txt";
  {
    std::ofstream out(path);
    out << "# miniqmcpp wisdom v4: key tile_size pos_block crowd_size inner_threads throughput\n";
    out << "v2:miniqmc:float:N=512:grid=32x32x32:nw=16 128 8 4 2 3.5e+09\n";
  }
  Wisdom r;
  ASSERT_TRUE(r.load(path));
  const auto e = r.lookup("v2:miniqmc:float:N=512:grid=32x32x32:nw=16");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 8);
  EXPECT_EQ(e->crowd_size, 4);
  EXPECT_EQ(e->inner_threads, 2);
  EXPECT_EQ(e->precision, 0);
  EXPECT_NEAR(e->throughput, 3.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, LoadsLegacyV3Lines)
{
  // A pre-v4 wisdom file has five-field lines; inner_threads defaults to 0
  // (= not tuned, drivers fall back to the topology auto split).
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v3line_test.txt";
  {
    std::ofstream out(path);
    out << "# miniqmcpp wisdom v3: key tile_size pos_block crowd_size throughput\n";
    out << "v2:miniqmc:float:N=512:grid=32x32x32:nw=16 128 8 4 3.5e+09\n";
  }
  Wisdom r;
  ASSERT_TRUE(r.load(path));
  const auto e = r.lookup("v2:miniqmc:float:N=512:grid=32x32x32:nw=16");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 8);
  EXPECT_EQ(e->crowd_size, 4);
  EXPECT_EQ(e->inner_threads, 0);
  EXPECT_NEAR(e->throughput, 3.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, LoadsLegacyV2Lines)
{
  // A pre-v3 wisdom file has four-field lines; crowd_size defaults to 0.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v2line_test.txt";
  {
    std::ofstream out(path);
    out << "# miniqmcpp wisdom v2: key tile_size pos_block throughput\n";
    out << "v2:vgh:float:N=512:grid=48x48x48:nw=8 128 4 2.5e+09\n";
  }
  Wisdom r;
  ASSERT_TRUE(r.load(path));
  const auto e = r.lookup("v2:vgh:float:N=512:grid=48x48x48:nw=8");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 4);
  EXPECT_EQ(e->crowd_size, 0);
  EXPECT_NEAR(e->throughput, 2.5e9, 1.0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Load hardening: a truncated or garbage wisdom file must never crash and
// never silently half-load — the whole file is rejected, existing entries
// survive, and load_status() carries the diagnosis (one corrupt artifact per
// failure mode, lint-fixture style).
// ---------------------------------------------------------------------------

namespace {

/// Write @p body to a temp wisdom file, load it into a Wisdom that already
/// holds one good entry, and require the all-or-nothing rejection contract.
void expect_rejected(const std::string& tag, const std::string& body)
{
  const std::string path =
      std::filesystem::temp_directory_path() / ("mqc_wisdom_corrupt_" + tag + ".txt");
  {
    std::ofstream out(path);
    out << body;
  }
  Wisdom w;
  w.insert("pre-existing", {64, 1.0e9});
  EXPECT_FALSE(w.load(path)) << tag;
  EXPECT_TRUE(w.load_status().attempted) << tag;
  EXPECT_FALSE(w.load_status().ok) << tag;
  EXPECT_GE(w.load_status().lines_rejected, 1) << tag;
  EXPECT_FALSE(w.load_status().detail.empty()) << tag;
  // Nothing merged, nothing lost: the corrupt file's parseable lines must
  // NOT leak in, and entries present before the load must survive.
  EXPECT_EQ(w.size(), 1u) << tag;
  EXPECT_TRUE(w.lookup("pre-existing").has_value()) << tag;
  std::remove(path.c_str());
}

} // namespace

TEST(WisdomHardening, TruncatedV1LineRejectsWholeFile)
{
  // v1 line cut off mid-entry: key + tile but no throughput.
  expect_rejected("v1_truncated", "good:key 128 2.5e+09\n"
                                  "vgh:float:N=512:grid=48x48x48 128\n");
}

TEST(WisdomHardening, GarbageTokenInV2LineRejectsWholeFile)
{
  expect_rejected("v2_garbage", "v2:vgh:float:N=512:grid=48x48x48:nw=8 128 four 2.5e+09\n");
}

TEST(WisdomHardening, NegativeKnobInV3LineRejectsWholeFile)
{
  expect_rejected("v3_negative", "v2:miniqmc:float:N=512:grid=32x32x32:nw=16 128 8 -4 3.5e+09\n");
}

TEST(WisdomHardening, ExtraFieldsInV4LineRejectsWholeFile)
{
  expect_rejected("v4_extra", "v2:miniqmc:float:N=512:grid=32x32x32:nw=16 128 8 4 2 3.5e+09 junk\n");
}

TEST(WisdomHardening, OutOfRangePrecisionRejectsWholeFile)
{
  // precision is an enum ordinal: only 0 (native) and 1 (mixed) exist.
  expect_rejected("v5_bad_precision",
                  "v2:miniqmc:float:N=512:grid=32x32x32:nw=16 128 8 4 2 3 3.5e+09\n");
}

TEST(WisdomHardening, NonIntegralKnobRejectsWholeFile)
{
  expect_rejected("v2_fractional", "v2:vgh:float:N=512:grid=48x48x48:nw=8 128 4.5 2.5e+09\n");
}

TEST(WisdomHardening, NonFiniteThroughputRejectsWholeFile)
{
  expect_rejected("v4_nan", "v2:miniqmc:float:N=512:grid=32x32x32:nw=16 128 8 4 2 nan\n");
}

TEST(WisdomHardening, UnreadablePathSurfacesOpenFailure)
{
  Wisdom w;
  EXPECT_FALSE(w.load("/nonexistent/path/wisdom.txt"));
  EXPECT_TRUE(w.load_status().attempted);
  EXPECT_FALSE(w.load_status().ok);
  EXPECT_NE(w.load_status().detail.find("cannot open"), std::string::npos);
}

TEST(WisdomHardening, CleanLoadReportsStatus)
{
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_status_test.txt";
  Wisdom w;
  w.insert("k1", {64, 1.5e9});
  w.insert("k2", {128, 2.5e9, 4, 2, 1});
  ASSERT_TRUE(w.save(path));
  Wisdom r;
  ASSERT_TRUE(r.load(path));
  EXPECT_TRUE(r.load_status().attempted);
  EXPECT_TRUE(r.load_status().ok);
  EXPECT_EQ(r.load_status().entries_loaded, 2);
  EXPECT_EQ(r.load_status().lines_rejected, 0);
  EXPECT_TRUE(r.load_status().detail.empty());
  std::remove(path.c_str());
}

TEST(Wisdom, MiniqmcKeyFormat)
{
  EXPECT_EQ(miniqmc_wisdom_key(512, 32, 16), "v2:miniqmc:float:N=512:grid=32x32x32:nw=16");
}

TEST(Tuner, DefaultCandidatesArePowersOfTwoUpToN)
{
  const auto c = default_tile_candidates(256, 16);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c.front(), 16);
  EXPECT_EQ(c[3], 128);
  EXPECT_EQ(c.back(), 256);
}

TEST(Tuner, DefaultCandidatesNonPowerN)
{
  const auto c = default_tile_candidates(96, 16);
  // 16, 32, 64, 96
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.back(), 96);
}

TEST(Tuner, DefaultBlockCandidatesPowersOfTwoUpToPopulation)
{
  const auto c = default_block_candidates(8);
  ASSERT_EQ(c.size(), 4u); // 1 2 4 8
  EXPECT_EQ(c.front(), 1);
  EXPECT_EQ(c.back(), 8);
  const auto odd = default_block_candidates(6);
  // 1 2 4 6
  ASSERT_EQ(odd.size(), 4u);
  EXPECT_EQ(odd.back(), 6);
  const auto one = default_block_candidates(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front(), 1);
}

TEST(Tuner, JointSweepReturnsBestPair)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 9);
  const auto result = tune_tile_block_vgh(*coefs, {16, 32}, {1, 2, 4, 8}, /*num_walkers=*/6,
                                          /*min_seconds=*/0.004);
  // Block candidate 8 > population 6 is skipped: 2 tiles x 3 blocks.
  EXPECT_EQ(result.tiles.size(), 6u);
  EXPECT_EQ(result.blocks.size(), 6u);
  EXPECT_EQ(result.throughputs.size(), 6u);
  EXPECT_GT(result.best_throughput, 0.0);
  EXPECT_GT(result.best_tile, 0);
  EXPECT_GT(result.best_block, 0);
  bool best_found = false;
  for (std::size_t i = 0; i < result.tiles.size(); ++i) {
    EXPECT_GT(result.throughputs[i], 0.0);
    EXPECT_LE(result.throughputs[i], result.best_throughput + 1e-9);
    if (result.tiles[i] == result.best_tile && result.blocks[i] == result.best_block) {
      best_found = true;
      EXPECT_DOUBLE_EQ(result.throughputs[i], result.best_throughput);
    }
  }
  EXPECT_TRUE(best_found);
}

TEST(Tuner, SweepReturnsBestCandidate)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 9);
  const auto result = tune_tile_size_vgh(*coefs, {16, 32, 64}, /*ns=*/8, /*min_seconds=*/0.005);
  EXPECT_EQ(result.tiles.size(), 3u);
  EXPECT_EQ(result.throughputs.size(), 3u);
  EXPECT_GT(result.best_throughput, 0.0);
  bool best_found = false;
  for (std::size_t i = 0; i < result.tiles.size(); ++i) {
    EXPECT_GT(result.throughputs[i], 0.0);
    EXPECT_LE(result.throughputs[i], result.best_throughput + 1e-9);
    if (result.tiles[i] == result.best_tile) {
      best_found = true;
      EXPECT_DOUBLE_EQ(result.throughputs[i], result.best_throughput);
    }
  }
  EXPECT_TRUE(best_found);
}

// ---------------------------------------------------------------------------
// miniQMC driver tuning: the crowd-size sweep and the wisdom consumption by
// run_miniqmc's dispatch (tuning knobs must never change trajectories).
// ---------------------------------------------------------------------------

namespace {

MiniQMCConfig tuner_driver_config()
{
  MiniQMCConfig cfg;
  cfg.supercell = {1, 1, 1};
  cfg.grid_size = 12;
  cfg.num_splines = 16;
  cfg.steps = 1;
  cfg.num_walkers = 4;
  cfg.quadrature_points = 2;
  cfg.spo = SpoLayout::AoSoA;
  cfg.tile_size = 16;
  cfg.optimized_dt_jastrow = true;
  return cfg;
}

} // namespace

TEST(Tuner, CrowdSizeSweepProbesTheRealDriver)
{
  const auto cfg = tuner_driver_config();
  const auto result = tune_crowd_size(cfg, {1, 2, 4, 8});
  // Candidate 8 > population 4 is skipped.
  ASSERT_EQ(result.crowd_sizes.size(), 3u);
  ASSERT_EQ(result.seconds.size(), 3u);
  EXPECT_GT(result.best_crowd_size, 0);
  EXPECT_GT(result.best_seconds, 0.0);
  bool best_found = false;
  for (std::size_t i = 0; i < result.crowd_sizes.size(); ++i) {
    EXPECT_GT(result.seconds[i], 0.0);
    EXPECT_GE(result.seconds[i], result.best_seconds);
    if (result.crowd_sizes[i] == result.best_crowd_size)
      best_found = true;
  }
  EXPECT_TRUE(best_found);
}

TEST(Tuner, InnerThreadsSweepProbesTheRealDriver)
{
  auto cfg = tuner_driver_config();
  cfg.crowd_size = 2;
  const auto result = tune_inner_threads(cfg, {1, 2});
  ASSERT_EQ(result.inner_sizes.size(), 2u);
  ASSERT_EQ(result.seconds.size(), 2u);
  EXPECT_GE(result.best_inner, 1);
  EXPECT_GT(result.best_seconds, 0.0);
  for (const double s : result.seconds)
    EXPECT_GT(s, 0.0);
  // Empty candidate list: derived from the machine budget, always probes at
  // least the flat schedule.
  const auto autos = tune_inner_threads(cfg, {});
  ASSERT_GE(autos.inner_sizes.size(), 1u);
  EXPECT_EQ(autos.inner_sizes.front(), 1);
}

TEST(Tuner, TuneMiniqmcRecordsOneConsumableEntry)
{
  const auto cfg = tuner_driver_config();
  Wisdom wisdom;
  const auto entry = tune_miniqmc(wisdom, cfg, /*min_seconds=*/0.002);
  EXPECT_GT(entry.tile_size, 0);
  EXPECT_GT(entry.pos_block, 0);
  EXPECT_GT(entry.crowd_size, 0);
  EXPECT_GE(entry.inner_threads, 1);
  EXPECT_GT(entry.throughput, 0.0);
  const auto hit = wisdom.lookup(miniqmc_wisdom_key(16, cfg.grid_size, cfg.num_walkers));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->crowd_size, entry.crowd_size);
  EXPECT_EQ(hit->tile_size, entry.tile_size);
  EXPECT_EQ(hit->inner_threads, entry.inner_threads);
}

TEST(Tuner, WisdomDispatchPicksTunedKnobsWithoutChangingTrajectories)
{
  // 32 orbitals so the tuned tile size (16) differs from the configured one
  // (32): the wisdom entry must re-tile the engine AND resolve the crowd
  // size, with bit-for-bit identical trajectories — tile size regroups the
  // same per-orbital arithmetic, crowd/pos_block only reorder sweeps.
  auto cfg = tuner_driver_config();
  cfg.num_splines = 32;
  cfg.tile_size = 32;
  cfg.driver = DriverMode::Crowd;

  Wisdom wisdom;
  Wisdom::Entry entry;
  entry.tile_size = 16;
  entry.pos_block = 2;
  entry.crowd_size = 2;
  entry.throughput = 1.0;
  wisdom.insert(miniqmc_wisdom_key(32, cfg.grid_size, cfg.num_walkers), entry);

  // Auto mode consumes the tuned crowd size (and tile size, pos_block)...
  auto auto_cfg = cfg;
  auto_cfg.crowd_size = -1;
  auto_cfg.wisdom = &wisdom;
  const auto tuned = run_miniqmc(auto_cfg);
  EXPECT_EQ(tuned.crowd_size_used, 2);

  // ...and the trajectory is bit-for-bit the untuned one (configured tile
  // 32, explicit crowd 2, no wisdom): tuning knobs never change the Monte
  // Carlo process.
  auto plain_cfg = cfg;
  plain_cfg.crowd_size = 2;
  const auto plain = run_miniqmc(plain_cfg);
  ASSERT_EQ(tuned.walker_accepts.size(), plain.walker_accepts.size());
  for (std::size_t i = 0; i < plain.walker_accepts.size(); ++i) {
    EXPECT_EQ(tuned.walker_accepts[i], plain.walker_accepts[i]) << "walker " << i;
    EXPECT_EQ(tuned.walker_log_det[i], plain.walker_log_det[i]) << "walker " << i;
  }

  // A missing entry leaves auto mode on the whole-population default.
  Wisdom empty;
  auto miss_cfg = cfg;
  miss_cfg.crowd_size = -1;
  miss_cfg.wisdom = &empty;
  EXPECT_EQ(run_miniqmc(miss_cfg).crowd_size_used, cfg.num_walkers);
}
