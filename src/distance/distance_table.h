// Distance tables — the second-hottest kernel group in the paper's profile
// (Tables II/III: 23-39% of run time before optimization).
//
// Two table kinds, each in two layouts:
//   AA — electron-electron, square n x n, updated row+column on acceptance;
//   AB — ion-electron, sources fixed, one row per target electron.
//   AoS — Vec3 positions, scalar minimum image per pair (the baseline);
//   SoA — separate aligned x/y/z source streams, row-major padded distance
//         and displacement-component planes, SIMD inner loops (the Opt-A
//         treatment applied to the particle abstractions, §V-A).
//
// Self-distances in AA tables are set to a huge value so cutoff-based
// functors (Jastrow) skip them without a branch in the SIMD loop.
#ifndef MQC_DISTANCE_DISTANCE_TABLE_H
#define MQC_DISTANCE_DISTANCE_TABLE_H

#include <cassert>
#include <cmath>
#include <cstddef>

#include "common/aligned_allocator.h"
#include "common/config.h"
#include "common/simd.h"
#include "common/vec3.h"
#include "particles/lattice.h"
#include "particles/particle_set.h"

namespace mqc {

/// Self-distance sentinel: far beyond any physical cutoff.
template <typename T>
inline constexpr T kSelfDistance = T(1e10);

// --------------------------------------------------------------------------
// AoS baseline tables
// --------------------------------------------------------------------------

template <typename T>
class DistanceTableAA_AoS
{
public:
  DistanceTableAA_AoS(const Lattice& lattice, int n, MinImageMode mode = MinImageMode::Exact)
      : lattice_(&lattice), mode_(mode), n_(n), r_(static_cast<std::size_t>(n) * n),
        dr_(static_cast<std::size_t>(n) * n), temp_r_(static_cast<std::size_t>(n)),
        temp_dr_(static_cast<std::size_t>(n))
  {
  }

  [[nodiscard]] int size() const noexcept { return n_; }

  /// Full O(N^2) rebuild.
  void evaluate(const ParticleSetAoS<T>& p)
  {
    for (int i = 0; i < n_; ++i)
      for (int j = 0; j < n_; ++j)
        set_pair(i, j, p[i], p[j]);
  }

  /// Distances from a proposed position of electron @p iel to all others.
  void compute_temp(const ParticleSetAoS<T>& p, const Vec3<T>& rnew, int iel)
  {
    for (int j = 0; j < n_; ++j) {
      if (j == iel) {
        temp_r_[static_cast<std::size_t>(j)] = kSelfDistance<T>;
        temp_dr_[static_cast<std::size_t>(j)] = Vec3<T>{};
        continue;
      }
      const Vec3<double> d = lattice_->min_image(
          Vec3<double>{static_cast<double>(rnew.x - p[j].x), static_cast<double>(rnew.y - p[j].y),
                       static_cast<double>(rnew.z - p[j].z)},
          mode_);
      temp_dr_[static_cast<std::size_t>(j)] =
          Vec3<T>{static_cast<T>(d.x), static_cast<T>(d.y), static_cast<T>(d.z)};
      temp_r_[static_cast<std::size_t>(j)] = static_cast<T>(norm(d));
    }
  }

  /// Commit the temp row as row/column @p iel (displacements antisymmetric).
  void accept_move(int iel)
  {
    for (int j = 0; j < n_; ++j) {
      at_r(iel, j) = temp_r_[static_cast<std::size_t>(j)];
      at_dr(iel, j) = temp_dr_[static_cast<std::size_t>(j)];
      at_r(j, iel) = temp_r_[static_cast<std::size_t>(j)];
      at_dr(j, iel) = Vec3<T>{} - temp_dr_[static_cast<std::size_t>(j)];
    }
    at_r(iel, iel) = kSelfDistance<T>;
    at_dr(iel, iel) = Vec3<T>{};
  }

  [[nodiscard]] T dist(int i, int j) const noexcept
  {
    return r_[static_cast<std::size_t>(i) * n_ + j];
  }
  [[nodiscard]] const Vec3<T>& displ(int i, int j) const noexcept
  {
    return dr_[static_cast<std::size_t>(i) * n_ + j];
  }
  [[nodiscard]] const T* temp_r() const noexcept { return temp_r_.data(); }
  [[nodiscard]] const Vec3<T>* temp_dr() const noexcept { return temp_dr_.data(); }

  // checkpoint/restore access (qmc/checkpoint.cpp): the committed table
  // arrays verbatim.  Incremental accept_move entries are NOT guaranteed
  // bit-identical to a fresh evaluate() (antisymmetric column writes negate
  // instead of recomputing), so a resumed run must restore these bytes, not
  // rebuild from positions.  temp_* scratch is excluded: it is fully
  // overwritten by the next compute_temp before any read.
  [[nodiscard]] std::size_t state_count() const noexcept { return r_.size(); }
  [[nodiscard]] T* state_r() noexcept { return r_.data(); }
  [[nodiscard]] Vec3<T>* state_dr() noexcept { return dr_.data(); }

private:
  void set_pair(int i, int j, const Vec3<T>& ri, const Vec3<T>& rj)
  {
    if (i == j) {
      at_r(i, j) = kSelfDistance<T>;
      at_dr(i, j) = Vec3<T>{};
      return;
    }
    const Vec3<double> d = lattice_->min_image(
        Vec3<double>{static_cast<double>(ri.x - rj.x), static_cast<double>(ri.y - rj.y),
                     static_cast<double>(ri.z - rj.z)},
        mode_);
    at_dr(i, j) = Vec3<T>{static_cast<T>(d.x), static_cast<T>(d.y), static_cast<T>(d.z)};
    at_r(i, j) = static_cast<T>(norm(d));
  }

  T& at_r(int i, int j) noexcept { return r_[static_cast<std::size_t>(i) * n_ + j]; }
  Vec3<T>& at_dr(int i, int j) noexcept { return dr_[static_cast<std::size_t>(i) * n_ + j]; }

  const Lattice* lattice_;
  MinImageMode mode_;
  int n_;
  std::vector<T> r_;
  std::vector<Vec3<T>> dr_; ///< dr(i,j) = min_image(r_i - r_j)
  std::vector<T> temp_r_;
  std::vector<Vec3<T>> temp_dr_;
};

template <typename T>
class DistanceTableAB_AoS
{
public:
  DistanceTableAB_AoS(const Lattice& lattice, const ParticleSetAoS<T>& sources, int num_targets,
                      MinImageMode mode = MinImageMode::Exact)
      : lattice_(&lattice), mode_(mode), sources_(&sources), nt_(num_targets),
        ns_(sources.size()), r_(static_cast<std::size_t>(nt_) * ns_),
        dr_(static_cast<std::size_t>(nt_) * ns_), temp_r_(static_cast<std::size_t>(ns_)),
        temp_dr_(static_cast<std::size_t>(ns_))
  {
  }

  [[nodiscard]] int num_targets() const noexcept { return nt_; }
  [[nodiscard]] int num_sources() const noexcept { return ns_; }

  void evaluate(const ParticleSetAoS<T>& targets)
  {
    for (int i = 0; i < nt_; ++i)
      update_row(targets[i], i);
  }

  void update_row(const Vec3<T>& ri, int i)
  {
    for (int j = 0; j < ns_; ++j) {
      const Vec3<T> sj = (*sources_)[j];
      const Vec3<double> d = lattice_->min_image(
          Vec3<double>{static_cast<double>(ri.x - sj.x), static_cast<double>(ri.y - sj.y),
                       static_cast<double>(ri.z - sj.z)},
          mode_);
      dr_[static_cast<std::size_t>(i) * ns_ + j] =
          Vec3<T>{static_cast<T>(d.x), static_cast<T>(d.y), static_cast<T>(d.z)};
      r_[static_cast<std::size_t>(i) * ns_ + j] = static_cast<T>(norm(d));
    }
  }

  void compute_temp(const Vec3<T>& rnew)
  {
    for (int j = 0; j < ns_; ++j) {
      const Vec3<T> sj = (*sources_)[j];
      const Vec3<double> d = lattice_->min_image(
          Vec3<double>{static_cast<double>(rnew.x - sj.x), static_cast<double>(rnew.y - sj.y),
                       static_cast<double>(rnew.z - sj.z)},
          mode_);
      temp_dr_[static_cast<std::size_t>(j)] =
          Vec3<T>{static_cast<T>(d.x), static_cast<T>(d.y), static_cast<T>(d.z)};
      temp_r_[static_cast<std::size_t>(j)] = static_cast<T>(norm(d));
    }
  }

  void accept_move(int iel)
  {
    for (int j = 0; j < ns_; ++j) {
      r_[static_cast<std::size_t>(iel) * ns_ + j] = temp_r_[static_cast<std::size_t>(j)];
      dr_[static_cast<std::size_t>(iel) * ns_ + j] = temp_dr_[static_cast<std::size_t>(j)];
    }
  }

  [[nodiscard]] T dist(int i, int j) const noexcept
  {
    return r_[static_cast<std::size_t>(i) * ns_ + j];
  }
  [[nodiscard]] const Vec3<T>& displ(int i, int j) const noexcept
  {
    return dr_[static_cast<std::size_t>(i) * ns_ + j];
  }
  [[nodiscard]] const T* temp_r() const noexcept { return temp_r_.data(); }
  [[nodiscard]] const Vec3<T>* temp_dr() const noexcept { return temp_dr_.data(); }

  // checkpoint/restore access (see DistanceTableAA_AoS::state_count).
  [[nodiscard]] std::size_t state_count() const noexcept { return r_.size(); }
  [[nodiscard]] T* state_r() noexcept { return r_.data(); }
  [[nodiscard]] Vec3<T>* state_dr() noexcept { return dr_.data(); }

private:
  const Lattice* lattice_;
  MinImageMode mode_;
  const ParticleSetAoS<T>* sources_;
  int nt_, ns_;
  std::vector<T> r_;
  std::vector<Vec3<T>> dr_;
  std::vector<T> temp_r_;
  std::vector<Vec3<T>> temp_dr_;
};

// --------------------------------------------------------------------------
// SoA tables
// --------------------------------------------------------------------------

/// Shared SIMD row kernel: distances/displacements from one target position
/// to all sources given as component streams.  Fast mode is a pure SIMD loop
/// (fractional wrap through the 3x3 lattice matrices); Exact mode falls back
/// to the scalar oracle per pair.
template <typename T>
void compute_distance_row_soa(const Lattice& lattice, MinImageMode mode, T xi, T yi, T zi,
                              const T* MQC_RESTRICT sx, const T* MQC_RESTRICT sy,
                              const T* MQC_RESTRICT sz, int count, T* MQC_RESTRICT r,
                              T* MQC_RESTRICT dx, T* MQC_RESTRICT dy, T* MQC_RESTRICT dz)
{
  if (mode == MinImageMode::Exact && !lattice.is_orthorhombic()) {
    for (int j = 0; j < count; ++j) {
      const Vec3<double> d = lattice.min_image(
          Vec3<double>{static_cast<double>(xi - sx[j]), static_cast<double>(yi - sy[j]),
                       static_cast<double>(zi - sz[j])},
          MinImageMode::Exact);
      dx[j] = static_cast<T>(d.x);
      dy[j] = static_cast<T>(d.y);
      dz[j] = static_cast<T>(d.z);
      r[j] = static_cast<T>(norm(d));
    }
    return;
  }
  const auto& a = lattice.rows();
  const T a00 = static_cast<T>(a[0].x), a01 = static_cast<T>(a[0].y), a02 = static_cast<T>(a[0].z);
  const T a10 = static_cast<T>(a[1].x), a11 = static_cast<T>(a[1].y), a12 = static_cast<T>(a[1].z);
  const T a20 = static_cast<T>(a[2].x), a21 = static_cast<T>(a[2].y), a22 = static_cast<T>(a[2].z);
  // Reciprocal rows (f_i = b_i . r) reconstructed from the lattice.
  const Lattice& L = lattice;
  const Vec3<double> b0 = L.to_fractional(Vec3<double>{1, 0, 0});
  const Vec3<double> b1 = L.to_fractional(Vec3<double>{0, 1, 0});
  const Vec3<double> b2 = L.to_fractional(Vec3<double>{0, 0, 1});
  const T b00 = static_cast<T>(b0.x), b01 = static_cast<T>(b1.x), b02 = static_cast<T>(b2.x);
  const T b10 = static_cast<T>(b0.y), b11 = static_cast<T>(b1.y), b12 = static_cast<T>(b2.y);
  const T b20 = static_cast<T>(b0.z), b21 = static_cast<T>(b1.z), b22 = static_cast<T>(b2.z);
  MQC_SIMD
  for (int j = 0; j < count; ++j) {
    const T ux = xi - sx[j];
    const T uy = yi - sy[j];
    const T uz = zi - sz[j];
    T fx = b00 * ux + b01 * uy + b02 * uz;
    T fy = b10 * ux + b11 * uy + b12 * uz;
    T fz = b20 * ux + b21 * uy + b22 * uz;
    fx -= std::floor(fx + T(0.5));
    fy -= std::floor(fy + T(0.5));
    fz -= std::floor(fz + T(0.5));
    const T cx = fx * a00 + fy * a10 + fz * a20;
    const T cy = fx * a01 + fy * a11 + fz * a21;
    const T cz = fx * a02 + fy * a12 + fz * a22;
    dx[j] = cx;
    dy[j] = cy;
    dz[j] = cz;
    r[j] = std::sqrt(cx * cx + cy * cy + cz * cz);
  }
}

template <typename T>
class DistanceTableAA_SoA
{
public:
  DistanceTableAA_SoA(const Lattice& lattice, int n, MinImageMode mode = MinImageMode::Exact)
      : lattice_(&lattice), mode_(mode), n_(n), stride_(aligned_size<T>(static_cast<std::size_t>(n))),
        r_(static_cast<std::size_t>(n) * stride_), dx_(r_.size()), dy_(r_.size()), dz_(r_.size()),
        temp_r_(stride_), temp_dx_(stride_), temp_dy_(stride_), temp_dz_(stride_)
  {
  }

  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] std::size_t row_stride() const noexcept { return stride_; }

  void evaluate(const ParticleSetSoA<T>& p)
  {
    for (int i = 0; i < n_; ++i) {
      const Vec3<T> ri = p[i];
      compute_distance_row_soa(*lattice_, mode_, ri.x, ri.y, ri.z, p.x(), p.y(), p.z(), n_,
                               row_r(i), row_dx(i), row_dy(i), row_dz(i));
      row_r(i)[i] = kSelfDistance<T>;
      row_dx(i)[i] = row_dy(i)[i] = row_dz(i)[i] = T(0);
    }
  }

  void compute_temp(const ParticleSetSoA<T>& p, const Vec3<T>& rnew, int iel)
  {
    compute_distance_row_soa(*lattice_, mode_, rnew.x, rnew.y, rnew.z, p.x(), p.y(), p.z(), n_,
                             temp_r_.data(), temp_dx_.data(), temp_dy_.data(), temp_dz_.data());
    temp_r_[static_cast<std::size_t>(iel)] = kSelfDistance<T>;
    temp_dx_[static_cast<std::size_t>(iel)] = T(0);
    temp_dy_[static_cast<std::size_t>(iel)] = T(0);
    temp_dz_[static_cast<std::size_t>(iel)] = T(0);
  }

  void accept_move(int iel)
  {
    for (int j = 0; j < n_; ++j) {
      row_r(iel)[j] = temp_r_[static_cast<std::size_t>(j)];
      row_dx(iel)[j] = temp_dx_[static_cast<std::size_t>(j)];
      row_dy(iel)[j] = temp_dy_[static_cast<std::size_t>(j)];
      row_dz(iel)[j] = temp_dz_[static_cast<std::size_t>(j)];
      row_r(j)[iel] = temp_r_[static_cast<std::size_t>(j)];
      row_dx(j)[iel] = -temp_dx_[static_cast<std::size_t>(j)];
      row_dy(j)[iel] = -temp_dy_[static_cast<std::size_t>(j)];
      row_dz(j)[iel] = -temp_dz_[static_cast<std::size_t>(j)];
    }
    row_r(iel)[iel] = kSelfDistance<T>;
    row_dx(iel)[iel] = row_dy(iel)[iel] = row_dz(iel)[iel] = T(0);
  }

  [[nodiscard]] const T* dist_row(int i) const noexcept { return row_r_c(i); }
  [[nodiscard]] const T* dx_row(int i) const noexcept { return row_c(dx_, i); }
  [[nodiscard]] const T* dy_row(int i) const noexcept { return row_c(dy_, i); }
  [[nodiscard]] const T* dz_row(int i) const noexcept { return row_c(dz_, i); }
  [[nodiscard]] const T* temp_r() const noexcept { return temp_r_.data(); }
  [[nodiscard]] const T* temp_dx() const noexcept { return temp_dx_.data(); }
  [[nodiscard]] const T* temp_dy() const noexcept { return temp_dy_.data(); }
  [[nodiscard]] const T* temp_dz() const noexcept { return temp_dz_.data(); }

  // checkpoint/restore access (see DistanceTableAA_AoS::state_count).  The
  // padded tail lanes are serialized too — verbatim bytes in, verbatim out.
  [[nodiscard]] std::size_t state_count() const noexcept { return r_.size(); }
  [[nodiscard]] T* state_r() noexcept { return r_.data(); }
  [[nodiscard]] T* state_dx() noexcept { return dx_.data(); }
  [[nodiscard]] T* state_dy() noexcept { return dy_.data(); }
  [[nodiscard]] T* state_dz() noexcept { return dz_.data(); }

private:
  T* row_r(int i) noexcept { return r_.data() + static_cast<std::size_t>(i) * stride_; }
  T* row_dx(int i) noexcept { return dx_.data() + static_cast<std::size_t>(i) * stride_; }
  T* row_dy(int i) noexcept { return dy_.data() + static_cast<std::size_t>(i) * stride_; }
  T* row_dz(int i) noexcept { return dz_.data() + static_cast<std::size_t>(i) * stride_; }
  const T* row_r_c(int i) const noexcept { return r_.data() + static_cast<std::size_t>(i) * stride_; }
  const T* row_c(const aligned_vector<T>& v, int i) const noexcept
  {
    return v.data() + static_cast<std::size_t>(i) * stride_;
  }

  const Lattice* lattice_;
  MinImageMode mode_;
  int n_;
  std::size_t stride_;
  aligned_vector<T> r_, dx_, dy_, dz_;
  aligned_vector<T> temp_r_, temp_dx_, temp_dy_, temp_dz_;
};

template <typename T>
class DistanceTableAB_SoA
{
public:
  DistanceTableAB_SoA(const Lattice& lattice, const ParticleSetSoA<T>& sources, int num_targets,
                      MinImageMode mode = MinImageMode::Exact)
      : lattice_(&lattice), mode_(mode), sources_(&sources), nt_(num_targets),
        ns_(sources.size()), stride_(aligned_size<T>(static_cast<std::size_t>(ns_))),
        r_(static_cast<std::size_t>(nt_) * stride_), dx_(r_.size()), dy_(r_.size()),
        dz_(r_.size()), temp_r_(stride_), temp_dx_(stride_), temp_dy_(stride_), temp_dz_(stride_)
  {
  }

  [[nodiscard]] int num_targets() const noexcept { return nt_; }
  [[nodiscard]] int num_sources() const noexcept { return ns_; }
  [[nodiscard]] std::size_t row_stride() const noexcept { return stride_; }

  void evaluate(const ParticleSetSoA<T>& targets)
  {
    for (int i = 0; i < nt_; ++i) {
      const Vec3<T> ri = targets[i];
      update_row(ri, i);
    }
  }

  void update_row(const Vec3<T>& ri, int i)
  {
    compute_distance_row_soa(*lattice_, mode_, ri.x, ri.y, ri.z, sources_->x(), sources_->y(),
                             sources_->z(), ns_, row(r_, i), row(dx_, i), row(dy_, i),
                             row(dz_, i));
  }

  void compute_temp(const Vec3<T>& rnew)
  {
    compute_distance_row_soa(*lattice_, mode_, rnew.x, rnew.y, rnew.z, sources_->x(),
                             sources_->y(), sources_->z(), ns_, temp_r_.data(), temp_dx_.data(),
                             temp_dy_.data(), temp_dz_.data());
  }

  void accept_move(int iel)
  {
    for (int j = 0; j < ns_; ++j) {
      row(r_, iel)[j] = temp_r_[static_cast<std::size_t>(j)];
      row(dx_, iel)[j] = temp_dx_[static_cast<std::size_t>(j)];
      row(dy_, iel)[j] = temp_dy_[static_cast<std::size_t>(j)];
      row(dz_, iel)[j] = temp_dz_[static_cast<std::size_t>(j)];
    }
  }

  [[nodiscard]] const T* dist_row(int i) const noexcept { return row_c(r_, i); }
  [[nodiscard]] const T* dx_row(int i) const noexcept { return row_c(dx_, i); }
  [[nodiscard]] const T* dy_row(int i) const noexcept { return row_c(dy_, i); }
  [[nodiscard]] const T* dz_row(int i) const noexcept { return row_c(dz_, i); }
  [[nodiscard]] const T* temp_r() const noexcept { return temp_r_.data(); }
  [[nodiscard]] const T* temp_dx() const noexcept { return temp_dx_.data(); }
  [[nodiscard]] const T* temp_dy() const noexcept { return temp_dy_.data(); }
  [[nodiscard]] const T* temp_dz() const noexcept { return temp_dz_.data(); }

  // checkpoint/restore access (see DistanceTableAA_AoS::state_count).
  [[nodiscard]] std::size_t state_count() const noexcept { return r_.size(); }
  [[nodiscard]] T* state_r() noexcept { return r_.data(); }
  [[nodiscard]] T* state_dx() noexcept { return dx_.data(); }
  [[nodiscard]] T* state_dy() noexcept { return dy_.data(); }
  [[nodiscard]] T* state_dz() noexcept { return dz_.data(); }

private:
  T* row(aligned_vector<T>& v, int i) noexcept
  {
    return v.data() + static_cast<std::size_t>(i) * stride_;
  }
  const T* row_c(const aligned_vector<T>& v, int i) const noexcept
  {
    return v.data() + static_cast<std::size_t>(i) * stride_;
  }

  const Lattice* lattice_;
  MinImageMode mode_;
  const ParticleSetSoA<T>* sources_;
  int nt_, ns_;
  std::size_t stride_;
  aligned_vector<T> r_, dx_, dy_, dz_;
  aligned_vector<T> temp_r_, temp_dx_, temp_dy_, temp_dz_;
};

} // namespace mqc

#endif // MQC_DISTANCE_DISTANCE_TABLE_H
