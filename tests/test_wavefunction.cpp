// Integration tests for the Slater-Jastrow wave function (paper Eq. 1-4):
// the particle-by-particle ratio/accept protocol against full rebuilds,
// sign tracking, reject semantics, and the kinetic-energy estimator against
// finite differences of log psi.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/synthetic_orbitals.h"
#include "particles/graphite.h"
#include "qmc/wavefunction.h"

using namespace mqc;

namespace {

struct WfFixture
{
  CrystalSystem sys = make_orthorhombic_carbon(1, 1, 1); // 4 ions
  std::shared_ptr<CoefStorage<double>> coefs;
  ParticleSetSoA<double> ions;
  ParticleSetSoA<double> elec;
  std::unique_ptr<SlaterJastrow<double>> psi;
  int norb = 6;

  explicit WfFixture(std::uint64_t seed = 3, int delay_rank = 0)
  {
    const double l = sys.lattice.rows()[0].x;
    const auto grid = Grid3D<double>::cube(12, l);
    const auto pw = PlaneWaveOrbitals::make(norb, Vec3<double>{l, l, l}, seed);
    coefs = build_planewave_storage(grid, pw);
    ions = ParticleSetSoA<double>(sys.num_ions());
    for (int i = 0; i < sys.num_ions(); ++i)
      ions.set(i, sys.ions[i]);
    const double rcut = 0.9 * sys.lattice.wigner_seitz_radius();
    auto j1 = BsplineJastrowFunctor<double>::make_exponential(-1.0, 0.8, rcut);
    auto j2 = BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, rcut);
    psi = std::make_unique<SlaterJastrow<double>>(coefs, sys.lattice, ions, j1, j2,
                                                  MinImageMode::Fast, delay_rank);
    elec = random_particles<double>(2 * norb, sys.lattice, seed + 7);
    EXPECT_TRUE(psi->initialize(elec));
  }

  /// log |psi| of an arbitrary configuration via a fresh wave function.
  double log_psi_at(const ParticleSetSoA<double>& conf)
  {
    const double rcut = 0.9 * sys.lattice.wigner_seitz_radius();
    auto j1 = BsplineJastrowFunctor<double>::make_exponential(-1.0, 0.8, rcut);
    auto j2 = BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, rcut);
    SlaterJastrow<double> fresh(coefs, sys.lattice, ions, j1, j2);
    EXPECT_TRUE(fresh.initialize(conf));
    return fresh.log_psi();
  }
};

} // namespace

TEST(WaveFunction, InitializeGivesFiniteLog)
{
  WfFixture f;
  EXPECT_TRUE(std::isfinite(f.psi->log_psi()));
  EXPECT_NE(f.psi->sign(), 0.0);
  EXPECT_EQ(f.psi->num_orbitals(), 6);
  EXPECT_EQ(f.psi->num_electrons(), 12);
}

TEST(WaveFunction, RatioMatchesRebuild)
{
  WfFixture f;
  const double log_before = f.psi->log_psi();
  for (int iel : {0, 3, 7, 11}) {
    const Vec3<double> rnew{0.3 + 0.1 * iel, 1.1, 2.0 - 0.05 * iel};
    const double lr = f.psi->ratio_log(iel, rnew);
    f.psi->accept(iel);

    auto conf = f.elec;
    conf.set(iel, rnew);
    const double log_rebuilt = f.log_psi_at(conf);
    EXPECT_NEAR(f.psi->log_psi(), log_rebuilt, 1e-8) << "iel=" << iel;
    EXPECT_NEAR(f.psi->log_psi(), log_before + lr, 1e-8);

    // Undo for the next subcase (move back; ratio must invert).
    const double lr_back = f.psi->ratio_log(iel, f.elec[iel]);
    EXPECT_NEAR(lr_back, -lr, 1e-8);
    f.psi->accept(iel);
    EXPECT_NEAR(f.psi->log_psi(), log_before, 1e-7);
  }
}

TEST(WaveFunction, RejectLeavesStateUnchanged)
{
  WfFixture f;
  const double log_before = f.psi->log_psi();
  (void)f.psi->ratio_log(5, Vec3<double>{1.0, 1.0, 1.0});
  f.psi->reject(5);
  EXPECT_DOUBLE_EQ(f.psi->log_psi(), log_before);
  // A subsequent move of a different electron still behaves correctly.
  const double lr = f.psi->ratio_log(2, Vec3<double>{0.8, 0.2, 1.4});
  f.psi->accept(2);
  auto conf = f.elec;
  conf.set(2, Vec3<double>{0.8, 0.2, 1.4});
  EXPECT_NEAR(f.psi->log_psi(), f.log_psi_at(conf), 1e-8);
  EXPECT_NEAR(f.psi->log_psi(), log_before + lr, 1e-8);
}

TEST(WaveFunction, ManyMovesStayConsistent)
{
  WfFixture f;
  Xoshiro256 rng(99);
  auto conf = f.elec;
  for (int m = 0; m < 30; ++m) {
    const int iel = static_cast<int>(rng() % 12);
    const Vec3<double> r = conf[iel];
    const Vec3<double> rnew{r.x + 0.3 * rng.gaussian(), r.y + 0.3 * rng.gaussian(),
                            r.z + 0.3 * rng.gaussian()};
    (void)f.psi->ratio_log(iel, rnew);
    if (rng.uniform() < 0.6) {
      f.psi->accept(iel);
      conf.set(iel, rnew);
    } else {
      f.psi->reject(iel);
    }
  }
  EXPECT_NEAR(f.psi->log_psi(), f.log_psi_at(conf), 1e-7);
}

TEST(WaveFunction, GradLogPsiMatchesFiniteDifference)
{
  WfFixture f;
  std::vector<Vec3<double>> grad;
  std::vector<double> lap;
  f.psi->grad_lap_log_psi(grad, lap);

  const double h = 1e-5;
  for (int iel : {1, 8}) {
    const Vec3<double> r = f.elec[iel];
    for (int d = 0; d < 3; ++d) {
      auto cp = f.elec;
      Vec3<double> rp = r, rm = r;
      rp[static_cast<std::size_t>(d)] += h;
      rm[static_cast<std::size_t>(d)] -= h;
      cp.set(iel, rp);
      const double lp = f.log_psi_at(cp);
      cp.set(iel, rm);
      const double lm = f.log_psi_at(cp);
      const double fd = (lp - lm) / (2 * h);
      EXPECT_NEAR(grad[static_cast<std::size_t>(iel)][static_cast<std::size_t>(d)], fd, 5e-5)
          << "iel=" << iel << " d=" << d;
    }
  }
}

TEST(WaveFunction, LaplacianLogPsiMatchesFiniteDifference)
{
  WfFixture f;
  std::vector<Vec3<double>> grad;
  std::vector<double> lap;
  f.psi->grad_lap_log_psi(grad, lap);

  const double h = 2e-4;
  const int iel = 4;
  const Vec3<double> r = f.elec[iel];
  const double l0 = f.log_psi_at(f.elec);
  double lap_fd = 0.0;
  for (int d = 0; d < 3; ++d) {
    auto cp = f.elec;
    Vec3<double> rp = r, rm = r;
    rp[static_cast<std::size_t>(d)] += h;
    rm[static_cast<std::size_t>(d)] -= h;
    cp.set(iel, rp);
    const double lp = f.log_psi_at(cp);
    cp.set(iel, rm);
    const double lm = f.log_psi_at(cp);
    lap_fd += (lp - 2 * l0 + lm) / (h * h);
  }
  EXPECT_NEAR(lap[static_cast<std::size_t>(iel)], lap_fd, 5e-3);
}

TEST(WaveFunction, KineticEnergyFiniteAndStableUnderMoves)
{
  WfFixture f;
  const double k0 = f.psi->kinetic_energy();
  EXPECT_TRUE(std::isfinite(k0));
  // Kinetic energy from the incrementally updated state matches a rebuild.
  (void)f.psi->ratio_log(0, Vec3<double>{0.9, 0.9, 0.9});
  f.psi->accept(0);
  auto conf = f.elec;
  conf.set(0, Vec3<double>{0.9, 0.9, 0.9});
  const double rcut = 0.9 * f.sys.lattice.wigner_seitz_radius();
  auto j1 = BsplineJastrowFunctor<double>::make_exponential(-1.0, 0.8, rcut);
  auto j2 = BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, rcut);
  SlaterJastrow<double> fresh(f.coefs, f.sys.lattice, f.ions, j1, j2);
  ASSERT_TRUE(fresh.initialize(conf));
  EXPECT_NEAR(f.psi->kinetic_energy(), fresh.kinetic_energy(), 1e-6);
}

TEST(WaveFunction, DelayedDeterminantTracksShermanMorrisonAcrossDelayRanks)
{
  // The SlaterJastrow determinant-update policy: running the SAME Markov
  // chain on the delayed rank-k engine must reproduce the Sherman-Morrison
  // ratio/accept trajectory to tight tolerance for every window size —
  // k = 1 (degenerate window), k < N, k = N, and k > N (N = 6 columns per
  // spin sector), where N-and-above exercise the repeated-column flush.
  // The sequence mixes accepts and rejects and touches the same electron
  // back-to-back so pending-window pricing is hit in every state.
  for (int k : {1, 2, 4, 8, 12}) {
    WfFixture sm(3, 0);
    WfFixture delayed(3, k);
    ASSERT_EQ(delayed.psi->delay_rank(), k >= 2 ? k : 1);
    Xoshiro256 rng(55);
    // Electron schedule with deliberate immediate re-touches (0, 0 and 7, 7).
    const int schedule[] = {0, 0, 3, 7, 7, 1, 10, 4, 0, 8, 3, 3, 11, 5, 2, 9, 6, 1, 7, 0};
    double max_scale = 1.0;
    for (int iel : schedule) {
      const Vec3<double> r = sm.psi->electrons()[iel];
      const Vec3<double> rnew{r.x + 0.25 * rng.gaussian(), r.y + 0.25 * rng.gaussian(),
                              r.z + 0.25 * rng.gaussian()};
      const double lr_sm = sm.psi->ratio_log(iel, rnew);
      const double lr_d = delayed.psi->ratio_log(iel, rnew);
      ASSERT_NEAR(lr_d, lr_sm, 1e-9 * std::max(1.0, std::abs(lr_sm))) << "k=" << k;
      if (rng.uniform() < std::exp(2.0 * lr_sm)) {
        sm.psi->accept(iel);
        delayed.psi->accept(iel);
      } else {
        sm.psi->reject(iel);
        delayed.psi->reject(iel);
      }
      max_scale = std::max(max_scale, std::abs(sm.psi->log_psi()));
      ASSERT_NEAR(delayed.psi->log_psi(), sm.psi->log_psi(), 1e-9 * max_scale) << "k=" << k;
    }
    // Derived quantities that force the pending window to flush (inverse
    // materialization) must agree too.
    EXPECT_NEAR(delayed.psi->kinetic_energy(), sm.psi->kinetic_energy(), 1e-6) << "k=" << k;
    EXPECT_EQ(delayed.psi->sign(), sm.psi->sign()) << "k=" << k;
  }
}

TEST(WaveFunction, DelayedDeterminantMatchesRebuildOracle)
{
  // Incremental delayed state vs a fresh O(N^3) wave function build at the
  // final configuration: the end-to-end guarantee, independent of the
  // Sherman-Morrison reference path.
  WfFixture f(3, 4);
  Xoshiro256 rng(77);
  auto conf = f.elec;
  for (int m = 0; m < 40; ++m) {
    const int iel = static_cast<int>(rng() % 12);
    const Vec3<double> r = conf[iel];
    const Vec3<double> rnew{r.x + 0.3 * rng.gaussian(), r.y + 0.3 * rng.gaussian(),
                            r.z + 0.3 * rng.gaussian()};
    (void)f.psi->ratio_log(iel, rnew);
    if (rng.uniform() < 0.6) {
      f.psi->accept(iel);
      conf.set(iel, rnew);
    } else {
      f.psi->reject(iel);
    }
  }
  EXPECT_NEAR(f.psi->log_psi(), f.log_psi_at(conf), 1e-7);
}

TEST(WaveFunction, FloatKernelsTrackDoubleWaveFunction)
{
  // The SP build of the same wave function must agree on log psi to a few
  // units of float epsilon times the problem scale.
  const auto sys = make_orthorhombic_carbon(1, 1, 1);
  const double l = sys.lattice.rows()[0].x;
  const int norb = 4;
  const auto pw = PlaneWaveOrbitals::make(norb, Vec3<double>{l, l, l}, 21);
  auto coefs_d = build_planewave_storage(Grid3D<double>::cube(12, l), pw);
  auto coefs_f = build_planewave_storage(Grid3D<float>::cube(12, static_cast<float>(l)), pw);
  ParticleSetSoA<double> ions_d(sys.num_ions());
  ParticleSetSoA<float> ions_f(sys.num_ions());
  for (int i = 0; i < sys.num_ions(); ++i) {
    ions_d.set(i, sys.ions[i]);
    ions_f.set(i, Vec3<float>{static_cast<float>(sys.ions[i].x),
                              static_cast<float>(sys.ions[i].y),
                              static_cast<float>(sys.ions[i].z)});
  }
  const double rcut = 0.9 * sys.lattice.wigner_seitz_radius();
  SlaterJastrow<double> psi_d(coefs_d, sys.lattice, ions_d,
                              BsplineJastrowFunctor<double>::make_exponential(-1.0, 0.8, rcut),
                              BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, rcut));
  SlaterJastrow<float> psi_f(
      coefs_f, sys.lattice, ions_f,
      BsplineJastrowFunctor<float>::make_exponential(-1.0f, 0.8f, static_cast<float>(rcut)),
      BsplineJastrowFunctor<float>::make_exponential(-0.5f, 1.0f, static_cast<float>(rcut)));
  const auto elec_d = random_particles<double>(2 * norb, sys.lattice, 5);
  ParticleSetSoA<float> elec_f(2 * norb);
  for (int i = 0; i < 2 * norb; ++i)
    elec_f.set(i, Vec3<float>{static_cast<float>(elec_d[i].x), static_cast<float>(elec_d[i].y),
                              static_cast<float>(elec_d[i].z)});
  ASSERT_TRUE(psi_d.initialize(elec_d));
  ASSERT_TRUE(psi_f.initialize(elec_f));
  EXPECT_NEAR(psi_f.log_psi(), psi_d.log_psi(), 5e-4 * std::abs(psi_d.log_psi()) + 5e-3);
}
