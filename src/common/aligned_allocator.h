// Aligned allocation substrate.
//
// The paper's kernels require the coefficient table rows and every output
// stream to be aligned to the SIMD width ("the allocation of the P
// coefficient array ... uses an aligned allocator and includes padding to
// ensure the alignment of P[i][j][k] to a 512-bit cache-line boundary").
// aligned_allocator is a minimal C++17 allocator over std::aligned_alloc so
// std::vector can be used everywhere without losing the alignment contract.
#ifndef MQC_COMMON_ALIGNED_ALLOCATOR_H
#define MQC_COMMON_ALIGNED_ALLOCATOR_H

#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "common/config.h"

namespace mqc {

template <typename T, std::size_t Align = kAlignment>
class aligned_allocator
{
  static_assert(Align >= alignof(T), "alignment must satisfy the type");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");

public:
  using value_type = T;

  aligned_allocator() noexcept = default;
  template <typename U>
  aligned_allocator(const aligned_allocator<U, Align>&) noexcept
  {
  }

  template <typename U>
  struct rebind
  {
    using other = aligned_allocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n)
  {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    // std::aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes = aligned_bytes(n * sizeof(T));
    void* p = std::aligned_alloc(Align, bytes);
    if (!p)
      throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const aligned_allocator&, const aligned_allocator&) noexcept { return true; }
  friend bool operator!=(const aligned_allocator&, const aligned_allocator&) noexcept { return false; }
};

/// Convenience alias: a std::vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, aligned_allocator<T>>;

} // namespace mqc

#endif // MQC_COMMON_ALIGNED_ALLOCATOR_H
