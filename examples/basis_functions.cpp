// Figure 2 companion: dump the piecewise-cubic B-spline basis functions in
// 1D (and a 2D tensor-product slice) as plottable columns, and verify the
// partition-of-unity invariant on the fly.
//
//   ./examples/basis_functions > basis.dat
//   gnuplot> plot 'basis.dat' index 0 using 1:2 w l, '' i 0 u 1:3 w l, ...
#include <cstdio>

#include "core/bspline_basis.h"

int main()
{
  using namespace mqc;

  std::puts("# Figure 2(a): 1D cubic B-spline basis over one cell, t in [0,1)");
  std::puts("# t  b[i-1]  b[i]  b[i+1]  b[i+2]  sum");
  for (int s = 0; s <= 100; ++s) {
    const double t = s / 100.0;
    double a[4];
    bspline_weights(t, a);
    std::printf("%.3f  %.6f  %.6f  %.6f  %.6f  %.6f\n", t, a[0], a[1], a[2], a[3],
                a[0] + a[1] + a[2] + a[3]);
  }

  std::puts("\n\n# Figure 2(b): 2D tensor-product basis b_i(t) * b_j(u) for the");
  std::puts("# (i,j) = (center, center) function on a 21x21 cell mesh");
  std::puts("# t  u  value");
  for (int st = 0; st <= 20; ++st) {
    for (int su = 0; su <= 20; ++su) {
      const double t = st / 20.0, u = su / 20.0;
      double at[4], au[4];
      bspline_weights(t, at);
      bspline_weights(u, au);
      std::printf("%.2f  %.2f  %.6f\n", t, u, at[1] * au[1]);
    }
    std::puts("");
  }

  std::puts("\n# derivative weights at t=0.5 (for reference):");
  double a[4], da[4], d2a[4];
  bspline_weights_d2(0.5, a, da, d2a);
  std::printf("#   a = %.6f %.6f %.6f %.6f\n", a[0], a[1], a[2], a[3]);
  std::printf("#  da = %.6f %.6f %.6f %.6f (sum %.1e)\n", da[0], da[1], da[2], da[3],
              da[0] + da[1] + da[2] + da[3]);
  std::printf("# d2a = %.6f %.6f %.6f %.6f (sum %.1e)\n", d2a[0], d2a[1], d2a[2], d2a[3],
              d2a[0] + d2a[1] + d2a[2] + d2a[3]);
  return 0;
}
