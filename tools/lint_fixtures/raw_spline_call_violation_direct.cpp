// Fixture: calling a spline engine entry point above the facade is flagged.
// Expected: >= 2 [raw-spline-call] findings.
struct Engine
{
  void evaluate_v_tile(int, float, float, float, float*) const {}
  void evaluate_vgh_tile_multi(int, const void*, int, float* const*, float* const*,
                               float* const*, unsigned long) const {}
};

void driver(const Engine& engine, float* out)
{
  engine.evaluate_v_tile(0, 0.1f, 0.2f, 0.3f, out);
  engine.evaluate_vgh_tile_multi(0, nullptr, 1, nullptr, nullptr, nullptr, 0);
}
