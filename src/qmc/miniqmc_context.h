// Internal state shared by the miniQMC sweep drivers.
//
// Both drivers — the classic one-walker-per-thread sweep (miniqmc_driver.cpp)
// and the lock-step crowd sweep (crowd_driver.cpp) — run the identical
// Monte Carlo process: same system setup, same per-walker rng streams, same
// distance-table/Jastrow/determinant arithmetic, same Metropolis decisions.
// They differ ONLY in how the B-spline evaluations are scheduled (one
// position at a time vs. one multi-position batch per crowd).  Everything
// order-independent lives here so the equivalence is true by construction
// and the tests can require bit-for-bit identical trajectories.
//
// This header is an implementation detail of the two driver translation
// units; it is not part of the public API surface.
#ifndef MQC_QMC_MINIQMC_CONTEXT_H
#define MQC_QMC_MINIQMC_CONTEXT_H

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/threading.h"
#include "common/timer.h"
#include "common/vec3.h"
#include "core/bspline_aos.h"
#include "core/bspline_soa.h"
#include "core/multi_bspline.h"
#include "core/orbital_set.h"
#include "core/synthetic_orbitals.h"
#include "core/weights.h"
#include "determinant/det_update.h"
#include "distance/distance_table.h"
#include "jastrow/one_body.h"
#include "jastrow/two_body.h"
#include "particles/graphite.h"
#include "qmc/checkpoint.h"
#include "qmc/miniqmc_driver.h"
#include "qmc/miniqmc_tuner.h"
#include "qmc/walker.h"

namespace mqc::detail {

using qmc_real = float; ///< kernel precision (the paper's miniQMC is all SP)

/// Everything shared read-only across walkers: the crystal, the coefficient
/// table and engines, the Jastrow functors, and the ion sets.
struct MiniQMCSystem
{
  /// @p replica (optional) is a pre-built coefficient table this system
  /// adopts instead of generating its own — the WalkerPopulation's NUMA
  /// path: each shard passes its socket-local CoefReplicaSet copy here, so
  /// the engines and the OrbitalSet facade built below resolve every
  /// evaluation through shard-local memory.  A replica must be an exact
  /// copy of the table this config would generate (asserted on shape);
  /// since the generated table is a deterministic function of (grid, norb,
  /// seed), adopting a copy is trajectory-neutral bit-for-bit.
  explicit MiniQMCSystem(const MiniQMCConfig& cfg,
                         std::shared_ptr<CoefStorage<qmc_real>> replica = nullptr)
      : crystal(make_graphite_supercell(cfg.supercell[0], cfg.supercell[1], cfg.supercell[2]))
  {
    norb = cfg.num_splines > 0 ? cfg.num_splines : crystal.num_orbitals();
    nel = 2 * norb;
    nw = cfg.num_walkers > 0 ? cfg.num_walkers : max_threads();
    nq = std::max(1, cfg.quadrature_points);

    // Spline domain: a cube enclosing the cell.  The driver's orbitals are
    // synthetic (random coefficients), so only the access pattern matters;
    // the engines wrap positions periodically in grid coordinates.
    double lmax = 0.0;
    for (const auto& row : crystal.lattice.rows())
      lmax = std::max(lmax, std::abs(row.x) + std::abs(row.y) + std::abs(row.z));
    const auto grid = Grid3D<qmc_real>::cube(cfg.grid_size, static_cast<qmc_real>(lmax));
    if (replica) {
      assert(replica->num_splines() == norb);
      assert(replica->grid().x.num == grid.x.num && replica->grid().y.num == grid.y.num &&
             replica->grid().z.num == grid.z.num);
      coefs = std::move(replica);
    } else {
      coefs = make_random_storage<qmc_real>(grid, norb, cfg.seed);
    }

    // Precision resolution BEFORE wisdom consumption: the AoS baseline has
    // no mixed variant (it predates the SoA stream kernels the wide
    // accumulation tile is built on), so Mixed + AoS resolves to Native —
    // surfaced through MiniQMCResult::precision_path, never silent.  The
    // wisdom entry is only consumed when it was tuned for the same resolved
    // precision: a pos_block tuned against DP-table bandwidth is the wrong
    // knob for a half-size mixed table.
    precision = cfg.precision_path;
    if (precision == PrecisionPath::Mixed && cfg.spo == SpoLayout::AoS)
      precision = PrecisionPath::Native;

    // Tuned dispatch knobs from the wisdom entry tune_miniqmc recorded
    // (never trajectory-affecting: tile size regroups the same per-orbital
    // arithmetic, pos_block and crowd_size reorder independent sweeps):
    // the AoSoA tile size, the facade's position block, and the crowd size
    // the crowd driver resolves when cfg.crowd_size == -1.
    int tile_size = cfg.tile_size;
    std::optional<Wisdom::Entry> tuned;
    if (cfg.wisdom)
      tuned = cfg.wisdom->lookup(miniqmc_wisdom_key(norb, cfg.grid_size, nw));
    if (tuned && tuned->precision != (precision == PrecisionPath::Mixed ? 1 : 0))
      tuned.reset();
    if (tuned) {
      if (cfg.spo == SpoLayout::AoSoA && tuned->tile_size > 0)
        tile_size = tuned->tile_size;
      tuned_crowd_size = tuned->crowd_size;
      tuned_inner_threads = tuned->inner_threads;
    }

    // Engines: only the configured layout is exercised in the sweep.  The
    // OrbitalSet facade over the configured engine is THE evaluation entry
    // point for both drivers; the raw engine members stay for tests that
    // cross-check against direct kernel calls.  The mixed engines read the
    // SAME float coefficient table (mixed changes how it is accumulated,
    // not what is stored — and a direct qmc_real build is bit-identical to
    // a convert_storage-narrowed DP build, since the synthetic builders
    // fill from double-valued sources).
    out_pad = coefs->padded_splines();
    switch (cfg.spo) {
    case SpoLayout::AoS:
      spo_aos = std::make_unique<BsplineAoS<qmc_real>>(coefs);
      spo = OrbitalSet<qmc_real>(*spo_aos);
      break;
    case SpoLayout::SoA:
      if (precision == PrecisionPath::Mixed) {
        spo_soa_mixed = std::make_unique<BsplineSoA<qmc_real, double>>(coefs);
        spo = OrbitalSet<qmc_real>(*spo_soa_mixed);
      } else {
        spo_soa = std::make_unique<BsplineSoA<qmc_real>>(coefs);
        spo = OrbitalSet<qmc_real>(*spo_soa);
      }
      break;
    case SpoLayout::AoSoA:
      if (precision == PrecisionPath::Mixed) {
        spo_aosoa_mixed = std::make_unique<MultiBspline<qmc_real, double>>(*coefs, tile_size);
        out_pad = spo_aosoa_mixed->padded_splines();
        spo = OrbitalSet<qmc_real>(*spo_aosoa_mixed);
      } else {
        spo_aosoa = std::make_unique<MultiBspline<qmc_real>>(*coefs, tile_size);
        out_pad = spo_aosoa->padded_splines();
        spo = OrbitalSet<qmc_real>(*spo_aosoa);
      }
      break;
    }
    if (tuned)
      spo.set_pos_block(tuned->pos_block);
    aos_outputs = cfg.spo == SpoLayout::AoS;

    // Shared Jastrow functors: e-e with the antiparallel cusp, e-ion smooth.
    const double rcut = std::min(crystal.lattice.wigner_seitz_radius(), 6.0);
    j2_functor = BsplineJastrowFunctor<qmc_real>::make_exponential(qmc_real(-0.5), qmc_real(1.0),
                                                                   static_cast<qmc_real>(rcut));
    j1_functor = BsplineJastrowFunctor<qmc_real>::make_exponential(qmc_real(-1.0), qmc_real(0.75),
                                                                   static_cast<qmc_real>(rcut));

    ions_soa = ParticleSetSoA<qmc_real>(crystal.num_ions());
    for (int i = 0; i < crystal.num_ions(); ++i) {
      const auto r = crystal.ions[i];
      ions_soa.set(i, Vec3<qmc_real>{static_cast<qmc_real>(r.x), static_cast<qmc_real>(r.y),
                                     static_cast<qmc_real>(r.z)});
    }
    ions_aos = to_aos(ions_soa);
  }

  MiniQMCSystem(const MiniQMCSystem&) = delete;
  MiniQMCSystem& operator=(const MiniQMCSystem&) = delete;

  CrystalSystem crystal;
  int norb = 0;
  int nel = 0;
  int nw = 0; ///< walker count
  int nq = 1; ///< pseudopotential quadrature points per electron
  std::shared_ptr<CoefStorage<qmc_real>> coefs;
  std::unique_ptr<BsplineAoS<qmc_real>> spo_aos;
  std::unique_ptr<BsplineSoA<qmc_real>> spo_soa;
  std::unique_ptr<MultiBspline<qmc_real>> spo_aosoa;
  /// Mixed-precision engines (float tables, double accumulation); built —
  /// over the same shared table — only when the resolved precision is Mixed.
  std::unique_ptr<BsplineSoA<qmc_real, double>> spo_soa_mixed;
  std::unique_ptr<MultiBspline<qmc_real, double>> spo_aosoa_mixed;
  OrbitalSet<qmc_real> spo;  ///< the one evaluation seam both drivers use
  /// The precision family the engines actually run (cfg.precision_path
  /// after the AoS resolution) — surfaced as MiniQMCResult::precision_path
  /// and mixed into the checkpoint config hash.
  PrecisionPath precision = PrecisionPath::Native;
  bool aos_outputs = false;  ///< walkers fill their AoS-shaped output buffers
  int tuned_crowd_size = 0;  ///< from cfg.wisdom (0 = none; see crowd driver)
  int tuned_inner_threads = 0; ///< from cfg.wisdom (0 = none; see drivers)
  std::size_t out_pad = 0;
  BsplineJastrowFunctor<qmc_real> j2_functor, j1_functor;
  // The Jastrow evaluators hold pointers to the functors above; the deleted
  // copy/move keep those pointers valid for the system's lifetime.
  TwoBodyJastrowAoS<qmc_real> j2_aos{j2_functor};
  TwoBodyJastrowSoA<qmc_real> j2_soa{j2_functor};
  OneBodyJastrowAoS<qmc_real> j1_aos{j1_functor};
  OneBodyJastrowSoA<qmc_real> j1_soa{j1_functor};
  ParticleSetSoA<qmc_real> ions_soa;
  ParticleSetAoS<qmc_real> ions_aos;
};

/// Everything one walker owns.  The coefficient table and functors are
/// shared; all buffers below are thread-private (paper Fig. 3).
struct WalkerState
{
  ParticleSetAoS<qmc_real> elec_aos;
  ParticleSetSoA<qmc_real> elec_soa;
  // Distance tables in both layouts; only the configured one is used in the
  // sweep, but both exist so tests can cross-check paths cheaply.
  std::unique_ptr<DistanceTableAA_AoS<qmc_real>> ee_aos;
  std::unique_ptr<DistanceTableAB_AoS<qmc_real>> ei_aos;
  std::unique_ptr<DistanceTableAA_SoA<qmc_real>> ee_soa;
  std::unique_ptr<DistanceTableAB_SoA<qmc_real>> ei_soa;
  std::unique_ptr<WalkerAoS<qmc_real>> out_aos;
  std::unique_ptr<WalkerSoA<qmc_real>> out_soa;
  // Pseudopotential quadrature batch: one V output slice per quadrature
  // point, evaluated with a single multi-position facade request.  The
  // walker's OrbitalResource owns the weight scratch so the timed hot loop
  // allocates nothing.
  aligned_vector<qmc_real> quad_v;
  std::vector<qmc_real*> quad_v_ptrs;
  OrbitalResource<qmc_real> ores;
  std::vector<Vec3<qmc_real>> quad_r;
  DetUpdater det_up, det_dn;
  /// The walker's inner team (common/threading.h), assigned by the driver
  /// from its ThreadPartition before the sweep: multi-position facade
  /// requests and delayed-update flushes of this walker may fork this many
  /// threads under the driver's outer region.  Scheduling only — every team
  /// size produces the bit-identical trajectory.
  TeamHandle team = TeamHandle::serial();
  Xoshiro256 rng;
  ProfileRegistry profile;
  std::vector<double> phi;           ///< determinant column scratch
  std::vector<Vec3<qmc_real>> jgrad; ///< full-Jastrow gradient scratch
  std::vector<qmc_real> jlap;        ///< full-Jastrow Laplacian scratch
  std::size_t accepted = 0;
  std::size_t attempted = 0;
  std::size_t orbital_evals = 0;

  // -- per-walker spline evaluations, all through the OrbitalSet facade ----
  //
  // The only layout-dependent step left is picking the walker's output
  // buffer object (the AoS baseline fills AoS-shaped gradient/Hessian
  // groups, every other engine fills SoA component streams) — derived once
  // from the system's capabilities (sys.aos_outputs), never passed around;
  // which engine entry point runs is the facade's dispatch, not the
  // walker's.

  const qmc_real* eval_v(const MiniQMCSystem& sys, const Vec3<qmc_real>& r)
  {
    orbital_evals += static_cast<std::size_t>(sys.norb);
    qmc_real* v = sys.aos_outputs ? out_aos->v.data() : out_soa->v.data();
    sys.spo.evaluate_one(DerivLevel::V, r, v, nullptr, nullptr, out_soa->stride);
    return v;
  }

  const qmc_real* eval_vgh(const MiniQMCSystem& sys, const Vec3<qmc_real>& r)
  {
    orbital_evals += static_cast<std::size_t>(sys.norb);
    qmc_real* v = sys.aos_outputs ? out_aos->v.data() : out_soa->v.data();
    qmc_real* g = sys.aos_outputs ? out_aos->g.data() : out_soa->g.data();
    qmc_real* h = sys.aos_outputs ? out_aos->h.data() : out_soa->h.data();
    sys.spo.evaluate_one(DerivLevel::VGH, r, v, g, h, out_soa->stride);
    return v;
  }

  void eval_vgl(const MiniQMCSystem& sys, const Vec3<qmc_real>& r)
  {
    orbital_evals += static_cast<std::size_t>(sys.norb);
    qmc_real* v = sys.aos_outputs ? out_aos->v.data() : out_soa->v.data();
    qmc_real* g = sys.aos_outputs ? out_aos->g.data() : out_soa->g.data();
    qmc_real* l = sys.aos_outputs ? out_aos->l.data() : out_soa->l.data();
    sys.spo.evaluate_one(DerivLevel::VGL, r, v, g, l, out_soa->stride);
  }

  /// Multi-position V batch over the quadrature points of one electron: one
  /// facade request for the whole batch.  SoA/AoSoA engines precompute all
  /// weight sets (into the walker's resource) and sweep each coefficient
  /// slice once; the AoS baseline has no batched path and runs per-point
  /// calls — the same facade dispatch the drivers rely on.
  void eval_v_batch(const MiniQMCSystem& sys, const Vec3<qmc_real>* r, int count)
  {
    orbital_evals += static_cast<std::size_t>(count) * static_cast<std::size_t>(sys.norb);
    OrbitalEvalRequest<qmc_real> rq;
    rq.deriv = DerivLevel::V;
    rq.positions = r;
    rq.count = count;
    rq.v = quad_v_ptrs.data();
    rq.parallel = team.parallel();
    rq.team = team;
    sys.spo.evaluate(rq, ores);
  }

  /// Hand this walker its inner team: batched facade requests and the
  /// delayed determinant flush schedule onto it from here on.
  void set_team(TeamHandle t)
  {
    team = t;
    det_up.set_team(t);
    det_dn.set_team(t);
  }
};

/// Resolve the nested-team partition for an outer region of @p outer_work
/// members (walkers or crowds), shared by both drivers: the config knob
/// (with -1 resolved through the wisdom entry) feeds the topology-aware
/// ThreadPartition::resolve, inner teams > 1 ask the runtime for a second
/// active nesting level, and the resulting schedule is classified for the
/// result's team_path field.  Returns the partition; callers surface it via
/// outer/inner_threads_used.
inline ThreadPartition resolve_team_partition(const MiniQMCConfig& cfg, const MiniQMCSystem& sys,
                                              int outer_work)
{
  int inner_req = cfg.inner_threads;
  if (inner_req < 0)
    inner_req = sys.tuned_inner_threads; // 0 when nothing was tuned => auto
  ThreadPartition part = ThreadPartition::resolve(outer_work, inner_req);
  // The drivers' outer width is fixed by the work (one member per crowd /
  // walker) — a forced MQC_PARTITION outer can size the inner teams but
  // must not misreport the region that actually runs, or team_path /
  // outer_threads_used would describe a schedule that never executed.
  part.outer = std::max(1, outer_work);
  if (part.inner > 1)
    request_nested_levels(2);
  return part;
}

/// Gaussian trial move.
inline Vec3<qmc_real> propose(Xoshiro256& rng, const Vec3<qmc_real>& r, double sigma)
{
  return Vec3<qmc_real>{r.x + static_cast<qmc_real>(sigma * rng.gaussian()),
                        r.y + static_cast<qmc_real>(sigma * rng.gaussian()),
                        r.z + static_cast<qmc_real>(sigma * rng.gaussian())};
}

/// Walker setup (not profiled): rng stream, positions, tables, output
/// buffers, determinants.  Identical for both drivers — each walker's state
/// is a function of (config, walker id) only, never of crowd membership.
/// Allocate every buffer of @p w for (@p sys, @p cfg) without computing any
/// physical state: particle sets, distance tables, output/scratch buffers,
/// and determinant engines sized for cfg.delay_rank.  This is the shared
/// shell of init_walker and of the restore/clone paths (qmc/checkpoint.cpp,
/// qmc/dmc_driver.cpp), which overwrite the full committed state anyway and
/// must not pay the O(norb) orbital evaluations of a fresh build.
inline void init_walker_shell(WalkerState& w, const MiniQMCSystem& sys, const MiniQMCConfig& cfg)
{
  w.elec_soa = ParticleSetSoA<qmc_real>(sys.nel);
  w.elec_aos = ParticleSetAoS<qmc_real>(sys.nel);
  // Fast minimum image for both layouts: identical approximation, so the
  // AoS/SoA comparison isolates the layout (see DESIGN.md).
  w.ee_aos = std::make_unique<DistanceTableAA_AoS<qmc_real>>(sys.crystal.lattice, sys.nel,
                                                             MinImageMode::Fast);
  w.ei_aos = std::make_unique<DistanceTableAB_AoS<qmc_real>>(sys.crystal.lattice, sys.ions_aos,
                                                             sys.nel, MinImageMode::Fast);
  w.ee_soa = std::make_unique<DistanceTableAA_SoA<qmc_real>>(sys.crystal.lattice, sys.nel,
                                                             MinImageMode::Fast);
  w.ei_soa = std::make_unique<DistanceTableAB_SoA<qmc_real>>(sys.crystal.lattice, sys.ions_soa,
                                                             sys.nel, MinImageMode::Fast);
  w.out_aos = std::make_unique<WalkerAoS<qmc_real>>(sys.out_pad);
  w.out_soa = std::make_unique<WalkerSoA<qmc_real>>(sys.out_pad);
  w.quad_v.resize(static_cast<std::size_t>(sys.nq) * sys.out_pad);
  w.quad_v_ptrs.resize(static_cast<std::size_t>(sys.nq));
  for (int q = 0; q < sys.nq; ++q)
    w.quad_v_ptrs[static_cast<std::size_t>(q)] =
        w.quad_v.data() + static_cast<std::size_t>(q) * sys.out_pad;
  w.quad_r.resize(static_cast<std::size_t>(sys.nq));
  (void)w.ores.weights_for(sys.nq); // pre-size the facade scratch off the hot path
  w.phi.resize(static_cast<std::size_t>(sys.norb));
  w.jgrad.resize(static_cast<std::size_t>(sys.nel));
  w.jlap.resize(static_cast<std::size_t>(sys.nel));
  w.det_up = DetUpdater(cfg.delay_rank);
  w.det_dn = DetUpdater(cfg.delay_rank);
}

inline void init_walker(WalkerState& w, const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                        int wid)
{
  init_walker_shell(w, sys, cfg);
  w.rng = Xoshiro256::for_stream(cfg.seed, static_cast<std::uint64_t>(wid));
  w.elec_soa = random_particles<qmc_real>(sys.nel, sys.crystal.lattice,
                                          cfg.seed + 1000 + static_cast<std::uint64_t>(wid));
  w.elec_aos = to_aos(w.elec_soa);
  if (cfg.optimized_dt_jastrow) {
    w.ee_soa->evaluate(w.elec_soa);
    w.ei_soa->evaluate(w.elec_soa);
  } else {
    w.ee_aos->evaluate(w.elec_aos);
    w.ei_aos->evaluate(w.elec_aos);
  }

  // Determinants from the initial configuration (double precision).
  {
    Matrix<double> a_up(sys.norb), a_dn(sys.norb);
    for (int e = 0; e < sys.norb; ++e) {
      const qmc_real* v = w.eval_v(sys, w.elec_soa[e]);
      for (int n = 0; n < sys.norb; ++n)
        a_up(n, e) = static_cast<double>(v[n]) + (n == e ? 1.0 : 0.0); // diagonal boost
    }
    for (int e = 0; e < sys.norb; ++e) {
      const qmc_real* v = w.eval_v(sys, w.elec_soa[sys.norb + e]);
      for (int n = 0; n < sys.norb; ++n)
        a_dn(n, e) = static_cast<double>(v[n]) + (n == e ? 1.0 : 0.0);
    }
    // The diagonal boost keeps the synthetic (random-coefficient) orbital
    // matrices well conditioned; production orbitals are near-orthogonal
    // at distinct electron positions, which this emulates.
    w.det_up.build(a_up);
    w.det_dn.build(a_dn);
  }
  w.orbital_evals = 0; // setup evaluations excluded from throughput
}

/// Price and decide one electron move once the trial position and its
/// orbital values are known: distance-table temp rows, Jastrow ratio,
/// determinant ratio, Metropolis accept/reject with commits.  @p v is the
/// freshly evaluated orbital-value vector at @p r_new — the ONLY input that
/// differs in provenance between the drivers (single-position call vs.
/// crowd batch slice); everything inside is identical arithmetic on the
/// walker's own state and rng stream.
inline void metropolis_move(WalkerState& w, const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                            int e, const Vec3<qmc_real>& r_new, const qmc_real* v)
{
  double log_jr = 0.0;
  {
    ScopedTimer t(w.profile, kSectionDistance);
    if (cfg.optimized_dt_jastrow) {
      w.ee_soa->compute_temp(w.elec_soa, r_new, e);
      w.ei_soa->compute_temp(r_new);
    } else {
      w.ee_aos->compute_temp(w.elec_aos, r_new, e);
      w.ei_aos->compute_temp(r_new);
    }
  }
  {
    ScopedTimer t(w.profile, kSectionJastrow);
    if (cfg.optimized_dt_jastrow)
      log_jr = sys.j2_soa.ratio_log(*w.ee_soa, e) + sys.j1_soa.ratio_log(*w.ei_soa, e);
    else
      log_jr = sys.j2_aos.ratio_log(*w.ee_aos, e) + sys.j1_aos.ratio_log(*w.ei_aos, e);
  }

  double det_ratio;
  DetUpdater& det = e < sys.norb ? w.det_up : w.det_dn;
  const int col = e < sys.norb ? e : e - sys.norb;
  {
    ScopedTimer t(w.profile, kSectionDeterminant);
    for (int n = 0; n < sys.norb; ++n)
      w.phi[static_cast<std::size_t>(n)] = static_cast<double>(v[n]) + (n == col ? 1.0 : 0.0);
    det_ratio = det.ratio(w.phi.data(), col);
  }

  const double p = std::exp(2.0 * log_jr) * det_ratio * det_ratio;
  if (w.rng.uniform() < p) {
    ++w.accepted;
    {
      ScopedTimer t(w.profile, kSectionDistance);
      if (cfg.optimized_dt_jastrow) {
        w.ee_soa->accept_move(e);
        w.ei_soa->accept_move(e);
      } else {
        w.ee_aos->accept_move(e);
        w.ei_aos->accept_move(e);
      }
    }
    {
      ScopedTimer t(w.profile, kSectionDeterminant);
      det.accept_move(w.phi.data(), col);
    }
    w.elec_soa.set(e, r_new);
    w.elec_aos[e] = r_new;
  }
}

/// Measurement-phase quadrature for one electron, minus the V batch: the
/// per-point distance rows and one-body Jastrow ratios.  The quadrature
/// positions must already be in w.quad_r (proposed from the walker's rng).
inline void quadrature_dist_jastrow(WalkerState& w, const MiniQMCSystem& sys,
                                    const MiniQMCConfig& cfg, int e)
{
  for (int q = 0; q < cfg.quadrature_points; ++q) {
    {
      ScopedTimer t(w.profile, kSectionDistance);
      if (cfg.optimized_dt_jastrow)
        w.ei_soa->compute_temp(w.quad_r[static_cast<std::size_t>(q)]);
      else
        w.ei_aos->compute_temp(w.quad_r[static_cast<std::size_t>(q)]);
    }
    {
      ScopedTimer t(w.profile, kSectionJastrow);
      if (cfg.optimized_dt_jastrow)
        (void)sys.j1_soa.ratio_log(*w.ei_soa, e);
      else
        (void)sys.j1_aos.ratio_log(*w.ei_aos, e);
    }
  }
}

/// Full Jastrow gradients/Laplacians once per step (local energy analogue).
inline void full_jastrow(WalkerState& w, const MiniQMCSystem& sys, const MiniQMCConfig& cfg)
{
  ScopedTimer t(w.profile, kSectionJastrow);
  if (cfg.optimized_dt_jastrow) {
    (void)sys.j2_soa.evaluate_log(*w.ee_soa, w.jgrad.data(), w.jlap.data());
    (void)sys.j1_soa.evaluate_log(*w.ei_soa, w.jgrad.data(), w.jlap.data());
  } else {
    (void)sys.j2_aos.evaluate_log(*w.ee_aos, w.jgrad.data(), w.jlap.data());
    (void)sys.j1_aos.evaluate_log(*w.ei_aos, w.jgrad.data(), w.jlap.data());
  }
}

/// Reduce per-walker state into the result (profiles, counters, per-walker
/// trajectory fingerprints).
inline void reduce_result(MiniQMCResult& result, std::vector<WalkerState>& walkers)
{
  std::size_t attempted = 0, accepted = 0;
  result.walker_accepts.resize(walkers.size());
  result.walker_log_det.resize(walkers.size());
  for (std::size_t i = 0; i < walkers.size(); ++i) {
    WalkerState& w = walkers[i];
    result.profile.merge(w.profile);
    attempted += w.attempted;
    accepted += w.accepted;
    result.spline_orbital_evals += w.orbital_evals;
    result.walker_accepts[i] = w.accepted;
    result.walker_log_det[i] = w.det_up.log_det() + w.det_dn.log_det();
  }
  result.moves_attempted = attempted;
  result.acceptance_ratio =
      attempted > 0 ? static_cast<double>(accepted) / static_cast<double>(attempted) : 0.0;
}

/// The crowd sweep (crowd_driver.cpp); dispatched to by run_miniqmc.
MiniQMCResult run_miniqmc_crowd(const MiniQMCConfig& cfg);

/// The DMC branching driver (dmc_driver.cpp); dispatched to by run_miniqmc.
MiniQMCResult run_miniqmc_dmc(const MiniQMCConfig& cfg);

// --------------------------------------------------------------------------
// Checkpoint glue (implemented in qmc/checkpoint.cpp).
//
// Both drivers run the identical epoch-chunked protocol: advance all walkers
// to the next step boundary inside one team region, then — OUTSIDE any team
// region, with no OrbitalResource live — snapshot / inject faults / stop.
// Chunking the sweep into epochs is trajectory-neutral: per-walker state and
// rng streams persist across regions, and the stored walker teams stay
// region-valid because TeamHandle binds by nesting level (threading.h).
// --------------------------------------------------------------------------

/// Per-run checkpoint/fault state resolved once from the config.
struct CheckpointRuntime
{
  std::string path;
  int interval = 0; ///< <= 0: only the final end-of-run snapshot
  std::uint64_t config_hash = 0;
  ckpt::FaultPlan fault;

  [[nodiscard]] bool enabled() const noexcept { return !path.empty(); }
};

/// Hash of every configuration field that determines the trajectory (seed,
/// system shape, layout, delay rank, ...).  Scheduling-only knobs — driver
/// mode, crowd size, tile size, inner threads, step budget — are excluded:
/// a snapshot is resumable under any of them (the bit-for-bit invariant).
[[nodiscard]] std::uint64_t miniqmc_config_hash(const MiniQMCConfig& cfg,
                                                const MiniQMCSystem& sys) noexcept;

/// Resolve path/interval/fault plan (cfg.fault_inject overrides the
/// MQC_FAULT_INJECT env var; faults are inert without a checkpoint path).
[[nodiscard]] CheckpointRuntime make_checkpoint_runtime(const MiniQMCConfig& cfg,
                                                        const MiniQMCSystem& sys);

/// First step boundary after @p step: the next interval multiple, the armed
/// fault's abort step, or the end of the run — whichever comes first.
[[nodiscard]] int next_epoch_boundary(const CheckpointRuntime& rt, int step, int steps);

/// The step-boundary snapshot point (call between team regions): writes an
/// interval-aligned or final snapshot, applies armed file faults, and exits
/// the process when the abort fault fires at this boundary.  Asserts no
/// walker's OrbitalResource is live under MQC_CONTRACTS.
void checkpoint_step_boundary(const CheckpointRuntime& rt, const MiniQMCConfig& cfg,
                              const MiniQMCSystem& sys, std::vector<WalkerState>& walkers,
                              int step, int steps, MiniQMCResult& result);

/// Resume attempt (call after init_walker, before the sweep): restores every
/// walker from the snapshot at rt.path (with `.prev` fallback) and returns
/// the step to continue from; returns 0 (fresh start) when no snapshot is
/// usable.  Outcome is surfaced in result.resumed_from_step /
/// resume_fallback_used / resume_error — a damaged snapshot never crashes
/// and never half-applies.
[[nodiscard]] int resume_from_checkpoint(const CheckpointRuntime& rt, const MiniQMCConfig& cfg,
                                         const MiniQMCSystem& sys,
                                         std::vector<WalkerState>& walkers,
                                         MiniQMCResult& result);

// --------------------------------------------------------------------------
// Walker-state blob accessors (implemented in qmc/checkpoint.cpp).
//
// The checkpoint Walker-section codec doubles as the DMC walker-clone path:
// a spawned child is exactly a snapshot round-trip of its parent (positions,
// rng stream incl. the Box–Muller cache, committed distance tables of the
// configured layout, determinant engine state), so clone fidelity is pinned
// by the same code the resume tests already pin bit-for-bit.
// --------------------------------------------------------------------------

/// Serialize the full resumable state of @p w as a checkpoint Walker-section
/// payload tagged with slot id @p wid.
[[nodiscard]] std::vector<std::uint8_t> serialize_walker_state(WalkerState& w,
                                                               const MiniQMCSystem& sys,
                                                               const MiniQMCConfig& cfg, int wid);

/// Restore @p w from a Walker-section payload written for slot id @p wid.
/// @p w must be shell-initialized (init_walker_shell or init_walker) for the
/// same (sys, cfg) shape.  Validates everything before mutating; returns
/// false (walker untouched) on any mismatch.
[[nodiscard]] bool restore_walker_state(const std::vector<std::uint8_t>& payload, WalkerState& w,
                                        const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                                        int wid);

/// Clone the FULL per-walker state of @p src into @p dst (the DMC birth
/// path): blob round-trip for positions/rng/counters/distance tables plus a
/// direct determinant-engine copy (DetUpdater::clone_state_from) so the
/// O(norb^2) matrices skip the byte codec.  @p dst must be shell-initialized
/// for the same (sys, cfg); its rng stream is the parent's — callers give
/// the child its own stream (Xoshiro256::split) afterwards.
void clone_walker_state(WalkerState& dst, WalkerState& src, const MiniQMCSystem& sys,
                        const MiniQMCConfig& cfg);

// --------------------------------------------------------------------------
// DMC population checkpoint glue (implemented in qmc/checkpoint.cpp).
// --------------------------------------------------------------------------

/// Branching-run provenance that must survive a checkpoint: the Meta section
/// of a DMC snapshot appends these after the common prefix (the PR 7 format
/// already supports a variable walker-section count, so dynamic populations
/// reuse the container unchanged).
struct DmcRunState
{
  int generation = 0;         ///< completed branch generations
  double trial_energy = 0.0;  ///< E_T after the last feedback update
  std::uint64_t births = 0;   ///< cumulative walkers spawned by branching
  std::uint64_t deaths = 0;   ///< cumulative walkers killed by branching
  std::vector<double> weights; ///< per-walker branching weights (parallel to the walker vector)
};

/// DMC flavour of checkpoint_step_boundary: identical protocol (interval or
/// final snapshot, file faults, abort fault), but the snapshot carries the
/// live population (walkers.size() walker sections) and the DMC Meta tail.
void dmc_checkpoint_boundary(const CheckpointRuntime& rt, const MiniQMCConfig& cfg,
                             const MiniQMCSystem& sys, std::vector<WalkerState>& walkers,
                             DmcRunState& dmc, int step, int steps, MiniQMCResult& result);

/// DMC flavour of resume_from_checkpoint: resizes @p walkers to the
/// snapshot's population (shell-init + restore per walker), restores the
/// branching provenance into @p dmc, and returns the step to continue from
/// (0 = fresh start).  Same never-crash / never-half-apply contract.
[[nodiscard]] int dmc_resume_from_checkpoint(const CheckpointRuntime& rt,
                                             const MiniQMCConfig& cfg, const MiniQMCSystem& sys,
                                             std::vector<WalkerState>& walkers, DmcRunState& dmc,
                                             MiniQMCResult& result);

} // namespace mqc::detail

#endif // MQC_QMC_MINIQMC_CONTEXT_H
