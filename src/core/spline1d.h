// Interpolating 1D cubic B-spline (paper Eq. 5) with selectable boundary
// conditions.  This is both a standalone public utility and the substrate for
// the radial Jastrow functors (QMCPACK's BsplineFunctor is exactly a bounded
// 1D cubic B-spline).
//
// Boundary conditions:
//   Periodic — data[i] at x0 + i*delta, i in [0,n), period end-start;
//   Natural  — f'' = 0 at both ends;
//   Clamped  — f' prescribed at both ends (used for cusp conditions).
//
// Control points are solved in double precision; evaluation is templated on
// the storage type.
#ifndef MQC_CORE_SPLINE1D_H
#define MQC_CORE_SPLINE1D_H

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "core/bspline_basis.h"
#include "core/bspline_builder.h"
#include "core/grid.h"

namespace mqc {

enum class Boundary1D
{
  Periodic,
  Natural,
  Clamped
};

template <typename T>
class Spline1D
{
public:
  Spline1D() = default;

  /// Periodic: @p data holds n samples at x0 + i*(x1-x0)/n, i in [0,n);
  /// the function repeats with period x1-x0.
  static Spline1D periodic(T x0, T x1, std::span<const double> data)
  {
    Spline1D s;
    const int n = static_cast<int>(data.size());
    assert(n >= 1);
    s.boundary_ = Boundary1D::Periodic;
    s.grid_ = Grid1D<T>(x0, x1, n);
    std::vector<double> c(static_cast<std::size_t>(n));
    solve_periodic_spline_line(data.data(), c.data(), n);
    s.coefs_.resize(static_cast<std::size_t>(n) + 3);
    for (int m = 0; m < n + 3; ++m)
      s.coefs_[static_cast<std::size_t>(m)] =
          static_cast<T>(c[static_cast<std::size_t>(((m - 1) % n + n) % n)]);
    return s;
  }

  /// Natural: @p data holds n samples at x0 + i*(x1-x0)/(n-1) inclusive of
  /// both ends, with zero second derivative at the ends.  n >= 4.
  static Spline1D natural(T x0, T x1, std::span<const double> data)
  {
    return bounded(x0, x1, data, /*clamped=*/false, 0.0, 0.0);
  }

  /// Clamped: like natural but with prescribed end slopes f'(x0)=s0,
  /// f'(x1)=s1.  n >= 4.
  static Spline1D clamped(T x0, T x1, std::span<const double> data, double s0, double s1)
  {
    return bounded(x0, x1, data, /*clamped=*/true, s0, s1);
  }

  [[nodiscard]] Boundary1D boundary() const noexcept { return boundary_; }
  [[nodiscard]] const Grid1D<T>& grid() const noexcept { return grid_; }
  [[nodiscard]] T domain_begin() const noexcept { return grid_.start; }
  [[nodiscard]] T domain_end() const noexcept { return grid_.end; }

  /// Value at x (periodic wrap or clamp to the domain as appropriate).
  [[nodiscard]] T value(T x) const noexcept
  {
    const auto r = reduce(x);
    T a[4];
    bspline_weights(r.frac, a);
    const T* c = coefs_.data() + r.cell;
    return a[0] * c[0] + a[1] * c[1] + a[2] * c[2] + a[3] * c[3];
  }

  /// Value, first and second derivative at x.
  void evaluate(T x, T& v, T& dv, T& d2v) const noexcept
  {
    const auto r = reduce(x);
    T a[4], da[4], d2a[4];
    bspline_weights_d2(r.frac, a, da, d2a);
    const T* c = coefs_.data() + r.cell;
    v = a[0] * c[0] + a[1] * c[1] + a[2] * c[2] + a[3] * c[3];
    const T di = grid_.delta_inv;
    dv = di * (da[0] * c[0] + da[1] * c[1] + da[2] * c[2] + da[3] * c[3]);
    d2v = di * di * (d2a[0] * c[0] + d2a[1] * c[1] + d2a[2] * c[2] + d2a[3] * c[3]);
  }

  /// Raw control points (storage layout, size n+3 periodic / n+2 bounded).
  [[nodiscard]] std::span<const T> control_points() const noexcept
  {
    return {coefs_.data(), coefs_.size()};
  }

private:
  static Spline1D bounded(T x0, T x1, std::span<const double> data, bool clamped, double s0,
                          double s1)
  {
    Spline1D s;
    const int n = static_cast<int>(data.size());
    assert(n >= 4);
    s.boundary_ = clamped ? Boundary1D::Clamped : Boundary1D::Natural;
    s.grid_ = Grid1D<T>(x0, x1, n - 1); // n points span n-1 intervals
    const double delta = (static_cast<double>(x1) - static_cast<double>(x0)) / (n - 1);

    // Unknowns c[0..n-1]; end coefficients c[-1], c[n] follow from the BC.
    std::vector<double> c(static_cast<std::size_t>(n));
    if (!clamped) {
      // Natural BC collapses the end rows: c[0]=d[0], c[n-1]=d[n-1] and the
      // interior is a standard tridiagonal system (see builder docs).
      c[0] = data[0];
      c[static_cast<std::size_t>(n) - 1] = data[static_cast<std::size_t>(n) - 1];
      const int m = n - 2; // unknowns c[1..n-2]
      if (m > 0) {
        std::vector<double> sub(static_cast<std::size_t>(m), 1.0);
        std::vector<double> diag(static_cast<std::size_t>(m), 4.0);
        std::vector<double> sup(static_cast<std::size_t>(m), 1.0);
        std::vector<double> rhs(static_cast<std::size_t>(m));
        for (int i = 0; i < m; ++i)
          rhs[static_cast<std::size_t>(i)] = 6.0 * data[static_cast<std::size_t>(i) + 1];
        rhs[0] -= c[0];
        rhs[static_cast<std::size_t>(m) - 1] -= c[static_cast<std::size_t>(n) - 1];
        solve_tridiagonal(sub.data(), diag.data(), sup.data(), rhs.data(), m);
        for (int i = 0; i < m; ++i)
          c[static_cast<std::size_t>(i) + 1] = rhs[static_cast<std::size_t>(i)];
      }
    } else {
      // Clamped BC: eliminating c[-1] and c[n] gives modified first/last rows
      //   2c[0] +  c[1]   = 3 d[0]   + delta*s0
      //    c[n-2] + 2c[n-1] = 3 d[n-1] - delta*s1
      std::vector<double> sub(static_cast<std::size_t>(n), 1.0);
      std::vector<double> diag(static_cast<std::size_t>(n), 4.0);
      std::vector<double> sup(static_cast<std::size_t>(n), 1.0);
      std::vector<double> rhs(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        rhs[static_cast<std::size_t>(i)] = 6.0 * data[static_cast<std::size_t>(i)];
      diag[0] = 2.0;
      sup[0] = 1.0;
      rhs[0] = 3.0 * data[0] + delta * s0;
      diag[static_cast<std::size_t>(n) - 1] = 2.0;
      sub[static_cast<std::size_t>(n) - 1] = 1.0;
      rhs[static_cast<std::size_t>(n) - 1] = 3.0 * data[static_cast<std::size_t>(n) - 1] - delta * s1;
      solve_tridiagonal(sub.data(), diag.data(), sup.data(), rhs.data(), n);
      for (int i = 0; i < n; ++i)
        c[static_cast<std::size_t>(i)] = rhs[static_cast<std::size_t>(i)];
    }

    // End coefficients from the boundary relations.
    double c_lo, c_hi;
    if (!clamped) {
      c_lo = 2.0 * c[0] - c[1];
      c_hi = 2.0 * c[static_cast<std::size_t>(n) - 1] - c[static_cast<std::size_t>(n) - 2];
    } else {
      c_lo = c[1] - 2.0 * delta * s0;
      c_hi = c[static_cast<std::size_t>(n) - 2] + 2.0 * delta * s1;
    }

    s.coefs_.resize(static_cast<std::size_t>(n) + 2);
    s.coefs_[0] = static_cast<T>(c_lo);
    for (int i = 0; i < n; ++i)
      s.coefs_[static_cast<std::size_t>(i) + 1] = static_cast<T>(c[static_cast<std::size_t>(i)]);
    s.coefs_[static_cast<std::size_t>(n) + 1] = static_cast<T>(c_hi);
    return s;
  }

  [[nodiscard]] typename Grid1D<T>::Reduced reduce(T x) const noexcept
  {
    return boundary_ == Boundary1D::Periodic ? grid_.reduce_periodic(x) : grid_.reduce_clamped(x);
  }

  Boundary1D boundary_ = Boundary1D::Natural;
  Grid1D<T> grid_;
  std::vector<T> coefs_;
};

} // namespace mqc

#endif // MQC_CORE_SPLINE1D_H
