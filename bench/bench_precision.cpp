// Precision study (paper §II: "The single precision was first implemented in
// QMCPACK GPU port with significant speedups and memory saving and later
// introduced to the CPU version"; the paper's miniQMC runs all-SP).
//
// Compares SP vs DP for the SoA VGH kernel: throughput (bandwidth-bound
// kernels should gain ~2x from halving the element size) and accuracy
// against the double-precision reference.
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "common/timer.h"
#include "core/bspline_ref.h"
#include "core/bspline_soa.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"
#include "bench_common.h"

namespace {

using namespace mqc;

template <typename T>
double measure_vgh_throughput_t(const std::shared_ptr<CoefStorage<T>>& coefs, int ns,
                                double min_seconds)
{
  BsplineSoA<T> engine(coefs);
  WalkerSoA<T> out(engine.out_stride());
  const auto pos = mqc::bench::random_eval_positions(coefs->grid(), ns, 5);
  double best = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const double t = time_per_iteration(
        [&] {
          for (int s = 0; s < ns; ++s)
            engine.evaluate_vgh(static_cast<T>(pos.x[static_cast<std::size_t>(s)]),
                                static_cast<T>(pos.y[static_cast<std::size_t>(s)]),
                                static_cast<T>(pos.z[static_cast<std::size_t>(s)]), out.v.data(),
                                out.g.data(), out.h.data());
        },
        min_seconds, 2);
    best = std::max(best, static_cast<double>(coefs->num_splines()) * ns / t);
  }
  return best;
}

} // namespace

int main()
{
  using namespace mqc;
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();
  const int n = std::min(scale.n_single, 1024); // DP table is 2x the bytes

  print_banner(std::cout, "Precision study: SP vs DP, SoA VGH at N=" + std::to_string(n));

  // Throughput on random-coefficient tables (performance only).
  const auto gridf = Grid3D<float>::cube(scale.grid, 1.0f);
  const auto gridd = Grid3D<double>::cube(scale.grid, 1.0);
  auto coefs_sp = make_random_storage<float>(gridf, n, 11);
  auto coefs_dp = make_random_storage<double>(gridd, n, 11);
  const double t_sp = measure_vgh_throughput_t(coefs_sp, scale.ns, scale.min_seconds);
  const double t_dp = measure_vgh_throughput_t(coefs_dp, scale.ns, scale.min_seconds);

  // Accuracy on real (plane-wave) orbitals at a modest size.
  const int ng_acc = 24, n_acc = 16;
  const auto pw = PlaneWaveOrbitals::make(n_acc, Vec3<double>{1, 1, 1}, 3);
  const auto acc_dp = build_planewave_storage(Grid3D<double>::cube(ng_acc, 1.0), pw);
  const auto acc_sp = build_planewave_storage(Grid3D<float>::cube(ng_acc, 1.0f), pw);
  BsplineRef<double> ref(*acc_dp);
  BsplineSoA<float> esp(acc_sp);
  WalkerSoA<float> wsp(esp.out_stride());
  double max_err = 0.0;
  Xoshiro256 rng(7);
  for (int s = 0; s < 100; ++s) {
    const double x = rng.uniform(), y = rng.uniform(), z = rng.uniform();
    esp.evaluate_vgh(static_cast<float>(x), static_cast<float>(y), static_cast<float>(z),
                     wsp.v.data(), wsp.g.data(), wsp.h.data());
    const auto rv = ref.evaluate_v(x, y, z);
    for (int k = 0; k < n_acc; ++k)
      max_err = std::max(max_err, std::abs(static_cast<double>(wsp.v[static_cast<std::size_t>(k)]) -
                                           rv[static_cast<std::size_t>(k)]));
  }

  TablePrinter tp({"precision", "table (MB)", "T_VGH (Meval/s)", "relative"});
  tp.add_row({"double", TablePrinter::cell(coefs_dp->size_bytes() / 1e6, 0),
              TablePrinter::cell(t_dp / 1e6, 2), TablePrinter::cell(1.0, 2)});
  tp.add_row({"float", TablePrinter::cell(coefs_sp->size_bytes() / 1e6, 0),
              TablePrinter::cell(t_sp / 1e6, 2), TablePrinter::cell(t_sp / t_dp, 2)});
  tp.print(std::cout);
  std::cout << "\nmax |SP spline - DP spline| on plane-wave orbitals: " << max_err
            << "\n(QMC promotes accumulators like determinants to DP; the ~1e-6 orbital\n"
               "error is far below the Monte Carlo statistical noise, which is why the\n"
               "paper's miniQMC runs the kernels in single precision.)\n"
            << "Shape check: SP ~2x DP for a bandwidth-bound kernel (half the bytes),\n"
               "plus double the SIMD lanes when compute-bound.\n";
  return 0;
}
