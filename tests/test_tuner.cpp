// Tests for the tile-size tuner and its FFTW-style wisdom persistence.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/synthetic_orbitals.h"
#include "core/tuner.h"

using namespace mqc;

TEST(Wisdom, KeyFormat)
{
  const auto key = Wisdom::make_key("vgh", "float", 2048, 48, 48, 48);
  EXPECT_EQ(key, "vgh:float:N=2048:grid=48x48x48");
}

TEST(Wisdom, KeyFormatV2)
{
  const auto key = Wisdom::make_key_v2("vgh", "float", 2048, 48, 48, 48, 16);
  EXPECT_EQ(key, "v2:vgh:float:N=2048:grid=48x48x48:nw=16");
}

TEST(Wisdom, InsertLookup)
{
  Wisdom w;
  EXPECT_FALSE(w.lookup("missing").has_value());
  w.insert("k1", {64, 1.5e9});
  const auto e = w.lookup("k1");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 64);
  EXPECT_DOUBLE_EQ(e->throughput, 1.5e9);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Wisdom, SaveLoadRoundTrip)
{
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_test.txt";
  Wisdom w;
  w.insert(Wisdom::make_key("vgh", "float", 512, 48, 48, 48), {128, 2.5e9});
  w.insert(Wisdom::make_key("v", "double", 256, 32, 32, 32), {64, 1.0e9});
  ASSERT_TRUE(w.save(path));

  Wisdom r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.size(), 2u);
  const auto e = r.lookup(Wisdom::make_key("vgh", "float", 512, 48, 48, 48));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_NEAR(e->throughput, 2.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Wisdom, LoadMissingFileFails)
{
  Wisdom w;
  EXPECT_FALSE(w.load("/nonexistent/path/wisdom.txt"));
}

TEST(Wisdom, JointKeyRoundTripWithPosBlock)
{
  // The v2 schema persists the jointly tuned (Nb, P) pair.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v2_test.txt";
  Wisdom w;
  w.insert(Wisdom::make_key_v2("vgh", "float", 1024, 48, 48, 48, 8), {128, 3.5e9, 8});
  w.insert(Wisdom::make_key_v2("vgh", "double", 512, 32, 32, 32, 16), {64, 9.0e8, 4});
  ASSERT_TRUE(w.save(path));

  Wisdom r;
  ASSERT_TRUE(r.load(path));
  EXPECT_EQ(r.size(), 2u);
  const auto e = r.lookup(Wisdom::make_key_v2("vgh", "float", 1024, 48, 48, 48, 8));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 8);
  EXPECT_NEAR(e->throughput, 3.5e9, 1.0);
  const auto d = r.lookup(Wisdom::make_key_v2("vgh", "double", 512, 32, 32, 32, 16));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->pos_block, 4);
  std::remove(path.c_str());
}

TEST(Wisdom, LoadsLegacyV1Lines)
{
  // A pre-v2 wisdom file has three-field lines; pos_block defaults to 1.
  const std::string path = std::filesystem::temp_directory_path() / "mqc_wisdom_v1_test.txt";
  {
    std::ofstream out(path);
    out << "# miniqmcpp wisdom v1: key tile_size throughput\n";
    out << "vgh:float:N=512:grid=48x48x48 128 2.5e+09\n";
  }
  Wisdom r;
  ASSERT_TRUE(r.load(path));
  const auto e = r.lookup("vgh:float:N=512:grid=48x48x48");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->tile_size, 128);
  EXPECT_EQ(e->pos_block, 1);
  EXPECT_NEAR(e->throughput, 2.5e9, 1.0);
  std::remove(path.c_str());
}

TEST(Tuner, DefaultCandidatesArePowersOfTwoUpToN)
{
  const auto c = default_tile_candidates(256, 16);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c.front(), 16);
  EXPECT_EQ(c[3], 128);
  EXPECT_EQ(c.back(), 256);
}

TEST(Tuner, DefaultCandidatesNonPowerN)
{
  const auto c = default_tile_candidates(96, 16);
  // 16, 32, 64, 96
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.back(), 96);
}

TEST(Tuner, DefaultBlockCandidatesPowersOfTwoUpToPopulation)
{
  const auto c = default_block_candidates(8);
  ASSERT_EQ(c.size(), 4u); // 1 2 4 8
  EXPECT_EQ(c.front(), 1);
  EXPECT_EQ(c.back(), 8);
  const auto odd = default_block_candidates(6);
  // 1 2 4 6
  ASSERT_EQ(odd.size(), 4u);
  EXPECT_EQ(odd.back(), 6);
  const auto one = default_block_candidates(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front(), 1);
}

TEST(Tuner, JointSweepReturnsBestPair)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 9);
  const auto result = tune_tile_block_vgh(*coefs, {16, 32}, {1, 2, 4, 8}, /*num_walkers=*/6,
                                          /*min_seconds=*/0.004);
  // Block candidate 8 > population 6 is skipped: 2 tiles x 3 blocks.
  EXPECT_EQ(result.tiles.size(), 6u);
  EXPECT_EQ(result.blocks.size(), 6u);
  EXPECT_EQ(result.throughputs.size(), 6u);
  EXPECT_GT(result.best_throughput, 0.0);
  EXPECT_GT(result.best_tile, 0);
  EXPECT_GT(result.best_block, 0);
  bool best_found = false;
  for (std::size_t i = 0; i < result.tiles.size(); ++i) {
    EXPECT_GT(result.throughputs[i], 0.0);
    EXPECT_LE(result.throughputs[i], result.best_throughput + 1e-9);
    if (result.tiles[i] == result.best_tile && result.blocks[i] == result.best_block) {
      best_found = true;
      EXPECT_DOUBLE_EQ(result.throughputs[i], result.best_throughput);
    }
  }
  EXPECT_TRUE(best_found);
}

TEST(Tuner, SweepReturnsBestCandidate)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 64, 9);
  const auto result = tune_tile_size_vgh(*coefs, {16, 32, 64}, /*ns=*/8, /*min_seconds=*/0.005);
  EXPECT_EQ(result.tiles.size(), 3u);
  EXPECT_EQ(result.throughputs.size(), 3u);
  EXPECT_GT(result.best_throughput, 0.0);
  bool best_found = false;
  for (std::size_t i = 0; i < result.tiles.size(); ++i) {
    EXPECT_GT(result.throughputs[i], 0.0);
    EXPECT_LE(result.throughputs[i], result.best_throughput + 1e-9);
    if (result.tiles[i] == result.best_tile) {
      best_found = true;
      EXPECT_DOUBLE_EQ(result.throughputs[i], result.best_throughput);
    }
  }
  EXPECT_TRUE(best_found);
}
