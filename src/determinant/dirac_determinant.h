// Slater-determinant engine (paper Eq. 2-4).
//
// Convention: A(i,j) = phi_i(r_j) — rows are orbitals, columns are electrons
// (paper Eq. 2).  A particle-by-particle move of electron e replaces column e
// with the freshly evaluated orbital vector u_n = phi_n(r_e'); the ratio
//
//   det A' / det A = sum_n u_n * Ainv(e, n)            (paper Eq. 3)
//
// is a contiguous dot product because we store Ainv row-major and the ratio
// reduces over row e (QMCPACK stores the transposed inverse for the same
// locality reason).  Accepted moves apply the Sherman-Morrison rank-1 update
// in O(N^2) instead of the O(N^3) re-inversion.
#ifndef MQC_DETERMINANT_DIRAC_DETERMINANT_H
#define MQC_DETERMINANT_DIRAC_DETERMINANT_H

#include <utility>
#include <vector>

#include "determinant/matrix.h"

namespace mqc {

class DiracDeterminant
{
public:
  DiracDeterminant() = default;

  /// Initialize from the orbital matrix A (O(N^3) inversion).
  /// Returns false if A is singular.
  bool build(const Matrix<double>& a);

  [[nodiscard]] int size() const noexcept { return ainv_.rows(); }
  [[nodiscard]] double log_det() const noexcept { return log_det_; }
  [[nodiscard]] double sign() const noexcept { return sign_; }
  [[nodiscard]] const Matrix<double>& inverse() const noexcept { return ainv_; }

  /// det ratio for replacing column @p e with orbital values @p u (length N).
  [[nodiscard]] double ratio(const double* u, int e) const;

  /// Accept the move: Sherman-Morrison update of Ainv and the log-det.
  /// @p u must be the same vector the ratio was computed with.
  void accept_move(const double* u, int e);

  /// O(N^3) recompute from a fresh orbital matrix (drift correction /
  /// verification path).
  bool recompute(const Matrix<double>& a) { return build(a); }

  /// Restore a previously captured state (qmc/checkpoint.cpp).  The inverse
  /// is installed verbatim — NOT rebuilt from an orbital matrix — because a
  /// resumed trajectory must continue from the bit-exact accumulated
  /// Sherman-Morrison state, which a fresh O(N^3) inversion would not match.
  void restore(Matrix<double> ainv, double log_det, double sign)
  {
    ainv_ = std::move(ainv);
    log_det_ = log_det;
    sign_ = sign;
    // Size the update scratch like build() would: a restored engine may
    // never have been built (walker resurrected from a snapshot blob).
    work_.assign(static_cast<std::size_t>(ainv_.rows()), 0.0);
  }

private:
  Matrix<double> ainv_;
  double log_det_ = 0.0;
  double sign_ = 1.0;
  std::vector<double> work_;       ///< scratch for the rank-1 update
  std::vector<double> row_e_copy_; ///< snapshot of the pivot row during updates
};

} // namespace mqc

#endif // MQC_DETERMINANT_DIRAC_DETERMINANT_H
