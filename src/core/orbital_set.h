// OrbitalSet — the single batched-first evaluation API over all spline
// engines (the QMCPACK lesson institutionalized as the batched SPOSet API,
// cf. Mathuriya et al., IPDPS 2017; Luo et al., arXiv:1805.07406).
//
// Every consumer of orbital evaluations — the per-walker driver, the crowd
// driver, the population-wide batched layer, the wave function — talks to
// one facade instead of picking among the engines' ~10 raw entry points
// (`evaluate_{v,vgl,vgh}`, `_w`, `_multi`, `_tile_multi`; those remain
// public for kernel benches and ablations but are internal API).  The facade
// is type-erased without virtual dispatch: a std::variant over non-owning
// engine pointers, so an OrbitalSet is two words, trivially copyable, and
// every call inlines into the selected engine's kernels.
//
// The API is batched-first: `evaluate(Request, Resource)` takes 1..P
// positions, a derivative level (V / VGL / VGH) and per-position output
// slots; a single-position call is simply the P = 1 case of the same path
// (or the allocation-free `evaluate_one` sugar).  `capabilities()` reports
// what the wrapped engine can do — native multi-position sweeps? how many
// tiles? which preferred position block? — so drivers make their
// single-vs-multi scheduling decision explicitly instead of silently
// falling back.  Scratch (the batch's weight sets, consumers' pointer
// tables) lives in an OrbitalResource owned by the caller — one per thread
// or per crowd — so the hot loop allocates nothing and no scratch hides in
// scattered function-local thread_locals.
//
// Dispatch is tuner-aware: set_pos_block() attaches the Wisdom-tuned
// position block P (core/tuner.h) and every multi-position request on a
// tiled engine is blocked accordingly; blocking only reorders independent
// per-(tile, position) kernel calls, so results are bit-for-bit identical
// for every P.
#ifndef MQC_CORE_ORBITAL_SET_H
#define MQC_CORE_ORBITAL_SET_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <variant>
#include <vector>

#include "common/config.h"
#include "common/contracts.h"
#include "common/threading.h"
#include "common/vec3.h"
#include "core/bspline_aos.h"
#include "core/bspline_soa.h"
#include "core/coef_storage.h"
#include "core/multi_bspline.h"
#include "core/weights.h"

namespace mqc {

/// Which mixed-precision engine pairing exists for an interface type T.
/// Mixed means: TStore = T coefficient tables, compute_type accumulation
/// (core/bspline_soa.h).  Only float has a wider compute partner today;
/// double-interface sets have no mixed variant (their native path IS the
/// full-precision reference).
template <typename T>
struct MixedPrecisionFor
{
  static constexpr bool available = false;
  using compute_type = T;
};

template <>
struct MixedPrecisionFor<float>
{
  static constexpr bool available = true;
  using compute_type = double;
};

/// Derivative level of an evaluation request.
enum class DerivLevel
{
  V,   ///< values only
  VGL, ///< values + gradients + Laplacians
  VGH  ///< values + gradients + symmetric Hessians
};

/// Which evaluation schedule a driver actually ran — the explicit,
/// capabilities-derived decision surfaced in results (no silent fallback).
enum class EvalPath
{
  SinglePosition, ///< one engine call per position
  MultiPosition   ///< multi-position sweeps (one coefficient pass per batch)
};

/// Memory layout family of the wrapped engine.
enum class OrbitalLayout
{
  AoS,   ///< baseline: AoS gradients/Hessians, no multi-position path
  SoA,   ///< SoA component streams
  AoSoA  ///< tiled SoA (MultiBspline)
};

/// What the wrapped engine can do, queried once by a driver to pick its
/// schedule (and by tests to assert the decision).
struct OrbitalCapabilities
{
  OrbitalLayout layout = OrbitalLayout::AoS;
  bool native_multi_eval = false; ///< has weight-precomputed multi-position sweeps
  int num_tiles = 1;              ///< coefficient tiles (1 for untiled engines)
  int preferred_pos_block = 0;    ///< tuned P for multi requests (0 = whole batch)
  int num_splines = 0;
  std::size_t padded_splines = 0;
  std::size_t out_stride = 0;     ///< natural component stride of the outputs
  /// Precision family of the wrapped engine (core/coef_storage.h): Native =
  /// storage and compute share the interface type; Mixed = narrow tables,
  /// wide accumulation.
  PrecisionPath precision = PrecisionPath::Native;
  /// Total coefficient-table bytes this engine streams per full-set sweep —
  /// the per-replica memory footprint a shard pins on its socket.
  std::size_t coef_table_bytes = 0;
};

/// Caller-owned scratch for batched evaluation: the batch's weight sets plus
/// pointer-table storage for consumers that gather per-position output slots
/// from walker buffers.  Keep one per thread (or per crowd) and reuse it —
/// capacity is sticky, so steady-state driver iterations allocate nothing.
template <typename T>
struct OrbitalResource
{
  std::vector<BsplineWeights3D<T>> weights;
  /// Wide weight sets for the mixed path (TCompute = double batches); kept
  /// separate so native and mixed engines sharing one resource never
  /// reinterpret each other's scratch.  Empty unless a mixed engine is used.
  std::vector<BsplineWeights3D<double>> weights_wide;
  std::vector<T*> v, g, lh; ///< consumer pointer tables (gather helpers below)
#ifdef MQC_CONTRACTS
  /// Contract state: true while an OrbitalSet::evaluate call owns this
  /// resource.  A second evaluation entering with the flag still set means
  /// two calls share one scratch object — the weight batch of the live call
  /// would be clobbered mid-evaluation (the aliasing the per-(thread, level)
  /// thread_instance() stack exists to prevent).
  bool contract_live = false;
#endif

  /// Ensure weight capacity for a batch of @p count positions.
  BsplineWeights3D<T>* weights_for(int count)
  {
    if (weights.size() < static_cast<std::size_t>(count))
      weights.resize(static_cast<std::size_t>(count));
    return weights.data();
  }

  /// Weight-type-generic variant: the engine's compute type selects the
  /// native batch or the wide (mixed-path) batch.
  template <typename WT>
  BsplineWeights3D<WT>* weights_buffer(int count)
  {
    if constexpr (std::is_same_v<WT, T>) {
      return weights_for(count);
    } else {
      if (weights_wide.size() < static_cast<std::size_t>(count))
        weights_wide.resize(static_cast<std::size_t>(count));
      return weights_wide.data();
    }
  }

  void resize_tables(int count)
  {
    const auto n = static_cast<std::size_t>(count);
    v.resize(n);
    g.resize(n);
    lh.resize(n);
  }

  /// Shared per-thread instance for call sites without a natural owner
  /// (population-wide convenience wrappers in core/batched.h).  Drivers with
  /// per-crowd or per-walker state should own their resource instead.
  ///
  /// Instances are keyed by the OpenMP nesting level, not one per thread:
  /// under nested parallelism the master of an inner team IS the outer
  /// thread, so a single thread_local would hand a nested facade call the
  /// same object an enclosing call is still using (its weight batch would be
  /// clobbered mid-evaluation).  One instance per (thread, nesting level)
  /// makes the outer and nested calls disjoint; the stack is small (nesting
  /// depth, in practice <= 2) and sticky like the resources themselves.
  static OrbitalResource& thread_instance()
  {
    static thread_local std::vector<std::unique_ptr<OrbitalResource>> per_level;
    const auto level = static_cast<std::size_t>(nest_level());
    if (per_level.size() <= level)
      per_level.resize(level + 1);
    auto& slot = per_level[level];
    if (!slot)
      slot = std::make_unique<OrbitalResource>();
    return *slot;
  }
};

/// One batched evaluation: @p count positions, one derivative level, one
/// output slot per position.  `g`/`lh` may be null for DerivLevel::V; `lh`
/// holds Laplacian slots for VGL and Hessian slots for VGH.  Component
/// layout inside a slot is the engine's native one (SoA streams with
/// `stride` for SoA/AoSoA engines; packed AoS groups for the AoS baseline,
/// which ignores `stride`).
template <typename T>
struct OrbitalEvalRequest
{
  DerivLevel deriv = DerivLevel::V;
  const Vec3<T>* positions = nullptr;
  int count = 0;
  T* const* v = nullptr;
  T* const* g = nullptr;
  T* const* lh = nullptr;
  std::size_t stride = 0;
  /// Position block for tiled engines: how many positions share one pass
  /// over a tile's coefficient slice.  0 = facade default (the tuned block
  /// if one was attached, else the whole batch).  Any value gives
  /// bit-identical results; it only changes the sweep order.
  int pos_block = 0;
  /// Parallelize the sweep over (tile, position-block) work items with
  /// OpenMP.  Whether that means a fresh machine-wide region or a nested
  /// inner team is the caller's decision, carried by `team` below.
  bool parallel = false;
  /// The caller's thread team for a parallel sweep (common/threading.h):
  /// how many threads this request may occupy.  Defaults to
  /// whole_machine() — the right size for ownerless top-level call sites
  /// (core/batched.h) — while drivers that hold a ThreadPartition pass
  /// their inner team, so a crowd's facade calls fork exactly the threads
  /// the partition assigned to that crowd and never re-derive the machine
  /// size mid-region.  A team of 1 runs the serial sweep (no region is
  /// opened at all).  Ignored when `parallel` is false.  Any team size
  /// gives bit-identical results: teams only distribute independent
  /// per-(tile, position) work items.
  TeamHandle team = TeamHandle::whole_machine();
};

/// Resolve a position-block request against the batch size: pb <= 0 means
/// "one block spanning the whole batch" (maximum input reuse), anything
/// else is clamped to [1, count].
inline int resolve_pos_block(int pos_block, int count)
{
  if (pos_block <= 0)
    return count;
  return std::min(pos_block, count);
}

template <typename T>
class OrbitalSet
{
public:
  OrbitalSet() = default;
  OrbitalSet(const BsplineAoS<T>& engine) : engine_(&engine) {}
  OrbitalSet(const BsplineSoA<T>& engine) : engine_(&engine) {}
  OrbitalSet(const MultiBspline<T>& engine) : engine_(&engine) {}

  /// Mixed-precision engines (narrow tables, wide accumulation) — only
  /// where a wider compute partner exists for T (MixedPrecisionFor).
  template <typename U = T>
    requires MixedPrecisionFor<U>::available
  OrbitalSet(const BsplineSoA<U, typename MixedPrecisionFor<U>::compute_type>& engine)
      : engine_(&engine)
  {
  }
  template <typename U = T>
    requires MixedPrecisionFor<U>::available
  OrbitalSet(const MultiBspline<U, typename MixedPrecisionFor<U>::compute_type>& engine)
      : engine_(&engine)
  {
  }

  [[nodiscard]] bool valid() const noexcept
  {
    return !std::holds_alternative<std::monostate>(engine_);
  }

  /// Attach the tuned position block (Wisdom entry, core/tuner.h); consulted
  /// whenever a multi-position request leaves pos_block at 0.
  void set_pos_block(int pb) noexcept { pos_block_ = pb; }
  [[nodiscard]] int pos_block() const noexcept { return pos_block_; }

  [[nodiscard]] OrbitalCapabilities capabilities() const
  {
    OrbitalCapabilities caps;
    caps.preferred_pos_block = pos_block_;
    if (const auto* e = aos()) {
      caps.layout = OrbitalLayout::AoS;
      caps.native_multi_eval = false;
      caps.num_splines = (*e)->num_splines();
      caps.padded_splines = (*e)->padded_splines();
      caps.out_stride = (*e)->padded_splines();
      caps.coef_table_bytes = (*e)->coefs().size_bytes();
    } else if (const auto* e = soa()) {
      caps.layout = OrbitalLayout::SoA;
      caps.native_multi_eval = true;
      caps.num_splines = (*e)->num_splines();
      caps.padded_splines = (*e)->padded_splines();
      caps.out_stride = (*e)->out_stride();
      caps.coef_table_bytes = (*e)->coef_bytes();
    } else if (const auto* e = aosoa()) {
      caps.layout = OrbitalLayout::AoSoA;
      caps.native_multi_eval = true;
      caps.num_tiles = (*e)->num_tiles();
      caps.num_splines = (*e)->num_splines();
      caps.padded_splines = (*e)->padded_splines();
      caps.out_stride = (*e)->out_stride();
      caps.coef_table_bytes = (*e)->coef_bytes();
    } else if constexpr (MixedPrecisionFor<T>::available) {
      if (const auto* e = soa_mixed()) {
        caps.layout = OrbitalLayout::SoA;
        caps.native_multi_eval = true;
        caps.num_splines = (*e)->num_splines();
        caps.padded_splines = (*e)->padded_splines();
        caps.out_stride = (*e)->out_stride();
        caps.precision = PrecisionPath::Mixed;
        caps.coef_table_bytes = (*e)->coef_bytes();
      } else if (const auto* e = aosoa_mixed()) {
        caps.layout = OrbitalLayout::AoSoA;
        caps.native_multi_eval = true;
        caps.num_tiles = (*e)->num_tiles();
        caps.num_splines = (*e)->num_splines();
        caps.padded_splines = (*e)->padded_splines();
        caps.out_stride = (*e)->out_stride();
        caps.precision = PrecisionPath::Mixed;
        caps.coef_table_bytes = (*e)->coef_bytes();
      }
    }
    return caps;
  }

  [[nodiscard]] const Grid3D<T>& grid() const
  {
    assert(valid());
    if (const auto* e = aos())
      return (*e)->coefs().grid();
    if (const auto* e = soa())
      return (*e)->coefs().grid();
    if (const auto* e = aosoa())
      return (*e)->grid();
    if constexpr (MixedPrecisionFor<T>::available) {
      if (const auto* e = soa_mixed())
        return (*e)->coefs().grid();
      return (*aosoa_mixed())->grid();
    } else {
      return (*aosoa())->grid(); // unreachable: valid() excludes this
    }
  }

  /// The batched entry point: evaluate all positions of @p rq at the
  /// requested derivative level.  One weight set per position is computed
  /// into @p res, then the engine's best sweep runs — per-position kernels
  /// on the AoS baseline, multi-position block sweeps (pos_block positions
  /// per coefficient pass) on the SoA/AoSoA engines.  Results are
  /// bit-for-bit identical to the corresponding single-position calls.
  void evaluate(const OrbitalEvalRequest<T>& rq, OrbitalResource<T>& res) const
  {
    assert(valid());
    if (rq.count <= 0)
      return;
    assert(rq.positions != nullptr && rq.v != nullptr);
    assert((rq.deriv == DerivLevel::V) || (rq.g != nullptr && rq.lh != nullptr));
#ifdef MQC_CONTRACTS
    mqc_contract(!res.contract_live,
                 "OrbitalResource re-entered: a live evaluation on nesting level %d still owns "
                 "this resource; nested or concurrent facade calls must each own their own "
                 "resource (thread_instance() hands out one per (thread, level))",
                 nest_level());
    res.contract_live = true;
    struct LiveGuard
    {
      bool* live;
      ~LiveGuard() { *live = false; }
    } contract_guard{&res.contract_live};
    contract_check_request(rq);
#endif
    if (const auto* e = aos())
      evaluate_aos(**e, rq);
    else if (const auto* e = soa())
      evaluate_soa(**e, rq, res);
    else if (const auto* e = aosoa())
      evaluate_aosoa(**e, rq, res);
    else if constexpr (MixedPrecisionFor<T>::available) {
      if (const auto* e = soa_mixed())
        evaluate_soa(**e, rq, res);
      else
        evaluate_aosoa(**aosoa_mixed(), rq, res);
    }
  }

  /// Single-position sugar: the P = 1 case of evaluate(), with no resource
  /// needed (the one weight set lives on the stack).  @p g / @p lh may be
  /// null for DerivLevel::V.
  void evaluate_one(DerivLevel deriv, const Vec3<T>& r, T* v, T* g, T* lh,
                    std::size_t stride) const
  {
    assert(valid());
    if (const auto* pe = aos()) {
      const auto& e = **pe;
      switch (deriv) {
      case DerivLevel::V:
        e.evaluate_v(r.x, r.y, r.z, v);
        return;
      case DerivLevel::VGL:
        e.evaluate_vgl(r.x, r.y, r.z, v, g, lh);
        return;
      case DerivLevel::VGH:
        e.evaluate_vgh(r.x, r.y, r.z, v, g, lh);
        return;
      }
    } else if (const auto* pe = soa()) {
      evaluate_one_strided(**pe, deriv, r, v, g, lh, stride);
    } else if (const auto* pe = aosoa()) {
      evaluate_one_strided(**pe, deriv, r, v, g, lh, stride);
    } else if constexpr (MixedPrecisionFor<T>::available) {
      if (const auto* e = soa_mixed())
        evaluate_one_strided(**e, deriv, r, v, g, lh, stride);
      else
        evaluate_one_strided(**aosoa_mixed(), deriv, r, v, g, lh, stride);
    }
  }

private:
  using MixedCompute = typename MixedPrecisionFor<T>::compute_type;
  using MixedSoAEngine = BsplineSoA<T, MixedCompute>;
  using MixedAoSoAEngine = MultiBspline<T, MixedCompute>;
  /// Distinct empty tags stand in for the mixed alternatives when T has no
  /// mixed pairing — they keep the variant's alternative list unique (for
  /// T = double the "mixed" engine types would collapse onto the native
  /// ones) while never being constructed.
  struct NoMixedSoATag
  {
  };
  struct NoMixedAoSoATag
  {
  };
  using MixedSoAAlt = std::conditional_t<MixedPrecisionFor<T>::available, const MixedSoAEngine*,
                                         NoMixedSoATag>;
  using MixedAoSoAAlt = std::conditional_t<MixedPrecisionFor<T>::available,
                                           const MixedAoSoAEngine*, NoMixedAoSoATag>;
  using EngineRef = std::variant<std::monostate, const BsplineAoS<T>*, const BsplineSoA<T>*,
                                 const MultiBspline<T>*, MixedSoAAlt, MixedAoSoAAlt>;

  [[nodiscard]] const BsplineAoS<T>* const* aos() const noexcept
  {
    return std::get_if<const BsplineAoS<T>*>(&engine_);
  }
  [[nodiscard]] const BsplineSoA<T>* const* soa() const noexcept
  {
    return std::get_if<const BsplineSoA<T>*>(&engine_);
  }
  [[nodiscard]] const MultiBspline<T>* const* aosoa() const noexcept
  {
    return std::get_if<const MultiBspline<T>*>(&engine_);
  }
  // Only instantiated (from if-constexpr-guarded call sites) when T has a
  // mixed pairing, i.e. when the mixed pointer types are real alternatives.
  [[nodiscard]] const MixedSoAEngine* const* soa_mixed() const noexcept
  {
    return std::get_if<const MixedSoAEngine*>(&engine_);
  }
  [[nodiscard]] const MixedAoSoAEngine* const* aosoa_mixed() const noexcept
  {
    return std::get_if<const MixedAoSoAEngine*>(&engine_);
  }

  /// Single-position dispatch shared by every strided-output engine (native
  /// and mixed SoA/AoSoA — identical TStore signatures).
  template <typename Engine>
  void evaluate_one_strided(const Engine& e, DerivLevel deriv, const Vec3<T>& r, T* v, T* g,
                            T* lh, std::size_t stride) const
  {
    switch (deriv) {
    case DerivLevel::V:
      e.evaluate_v(r.x, r.y, r.z, v);
      return;
    case DerivLevel::VGL:
      e.evaluate_vgl(r.x, r.y, r.z, v, g, lh, stride);
      return;
    case DerivLevel::VGH:
      e.evaluate_vgh(r.x, r.y, r.z, v, g, lh, stride);
      return;
    }
  }

#ifdef MQC_CONTRACTS
  /// Seam validation of a batched request (contracts builds only): every
  /// position owns a non-null output slot, the component stride honours the
  /// engine contract, and no two positions' value slots alias.  Runs before
  /// any kernel touches memory, so a malformed request aborts with the
  /// request-level diagnostic instead of corrupting a neighbour's outputs.
  void contract_check_request(const OrbitalEvalRequest<T>& rq) const
  {
    const OrbitalCapabilities caps = capabilities();
    const bool has_derivs = rq.deriv != DerivLevel::V;
    for (int p = 0; p < rq.count; ++p) {
      mqc_contract(rq.v[p] != nullptr, "OrbitalEvalRequest value slot v[%d] is null", p);
      if (has_derivs) {
        mqc_contract(rq.g[p] != nullptr, "OrbitalEvalRequest gradient slot g[%d] is null", p);
        mqc_contract(rq.lh[p] != nullptr,
                     "OrbitalEvalRequest Laplacian/Hessian slot lh[%d] is null", p);
      }
    }
    // Component stride: the SoA/AoSoA kernels sweep padded_splines() entries
    // per component and promise `omp simd aligned` on every stream, so the
    // documented engine contract is stride >= padded and lane-aligned (the
    // AoS baseline packs its own groups and ignores stride).
    if (caps.layout != OrbitalLayout::AoS && has_derivs)
      mqc_contract(rq.stride >= caps.padded_splines && rq.stride % simd_lanes<T> == 0,
                   "OrbitalEvalRequest stride %zu violates the engine contract "
                   "(>= padded_splines %zu and a multiple of %zu lanes)",
                   rq.stride, caps.padded_splines, simd_lanes<T>);
    // Value-slot overlap: each position writes padded_splines() values (the
    // SIMD sweeps store full padded rows; the AoS baseline num_splines —
    // use the engine's write extent), so distinct positions need disjoint
    // extents.  Sorting makes the check O(P log P); P is a position block.
    const std::size_t extent = caps.layout == OrbitalLayout::AoS
                                   ? static_cast<std::size_t>(caps.num_splines)
                                   : caps.padded_splines;
    std::vector<std::pair<const T*, int>> slots;
    slots.reserve(static_cast<std::size_t>(rq.count));
    for (int p = 0; p < rq.count; ++p)
      slots.emplace_back(rq.v[p], p);
    std::sort(slots.begin(), slots.end());
    for (std::size_t i = 1; i < slots.size(); ++i) {
      const auto gap = static_cast<std::size_t>(slots[i].first - slots[i - 1].first);
      mqc_contract(gap >= extent,
                   "OrbitalEvalRequest value slots of positions %d and %d overlap "
                   "(%zu elements apart, write extent %zu): every position in a batch "
                   "needs its own output slot",
                   slots[i - 1].second, slots[i].second, gap, extent);
    }
  }
#endif

  /// AoS baseline: no multi-position path — one single-position kernel call
  /// per position (the decision capabilities() exposes as
  /// native_multi_eval == false).  `stride` is ignored: outputs use the
  /// engine's packed AoS component groups.
  void evaluate_aos(const BsplineAoS<T>& e, const OrbitalEvalRequest<T>& rq) const
  {
    auto body = [&](int p) {
      const Vec3<T>& r = rq.positions[p];
      switch (rq.deriv) {
      case DerivLevel::V:
        e.evaluate_v(r.x, r.y, r.z, rq.v[p]);
        break;
      case DerivLevel::VGL:
        e.evaluate_vgl(r.x, r.y, r.z, rq.v[p], rq.g[p], rq.lh[p]);
        break;
      case DerivLevel::VGH:
        e.evaluate_vgh(r.x, r.y, r.z, rq.v[p], rq.g[p], rq.lh[p]);
        break;
      }
    };
    const int nth = rq.parallel ? rq.team.resolve() : 1;
    if (nth > 1) {
#pragma omp parallel for schedule(static) num_threads(nth)
      for (int p = 0; p < rq.count; ++p)
        body(p);
    } else {
      for (int p = 0; p < rq.count; ++p)
        body(p);
    }
  }

  template <typename Engine>
  void evaluate_soa(const Engine& e, const OrbitalEvalRequest<T>& rq,
                    OrbitalResource<T>& res) const
  {
    using WT = typename Engine::compute_type;
    BsplineWeights3D<WT>* w = res.template weights_buffer<WT>(rq.count);
    if (rq.deriv == DerivLevel::V)
      compute_weights_v_batch(e.eval_grid(), rq.positions, rq.count, w);
    else
      compute_weights_vgh_batch(e.eval_grid(), rq.positions, rq.count, w);
    const int nth = rq.parallel ? rq.team.resolve() : 1;
    if (nth <= 1) {
      switch (rq.deriv) {
      case DerivLevel::V:
        e.evaluate_v_multi(w, rq.count, rq.v);
        break;
      case DerivLevel::VGL:
        e.evaluate_vgl_multi(w, rq.count, rq.v, rq.g, rq.lh, rq.stride);
        break;
      case DerivLevel::VGH:
        e.evaluate_vgh_multi(w, rq.count, rq.v, rq.g, rq.lh, rq.stride);
        break;
      }
      return;
    }
#pragma omp parallel for schedule(static) num_threads(nth)
    for (int p = 0; p < rq.count; ++p) {
      switch (rq.deriv) {
      case DerivLevel::V:
        e.evaluate_v_w(w[p], rq.v[p]);
        break;
      case DerivLevel::VGL:
        e.evaluate_vgl_w(w[p], rq.v[p], rq.g[p], rq.lh[p], rq.stride);
        break;
      case DerivLevel::VGH:
        e.evaluate_vgh_w(w[p], rq.v[p], rq.g[p], rq.lh[p], rq.stride);
        break;
      }
    }
  }

  /// Tiled engine: weights once per position, then tile-outer /
  /// position-block-inner sweeps — each tile's 4*Ng*Nb-byte coefficient
  /// slice is streamed from memory once per block of P positions and reused
  /// from cache (the core of the paper's AoSoA analysis, extended across
  /// positions).  `parallel` distributes (tile, block) work items.
  template <typename Engine>
  void evaluate_aosoa(const Engine& e, const OrbitalEvalRequest<T>& rq,
                      OrbitalResource<T>& res) const
  {
    using WT = typename Engine::compute_type;
    BsplineWeights3D<WT>* w = res.template weights_buffer<WT>(rq.count);
    if (rq.deriv == DerivLevel::V)
      compute_weights_v_batch(e.eval_grid(), rq.positions, rq.count, w);
    else
      compute_weights_vgh_batch(e.eval_grid(), rq.positions, rq.count, w);
    const int pb = resolve_pos_block(rq.pos_block != 0 ? rq.pos_block : pos_block_, rq.count);
    const int nblocks = (rq.count + pb - 1) / pb;
    const int nt = e.num_tiles();
    auto body = [&](int t, int b) {
      const int first = b * pb;
      const int count = std::min(pb, rq.count - first);
      switch (rq.deriv) {
      case DerivLevel::V:
        e.evaluate_v_tile_multi(t, w + first, count, rq.v + first);
        break;
      case DerivLevel::VGL:
        e.evaluate_vgl_tile_multi(t, w + first, count, rq.v + first, rq.g + first, rq.lh + first,
                                  rq.stride);
        break;
      case DerivLevel::VGH:
        e.evaluate_vgh_tile_multi(t, w + first, count, rq.v + first, rq.g + first, rq.lh + first,
                                  rq.stride);
        break;
      }
    };
    const int nth = rq.parallel ? rq.team.resolve() : 1;
    if (nth > 1) {
#pragma omp parallel for collapse(2) schedule(static) num_threads(nth)
      for (int t = 0; t < nt; ++t)
        for (int b = 0; b < nblocks; ++b)
          body(t, b);
    } else {
      for (int t = 0; t < nt; ++t)
        for (int b = 0; b < nblocks; ++b)
          body(t, b);
    }
  }

  EngineRef engine_;
  int pos_block_ = 0;
};

} // namespace mqc

#endif // MQC_CORE_ORBITAL_SET_H
