// Crowd driver sweep: crowd size x determinant delay rank, against the
// per-walker driver on the identical trajectory (same seeds, same walker
// population — the equivalence the test suite enforces bit-for-bit).
//
// The crowd is both the batching unit (one multi-position spline sweep per
// tile per electron move) and the threading unit (one crowd per thread), so
// on a fixed walker population crowd_size trades thread count against batch
// depth: crowd_size = 1 reproduces the per-walker schedule, crowd_size = Nw
// runs one thread with the deepest tile-resident batches.  delay_rank
// additionally swaps the per-move Sherman-Morrison determinant update for
// the delayed rank-k window (McDaniel et al.).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "common/threading.h"
#include "common/timer.h"
#include "determinant/det_update.h"
#include "qmc/miniqmc_driver.h"
#include "bench_common.h"

namespace {

using namespace mqc;

/// Microbench for the determinant-update engines at production N: time M
/// accepted column updates (ratio + accept, plus a final flush so the
/// delayed engine's amortized cost includes its blocked rank-k application)
/// and report microseconds per update.  This locates the crossover where
/// delay_rank starts winning — the per-move Sherman-Morrison update is a
/// rank-1 sweep of the N^2 inverse per accept, while the delayed engine
/// touches k small panels per accept and sweeps the inverse once per k
/// accepts in the tiled BLAS3-style flush.
double us_per_update(int n, int delay_rank, int updates, std::uint64_t seed,
                     TeamHandle flush_team = TeamHandle::serial())
{
  Xoshiro256 rng(seed);
  Matrix<double> a(n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a(i, j) = rng.uniform(-0.5, 0.5) + (i == j ? 4.0 : 0.0); // well conditioned
  DetUpdater det(delay_rank);
  if (!det.build(a))
    return 0.0;
  det.set_team(flush_team);

  // Pre-generate every update column OUTSIDE the timed region: the O(N)
  // rng fill per update is comparable to the delayed engine's O(kN) accept
  // cost and would flatten exactly the crossover this table locates.
  std::vector<std::vector<double>> us(static_cast<std::size_t>(updates));
  for (int m = 0; m < updates; ++m) {
    const int col = m % n;
    auto& u = us[static_cast<std::size_t>(m)];
    u.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      u[static_cast<std::size_t>(i)] = rng.uniform(-0.5, 0.5) + (i == col ? 4.0 : 0.0);
  }

  Stopwatch watch;
  for (int m = 0; m < updates; ++m) {
    const int col = m % n;
    const double* u = us[static_cast<std::size_t>(m)].data();
    (void)det.ratio(u, col);
    det.accept_move(u, col);
  }
  det.flush();
  return watch.elapsed() * 1e6 / updates;
}

} // namespace

int main(int argc, char** argv)
{
  using namespace mqc;
  auto json = bench::JsonReporter::from_args(argc, argv, "crowd");
  const char* env = std::getenv("MQC_BENCH_SCALE");
  const bool full = env && std::string(env) == "full";

  MiniQMCConfig cfg;
  cfg.supercell = full ? std::array<int, 3>{4, 4, 1} : std::array<int, 3>{3, 3, 1};
  cfg.grid_size = full ? 48 : 32;
  cfg.steps = full ? 4 : 2;
  cfg.tile_size = 64;
  cfg.spo = SpoLayout::AoSoA;
  cfg.optimized_dt_jastrow = true;
  cfg.num_walkers = std::max(8, max_threads());

  // Best of three runs per configuration: section times are milliseconds and
  // shared-VM steal time can inflate any single run.
  auto best_run = [](MiniQMCConfig c) {
    MiniQMCResult best = run_miniqmc(c);
    for (int attempt = 1; attempt < 3; ++attempt) {
      auto r = run_miniqmc(c);
      if (r.seconds < best.seconds)
        best = std::move(r);
    }
    return best;
  };

  std::vector<int> crowd_sizes{1, 2, 4, cfg.num_walkers};
  crowd_sizes.erase(std::remove_if(crowd_sizes.begin(), crowd_sizes.end(),
                                   [&](int cs) { return cs > cfg.num_walkers; }),
                    crowd_sizes.end());
  crowd_sizes.erase(std::unique(crowd_sizes.begin(), crowd_sizes.end()), crowd_sizes.end());
  const std::vector<int> delay_ranks{0, 4, 8};

  print_banner(std::cout, "Crowd driver: crowd size x determinant delay rank");
  std::cout << "system: graphite " << cfg.supercell[0] << 'x' << cfg.supercell[1] << 'x'
            << cfg.supercell[2] << ", AoSoA tiles of " << cfg.tile_size << ", "
            << cfg.num_walkers << " walkers, " << cfg.steps << " steps\n"
            << "baseline per delay rank: the per-walker driver (one walker per thread)\n\n";

  TablePrinter tp({"delay k", "crowd size", "total (s)", "B-splines (s)", "speedup vs per-walker"});
  for (int k : delay_ranks) {
    MiniQMCConfig base_cfg = cfg;
    base_cfg.driver = DriverMode::PerWalker;
    base_cfg.delay_rank = k;
    const auto base = best_run(base_cfg);
    tp.add_row({TablePrinter::cell(k), "per-walker", TablePrinter::cell(base.seconds, 4),
                TablePrinter::cell(base.profile.seconds(kSectionBspline), 4),
                TablePrinter::cell(1.0, 2)});
    json.add("perwalker_delay" + std::to_string(k) + "_seconds", base.seconds, "s");
    for (int cs : crowd_sizes) {
      MiniQMCConfig ccfg = cfg;
      ccfg.driver = DriverMode::Crowd;
      ccfg.crowd_size = cs;
      ccfg.delay_rank = k;
      const auto crowd = best_run(ccfg);
      const double speedup = crowd.seconds > 0 ? base.seconds / crowd.seconds : 0.0;
      tp.add_row({TablePrinter::cell(k), TablePrinter::cell(cs),
                  TablePrinter::cell(crowd.seconds, 4),
                  TablePrinter::cell(crowd.profile.seconds(kSectionBspline), 4),
                  TablePrinter::cell(speedup, 2)});
      json.add("crowd" + std::to_string(cs) + "_delay" + std::to_string(k) + "_seconds",
               crowd.seconds, "s");
      json.add("crowd" + std::to_string(cs) + "_delay" + std::to_string(k) + "_speedup", speedup,
               "x");
    }
  }
  tp.print(std::cout);
  std::cout << "\nReading guide: larger crowds deepen the per-tile position batch (coefficient\n"
               "slices stay cache-resident across the crowd) at the cost of thread-level\n"
               "parallelism; on many-core hosts mid-size crowds win, on few-core hosts the\n"
               "deepest crowds do.\n";

  // ---- nested vs flat: does the inner team win back the idle cores? ------
  // One deep crowd (the best batching shape) leaves every core but one idle
  // under the flat schedule; the nested partition hands the leftovers to the
  // crowd's facade sweeps as an inner team.  Paired runs on the identical
  // trajectory; the partition that actually engaged is printed and emitted
  // as --json rows (nested_inner_threads > 1 proves the nested path ran,
  // not a serialized fallback — CI consumes exactly that).
  print_banner(std::cout, "Nested partition vs flat: one deep crowd x inner team");
  {
    MiniQMCConfig ncfg = cfg;
    ncfg.driver = DriverMode::Crowd;
    ncfg.crowd_size = 0; // one crowd spanning the population
    ncfg.delay_rank = 8; // threaded flushes engage too
    ncfg.inner_threads = 1;
    const auto flat = best_run(ncfg);
    ncfg.inner_threads = 0; // auto: the topology partition
    const auto nested = best_run(ncfg);
    const double speedup = nested.seconds > 0 ? flat.seconds / nested.seconds : 0.0;
    TablePrinter np({"schedule", "partition", "team path", "total (s)", "B-splines (s)",
                     "speedup vs flat"});
    auto partition_cell = [](const MiniQMCResult& r) {
      return std::to_string(r.outer_threads_used) + "x" + std::to_string(r.inner_threads_used);
    };
    np.add_row({"flat (inner=1)", partition_cell(flat), team_path_name(flat.team_path),
                TablePrinter::cell(flat.seconds, 4),
                TablePrinter::cell(flat.profile.seconds(kSectionBspline), 4),
                TablePrinter::cell(1.0, 2)});
    np.add_row({"nested (inner=auto)", partition_cell(nested), team_path_name(nested.team_path),
                TablePrinter::cell(nested.seconds, 4),
                TablePrinter::cell(nested.profile.seconds(kSectionBspline), 4),
                TablePrinter::cell(speedup, 2)});
    np.print(std::cout);
    std::cout << "\nReading guide: on a multi-core host the auto partition resolves an inner\n"
                 "team > 1 (nested_inner_threads row) and the nested schedule re-occupies the\n"
                 "cores the deep crowd left idle; on a single-core host it resolves to 1 and\n"
                 "both rows coincide.  Trajectories are bit-for-bit identical either way.\n";
    json.add("nested_flat_seconds", flat.seconds, "s");
    json.add("nested_nested_seconds", nested.seconds, "s");
    json.add("nested_vs_flat_speedup", speedup, "x");
    json.add("nested_inner_threads", nested.inner_threads_used, "");
    json.add("nested_outer_threads", nested.outer_threads_used, "");
    json.add("nested_team_forked", nested.team_path == TeamPath::NestedInner ? 1.0 : 0.0, "");
  }

  // ---- checkpoint cadence: interval=1 must stay within noise of final-only
  // Paired runs on the identical trajectory (snapshotting is an observer):
  // interval=0 writes only the end-of-run snapshot, interval=1 writes at
  // EVERY step boundary.  The ratio row is gated in CI — it would crater if
  // per-step snapshots dragged walker-invariant work (scratch/pointer-table
  // rebuilds) back into the epoch loop, which is exactly the regression this
  // pair exists to catch.
  print_banner(std::cout, "Checkpoint cadence: per-step snapshots vs final-only");
  {
    const std::string ckpt_path = (std::filesystem::temp_directory_path() /
                                   "mqc_bench_crowd_ckpt.tmp").string();
    MiniQMCConfig kcfg = cfg;
    kcfg.driver = DriverMode::Crowd;
    kcfg.crowd_size = 4;
    kcfg.delay_rank = 4;
    kcfg.checkpoint_path = ckpt_path;
    kcfg.checkpoint_interval = 0; // end-of-run snapshot only
    const auto final_only = best_run(kcfg);
    kcfg.checkpoint_interval = 1; // snapshot at every step boundary
    const auto every_step = best_run(kcfg);
    std::remove(ckpt_path.c_str());
    std::remove((ckpt_path + ".prev").c_str());
    const double ratio = every_step.seconds > 0 ? final_only.seconds / every_step.seconds : 0.0;
    TablePrinter kp({"cadence", "snapshots", "total (s)", "vs final-only"});
    kp.add_row({"final-only (interval=0)", TablePrinter::cell(final_only.checkpoints_written),
                TablePrinter::cell(final_only.seconds, 4), TablePrinter::cell(1.0, 2)});
    kp.add_row({"every step (interval=1)", TablePrinter::cell(every_step.checkpoints_written),
                TablePrinter::cell(every_step.seconds, 4), TablePrinter::cell(ratio, 2)});
    kp.print(std::cout);
    std::cout << "\nReading guide: the epoch loop re-enters once per step at interval=1; the\n"
                 "walker-invariant crowd scratch (gathered pointer tables) is built once at\n"
                 "init, so the only added cost is serialization + the file write itself.\n";
    json.add("ckpt_interval0_seconds", final_only.seconds, "s");
    json.add("ckpt_interval1_seconds", every_step.seconds, "s");
    json.add("ckpt_interval1_vs_final_ratio", ratio, "x");
  }

  // ---- determinant-update crossover: where delay_rank starts winning -----
  // Isolated from the driver so production N is affordable: microseconds per
  // accepted column update, Sherman-Morrison (k<=1) vs the delayed rank-k
  // window with its tiled BLAS3-style flush.
  print_banner(std::cout, "Determinant updates: us/update, Sherman-Morrison vs delayed rank-k");
  const std::vector<int> det_sizes = full ? std::vector<int>{256, 512, 1024}
                                          : std::vector<int>{128, 256, 512};
  const std::vector<int> det_ranks{1, 4, 8, 16, 32};
  const int updates = 96;
  // Threaded-flush column: the same delayed engine with the machine's auto
  // inner team distributing the flush's column blocks (bit-identical, only
  // faster where the partition resolves > 1 thread).
  const int flush_team = ThreadPartition::resolve(/*outer_work=*/1).inner;
  const int flush_k = 16;
  TablePrinter dt({"N", "k=1 (SM)", "k=4", "k=8", "k=16", "k=32",
                   "k=16 team=" + std::to_string(flush_team), "best k"});
  for (int n : det_sizes) {
    std::vector<std::string> row{TablePrinter::cell(n)};
    double best = 0.0;
    int best_k = 0;
    for (int k : det_ranks) {
      const double us = us_per_update(n, k, updates, 99 + static_cast<std::uint64_t>(n));
      row.push_back(TablePrinter::cell(us, 1));
      json.add("det_n" + std::to_string(n) + "_k" + std::to_string(k) + "_us_per_update", us,
               "us");
      if (best_k == 0 || us < best) {
        best = us;
        best_k = k;
      }
    }
    const double us_team = us_per_update(n, flush_k, updates, 99 + static_cast<std::uint64_t>(n),
                                         TeamHandle::of(flush_team));
    row.push_back(TablePrinter::cell(us_team, 1));
    json.add("det_n" + std::to_string(n) + "_k" + std::to_string(flush_k) +
                 "_teamflush_us_per_update",
             us_team, "us");
    row.push_back(TablePrinter::cell(best_k));
    dt.add_row(row);
    json.add("det_n" + std::to_string(n) + "_best_delay_rank", best_k, "");
  }
  json.add("det_flush_team", flush_team, "");
  dt.print(std::cout);
  std::cout << "\nReading guide: Sherman-Morrison sweeps the N^2 inverse on every accept; the\n"
               "delayed engine keeps accepts at O(kN) and sweeps the inverse once per k\n"
               "accepts in the blocked flush, so its win grows with N until the k x N panels\n"
               "fall out of cache.  The crossover N is where the \"best k\" column leaves 1.\n"
               "The team column threads the flush's column blocks over the auto inner team\n"
               "(bit-identical results; it only helps once N spans several 256-column blocks\n"
               "and the partition resolves more than one thread).\n";
  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
