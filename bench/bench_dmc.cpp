// DMC branching driver bench: dynamic-population throughput and the cost of
// the branching machinery itself.
//
// Two questions with CI-gated answers:
//   * walkers/sec vs population size — how does full-DMC sweep throughput
//     scale as the target population grows (the per-generation work is
//     walkers * electrons; the branch step is O(walkers))?
//   * branch-step overhead — what does the DMC scaffolding (drift VGL
//     batches, weight updates, clone/kill, re-blocking) cost over the
//     identical trajectory volume swept by the fixed-population replay
//     oracle?  The ratio is replay/full of generation throughput: near 1
//     means the drift+branch machinery rides along for ~free; it is the
//     CI-gated "x" row because both sides run in this process on the same
//     host (host-independent evidence, like the other paired ratios).
//
// Replay-vs-VMC bit-equality and full-DMC determinism are enforced by
// tests/test_dmc.cpp; these rows measure only time.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/threading.h"
#include "common/timer.h"
#include "qmc/miniqmc_driver.h"
#include "bench_common.h"

namespace {

using namespace mqc;

/// Best-of-three run; returns seconds and (via out) the final result.
double best_run_seconds(const MiniQMCConfig& cfg, MiniQMCResult& out)
{
  double best = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    Stopwatch watch;
    MiniQMCResult r = run_miniqmc(cfg);
    const double s = watch.elapsed();
    if (attempt == 0 || s < best) {
      best = s;
      out = std::move(r);
    }
  }
  return best;
}

/// Walker-generations swept per second: every generation sweeps the CURRENT
/// population, so the work volume is the population-trace sum, not
/// generations * initial walkers.
double walker_gens_per_second(const MiniQMCResult& r, double seconds)
{
  double swept = 0.0;
  for (int pop : r.dmc_population)
    swept += pop;
  return seconds > 0 ? swept / seconds : 0.0;
}

} // namespace

int main(int argc, char** argv)
{
  using namespace mqc;
  auto json = bench::JsonReporter::from_args(argc, argv, "dmc");
  const char* env = std::getenv("MQC_BENCH_SCALE");
  const bool full = env && std::string(env) == "full";

  MiniQMCConfig base;
  base.supercell = full ? std::array<int, 3>{3, 3, 1} : std::array<int, 3>{2, 2, 1};
  base.grid_size = full ? 32 : 24;
  base.tile_size = 64;
  base.spo = SpoLayout::AoSoA;
  base.optimized_dt_jastrow = true;
  base.delay_rank = 4;
  base.driver = DriverMode::DMC;
  base.dmc_generations = full ? 6 : 4;
  base.dmc_gen_steps = 1;
  base.dmc_tau = 0.4;

  // ---- walkers/sec vs population size ------------------------------------
  print_banner(std::cout, "DMC branching driver: throughput vs target population");
  std::cout << "system: graphite " << base.supercell[0] << 'x' << base.supercell[1] << 'x'
            << base.supercell[2] << ", " << base.dmc_generations << " generations x "
            << base.dmc_gen_steps << " step(s)\n\n";

  TablePrinter tp({"walkers", "total (s)", "walker-gens/s", "births", "deaths"});
  const std::vector<int> populations = full ? std::vector<int>{8, 16, 32}
                                            : std::vector<int>{4, 8, 16};
  for (int nw : populations) {
    MiniQMCConfig cfg = base;
    cfg.num_walkers = nw;
    MiniQMCResult r;
    const double s = best_run_seconds(cfg, r);
    const double wps = walker_gens_per_second(r, s);
    tp.add_row({TablePrinter::cell(nw), TablePrinter::cell(s, 4), TablePrinter::cell(wps, 1),
                TablePrinter::cell(static_cast<int>(r.dmc_births)),
                TablePrinter::cell(static_cast<int>(r.dmc_deaths))});
    json.add("dmc_walkers" + std::to_string(nw) + "_seconds", s, "s");
    json.add("dmc_walkers" + std::to_string(nw) + "_walker_gens_per_second", wps, "walkers/s");
  }
  tp.print(std::cout);

  // ---- branch-step overhead: full DMC vs fixed-population replay ---------
  // Same config, same generation budget; replay pins the population and
  // skips drift/weights/branching entirely, so full/replay throughput is
  // the cost of the branching machinery per swept walker-generation.
  print_banner(std::cout, "DMC: branching machinery overhead vs replay oracle");
  {
    MiniQMCConfig cfg = base;
    cfg.num_walkers = populations.back();
    MiniQMCResult rfull;
    const double t_full = best_run_seconds(cfg, rfull);

    MiniQMCConfig rep = cfg;
    rep.dmc_replay = true;
    MiniQMCResult rrep;
    const double t_rep = best_run_seconds(rep, rrep);

    const double full_wps = walker_gens_per_second(rfull, t_full);
    const double rep_wps = walker_gens_per_second(rrep, t_rep);
    // Throughput ratio full/replay: how much of the replay sweep rate the
    // full driver retains with drift + branching enabled.
    const double retained = rep_wps > 0 ? full_wps / rep_wps : 0.0;

    TablePrinter op({"mode", "total (s)", "walker-gens/s", "throughput vs replay"});
    op.add_row({"replay oracle (fixed pop)", TablePrinter::cell(t_rep, 4),
                TablePrinter::cell(rep_wps, 1), TablePrinter::cell(1.0, 2)});
    op.add_row({"full DMC (drift+branch)", TablePrinter::cell(t_full, 4),
                TablePrinter::cell(full_wps, 1), TablePrinter::cell(retained, 2)});
    op.print(std::cout);
    std::cout << "\nReading guide: the replay row runs the identical crowd-sweep body with the\n"
                 "population pinned; the full row adds one VGL batch per electron move (drift)\n"
                 "plus the serial weight/branch/re-block step per generation, so somewhat\n"
                 "below 1.0 is expected (~0.9 measured; the drift VGL is cheap next to the\n"
                 "VGH + measurement batches).  The gate only fires if full DMC drops more\n"
                 "than 25% below its committed baseline while under 1.0 - i.e. if the\n"
                 "machinery gets anomalously slower, not because drift work exists.\n";
    json.add("dmc_full_seconds", t_full, "s");
    json.add("dmc_replay_seconds", t_rep, "s");
    json.add("dmc_throughput_retained_vs_replay", retained, "x");
  }

  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
