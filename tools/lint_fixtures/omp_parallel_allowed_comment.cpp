// Fixture: pragma text inside comments and string literals is not code.
// Expected: 0 [omp-parallel] findings.
//
// The old version used `#pragma omp parallel for num_threads(8)` here.
/* #pragma omp parallel */
const char* doc()
{
  return "wrap loops in #pragma omp parallel num_threads(k) at your peril";
}
