// Periodic simulation cell (general triclinic 3x3 lattice).
//
// Provides Cartesian<->fractional conversion, periodic wrapping and
// minimum-image displacements.  Two minimum-image policies are offered:
//   Fast  — wrap fractional components into [-1/2, 1/2): exact for
//           orthorhombic cells, the standard approximation for mildly
//           skewed cells (what the SIMD distance-table path vectorizes);
//   Exact — Fast followed by a scan of the 26 neighbouring images, correct
//           for any cell (used as the testing oracle and for skewed cells
//           such as the hexagonal graphite cell).
#ifndef MQC_PARTICLES_LATTICE_H
#define MQC_PARTICLES_LATTICE_H

#include <array>

#include "common/vec3.h"

namespace mqc {

enum class MinImageMode
{
  Fast,
  Exact
};

class Lattice
{
public:
  /// Identity (unit cube) lattice.
  Lattice();

  /// Rows are the lattice vectors a1, a2, a3 (Cartesian).
  explicit Lattice(const std::array<Vec3<double>, 3>& rows);

  static Lattice orthorhombic(double lx, double ly, double lz);

  [[nodiscard]] const std::array<Vec3<double>, 3>& rows() const noexcept { return a_; }
  [[nodiscard]] double volume() const noexcept { return volume_; }
  [[nodiscard]] bool is_orthorhombic() const noexcept { return orthorhombic_; }

  /// r = f1*a1 + f2*a2 + f3*a3.
  [[nodiscard]] Vec3<double> to_cartesian(const Vec3<double>& f) const noexcept;
  [[nodiscard]] Vec3<double> to_fractional(const Vec3<double>& r) const noexcept;

  /// Wrap a Cartesian position into the home cell (fractional in [0,1)).
  [[nodiscard]] Vec3<double> wrap(const Vec3<double>& r) const noexcept;

  /// Minimum-image displacement for dr = r_a - r_b.
  [[nodiscard]] Vec3<double> min_image(const Vec3<double>& dr,
                                       MinImageMode mode = MinImageMode::Exact) const noexcept;

  /// Radius of the sphere inscribed in the Wigner–Seitz cell; pair
  /// interactions cut off below this radius see each image at most once.
  [[nodiscard]] double wigner_seitz_radius() const noexcept;

private:
  void finalize();

  std::array<Vec3<double>, 3> a_;   ///< lattice vectors (rows)
  std::array<Vec3<double>, 3> b_;   ///< reciprocal rows / 2pi: f_i = b_i . r
  double volume_ = 1.0;
  bool orthorhombic_ = true;
};

} // namespace mqc

#endif // MQC_PARTICLES_LATTICE_H
