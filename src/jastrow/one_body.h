// One-body (electron-ion) Jastrow factor J1.
//
//   log psi_J1 = -sum_i sum_I u(|r_i - R_I|)
//
// Gradients/Laplacians are with respect to electron coordinates:
//   grad_i = -sum_I u'(r) * dr/r          (dr = r_i - R_I, min image)
//   lap_i  = -sum_I (u''(r) + 2 u'(r)/r)
//
// Two evaluation paths mirror the paper's layouts: the AoS baseline walks
// Vec3 displacements; the SoA path streams distance-table rows.
#ifndef MQC_JASTROW_ONE_BODY_H
#define MQC_JASTROW_ONE_BODY_H

#include <vector>

#include "common/aligned_allocator.h"
#include "common/vec3.h"
#include "distance/distance_table.h"
#include "jastrow/bspline_functor.h"

namespace mqc {

template <typename T>
class OneBodyJastrowAoS
{
public:
  explicit OneBodyJastrowAoS(const BsplineJastrowFunctor<T>& f) : f_(&f) {}

  /// Full evaluation from an ion-electron AoS table; fills per-electron
  /// grad/lap (sized num_targets) and returns log psi_J1.
  T evaluate_log(const DistanceTableAB_AoS<T>& table, Vec3<T>* grad, T* lap) const
  {
    T usum = T(0);
    for (int i = 0; i < table.num_targets(); ++i) {
      Vec3<T> g{};
      T l = T(0);
      for (int j = 0; j < table.num_sources(); ++j) {
        const T r = table.dist(i, j);
        T du, d2u;
        const T u = f_->evaluate(r, du, d2u);
        usum += u;
        const Vec3<T>& dr = table.displ(i, j);
        const T rinv = r > T(0) ? T(1) / r : T(0);
        g += (du * rinv) * dr;
        l += d2u + T(2) * du * rinv;
      }
      grad[i] = T(-1) * g;
      lap[i] = -l;
    }
    return -usum;
  }

  /// log of the wave-function ratio for a single-electron move, from the
  /// old row (index iel) and a proposed temp row.
  T ratio_log(const DistanceTableAB_AoS<T>& table, int iel) const
  {
    T u_old = T(0), u_new = T(0);
    for (int j = 0; j < table.num_sources(); ++j) {
      u_old += f_->evaluate(table.dist(iel, j));
      u_new += f_->evaluate(table.temp_r()[j]);
    }
    return u_old - u_new; // log(psi_new/psi_old) = -(U_new - U_old)
  }

private:
  const BsplineJastrowFunctor<T>* f_;
};

template <typename T>
class OneBodyJastrowSoA
{
public:
  explicit OneBodyJastrowSoA(const BsplineJastrowFunctor<T>& f) : f_(&f) {}

  T evaluate_log(const DistanceTableAB_SoA<T>& table, Vec3<T>* grad, T* lap) const
  {
    T usum = T(0);
    const int ns = table.num_sources();
    auto& scratch = JastrowRowScratch<T>::for_this_thread();
    scratch.ensure(table.row_stride());
    aligned_vector<T>&u_row = scratch.u, &du_row = scratch.du, &d2u_row = scratch.d2u;
    for (int i = 0; i < table.num_targets(); ++i) {
      const T* MQC_RESTRICT r = table.dist_row(i);
      const T* MQC_RESTRICT dx = table.dx_row(i);
      const T* MQC_RESTRICT dy = table.dy_row(i);
      const T* MQC_RESTRICT dz = table.dz_row(i);
      f_->evaluate_row(r, ns, u_row.data(), du_row.data(), d2u_row.data());
      const T* MQC_RESTRICT u_r = u_row.data();
      const T* MQC_RESTRICT du_r = du_row.data();
      const T* MQC_RESTRICT d2u_r = d2u_row.data();
      T gx = T(0), gy = T(0), gz = T(0), l = T(0), u = T(0);
      MQC_SIMD_REDUCTION(+ : gx, gy, gz, l, u)
      for (int j = 0; j < ns; ++j) {
        const T rinv = r[j] > T(0) ? T(1) / r[j] : T(0);
        const T fac = du_r[j] * rinv;
        u += u_r[j];
        gx += fac * dx[j];
        gy += fac * dy[j];
        gz += fac * dz[j];
        l += d2u_r[j] + T(2) * fac;
      }
      usum += u;
      grad[i] = Vec3<T>{-gx, -gy, -gz};
      lap[i] = -l;
    }
    return -usum;
  }

  T ratio_log(const DistanceTableAB_SoA<T>& table, int iel) const
  {
    const int ns = table.num_sources();
    const T u_old = f_->sum_row(table.dist_row(iel), ns);
    const T u_new = f_->sum_row(table.temp_r(), ns);
    return u_old - u_new;
  }

private:
  const BsplineJastrowFunctor<T>* f_;
};

} // namespace mqc

#endif // MQC_JASTROW_ONE_BODY_H
