// Debug contract checks: the mqc_contract() assertion layer (MQC_CONTRACTS).
//
// The repo's concurrency invariants are structural: scratch resources have
// one live owner, thread teams are capabilities valid only inside the region
// that created them, batched requests write disjoint output slots.  The
// compiler cannot see any of that, and a violation does not crash — it
// silently aliases memory and corrupts a trajectory three calls later.
// mqc_contract() turns each of those latent corruptions into an immediate
// abort with a file/line diagnostic, at the seam where the ownership rule is
// stated, not where its violation finally manifests.
//
// Contracts are a *debug* tool: the MQC_CONTRACTS CMake option (OFF by
// default) defines the macro away entirely in normal and Release builds, so
// the hot paths carry zero overhead and the bench baselines are untouched.
// CI runs a Debug+contracts configuration so every seam check executes on
// every change (tests/test_contracts.cpp proves each aborting path fires).
//
// Usage:
//   mqc_contract(cond, "message with %d-style details", value);
// On failure: prints the condition, location and message to stderr, then
// std::abort() — unconditionally fatal, never recoverable, so a violated
// invariant cannot be caught and papered over.
#ifndef MQC_COMMON_CONTRACTS_H
#define MQC_COMMON_CONTRACTS_H

namespace mqc {

/// True in builds configured with -DMQC_CONTRACTS=ON; lets tests and
/// diagnostics branch on the mode without the preprocessor.
#ifdef MQC_CONTRACTS
inline constexpr bool contracts_enabled = true;
#else
inline constexpr bool contracts_enabled = false;
#endif

/// Report a violated contract and abort.  Out-of-line so the macro expands
/// to a compare + cold call and the formatting machinery stays out of every
/// inlined seam.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] void
contract_failure(const char* condition, const char* file, int line, const char* fmt, ...);

} // namespace mqc

#ifdef MQC_CONTRACTS
#define mqc_contract(cond, ...)                                                                   \
  (static_cast<bool>(cond) ? static_cast<void>(0)                                                 \
                           : ::mqc::contract_failure(#cond, __FILE__, __LINE__, __VA_ARGS__))
#else
// Contracts compiled out: no evaluation of the condition or the arguments.
#define mqc_contract(cond, ...) static_cast<void>(0)
#endif

#endif // MQC_COMMON_CONTRACTS_H
