// Radial Jastrow functor on a bounded 1D cubic B-spline — the QMCPACK
// BsplineFunctor analogue (paper Tables II/III count "Jastrow" among the top
// three kernel groups).
//
// u(r) is a clamped cubic spline on [0, rcut] with
//   u'(0)    = cusp   (electron-nucleus or electron-electron cusp condition)
//   u(rcut)  = 0,  u'(rcut) = 0   (smooth truncation)
// and u(r) == 0 for r >= rcut.  In production the control points are
// variational parameters; here they are fitted to a physically-shaped
// exponential profile (see make_exponential), which exercises the identical
// evaluation path.
#ifndef MQC_JASTROW_BSPLINE_FUNCTOR_H
#define MQC_JASTROW_BSPLINE_FUNCTOR_H

#include <cassert>
#include <cmath>
#include <vector>

#include "common/aligned_allocator.h"
#include "common/config.h"
#include "common/simd.h"
#include "core/spline1d.h"

namespace mqc {

/// Per-thread scratch rows for the vectorized row kernels below.  One set is
/// shared by every Jastrow object on the thread (the drivers share a single
/// const Jastrow across walker threads, so the scratch cannot live in the
/// object) and grows monotonically, so steady-state evaluation never
/// allocates.
template <typename T>
struct JastrowRowScratch
{
  aligned_vector<T> u, du, d2u;

  void ensure(std::size_t stride)
  {
    if (u.size() < stride) {
      u.resize(stride);
      du.resize(stride);
      d2u.resize(stride);
    }
  }

  static JastrowRowScratch& for_this_thread()
  {
    static thread_local JastrowRowScratch scratch;
    return scratch;
  }
};

template <typename T>
class BsplineJastrowFunctor
{
public:
  BsplineJastrowFunctor() = default;

  /// Fit to the profile u(r) = A * exp(-r/b) * (1 - r/rcut)^2 where A is
  /// chosen so that u'(0) == cusp.  The (1-r/rc)^2 factor gives the double
  /// root at rcut that makes the truncation C1.
  static BsplineJastrowFunctor make_exponential(T cusp, T b, T rcut, int num_points = 32)
  {
    assert(num_points >= 4);
    const double A = static_cast<double>(cusp) /
                     (-1.0 / static_cast<double>(b) - 2.0 / static_cast<double>(rcut));
    std::vector<double> samples(static_cast<std::size_t>(num_points));
    const double dr = static_cast<double>(rcut) / (num_points - 1);
    for (int i = 0; i < num_points; ++i) {
      const double r = i * dr;
      const double damp = 1.0 - r / static_cast<double>(rcut);
      samples[static_cast<std::size_t>(i)] = A * std::exp(-r / static_cast<double>(b)) * damp * damp;
    }
    BsplineJastrowFunctor f;
    f.rcut_ = rcut;
    f.spline_ = Spline1D<T>::clamped(T(0), rcut, samples, static_cast<double>(cusp), 0.0);
    return f;
  }

  /// Construct directly from control-point samples (variational use).
  static BsplineJastrowFunctor from_samples(T rcut, const std::vector<double>& samples, double cusp)
  {
    BsplineJastrowFunctor f;
    f.rcut_ = rcut;
    f.spline_ = Spline1D<T>::clamped(T(0), rcut, samples, cusp, 0.0);
    return f;
  }

  [[nodiscard]] T cutoff() const noexcept { return rcut_; }

  [[nodiscard]] T evaluate(T r) const noexcept { return r < rcut_ ? spline_.value(r) : T(0); }

  /// Value plus du/dr and d2u/dr2.
  T evaluate(T r, T& du, T& d2u) const noexcept
  {
    if (r >= rcut_) {
      du = T(0);
      d2u = T(0);
      return T(0);
    }
    T v;
    spline_.evaluate(r, v, du, d2u);
    return v;
  }

  // -- SoA row kernels ------------------------------------------------------
  // These are the QMCPACK-style vector paths: one branch-free SIMD loop over
  // a whole distance-table row, with the cutoff applied as a mask and the
  // spline table accessed through (small, cache-resident) gathers.  They are
  // what makes the SoA Jastrow evaluation vectorize; the scalar evaluate()
  // above remains the AoS baseline path.

  /// Sum of u over a distance row.  Entries at or beyond the cutoff
  /// (including the self-distance sentinel) contribute exactly zero.
  [[nodiscard]] T sum_row(const T* MQC_RESTRICT r, int count) const noexcept
  {
    const T* MQC_RESTRICT cp = spline_.control_points().data();
    const T dinv = spline_.grid().delta_inv;
    const T num_cells = static_cast<T>(spline_.grid().num);
    const T rc = rcut_;
    T sum = T(0);
    MQC_SIMD_REDUCTION(+ : sum)
    for (int j = 0; j < count; ++j) {
      // Clamp BEFORE the int cast: sentinel distances are ~1e10.
      T x = r[j] * dinv;
      x = x < num_cells ? x : num_cells;
      int i = static_cast<int>(x);
      i = i < static_cast<int>(num_cells) ? i : static_cast<int>(num_cells) - 1;
      const T t = x - static_cast<T>(i);
      const T t2 = t * t, t3 = t2 * t;
      constexpr T c6 = T(1) / T(6);
      const T a0 = c6 * (-t3 + T(3) * t2 - T(3) * t + T(1));
      const T a1 = c6 * (T(3) * t3 - T(6) * t2 + T(4));
      const T a2 = c6 * (T(-3) * t3 + T(3) * t2 + T(3) * t + T(1));
      const T a3 = c6 * t3;
      const T val = a0 * cp[i] + a1 * cp[i + 1] + a2 * cp[i + 2] + a3 * cp[i + 3];
      sum += r[j] < rc ? val : T(0);
    }
    return sum;
  }

  /// u, du/dr and d2u/dr2 for a whole row (outputs masked to zero beyond the
  /// cutoff).  Buffers must not alias r.
  void evaluate_row(const T* MQC_RESTRICT r, int count, T* MQC_RESTRICT u, T* MQC_RESTRICT du,
                    T* MQC_RESTRICT d2u) const noexcept
  {
    const T* MQC_RESTRICT cp = spline_.control_points().data();
    const T dinv = spline_.grid().delta_inv;
    const T num_cells = static_cast<T>(spline_.grid().num);
    const T rc = rcut_;
    MQC_SIMD
    for (int j = 0; j < count; ++j) {
      T x = r[j] * dinv;
      x = x < num_cells ? x : num_cells;
      int i = static_cast<int>(x);
      i = i < static_cast<int>(num_cells) ? i : static_cast<int>(num_cells) - 1;
      const T t = x - static_cast<T>(i);
      const T t2 = t * t, t3 = t2 * t;
      constexpr T c6 = T(1) / T(6);
      const T a0 = c6 * (-t3 + T(3) * t2 - T(3) * t + T(1));
      const T a1 = c6 * (T(3) * t3 - T(6) * t2 + T(4));
      const T a2 = c6 * (T(-3) * t3 + T(3) * t2 + T(3) * t + T(1));
      const T a3 = c6 * t3;
      const T b0 = T(-0.5) * t2 + t - T(0.5);
      const T b1 = T(1.5) * t2 - T(2) * t;
      const T b2 = T(-1.5) * t2 + t + T(0.5);
      const T b3 = T(0.5) * t2;
      const T e0 = T(1) - t, e1 = T(3) * t - T(2), e2 = T(-3) * t + T(1), e3 = t;
      const T p0 = cp[i], p1 = cp[i + 1], p2 = cp[i + 2], p3 = cp[i + 3];
      const T mask = r[j] < rc ? T(1) : T(0);
      u[j] = mask * (a0 * p0 + a1 * p1 + a2 * p2 + a3 * p3);
      du[j] = mask * dinv * (b0 * p0 + b1 * p1 + b2 * p2 + b3 * p3);
      d2u[j] = mask * dinv * dinv * (e0 * p0 + e1 * p1 + e2 * p2 + e3 * p3);
    }
  }

private:
  T rcut_ = T(1);
  Spline1D<T> spline_;
};

} // namespace mqc

#endif // MQC_JASTROW_BSPLINE_FUNCTOR_H
