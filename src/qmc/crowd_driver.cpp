// The miniQMC crowd sweep: walkers advance in lock-step crowds so that every
// spline evaluation becomes a multi-position batch (see crowd_driver.h for
// the design contract and miniqmc_context.h for the shared per-walker
// arithmetic).  Threading is one crowd per OpenMP thread — the crowd is the
// unit of both batching and parallelism, so crowd_size trades per-thread
// batch depth against thread count on a fixed walker population.
#include <algorithm>
#include <vector>

#include "qmc/crowd_driver.h"
#include "qmc/miniqmc_context.h"

namespace mqc::detail {

namespace {

/// Per-crowd scratch: gathered trial positions, the shared weight block, and
/// per-walker output-slot pointer arrays for the multi-position kernels.
/// Allocated once per crowd so the timed sweep allocates nothing.
struct CrowdScratch
{
  CrowdScratch(std::vector<WalkerState>& walkers, int first, int count, const MiniQMCSystem& sys)
  {
    rnew.resize(static_cast<std::size_t>(count));
    wts.resize(static_cast<std::size_t>(count) * static_cast<std::size_t>(sys.nq));
    v.resize(static_cast<std::size_t>(count));
    g.resize(static_cast<std::size_t>(count));
    h.resize(static_cast<std::size_t>(count));
    l.resize(static_cast<std::size_t>(count));
    quad_v.resize(static_cast<std::size_t>(count) * static_cast<std::size_t>(sys.nq));
    for (int i = 0; i < count; ++i) {
      WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
      const auto ui = static_cast<std::size_t>(i);
      v[ui] = w.out_soa->v.data();
      g[ui] = w.out_soa->g.data();
      h[ui] = w.out_soa->h.data();
      l[ui] = w.out_soa->l.data();
      for (int q = 0; q < sys.nq; ++q)
        quad_v[ui * static_cast<std::size_t>(sys.nq) + static_cast<std::size_t>(q)] =
            w.quad_v_ptrs[static_cast<std::size_t>(q)];
    }
  }

  std::vector<Vec3<qmc_real>> rnew;
  std::vector<BsplineWeights3D<qmc_real>> wts;
  std::vector<qmc_real*> v, g, h, l; ///< per-walker component slots
  std::vector<qmc_real*> quad_v;     ///< count*nq quadrature value slots
};

/// One VGH batch for the crowd's trial positions (scr.rnew[0..count)),
/// landing in each walker's own output buffers.  The AoS baseline has no
/// multi-position path and falls back to per-walker single calls — still
/// lock-step, just without the table-traffic amortization.
void crowd_eval_vgh(const MiniQMCSystem& sys, SpoLayout spo, std::vector<WalkerState>& walkers,
                    int first, int count, CrowdScratch& scr)
{
  switch (spo) {
  case SpoLayout::AoS:
    for (int i = 0; i < count; ++i)
      (void)walkers[static_cast<std::size_t>(first + i)].eval_vgh(sys, spo, scr.rnew[static_cast<std::size_t>(i)]);
    return;
  case SpoLayout::SoA:
    compute_weights_vgh_batch(sys.coefs->grid(), scr.rnew.data(), count, scr.wts.data());
    sys.spo_soa->evaluate_vgh_multi(scr.wts.data(), count, scr.v.data(), scr.g.data(),
                                    scr.h.data(), sys.out_pad);
    break;
  default:
    compute_weights_vgh_batch(sys.coefs->grid(), scr.rnew.data(), count, scr.wts.data());
    for (int t = 0; t < sys.spo_aosoa->num_tiles(); ++t)
      sys.spo_aosoa->evaluate_vgh_tile_multi(t, scr.wts.data(), count, scr.v.data(), scr.g.data(),
                                             scr.h.data(), sys.out_pad);
    break;
  }
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(sys.norb);
}

/// One VGL batch at the crowd's current positions of electron e (kinetic
/// energy measurement).
void crowd_eval_vgl(const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                    std::vector<WalkerState>& walkers, int first, int count, int e,
                    CrowdScratch& scr)
{
  for (int i = 0; i < count; ++i) {
    const WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
    scr.rnew[static_cast<std::size_t>(i)] = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
  }
  switch (cfg.spo) {
  case SpoLayout::AoS:
    for (int i = 0; i < count; ++i)
      walkers[static_cast<std::size_t>(first + i)].eval_vgl(sys, cfg.spo,
                                                            scr.rnew[static_cast<std::size_t>(i)]);
    return;
  case SpoLayout::SoA:
    compute_weights_vgh_batch(sys.coefs->grid(), scr.rnew.data(), count, scr.wts.data());
    sys.spo_soa->evaluate_vgl_multi(scr.wts.data(), count, scr.v.data(), scr.g.data(),
                                    scr.l.data(), sys.out_pad);
    break;
  default:
    compute_weights_vgh_batch(sys.coefs->grid(), scr.rnew.data(), count, scr.wts.data());
    for (int t = 0; t < sys.spo_aosoa->num_tiles(); ++t)
      sys.spo_aosoa->evaluate_vgl_tile_multi(t, scr.wts.data(), count, scr.v.data(), scr.g.data(),
                                             scr.l.data(), sys.out_pad);
    break;
  }
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(sys.norb);
}

/// One V batch over the whole crowd's quadrature points (count*nq positions,
/// each walker's nq points already proposed into its quad_r).
void crowd_eval_quad_v(const MiniQMCSystem& sys, const MiniQMCConfig& cfg,
                       std::vector<WalkerState>& walkers, int first, int count, CrowdScratch& scr)
{
  const int nq = cfg.quadrature_points;
  if (cfg.spo == SpoLayout::AoS) {
    for (int i = 0; i < count; ++i) {
      WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
      w.eval_v_batch(sys, cfg.spo, w.quad_r.data(), nq);
    }
    return;
  }
  for (int i = 0; i < count; ++i) {
    const WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
    compute_weights_v_batch(sys.coefs->grid(), w.quad_r.data(), nq,
                            scr.wts.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(nq));
  }
  const int total = count * nq;
  if (cfg.spo == SpoLayout::SoA) {
    sys.spo_soa->evaluate_v_multi(scr.wts.data(), total, scr.quad_v.data());
  } else {
    for (int t = 0; t < sys.spo_aosoa->num_tiles(); ++t)
      sys.spo_aosoa->evaluate_v_tile_multi(t, scr.wts.data(), total, scr.quad_v.data());
  }
  for (int i = 0; i < count; ++i)
    walkers[static_cast<std::size_t>(first + i)].orbital_evals +=
        static_cast<std::size_t>(nq) * static_cast<std::size_t>(sys.norb);
}

} // namespace

MiniQMCResult run_miniqmc_crowd(const MiniQMCConfig& cfg)
{
  const MiniQMCSystem sys(cfg);
  const int crowd_size = cfg.crowd_size > 0 ? std::min(cfg.crowd_size, sys.nw) : sys.nw;
  const int num_crowds = (sys.nw + crowd_size - 1) / crowd_size;

  std::vector<WalkerState> walkers(static_cast<std::size_t>(sys.nw));
  std::vector<ProfileRegistry> crowd_profiles(static_cast<std::size_t>(num_crowds));

  MiniQMCResult result;
  result.num_walkers = sys.nw;
  result.num_electrons = sys.nel;
  result.num_orbitals = sys.norb;

  Stopwatch total_watch;

  // ---- setup (not profiled): each crowd initializes its own walkers ------
#pragma omp parallel for num_threads(num_crowds) schedule(static, 1)
  for (int cid = 0; cid < num_crowds; ++cid) {
    const int first = cid * crowd_size;
    const int last = std::min(sys.nw, first + crowd_size);
    for (int wid = first; wid < last; ++wid)
      init_walker(walkers[static_cast<std::size_t>(wid)], sys, cfg, wid);
  }

  // ---- the profiled lock-step sweep, one crowd per thread ----------------
#pragma omp parallel for num_threads(num_crowds) schedule(static, 1)
  for (int cid = 0; cid < num_crowds; ++cid) {
    const int first = cid * crowd_size;
    const int count = std::min(sys.nw, first + crowd_size) - first;
    ProfileRegistry& cprof = crowd_profiles[static_cast<std::size_t>(cid)];
    CrowdScratch scr(walkers, first, count, sys);

    for (int step = 0; step < cfg.steps; ++step) {
      // Drift-diffusion phase: the whole crowd moves electron e together.
      for (int e = 0; e < sys.nel; ++e) {
        for (int i = 0; i < count; ++i) {
          WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
          ++w.attempted;
          const Vec3<qmc_real> r_old = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
          scr.rnew[static_cast<std::size_t>(i)] = propose(w.rng, r_old, cfg.move_sigma);
        }
        {
          ScopedTimer t(cprof, kSectionBspline);
          crowd_eval_vgh(sys, cfg.spo, walkers, first, count, scr);
        }
        for (int i = 0; i < count; ++i) {
          WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
          const qmc_real* v =
              cfg.spo == SpoLayout::AoS ? w.out_aos->v.data() : w.out_soa->v.data();
          metropolis_move(w, sys, cfg, e, scr.rnew[static_cast<std::size_t>(i)], v);
        }
      }

      // Measurement phase, electron by electron across the crowd: one VGL
      // batch (kinetic energy), per-walker quadrature proposals and
      // distance/Jastrow ratios, then one V batch over all count*nq
      // quadrature points.  Each walker's rng stream sees exactly the
      // per-walker driver's draw sequence.
      for (int e = 0; e < sys.nel; ++e) {
        {
          ScopedTimer t(cprof, kSectionBspline);
          crowd_eval_vgl(sys, cfg, walkers, first, count, e, scr);
        }
        for (int i = 0; i < count; ++i) {
          WalkerState& w = walkers[static_cast<std::size_t>(first + i)];
          const Vec3<qmc_real> re = cfg.optimized_dt_jastrow ? w.elec_soa[e] : w.elec_aos[e];
          for (int q = 0; q < cfg.quadrature_points; ++q)
            w.quad_r[static_cast<std::size_t>(q)] = propose(w.rng, re, 0.5);
          quadrature_dist_jastrow(w, sys, cfg, e);
        }
        if (cfg.quadrature_points > 0) {
          ScopedTimer t(cprof, kSectionBspline);
          crowd_eval_quad_v(sys, cfg, walkers, first, count, scr);
        }
      }
      for (int i = 0; i < count; ++i)
        full_jastrow(walkers[static_cast<std::size_t>(first + i)], sys, cfg);
    }
  }
  result.seconds = total_watch.elapsed();
  reduce_result(result, walkers);
  for (const auto& p : crowd_profiles)
    result.profile.merge(p);
  return result;
}

} // namespace mqc::detail
