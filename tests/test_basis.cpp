// Tests for the cubic B-spline basis weights (paper Eq. 5, Fig. 2):
// closed-form values, derivative consistency, the classic invariants
// (partition of unity, derivative sums), and C2 continuity across cells.
#include <cmath>

#include <gtest/gtest.h>

#include "core/bspline_basis.h"
#include "core/grid.h"
#include "core/weights.h"

using namespace mqc;

namespace {

// Closed forms for the four cell-local basis functions.
double a0(double t) { return (1 - t) * (1 - t) * (1 - t) / 6.0; }
double a1(double t) { return (3 * t * t * t - 6 * t * t + 4) / 6.0; }
double a2(double t) { return (-3 * t * t * t + 3 * t * t + 3 * t + 1) / 6.0; }
double a3(double t) { return t * t * t / 6.0; }

} // namespace

TEST(Basis, MatchesClosedForm)
{
  for (double t : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999}) {
    double a[4];
    bspline_weights(t, a);
    EXPECT_NEAR(a[0], a0(t), 1e-14);
    EXPECT_NEAR(a[1], a1(t), 1e-14);
    EXPECT_NEAR(a[2], a2(t), 1e-14);
    EXPECT_NEAR(a[3], a3(t), 1e-14);
  }
}

TEST(Basis, PartitionOfUnity)
{
  for (int i = 0; i <= 100; ++i) {
    const double t = i / 100.0;
    double a[4], da[4], d2a[4];
    bspline_weights_d2(t, a, da, d2a);
    EXPECT_NEAR(a[0] + a[1] + a[2] + a[3], 1.0, 1e-14) << t;
    EXPECT_NEAR(da[0] + da[1] + da[2] + da[3], 0.0, 1e-14) << t;
    EXPECT_NEAR(d2a[0] + d2a[1] + d2a[2] + d2a[3], 0.0, 1e-14) << t;
  }
}

TEST(Basis, WeightsNonNegativeAndBounded)
{
  for (int i = 0; i <= 50; ++i) {
    const double t = i / 50.0;
    double a[4];
    bspline_weights(t, a);
    for (double w : a) {
      EXPECT_GE(w, 0.0);
      EXPECT_LE(w, 2.0 / 3.0 + 1e-14); // max of the cubic B-spline basis
    }
  }
}

TEST(Basis, FirstDerivativeMatchesFiniteDifference)
{
  const double h = 1e-6;
  for (double t : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    double ap[4], am[4], a[4], da[4];
    bspline_weights(t + h, ap);
    bspline_weights(t - h, am);
    bspline_weights_d1(t, a, da);
    for (int k = 0; k < 4; ++k)
      EXPECT_NEAR(da[k], (ap[k] - am[k]) / (2 * h), 1e-8) << "t=" << t << " k=" << k;
  }
}

TEST(Basis, SecondDerivativeMatchesFiniteDifference)
{
  const double h = 1e-4;
  for (double t : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    double ap[4], am[4], a[4], da[4], d2a[4];
    bspline_weights(t + h, ap);
    bspline_weights(t - h, am);
    bspline_weights_d2(t, a, da, d2a);
    for (int k = 0; k < 4; ++k) {
      const double fd = (ap[k] - 2 * a[k] + am[k]) / (h * h);
      EXPECT_NEAR(d2a[k], fd, 1e-5) << "t=" << t << " k=" << k;
    }
  }
}

// C2 continuity: approaching a knot from the left (t->1 of cell i) must match
// approaching from the right (t=0 of cell i+1) for value, first and second
// derivative, with the basis index shifted by one.
TEST(Basis, C2ContinuityAcrossKnots)
{
  double al[4], dal[4], d2al[4];
  double ar[4], dar[4], d2ar[4];
  bspline_weights_d2(1.0 - 1e-12, al, dal, d2al);
  bspline_weights_d2(0.0, ar, dar, d2ar);
  // At the knot the left-cell weights (a1..a3 acting on points p,p+1,p+2)
  // must equal the right-cell weights (a0..a2 on the same points).
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(al[k + 1], ar[k], 1e-9);
    EXPECT_NEAR(dal[k + 1], dar[k], 1e-9);
    EXPECT_NEAR(d2al[k + 1], d2ar[k], 1e-6);
  }
  // And the weight falling out of support must vanish.
  EXPECT_NEAR(al[0], 0.0, 1e-9);
  EXPECT_NEAR(ar[3], 0.0, 1e-12);
}

TEST(Grid, PeriodicReductionBasics)
{
  Grid1D<double> g(0.0, 2.0, 8); // delta = 0.25
  auto r = g.reduce_periodic(0.3);
  EXPECT_EQ(r.cell, 1);
  EXPECT_NEAR(r.frac, 0.2, 1e-12);
  // Wrap below and above the domain.
  auto rneg = g.reduce_periodic(-0.1);
  EXPECT_EQ(rneg.cell, 7);
  EXPECT_NEAR(rneg.frac, 0.6, 1e-12);
  auto rbig = g.reduce_periodic(2.3);
  EXPECT_EQ(rbig.cell, 1);
  EXPECT_NEAR(rbig.frac, 0.2, 1e-9);
}

TEST(Grid, PeriodicReductionAtDomainEnd)
{
  Grid1D<double> g(0.0, 1.0, 4);
  const auto r = g.reduce_periodic(1.0);
  EXPECT_EQ(r.cell, 0);
  EXPECT_NEAR(r.frac, 0.0, 1e-12);
}

TEST(Grid, PeriodicReductionManyPeriodsAway)
{
  Grid1D<float> g(0.0f, 1.0f, 10);
  const auto a = g.reduce_periodic(0.37f);
  const auto b = g.reduce_periodic(5.37f);
  EXPECT_EQ(a.cell, b.cell);
  EXPECT_NEAR(a.frac, b.frac, 1e-4f);
}

TEST(Grid, ClampedReductionStaysInDomain)
{
  Grid1D<double> g(0.0, 1.0, 10);
  auto lo = g.reduce_clamped(-0.5);
  EXPECT_EQ(lo.cell, 0);
  EXPECT_DOUBLE_EQ(lo.frac, 0.0);
  auto hi = g.reduce_clamped(1.5);
  EXPECT_EQ(hi.cell, 9);
  EXPECT_DOUBLE_EQ(hi.frac, 1.0);
  auto mid = g.reduce_clamped(0.55);
  EXPECT_EQ(mid.cell, 5);
  EXPECT_NEAR(mid.frac, 0.5, 1e-12);
}

TEST(Weights, VghScalingCarriesDeltaInv)
{
  // A grid with delta=0.5 must scale first derivatives by 2 and second by 4
  // relative to a unit grid at the same fractional position.
  Grid3D<double> unit = Grid3D<double>::cube(4, 4.0);   // delta = 1
  Grid3D<double> fine = Grid3D<double>::cube(8, 4.0);   // delta = 0.5
  BsplineWeights3D<double> wu, wf;
  compute_weights_vgh(unit, 1.25, 1.25, 1.25, wu);
  compute_weights_vgh(fine, 0.625, 0.625, 0.625, wf); // same frac = 0.25
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(wf.da[k], 2.0 * wu.da[k], 1e-12);
    EXPECT_NEAR(wf.d2a[k], 4.0 * wu.d2a[k], 1e-12);
  }
}

TEST(Weights, VOnlyMatchesFullWeights)
{
  Grid3D<float> g = Grid3D<float>::cube(12, 3.0f);
  BsplineWeights3D<float> wv, wf;
  compute_weights_v(g, 0.7f, 1.1f, 2.9f, wv);
  compute_weights_vgh(g, 0.7f, 1.1f, 2.9f, wf);
  EXPECT_EQ(wv.i0, wf.i0);
  EXPECT_EQ(wv.j0, wf.j0);
  EXPECT_EQ(wv.k0, wf.k0);
  for (int k = 0; k < 4; ++k) {
    EXPECT_FLOAT_EQ(wv.a[k], wf.a[k]);
    EXPECT_FLOAT_EQ(wv.b[k], wf.b[k]);
    EXPECT_FLOAT_EQ(wv.c[k], wf.c[k]);
  }
}
