// Domain scenario 5: a small Variational Monte Carlo run with the full
// Slater-Jastrow wave function (paper Eq. 1-4 and the §III walker protocol):
// Metropolis sampling of |psi|^2 with particle-by-particle moves and a
// kinetic-energy estimator accumulated over the run.
//
//   ./examples/vmc_electron_gas [orbitals] [steps] [sigma]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/stats.h"
#include "core/synthetic_orbitals.h"
#include "particles/graphite.h"
#include "qmc/wavefunction.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  const int norb = argc > 1 ? std::atoi(argv[1]) : 8;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const double sigma = argc > 3 ? std::atof(argv[3]) : 0.5;

  // A compact orthorhombic carbon cell; plane-wave orbitals of the matching
  // box play the role of DFT orbitals.
  const auto sys = make_orthorhombic_carbon(1, 1, 1);
  const double l = sys.lattice.rows()[0].x;
  const auto pw = PlaneWaveOrbitals::make(norb, Vec3<double>{l, l, l}, 11);
  auto coefs = build_planewave_storage(Grid3D<double>::cube(16, l), pw);

  ParticleSetSoA<double> ions(sys.num_ions());
  for (int i = 0; i < sys.num_ions(); ++i)
    ions.set(i, sys.ions[i]);
  const double rcut = 0.9 * sys.lattice.wigner_seitz_radius();
  SlaterJastrow<double> psi(coefs, sys.lattice, ions,
                            BsplineJastrowFunctor<double>::make_exponential(-1.0, 0.8, rcut),
                            BsplineJastrowFunctor<double>::make_exponential(-0.5, 1.0, rcut));

  auto elec = random_particles<double>(2 * norb, sys.lattice, 4);
  if (!psi.initialize(elec)) {
    std::puts("singular initial determinant — try another seed");
    return 1;
  }
  std::printf("VMC: %d electrons (%d orbitals/spin), cell %.2f bohr, %d sweeps, sigma %.2f\n",
              psi.num_electrons(), norb, l, steps, sigma);
  std::printf("initial log|psi| = %.4f, kinetic = %.4f Ha\n\n", psi.log_psi(),
              psi.kinetic_energy());

  Xoshiro256 rng(2024);
  RunningStats kinetic;
  std::size_t accepted = 0, attempted = 0;
  std::puts("sweep  acceptance  <T> (Ha)    T_this (Ha)");
  for (int step = 0; step < steps; ++step) {
    for (int iel = 0; iel < psi.num_electrons(); ++iel) {
      ++attempted;
      const Vec3<double> r = psi.electrons()[iel];
      const Vec3<double> rnew{r.x + sigma * rng.gaussian(), r.y + sigma * rng.gaussian(),
                              r.z + sigma * rng.gaussian()};
      const double lr = psi.ratio_log(iel, rnew);
      // Metropolis on |psi|^2 = exp(2 log|psi|).
      if (std::log(std::max(rng.uniform(), 1e-300)) < 2.0 * lr) {
        psi.accept(iel);
        ++accepted;
      } else {
        psi.reject(iel);
      }
    }
    const double t = psi.kinetic_energy();
    kinetic.add(t);
    std::printf("%5d  %9.3f  %9.4f  %11.4f\n", step,
                static_cast<double>(accepted) / static_cast<double>(attempted), kinetic.mean(),
                t);
  }
  std::printf("\nfinal:  acceptance %.3f,  <T> = %.4f +/- %.4f Ha over %zu sweeps\n",
              static_cast<double>(accepted) / static_cast<double>(attempted), kinetic.mean(),
              kinetic.stddev() / std::sqrt(static_cast<double>(kinetic.count())),
              kinetic.count());
  std::puts("(A free-electron-gas estimate for <T> is sum_n |G_n|^2 / 2 per spin pair,\n"
            "shifted by the Jastrow; the estimator must stay finite and stable.)");
  return 0;
}
