// google-benchmark: per-(tile, walker) batched evaluation vs the fused
// multi-position path (core/batched.h) at paper scale (N >= 1024, a walker
// population of 8+).  The fused path precomputes one weight set per
// position, sweeps each tile's coefficient slice once per position block,
// and stores on the first weight iteration instead of zero-filling.
//
// The headline BM_*_FusedVsPerPair benchmarks interleave the two paths in
// one timing loop and report both throughputs plus their ratio as counters
// ("fused_speedup" > 1 means the fused path wins) — paired measurement, so
// host noise (CPU steal, frequency drift) hits both paths equally instead of
// whichever benchmark ran during a bad window.  The reported Time column is
// the fused path's (manual time).
#include <map>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/threading.h"
#include "common/timer.h"
#include "core/batched.h"
#include "core/orbital_set.h"
#include "core/synthetic_orbitals.h"

namespace {

using namespace mqc;

constexpr int kGrid = 24;

std::shared_ptr<CoefStorage<float>> storage_for(int n)
{
  static std::map<int, std::shared_ptr<CoefStorage<float>>> cache;
  auto& slot = cache[n];
  if (!slot)
    slot = make_random_storage<float>(Grid3D<float>::cube(kGrid, 1.0f), n,
                                      91 + static_cast<std::uint64_t>(n));
  return slot;
}

/// Shared fixture state: one engine, a walker population, output buffers.
struct Population
{
  std::unique_ptr<MultiBspline<float>> engine;
  std::vector<Vec3<float>> positions;
  std::vector<std::unique_ptr<WalkerSoA<float>>> outs;
  std::vector<WalkerSoA<float>*> out_ptrs;

  Population(int n, int nb, int nw)
  {
    auto coefs = storage_for(n);
    engine = std::make_unique<MultiBspline<float>>(*coefs, nb);
    Xoshiro256 rng(7);
    for (int w = 0; w < nw; ++w) {
      positions.push_back(Vec3<float>{static_cast<float>(rng.uniform()),
                                      static_cast<float>(rng.uniform()),
                                      static_cast<float>(rng.uniform())});
      outs.push_back(std::make_unique<WalkerSoA<float>>(engine->out_stride()));
      out_ptrs.push_back(outs.back().get());
    }
  }
};

// -- paired comparisons (the acceptance-criterion benchmarks) ---------------

void BM_BatchedVGH_FusedVsPerPair(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const int nw = static_cast<int>(state.range(2));
  const int pb = static_cast<int>(state.range(3)); // position block P (0 = whole population)
  Population pop(n, nb, nw);
  double t_pair = 0.0, t_fused = 0.0;
  for (auto _ : state) {
    Stopwatch a;
    evaluate_vgh_batched(*pop.engine, pop.positions, pop.out_ptrs);
    t_pair += a.elapsed();
    Stopwatch b;
    evaluate_vgh_batched_multi(*pop.engine, pop.positions, pop.out_ptrs, pb);
    const double fused = b.elapsed();
    t_fused += fused;
    state.SetIterationTime(fused);
    benchmark::DoNotOptimize(pop.outs[0]->v.data());
  }
  const double evals = static_cast<double>(n) * nw * static_cast<double>(state.iterations());
  state.counters["per_pair_evals_per_s"] = evals / t_pair;
  state.counters["fused_evals_per_s"] = evals / t_fused;
  state.counters["fused_speedup"] = t_pair / t_fused;
  state.SetItemsProcessed(state.iterations() * n * nw);
}

void BM_BatchedV_FusedVsPerPair(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const int nw = static_cast<int>(state.range(2));
  const int pb = static_cast<int>(state.range(3));
  Population pop(n, nb, nw);
  double t_pair = 0.0, t_fused = 0.0;
  for (auto _ : state) {
    Stopwatch a;
    evaluate_v_batched(*pop.engine, pop.positions, pop.out_ptrs);
    t_pair += a.elapsed();
    Stopwatch b;
    evaluate_v_batched_multi(*pop.engine, pop.positions, pop.out_ptrs, pb);
    const double fused = b.elapsed();
    t_fused += fused;
    state.SetIterationTime(fused);
    benchmark::DoNotOptimize(pop.outs[0]->v.data());
  }
  const double evals = static_cast<double>(n) * nw * static_cast<double>(state.iterations());
  state.counters["per_pair_evals_per_s"] = evals / t_pair;
  state.counters["fused_evals_per_s"] = evals / t_fused;
  state.counters["fused_speedup"] = t_pair / t_fused;
  state.SetItemsProcessed(state.iterations() * n * nw);
}

// -- standalone per-path latencies ------------------------------------------

void BM_BatchedVGH_PerPair(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const int nw = static_cast<int>(state.range(2));
  Population pop(n, nb, nw);
  for (auto _ : state) {
    evaluate_vgh_batched(*pop.engine, pop.positions, pop.out_ptrs);
    benchmark::DoNotOptimize(pop.outs[0]->v.data());
  }
  state.SetItemsProcessed(state.iterations() * n * nw);
}

void BM_BatchedVGH_FusedMulti(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const int nw = static_cast<int>(state.range(2));
  const int pb = static_cast<int>(state.range(3));
  Population pop(n, nb, nw);
  for (auto _ : state) {
    evaluate_vgh_batched_multi(*pop.engine, pop.positions, pop.out_ptrs, pb);
    benchmark::DoNotOptimize(pop.outs[0]->v.data());
  }
  state.SetItemsProcessed(state.iterations() * n * nw);
}

// -- facade overhead (the OrbitalSet acceptance criterion) -------------------
//
// Same paired-interleave recipe as FusedVsPerPair: one timing loop runs the
// identical serial multi-position sweep twice, once through the raw engine
// entry points and once through an OrbitalSet request.  The facade is a
// variant dispatch plus a scratch lookup per request, amortized over N*nw
// orbital evaluations — "facade_overhead" (t_facade / t_direct) must sit
// within run-to-run noise of 1.0 at N=1024.
void BM_BatchedVGH_FacadeVsDirect(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const int nw = static_cast<int>(state.range(2));
  Population pop(n, nb, nw);

  std::vector<float*> v(pop.out_ptrs.size()), g(v.size()), h(v.size());
  for (std::size_t i = 0; i < pop.out_ptrs.size(); ++i) {
    v[i] = pop.out_ptrs[i]->v.data();
    g[i] = pop.out_ptrs[i]->g.data();
    h[i] = pop.out_ptrs[i]->h.data();
  }
  const std::size_t stride = pop.engine->out_stride();
  std::vector<BsplineWeights3D<float>> wts(static_cast<std::size_t>(nw));

  OrbitalSet<float> spo(*pop.engine);
  OrbitalResource<float> res;
  OrbitalEvalRequest<float> rq;
  rq.deriv = DerivLevel::VGH;
  rq.positions = pop.positions.data();
  rq.count = nw;
  rq.v = v.data();
  rq.g = g.data();
  rq.lh = h.data();
  rq.stride = stride;

  double t_direct = 0.0, t_facade = 0.0;
  for (auto _ : state) {
    Stopwatch a;
    compute_weights_vgh_batch(pop.engine->grid(), pop.positions.data(), nw, wts.data());
    for (int t = 0; t < pop.engine->num_tiles(); ++t)
      pop.engine->evaluate_vgh_tile_multi(t, wts.data(), nw, v.data(), g.data(), h.data(),
                                          stride);
    t_direct += a.elapsed();
    Stopwatch b;
    spo.evaluate(rq, res);
    const double facade = b.elapsed();
    t_facade += facade;
    state.SetIterationTime(facade);
    benchmark::DoNotOptimize(pop.outs[0]->v.data());
  }
  const double evals = static_cast<double>(n) * nw * static_cast<double>(state.iterations());
  state.counters["direct_evals_per_s"] = evals / t_direct;
  state.counters["facade_evals_per_s"] = evals / t_facade;
  state.counters["facade_overhead"] = t_facade / t_direct;
  state.SetItemsProcessed(state.iterations() * n * nw);
}

// -- nested partition vs flat machine-wide region ---------------------------
//
// The hierarchical schedule the crowd driver runs, isolated on the batched
// VGH kernel: FLAT is one machine-wide parallel facade request over the
// whole population; NESTED splits the population into `outer` crowds, opens
// an outer region of `outer` threads, and each member issues its own
// team-scheduled facade request over its crowd slice (inner team from the
// topology partition).  Same work, bit-identical outputs; the counters
// report the partition that actually engaged ("inner_threads" > 1 on
// multi-core hosts is the acceptance signal) and the nested/flat ratio.
void BM_BatchedVGH_NestedVsFlat(benchmark::State& state)
{
  const int n = static_cast<int>(state.range(0));
  const int nb = static_cast<int>(state.range(1));
  const int nw = static_cast<int>(state.range(2));
  const int outer = static_cast<int>(state.range(3));
  Population pop(n, nb, nw);
  const ThreadPartition part = ThreadPartition::resolve(outer);
  request_nested_levels(2);

  // Per-crowd slices of the population, prepared outside the timed loop.
  OrbitalSet<float> spo(*pop.engine);
  const std::size_t stride = pop.engine->out_stride();
  struct CrowdSlice
  {
    std::vector<Vec3<float>> pos;
    std::vector<float*> v, g, h;
    OrbitalResource<float> res;
  };
  std::vector<std::unique_ptr<CrowdSlice>> crowds;
  for (int c = 0; c < outer; ++c) {
    auto slice = std::make_unique<CrowdSlice>();
    const Range r = block_range(static_cast<std::size_t>(nw),
                                static_cast<std::size_t>(outer), static_cast<std::size_t>(c));
    for (std::size_t w = r.first; w < r.last; ++w) {
      slice->pos.push_back(pop.positions[w]);
      slice->v.push_back(pop.outs[w]->v.data());
      slice->g.push_back(pop.outs[w]->g.data());
      slice->h.push_back(pop.outs[w]->h.data());
    }
    crowds.push_back(std::move(slice));
  }

  double t_flat = 0.0, t_nested = 0.0;
  for (auto _ : state) {
    Stopwatch a;
    evaluate_vgh_batched_multi(*pop.engine, pop.positions, pop.out_ptrs, 0);
    t_flat += a.elapsed();
    Stopwatch b;
    // parallel-for over slice ids (not thread_id indexing) so every crowd
    // slice is evaluated even when the runtime grants fewer than `outer`
    // threads — otherwise the nested timing would silently cover less work
    // than the flat pass it is paired against.
#pragma omp parallel for schedule(static, 1) num_threads(outer)
    for (int c = 0; c < outer; ++c) {
      CrowdSlice& slice = *crowds[static_cast<std::size_t>(c)];
      if (!slice.pos.empty()) {
        OrbitalEvalRequest<float> rq;
        rq.deriv = DerivLevel::VGH;
        rq.positions = slice.pos.data();
        rq.count = static_cast<int>(slice.pos.size());
        rq.v = slice.v.data();
        rq.g = slice.g.data();
        rq.lh = slice.h.data();
        rq.stride = stride;
        rq.parallel = part.inner > 1;
        rq.team = TeamHandle::inner_of(part);
        spo.evaluate(rq, slice.res);
      }
    }
    const double nested = b.elapsed();
    t_nested += nested;
    state.SetIterationTime(nested);
    benchmark::DoNotOptimize(pop.outs[0]->v.data());
  }
  const double evals = static_cast<double>(n) * nw * static_cast<double>(state.iterations());
  state.counters["flat_evals_per_s"] = evals / t_flat;
  state.counters["nested_evals_per_s"] = evals / t_nested;
  state.counters["nested_speedup"] = t_flat / t_nested;
  state.counters["outer_threads"] = part.outer;
  state.counters["inner_threads"] = part.inner;
  state.SetItemsProcessed(state.iterations() * n * nw);
}

} // namespace

// Paper scale (N=1024..2048, 8..16 walkers) across tile sizes from the
// fine-tiled end (Nb=32, where per-pair pays one weight recomputation per
// tile per walker and the fused path's up-front weight batch wins most) to
// the paper's BDW-tuned Nb=64/128, plus one smaller CI-friendly point.
// Args: {N, Nb, nw, P}; P=0 means one block spanning the whole population
// (maximum table reuse).
BENCHMARK(BM_BatchedVGH_FusedVsPerPair)
    ->Args({512, 64, 8, 0})
    ->Args({1024, 32, 8, 0})
    ->Args({1024, 64, 8, 0})
    ->Args({1024, 128, 8, 0})
    ->Args({2048, 32, 16, 0})
    ->Args({2048, 128, 16, 0})
    ->UseManualTime();
BENCHMARK(BM_BatchedV_FusedVsPerPair)->Args({1024, 128, 8, 0})->UseManualTime();
BENCHMARK(BM_BatchedVGH_PerPair)->Args({1024, 128, 8});
BENCHMARK(BM_BatchedVGH_FusedMulti)->Args({1024, 128, 8, 0})->Args({1024, 128, 8, 4});
BENCHMARK(BM_BatchedVGH_FacadeVsDirect)->Args({1024, 128, 8})->UseManualTime();
// Args: {N, Nb, nw, outer crowds}; the inner team per crowd comes from the
// topology partition (ThreadPartition::resolve), so this row demonstrates
// the nested schedule wherever the host has threads left after the outer
// split (inner_threads counter > 1) and degrades to the flat shape on a
// fully-occupied machine.
BENCHMARK(BM_BatchedVGH_NestedVsFlat)
    ->Args({1024, 64, 8, 2})
    ->Args({2048, 128, 16, 4})
    ->UseManualTime();

BENCHMARK_MAIN();
