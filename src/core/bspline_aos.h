// Baseline engine with AoS output layout (paper Fig. 4(a)).
//
// This reproduces the optimized C/C++ CPU algorithm of the public QMCPACK
// distribution that the paper uses as its baseline:
//   * the inner loop over splines is SIMD-annotated and streams the
//     coefficient table with unit stride, BUT
//   * gradients are written as G[N][3] (3-strided) and Hessians as H[N][3][3]
//     (9-strided) — the AoS particle abstraction that causes gather/scatter
//     instructions and low SIMD efficiency,
//   * all 13 output components per orbital are accumulated (the symmetric
//     Hessian is stored in full), and
//   * the baseline VGL allocates its Hessian-trace temporaries per call and
//     walks all 64 (i,j,k) sub-cubes without unrolling the z loop — the two
//     "basic optimization" deficiencies §V-A mentions.
//
// Loops run over the *padded* spline count (see CoefStorage); callers size
// output buffers with padded_splines().
#ifndef MQC_CORE_BSPLINE_AOS_H
#define MQC_CORE_BSPLINE_AOS_H

#include <algorithm>
#include <memory>

#include "common/aligned_allocator.h"
#include "common/config.h"
#include "common/simd.h"
#include "core/coef_storage.h"
#include "core/weights.h"

namespace mqc {

template <typename T>
class BsplineAoS
{
public:
  explicit BsplineAoS(std::shared_ptr<const CoefStorage<T>> coefs) : coefs_(std::move(coefs)) {}

  [[nodiscard]] int num_splines() const noexcept { return coefs_->num_splines(); }
  [[nodiscard]] std::size_t padded_splines() const noexcept { return coefs_->padded_splines(); }
  [[nodiscard]] const CoefStorage<T>& coefs() const noexcept { return *coefs_; }

  /// Values only: v[n] for n < padded_splines().
  void evaluate_v(T x, T y, T z, T* MQC_RESTRICT v) const
  {
    BsplineWeights3D<T> w;
    compute_weights_v(coefs_->grid(), x, y, z, w);
    const int np = static_cast<int>(coefs_->padded_splines());
    std::fill_n(v, static_cast<std::size_t>(np), T(0));
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        for (int k = 0; k < 4; ++k) {
          const T wv = w.a[i] * w.b[j] * w.c[k];
          const T* MQC_RESTRICT p = coefs_->row(w.i0 + i, w.j0 + j, w.k0 + k);
          MQC_SIMD
          for (int n = 0; n < np; ++n)
            v[n] += wv * p[n];
        }
  }

  /// Value + gradient (AoS, g[3n+d]) + Laplacian l[n].
  void evaluate_vgl(T x, T y, T z, T* MQC_RESTRICT v, T* MQC_RESTRICT g, T* MQC_RESTRICT l) const
  {
    BsplineWeights3D<T> w;
    compute_weights_vgh(coefs_->grid(), x, y, z, w);
    const int np = static_cast<int>(coefs_->padded_splines());
    // Per-call temporaries for the Hessian trace: intentionally allocated
    // here, matching the baseline the paper improves on.
    aligned_vector<T> hxx(static_cast<std::size_t>(np), T(0));
    aligned_vector<T> hyy(static_cast<std::size_t>(np), T(0));
    aligned_vector<T> hzz(static_cast<std::size_t>(np), T(0));
    std::fill_n(v, static_cast<std::size_t>(np), T(0));
    std::fill_n(g, 3 * static_cast<std::size_t>(np), T(0));
    T* MQC_RESTRICT txx = hxx.data();
    T* MQC_RESTRICT tyy = hyy.data();
    T* MQC_RESTRICT tzz = hzz.data();
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        for (int k = 0; k < 4; ++k) {
          const T wv = w.a[i] * w.b[j] * w.c[k];
          const T wx = w.da[i] * w.b[j] * w.c[k];
          const T wy = w.a[i] * w.db[j] * w.c[k];
          const T wz = w.a[i] * w.b[j] * w.dc[k];
          const T wxx = w.d2a[i] * w.b[j] * w.c[k];
          const T wyy = w.a[i] * w.d2b[j] * w.c[k];
          const T wzz = w.a[i] * w.b[j] * w.d2c[k];
          const T* MQC_RESTRICT p = coefs_->row(w.i0 + i, w.j0 + j, w.k0 + k);
          // No simd pragma: the strided AoS stores defeat vectorization and
          // the baseline deliberately leaves the loop to the compiler, as the
          // reference einspline C code does (forcing `omp simd` here would
          // generate scatter instructions slower than the real baseline).
          for (int n = 0; n < np; ++n) {
            const T pn = p[n];
            v[n] += wv * pn;
            g[3 * n + 0] += wx * pn;
            g[3 * n + 1] += wy * pn;
            g[3 * n + 2] += wz * pn;
            txx[n] += wxx * pn;
            tyy[n] += wyy * pn;
            tzz[n] += wzz * pn;
          }
        }
    MQC_SIMD
    for (int n = 0; n < np; ++n)
      l[n] = txx[n] + tyy[n] + tzz[n];
  }

  /// Value + gradient (AoS) + full 3x3 Hessian (AoS, h[9n+3r+c]).
  void evaluate_vgh(T x, T y, T z, T* MQC_RESTRICT v, T* MQC_RESTRICT g, T* MQC_RESTRICT h) const
  {
    BsplineWeights3D<T> w;
    compute_weights_vgh(coefs_->grid(), x, y, z, w);
    const int np = static_cast<int>(coefs_->padded_splines());
    std::fill_n(v, static_cast<std::size_t>(np), T(0));
    std::fill_n(g, 3 * static_cast<std::size_t>(np), T(0));
    std::fill_n(h, 9 * static_cast<std::size_t>(np), T(0));
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        for (int k = 0; k < 4; ++k) {
          const T wv = w.a[i] * w.b[j] * w.c[k];
          const T wx = w.da[i] * w.b[j] * w.c[k];
          const T wy = w.a[i] * w.db[j] * w.c[k];
          const T wz = w.a[i] * w.b[j] * w.dc[k];
          const T wxx = w.d2a[i] * w.b[j] * w.c[k];
          const T wxy = w.da[i] * w.db[j] * w.c[k];
          const T wxz = w.da[i] * w.b[j] * w.dc[k];
          const T wyy = w.a[i] * w.d2b[j] * w.c[k];
          const T wyz = w.a[i] * w.db[j] * w.dc[k];
          const T wzz = w.a[i] * w.b[j] * w.d2c[k];
          const T* MQC_RESTRICT p = coefs_->row(w.i0 + i, w.j0 + j, w.k0 + k);
          // No simd pragma (see evaluate_vgl): the baseline leaves the
          // strided-store loop to the compiler, like the einspline C code.
          for (int n = 0; n < np; ++n) {
            const T pn = p[n];
            v[n] += wv * pn;
            g[3 * n + 0] += wx * pn;
            g[3 * n + 1] += wy * pn;
            g[3 * n + 2] += wz * pn;
            h[9 * n + 0] += wxx * pn;
            h[9 * n + 1] += wxy * pn;
            h[9 * n + 2] += wxz * pn;
            h[9 * n + 3] += wxy * pn;
            h[9 * n + 4] += wyy * pn;
            h[9 * n + 5] += wyz * pn;
            h[9 * n + 6] += wxz * pn;
            h[9 * n + 7] += wyz * pn;
            h[9 * n + 8] += wzz * pn;
          }
        }
  }

private:
  std::shared_ptr<const CoefStorage<T>> coefs_;
};

} // namespace mqc

#endif // MQC_CORE_BSPLINE_AOS_H
