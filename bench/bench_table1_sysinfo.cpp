// Table I analogue: the host's system configuration row, including measured
// STREAM bandwidth and FMA peak — the two ceilings every other bench and the
// roofline analysis are interpreted against — plus the coefficient-table
// footprint the facade reports per precision path (the resident allocation
// the SP/mixed storage halves relative to a DP build).
#include <iostream>

#include "common/sysinfo.h"
#include "common/table.h"
#include "core/bspline_soa.h"
#include "core/orbital_set.h"
#include "core/synthetic_orbitals.h"
#include "perf/roofline.h"

int main()
{
  using namespace mqc;
  print_banner(std::cout, "Table I (host column): system configuration");
  const SystemInfo info = query_system_info();
  print_system_info(std::cout, info);

  std::cout << "measuring STREAM triad bandwidth and FMA peak...\n";
  const double bw = measure_triad_bandwidth();
  const double peak = measure_peak_gflops_sp();
  std::cout << "Stream BW (GB/s)  " << TablePrinter::cell(bw / 1e9, 1) << '\n'
            << "SP peak (GFLOPS)  " << TablePrinter::cell(peak, 1) << '\n';
  std::cout << "\nPaper reference (Table I): BDW 64 GB/s, KNC 177 GB/s, KNL 490 GB/s, "
               "BG/Q 28 GB/s\n";

  // Coefficient-table footprint per precision path, as the OrbitalSet facade
  // reports it (capabilities().coef_table_bytes) at a representative size.
  // The mixed path reads the SAME float table as the SP row — its saving is
  // the DP-vs-SP storage gap, not a third allocation.
  {
    const int n = 512, ng = 32;
    const auto table_dp = make_random_storage<double>(Grid3D<double>::cube(ng, 1.0), n, 11);
    const auto table_sp = convert_storage<float>(*table_dp);
    const BsplineSoA<double> eng_dp(table_dp);
    const BsplineSoA<float> eng_sp(table_sp);
    const BsplineSoA<float, double> eng_mx(table_sp);
    const OrbitalSet<double> set_dp(eng_dp);
    const OrbitalSet<float> set_sp(eng_sp);
    const OrbitalSet<float> set_mx(eng_mx);
    TablePrinter tp({"precision path", "coef_table_bytes", "MB"});
    tp.add_row({"double (native)", TablePrinter::cell(static_cast<double>(
                                       set_dp.capabilities().coef_table_bytes), 0),
                TablePrinter::cell(set_dp.capabilities().coef_table_bytes / 1e6, 1)});
    tp.add_row({"float (native)", TablePrinter::cell(static_cast<double>(
                                      set_sp.capabilities().coef_table_bytes), 0),
                TablePrinter::cell(set_sp.capabilities().coef_table_bytes / 1e6, 1)});
    tp.add_row({"float (mixed)", TablePrinter::cell(static_cast<double>(
                                     set_mx.capabilities().coef_table_bytes), 0),
                TablePrinter::cell(set_mx.capabilities().coef_table_bytes / 1e6, 1)});
    std::cout << "\ncoefficient-table footprint (SoA engine, N=" << n << ", grid " << ng
              << "^3):\n";
    tp.print(std::cout);
  }
  return 0;
}
