// Crowd lock-step driver (tentpole of the batched-driver line of work).
//
// A *crowd* is a set of W walkers advanced through the Monte Carlo sweep in
// lock-step: when electron e is moved, the W trial positions are gathered
// and evaluated as ONE multi-position B-spline batch — the crowd plays the
// role of the position block of the PR 2 multi-evaluation layer, so each
// AoSoA tile's coefficient slice is streamed from memory once per crowd
// instead of once per walker.  Everything that is physically per-walker
// (distance tables, Jastrow ratios, determinant ratios, the Metropolis
// decision and its rng draw) stays per-walker, on the walker's own rng
// stream, in the walker's own state.  Because the per-walker arithmetic is
// untouched and the multi-position kernels are bit-identical to their
// single-position counterparts, a crowd trajectory is bit-for-bit the
// trajectory the per-walker driver produces from the same seeds — the
// equivalence the test suite enforces.  (Design follows the batched drivers
// of Luo et al., arXiv:1805.07406, on top of the source paper's engines.)
//
// Two consumers:
//   * run_miniqmc() with cfg.driver == DriverMode::Crowd — the float
//     miniQMC sweep, batching VGH (moves), VGL (kinetic) and quadrature V
//     per crowd (implementation in crowd_driver.cpp);
//   * WavefunctionCrowd<T> below — lock-step pricing for a set of
//     SlaterJastrow wave functions, templated so the equivalence tests can
//     run it in float and double.
#ifndef MQC_QMC_CROWD_DRIVER_H
#define MQC_QMC_CROWD_DRIVER_H

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/aligned_allocator.h"
#include "common/vec3.h"
#include "core/orbital_set.h"
#include "qmc/wavefunction.h"

namespace mqc {

/// Lock-step move pricing for a crowd of Slater-Jastrow wave functions.
///
/// All walkers must be built on the SAME orbital set (the usual QMC setup:
/// one read-only coefficient table shared by the whole population); the
/// crowd then evaluates the W trial positions of one electron move with a
/// single multi-position OrbitalSet request and feeds each wave function
/// its value slice through SlaterJastrow::ratio_log_v.  Accept/reject
/// remain per-walker calls on the underlying wave functions.
template <typename T>
class WavefunctionCrowd
{
public:
  /// @throws std::invalid_argument on an empty crowd, a null walker, or
  /// walkers built on different orbital sets — the batch sweep runs on
  /// walker 0's engine, so a walker with its own coefficient storage would
  /// silently receive another walker's orbital values (checked at runtime,
  /// not assert-only: this is a public API and the failure mode is wrong
  /// physics, not a crash).
  explicit WavefunctionCrowd(std::vector<SlaterJastrow<T>*> walkers)
      : walkers_(std::move(walkers))
  {
    if (walkers_.empty())
      throw std::invalid_argument("WavefunctionCrowd: empty crowd");
    for (const auto* w : walkers_) {
      if (w == nullptr)
        throw std::invalid_argument("WavefunctionCrowd: null walker");
      if (&w->engine().coefs() != &walkers_.front()->engine().coefs())
        throw std::invalid_argument("WavefunctionCrowd: walkers must share one orbital set");
    }
    spo_ = OrbitalSet<T>(walkers_.front()->engine());
    stride_ = walkers_.front()->engine().out_stride();
    vbuf_.resize(walkers_.size() * stride_);
    vptrs_.resize(walkers_.size());
    for (std::size_t i = 0; i < walkers_.size(); ++i)
      vptrs_[i] = vbuf_.data() + i * stride_;
    (void)ores_.weights_for(static_cast<int>(walkers_.size()));
  }

  [[nodiscard]] int size() const noexcept { return static_cast<int>(walkers_.size()); }
  [[nodiscard]] SlaterJastrow<T>& walker(int i) noexcept
  {
    return *walkers_[static_cast<std::size_t>(i)];
  }

  /// Hand this crowd its inner team (common/threading.h): the batched
  /// facade requests below schedule onto it and every walker's delayed
  /// determinant flush distributes over it.  Defaults to serial; any team
  /// size is bit-identical.
  void set_team(TeamHandle team)
  {
    team_ = team;
    for (auto* w : walkers_)
      w->set_det_team(team);
  }

  /// Price moving electron @p iel of every walker to its own trial position
  /// rnew[i], writing log(|psi'|/|psi|) into log_ratios[i].  One
  /// multi-position facade request serves the whole crowd; the per-walker
  /// correlation/determinant arithmetic is exactly SlaterJastrow::ratio_log's.
  void ratio_log(int iel, const Vec3<T>* rnew, double* log_ratios)
  {
    const int w = size();
    OrbitalEvalRequest<T> rq;
    rq.deriv = DerivLevel::V;
    rq.positions = rnew;
    rq.count = w;
    rq.v = vptrs_.data();
    rq.parallel = team_.parallel();
    rq.team = team_;
    spo_.evaluate(rq, ores_);
    for (int i = 0; i < w; ++i)
      log_ratios[i] = walkers_[static_cast<std::size_t>(i)]->ratio_log_v(
          iel, rnew[i], vptrs_[static_cast<std::size_t>(i)]);
  }

  /// Commit / discard walker @p i's pending move of electron @p iel.
  void accept(int i, int iel) { walkers_[static_cast<std::size_t>(i)]->accept(iel); }
  void reject(int i, int iel) noexcept { walkers_[static_cast<std::size_t>(i)]->reject(iel); }

private:
  std::vector<SlaterJastrow<T>*> walkers_;
  OrbitalSet<T> spo_;        ///< facade over walker 0's (shared) engine
  OrbitalResource<T> ores_;  ///< weight scratch for the crowd's requests
  TeamHandle team_ = TeamHandle::serial(); ///< inner team for batched requests
  std::size_t stride_ = 0;
  aligned_vector<T> vbuf_;   ///< W value slices, one facade request
  std::vector<T*> vptrs_;    ///< per-walker slice pointers
};

} // namespace mqc

#endif // MQC_QMC_CROWD_DRIVER_H
