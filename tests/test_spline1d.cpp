// Tests for the general 1D interpolating spline: all three boundary
// conditions, node interpolation, derivative accuracy, convergence order.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/spline1d.h"

using namespace mqc;

namespace {

constexpr double two_pi = 6.283185307179586476925286766559;

std::vector<double> sample(double (*f)(double), double x0, double x1, int n, bool periodic)
{
  std::vector<double> d(static_cast<std::size_t>(n));
  const double dx = periodic ? (x1 - x0) / n : (x1 - x0) / (n - 1);
  for (int i = 0; i < n; ++i)
    d[static_cast<std::size_t>(i)] = f(x0 + i * dx);
  return d;
}

} // namespace

TEST(Spline1D, PeriodicInterpolatesNodes)
{
  auto f = +[](double x) { return std::sin(two_pi * x) + 0.5 * std::cos(2 * two_pi * x); };
  const int n = 24;
  const auto s = Spline1D<double>::periodic(0.0, 1.0, sample(f, 0.0, 1.0, n, true));
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(s.value(i / double(n)), f(i / double(n)), 1e-12);
}

TEST(Spline1D, PeriodicWrapsOutsideDomain)
{
  auto f = +[](double x) { return std::cos(two_pi * x); };
  const auto s = Spline1D<double>::periodic(0.0, 1.0, sample(f, 0.0, 1.0, 32, true));
  for (double x : {0.13, 0.77}) {
    EXPECT_NEAR(s.value(x), s.value(x + 1.0), 1e-12);
    EXPECT_NEAR(s.value(x), s.value(x - 3.0), 1e-12);
  }
}

TEST(Spline1D, PeriodicDerivativesMatchAnalytic)
{
  auto f = +[](double x) { return std::sin(two_pi * x); };
  const auto s = Spline1D<double>::periodic(0.0, 1.0, sample(f, 0.0, 1.0, 64, true));
  for (double x : {0.05, 0.31, 0.62, 0.94}) {
    double v, dv, d2v;
    s.evaluate(x, v, dv, d2v);
    EXPECT_NEAR(v, std::sin(two_pi * x), 1e-6);
    EXPECT_NEAR(dv, two_pi * std::cos(two_pi * x), 1e-3);
    EXPECT_NEAR(d2v, -two_pi * two_pi * std::sin(two_pi * x), 0.1);
  }
}

TEST(Spline1D, NaturalInterpolatesNodesAndEnds)
{
  auto f = +[](double x) { return x * x * x - 2 * x + 1; };
  const int n = 16;
  const auto s = Spline1D<double>::natural(0.0, 2.0, sample(f, 0.0, 2.0, n, false));
  const double dx = 2.0 / (n - 1);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(s.value(i * dx), f(i * dx), 1e-12) << i;
}

TEST(Spline1D, NaturalBoundarySecondDerivativeVanishes)
{
  auto f = +[](double x) { return std::exp(-x) * std::sin(3 * x); };
  const auto s = Spline1D<double>::natural(0.0, 2.0, sample(f, 0.0, 2.0, 40, false));
  double v, dv, d2v;
  s.evaluate(0.0, v, dv, d2v);
  EXPECT_NEAR(d2v, 0.0, 1e-9);
  s.evaluate(2.0, v, dv, d2v);
  EXPECT_NEAR(d2v, 0.0, 1e-9);
}

TEST(Spline1D, ClampedEndSlopesAreExact)
{
  auto f = +[](double x) { return std::cos(2 * x) + 0.2 * x; };
  auto df = +[](double x) { return -2 * std::sin(2 * x) + 0.2; };
  const int n = 30;
  const auto s =
      Spline1D<double>::clamped(0.0, 3.0, sample(f, 0.0, 3.0, n, false), df(0.0), df(3.0));
  double v, dv, d2v;
  s.evaluate(0.0, v, dv, d2v);
  EXPECT_NEAR(v, f(0.0), 1e-12);
  EXPECT_NEAR(dv, df(0.0), 1e-10);
  s.evaluate(3.0, v, dv, d2v);
  EXPECT_NEAR(v, f(3.0), 1e-12);
  EXPECT_NEAR(dv, df(3.0), 1e-10);
}

TEST(Spline1D, ClampedInterpolatesNodes)
{
  auto f = +[](double x) { return 1.0 / (1.0 + x * x); };
  const int n = 20;
  const auto s = Spline1D<double>::clamped(0.0, 4.0, sample(f, 0.0, 4.0, n, false), 0.0,
                                           -2.0 * 4.0 / ((1 + 16.0) * (1 + 16.0)));
  const double dx = 4.0 / (n - 1);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(s.value(i * dx), f(i * dx), 1e-12);
}

TEST(Spline1D, ClampedReductionBeyondDomainClamps)
{
  auto f = +[](double x) { return x; };
  const auto s = Spline1D<double>::clamped(0.0, 1.0, sample(f, 0.0, 1.0, 8, false), 1.0, 1.0);
  // Beyond-domain evaluation returns the end values (clamped reduction).
  EXPECT_NEAR(s.value(1.5), s.value(1.0), 1e-12);
  EXPECT_NEAR(s.value(-0.5), s.value(0.0), 1e-12);
}

TEST(Spline1D, LinearFunctionReproducedExactlyByClamped)
{
  // Cubic splines reproduce polynomials up to degree 3; a linear function
  // with exact end slopes must be reproduced to machine precision
  // *everywhere*, not just at nodes.
  auto f = +[](double x) { return 2.5 * x - 1.0; };
  const auto s = Spline1D<double>::clamped(0.0, 1.0, sample(f, 0.0, 1.0, 9, false), 2.5, 2.5);
  for (double x : {0.05, 0.21, 0.5, 0.83, 0.99}) {
    double v, dv, d2v;
    s.evaluate(x, v, dv, d2v);
    EXPECT_NEAR(v, f(x), 1e-12);
    EXPECT_NEAR(dv, 2.5, 1e-10);
    EXPECT_NEAR(d2v, 0.0, 1e-8);
  }
}

TEST(Spline1D, FourthOrderConvergencePeriodic)
{
  auto f = +[](double x) { return std::sin(two_pi * x); };
  std::vector<double> errs;
  for (int n : {16, 32, 64}) {
    const auto s = Spline1D<double>::periodic(0.0, 1.0, sample(f, 0.0, 1.0, n, true));
    double err = 0.0;
    for (int i = 0; i < 1000; ++i) {
      const double x = (i + 0.5) / 1000.0;
      err = std::max(err, std::abs(s.value(x) - f(x)));
    }
    errs.push_back(err);
  }
  EXPECT_GT(errs[0] / errs[1], 12.0);
  EXPECT_GT(errs[1] / errs[2], 12.0);
}

TEST(Spline1D, FloatStorageStillAccurate)
{
  auto f = +[](double x) { return std::cos(two_pi * x); };
  const auto s = Spline1D<float>::periodic(0.0f, 1.0f, sample(f, 0.0, 1.0, 32, true));
  for (double x : {0.1, 0.4, 0.9})
    EXPECT_NEAR(s.value(static_cast<float>(x)), f(x), 1e-4);
}

TEST(Spline1D, ControlPointsExposedWithExpectedSize)
{
  auto f = +[](double x) { return x; };
  const auto sp = Spline1D<double>::periodic(0.0, 1.0, sample(f, 0.0, 1.0, 10, true));
  EXPECT_EQ(sp.control_points().size(), 13u); // n + 3
  const auto sn = Spline1D<double>::natural(0.0, 1.0, sample(f, 0.0, 1.0, 10, false));
  EXPECT_EQ(sn.control_points().size(), 12u); // n + 2
}
