// Shared helpers for the test suite.
#ifndef MQC_TESTS_TEST_UTILS_H
#define MQC_TESTS_TEST_UTILS_H

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/coef_storage.h"
#include "core/grid.h"

namespace mqc::test {

/// Relative tolerance appropriate for the storage precision: kernels sum 64
/// products, so error scales with ~sqrt(64) ULPs of the accumulation type.
template <typename T>
constexpr double engine_tol()
{
  return std::is_same_v<T, float> ? 5e-4 : 1e-11;
}

/// assert |a-b| <= tol * max(1, |a|, |b|).
inline void expect_close(double a, double b, double tol, const char* what = "")
{
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  EXPECT_NEAR(a, b, tol * scale) << what;
}

/// Deterministic random positions across the grid domain (periodic images
/// included: the range extends one period on each side to test wrapping).
template <typename T>
std::vector<std::array<T, 3>> random_positions(const Grid3D<T>& g, int count, std::uint64_t seed,
                                               bool beyond_domain = false)
{
  Xoshiro256 rng(seed);
  std::vector<std::array<T, 3>> out;
  out.reserve(static_cast<std::size_t>(count));
  const double pad = beyond_domain ? 1.0 : 0.0;
  for (int i = 0; i < count; ++i) {
    const double lx = g.x.end - g.x.start, ly = g.y.end - g.y.start, lz = g.z.end - g.z.start;
    out.push_back({static_cast<T>(rng.uniform(g.x.start - pad * lx, g.x.end + pad * lx)),
                   static_cast<T>(rng.uniform(g.y.start - pad * ly, g.y.end + pad * ly)),
                   static_cast<T>(rng.uniform(g.z.start - pad * lz, g.z.end + pad * lz))});
  }
  return out;
}

} // namespace mqc::test

#endif // MQC_TESTS_TEST_UTILS_H
