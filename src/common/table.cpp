#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mqc {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells)
{
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::cell(double value, int precision)
{
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TablePrinter::cell(std::size_t value) { return std::to_string(value); }
std::string TablePrinter::cell(int value) { return std::to_string(value); }

void TablePrinter::print(std::ostream& os) const
{
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    os << '\n';
  };

  print_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths)
    rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_)
    print_row(row);
}

void print_banner(std::ostream& os, const std::string& title)
{
  os << "\n== " << title << " ==\n";
}

} // namespace mqc
