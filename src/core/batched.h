// Batched multi-walker evaluation — the extension direction the paper closes
// with ("we plan to extend this AoSoA design to parallelize other parts of
// QMCPACK"), which production QMCPACK later realized as batched drivers.
//
// One flat parallel loop over (walker, tile) pairs evaluates a whole
// population's positions against the shared tiled coefficient table.  Tiles
// of different walkers are independent work items, so this generalizes the
// nested-threading partition (Opt C) from "nth threads per walker" to "any
// threads over any walkers" with the same cache-residency benefits: a thread
// sweeping one tile across several walkers reuses that tile's table slice.
#ifndef MQC_CORE_BATCHED_H
#define MQC_CORE_BATCHED_H

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/vec3.h"
#include "core/multi_bspline.h"
#include "qmc/walker.h"

namespace mqc {

/// Evaluate VGH at positions[w] into outs[w] for every walker w.
/// Work is parallelized over (tile, walker) with tile as the outer index so
/// each thread's coefficient working set stays hot across walkers.
template <typename T>
void evaluate_vgh_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                          std::vector<WalkerSoA<T>*>& outs)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int w = 0; w < nw; ++w) {
      const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
      WalkerSoA<T>& out = *outs[static_cast<std::size_t>(w)];
      engine.evaluate_vgh_tile(t, r.x, r.y, r.z, out.v.data(), out.g.data(), out.h.data(),
                               out.stride);
    }
}

/// Batched values-only evaluation (pseudopotential quadrature batches).
template <typename T>
void evaluate_v_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                        std::vector<WalkerSoA<T>*>& outs)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int w = 0; w < nw; ++w) {
      const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
      engine.evaluate_v_tile(t, r.x, r.y, r.z, outs[static_cast<std::size_t>(w)]->v.data());
    }
}

/// Batched VGL (local-energy measurement over a population).
template <typename T>
void evaluate_vgl_batched(const MultiBspline<T>& engine, const std::vector<Vec3<T>>& positions,
                          std::vector<WalkerSoA<T>*>& outs)
{
  assert(positions.size() == outs.size());
  const int nw = static_cast<int>(positions.size());
  const int nt = engine.num_tiles();
#pragma omp parallel for collapse(2) schedule(static)
  for (int t = 0; t < nt; ++t)
    for (int w = 0; w < nw; ++w) {
      const Vec3<T>& r = positions[static_cast<std::size_t>(w)];
      WalkerSoA<T>& out = *outs[static_cast<std::size_t>(w)];
      engine.evaluate_vgl_tile(t, r.x, r.y, r.z, out.v.data(), out.g.data(), out.l.data(),
                               out.stride);
    }
}

} // namespace mqc

#endif // MQC_CORE_BATCHED_H
