// Domain scenario 3: strong scaling within a walker (paper §V-C, Fig. 9).
//
// Demonstrates the nested-threading API: the same fixed amount of Monte
// Carlo work (one walker's VGH evaluations) is executed by teams of
// different sizes, and the time-to-solution per walker shrinks with nth.
//
//   ./examples/strong_scaling [N] [Nb] [grid]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/threading.h"
#include "core/synthetic_orbitals.h"
#include "qmc/nested_driver.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const int nb = argc > 2 ? std::atoi(argv[2]) : 32;
  const int ng = argc > 3 ? std::atoi(argv[3]) : 32;

  const auto grid = Grid3D<float>::cube(ng, 1.0f);
  auto coefs = make_random_storage<float>(grid, n, 31337);
  MultiBspline<float> engine(*coefs, nb);
  std::printf("N=%d orbitals in %d tiles of Nb=%d; host has %d OpenMP threads\n", n,
              engine.num_tiles(), nb, max_threads());

  NestedConfig cfg;
  cfg.ns = 64;
  cfg.niters = 8;
  cfg.kernel = NestedKernel::VGH;
  cfg.num_walkers = 1;

  double t1 = 0.0;
  for (int nth : {1, 2, 4}) {
    if (engine.num_tiles() < nth)
      break;
    cfg.nth = nth;
    const auto res = run_nested(engine, cfg);
    if (nth == 1)
      t1 = res.seconds;
    std::printf("  nth=%d  time %.4f s  speedup %.2fx  (%.1f Meval/s)%s\n", nth, res.seconds,
                t1 / res.seconds, res.throughput / 1e6,
                nth > max_threads() ? "  [oversubscribed]" : "");
  }
  std::printf("\nEach team member owns the tile subset {member, member+nth, ...};\n"
              "no synchronization is needed inside a position evaluation.\n");
  return 0;
}
