// JobQueue implementation: per-shard worker threads packing independent
// jobs into crowd sweeps on the population's resident, socket-local
// engines.  See job_queue.h for the API contract and crowd_sweep.h for the
// sweep kernel.
#include "qmc/job_queue.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "qmc/crowd_sweep.h"

namespace mqc {

using detail::CrowdScratch;
using detail::MiniQMCSystem;
using detail::WalkerState;

namespace {

struct PendingJob
{
  std::uint64_t id = 0;
  JobSpec spec;
};

/// Validate a spec against the resident system; returns an empty string when
/// the job can run on the population's replicated tables as-is.
std::string validate_spec(const JobSpec& spec, const MiniQMCConfig& cfg,
                          const MiniQMCSystem& sys)
{
  if (spec.num_walkers < 1)
    return "num_walkers must be >= 1";
  if (spec.num_walkers > 1 << 20)
    return "num_walkers is implausibly large";
  if (spec.steps < 0)
    return "steps must be >= 0";
  if (spec.precision_bytes != static_cast<int>(sizeof(detail::qmc_real)))
    return "precision mismatch: resident engine is " +
           std::to_string(sizeof(detail::qmc_real)) + "-byte real, job asked for " +
           std::to_string(spec.precision_bytes);
  if (spec.grid_size != 0 && spec.grid_size != cfg.grid_size)
    return "system mismatch: resident grid_size " + std::to_string(cfg.grid_size) +
           ", job asked for " + std::to_string(spec.grid_size);
  for (int d = 0; d < 3; ++d)
    if (spec.supercell[static_cast<std::size_t>(d)] != 0 &&
        spec.supercell[static_cast<std::size_t>(d)] != cfg.supercell[static_cast<std::size_t>(d)])
      return "system mismatch: job supercell disagrees with the resident population";
  (void)sys;
  return {};
}

} // namespace

struct JobQueue::Impl
{
  WalkerPopulation& pop;
  int max_pack;

  std::mutex mu;
  std::condition_variable cv_work; ///< signalled on submit and stop
  std::condition_variable cv_done; ///< signalled when results land
  std::deque<PendingJob> pending;
  std::map<std::uint64_t, JobResult> results; ///< completed, not yet collected
  std::uint64_t next_id = 1;
  std::size_t in_flight = 0;
  std::size_t completed = 0;
  std::size_t batches = 0;
  bool stop = false;
  bool closed = false; ///< set by drain(): later submits are surfaced rejections

  std::vector<std::thread> workers;

  Impl(WalkerPopulation& p, int pack) : pop(p), max_pack(std::max(1, pack)) {}

  /// Run one pack of jobs as a single crowd on shard @p shard's resident
  /// system.  No queue lock is held here.  Returns the number of crowd
  /// sweeps executed (0 when every job in the pack was rejected).
  std::size_t run_batch(int shard, std::vector<PendingJob>& batch,
                        std::vector<std::pair<std::uint64_t, JobResult>>& out)
  {
    const MiniQMCSystem& sys = pop.shard_system_internal(shard);
    const MiniQMCConfig& base = pop.config_internal();

    // Split into runnable jobs and immediate rejections.
    std::vector<PendingJob*> runnable;
    for (PendingJob& j : batch) {
      JobResult r;
      r.id = j.id;
      r.shard = shard;
      r.error = validate_spec(j.spec, base, sys);
      if (r.error.empty()) {
        runnable.push_back(&j);
      } else {
        out.emplace_back(j.id, std::move(r));
      }
    }
    if (runnable.empty())
      return 0;

    // Longest step budget first: the pack's active walkers at any step form
    // a contiguous prefix, so short jobs retire without padding.  Stable on
    // id so the order (which is trajectory-neutral anyway) is reproducible.
    std::stable_sort(runnable.begin(), runnable.end(), [](const PendingJob* a,
                                                          const PendingJob* b) {
      return a->spec.steps != b->spec.steps ? a->spec.steps > b->spec.steps : a->id < b->id;
    });

    int total = 0, max_steps = 0;
    for (const PendingJob* j : runnable) {
      total += j->spec.num_walkers;
      max_steps = std::max(max_steps, j->spec.steps);
    }

    // Ephemeral pack walkers on the shard's resident engine.  Each job's
    // walkers are initialized from ITS config (its seed), with walker index
    // local to the job — exactly what a standalone run would do — so the
    // trajectory is f(physics, job seed, index), independent of packing.
    std::vector<WalkerState> walkers(static_cast<std::size_t>(total));
    std::vector<int> offsets;
    offsets.reserve(runnable.size());
    int off = 0;
    for (const PendingJob* j : runnable) {
      MiniQMCConfig jcfg = base;
      jcfg.seed = j->spec.seed;
      jcfg.num_walkers = j->spec.num_walkers;
      jcfg.steps = j->spec.steps;
      jcfg.checkpoint_path.clear(); // jobs are ephemeral: no persistence
      jcfg.resume = false;
      jcfg.fault_inject.clear();
      offsets.push_back(off);
      for (int k = 0; k < j->spec.num_walkers; ++k) {
        WalkerState& w = walkers[static_cast<std::size_t>(off + k)];
        detail::init_walker(w, sys, jcfg, k);
        w.set_team(TeamHandle::serial()); // plain thread: no OpenMP regions
      }
      off += j->spec.num_walkers;
    }

    // One lock-step sweep over the pack, shrinking to the active prefix as
    // budgets expire.  Serial team: the concurrency is across shards/packs.
    CrowdScratch scr(walkers, 0, total, sys);
    ProfileRegistry prof;
    for (int s = 0; s < max_steps; ++s) {
      int active = 0;
      for (std::size_t ji = 0; ji < runnable.size(); ++ji) {
        if (runnable[ji]->spec.steps > s)
          active = offsets[ji] + runnable[ji]->spec.num_walkers;
      }
      if (active == 0)
        break;
      detail::crowd_sweep_steps(sys, base, walkers, 0, active, scr, prof,
                                TeamHandle::serial(), s, s + 1);
    }

    for (std::size_t ji = 0; ji < runnable.size(); ++ji) {
      const PendingJob* j = runnable[ji];
      JobResult r;
      r.id = j->id;
      r.ok = true;
      r.shard = shard;
      r.walker_accepts.resize(static_cast<std::size_t>(j->spec.num_walkers));
      r.walker_log_det.resize(static_cast<std::size_t>(j->spec.num_walkers));
      for (int k = 0; k < j->spec.num_walkers; ++k) {
        WalkerState& w = walkers[static_cast<std::size_t>(offsets[ji] + k)];
        r.walker_accepts[static_cast<std::size_t>(k)] = w.accepted;
        r.walker_log_det[static_cast<std::size_t>(k)] =
            w.det_up.log_det() + w.det_dn.log_det();
      }
      out.emplace_back(j->id, std::move(r));
    }
    return 1;
  }

  void worker_loop(int shard)
  {
    for (;;) {
      std::vector<PendingJob> batch;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] { return stop || !pending.empty(); });
        if (pending.empty())
          return; // stop requested and nothing left to drain
        while (!pending.empty() && static_cast<int>(batch.size()) < max_pack) {
          batch.push_back(std::move(pending.front()));
          pending.pop_front();
        }
        in_flight += batch.size();
      }
      std::vector<std::pair<std::uint64_t, JobResult>> done;
      const std::size_t swept = run_batch(shard, batch, done);
      {
        std::lock_guard<std::mutex> lk(mu);
        for (auto& [id, r] : done)
          results.emplace(id, std::move(r));
        in_flight -= batch.size();
        completed += batch.size();
        batches += swept;
      }
      cv_done.notify_all();
    }
  }
};

JobQueue::JobQueue(WalkerPopulation& pop, int max_pack)
    : impl_(std::make_unique<Impl>(pop, max_pack))
{
  const int n = std::max(1, pop.num_shards());
  impl_->workers.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s)
    impl_->workers.emplace_back([this, s] { impl_->worker_loop(s); });
}

JobQueue::~JobQueue()
{
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& t : impl_->workers)
    t.join();
}

std::uint64_t JobQueue::submit(const JobSpec& spec)
{
  std::uint64_t id;
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    id = impl_->next_id++;
    if (impl_->closed) {
      // drain() closed the queue: racing this submit against worker shutdown
      // could silently drop the job, so it is rejected with a surfaced,
      // waitable result instead (never enqueued, never silently lost).
      JobResult r;
      r.id = id;
      r.ok = false;
      r.error = "queue closed by drain(); job rejected";
      impl_->results.emplace(id, std::move(r));
      rejected = true;
    } else {
      impl_->pending.push_back(PendingJob{id, spec});
    }
  }
  if (rejected)
    impl_->cv_done.notify_all();
  else
    impl_->cv_work.notify_one();
  return id;
}

JobResult JobQueue::wait(std::uint64_t id)
{
  std::unique_lock<std::mutex> lk(impl_->mu);
  if (id == 0 || id >= impl_->next_id) {
    JobResult r;
    r.id = id;
    r.error = "unknown job id";
    return r;
  }
  impl_->cv_done.wait(lk, [&] {
    if (impl_->results.count(id) != 0)
      return true;
    // Already collected (or never landed): don't wait forever once the
    // pipeline is idle — wait() is one-shot per id.
    return impl_->pending.empty() && impl_->in_flight == 0;
  });
  auto it = impl_->results.find(id);
  if (it == impl_->results.end()) {
    JobResult r;
    r.id = id;
    r.error = "job result already collected";
    return r;
  }
  JobResult r = std::move(it->second);
  impl_->results.erase(it);
  return r;
}

std::vector<JobResult> JobQueue::drain()
{
  std::unique_lock<std::mutex> lk(impl_->mu);
  impl_->closed = true; // later submits become surfaced rejections (see submit)
  impl_->cv_done.wait(lk, [&] { return impl_->pending.empty() && impl_->in_flight == 0; });
  std::vector<JobResult> out;
  out.reserve(impl_->results.size());
  for (auto& [id, r] : impl_->results)
    out.push_back(std::move(r)); // std::map: already in submission (id) order
  impl_->results.clear();
  return out;
}

int JobQueue::num_workers() const noexcept { return static_cast<int>(impl_->workers.size()); }

std::size_t JobQueue::completed() const
{
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->completed;
}

std::size_t JobQueue::packed_batches() const
{
  std::lock_guard<std::mutex> lk(impl_->mu);
  return impl_->batches;
}

} // namespace mqc
