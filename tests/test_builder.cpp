// Tests for the spline coefficient builder: the tridiagonal and cyclic
// solvers against dense references, the periodic interpolation condition,
// separability of the 3D solve, and O(h^4) convergence on smooth functions.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/bspline_builder.h"
#include "core/bspline_ref.h"
#include "core/coef_storage.h"
#include "test_utils.h"

using namespace mqc;

namespace {

/// Dense Gaussian elimination with partial pivoting (test oracle only).
std::vector<double> dense_solve(std::vector<std::vector<double>> a, std::vector<double> b)
{
  const int n = static_cast<int>(b.size());
  for (int k = 0; k < n; ++k) {
    int p = k;
    for (int i = k + 1; i < n; ++i)
      if (std::abs(a[i][k]) > std::abs(a[p][k]))
        p = i;
    std::swap(a[k], a[p]);
    std::swap(b[k], b[p]);
    for (int i = k + 1; i < n; ++i) {
      const double m = a[i][k] / a[k][k];
      for (int j = k; j < n; ++j)
        a[i][j] -= m * a[k][j];
      b[i] -= m * b[k];
    }
  }
  for (int i = n - 1; i >= 0; --i) {
    for (int j = i + 1; j < n; ++j)
      b[i] -= a[i][j] * b[j];
    b[i] /= a[i][i];
  }
  return b;
}

} // namespace

TEST(Builder, TridiagonalMatchesDenseSolve)
{
  Xoshiro256 rng(5);
  for (int n : {1, 2, 3, 5, 17, 64}) {
    std::vector<double> sub(n), diag(n), sup(n), rhs(n);
    std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
    for (int i = 0; i < n; ++i) {
      sub[i] = rng.uniform(-0.4, 0.4);
      sup[i] = rng.uniform(-0.4, 0.4);
      diag[i] = rng.uniform(2.0, 3.0); // diagonally dominant
      rhs[i] = rng.uniform(-1.0, 1.0);
      dense[i][i] = diag[i];
      if (i > 0)
        dense[i][i - 1] = sub[i];
      if (i + 1 < n)
        dense[i][i + 1] = sup[i];
    }
    const std::vector<double> expected = dense_solve(dense, rhs);
    std::vector<double> d = diag, x = rhs;
    solve_tridiagonal(sub.data(), d.data(), sup.data(), x.data(), n);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], expected[i], 1e-10) << "n=" << n << " i=" << i;
  }
}

TEST(Builder, CyclicTridiagonalMatchesDenseSolve)
{
  Xoshiro256 rng(6);
  for (int n : {3, 4, 5, 16, 48}) {
    const double sub = 1.0 / 6.0, diag = 4.0 / 6.0, sup = 1.0 / 6.0;
    std::vector<double> rhs(n);
    for (auto& v : rhs)
      v = rng.uniform(-1.0, 1.0);
    std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
    for (int i = 0; i < n; ++i) {
      dense[i][i] = diag;
      dense[i][(i + 1) % n] += sup;
      dense[i][(i + n - 1) % n] += sub;
    }
    const std::vector<double> expected = dense_solve(dense, rhs);
    std::vector<double> x(n);
    solve_cyclic_tridiagonal_const(sub, diag, sup, sub, sup, rhs.data(), x.data(), n);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(x[i], expected[i], 1e-10) << "n=" << n;
  }
}

// The defining property: control points must satisfy the interpolation
// stencil (c[m-1] + 4 c[m] + c[m+1]) / 6 == data[m] cyclically.
TEST(Builder, PeriodicLineInterpolationCondition)
{
  Xoshiro256 rng(7);
  for (int n : {1, 2, 3, 4, 7, 48, 101}) {
    std::vector<double> data(n), c(n);
    for (auto& v : data)
      v = rng.uniform(-2.0, 2.0);
    solve_periodic_spline_line(data.data(), c.data(), n);
    for (int m = 0; m < n; ++m) {
      const double lhs =
          (c[(m + n - 1) % n] + 4.0 * c[m] + c[(m + 1) % n]) / 6.0;
      EXPECT_NEAR(lhs, data[m], 1e-11) << "n=" << n << " m=" << m;
    }
  }
}

TEST(Builder, StridedLineMatchesContiguous)
{
  Xoshiro256 rng(8);
  const int n = 24;
  std::vector<double> data(n), c_ref(n);
  for (auto& v : data)
    v = rng.uniform(-1.0, 1.0);
  solve_periodic_spline_line(data.data(), c_ref.data(), n);

  const std::size_t stride = 5;
  std::vector<double> strided(n * stride, -99.0), out(n * stride, -99.0);
  for (int i = 0; i < n; ++i)
    strided[static_cast<std::size_t>(i) * stride] = data[i];
  solve_periodic_spline_line_strided(strided.data(), stride, out.data(), stride, n);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(out[static_cast<std::size_t>(i) * stride], c_ref[i], 1e-13);
  // Untouched gaps remain.
  EXPECT_EQ(out[1], -99.0);
}

// The 3D tensor solve of a separable product must equal the tensor product
// of 1D solves.
TEST(Builder, SeparableProductFactorizes)
{
  const int nx = 6, ny = 5, nz = 7;
  Xoshiro256 rng(9);
  std::vector<double> fx(nx), fy(ny), fz(nz);
  for (auto& v : fx)
    v = rng.uniform(0.5, 1.5);
  for (auto& v : fy)
    v = rng.uniform(0.5, 1.5);
  for (auto& v : fz)
    v = rng.uniform(0.5, 1.5);
  std::vector<double> data(static_cast<std::size_t>(nx) * ny * nz);
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int k = 0; k < nz; ++k)
        data[(static_cast<std::size_t>(i) * ny + j) * nz + k] = fx[i] * fy[j] * fz[k];
  solve_periodic_spline_3d(data.data(), nx, ny, nz);

  std::vector<double> cx(nx), cy(ny), cz(nz);
  solve_periodic_spline_line(fx.data(), cx.data(), nx);
  solve_periodic_spline_line(fy.data(), cy.data(), ny);
  solve_periodic_spline_line(fz.data(), cz.data(), nz);
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int k = 0; k < nz; ++k)
        EXPECT_NEAR(data[(static_cast<std::size_t>(i) * ny + j) * nz + k], cx[i] * cy[j] * cz[k],
                    1e-11);
}

// End-to-end: build a spline from samples of a periodic function and check
// interpolation at the grid nodes through the reference evaluator.
TEST(Builder, SplineInterpolatesSamplesAtNodes)
{
  const int ng = 10;
  const double L = 2.0;
  const auto grid = Grid3D<double>::cube(ng, L);
  CoefStorage<double> storage(grid, 2);

  auto f0 = [&](double x, double y, double z) {
    constexpr double two_pi = 6.283185307179586;
    return std::sin(two_pi * x / L) * std::cos(two_pi * y / L) + 0.3 * std::sin(two_pi * z / L);
  };
  auto f1 = [&](double x, double y, double z) {
    constexpr double two_pi = 6.283185307179586;
    return std::cos(two_pi * (x + 2 * y - z) / L);
  };
  std::vector<double> samples(static_cast<std::size_t>(ng) * ng * ng);
  for (int which = 0; which < 2; ++which) {
    for (int i = 0; i < ng; ++i)
      for (int j = 0; j < ng; ++j)
        for (int k = 0; k < ng; ++k) {
          const double x = i * L / ng, y = j * L / ng, z = k * L / ng;
          samples[(static_cast<std::size_t>(i) * ng + j) * ng + k] =
              which == 0 ? f0(x, y, z) : f1(x, y, z);
        }
    set_spline_from_samples(storage, which, samples.data());
  }

  BsplineRef<double> ref(storage);
  for (int i = 0; i < ng; ++i)
    for (int j = 0; j < ng; j += 3)
      for (int k = 0; k < ng; k += 4) {
        const double x = i * L / ng, y = j * L / ng, z = k * L / ng;
        const auto v = ref.evaluate_v(x, y, z);
        EXPECT_NEAR(v[0], f0(x, y, z), 1e-10) << i << ' ' << j << ' ' << k;
        EXPECT_NEAR(v[1], f1(x, y, z), 1e-10);
      }
}

// Off-node accuracy improves as O(h^4) for smooth periodic functions.
TEST(Builder, FourthOrderConvergence)
{
  constexpr double two_pi = 6.283185307179586;
  auto f = [](double x, double y, double z) {
    return std::sin(two_pi * x) * std::sin(two_pi * y) * std::sin(two_pi * z);
  };
  double prev_err = 0.0;
  std::vector<int> grids{8, 16, 32};
  std::vector<double> errs;
  for (int ng : grids) {
    const auto grid = Grid3D<double>::cube(ng, 1.0);
    CoefStorage<double> storage(grid, 1);
    std::vector<double> samples(static_cast<std::size_t>(ng) * ng * ng);
    for (int i = 0; i < ng; ++i)
      for (int j = 0; j < ng; ++j)
        for (int k = 0; k < ng; ++k)
          samples[(static_cast<std::size_t>(i) * ng + j) * ng + k] =
              f(i / double(ng), j / double(ng), k / double(ng));
    set_spline_from_samples(storage, 0, samples.data());
    BsplineRef<double> ref(storage);
    double err = 0.0;
    Xoshiro256 rng(13);
    for (int s = 0; s < 200; ++s) {
      const double x = rng.uniform(), y = rng.uniform(), z = rng.uniform();
      err = std::max(err, std::abs(ref.evaluate_v(x, y, z)[0] - f(x, y, z)));
    }
    errs.push_back(err);
    prev_err = err;
  }
  (void)prev_err;
  // Halving h must reduce the max error by ~16; allow slack (>= 10x).
  EXPECT_GT(errs[0] / errs[1], 10.0);
  EXPECT_GT(errs[1] / errs[2], 10.0);
}

TEST(Builder, ConstantFunctionReproducedExactly)
{
  const int ng = 6;
  const auto grid = Grid3D<double>::cube(ng, 1.0);
  CoefStorage<double> storage(grid, 1);
  std::vector<double> samples(static_cast<std::size_t>(ng) * ng * ng, 2.5);
  set_spline_from_samples(storage, 0, samples.data());
  BsplineRef<double> ref(storage);
  Xoshiro256 rng(3);
  for (int s = 0; s < 50; ++s) {
    const auto r = ref.evaluate_vgh(rng.uniform(), rng.uniform(), rng.uniform());
    EXPECT_NEAR(r.v[0], 2.5, 1e-12);
    EXPECT_NEAR(r.gx[0], 0.0, 1e-10);
    EXPECT_NEAR(r.gy[0], 0.0, 1e-10);
    EXPECT_NEAR(r.gz[0], 0.0, 1e-10);
    EXPECT_NEAR(r.hxx[0] + r.hyy[0] + r.hzz[0], 0.0, 1e-8);
  }
}
