#include "common/contracts.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mqc {

void contract_failure(const char* condition, const char* file, int line, const char* fmt, ...)
{
  std::fprintf(stderr, "\nmqc contract violation: %s\n  at %s:%d\n  ", condition, file, line);
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

} // namespace mqc
