#include "core/tuner.h"

#include <fstream>
#include <sstream>

#include "common/config.h"

namespace mqc {

std::string Wisdom::make_key(const std::string& kernel, const std::string& precision,
                             int num_splines, int nx, int ny, int nz)
{
  std::ostringstream os;
  os << kernel << ':' << precision << ":N=" << num_splines << ":grid=" << nx << 'x' << ny << 'x'
     << nz;
  return os.str();
}

std::string Wisdom::make_key_v2(const std::string& kernel, const std::string& precision,
                                int num_splines, int nx, int ny, int nz, int num_walkers)
{
  std::ostringstream os;
  os << "v2:" << make_key(kernel, precision, num_splines, nx, ny, nz) << ":nw=" << num_walkers;
  return os.str();
}

std::optional<Wisdom::Entry> Wisdom::lookup(const std::string& key) const
{
  const auto it = entries_.find(key);
  if (it == entries_.end())
    return std::nullopt;
  return it->second;
}

bool Wisdom::save(const std::string& path) const
{
  std::ofstream out(path);
  if (!out)
    return false;
  out << "# miniqmcpp wisdom v4: key tile_size pos_block crowd_size inner_threads throughput\n";
  for (const auto& [key, entry] : entries_)
    out << key << ' ' << entry.tile_size << ' ' << entry.pos_block << ' ' << entry.crowd_size
        << ' ' << entry.inner_threads << ' ' << entry.throughput << '\n';
  return static_cast<bool>(out);
}

bool Wisdom::load(const std::string& path)
{
  std::ifstream in(path);
  if (!in)
    return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#')
      continue;
    std::istringstream ls(line);
    std::string key;
    Entry entry;
    if (!(ls >> key >> entry.tile_size))
      continue;
    // The remaining numeric fields disambiguate the format version:
    //   1 number  -> v1: throughput                       (pos_block := 1)
    //   2 numbers -> v2: pos_block throughput             (crowd_size := 0)
    //   3 numbers -> v3: pos_block crowd_size throughput  (inner_threads := 0)
    //   4 numbers -> v4: pos_block crowd_size inner_threads throughput
    double a = 0.0, b = 0.0, c = 0.0, d = 0.0;
    if (!(ls >> a))
      continue;
    if (!(ls >> b)) {
      entry.pos_block = 1;
      entry.throughput = a;
    } else if (!(ls >> c)) {
      entry.pos_block = static_cast<int>(a);
      entry.throughput = b;
    } else if (!(ls >> d)) {
      entry.pos_block = static_cast<int>(a);
      entry.crowd_size = static_cast<int>(b);
      entry.throughput = c;
    } else {
      entry.pos_block = static_cast<int>(a);
      entry.crowd_size = static_cast<int>(b);
      entry.inner_threads = static_cast<int>(c);
      entry.throughput = d;
    }
    entries_[key] = entry;
  }
  return true;
}

std::vector<int> default_tile_candidates(int num_splines, int min_tile)
{
  std::vector<int> out;
  for (int nb = min_tile; nb < num_splines; nb *= 2)
    out.push_back(nb);
  out.push_back(num_splines); // untiled upper end of the sweep
  return out;
}

std::vector<int> default_block_candidates(int num_walkers)
{
  std::vector<int> out;
  for (int pb = 1; pb < num_walkers; pb *= 2)
    out.push_back(pb);
  if (num_walkers >= 1)
    out.push_back(num_walkers); // whole-population block
  return out;
}

} // namespace mqc
