// Quickstart: build a set of B-spline orbitals, evaluate values, gradients
// and Hessians at a few electron positions with each engine, and verify they
// agree.  This is the 5-minute tour of the public API.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/bspline_aos.h"
#include "core/bspline_soa.h"
#include "core/multi_bspline.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"

int main()
{
  using namespace mqc;

  // 1. Describe the interpolation domain: a periodic cube with 32 grid
  //    points per side (production QMC uses ~48^3 for a 4-atom cell).
  const auto grid = Grid3D<float>::cube(/*points=*/32, /*length=*/1.0f);

  // 2. Make some orbitals.  Here: 64 plane waves of a homogeneous electron
  //    gas, sampled on the grid and solved into B-spline coefficients.
  //    (For production data you would call set_spline_from_samples() with
  //    your own orbital values.)
  const auto orbitals = PlaneWaveOrbitals::make(64, Vec3<double>{1.0, 1.0, 1.0});
  const auto coefs = build_planewave_storage(grid, orbitals);
  std::printf("coefficient table: %d orbitals, %.1f MB, padded stride %zu\n",
              coefs->num_splines(), coefs->size_bytes() / 1e6, coefs->padded_splines());

  // 3. Pick an engine.  BsplineSoA is the portable optimized kernel (paper
  //    Opt A); MultiBspline adds cache blocking (Opt B).
  BsplineSoA<float> spo(coefs);
  MultiBspline<float> spo_tiled(*coefs, /*tile_size=*/16);

  // 4. Allocate per-walker output buffers and evaluate.
  WalkerSoA<float> out(spo.out_stride());
  const float x = 0.21f, y = 0.67f, z = 0.43f;
  spo.evaluate_vgh(x, y, z, out.v.data(), out.g.data(), out.h.data());

  std::printf("\nphi_n, grad, laplacian at r=(%.2f, %.2f, %.2f):\n", x, y, z);
  for (int n = 0; n < 4; ++n) {
    const float lap = out.hcomp(0)[n] + out.hcomp(3)[n] + out.hcomp(5)[n];
    std::printf("  n=%d  v=% .5f  g=(% .4f,% .4f,% .4f)  lap=% .4f  (analytic v=% .5f)\n", n,
                out.v[n], out.gx()[n], out.gy()[n], out.gz()[n], lap,
                orbitals.value(n, Vec3<double>{x, y, z}));
  }

  // 5. The tiled engine writes the same answers into the same buffer layout.
  WalkerSoA<float> out_tiled(spo_tiled.out_stride());
  spo_tiled.evaluate_vgh(x, y, z, out_tiled.v.data(), out_tiled.g.data(), out_tiled.h.data(),
                         out_tiled.stride);
  float max_diff = 0.0f;
  for (int n = 0; n < spo.num_splines(); ++n)
    max_diff = std::max(max_diff, std::abs(out.v[n] - out_tiled.v[n]));
  std::printf("\nmax |SoA - AoSoA| over values: %.2e (expect ~1e-7: same math, tiled)\n",
              max_diff);

  // 6. Values-only evaluations (used with pseudopotentials) take the V path.
  spo.evaluate_v(x, y, z, out.v.data());
  std::printf("V-only kernel reproduces v[0]=% .5f\n", out.v[0]);
  return 0;
}
