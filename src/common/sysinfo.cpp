#include "common/sysinfo.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif
#if defined(__unix__)
#include <unistd.h>
#endif

namespace mqc {
namespace {

std::string read_cpu_model()
{
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ')
          ++start;
        return line.substr(start);
      }
    }
  }
  return "unknown";
}

std::size_t sysconf_size(int name)
{
#if defined(__unix__)
  const long v = ::sysconf(name);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
#else
  (void)name;
  return 0;
#endif
}

constexpr std::size_t simd_width_bits_from_build()
{
#if defined(__AVX512F__)
  return 512;
#elif defined(__AVX2__) || defined(__AVX__)
  return 256;
#elif defined(__SSE2__)
  return 128;
#else
  return 64;
#endif
}

} // namespace

SystemInfo query_system_info()
{
  SystemInfo info;
  info.cpu_model = read_cpu_model();
#if defined(__unix__)
  info.logical_cpus = static_cast<int>(::sysconf(_SC_NPROCESSORS_ONLN));
  {
    const std::size_t pages = sysconf_size(_SC_PHYS_PAGES);
    const std::size_t page = sysconf_size(_SC_PAGESIZE);
    info.total_ram_bytes = pages * page;
  }
#endif
#ifdef _OPENMP
  info.omp_max_threads = omp_get_max_threads();
#else
  info.omp_max_threads = 1;
#endif
  info.simd_width_bits = simd_width_bits_from_build();
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  info.l1d_bytes = sysconf_size(_SC_LEVEL1_DCACHE_SIZE);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  info.l2_bytes = sysconf_size(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  info.l3_bytes = sysconf_size(_SC_LEVEL3_CACHE_SIZE);
#endif
  return info;
}

void print_system_info(std::ostream& os, const SystemInfo& info)
{
  auto mb = [](std::size_t bytes) {
    std::ostringstream s;
    if (bytes == 0)
      s << "unknown";
    else if (bytes >= (1u << 20))
      s << (bytes >> 20) << " MB";
    else
      s << (bytes >> 10) << " KB";
    return s.str();
  };
  os << "Processor         " << info.cpu_model << '\n'
     << "# logical CPUs    " << info.logical_cpus << '\n'
     << "OpenMP threads    " << info.omp_max_threads << '\n'
     << "SIMD width (bits) " << info.simd_width_bits << '\n'
     << "L1 (data)         " << mb(info.l1d_bytes) << '\n'
     << "L2                " << mb(info.l2_bytes) << '\n'
     << "LLC               " << mb(info.l3_bytes) << '\n'
     << "RAM               " << mb(info.total_ram_bytes) << '\n';
}

} // namespace mqc
