// Fixture: raw OpenMP forking outside the threading seam must be flagged.
// Expected: >= 1 [omp-parallel] finding.
void sweep(float* a, int n)
{
#pragma omp parallel for num_threads(8)
  for (int i = 0; i < n; ++i)
    a[i] *= 2.0f;
}
