// The read-only 4D B-spline coefficient table P[nx+3][ny+3][nz+3][Npad]
// (paper §IV: "allocation of the P coefficient array is done as 1D array and
// uses an aligned allocator and includes padding to ensure the alignment of
// P[i][j][k] to a 512-bit cache-line boundary").
//
// Index convention (einspline periodic): storage index m along an axis holds
// control point c[(m-1) mod n], so an evaluation in cell i reads the four
// consecutive rows i..i+3 without any modulo in the hot loop.  The spline
// dimension N is innermost and padded to the SIMD lane count, which makes
// every P[i][j][k] row 64-byte aligned.
#ifndef MQC_CORE_COEF_STORAGE_H
#define MQC_CORE_COEF_STORAGE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/aligned_allocator.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/grid.h"

namespace mqc {

template <typename T>
class CoefStorage
{
public:
  CoefStorage() = default;

  CoefStorage(const Grid3D<T>& grid, int num_splines)
      : grid_(grid), num_splines_(num_splines), n_pad_(aligned_size<T>(num_splines)),
        zs_(n_pad_), ys_(static_cast<std::size_t>(grid.z.num + 3) * zs_),
        xs_(static_cast<std::size_t>(grid.y.num + 3) * ys_),
        data_(static_cast<std::size_t>(grid.x.num + 3) * xs_, T(0))
  {
    assert(num_splines > 0);
  }

  [[nodiscard]] const Grid3D<T>& grid() const noexcept { return grid_; }
  [[nodiscard]] int num_splines() const noexcept { return num_splines_; }
  [[nodiscard]] std::size_t padded_splines() const noexcept { return n_pad_; }
  [[nodiscard]] std::size_t stride_x() const noexcept { return xs_; }
  [[nodiscard]] std::size_t stride_y() const noexcept { return ys_; }
  [[nodiscard]] std::size_t stride_z() const noexcept { return zs_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return data_.size() * sizeof(T); }

  /// Base of the length-Npad coefficient row at padded indices (i,j,k);
  /// i in [0, nx+3) etc.  Guaranteed 64-byte aligned.
  [[nodiscard]] const T* row(int i, int j, int k) const noexcept
  {
    return data_.data() + static_cast<std::size_t>(i) * xs_ + static_cast<std::size_t>(j) * ys_ +
           static_cast<std::size_t>(k) * zs_;
  }
  [[nodiscard]] T* row(int i, int j, int k) noexcept
  {
    return data_.data() + static_cast<std::size_t>(i) * xs_ + static_cast<std::size_t>(j) * ys_ +
           static_cast<std::size_t>(k) * zs_;
  }

  [[nodiscard]] T coef(int i, int j, int k, int n) const noexcept { return row(i, j, k)[n]; }
  void set_coef(int i, int j, int k, int n, T value) noexcept { row(i, j, k)[n] = value; }

  /// Write control point c[(ci,cj,ck)] of spline n into every padded storage
  /// slot that aliases it under the periodic wrap.  Control indices are the
  /// *unshifted* ones in [0, n); the (+1, mod) shift to storage indices and
  /// the replication of the three wrapped layers happen here, once, at build
  /// time — the evaluators never wrap.
  void set_control_point_periodic(int ci, int cj, int ck, int n, T value) noexcept
  {
    const int nx = grid_.x.num, ny = grid_.y.num, nz = grid_.z.num;
    for (int i = ci + 1; i < nx + 3; i += nx)
      for (int j = cj + 1; j < ny + 3; j += ny)
        for (int k = ck + 1; k < nz + 3; k += nz)
          set_coef(i, j, k, n, value);
    // Indices below the first period (storage index 0 holds c[n-1]).
    if (ci == nx - 1)
      for (int j = cj + 1; j < ny + 3; j += ny)
        for (int k = ck + 1; k < nz + 3; k += nz)
          set_coef(0, j, k, n, value);
    if (cj == ny - 1)
      for (int i = ci + 1; i < nx + 3; i += nx)
        for (int k = ck + 1; k < nz + 3; k += nz)
          set_coef(i, 0, k, n, value);
    if (ck == nz - 1)
      for (int i = ci + 1; i < nx + 3; i += nx)
        for (int j = cj + 1; j < ny + 3; j += ny)
          set_coef(i, j, 0, n, value);
    if (ci == nx - 1 && cj == ny - 1)
      for (int k = ck + 1; k < nz + 3; k += nz)
        set_coef(0, 0, k, n, value);
    if (ci == nx - 1 && ck == nz - 1)
      for (int j = cj + 1; j < ny + 3; j += ny)
        set_coef(0, j, 0, n, value);
    if (cj == ny - 1 && ck == nz - 1)
      for (int i = ci + 1; i < nx + 3; i += nx)
        set_coef(i, 0, 0, n, value);
    if (ci == nx - 1 && cj == ny - 1 && ck == nz - 1)
      set_coef(0, 0, 0, n, value);
  }

  /// Fill with deterministic pseudo-random coefficients.  Kernel performance
  /// is independent of coefficient values, so the bench harness uses this to
  /// avoid the (expensive, irrelevant) interpolation solve at N=4096 — the
  /// same shortcut miniQMC takes.
  void fill_random(std::uint64_t seed)
  {
    Xoshiro256 rng(seed);
    for (auto& v : data_)
      v = static_cast<T>(rng.uniform(-0.5, 0.5));
  }

  /// Copy splines [first, first+count) of @p src into this storage's
  /// [0, count) — the AoSoA tile split.  Grids must match.
  void assign_spline_range(const CoefStorage& src, int first, int count)
  {
    assert(count <= num_splines_);
    assert(first + count <= src.num_splines());
    const int nx = grid_.x.num + 3, ny = grid_.y.num + 3, nz = grid_.z.num + 3;
    for (int i = 0; i < nx; ++i)
      for (int j = 0; j < ny; ++j)
        for (int k = 0; k < nz; ++k) {
          const T* s = src.row(i, j, k) + first;
          T* d = row(i, j, k);
          for (int n = 0; n < count; ++n)
            d[n] = s[n];
        }
  }

private:
  Grid3D<T> grid_;
  int num_splines_ = 0;
  std::size_t n_pad_ = 0;
  std::size_t zs_ = 0, ys_ = 0, xs_ = 0;
  aligned_vector<T> data_;
};

/// Per-shard (per-socket) replicas of one read-only coefficient table.
///
/// On a NUMA host the table is the bandwidth wall (paper §IV; Luo et al.,
/// arXiv:1805.07406): a single allocation lands on one socket and every
/// other socket's inner teams pull all spline traffic across the
/// interconnect.  A WalkerPopulation therefore gives each shard its own
/// copy, materialized by `replicate(s)` ON the shard's own thread — under
/// Linux's default first-touch policy the copy's pages land on the socket
/// of the thread that writes them.  Shard 0 always resolves to the master
/// itself (no copy; it was first-touched by whoever built it), and each
/// shard's engines/OrbitalSet facade are then constructed over its replica,
/// so every facade evaluation on that shard reads socket-local memory.
///
/// Replicas are exact element-wise copies, so which replica serves a walker
/// is trajectory-neutral: bit-for-bit identical results for any shard count.
template <typename T>
class CoefReplicaSet
{
public:
  CoefReplicaSet() = default;

  /// @p master becomes shard 0's table (no copy); shards 1..n-1 start empty
  /// until their owning thread calls replicate().
  CoefReplicaSet(std::shared_ptr<CoefStorage<T>> master, int num_shards)
      : replicas_(static_cast<std::size_t>(num_shards < 1 ? 1 : num_shards))
  {
    assert(master != nullptr);
    replicas_[0] = std::move(master);
  }

  [[nodiscard]] int num_shards() const noexcept { return static_cast<int>(replicas_.size()); }

  /// Materialize shard @p s's replica as a copy of the master, allocated and
  /// written by the CALLING thread (the first-touch point — call it from the
  /// shard's own team).  Idempotent: an existing replica is returned as-is,
  /// and shard 0 always gets the master.  Distinct shards may replicate
  /// concurrently (each writes only its own pre-sized slot).
  std::shared_ptr<CoefStorage<T>> replicate(int s)
  {
    auto& slot = replicas_[static_cast<std::size_t>(s)];
    if (!slot)
      slot = std::make_shared<CoefStorage<T>>(*replicas_[0]);
    return slot;
  }

  /// The shard-local table: its replica when materialized, else the master.
  [[nodiscard]] std::shared_ptr<CoefStorage<T>> local(int s) const
  {
    const auto& slot = replicas_[static_cast<std::size_t>(s)];
    return slot ? slot : replicas_[0];
  }

private:
  std::vector<std::shared_ptr<CoefStorage<T>>> replicas_;
};

} // namespace mqc

#endif // MQC_CORE_COEF_STORAGE_H
