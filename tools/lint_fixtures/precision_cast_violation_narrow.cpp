// Fixture: ad-hoc narrowing of coefficient data outside the storage seam.
// Expected: >=1 [precision-cast] finding.
#include <vector>

void narrow_table(const std::vector<double>& coefs, std::vector<float>& out)
{
  for (std::size_t i = 0; i < coefs.size(); ++i)
    out[i] = static_cast<float>(coefs[i]);
}
