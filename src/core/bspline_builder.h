// Spline coefficient construction (the interpolation solve).
//
// Tricubic B-spline interpolation is separable: the 3D control-point tensor
// is obtained by solving the 1D interpolation system along z, then y, then x.
// For periodic data on n points the 1D system is cyclic tridiagonal with
// constant stencil (1/6, 4/6, 1/6):
//     (c[m-1] + 4 c[m] + c[m+1]) / 6 = data[m]   (indices mod n)
// solved here by the Thomas algorithm wrapped in a Sherman–Morrison
// correction for the periodic corners.  All solves run in double precision
// regardless of the table's storage type, as QMCPACK/einspline do.
#ifndef MQC_CORE_BSPLINE_BUILDER_H
#define MQC_CORE_BSPLINE_BUILDER_H

#include <cstddef>
#include <vector>

#include "core/coef_storage.h"
#include "core/grid.h"

namespace mqc {

/// Solve a general tridiagonal system in place (Thomas algorithm).
/// sub[i] multiplies x[i-1] in row i (sub[0] unused), sup[i] multiplies
/// x[i+1] (sup[n-1] unused).  The solution replaces rhs.  No pivoting: the
/// caller guarantees diagonal dominance (true for all spline systems here).
void solve_tridiagonal(const double* sub, double* diag, const double* sup, double* rhs, int n);

/// Solve the cyclic-tridiagonal system with constant stencil
/// (sub, diag, sup) plus corner elements A[0][n-1] = corner_hi and
/// A[n-1][0] = corner_lo, writing the solution to x.  Requires n >= 3.
void solve_cyclic_tridiagonal_const(double sub, double diag, double sup, double corner_lo,
                                    double corner_hi, const double* rhs, double* x, int n);

/// Solve the periodic cubic B-spline interpolation system for one line:
/// given data[0..n), produce control points c[0..n) with
/// (c[m-1] + 4c[m] + c[m+1])/6 = data[m] (cyclic).  Handles any n >= 1.
void solve_periodic_spline_line(const double* data, double* c, int n);

/// Strided variant reading data[i*stride] and writing c[i*stride]
/// (used for the y/x passes of the tensor-product solve).
void solve_periodic_spline_line_strided(const double* data, std::size_t data_stride, double* c,
                                        std::size_t c_stride, int n);

/// Compute the 3D periodic control-point tensor for samples[ix][iy][iz]
/// (row-major, iz fastest) in place: on return @p values holds the control
/// points with the same layout.
void solve_periodic_spline_3d(double* values, int nx, int ny, int nz);

/// Build spline @p n of @p storage from real-space samples on the grid
/// (samples layout: ix*ny*nz + iy*nz + iz).  Thread-safe for distinct n as
/// long as padded spline rows do not alias (they do not: each n is a distinct
/// column of the innermost dimension).
template <typename T>
void set_spline_from_samples(CoefStorage<T>& storage, int n, const double* samples)
{
  const int nx = storage.grid().x.num;
  const int ny = storage.grid().y.num;
  const int nz = storage.grid().z.num;
  std::vector<double> work(samples, samples + static_cast<std::size_t>(nx) * ny * nz);
  solve_periodic_spline_3d(work.data(), nx, ny, nz);
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int k = 0; k < nz; ++k)
        storage.set_control_point_periodic(
            i, j, k, n,
            static_cast<T>(work[(static_cast<std::size_t>(i) * ny + j) * nz + k]));
}

} // namespace mqc

#endif // MQC_CORE_BSPLINE_BUILDER_H
