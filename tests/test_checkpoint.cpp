// Crash-consistent checkpoint/restore (qmc/checkpoint.h).
//
// The contract under test: a run snapshotted at step k and resumed produces
// the bit-for-bit identical `walker_accepts` / `walker_log_det` fingerprints
// as the uninterrupted run — across spline layouts, both drivers, delayed
// determinant ranks (the rank-4 grid leaves in-flight Woodbury panels
// pending at snapshot boundaries, so their verbatim serialization is
// exercised, not just the flushed state), partition shapes, and snapshot
// intervals.  And every way a snapshot file can be damaged (version skew,
// foreign config, per-section corruption, truncation, garbage) is detected
// and degrades to the `.prev` fallback or a fresh start — never a crash,
// never a silent wrong-state resume.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "qmc/checkpoint.h"
#include "qmc/miniqmc_driver.h"
#include "qmc/walker_population.h"

using namespace mqc;

namespace {

/// RAII env var override (partition-shape tests).
struct ScopedEnv
{
  ScopedEnv(const char* name, const char* value) : name_(name)
  {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_)
      saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv()
  {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

/// Temp checkpoint path that scrubs the whole rotation set on destruction.
struct ScopedCkpt
{
  explicit ScopedCkpt(const std::string& tag)
      : path((std::filesystem::temp_directory_path() / ("mqc_ckpt_test_" + tag + ".ckpt"))
                 .string())
  {
    cleanup();
  }
  ~ScopedCkpt() { cleanup(); }
  void cleanup() const
  {
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

MiniQMCConfig make_cfg(DriverMode driver, SpoLayout spo, bool optimized, int delay)
{
  MiniQMCConfig cfg;
  cfg.supercell = {1, 1, 1};
  cfg.grid_size = 16;
  cfg.num_walkers = 4;
  cfg.steps = 6;
  cfg.driver = driver;
  cfg.spo = spo;
  cfg.optimized_dt_jastrow = optimized;
  cfg.delay_rank = delay;
  return cfg;
}

/// Bitwise trajectory comparison: accepts exactly, log-dets as raw bits so a
/// 1-ulp divergence cannot hide behind EXPECT_DOUBLE_EQ.
void expect_same_trajectory(const MiniQMCResult& ref, const MiniQMCResult& got,
                            const std::string& what)
{
  EXPECT_EQ(ref.walker_accepts, got.walker_accepts) << what;
  ASSERT_EQ(ref.walker_log_det.size(), got.walker_log_det.size()) << what;
  for (std::size_t w = 0; w < ref.walker_log_det.size(); ++w) {
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, &ref.walker_log_det[w], sizeof a);
    std::memcpy(&b, &got.walker_log_det[w], sizeof b);
    EXPECT_EQ(a, b) << what << ": walker " << w << " log-det bits differ";
  }
}

/// Reference 6-step run, then snapshot at step 4 and resume to 6; the resumed
/// trajectory must be bit-identical.
void round_trip_case(MiniQMCConfig cfg, const std::string& tag, int interval = 2)
{
  ScopedCkpt ck(tag);
  const MiniQMCResult ref = run_miniqmc(cfg);

  MiniQMCConfig part = cfg;
  part.steps = 4;
  part.checkpoint_path = ck.path;
  part.checkpoint_interval = interval;
  const MiniQMCResult first = run_miniqmc(part);
  EXPECT_GE(first.checkpoints_written, 1) << tag;

  MiniQMCConfig rest = cfg;
  rest.checkpoint_path = ck.path;
  rest.resume = true;
  const MiniQMCResult resumed = run_miniqmc(rest);
  EXPECT_EQ(resumed.resumed_from_step, 4) << tag;
  EXPECT_FALSE(resumed.resume_fallback_used) << tag;
  EXPECT_TRUE(resumed.resume_error.empty()) << tag << ": " << resumed.resume_error;
  expect_same_trajectory(ref, resumed, tag);
}

ckpt::Snapshot make_test_snapshot(std::uint64_t hash)
{
  ckpt::Snapshot snap;
  snap.config_hash = hash;
  ckpt::Section meta;
  meta.id = ckpt::SectionId::Meta;
  meta.index = 0;
  meta.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  ckpt::Section walker;
  walker.id = ckpt::SectionId::Walker;
  walker.index = 0;
  walker.payload.assign(64, 0xab);
  snap.sections = {meta, walker};
  return snap;
}

std::vector<std::uint8_t> slurp(const std::string& path)
{
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes)
{
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

} // namespace

// ---------------------------------------------------------------------------
// Resume bit-exactness across the configuration grid
// ---------------------------------------------------------------------------

TEST(CheckpointRoundTrip, BitExactAcrossLayoutsDriversAndDelayRank)
{
  struct Layout
  {
    SpoLayout spo;
    bool optimized;
    const char* name;
  };
  const Layout layouts[] = {{SpoLayout::AoS, false, "aos"},
                            {SpoLayout::SoA, true, "soa"},
                            {SpoLayout::AoSoA, true, "aosoa"}};
  for (const auto& layout : layouts)
    for (const DriverMode driver : {DriverMode::PerWalker, DriverMode::Crowd})
      for (const int delay : {1, 4}) {
        const std::string tag = std::string(layout.name) + "_" +
                                (driver == DriverMode::Crowd ? "crowd" : "pw") + "_d" +
                                std::to_string(delay);
        round_trip_case(make_cfg(driver, layout.spo, layout.optimized, delay), tag);
      }
}

TEST(CheckpointRoundTrip, ResumeIsPartitionShapeNeutral)
{
  // Snapshot under one partition shape, resume under another: the trajectory
  // is scheduling-independent, so the config hash accepts the snapshot and
  // the fingerprints still match the no-env reference.
  const MiniQMCConfig cfg = make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 4);
  const MiniQMCResult ref = run_miniqmc(cfg);

  ScopedCkpt ck("partition_shape");
  {
    ScopedEnv env("MQC_PARTITION", "1x2");
    MiniQMCConfig part = cfg;
    part.steps = 4;
    part.checkpoint_path = ck.path;
    part.checkpoint_interval = 2;
    (void)run_miniqmc(part);
  }
  {
    ScopedEnv env("MQC_PARTITION", "2x1");
    MiniQMCConfig rest = cfg;
    rest.checkpoint_path = ck.path;
    rest.resume = true;
    const MiniQMCResult resumed = run_miniqmc(rest);
    EXPECT_EQ(resumed.resumed_from_step, 4);
    expect_same_trajectory(ref, resumed, "cross-partition resume");
  }
}

TEST(CheckpointRoundTrip, ResumeWorksAcrossDrivers)
{
  // The config trajectory hash deliberately excludes scheduling-only knobs
  // (driver mode, crowd size): a crowd-driver snapshot resumes under the
  // per-walker driver and lands on the same trajectory.
  const MiniQMCConfig pw = make_cfg(DriverMode::PerWalker, SpoLayout::SoA, true, 1);
  const MiniQMCResult ref = run_miniqmc(pw);

  ScopedCkpt ck("cross_driver");
  MiniQMCConfig part = make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 1);
  part.steps = 4;
  part.checkpoint_path = ck.path;
  part.checkpoint_interval = 2;
  (void)run_miniqmc(part);

  MiniQMCConfig rest = pw;
  rest.checkpoint_path = ck.path;
  rest.resume = true;
  const MiniQMCResult resumed = run_miniqmc(rest);
  EXPECT_EQ(resumed.resumed_from_step, 4);
  expect_same_trajectory(ref, resumed, "cross-driver resume");
}

TEST(CheckpointRoundTrip, SnapshotCadenceIsTrajectoryNeutral)
{
  // Snapshotting is a pure observer: interval 1 (a snapshot at every step
  // boundary) and interval 3 resume to the same fingerprints.
  round_trip_case(make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 4), "interval1", 1);
  round_trip_case(make_cfg(DriverMode::PerWalker, SpoLayout::SoA, true, 4), "interval3", 3);
}

TEST(CheckpointRoundTrip, MixedPathRoundTripsAndRefusesCrossPrecisionResume)
{
  // A Mixed run snapshots and resumes bit-for-bit like any other config...
  {
    MiniQMCConfig cfg = make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 4);
    cfg.precision_path = PrecisionPath::Mixed;
    round_trip_case(cfg, "mixed_soa");
  }
  // ...but the RESOLVED precision path is part of the config hash: a
  // snapshot written under Mixed must not resume a Native run (the
  // trajectories diverge from the first accepted move), and vice versa.
  // The refusal is the ordinary config-hash rejection — surfaced in
  // resume_error with both hashes — followed by a clean fresh start.
  const auto cross_resume = [](PrecisionPath write_as, PrecisionPath resume_as,
                               const std::string& tag) {
    ScopedCkpt ck(tag);
    MiniQMCConfig wcfg = make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 4);
    wcfg.precision_path = write_as;
    wcfg.steps = 4;
    wcfg.checkpoint_path = ck.path;
    wcfg.checkpoint_interval = 2;
    EXPECT_GE(run_miniqmc(wcfg).checkpoints_written, 1) << tag;

    MiniQMCConfig rcfg = make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 4);
    rcfg.precision_path = resume_as;
    rcfg.checkpoint_path = ck.path;
    rcfg.resume = true;
    const MiniQMCResult ref = [&] {
      MiniQMCConfig fresh = make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 4);
      fresh.precision_path = resume_as;
      return run_miniqmc(fresh);
    }();
    const MiniQMCResult got = run_miniqmc(rcfg);
    EXPECT_EQ(got.resumed_from_step, -1) << tag;
    EXPECT_FALSE(got.resume_error.empty()) << tag;
    expect_same_trajectory(ref, got, tag + ": fresh-start after refusal");
  };
  cross_resume(PrecisionPath::Mixed, PrecisionPath::Native, "mixed_to_native");
  cross_resume(PrecisionPath::Native, PrecisionPath::Mixed, "native_to_mixed");
}

TEST(CheckpointRoundTrip, MissingSnapshotFallsBackToFreshStart)
{
  MiniQMCConfig cfg = make_cfg(DriverMode::PerWalker, SpoLayout::SoA, true, 1);
  const MiniQMCResult ref = run_miniqmc(cfg);
  // ScopedCkpt scrubs the rotation set up front: the fresh-start run itself
  // writes a final snapshot here, which must not leak into a later run.
  ScopedCkpt ck("never_written");
  cfg.checkpoint_path = ck.path;
  cfg.resume = true;
  const MiniQMCResult got = run_miniqmc(cfg);
  EXPECT_EQ(got.resumed_from_step, -1);
  EXPECT_FALSE(got.resume_error.empty());
  expect_same_trajectory(ref, got, "fresh-start fallback");
}

// ---------------------------------------------------------------------------
// End-of-run snapshot guarantee (edge cases around interval vs steps)
// ---------------------------------------------------------------------------

TEST(CheckpointRoundTrip, IntervalLargerThanStepsStillWritesFinalSnapshot)
{
  // interval > steps means no interior boundary ever hits the interval; the
  // clamped final boundary must still produce the end-of-run snapshot.
  for (const DriverMode driver : {DriverMode::PerWalker, DriverMode::Crowd}) {
    MiniQMCConfig cfg = make_cfg(driver, SpoLayout::SoA, true, 1);
    const MiniQMCResult ref = run_miniqmc(cfg);
    ScopedCkpt ck(driver == DriverMode::Crowd ? "bigint_crowd" : "bigint_pw");
    cfg.checkpoint_path = ck.path;
    cfg.checkpoint_interval = 100;
    const MiniQMCResult part = run_miniqmc(cfg);
    EXPECT_EQ(part.checkpoints_written, 1);
    ASSERT_TRUE(std::filesystem::exists(ck.path));

    MiniQMCConfig rest = cfg;
    rest.resume = true;
    const MiniQMCResult resumed = run_miniqmc(rest);
    EXPECT_EQ(resumed.resumed_from_step, cfg.steps);
    expect_same_trajectory(ref, resumed, "interval>steps final snapshot");
  }
}

TEST(CheckpointRoundTrip, ZeroStepRunStillWritesSnapshot)
{
  // steps == 0: the sweep loop never executes, but a set checkpoint path
  // must still leave the (initial-state) snapshot on disk — the resident
  // state on disk always matches the cursor.
  for (const DriverMode driver : {DriverMode::PerWalker, DriverMode::Crowd}) {
    MiniQMCConfig cfg = make_cfg(driver, SpoLayout::SoA, true, 1);
    cfg.steps = 0;
    ScopedCkpt ck(driver == DriverMode::Crowd ? "zerostep_crowd" : "zerostep_pw");
    cfg.checkpoint_path = ck.path;
    cfg.checkpoint_interval = 2;
    const MiniQMCResult got = run_miniqmc(cfg);
    EXPECT_EQ(got.checkpoints_written, 1);
    EXPECT_TRUE(std::filesystem::exists(ck.path));
  }
}

TEST(CheckpointRoundTrip, ResumeAtOrPastEndWritesSnapshotAndKeepsTrajectory)
{
  // A resume that lands exactly at cfg.steps sweeps nothing; it must not
  // crash, must re-assert the snapshot, and must report the completed-run
  // fingerprints unchanged.
  MiniQMCConfig cfg = make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 4);
  ScopedCkpt ck("resume_past_end");
  cfg.checkpoint_path = ck.path;
  cfg.checkpoint_interval = 2;
  const MiniQMCResult full = run_miniqmc(cfg);

  MiniQMCConfig again = cfg;
  again.resume = true;
  const MiniQMCResult noop = run_miniqmc(again);
  EXPECT_EQ(noop.resumed_from_step, cfg.steps);
  EXPECT_EQ(noop.checkpoints_written, 1) << "no-op run must re-assert the snapshot";
  expect_same_trajectory(full, noop, "resume at end");
}

// ---------------------------------------------------------------------------
// WalkerPopulation persistence (service-layer resume)
// ---------------------------------------------------------------------------

namespace {

MiniQMCResult run_population_to(const MiniQMCConfig& cfg, int shards, int target)
{
  PopulationConfig pcfg;
  pcfg.qmc = cfg;
  pcfg.num_shards = shards;
  WalkerPopulation pop(pcfg);
  pop.run_to_step(target);
  return pop.result();
}

} // namespace

TEST(CheckpointPopulation, KilledPopulationResumesUnderDifferentShardCount)
{
  // Kill a 1-shard population at step 4 (destroy it mid-trajectory), resume
  // the snapshot under 3 shards and a different partition shape: shard
  // assignment is derived machine layout, not trajectory state, so the
  // fingerprints must match the uninterrupted single-shard run bit-for-bit.
  const MiniQMCConfig cfg = make_cfg(DriverMode::Crowd, SpoLayout::SoA, true, 4);
  const MiniQMCResult ref = run_miniqmc(cfg);

  ScopedCkpt ck("population_shards");
  MiniQMCConfig part = cfg;
  part.checkpoint_path = ck.path;
  part.checkpoint_interval = 2;
  {
    ScopedEnv env("MQC_PARTITION", "1x2");
    const MiniQMCResult first = run_population_to(part, 1, 4);
    EXPECT_GE(first.checkpoints_written, 1);
  }
  {
    ScopedEnv env("MQC_PARTITION", "2x1");
    MiniQMCConfig rest = part;
    rest.resume = true;
    PopulationConfig pcfg;
    pcfg.qmc = rest;
    pcfg.num_shards = 3;
    WalkerPopulation pop(pcfg);
    EXPECT_EQ(pop.current_step(), 4);
    pop.run_to_step(cfg.steps);
    const MiniQMCResult resumed = pop.result();
    EXPECT_EQ(resumed.resumed_from_step, 4);
    EXPECT_FALSE(resumed.resume_fallback_used);
    expect_same_trajectory(ref, resumed, "population cross-shard resume");
  }
}

TEST(CheckpointPopulation, SnapshotsInteroperateWithRunMiniqmcBothWays)
{
  const MiniQMCConfig cfg = make_cfg(DriverMode::PerWalker, SpoLayout::SoA, true, 1);
  const MiniQMCResult ref = run_miniqmc(cfg);

  // Population snapshot -> run_miniqmc resume.
  {
    ScopedCkpt ck("pop_to_driver");
    MiniQMCConfig part = cfg;
    part.checkpoint_path = ck.path;
    part.checkpoint_interval = 2;
    (void)run_population_to(part, 2, 4);
    MiniQMCConfig rest = cfg;
    rest.checkpoint_path = ck.path;
    rest.resume = true;
    const MiniQMCResult resumed = run_miniqmc(rest);
    EXPECT_EQ(resumed.resumed_from_step, 4);
    expect_same_trajectory(ref, resumed, "population snapshot -> driver");
  }
  // run_miniqmc snapshot -> population resume.
  {
    ScopedCkpt ck("driver_to_pop");
    MiniQMCConfig part = cfg;
    part.steps = 4;
    part.checkpoint_path = ck.path;
    part.checkpoint_interval = 2;
    (void)run_miniqmc(part);
    MiniQMCConfig rest = cfg;
    rest.checkpoint_path = ck.path;
    rest.resume = true;
    const MiniQMCResult resumed = run_population_to(rest, 2, cfg.steps);
    EXPECT_EQ(resumed.resumed_from_step, 4);
    expect_same_trajectory(ref, resumed, "driver snapshot -> population");
  }
}

// ---------------------------------------------------------------------------
// File format validation and fallback
// ---------------------------------------------------------------------------

TEST(CheckpointFormat, WriteReadRoundTrip)
{
  ScopedCkpt ck("format_roundtrip");
  const ckpt::Snapshot snap = make_test_snapshot(0x1234abcd5678ef01ull);
  std::string err;
  ASSERT_TRUE(ckpt::write_snapshot(ck.path, snap, &err)) << err;
  ckpt::Snapshot out;
  const ckpt::LoadResult r = ckpt::read_snapshot(ck.path, snap.config_hash, out);
  ASSERT_TRUE(r.loaded()) << r.detail;
  EXPECT_EQ(out.config_hash, snap.config_hash);
  ASSERT_EQ(out.sections.size(), 2u);
  EXPECT_EQ(out.sections[0].payload, snap.sections[0].payload);
  EXPECT_EQ(out.sections[1].payload, snap.sections[1].payload);
  ASSERT_NE(out.find(ckpt::SectionId::Walker, 0), nullptr);
  EXPECT_EQ(out.find(ckpt::SectionId::Walker, 1), nullptr);
}

TEST(CheckpointFormat, VersionSkewIsRejectedEvenWithValidCrc)
{
  ScopedCkpt ck("format_version");
  std::string err;
  ASSERT_TRUE(ckpt::write_snapshot(ck.path, make_test_snapshot(7), &err)) << err;
  // Patch the format-version field and RE-COMPUTE the header CRC, so only
  // the version check itself can reject the file.
  std::vector<std::uint8_t> bytes = slurp(ck.path);
  ASSERT_GE(bytes.size(), 28u);
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof version);
  ++version;
  std::memcpy(bytes.data() + 8, &version, sizeof version);
  const std::uint32_t crc = ckpt::crc32(bytes.data(), 24);
  std::memcpy(bytes.data() + 24, &crc, sizeof crc);
  spit(ck.path, bytes);

  ckpt::Snapshot out;
  const ckpt::LoadResult r = ckpt::read_snapshot(ck.path, 7, out);
  EXPECT_EQ(r.error, ckpt::LoadError::Version);
  EXPECT_FALSE(r.loaded());
  // The rejection must say WHICH versions disagreed — found vs expected —
  // not just that "something" was wrong (operators debug skew from logs).
  EXPECT_NE(r.detail.find("format version 2"), std::string::npos) << r.detail;
  EXPECT_NE(r.detail.find("this build reads 1"), std::string::npos) << r.detail;
}

TEST(CheckpointFormat, ConfigHashMismatchIsRejected)
{
  ScopedCkpt ck("format_confhash");
  std::string err;
  ASSERT_TRUE(ckpt::write_snapshot(ck.path, make_test_snapshot(7), &err)) << err;
  ckpt::Snapshot out;
  const ckpt::LoadResult r = ckpt::read_snapshot(ck.path, 8, out);
  EXPECT_EQ(r.error, ckpt::LoadError::ConfigHash);
  // Both hashes — the snapshot's and this run's — must be surfaced in the
  // detail so a mismatched resume is diagnosable without a hex dump.
  EXPECT_NE(r.detail.find("0x0000000000000007"), std::string::npos) << r.detail;
  EXPECT_NE(r.detail.find("0x0000000000000008"), std::string::npos) << r.detail;
}

TEST(CheckpointFormat, GarbageFileIsRejectedOnMagic)
{
  ScopedCkpt ck("format_magic");
  spit(ck.path, std::vector<std::uint8_t>(64, 'x'));
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::read_snapshot(ck.path, 0, out).error, ckpt::LoadError::Magic);
}

TEST(CheckpointFormat, PerSectionCorruptionIsDetectedByCrc)
{
  for (const auto& [plan, what] :
       {std::pair{ckpt::FaultPlan{.corrupt_meta = true}, "meta"},
        std::pair{ckpt::FaultPlan{.corrupt_walker = 0}, "walker0"}}) {
    ScopedCkpt ck(std::string("format_crc_") + what);
    std::string err;
    ASSERT_TRUE(ckpt::write_snapshot(ck.path, make_test_snapshot(7), &err)) << err;
    ASSERT_TRUE(ckpt::apply_file_faults(ck.path, plan)) << what;
    ckpt::Snapshot out;
    const ckpt::LoadResult r = ckpt::read_snapshot(ck.path, 7, out);
    EXPECT_EQ(r.error, ckpt::LoadError::SectionCrc) << what << ": " << r.detail;
    EXPECT_FALSE(r.detail.empty()) << what;
  }
}

TEST(CheckpointFormat, HeaderCorruptionIsDetected)
{
  ScopedCkpt ck("format_header");
  std::string err;
  ASSERT_TRUE(ckpt::write_snapshot(ck.path, make_test_snapshot(7), &err)) << err;
  ckpt::FaultPlan plan;
  plan.corrupt_header = true;
  ASSERT_TRUE(ckpt::apply_file_faults(ck.path, plan));
  ckpt::Snapshot out;
  const ckpt::LoadResult r = ckpt::read_snapshot(ck.path, 7, out);
  // A flipped header byte lands in the config-hash field: caught by the
  // header CRC before the hash comparison can mis-route the diagnosis.
  EXPECT_EQ(r.error, ckpt::LoadError::Header) << r.detail;
}

TEST(CheckpointFormat, TruncationIsDetected)
{
  ScopedCkpt ck("format_trunc");
  std::string err;
  ASSERT_TRUE(ckpt::write_snapshot(ck.path, make_test_snapshot(7), &err)) << err;
  ckpt::FaultPlan plan;
  plan.truncate_tail = 10;
  ASSERT_TRUE(ckpt::apply_file_faults(ck.path, plan));
  ckpt::Snapshot out;
  EXPECT_EQ(ckpt::read_snapshot(ck.path, 7, out).error, ckpt::LoadError::Truncated);
}

TEST(CheckpointFormat, DamagedPrimaryFallsBackToPrev)
{
  ScopedCkpt ck("format_fallback");
  std::string err;
  // First write lands at path; the second rotates it to .prev.
  ckpt::Snapshot older = make_test_snapshot(7);
  older.sections[1].payload.assign(64, 0x11);
  ASSERT_TRUE(ckpt::write_snapshot(ck.path, older, &err)) << err;
  ASSERT_TRUE(ckpt::write_snapshot(ck.path, make_test_snapshot(7), &err)) << err;

  ckpt::FaultPlan plan;
  plan.corrupt_walker = 0;
  ASSERT_TRUE(ckpt::apply_file_faults(ck.path, plan));

  ckpt::Snapshot out;
  const ckpt::LoadResult r = ckpt::read_snapshot_with_fallback(ck.path, 7, out);
  ASSERT_TRUE(r.loaded()) << r.detail;
  EXPECT_TRUE(r.fallback_used);
  EXPECT_EQ(r.path_used, ck.path + ".prev");
  ASSERT_NE(out.find(ckpt::SectionId::Walker, 0), nullptr);
  EXPECT_EQ(out.find(ckpt::SectionId::Walker, 0)->payload[0], 0x11); // the older state

  // Both damaged: the load fails cleanly with the primary's diagnosis.
  ASSERT_TRUE(ckpt::apply_file_faults(ck.path + ".prev", plan));
  const ckpt::LoadResult both = ckpt::read_snapshot_with_fallback(ck.path, 7, out);
  EXPECT_FALSE(both.loaded());
  EXPECT_EQ(both.error, ckpt::LoadError::SectionCrc);
}

// ---------------------------------------------------------------------------
// Building blocks: blob codec, rng state, fault-plan parsing
// ---------------------------------------------------------------------------

TEST(CheckpointBlob, ReaderLatchesFailureOnUnderrun)
{
  ckpt::BlobWriter w;
  w.u32(0xdeadbeef);
  const std::vector<std::uint8_t> bytes = w.take();
  ckpt::BlobReader r(bytes.data(), 2); // truncated mid-scalar
  EXPECT_EQ(r.u32(), 0u);              // zero-filled, never out-of-bounds
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.exhausted()); // latched: all further reads fail too
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(CheckpointRng, StateRoundTripPreservesGaussianCache)
{
  // Box–Muller generates deviates in pairs and caches the second; a restore
  // that dropped the cache would shift every subsequent gaussian by one and
  // fork the trajectory.  Draw an ODD number so the cache is loaded.
  Xoshiro256 a = Xoshiro256::for_stream(1234, 5);
  (void)a.gaussian();
  const Xoshiro256::State saved = a.state();

  Xoshiro256 b(999); // deliberately different stream before restore
  b.set_state(saved);
  for (int i = 0; i < 16; ++i) {
    const double ga = a.gaussian(), gb = b.gaussian();
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &ga, sizeof ba);
    std::memcpy(&bb, &gb, sizeof bb);
    ASSERT_EQ(ba, bb) << "gaussian " << i;
    ASSERT_EQ(a(), b()) << "raw draw " << i;
  }
}

TEST(CheckpointFaults, ParsesWellFormedSpecs)
{
  const ckpt::FaultPlan p = ckpt::parse_fault_plan("abort@3,corrupt@walker1,truncate@40");
  EXPECT_TRUE(p.armed());
  EXPECT_EQ(p.abort_at_step, 3);
  EXPECT_EQ(p.corrupt_walker, 1);
  EXPECT_EQ(p.truncate_tail, 40);
  EXPECT_FALSE(p.corrupt_header);
  EXPECT_FALSE(p.corrupt_meta);

  const ckpt::FaultPlan q = ckpt::parse_fault_plan("abort@0,corrupt@header");
  EXPECT_TRUE(q.armed());
  EXPECT_EQ(q.abort_at_step, 0);
  EXPECT_TRUE(q.corrupt_header);

  EXPECT_TRUE(ckpt::parse_fault_plan("corrupt@meta").corrupt_meta);
}

TEST(CheckpointFaults, MalformedTokensAreIgnoredNotArmed)
{
  // Malformed tokens warn on stderr and are dropped — never UB, never a
  // partially-armed plan from garbage.
  EXPECT_FALSE(ckpt::parse_fault_plan("").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("   ").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("bogus").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("abort@").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("abort@notanumber").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("explode@3").armed());
  const ckpt::FaultPlan mixed = ckpt::parse_fault_plan("abort@2,corrupt@nonsense");
  EXPECT_EQ(mixed.abort_at_step, 2); // the valid token still applies
  EXPECT_FALSE(mixed.corrupt_header);
  EXPECT_FALSE(mixed.corrupt_meta);
  EXPECT_EQ(mixed.corrupt_walker, -1);
}

TEST(CheckpointFaults, SignedStepNumbersAreRejected)
{
  // strtol would happily parse "+3" and "-0"; the spec grammar is digits
  // only, so signed forms must be dropped (warned), never armed.
  EXPECT_FALSE(ckpt::parse_fault_plan("abort@+3").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("abort@-3").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("abort@ 3").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("corrupt@walker+1").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("corrupt@walker-1").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("truncate@+40").armed());
  EXPECT_FALSE(ckpt::parse_fault_plan("abort@99999999999999999999").armed()); // overflow
  const ckpt::FaultPlan mixed = ckpt::parse_fault_plan("abort@+3,truncate@40");
  EXPECT_EQ(mixed.abort_at_step, -1); // the signed token alone is dropped
  EXPECT_EQ(mixed.truncate_tail, 40);
}

TEST(CheckpointFaults, OutOfRangeWalkerInjectionIsReportedAsNoop)
{
  // corrupt@walker<i> with i >= the snapshot's population finds no section:
  // apply_file_faults must return false (no-op surfaced, warned on stderr)
  // and leave the file undamaged so a resume still loads it.
  ScopedCkpt ck("fault_noop");
  std::string err;
  ASSERT_TRUE(ckpt::write_snapshot(ck.path, make_test_snapshot(7), &err)) << err;
  ckpt::FaultPlan plan;
  plan.corrupt_walker = 99; // snapshot only has walker 0
  EXPECT_FALSE(ckpt::apply_file_faults(ck.path, plan));
  ckpt::Snapshot out;
  EXPECT_TRUE(ckpt::read_snapshot(ck.path, 7, out).loaded()) << "no-op damaged the file";

  // A mixed plan where one token lands and one misses is still a no-op
  // overall (false), but the landing token DOES damage the file.
  ckpt::FaultPlan mixed;
  mixed.corrupt_walker = 99;
  mixed.corrupt_meta = true;
  EXPECT_FALSE(ckpt::apply_file_faults(ck.path, mixed));
  EXPECT_FALSE(ckpt::read_snapshot(ck.path, 7, out).loaded());
}
