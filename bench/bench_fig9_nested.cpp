// Figure 9: strong scaling within a walker — speedup of the B-spline kernels
// versus the number of threads per walker (nth), with the walker count
// reduced by the same factor so the node's total work is fixed.  The paper
// reports >90% parallel efficiency up to nth=16 on KNL.
//
// Following the paper's protocol, the tile size for each nth is chosen so a
// team always has enough tiles to share (paper caption: "tile sizes Nb are
// chosen to have sufficient number of tiles for nth"; their KNL point is
// nth=16 with Nb=128 at N=2048, i.e. Nb = N/nth).
//
// Host note: this VM has few cores; points with nth beyond the physical
// core count are oversubscribed and reported for completeness (flagged in
// the output), not as efficiency claims.  See EXPERIMENTS.md.
#include <algorithm>
#include <iostream>

#include "common/table.h"
#include "common/threading.h"
#include "common/timer.h"
#include "qmc/nested_driver.h"
#include "bench_common.h"

int main()
{
  using namespace mqc;
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();
  const int n = scale.n_single;

  const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
  auto coefs = make_random_storage<float>(grid, n, 909);

  print_banner(std::cout, "Figure 9: nested-threading scaling at N=" + std::to_string(n));
  const int cores = max_threads();
  std::cout << "physical OpenMP threads: " << cores << "\n\n";

  NestedConfig cfg;
  cfg.ns = scale.ns;
  cfg.kernel = NestedKernel::VGH;
  cfg.num_walkers = 1; // strong scaling: one walker served by nth threads

  // Reference point (nth=1) with a calibrated measurement window; every
  // point is the best of three runs (shared-host noise, see bench_common).
  auto best_of = [&cfg](const MultiBspline<float>& engine) {
    NestedResult best = run_nested(engine, cfg);
    for (int attempt = 1; attempt < 3; ++attempt) {
      const auto r = run_nested(engine, cfg);
      if (r.seconds < best.seconds)
        best = r;
    }
    return best;
  };

  const int nb1 = std::min(512, n);
  MultiBspline<float> ref_engine(*coefs, nb1);
  cfg.nth = 1;
  cfg.niters = 1;
  const double probe = run_nested(ref_engine, cfg).seconds;
  cfg.niters = std::max(2, static_cast<int>(scale.min_seconds / std::max(probe, 1e-4)) + 1);
  const auto ref = best_of(ref_engine);

  TablePrinter tp({"nth", "Nb", "tiles", "time (s)", "per-walker speedup", "efficiency (%)",
                   "oversubscribed"});
  tp.add_row({TablePrinter::cell(1), TablePrinter::cell(nb1),
              TablePrinter::cell(ref_engine.num_tiles()), TablePrinter::cell(ref.seconds, 3),
              TablePrinter::cell(1.0, 2), TablePrinter::cell(100.0, 1), "no"});
  for (int nth : {2, 4, 8, 16}) {
    const int lanes = static_cast<int>(simd_lanes<float>);
    const int nb = std::max(lanes, std::min(nb1, n / nth));
    if (n / nb < nth)
      break; // cannot give every member at least one tile
    MultiBspline<float> engine(*coefs, nb);
    cfg.nth = nth;
    const auto res = best_of(engine);
    const double speedup = ref.seconds / res.seconds;
    tp.add_row({TablePrinter::cell(nth), TablePrinter::cell(nb),
                TablePrinter::cell(engine.num_tiles()), TablePrinter::cell(res.seconds, 3),
                TablePrinter::cell(speedup, 2), TablePrinter::cell(100.0 * speedup / nth, 1),
                nth > cores ? "yes" : "no"});
  }
  tp.print(std::cout);
  std::cout << "\nShape check (paper, KNL): near-ideal scaling to nth=16 (>90% efficiency).\n"
               "On this host only nth <= " << cores
            << " is backed by hardware; expect efficiency ~100% there and a\n"
               "flat (oversubscribed) profile beyond.\n";
  return 0;
}
