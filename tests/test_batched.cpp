// Tests for the batched multi-walker evaluation extension: equivalence with
// per-walker serial evaluation for every kernel, across tile counts and
// population sizes (including populations larger than the thread count).
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/batched.h"
#include "core/synthetic_orbitals.h"
#include "test_utils.h"

using namespace mqc;

namespace {

struct BatchFixture
{
  std::shared_ptr<CoefStorage<float>> coefs;
  std::unique_ptr<MultiBspline<float>> engine;
  std::vector<Vec3<float>> positions;
  std::vector<std::unique_ptr<WalkerSoA<float>>> serial, batched;
  std::vector<WalkerSoA<float>*> batched_ptrs;

  BatchFixture(int n, int tile, int nw, std::uint64_t seed)
  {
    const auto grid = Grid3D<float>::cube(8, 1.0f);
    coefs = make_random_storage<float>(grid, n, seed);
    engine = std::make_unique<MultiBspline<float>>(*coefs, tile);
    Xoshiro256 rng(seed + 1);
    for (int w = 0; w < nw; ++w) {
      positions.push_back(Vec3<float>{static_cast<float>(rng.uniform()),
                                      static_cast<float>(rng.uniform()),
                                      static_cast<float>(rng.uniform())});
      serial.push_back(std::make_unique<WalkerSoA<float>>(engine->out_stride()));
      batched.push_back(std::make_unique<WalkerSoA<float>>(engine->out_stride()));
      batched_ptrs.push_back(batched.back().get());
    }
  }
};

} // namespace

class BatchedEquivalence : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(BatchedEquivalence, VghMatchesSerial)
{
  const auto [n, tile, nw] = GetParam();
  BatchFixture f(n, tile, nw, 42);
  for (int w = 0; w < nw; ++w)
    f.engine->evaluate_vgh(f.positions[static_cast<std::size_t>(w)].x,
                           f.positions[static_cast<std::size_t>(w)].y,
                           f.positions[static_cast<std::size_t>(w)].z,
                           f.serial[static_cast<std::size_t>(w)]->v.data(),
                           f.serial[static_cast<std::size_t>(w)]->g.data(),
                           f.serial[static_cast<std::size_t>(w)]->h.data(),
                           f.serial[static_cast<std::size_t>(w)]->stride);
  evaluate_vgh_batched(*f.engine, f.positions, f.batched_ptrs);
  for (int w = 0; w < nw; ++w)
    for (std::size_t i = 0; i < f.engine->padded_splines(); ++i) {
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->v[i],
                f.batched[static_cast<std::size_t>(w)]->v[i]);
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->g[i],
                f.batched[static_cast<std::size_t>(w)]->g[i]);
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->h[i],
                f.batched[static_cast<std::size_t>(w)]->h[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Populations, BatchedEquivalence,
                         ::testing::Values(std::make_tuple(64, 16, 1),
                                           std::make_tuple(64, 16, 4),
                                           std::make_tuple(64, 32, 7),
                                           std::make_tuple(48, 16, 12),
                                           std::make_tuple(96, 96, 3)));

TEST(Batched, VMatchesSerial)
{
  BatchFixture f(64, 16, 5, 7);
  for (int w = 0; w < 5; ++w)
    f.engine->evaluate_v(f.positions[static_cast<std::size_t>(w)].x,
                         f.positions[static_cast<std::size_t>(w)].y,
                         f.positions[static_cast<std::size_t>(w)].z,
                         f.serial[static_cast<std::size_t>(w)]->v.data());
  evaluate_v_batched(*f.engine, f.positions, f.batched_ptrs);
  for (int w = 0; w < 5; ++w)
    for (std::size_t i = 0; i < f.engine->padded_splines(); ++i)
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->v[i],
                f.batched[static_cast<std::size_t>(w)]->v[i]);
}

TEST(Batched, VglMatchesSerial)
{
  BatchFixture f(64, 32, 6, 9);
  for (int w = 0; w < 6; ++w)
    f.engine->evaluate_vgl(f.positions[static_cast<std::size_t>(w)].x,
                           f.positions[static_cast<std::size_t>(w)].y,
                           f.positions[static_cast<std::size_t>(w)].z,
                           f.serial[static_cast<std::size_t>(w)]->v.data(),
                           f.serial[static_cast<std::size_t>(w)]->g.data(),
                           f.serial[static_cast<std::size_t>(w)]->l.data(),
                           f.serial[static_cast<std::size_t>(w)]->stride);
  evaluate_vgl_batched(*f.engine, f.positions, f.batched_ptrs);
  for (int w = 0; w < 6; ++w)
    for (std::size_t i = 0; i < f.engine->padded_splines(); ++i) {
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->v[i],
                f.batched[static_cast<std::size_t>(w)]->v[i]);
      ASSERT_EQ(f.serial[static_cast<std::size_t>(w)]->l[i],
                f.batched[static_cast<std::size_t>(w)]->l[i]);
    }
}

TEST(Batched, EmptyPopulationIsNoOp)
{
  const auto grid = Grid3D<float>::cube(8, 1.0f);
  auto coefs = make_random_storage<float>(grid, 32, 3);
  MultiBspline<float> engine(*coefs, 16);
  std::vector<Vec3<float>> positions;
  std::vector<WalkerSoA<float>*> outs;
  evaluate_vgh_batched(engine, positions, outs); // must not crash
  SUCCEED();
}
