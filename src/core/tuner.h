// Tile-size auto-tuning with FFTW-style "wisdom" persistence (paper §VI:
// "We plan to provide an auto-tuning capability using miniQMC to guide the
// production runs similar to FFTW's solution using wisdom files").
//
// The optimal Nb depends only on the architecture's cache hierarchy, not on
// the problem size N (paper §VI-B), so one tuning run per (kernel, precision,
// grid) is recorded and reused.
#ifndef MQC_CORE_TUNER_H
#define MQC_CORE_TUNER_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "core/multi_bspline.h"
#include "core/synthetic_orbitals.h"
#include "qmc/walker.h"

namespace mqc {

/// Persistent map from tuning keys to the winning tile size.
class Wisdom
{
public:
  struct Entry
  {
    int tile_size = 0;
    double throughput = 0.0; ///< orbital evaluations per second at tuning time
  };

  static std::string make_key(const std::string& kernel, const std::string& precision,
                              int num_splines, int nx, int ny, int nz);

  void insert(const std::string& key, Entry entry) { entries_[key] = entry; }
  [[nodiscard]] std::optional<Entry> lookup(const std::string& key) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Plain-text persistence: one "key tile_size throughput" line per entry.
  bool save(const std::string& path) const;
  bool load(const std::string& path);

private:
  std::map<std::string, Entry> entries_;
};

/// Result of one tile-size sweep.
struct TuneResult
{
  int best_tile = 0;
  double best_throughput = 0.0;
  std::vector<int> tiles;             ///< candidates probed
  std::vector<double> throughputs;    ///< T = N*ns/t for each candidate
};

/// Default candidate list: powers of two from the SIMD lane count up to N.
std::vector<int> default_tile_candidates(int num_splines, int min_tile);

/// Probe VGH throughput for each candidate tile size over @p ns random
/// positions and return the sweep (the Fig. 7(c) experiment as a library
/// call).  min_seconds bounds the per-candidate measurement time.
template <typename T>
TuneResult tune_tile_size_vgh(const CoefStorage<T>& full, const std::vector<int>& candidates,
                              int ns = 128, double min_seconds = 0.05, std::uint64_t seed = 11)
{
  TuneResult result;
  Xoshiro256 rng(seed);
  const auto& g = full.grid();
  std::vector<T> px(static_cast<std::size_t>(ns)), py(px), pz(px);
  for (int s = 0; s < ns; ++s) {
    px[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(g.x.start, g.x.end));
    py[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(g.y.start, g.y.end));
    pz[static_cast<std::size_t>(s)] = static_cast<T>(rng.uniform(g.z.start, g.z.end));
  }
  for (int nb : candidates) {
    MultiBspline<T> engine(full, nb);
    WalkerSoA<T> w(engine.out_stride());
    const double sec = time_per_iteration(
        [&] {
          for (int s = 0; s < ns; ++s)
            engine.evaluate_vgh(px[static_cast<std::size_t>(s)], py[static_cast<std::size_t>(s)],
                                pz[static_cast<std::size_t>(s)], w.v.data(), w.g.data(),
                                w.h.data(), w.stride);
        },
        min_seconds, 2);
    const double throughput = static_cast<double>(full.num_splines()) * ns / sec;
    result.tiles.push_back(nb);
    result.throughputs.push_back(throughput);
    if (throughput > result.best_throughput) {
      result.best_throughput = throughput;
      result.best_tile = nb;
    }
  }
  return result;
}

} // namespace mqc

#endif // MQC_CORE_TUNER_H
