// Per-position weight computation shared by all evaluation engines.
//
// The cost of computing the 3x4(x3) prefactors at a random position is
// amortized over all N orbitals (paper §IV); engines call one of these
// functions once per evaluation and then stream the coefficient table.
#ifndef MQC_CORE_WEIGHTS_H
#define MQC_CORE_WEIGHTS_H

#include "common/vec3.h"
#include "core/bspline_basis.h"
#include "core/grid.h"

namespace mqc {

/// Value-only weights (kernel V).
template <typename T>
inline void compute_weights_v(const Grid3D<T>& g, T x, T y, T z, BsplineWeights3D<T>& w) noexcept
{
  const auto rx = g.x.reduce_periodic(x);
  const auto ry = g.y.reduce_periodic(y);
  const auto rz = g.z.reduce_periodic(z);
  w.i0 = rx.cell;
  w.j0 = ry.cell;
  w.k0 = rz.cell;
  bspline_weights(rx.frac, w.a);
  bspline_weights(ry.frac, w.b);
  bspline_weights(rz.frac, w.c);
}

/// Full weights with first/second derivatives scaled to physical units
/// (d/dx carries one factor of delta_inv, d2/dx2 two) — kernels VGL and VGH.
template <typename T>
inline void compute_weights_vgh(const Grid3D<T>& g, T x, T y, T z, BsplineWeights3D<T>& w) noexcept
{
  const auto rx = g.x.reduce_periodic(x);
  const auto ry = g.y.reduce_periodic(y);
  const auto rz = g.z.reduce_periodic(z);
  w.i0 = rx.cell;
  w.j0 = ry.cell;
  w.k0 = rz.cell;
  bspline_weights_d2(rx.frac, w.a, w.da, w.d2a);
  bspline_weights_d2(ry.frac, w.b, w.db, w.d2b);
  bspline_weights_d2(rz.frac, w.c, w.dc, w.d2c);
  const T dxi = g.x.delta_inv, dyi = g.y.delta_inv, dzi = g.z.delta_inv;
  for (int i = 0; i < 4; ++i) {
    w.da[i] *= dxi;
    w.d2a[i] *= dxi * dxi;
    w.db[i] *= dyi;
    w.d2b[i] *= dyi * dyi;
    w.dc[i] *= dzi;
    w.d2c[i] *= dzi * dzi;
  }
}

// -- position-block batch helpers (multi-position evaluation layer) --------
//
// A block of P positions shares one pass over each tile's coefficient table,
// so the weight sets for the whole block are computed up front and reused by
// every tile (all tiles of an AoSoA engine share the same grid).  This
// replaces the per-(tile, position) weight recomputation of the per-pair
// batched path.

/// Value-only weights for @p count positions.  The position element type @p U
/// may differ from the weight/grid type @p T (mixed precision: SP positions
/// widened exactly into DP weights); components are converted before the
/// periodic reduction so the whole weight chain runs in T.
template <typename T, typename U = T>
inline void compute_weights_v_batch(const Grid3D<T>& g, const Vec3<U>* pos, int count,
                                    BsplineWeights3D<T>* w) noexcept
{
  for (int p = 0; p < count; ++p)
    compute_weights_v(g, static_cast<T>(pos[p].x), static_cast<T>(pos[p].y),
                      static_cast<T>(pos[p].z), w[p]);
}

/// Full derivative weights for @p count positions (kernels VGL and VGH).
template <typename T, typename U = T>
inline void compute_weights_vgh_batch(const Grid3D<T>& g, const Vec3<U>* pos, int count,
                                      BsplineWeights3D<T>* w) noexcept
{
  for (int p = 0; p < count; ++p)
    compute_weights_vgh(g, static_cast<T>(pos[p].x), static_cast<T>(pos[p].y),
                        static_cast<T>(pos[p].z), w[p]);
}

} // namespace mqc

#endif // MQC_CORE_WEIGHTS_H
