// Figure 7(b): VGH throughput before and after the AoSoA (tiling)
// transformation across problem sizes N, at the host's tuned tile size.
// The paper's signature: tiling restores *sustained* throughput for large N
// where plain SoA degrades.
#include <iostream>

#include "common/table.h"
#include "core/tuner.h"
#include "bench_common.h"

int main(int argc, char** argv)
{
  using namespace mqc;
  using namespace mqc::bench;
  const BenchScale scale = bench_scale();
  auto json = JsonReporter::from_args(argc, argv, "fig7b_tiling");

  // Tune Nb once at the largest sweep size (it is N-independent, §VI-B).
  const auto tgrid = Grid3D<float>::cube(scale.grid, 1.0f);
  auto tune_coefs =
      make_random_storage<float>(tgrid, scale.n_sweep.back(), 4242);
  const auto tune = tune_tile_size_vgh(*tune_coefs, default_tile_candidates(scale.n_sweep.back(), 16),
                                       scale.ns, scale.min_seconds / 4);
  const int nb = tune.best_tile;
  tune_coefs.reset();

  print_banner(std::cout, "Figure 7(b): VGH throughput, SoA vs AoSoA (tile Nb=" +
                              std::to_string(nb) + ")");
  TablePrinter tp({"N", "T_SoA (Meval/s)", "T_AoSoA (Meval/s)", "speedup vs SoA"});
  for (int n : scale.n_sweep) {
    const auto grid = Grid3D<float>::cube(scale.grid, 1.0f);
    auto coefs = make_random_storage<float>(grid, n, 7100 + static_cast<std::uint64_t>(n));
    const int tile = std::min(nb, n);
    const double t_soa =
        measure_throughput(Layout::SoA, Kernel::VGH, *coefs, tile, scale.ns, scale.min_seconds);
    const double t_aosoa =
        measure_throughput(Layout::AoSoA, Kernel::VGH, *coefs, tile, scale.ns, scale.min_seconds);
    tp.add_row({TablePrinter::cell(n), TablePrinter::cell(t_soa / 1e6, 2),
                TablePrinter::cell(t_aosoa / 1e6, 2), TablePrinter::cell(t_aosoa / t_soa, 2)});
    json.add("vgh_soa_n" + std::to_string(n), t_soa, "eval/s");
    json.add("vgh_aosoa_n" + std::to_string(n), t_aosoa, "eval/s");
  }
  tp.print(std::cout);
  std::cout << "\nShape check (paper): AoSoA holds throughput roughly flat across N\n"
               "(sustained performance), with the biggest wins at the largest N.\n";
  if (!json.write())
    std::cout << "warning: could not write " << json.path() << "\n";
  return 0;
}
